package bonsai_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bonsai"
	"bonsai/internal/netgen"
)

// TestRelationStoreWarmRestart drives the full persistence cycle through the
// public API: compress everything, Close (which saves), reopen with the same
// option, and require that the warm engine answers Verify/Reach/Roles with
// field-identical results while running zero fresh refinements.
func TestRelationStoreWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relstore.bin")
	ctx := context.Background()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)

	cold, err := bonsai.Open(net, bonsai.WithRelationStore(path))
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := cold.Compress(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.Cache.Fresh == 0 {
		t.Fatalf("cold engine computed no abstractions")
	}
	coldVerify, err := cold.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	coldRoles, err := cold.Roles(ctx, bonsai.RolesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	coldReach, err := cold.Reach(ctx, "core-0", cold.Classes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close did not write the relation store: %v", err)
	}

	warm, err := bonsai.Open(net, bonsai.WithRelationStore(path))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmRep, err := warm.Compress(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if warmRep.Cache.Fresh != 0 {
		t.Fatalf("warm engine ran %d fresh refinements, want 0", warmRep.Cache.Fresh)
	}
	if warmRep.ClassesCompressed != coldRep.ClassesCompressed ||
		warmRep.SumAbstractNodes != coldRep.SumAbstractNodes ||
		warmRep.SumAbstractLinks != coldRep.SumAbstractLinks {
		t.Fatalf("warm compression differs: %+v vs %+v", warmRep, coldRep)
	}
	warmVerify, err := warm.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// DistinctAbstractions counts refinements actually run, which is exactly
	// what the warm path avoids; every result field must match.
	if warmVerify.Pairs != coldVerify.Pairs ||
		warmVerify.ReachablePairs != coldVerify.ReachablePairs ||
		warmVerify.AbstractNodeSum != coldVerify.AbstractNodeSum {
		t.Fatalf("warm verify differs:\ncold %+v\nwarm %+v", coldVerify, warmVerify)
	}
	warmRoles, err := warm.Roles(ctx, bonsai.RolesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRoles, warmRoles) {
		t.Fatalf("warm roles differ: %+v vs %+v", warmRoles, coldRoles)
	}
	warmReach, err := warm.Reach(ctx, "core-0", warm.Classes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if warmReach.Reachable != coldReach.Reachable {
		t.Fatalf("warm reach differs: %v vs %v", warmReach.Reachable, coldReach.Reachable)
	}
}

// TestRelationStoreExplicitSaveLoad exercises the explicit API: save without
// Close, load into a second engine, and reject damage cleanly.
func TestRelationStoreExplicitSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relstore.bin")
	ctx := context.Background()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)

	eng, err := bonsai.Open(net)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveRelationStore(path); err != nil {
		t.Fatal(err)
	}

	warm, err := bonsai.Open(net)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	n, err := warm.LoadRelationStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("load installed no abstractions")
	}
	rep, err := warm.Compress(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Fresh != 0 {
		t.Fatalf("loaded engine ran %d fresh refinements, want 0", rep.Cache.Fresh)
	}

	// A bit-flipped file must be rejected with no partial state.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cold, err := bonsai.Open(net)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if n, err := cold.LoadRelationStore(bad); err == nil {
		t.Fatalf("corrupt store loaded (%d entries)", n)
	}
	if st := cold.Stats(); st.LiveBytes != 0 {
		t.Fatalf("rejected load left %d live bytes", st.LiveBytes)
	}
}
