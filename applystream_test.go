package bonsai_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/netgen"
)

// feed returns a closed, pre-filled channel: ApplyStream drains it
// deterministically (one gather loop, no timing dependence).
func feed(deltas ...bonsai.Delta) <-chan bonsai.Delta {
	ch := make(chan bonsai.Delta, len(deltas))
	for _, d := range deltas {
		ch <- d
	}
	close(ch)
	return ch
}

// verifyCounts compares the engine's Verify report against a cold Open on
// the engine's current configuration — the field-identical acceptance
// check of the robustness contract.
func verifyCounts(t *testing.T, eng *bonsai.Engine) {
	t.Helper()
	ctx := context.Background()
	fresh, err := bonsai.Open(eng.Network())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got, want := queryFingerprint(t, eng), queryFingerprint(t, fresh); got != want {
		t.Fatal("stream engine queries diverge from cold open on final config")
	}
	warm, err := eng.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := fresh.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pairs != cold.Pairs || warm.ReachablePairs != cold.ReachablePairs || warm.Classes != cold.Classes {
		t.Fatalf("verify reports diverge: warm %v cold %v", warm, cold)
	}
	warmRoles, err := eng.Roles(ctx, bonsai.RolesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	coldRoles, err := fresh.Roles(ctx, bonsai.RolesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if *warmRoles != *coldRoles {
		t.Fatalf("roles diverge: warm %+v cold %+v", warmRoles, coldRoles)
	}
}

func TestApplyStreamFlapStormInvalidatesZero(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	before := queryFingerprint(t, eng)

	// Storm: every core-adjacent link of two pods flaps down and back up,
	// several times, all queued before the stream starts — the batch must
	// cancel to nothing.
	links := []bonsai.LinkRef{
		{A: "agg-0-0", B: "core-0"}, {A: "agg-0-1", B: "core-2"},
		{A: "agg-1-0", B: "core-1"}, {A: "agg-1-1", B: "core-3"},
	}
	var storm []bonsai.Delta
	for round := 0; round < 3; round++ {
		for _, l := range links {
			storm = append(storm, bonsai.Delta{LinkDown: []bonsai.LinkRef{l}})
		}
		for _, l := range links {
			storm = append(storm, bonsai.Delta{LinkUp: []bonsai.LinkRef{l}})
		}
	}
	rep, err := eng.ApplyStream(ctx, feed(storm...))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invalidated != 0 || rep.NewClasses != 0 || rep.Adopted != 0 {
		t.Fatalf("flap storm must invalidate zero classes, got %+v", rep)
	}
	if rep.EmptyBatches != rep.Batches || rep.Batches == 0 {
		t.Fatalf("storm batches should all cancel empty: %+v", rep)
	}
	if rep.EditsApplied != 0 || rep.Coalesced != len(storm) {
		t.Fatalf("all %d edits should coalesce away: %+v", len(storm), rep)
	}
	if got := queryFingerprint(t, eng); got != before {
		t.Fatal("queries changed across a state-preserving flap storm")
	}
}

// streamDifferential streams the delta log into one engine and applies it
// delta-by-delta to another, then checks both against a cold Open.
func streamDifferential(t *testing.T, cfg *bonsai.Network, log []bonsai.Delta, opts ...bonsai.StreamApplyOption) {
	t.Helper()
	ctx := context.Background()
	streamed, err := bonsai.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := bonsai.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.ApplyStream(ctx, feed(log...), opts...); err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, d := range log {
		if _, err := naive.Apply(ctx, d); err != nil {
			t.Fatalf("naive apply of %+v: %v", d, err)
		}
		applied++
	}
	if applied != len(log) {
		t.Fatalf("naive applied %d of %d deltas", applied, len(log))
	}
	// The coalesced final config can differ in inert fields from the naive
	// one (a flapped link's Down bit round-trips instead of toggling), so
	// equivalence is behavioral: queries and verify counts of each engine
	// must match a cold open of its own config, and the two engines must
	// agree with each other.
	verifyCounts(t, streamed)
	verifyCounts(t, naive)
	if got, want := queryFingerprint(t, streamed), queryFingerprint(t, naive); got != want {
		t.Fatal("streamed engine diverges from naive per-delta engine")
	}
}

func TestApplyStreamDifferentialScenarios(t *testing.T) {
	permitAll := &bonsai.RouteMap{Clauses: []bonsai.Clause{{Action: bonsai.Permit}}}
	scenarios := []struct {
		name string
		cfg  *bonsai.Network
		log  []bonsai.Delta
	}{
		{
			"fattree-shortest", netgen.Fattree(4, netgen.PolicyShortestPath),
			[]bonsai.Delta{
				{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
				{LinkDown: []bonsai.LinkRef{{A: "agg-1-0", B: "core-0"}}},
				{LinkUp: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
				{AddOriginated: []bonsai.OriginEdit{{Router: "edge-0-0", Prefix: "10.99.0.0/24"}}},
			},
		},
		{
			"fattree-prefer-bottom", netgen.Fattree(4, netgen.PolicyPreferBottom),
			[]bonsai.Delta{
				{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
				{SetRouteMaps: []bonsai.RouteMapEdit{{Router: "core-0", Name: "stream-test-rm", Map: permitAll}}},
				{SetRouteMaps: []bonsai.RouteMapEdit{{Router: "core-0", Name: "stream-test-rm", Map: nil}}},
				{LinkUp: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
			},
		},
		{
			"mesh-origin-churn", netgen.FullMesh(8),
			[]bonsai.Delta{
				{AddOriginated: []bonsai.OriginEdit{{Router: "r-0001", Prefix: "10.50.0.0/24"}}},
				{RemoveOriginated: []bonsai.OriginEdit{{Router: "r-0001", Prefix: "10.50.0.0/24"}}},
				{AddOriginated: []bonsai.OriginEdit{{Router: "r-0002", Prefix: "10.51.0.0/24"}}},
				{LinkDown: []bonsai.LinkRef{{A: "r-0003", B: "r-0004"}}},
			},
		},
		{
			"spineleaf-pref", netgen.SpineLeaf(netgen.SpineLeafOptions{PreferExternal: true}),
			[]bonsai.Delta{
				{LinkDown: []bonsai.LinkRef{{A: "spine-0", B: "leaf-0"}}},
				{LinkDown: []bonsai.LinkRef{{A: "spine-1", B: "leaf-1"}}},
				{LinkUp: []bonsai.LinkRef{{A: "spine-0", B: "leaf-0"}}},
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			streamDifferential(t, sc.cfg, sc.log)
		})
		t.Run(sc.name+"/max-pending-1", func(t *testing.T) {
			// MaxPending=1 degenerates the stream to per-delta batches —
			// the naive shape through the stream machinery.
			streamDifferential(t, sc.cfg, sc.log, bonsai.WithMaxPending(1))
		})
	}
}

func TestApplyStreamDifferentialRandomized(t *testing.T) {
	cfg := netgen.Fattree(4, netgen.PolicyShortestPath)
	var flappable []bonsai.LinkRef
	for _, l := range cfg.Links {
		flappable = append(flappable, bonsai.LinkRef{A: l.A, B: l.B})
	}
	routers := cfg.RouterNames()
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		var log []bonsai.Delta
		for i := 0; i < 30; i++ {
			switch rng.Intn(4) {
			case 0:
				log = append(log, bonsai.Delta{LinkDown: []bonsai.LinkRef{flappable[rng.Intn(len(flappable))]}})
			case 1:
				log = append(log, bonsai.Delta{LinkUp: []bonsai.LinkRef{flappable[rng.Intn(len(flappable))]}})
			case 2:
				log = append(log, bonsai.Delta{AddOriginated: []bonsai.OriginEdit{{
					Router: routers[rng.Intn(len(routers))],
					Prefix: "10.200.0.0/24",
				}}})
			default:
				log = append(log, bonsai.Delta{RemoveOriginated: []bonsai.OriginEdit{{
					Router: routers[rng.Intn(len(routers))],
					Prefix: "10.200.0.0/24",
				}}})
			}
		}
		// LinkUp of an existing up link and RemoveOriginated of an absent
		// prefix are valid no-ops for both engines, so the raw log is
		// directly comparable.
		t.Run("", func(t *testing.T) {
			streamDifferential(t, cfg, log)
		})
	}
}

func TestApplyStreamBackpressure(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	const deltas = 40
	ch := make(chan bonsai.Delta)
	go func() {
		defer close(ch)
		for i := 0; i < deltas; i++ {
			if i%2 == 0 {
				ch <- bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}}
			} else {
				ch <- bonsai.Delta{LinkUp: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}}
			}
		}
	}()
	rep, err := eng.ApplyStream(ctx, ch, bonsai.WithMaxPending(8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deltas != deltas {
		t.Fatalf("stream consumed %d of %d deltas", rep.Deltas, deltas)
	}
	if rep.MaxPending > 8 {
		t.Fatalf("queue depth %d exceeded WithMaxPending(8)", rep.MaxPending)
	}
	if rep.Batches < deltas/8 {
		t.Fatalf("too few batches for the pending bound: %+v", rep)
	}
	if st := eng.ApplyStats(); st.Pending != 0 || st.Received == 0 {
		t.Fatalf("final ApplyStats = %+v", st)
	}
}

func TestApplyStreamStalenessFlush(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan bonsai.Delta)
	type result struct {
		rep *bonsai.ApplyStreamReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := eng.ApplyStream(ctx, ch, bonsai.WithMaxStaleness(10*time.Millisecond))
		done <- result{rep, err}
	}()
	ch <- bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}}
	// The channel stays open: only the staleness window can flush this.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("staleness window never flushed the batch")
		default:
		}
		if idx := eng.Network().FindLink("agg-0-0", "core-0"); idx >= 0 && eng.Network().Links[idx].Down {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	res := <-done
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.err)
	}
	if res.rep.FlushStale == 0 {
		t.Fatalf("report should count a stale flush: %+v", res.rep)
	}
}

func TestApplyStreamCloseDrainsWithErrClosed(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	ch := make(chan bonsai.Delta)
	type result struct {
		rep *bonsai.ApplyStreamReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := eng.ApplyStream(ctx, ch, bonsai.WithMaxStaleness(time.Minute))
		done <- result{rep, err}
	}()
	ch <- bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if !errors.Is(res.err, bonsai.ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", res.err)
		}
		if res.rep == nil || res.rep.Deltas != 1 || res.rep.Batches != 0 {
			t.Fatalf("report = %+v, want 1 delta received, pending batch abandoned", res.rep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ApplyStream did not drain after Close")
	}
}

func TestApplyStreamRejectsInvalidDeltasAndContinues(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	log := []bonsai.Delta{
		{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
		{LinkDown: []bonsai.LinkRef{{A: "no-such", B: "router"}}},
		{AddOriginated: []bonsai.OriginEdit{{Router: "edge-0-0", Prefix: "bogus"}}},
		{AddOriginated: []bonsai.OriginEdit{{Router: "edge-0-0", Prefix: "10.77.0.0/24"}}},
	}
	rep, err := eng.ApplyStream(ctx, feed(log...))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 2 || rep.Deltas != 4 {
		t.Fatalf("report = %+v, want 2 of 4 rejected", rep)
	}
	verifyCounts(t, eng)
	idx := eng.Network().FindLink("agg-0-0", "core-0")
	if idx < 0 || !eng.Network().Links[idx].Down {
		t.Fatal("valid edits around the rejected deltas were not applied")
	}
}

func TestApplyStreamOversizedBurstDegrades(t *testing.T) {
	cfg := netgen.Fattree(4, netgen.PolicyShortestPath)
	eng, err := bonsai.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	// Take down over a quarter of the links in one burst.
	var log []bonsai.Delta
	for i, l := range cfg.Links {
		if i%3 != 0 {
			continue
		}
		log = append(log, bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: l.A, B: l.B}}})
	}
	rep, err := eng.ApplyStream(ctx, feed(log...))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegradedBatches == 0 {
		t.Fatalf("oversized burst should degrade to a cold swap: %+v", rep)
	}
	verifyCounts(t, eng)
}

func TestApplyStreamConcurrentQueries(t *testing.T) {
	// Queries racing the stream must always see a consistent snapshot
	// (meaningful under -race).
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	dest := eng.Classes()[0]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Reach(ctx, "edge-0-0", dest); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var log []bonsai.Delta
	for i := 0; i < 10; i++ {
		log = append(log,
			bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
			bonsai.Delta{LinkUp: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}},
		)
	}
	if _, err := eng.ApplyStream(ctx, feed(log...), bonsai.WithMaxPending(3)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	verifyCounts(t, eng)
}
