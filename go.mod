module bonsai

go 1.24
