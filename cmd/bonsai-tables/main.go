// Command bonsai-tables regenerates the paper's evaluation tables and
// figure series as text (see EXPERIMENTS.md for the paper-vs-measured
// comparison).
//
//	bonsai-tables -table 1a          Table 1(a): synthetic networks
//	bonsai-tables -table 1b          Table 1(b): operational stand-ins
//	bonsai-tables -fig 11            Figure 11: fattree policies
//	bonsai-tables -fig 12            Figure 12: verification time sweeps
//	bonsai-tables -batfish           §8 single-query experiment
//	bonsai-tables -all               everything
//
// Add -quick for reduced sizes (seconds instead of minutes).
package main

import (
	"flag"
	"fmt"
	"log"

	"bonsai/internal/experiments"
)

func main() {
	table := flag.String("table", "", "1a or 1b")
	fig := flag.String("fig", "", "11 or 12")
	batfish := flag.Bool("batfish", false, "run the §8 single-query experiment")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "reduced sizes")
	flag.Parse()

	ran := false
	if *all || *table == "1a" {
		ran = true
		fmt.Println("== Table 1(a): synthetic networks ==")
		rows, err := experiments.Table1Synthetic(*quick)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		fmt.Println()
	}
	if *all || *table == "1b" {
		ran = true
		fmt.Println("== Table 1(b): operational network stand-ins ==")
		rows, err := experiments.Table1Real(*quick)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Println(" ", r.Table1Row)
			fmt.Printf("    interfaces %d, roles: %d full / %d erased / %d without statics\n",
				r.Ifaces, r.RolesFull, r.RolesErased, r.RolesNoStatics)
		}
		fmt.Println()
	}
	if *all || *fig == "11" {
		ran = true
		k := 8
		if *quick {
			k = 4
		}
		fmt.Println("== Figure 11: fattree abstraction size by policy ==")
		res, err := experiments.Figure11(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d  shortest-path: %d nodes / %d links\n", res.K, res.ShortestPathNodes, res.ShortestPathLinks)
		fmt.Printf("  k=%d  prefer-bottom: %d nodes / %d links (larger, as in the paper)\n",
			res.K, res.PreferBottomNodes, res.PreferBottomLinks)
		fmt.Println()
	}
	if *all || *fig == "12" {
		ran = true
		fmt.Println("== Figure 12: all-pairs verification time (per-query certification) ==")
		sweeps := []struct {
			family string
			sizes  []int
			maxECs int
		}{
			{"fattree", []int{4, 6, 8, 10}, 8},
			{"mesh", []int{10, 20, 40, 60}, 8},
			{"ring", []int{20, 40, 80, 120}, 8},
		}
		if *quick {
			sweeps = []struct {
				family string
				sizes  []int
				maxECs int
			}{
				{"fattree", []int{4, 6}, 4},
				{"mesh", []int{10, 20}, 4},
				{"ring", []int{20, 40}, 4},
			}
		}
		for _, s := range sweeps {
			fmt.Printf("  (%s, first %d classes per size)\n", s.family, s.maxECs)
			points, err := experiments.Figure12(s.family, s.sizes, s.maxECs)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range points {
				fmt.Println("   ", p)
			}
		}
		fmt.Println()
	}
	if *all || *batfish {
		ran = true
		fmt.Println("== §8: single reachability query on the datacenter ==")
		res, err := experiments.BatfishQuery(*quick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %s reachable=%v\n", res.Src, res.Dest, res.Reachable)
		fmt.Printf("  concrete: %v   with bonsai: %v\n", res.Concrete, res.Bonsai)
		fmt.Println()
	}
	if !ran {
		flag.Usage()
	}
}
