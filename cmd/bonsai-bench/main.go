// Command bonsai-bench runs the paper's benchmark suite (Table 1, Figure 12,
// hot-path micro-benchmarks; see internal/benchrun) outside `go test` and
// writes the results as JSON, establishing a comparable performance baseline
// per commit.
//
//	bonsai-bench -out BENCH_compress.json            # full suite
//	bonsai-bench -smoke -out bench-smoke.json        # CI smoke run
//	bonsai-bench -filter 'fattree' -out /dev/stdout  # one family
//	bonsai-bench -smoke -out s.json -compare BENCH_smoke.json  # warn on >3x
//	bonsai-bench -filter fresh -out f.json -cpuprofile cpu.prof -memprofile mem.prof
//
// Compare two baselines by diffing the ns_per_op / metrics fields of equally
// named cases; metric names match what `go test -bench` prints. -compare
// automates that diff against a committed baseline, warning (never failing —
// CI hardware differs from the baseline box) when a case's ns/class exceeds
// 3x its baseline. -cpuprofile/-memprofile write pprof profiles of the run
// for hot-path work on the compression engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/benchrun"
)

// caseResult is one benchmark case in the JSON output.
type caseResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PeakHeapBytes is the largest HeapAlloc sampled while the case ran
	// (benchrun.PeakHeap) — the whole-process peak, including the network,
	// the builder and the BDD tables, not just the abstraction store.
	PeakHeapBytes uint64             `json:"peak_heap_bytes"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
}

// report is the top-level JSON document.
type report struct {
	Generated string       `json:"generated"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Smoke     bool         `json:"smoke"`
	Cases     []caseResult `json:"cases"`
}

func main() {
	os.Exit(run())
}

// run is main's body with a plain exit code, so that error paths unwind
// through the deferred CPU-profile stop (an os.Exit inside would leave a
// truncated profile file).
func run() int {
	smoke := flag.Bool("smoke", false, "run the reduced CI suite")
	out := flag.String("out", "BENCH_compress.json", "output JSON path")
	filter := flag.String("filter", "", "only run cases matching this regexp")
	compare := flag.String("compare", "", "baseline JSON to diff against; warns (never fails) on >3x ns/class regressions")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(bonsai.Version())
		return 0
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "bonsai-bench: bad -filter:", err)
			return 2
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
			f.Close()
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Smoke:     *smoke,
	}
	for _, c := range benchrun.Cases(*smoke) {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-50s ", c.Name)
		start := time.Now()
		runtime.GC() // level the heap so the peak is the case's own
		sampler := benchrun.StartPeakHeap(0)
		r := testing.Benchmark(c.F)
		peak := sampler.Stop()
		cr := caseResult{
			Name:          c.Name,
			Iterations:    r.N,
			NsPerOp:       float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			PeakHeapBytes: peak,
		}
		if len(r.Extra) > 0 {
			cr.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				cr.Metrics[k] = v
			}
		}
		rep.Cases = append(rep.Cases, cr)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op  (n=%d, wall %v)\n",
			cr.NsPerOp, r.N, time.Since(start).Round(time.Millisecond))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cases)\n", *out, len(rep.Cases))

	if *compare != "" {
		warnRegressions(*compare, rep)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
			f.Close()
			return 1
		}
		f.Close()
	}
	return 0
}

// regressionFactor is the ns/class (or ns/op) ratio above which -compare
// prints a warning. Warnings never fail the run: CI machines differ from the
// baseline box, so the diff is a smoke alarm, not a gate.
const regressionFactor = 3.0

// memRegressionFactor is the allocs/op and peak-HeapAlloc ratio above which
// -compare warns. Memory is less machine-sensitive than time, so the bar is
// tighter; it stays warn-only for the same reason (GC timing and sampling
// jitter move peaks run to run).
const memRegressionFactor = 2.0

// warnRegressions diffs equally named cases of the finished run against a
// baseline report, comparing ns/class where both sides report it and falling
// back to ns/op. It only ever warns.
func warnRegressions(path string, rep report) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bonsai-bench: -compare:", err)
		return
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "bonsai-bench: -compare:", err)
		return
	}
	metric := func(c caseResult) (float64, string) {
		if v, ok := c.Metrics["ns/class"]; ok && v > 0 {
			return v, "ns/class"
		}
		return c.NsPerOp, "ns/op"
	}
	baseBy := make(map[string]caseResult, len(base.Cases))
	for _, c := range base.Cases {
		baseBy[c.Name] = c
	}
	compared, warned := 0, 0
	for _, c := range rep.Cases {
		bc, ok := baseBy[c.Name]
		if !ok {
			continue
		}
		got, unit := metric(c)
		want, baseUnit := metric(bc)
		if want <= 0 || unit != baseUnit {
			// A unit mismatch (one side grew or lost the ns/class metric)
			// would compare per-class time against whole-run time; skip.
			continue
		}
		compared++
		if got > regressionFactor*want {
			warned++
			fmt.Fprintf(os.Stderr, "WARNING: %s: %s %.0f vs baseline %.0f (%.1fx > %.1fx)\n",
				c.Name, unit, got, want, got/want, regressionFactor)
		}
		// Throughput metrics are higher-is-better, so the regression test
		// inverts: warn when the run sustains less than 1/3 of the baseline
		// rate (the churn cases' deltasPerSec).
		if bv, ok := bc.Metrics["deltasPerSec"]; ok && bv > 0 {
			if gv := c.Metrics["deltasPerSec"]; gv > 0 && gv < bv/regressionFactor {
				warned++
				fmt.Fprintf(os.Stderr, "WARNING: %s: deltasPerSec %.0f vs baseline %.0f (%.1fx slower > %.1fx)\n",
					c.Name, gv, bv, bv/gv, regressionFactor)
			}
		}
		// Memory regressions, warn-only like the time diff: allocations per
		// op and the sampled peak heap.
		if bc.AllocsPerOp > 0 && c.AllocsPerOp > int64(memRegressionFactor*float64(bc.AllocsPerOp)) {
			warned++
			fmt.Fprintf(os.Stderr, "WARNING: %s: allocs/op %d vs baseline %d (%.1fx > %.1fx)\n",
				c.Name, c.AllocsPerOp, bc.AllocsPerOp,
				float64(c.AllocsPerOp)/float64(bc.AllocsPerOp), memRegressionFactor)
		}
		if bc.PeakHeapBytes > 0 && float64(c.PeakHeapBytes) > memRegressionFactor*float64(bc.PeakHeapBytes) {
			warned++
			fmt.Fprintf(os.Stderr, "WARNING: %s: peak heap %d vs baseline %d (%.1fx > %.1fx)\n",
				c.Name, c.PeakHeapBytes, bc.PeakHeapBytes,
				float64(c.PeakHeapBytes)/float64(bc.PeakHeapBytes), memRegressionFactor)
		}
	}
	fmt.Fprintf(os.Stderr, "compared %d cases against %s: %d regression warning(s)\n",
		compared, path, warned)
}
