// Command bonsai-bench runs the paper's benchmark suite (Table 1, Figure 12,
// hot-path micro-benchmarks; see internal/benchrun) outside `go test` and
// writes the results as JSON, establishing a comparable performance baseline
// per commit.
//
//	bonsai-bench -out BENCH_compress.json            # full suite
//	bonsai-bench -smoke -out bench-smoke.json        # CI smoke run
//	bonsai-bench -filter 'fattree' -out /dev/stdout  # one family
//
// Compare two baselines by diffing the ns_per_op / metrics fields of equally
// named cases; metric names match what `go test -bench` prints.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"bonsai/internal/benchrun"
)

// caseResult is one benchmark case in the JSON output.
type caseResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// report is the top-level JSON document.
type report struct {
	Generated string       `json:"generated"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Smoke     bool         `json:"smoke"`
	Cases     []caseResult `json:"cases"`
}

func main() {
	smoke := flag.Bool("smoke", false, "run the reduced CI suite")
	out := flag.String("out", "BENCH_compress.json", "output JSON path")
	filter := flag.String("filter", "", "only run cases matching this regexp")
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "bonsai-bench: bad -filter:", err)
			os.Exit(2)
		}
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Smoke:     *smoke,
	}
	for _, c := range benchrun.Cases(*smoke) {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-50s ", c.Name)
		start := time.Now()
		r := testing.Benchmark(c.F)
		cr := caseResult{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			cr.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				cr.Metrics[k] = v
			}
		}
		rep.Cases = append(rep.Cases, cr)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op  (n=%d, wall %v)\n",
			cr.NsPerOp, r.N, time.Since(start).Round(time.Millisecond))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bonsai-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cases)\n", *out, len(rep.Cases))
}
