// Command bonsaid serves the bonsai control-plane compression engine as a
// long-running multi-tenant daemon: named networks are opened over an
// HTTP/JSON API and queried concurrently, all tenants share one global
// abstraction-memory budget, and per-tenant quotas keep an overloaded
// tenant from starving the rest. SIGTERM/SIGINT trigger a graceful drain:
// new requests get 503, in-flight work finishes, every engine closes.
//
// With -data-dir, tenants are durable: every admitted delta is journaled
// (fsync policy via -fsync) before it is applied, checkpoints truncate the
// journal (-checkpoint-every), and a restart over the same data dir recovers
// every tenant from checkpoint + journal tail — kill -9 included.
//
//	bonsaid -addr :7171 -budget-mb 2048 -floor-mb 64 -max-queries 8
//	bonsaid -addr :7171 -data-dir /var/lib/bonsaid -fsync interval
//	curl -X PUT --data-binary @net.txt localhost:7171/v1/tenants/prod
//	curl 'localhost:7171/v1/tenants/prod/reach?src=edge-1-1&dest=10.0.0.0/24'
//	curl localhost:7171/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bonsai"
	"bonsai/internal/faultinject"
	"bonsai/internal/journal"
	"bonsai/internal/server"
)

// armCrashPoint wires the BONSAID_CRASH_POINT env hook used by the crash
// gauntlet: "point@n" (e.g. "journal.fsync@3") SIGKILLs this process the
// n-th time the named fault-injection seam fires — a faithful model of a
// power-cut-shaped crash at exactly that point in the durability path. The
// hook is inert unless the variable is set, so production pays one env
// lookup at startup and nothing after.
func armCrashPoint(spec string) {
	point, nth := spec, int64(1)
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		point = spec[:at]
		n, err := strconv.ParseInt(spec[at+1:], 10, 64)
		if err != nil || n < 1 {
			log.Fatalf("bonsaid: bad BONSAID_CRASH_POINT %q: want point[@n]", spec)
		}
		nth = n
	}
	faultinject.Arm(faultinject.Point(point), faultinject.OnNth(nth, func(string) {
		// SIGKILL self: no deferred cleanup, no flushes — the kernel takes
		// the process exactly as a crash would find it.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // never runs past the kill
	}))
}

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	budgetMB := flag.Int64("budget-mb", 0, "global abstraction-memory budget in MiB across all tenants (0 = unbounded)")
	floorMB := flag.Int64("floor-mb", 0, "per-tenant budget floor in MiB (cross-tenant eviction never digs below it)")
	maxTenants := flag.Int("max-tenants", 0, "max concurrently open tenants (0 = unbounded)")
	maxQueries := flag.Int("max-queries", 4, "max concurrent queries per tenant (excess get 429)")
	applyQueue := flag.Int("apply-queue", 16, "bounded apply-queue depth per tenant (excess get 503)")
	idleTTL := flag.Duration("idle-ttl", 0, "close tenants idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for in-flight work on shutdown")
	dataDir := flag.String("data-dir", "", "enable durability: per-tenant delta journals + checkpoints under this dir (empty = ephemeral)")
	fsyncPolicy := flag.String("fsync", "always", "journal fsync policy: always | interval | never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "flush period for -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint a tenant once its journal tail reaches this many deltas (0 = default 4096, <0 = only on drain)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(bonsai.Version())
		return
	}
	sync, err := journal.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		log.Fatalf("bonsaid: %v", err)
	}
	if spec := os.Getenv("BONSAID_CRASH_POINT"); spec != "" {
		armCrashPoint(spec)
	}

	s := server.New(server.Config{
		GlobalBudget:        *budgetMB << 20,
		TenantFloor:         *floorMB << 20,
		MaxTenants:          *maxTenants,
		MaxQueriesPerTenant: *maxQueries,
		ApplyQueueDepth:     *applyQueue,
		IdleTTL:             *idleTTL,
		DataDir:             *dataDir,
		Fsync:               sync,
		FsyncInterval:       *fsyncInterval,
		CheckpointEvery:     *checkpointEvery,
	})
	hs := &http.Server{Addr: *addr, Handler: s}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("bonsaid: listen: %v", err)
	}
	durable := "ephemeral"
	if *dataDir != "" {
		durable = fmt.Sprintf("data-dir %s, fsync %s", *dataDir, sync)
	}
	log.Printf("bonsaid %s listening on %s (budget %d MiB, floor %d MiB, %s)",
		bonsai.Version().GoVersion, ln.Addr(), *budgetMB, *floorMB, durable)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		log.Fatalf("bonsaid: serve: %v", err)
	case got := <-sig:
		log.Printf("bonsaid: %v: draining (new requests get 503)", got)
	}

	// Drain order: the app layer first refuses new work and waits for
	// in-flight requests (bounded by -drain-timeout), then the HTTP server
	// closes its listener and idle connections.
	done := make(chan struct{})
	go func() {
		s.Drain()
		close(done)
	}()
	select {
	case <-done:
		log.Printf("bonsaid: drained cleanly")
	case <-time.After(*drainTimeout):
		log.Printf("bonsaid: drain timeout after %v; exiting with work in flight", *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("bonsaid: shutdown: %v", err)
	}
}
