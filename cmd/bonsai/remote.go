package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"bonsai"
	"bonsai/internal/server"
)

// remote reports whether the shared flags select thin-client mode and
// returns the daemon client plus tenant name. With -f also given, the
// tenant is opened from the file first (an already-open tenant is fine, so
// scripted invocations are idempotent).
func (ef engineFlags) remote(ctx context.Context) (*server.Client, string, bool, error) {
	if *ef.server == "" {
		return nil, "", false, nil
	}
	if *ef.tenant == "" {
		return nil, "", false, fmt.Errorf("-server requires -tenant NAME")
	}
	c := server.NewClient(*ef.server)
	if *ef.file != "" {
		f, err := os.Open(*ef.file)
		if err != nil {
			return nil, "", false, err
		}
		defer f.Close()
		err = c.Open(ctx, *ef.tenant, f)
		if err != nil && server.StatusCode(err) != http.StatusConflict {
			return nil, "", false, fmt.Errorf("opening tenant %q: %w", *ef.tenant, err)
		}
	}
	return c, *ef.tenant, true, nil
}

// remoteCompress is cmdCompress against a daemon tenant: rows stream over
// NDJSON exactly as the local pipeline streams them.
func remoteCompress(ctx context.Context, ef engineFlags, c *server.Client, tenant string, sel bonsai.ClassSelector, printRows bool) error {
	row := func(r bonsai.ClassResult) {
		if printRows {
			fmt.Printf("%-18s %3d nodes %3d links  %-11s %v\n",
				r.Prefix, r.AbstractNodes, r.AbstractLinks, r.Source,
				r.Duration.Round(time.Microsecond))
		}
	}
	rep, err := c.CompressStream(ctx, tenant, sel, row)
	if err != nil {
		return err
	}
	if done, err := ef.emit(rep); done {
		return err
	}
	fmt.Printf("network: %d nodes, %d links, %d interfaces, %d classes (compressed %d)\n",
		rep.Network.Routers, rep.Network.Links, rep.Network.Interfaces,
		rep.Network.Classes, rep.ClassesCompressed)
	fmt.Printf("abstract: avg %.1f nodes / %.1f links (%.2fx / %.2fx)\n",
		rep.AvgAbstractNodes(), rep.AvgAbstractLinks(), rep.NodeRatio, rep.LinkRatio)
	return nil
}

// remoteReplay pipes the JSONL log through POST /replay, letting the
// daemon's ingest backpressure pace the upload. resumeFrom skips the first N
// deltas of the log — the prefix a previous aborted replay already got
// acknowledged (a durable daemon journals each delta before applying it, so
// the acknowledged prefix survives even a daemon crash).
func remoteReplay(ctx context.Context, ef engineFlags, c *server.Client, tenant, logPath string, pending int, staleness time.Duration, cold bool, resumeFrom int64) error {
	if !cold {
		if _, err := c.Compress(ctx, tenant, bonsai.ClassSelector{}); err != nil {
			return err
		}
	}
	in := os.Stdin
	if logPath != "-" {
		f, err := os.Open(logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Strip comments/blank lines but validate JSON client-side so a typo'd
	// log fails with a line number instead of a mid-stream 400.
	pr, pw := io.Pipe()
	go func() {
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		line, nth := 0, int64(0)
		for sc.Scan() {
			line++
			raw := sc.Bytes()
			if len(raw) == 0 || raw[0] == '#' {
				continue
			}
			if nth++; nth <= resumeFrom {
				continue
			}
			if !json.Valid(raw) {
				pw.CloseWithError(fmt.Errorf("replay: %s:%d: invalid JSON", logPath, line))
				return
			}
			if _, err := pw.Write(append(raw, '\n')); err != nil {
				return
			}
		}
		pw.CloseWithError(sc.Err())
	}()
	rep, err := c.Replay(ctx, tenant, pr, pending, staleness)
	if err != nil {
		reportLastAcked(ctx, c, tenant, err)
		return err
	}
	if done, err := ef.emit(rep); done {
		return err
	}
	printReplayReport(rep)
	return nil
}

// reportLastAcked runs after a failed replay stream: it asks the daemon how
// far the tenant's journal got so the operator can resume the log without
// re-sending the acknowledged prefix. Best-effort — if the daemon is down
// (the usual reason the stream died), it says so and the operator restarts
// the daemon first; its recovery replays the journal, and /stats then
// reports the same sequence.
func reportLastAcked(ctx context.Context, c *server.Client, tenant string, cause error) {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	st, err := c.Stats(sctx, tenant)
	if err != nil || st.Journal == nil {
		fmt.Fprintf(os.Stderr, "replay: stream failed (%v); daemon unreachable or tenant not durable — after it is back, check journal seq in /stats and rerun with -resume-from\n", cause)
		return
	}
	fmt.Fprintf(os.Stderr, "replay: stream failed (%v); daemon acknowledged %d deltas (journal seq %d, applied %d) — rerun with -resume-from %d\n",
		cause, st.Journal.LastSeq, st.Journal.LastSeq, st.Journal.AppliedSeq, st.Journal.LastSeq)
}
