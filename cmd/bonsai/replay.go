package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bonsai"
)

// cmdReplay feeds a JSON-lines delta log through the engine's streaming
// ingestion path (Engine.ApplyStream): one bonsai.Delta object per line,
// blank lines and lines starting with '#' skipped. The log is read with the
// stream's own backpressure — a line is consumed only when the engine is
// ready for it — so replaying a large log never buffers it in memory.
// Invalid deltas (unknown routers, malformed prefixes) are counted and
// skipped exactly as a live stream would; malformed JSON aborts the replay.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	ef := addEngineFlags(fs)
	logPath := fs.String("log", "", "JSONL delta log, one Delta per line (- for stdin)")
	pending := fs.Int("pending", 0, "flush a batch once this many deltas are queued (0 = unbounded)")
	staleness := fs.Duration("staleness", 0, "gather a batch for at most this long (0 = flush when the log drains)")
	cold := fs.Bool("cold", false, "skip the warm-up compression (adoption counters will read zero)")
	resumeFrom := fs.Int64("resume-from", 0, "skip the first N deltas of the log — the prefix a prior aborted replay already got acknowledged (see the -resume-from hint it printed)")
	verbose := fs.Bool("v", false, "print one line per applied batch")
	fs.Parse(args)
	if *logPath == "" {
		return fmt.Errorf("replay: -log required")
	}
	if *resumeFrom < 0 {
		return fmt.Errorf("replay: -resume-from must be >= 0")
	}
	ctx := context.Background()
	if c, tenant, ok, err := ef.remote(ctx); err != nil {
		return err
	} else if ok {
		return remoteReplay(ctx, ef, c, tenant, *logPath, *pending, *staleness, *cold, *resumeFrom)
	}
	eng, err := ef.open()
	if err != nil {
		return err
	}
	defer eng.Close()

	// Warm the abstraction cache so batches exercise the adoption path; a
	// cold replay only measures ingestion and rebuild.
	if !*cold {
		if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
			return err
		}
	}

	in := os.Stdin
	if *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	// The producer decodes lines onto an unbuffered channel: ApplyStream's
	// backpressure contract means the file is read only as fast as batches
	// apply.
	deltas := make(chan bonsai.Delta)
	prodErr := make(chan error, 1)
	go func() {
		defer close(deltas)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		line, nth := 0, int64(0)
		for sc.Scan() {
			line++
			raw := sc.Bytes()
			if len(raw) == 0 || raw[0] == '#' {
				continue
			}
			if nth++; nth <= *resumeFrom {
				continue
			}
			var d bonsai.Delta
			if err := json.Unmarshal(raw, &d); err != nil {
				prodErr <- fmt.Errorf("replay: %s:%d: %w", *logPath, line, err)
				return
			}
			deltas <- d
		}
		prodErr <- sc.Err()
	}()

	opts := []bonsai.StreamApplyOption{
		bonsai.WithMaxPending(*pending),
		bonsai.WithMaxStaleness(*staleness),
	}
	if *verbose {
		batch := 0
		opts = append(opts, bonsai.WithBatchObserver(func(r *bonsai.ApplyReport) {
			batch++
			fmt.Printf("batch %3d: adopted=%d invalidated=%d new=%d removed=%d coalesced=%d degraded=%v (%v)\n",
				batch, r.Adopted, r.Invalidated, r.NewClasses, r.RemovedClasses,
				r.Coalesced, r.Degraded, r.Duration.Round(time.Microsecond))
		}))
	}

	rep, err := eng.ApplyStream(ctx, deltas, opts...)
	if err != nil {
		return err
	}
	if err := <-prodErr; err != nil {
		return err
	}
	if done, err := ef.emit(rep); done {
		return err
	}
	printReplayReport(rep)
	return nil
}

// printReplayReport renders the stream report for text output (shared by
// the local and thin-client replay paths).
func printReplayReport(rep *bonsai.ApplyStreamReport) {
	ratio := ""
	if rep.CoalesceRatio > 0 {
		ratio = fmt.Sprintf(" (coalesce ratio %.1fx)", rep.CoalesceRatio)
	}
	fmt.Printf("replayed %d deltas (%d rejected) in %v: %d batches (%d empty), %d edits -> %d applied%s\n",
		rep.Deltas, rep.Rejected, rep.Duration.Round(time.Millisecond),
		rep.Batches, rep.EmptyBatches, rep.EditsReceived, rep.EditsApplied, ratio)
	fmt.Printf("adoption: %d adopted, %d invalidated, %d new, %d removed, %d degraded batches\n",
		rep.Adopted, rep.Invalidated, rep.NewClasses, rep.RemovedClasses, rep.DegradedBatches)
	fmt.Printf("flushes: drain %d, pending %d, stale %d, close %d; max queue depth %d\n",
		rep.FlushDrain, rep.FlushPending, rep.FlushStale, rep.FlushClose, rep.MaxPending)
}
