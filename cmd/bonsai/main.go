// Command bonsai is the command-line front end to the control-plane
// compression library: generate evaluation networks, compress them,
// simulate the control plane, count router roles, and answer reachability
// queries with or without compression.
//
//	bonsai gen -topo fattree -k 8 > net.txt
//	bonsai compress -f net.txt
//	bonsai compress -f net.txt -dest 10.0.0.0/24 -write-abstract
//	bonsai simulate -f net.txt -dest 10.0.0.0/24
//	bonsai verify -f net.txt -src edge-1-1 -dest 10.0.0.0/24 -bonsai
//	bonsai roles -f net.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/ec"
	"bonsai/internal/netgen"
	"bonsai/internal/srp"
	"bonsai/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "roles":
		err = cmdRoles(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bonsai:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bonsai <gen|compress|simulate|verify|roles> [flags]
  gen       -topo fattree|ring|mesh|dc|wan [-k N] [-n N] [-policy shortest|prefer-bottom]
  compress  -f FILE [-dest PREFIX] [-write-abstract] [-max N]
  simulate  -f FILE -dest PREFIX
  verify    -f FILE [-src ROUTER -dest PREFIX] [-all-pairs] [-bonsai] [-per-pair]
  roles     -f FILE [-no-erase] [-no-statics]`)
	os.Exit(2)
}

func loadNetwork(path string) (*build.Builder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := config.Parse(f)
	if err != nil {
		return nil, err
	}
	return build.New(net)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	topoName := fs.String("topo", "fattree", "fattree|ring|mesh|dc|wan")
	k := fs.Int("k", 8, "fat-tree arity")
	n := fs.Int("n", 50, "ring/mesh size")
	pol := fs.String("policy", "shortest", "fattree policy: shortest|prefer-bottom")
	fs.Parse(args)

	var net *config.Network
	switch *topoName {
	case "fattree":
		p := netgen.PolicyShortestPath
		if *pol == "prefer-bottom" {
			p = netgen.PolicyPreferBottom
		}
		net = netgen.Fattree(*k, p)
	case "ring":
		net = netgen.Ring(*n)
	case "mesh":
		net = netgen.FullMesh(*n)
	case "dc":
		net = netgen.Datacenter(netgen.DCOptions{})
	case "wan":
		net = netgen.WAN(netgen.WANOptions{})
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	return config.Print(os.Stdout, net)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	file := fs.String("f", "", "network file")
	dest := fs.String("dest", "", "compress only this destination prefix")
	writeAbstract := fs.Bool("write-abstract", false, "print the compressed configuration (requires -dest)")
	maxClasses := fs.Int("max", 0, "max destination classes (0 = all)")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("compress: -f required")
	}
	b, err := loadNetwork(*file)
	if err != nil {
		return err
	}

	classes := b.Classes()
	if *dest != "" {
		cls, err := ec.ClassFor(b.Cfg, *dest)
		if err != nil {
			return err
		}
		classes = []ec.Class{cls}
	} else if *maxClasses > 0 && len(classes) > *maxClasses {
		classes = classes[:*maxClasses]
	}

	bddStart := time.Now()
	comp := b.NewCompiler(true)
	bddSetup := time.Since(bddStart)

	var sumNodes, sumEdges int
	start := time.Now()
	for _, cls := range classes {
		abs, err := b.Compress(comp, cls)
		if err != nil {
			return err
		}
		sumNodes += abs.NumAbstractNodes()
		sumEdges += abs.NumAbstractEdges()
		if *writeAbstract && *dest != "" {
			absCfg, err := b.AbstractConfig(cls, abs)
			if err != nil {
				return err
			}
			return config.Print(os.Stdout, absCfg)
		}
	}
	elapsed := time.Since(start)
	nc := float64(len(classes))
	fmt.Printf("network: %d nodes, %d links, %d interfaces, %d classes (compressed %d)\n",
		b.G.NumNodes(), b.G.NumLinks(), b.Cfg.NumInterfaces(), len(b.Classes()), len(classes))
	fmt.Printf("abstract: avg %.1f nodes / %.1f links (%.2fx / %.2fx)\n",
		float64(sumNodes)/nc, float64(sumEdges)/nc,
		float64(b.G.NumNodes())*nc/float64(sumNodes),
		float64(b.G.NumLinks())*nc/float64(sumEdges))
	fresh, transported, served := b.AbstractionCacheStats()
	fmt.Printf("dedup: %d compressed fresh, %d transported by symmetry, %d served from cache (of %d classes)\n",
		fresh, transported, served, len(classes))
	fmt.Printf("time: bdd setup %v, compression %v total (%v per class)\n",
		bddSetup.Round(time.Millisecond), elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(len(classes))).Round(time.Microsecond))
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	file := fs.String("f", "", "network file")
	dest := fs.String("dest", "", "destination prefix")
	fs.Parse(args)
	if *file == "" || *dest == "" {
		return fmt.Errorf("simulate: -f and -dest required")
	}
	b, err := loadNetwork(*file)
	if err != nil {
		return err
	}
	cls, err := ec.ClassFor(b.Cfg, *dest)
	if err != nil {
		return err
	}
	inst, err := b.Instance(cls)
	if err != nil {
		return err
	}
	sol, err := srp.Solve(inst)
	if err != nil {
		return err
	}
	for _, u := range b.G.Nodes() {
		var hops []string
		for _, v := range sol.Fwd[u] {
			hops = append(hops, b.G.Name(v))
		}
		fmt.Printf("%-16s label=%v fwd=%v\n", b.G.Name(u), sol.Label[u], hops)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	file := fs.String("f", "", "network file")
	src := fs.String("src", "", "source router")
	dest := fs.String("dest", "", "destination prefix")
	allPairs := fs.Bool("all-pairs", false, "verify all-pairs reachability")
	bonsai := fs.Bool("bonsai", false, "compress before verifying")
	perPair := fs.Bool("per-pair", false, "per-query certification (Minesweeper-style cost)")
	maxClasses := fs.Int("max", 0, "max destination classes")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("verify: -f required")
	}
	b, err := loadNetwork(*file)
	if err != nil {
		return err
	}
	if *allPairs {
		opts := verify.Options{MaxClasses: *maxClasses, PerPairCertification: *perPair}
		var res *verify.Result
		if *bonsai {
			res, err = verify.AllPairsBonsai(b, opts)
		} else {
			res, err = verify.AllPairsConcrete(b, opts)
		}
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	}
	if *src == "" || *dest == "" {
		return fmt.Errorf("verify: -src and -dest (or -all-pairs) required")
	}
	ok, dur, err := verify.Reach(b, *src, *dest, *bonsai)
	if err != nil {
		return err
	}
	fmt.Printf("reachable=%v in %v\n", ok, dur.Round(time.Microsecond))
	return nil
}

func cmdRoles(args []string) error {
	fs := flag.NewFlagSet("roles", flag.ExitOnError)
	file := fs.String("f", "", "network file")
	noErase := fs.Bool("no-erase", false, "count unused communities as distinct")
	noStatics := fs.Bool("no-statics", false, "ignore static routes")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("roles: -f required")
	}
	b, err := loadNetwork(*file)
	if err != nil {
		return err
	}
	fmt.Printf("%d roles among %d routers\n", b.RoleCount(!*noErase, *noStatics), b.G.NumNodes())
	return nil
}
