// Command bonsai is the command-line front end to the control-plane
// compression library: generate evaluation networks, compress them,
// simulate the control plane, count router roles, and answer reachability
// queries with or without compression. Every subcommand except gen is a
// thin client of the public bonsai package — the same engine a library
// consumer embeds.
//
//	bonsai gen -topo fattree -k 8 > net.txt
//	bonsai compress -f net.txt [-json]
//	bonsai compress -f net.txt -dest 10.0.0.0/24 -write-abstract
//	bonsai simulate -f net.txt -dest 10.0.0.0/24
//	bonsai verify -f net.txt -src edge-1-1 -dest 10.0.0.0/24 -bonsai
//	bonsai verify -f net.txt -all-pairs -json
//	bonsai roles -f net.txt
//	bonsai replay -f net.txt -log deltas.jsonl -pending 32 -v
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bonsai"
	"bonsai/internal/netgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "-version", "version":
		fmt.Println(bonsai.Version())
		return
	case "gen":
		err = cmdGen(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "roles":
		err = cmdRoles(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bonsai:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bonsai <gen|compress|simulate|verify|roles|replay|version> [flags]
  gen       -topo fattree|ring|mesh|dc|wan|spineleaf [-k N] [-n N] [-policy shortest|prefer-bottom]
            [-spines N] [-leaves N] [-ext N]
  compress  -f FILE [-dest PREFIX] [-write-abstract] [-max N] [-rows] [-budget-mb N] [-json]
  simulate  -f FILE -dest PREFIX [-json]
  verify    -f FILE [-src ROUTER -dest PREFIX] [-all-pairs] [-bonsai] [-per-pair] [-json]
  roles     -f FILE [-no-erase] [-no-statics] [-json]
  replay    -f FILE -log DELTAS.jsonl [-pending N] [-staleness DUR] [-resume-from N] [-cold] [-v] [-json]
  version   print build metadata

Engine subcommands also accept -server URL -tenant NAME to run as a thin
client of a bonsaid daemon (with -f, the tenant is opened from the file
first; an already-open tenant is reused).`)
	os.Exit(2)
}

// engineFlags holds the flags shared by every engine-backed subcommand.
// With -server, the subcommand runs as a thin client of a bonsaid daemon
// instead of opening an in-process engine.
type engineFlags struct {
	file    *string
	jsonOut *bool
	server  *string
	tenant  *string
}

// addEngineFlags registers the shared flags on fs.
func addEngineFlags(fs *flag.FlagSet) engineFlags {
	return engineFlags{
		file:    fs.String("f", "", "network file"),
		jsonOut: fs.Bool("json", false, "emit the structured result as JSON"),
		server:  fs.String("server", "", "bonsaid base URL (thin-client mode, e.g. http://127.0.0.1:7171)"),
		tenant:  fs.String("tenant", "", "tenant name on the daemon (required with -server)"),
	}
}

// open parses the shared flags' network file into an Engine.
func (ef engineFlags) open(opts ...bonsai.Option) (*bonsai.Engine, error) {
	if *ef.file == "" {
		return nil, fmt.Errorf("-f required")
	}
	return bonsai.OpenFile(*ef.file, opts...)
}

// emit prints v as indented JSON when -json was given and returns true.
func (ef engineFlags) emit(v any) (bool, error) {
	if !*ef.jsonOut {
		return false, nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return true, enc.Encode(v)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	topoName := fs.String("topo", "fattree", "fattree|ring|mesh|dc|wan|spineleaf")
	k := fs.Int("k", 8, "fat-tree arity")
	n := fs.Int("n", 50, "ring/mesh size")
	pol := fs.String("policy", "shortest", "fattree policy: shortest|prefer-bottom")
	spines := fs.Int("spines", 0, "spine-leaf: spine count (0 = default)")
	leaves := fs.Int("leaves", 0, "spine-leaf: leaf count (0 = default)")
	ext := fs.Int("ext", 0, "spine-leaf: external peers per leaf (0 = default)")
	fs.Parse(args)

	var net *bonsai.Network
	switch *topoName {
	case "fattree":
		p := netgen.PolicyShortestPath
		if *pol == "prefer-bottom" {
			p = netgen.PolicyPreferBottom
		}
		net = netgen.Fattree(*k, p)
	case "ring":
		net = netgen.Ring(*n)
	case "mesh":
		net = netgen.FullMesh(*n)
	case "dc":
		net = netgen.Datacenter(netgen.DCOptions{})
	case "wan":
		net = netgen.WAN(netgen.WANOptions{})
	case "spineleaf":
		net = netgen.SpineLeaf(netgen.SpineLeafOptions{Spines: *spines, Leaves: *leaves, ExtPerLeaf: *ext})
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	return bonsai.Print(os.Stdout, net)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	ef := addEngineFlags(fs)
	dest := fs.String("dest", "", "compress only this destination prefix")
	writeAbstract := fs.Bool("write-abstract", false, "print the compressed configuration (requires -dest)")
	maxClasses := fs.Int("max", 0, "max destination classes (0 = all)")
	rows := fs.Bool("rows", true, "stream one row per class as it completes (text output)")
	budgetMB := fs.Int64("budget-mb", 0, "abstraction store memory budget in MiB (0 = unbounded)")
	fs.Parse(args)
	ctx := context.Background()
	if c, tenant, ok, err := ef.remote(ctx); err != nil {
		return err
	} else if ok {
		if *writeAbstract {
			return fmt.Errorf("compress: -write-abstract is local-only")
		}
		sel := bonsai.ClassSelector{Prefix: *dest, MaxClasses: *maxClasses}
		return remoteCompress(ctx, ef, c, tenant, sel, *rows && !*ef.jsonOut)
	}
	var opts []bonsai.Option
	if *budgetMB > 0 {
		opts = append(opts, bonsai.WithMemoryBudget(*budgetMB<<20))
	}
	eng, err := ef.open(opts...)
	if err != nil {
		return err
	}
	defer eng.Close()

	if *writeAbstract {
		if *dest == "" {
			return fmt.Errorf("compress: -write-abstract requires -dest")
		}
		absCfg, err := eng.AbstractNetwork(ctx, *dest)
		if err != nil {
			return err
		}
		return bonsai.Print(os.Stdout, absCfg)
	}

	// The report streams: rows print as classes complete, so a large
	// network shows progress immediately and the process never buffers the
	// per-class results (-json emits only the aggregate report, which is
	// O(1) regardless of class count).
	s, err := eng.CompressStream(ctx, bonsai.ClassSelector{Prefix: *dest, MaxClasses: *maxClasses})
	if err != nil {
		return err
	}
	printRows := *rows && !*ef.jsonOut
	for r := range s.Results() {
		if printRows {
			fmt.Printf("%-18s %3d nodes %3d links  %-11s %v\n",
				r.Prefix, r.AbstractNodes, r.AbstractLinks, r.Source,
				r.Duration.Round(time.Microsecond))
		}
	}
	if err := s.Err(); err != nil {
		return err
	}
	rep := s.Report()
	if done, err := ef.emit(rep); done {
		return err
	}
	fmt.Printf("network: %d nodes, %d links, %d interfaces, %d classes (compressed %d)\n",
		rep.Network.Routers, rep.Network.Links, rep.Network.Interfaces,
		rep.Network.Classes, rep.ClassesCompressed)
	fmt.Printf("abstract: avg %.1f nodes / %.1f links (%.2fx / %.2fx)\n",
		rep.AvgAbstractNodes(), rep.AvgAbstractLinks(), rep.NodeRatio, rep.LinkRatio)
	fmt.Printf("dedup: %d compressed fresh, %d transported by symmetry, %d served from cache (of %d classes)\n",
		rep.Cache.Fresh, rep.Cache.Transported, rep.Cache.Served, rep.ClassesCompressed)
	if rep.Cache.BudgetBytes > 0 {
		fmt.Printf("store: %.1f MiB live (peak %.1f MiB, budget %.1f MiB), %d evictions\n",
			float64(rep.Cache.LiveBytes)/(1<<20), float64(rep.Cache.PeakBytes)/(1<<20),
			float64(rep.Cache.BudgetBytes)/(1<<20), rep.Cache.Evictions)
	}
	fmt.Printf("time: bdd setup %v, compression %v total (%v per class)\n",
		rep.BDDSetup.Round(time.Millisecond), rep.Duration.Round(time.Millisecond),
		(rep.Duration / time.Duration(max(rep.ClassesCompressed, 1))).Round(time.Microsecond))
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	ef := addEngineFlags(fs)
	dest := fs.String("dest", "", "destination prefix")
	fs.Parse(args)
	if *dest == "" {
		return fmt.Errorf("simulate: -f and -dest required")
	}
	ctx := context.Background()
	var rep *bonsai.RoutesReport
	if c, tenant, ok, err := ef.remote(ctx); err != nil {
		return err
	} else if ok {
		rep, err = c.Routes(ctx, tenant, *dest)
		if err != nil {
			return err
		}
	} else {
		eng, err := ef.open()
		if err != nil {
			return err
		}
		defer eng.Close()
		rep, err = eng.Routes(ctx, *dest)
		if err != nil {
			return err
		}
	}
	if done, err := ef.emit(rep); done {
		return err
	}
	for _, r := range rep.Routes {
		fmt.Printf("%-16s label=%v fwd=%v\n", r.Router, r.Label, r.NextHops)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	ef := addEngineFlags(fs)
	src := fs.String("src", "", "source router")
	dest := fs.String("dest", "", "destination prefix")
	allPairs := fs.Bool("all-pairs", false, "verify all-pairs reachability")
	useBonsai := fs.Bool("bonsai", false, "compress before verifying")
	perPair := fs.Bool("per-pair", false, "per-query certification (Minesweeper-style cost)")
	maxClasses := fs.Int("max", 0, "max destination classes")
	fs.Parse(args)
	ctx := context.Background()
	c, tenant, isRemote, err := ef.remote(ctx)
	if err != nil {
		return err
	}
	var eng *bonsai.Engine
	if !isRemote {
		if eng, err = ef.open(); err != nil {
			return err
		}
		defer eng.Close()
	}
	if *allPairs {
		req := bonsai.VerifyRequest{
			Concrete:   !*useBonsai,
			PerPair:    *perPair,
			MaxClasses: *maxClasses,
		}
		var rep *bonsai.Report
		if isRemote {
			rep, err = c.Verify(ctx, tenant, req)
		} else {
			rep, err = eng.Verify(ctx, req)
		}
		if err != nil {
			return err
		}
		if done, err := ef.emit(rep); done {
			return err
		}
		fmt.Println(rep)
		return nil
	}
	if *src == "" || *dest == "" {
		return fmt.Errorf("verify: -src and -dest (or -all-pairs) required")
	}
	var res *bonsai.ReachResult
	switch {
	case isRemote:
		res, err = c.Reach(ctx, tenant, *src, *dest, !*useBonsai)
	case *useBonsai:
		res, err = eng.Reach(ctx, *src, *dest)
	default:
		res, err = eng.ReachConcrete(ctx, *src, *dest)
	}
	if err != nil {
		return err
	}
	if done, err := ef.emit(res); done {
		return err
	}
	fmt.Printf("reachable=%v in %v\n", res.Reachable, res.Duration.Round(time.Microsecond))
	return nil
}

func cmdRoles(args []string) error {
	fs := flag.NewFlagSet("roles", flag.ExitOnError)
	ef := addEngineFlags(fs)
	noErase := fs.Bool("no-erase", false, "count unused communities as distinct")
	noStatics := fs.Bool("no-statics", false, "ignore static routes")
	fs.Parse(args)
	ctx := context.Background()
	req := bonsai.RolesRequest{NoErase: *noErase, NoStatics: *noStatics}
	var rep *bonsai.RolesReport
	if c, tenant, ok, err := ef.remote(ctx); err != nil {
		return err
	} else if ok {
		rep, err = c.Roles(ctx, tenant, req)
		if err != nil {
			return err
		}
	} else {
		eng, err := ef.open()
		if err != nil {
			return err
		}
		defer eng.Close()
		rep, err = eng.Roles(ctx, req)
		if err != nil {
			return err
		}
	}
	if done, err := ef.emit(rep); done {
		return err
	}
	fmt.Printf("%d roles among %d routers\n", rep.Roles, rep.Routers)
	return nil
}
