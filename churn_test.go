package bonsai_test

import (
	"context"
	"runtime"
	"testing"

	"bonsai"
	"bonsai/internal/netgen"
)

// TestCompilerChurnBoundedMemory is the regression test for the pooled-
// compiler lifecycle: Verify with more workers than the idle pool holds
// forces overflow compilers to be created, used once, and retired on
// release. Retirement must free each compiler's BDD tables and remove its
// contribution from the engine aggregates — before retire() existed, every
// pool-overflow release leaked the compiler's unique table, so live nodes
// and heap grew linearly with query count. This test pins both down.
func TestCompilerChurnBoundedMemory(t *testing.T) {
	eng, err := bonsai.Open(netgen.Fattree(4, netgen.PolicyShortestPath),
		bonsai.WithWorkers(2)) // idle pool caps at workers+2 = 4
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}

	// One churn round checks out 16 compilers at once: 4 from the pool,
	// 12 freshly built and retired when the pool refuses them back.
	churn := func() {
		if _, err := eng.Verify(ctx, bonsai.VerifyRequest{Workers: 16}); err != nil {
			t.Fatal(err)
		}
	}

	heapAfterGC := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	// Warm up past first-touch allocations (pool fill, caches, lazy init)
	// before taking the baseline.
	for i := 0; i < 3; i++ {
		churn()
	}
	baseHeap := heapAfterGC()
	base := eng.BDDStats()
	if base.Managers <= 0 || base.NodesLive <= 0 {
		t.Fatalf("implausible baseline BDD stats: %+v", base)
	}

	const rounds = 40
	for i := 0; i < rounds; i++ {
		churn()
	}

	after := eng.BDDStats()
	// Every overflow compiler must have been retired, nodes and all; only
	// the capped idle pool may remain live.
	if after.Managers > base.Managers {
		t.Fatalf("live managers grew %d -> %d across churn", base.Managers, after.Managers)
	}
	if after.NodesLive > 2*base.NodesLive {
		t.Fatalf("live BDD nodes grew %d -> %d across %d churn rounds; retired compilers are leaking",
			base.NodesLive, after.NodesLive, rounds)
	}
	// Heap must not scale with churn count. Identical queries add no new
	// abstractions, so allow only constant slack (GC noise, pool caches).
	if got := heapAfterGC(); got > baseHeap+baseHeap/2+8<<20 {
		t.Fatalf("heap grew %d -> %d bytes across %d churn rounds", baseHeap, got, rounds)
	}
}
