package bonsai

import (
	"runtime"

	"bonsai/internal/build"
)

// options collects the Engine's tunables; Open applies functional Options
// over the defaults.
type options struct {
	workers      int
	shards       int
	dedup        bool
	bddCacheBits int
	maxClasses   int
	memBudget    int64
	pool         *build.Pool
	poolFloor    int64
	poolLabel    string
	relStore     string
}

func defaultOptions() options {
	return options{dedup: true}
}

// Option configures an Engine at Open time.
type Option func(*options)

// WithWorkers sets how many goroutines (each owning one BDD compiler) the
// engine uses for compression and verification fan-out. Zero or negative
// means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithDedup enables or disables the cross-class abstraction deduplication
// cache (identity sharing, symmetry transport, and adoption across
// incremental updates). It defaults to on; disabling it makes every
// Compress call run full abstraction refinement, which is the reference
// behavior benchmarks compare against.
func WithDedup(on bool) Option {
	return func(o *options) { o.dedup = on }
}

// WithBDDCacheBits sets the size exponent of each BDD manager's operation
// caches (2^bits slots; see the internal bdd package for the geometry).
// Zero selects the default. Larger caches help policy-heavy networks at
// ~16 bytes per slot per manager.
func WithBDDCacheBits(bits int) Option {
	return func(o *options) { o.bddCacheBits = bits }
}

// WithMaxClasses bounds how many destination equivalence classes queries
// process by default; requests can still override it per call. Zero means
// no bound.
func WithMaxClasses(n int) Option {
	return func(o *options) { o.maxClasses = n }
}

// WithShards sets how many work-stealing shards (worker deques, each with
// its own policy compiler) streaming compression fans out over. Zero or
// negative defers to the worker count.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithMemoryBudget bounds the engine's abstraction store to approximately
// the given number of bytes of *retained* results. Past the budget,
// least-recently-used cached abstractions are evicted and recomputed on
// their next query. Pinned transport seeds (one per symmetry family) are
// charged but never evicted, so tiny budgets degrade to the seed working
// set instead of thrashing; in-flight computations are charged when they
// complete, so transient overshoot is bounded by one abstraction per
// shard. Zero (the default) means unbounded retention.
func WithMemoryBudget(bytes int64) Option {
	return func(o *options) { o.memBudget = bytes }
}

// WithSharedPool attaches the engine's abstraction store to a shared
// cross-engine memory pool (see NewSharedPool): the pool's global ceiling
// bounds the *sum* of all attached engines' retained abstraction bytes,
// shedding least-recently-used entries from the engine furthest over its
// floor when the total overflows. floor bytes are guaranteed to this engine
// — cross-engine pressure never evicts below it (the engine's own
// WithMemoryBudget still may). label identifies the engine in pool stats;
// empty defaults to the network name. The attachment follows the engine
// across Apply snapshots and is released by Close.
func WithSharedPool(p *SharedPool, floor int64, label string) Option {
	return func(o *options) {
		o.pool = p
		o.poolFloor = floor
		o.poolLabel = label
	}
}

// WithRelationStore attaches a persisted relation store at path: Open loads
// it best-effort (a missing, stale, or damaged file simply means a cold
// start — the store is a cache, never the source of truth) and Close writes
// the warm state back, so the next Open of the same network answers its
// first queries from disk instead of re-running refinement. Use
// Engine.SaveRelationStore / Engine.LoadRelationStore for explicit control
// (and for the load/save errors Open and Close deliberately swallow).
func WithRelationStore(path string) Option {
	return func(o *options) { o.relStore = path }
}

func (o options) workerCount() int {
	if o.workers > 0 {
		return o.workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o options) shardCount() int {
	if o.shards > 0 {
		return o.shards
	}
	return o.workerCount()
}
