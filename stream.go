package bonsai

import (
	"context"
	"iter"
	"sync"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/verify"
)

// ClassResult is one per-class row of a streaming compression.
type ClassResult struct {
	// Prefix is the destination class's representative prefix.
	Prefix string `json:"prefix"`
	// AbstractNodes and AbstractLinks size the class's compressed topology.
	AbstractNodes int `json:"abstract_nodes"`
	AbstractLinks int `json:"abstract_links"`
	// Source reports where the abstraction came from: "fresh" (full
	// refinement), "transported" (symmetry transport), "cache" (identity
	// hit), or "adopted" (carried across an incremental update).
	Source string `json:"source"`
	// Duration is this class's wall-clock share, as seen by its worker.
	Duration time.Duration `json:"duration_ns"`
}

// StreamOption configures one CompressStream call.
type StreamOption func(*streamOptions)

type streamOptions struct {
	progress func(done, total int)
}

// WithProgress installs a progress callback invoked after each class
// completes, with the number of classes finished so far and the total
// selected. Callbacks run on worker goroutines and must be fast and
// concurrency-safe.
func WithProgress(f func(done, total int)) StreamOption {
	return func(o *streamOptions) { o.progress = f }
}

// Stream is an in-flight streaming compression: per-class results arrive
// through Results as workers complete them, while the pipeline — lazy class
// enumeration feeding the sharded, fingerprint-grouped scheduler — stays
// bounded: an O(shards) result buffer, dispatch throttled to O(shards)
// in-flight classes, and (under WithMemoryBudget) a capped abstraction
// store. Results must be drained (ranged to completion, or broken out of,
// which cancels the remaining work); Err and Report are valid afterwards.
type Stream struct {
	results chan ClassResult
	done    chan struct{} // closed after workers exit and err/elapsed are set
	cancel  context.CancelFunc
	err     error

	b        *build.Builder
	netInfo  NetworkInfo
	total    int
	bddSetup time.Duration
	start    time.Time
	elapsed  time.Duration

	mu                 sync.Mutex
	count              int
	sumNodes, sumLinks int
}

// CompressStream starts compressing the selected destination classes and
// returns a Stream of per-class results, yielded as they complete. Classes
// are enumerated lazily from the prefix trie and dispatched to a sharded
// work-stealing scheduler that groups them by deduplication fingerprint:
// each group's leader compresses once, its followers are parked until the
// leader's result is cached and then served without refinement. Batch
// entry points (Compress) are this pipeline plus a drain.
func (e *Engine) CompressStream(ctx context.Context, sel ClassSelector, opts ...StreamOption) (*Stream, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	var so streamOptions
	for _, opt := range opts {
		opt(&so)
	}
	st := e.state.Load()

	var seq iter.Seq[ec.Class]
	var total int
	if sel.Prefix != "" {
		cls, err := st.b.ClassFor(sel.Prefix)
		if err != nil {
			return nil, err
		}
		total = 1
		seq = func(yield func(ec.Class) bool) { yield(cls) }
	} else {
		max := sel.MaxClasses
		if max == 0 {
			max = e.opts.maxClasses
		}
		total = st.b.NumClasses()
		if max > 0 && total > max {
			total = max
		}
		limit := total
		seq = func(yield func(ec.Class) bool) {
			n := 0
			for cls := range st.b.ClassStream() {
				if n == limit || !yield(cls) {
					return
				}
				n++
			}
		}
	}

	shards := e.opts.shardCount()
	if shards > total {
		shards = total
	}
	if shards < 1 {
		shards = 1
	}

	bddStart := time.Now()
	comps := make([]*pooledCompiler, shards)
	for i := range comps {
		comps[i] = e.acquire(st)
	}

	ctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		// A small buffer decouples workers from the consumer's per-row
		// latency without accumulating the report: memory stays O(shards).
		results:  make(chan ClassResult, 2*shards),
		done:     make(chan struct{}),
		cancel:   cancel,
		b:        st.b,
		netInfo:  e.networkInfo(st),
		total:    total,
		bddSetup: time.Since(bddStart),
		start:    time.Now(),
	}

	var key func(ec.Class) string
	if e.opts.dedup {
		key = verify.FingerprintKey(st.b)
	}
	go func() {
		defer cancel()
		err := verify.ForEachClassKeyed(ctx, seq, shards, key, func(w int, cls ec.Class) error {
			t0 := time.Now()
			var abs *core.Abstraction
			prov := build.ProvFresh
			var err error
			if e.opts.dedup {
				abs, prov, err = st.b.CompressTagged(ctx, comps[w].comp, cls)
			} else {
				abs, err = st.b.CompressFresh(ctx, comps[w].comp, cls)
			}
			if err != nil {
				return err
			}
			r := ClassResult{
				Prefix:        cls.Prefix.String(),
				AbstractNodes: abs.NumAbstractNodes(),
				AbstractLinks: abs.NumAbstractEdges(),
				Source:        prov.String(),
				Duration:      time.Since(t0),
			}
			s.mu.Lock()
			s.count++
			done := s.count
			s.sumNodes += r.AbstractNodes
			s.sumLinks += r.AbstractLinks
			s.mu.Unlock()
			if so.progress != nil {
				so.progress(done, s.total)
			}
			select {
			case s.results <- r:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		for _, pc := range comps {
			e.release(pc)
		}
		s.elapsed = time.Since(s.start)
		s.err = err
		close(s.done)
		close(s.results)
	}()
	return s, nil
}

// Results yields per-class results in completion order. Ranging to
// completion drains the pipeline; breaking out cancels the remaining work
// and discards undelivered results. Results is single-use.
func (s *Stream) Results() iter.Seq[ClassResult] {
	return func(yield func(ClassResult) bool) {
		for r := range s.results {
			if !yield(r) {
				s.cancel()
				for range s.results { // unblock workers; discard the tail
				}
				return
			}
		}
	}
}

// Err reports how the stream ended: nil after a complete run, the
// context's error after cancellation (including a Results break), or the
// first per-class failure. It blocks until the pipeline has shut down, so
// call it after draining Results.
func (s *Stream) Err() error {
	<-s.done
	return s.err
}

// Report aggregates the streamed results into the batch CompressReport.
// Like Err it blocks until the pipeline has shut down; after an error or an
// early break it covers the classes that completed.
func (s *Stream) Report() *CompressReport {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &CompressReport{
		Network:           s.netInfo,
		ClassesCompressed: s.count,
		SumAbstractNodes:  s.sumNodes,
		SumAbstractLinks:  s.sumLinks,
		Cache:             cacheStats(s.b),
		BDDSetup:          s.bddSetup,
		Duration:          s.elapsed,
	}
	if s.sumNodes > 0 {
		rep.NodeRatio = float64(s.netInfo.Routers*s.count) / float64(s.sumNodes)
	}
	if s.sumLinks > 0 {
		rep.LinkRatio = float64(s.netInfo.Links*s.count) / float64(s.sumLinks)
	}
	return rep
}
