// Command wan exercises the multi-protocol machinery of §6 on the WAN
// stand-in (Table 1b): eBGP backbone, per-site OSPF with OSPF-to-BGP
// redistribution at the gateways, static defaults on access switches, and
// neighbor-specific prefix filters. It compresses the network, reports the
// role structure, answers a reachability query with and without Bonsai, and
// writes the compressed network back out as configurations.
//
// Usage: wan [-sites 12] [-print-abstract]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/netgen"
	"bonsai/internal/verify"
)

func main() {
	sites := flag.Int("sites", 12, "number of sites")
	printAbstract := flag.Bool("print-abstract", false, "print the compressed configuration")
	flag.Parse()

	net := netgen.WAN(netgen.WANOptions{Backbone: 10, Sites: *sites, SwitchesPerSite: 5})
	b, err := build.New(net)
	if err != nil {
		log.Fatal(err)
	}
	classes := b.Classes()
	fmt.Printf("WAN: %d devices, %d links, %d destination classes\n",
		b.G.NumNodes(), b.G.NumLinks(), len(classes))
	fmt.Printf("router roles: %d (with unused-tag erasure), %d (without)\n",
		b.RoleCount(true, false), b.RoleCount(false, false))

	comp := b.NewCompiler(true)
	var sumNodes, sumEdges int
	start := time.Now()
	for _, cls := range classes {
		abs, err := b.Compress(context.Background(), comp, cls)
		if err != nil {
			log.Fatal(err)
		}
		sumNodes += abs.NumAbstractNodes()
		sumEdges += abs.NumAbstractEdges()
	}
	fmt.Printf("compressed: avg %.1f nodes / %.1f links per class (%.1fx / %.1fx) in %v\n",
		float64(sumNodes)/float64(len(classes)), float64(sumEdges)/float64(len(classes)),
		float64(b.G.NumNodes())*float64(len(classes))/float64(sumNodes),
		float64(b.G.NumLinks())*float64(len(classes))/float64(sumEdges),
		time.Since(start).Round(time.Millisecond))

	// A reachability query from a remote switch to a site prefix, answered
	// both ways (the §8 Batfish experiment in miniature).
	dest := classes[0].Prefix.String()
	src := fmt.Sprintf("sw-%03d-0", *sites-1)
	for _, bonsai := range []bool{false, true} {
		ok, dur, err := verify.Reach(context.Background(), b, nil, src, dest, bonsai)
		if err != nil {
			log.Fatal(err)
		}
		mode := "concrete"
		if bonsai {
			mode = "bonsai  "
		}
		fmt.Printf("reach %s -> %s [%s]: %v in %v\n", src, dest, mode, ok, dur.Round(time.Microsecond))
	}

	if *printAbstract {
		cls := classes[0]
		abs, err := b.Compress(context.Background(), comp, cls)
		if err != nil {
			log.Fatal(err)
		}
		absCfg, err := b.AbstractConfig(cls, abs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- compressed configuration for %v --\n", cls.Prefix)
		if err := config.Print(os.Stdout, absCfg); err != nil {
			log.Fatal(err)
		}
	}
}
