// Command quickstart reproduces Figure 1 of "Control Plane Compression"
// (SIGCOMM 2018): a four-node RIP network whose two symmetric middle routers
// collapse into one abstract node. It shows the three layers of the library
// in ~80 lines: modelling a routing protocol as a Stable Routing Problem,
// solving it, and compressing it with an effective abstraction.
package main

import (
	"fmt"

	"bonsai/internal/core"
	"bonsai/internal/protocols"
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

func main() {
	// Figure 1(a): a - b1 - d and a - b2 - d, destination d.
	g := topo.New()
	a, b1, b2, d := g.AddNode("a"), g.AddNode("b1"), g.AddNode("b2"), g.AddNode("d")
	g.AddLink(a, b1)
	g.AddLink(a, b2)
	g.AddLink(b1, d)
	g.AddLink(b2, d)

	inst := &srp.Instance{G: g, Dest: d, P: &protocols.RIP{}}
	sol, err := srp.Solve(inst)
	if err != nil {
		panic(err)
	}

	fmt.Println("concrete solution (Figure 1b):")
	for _, u := range g.Nodes() {
		fmt.Printf("  %-3s label=%-4v forwards-to=%v\n", g.Name(u), sol.Label[u], names(g, sol.Fwd[u]))
	}

	// Compress: every edge runs the same (trivial) policy, so the edge key
	// is uniform and refinement only uses topology.
	abs := core.FindAbstraction(g, d, core.Options{
		Mode:    core.ModeEffective,
		EdgeKey: func(u, v topo.NodeID) core.EdgeKey { return core.EdgeKey{Static: true, ACLPermit: true} },
	})

	fmt.Printf("\nabstraction (Figure 1c): %d nodes, %d links\n",
		abs.NumAbstractNodes(), abs.NumAbstractEdges())
	for gi, members := range abs.Groups {
		fmt.Printf("  %s <- %v\n", abs.AbsG.Name(abs.Copies[gi][0]), names(g, members))
	}

	absSol, err := srp.Solve(&srp.Instance{G: abs.AbsG, Dest: abs.AbsDest, P: &protocols.RIP{}})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nabstract solution (labels match Figure 1b through f):")
	for _, u := range abs.AbsG.Nodes() {
		fmt.Printf("  %-8s label=%v\n", abs.AbsG.Name(u), absSol.Label[u])
	}
}

func names(g *topo.Graph, ids []topo.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Name(id)
	}
	return out
}
