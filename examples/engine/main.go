// Command engine is the worked example of the public bonsai library API
// (the README's "Library usage" section runs this program): open a
// long-lived Engine over a network, compress and verify it, answer
// reachability queries from the warm cache, then evolve the network in
// place with Engine.Apply — a link failure and a new customer prefix —
// while observing how much cached work each update preserves.
//
//	go run ./examples/engine
package main

import (
	"context"
	"fmt"
	"log"

	"bonsai"
	"bonsai/internal/netgen"
)

func main() {
	ctx := context.Background()

	// A 20-router fat tree (k=4): every edge router originates one /24 and
	// exports only its own prefixes. Any *bonsai.Network works here — parse
	// one with bonsai.ParseFile, or build one programmatically.
	net := netgen.Fattree(4, netgen.PolicyShortestPath)

	eng, err := bonsai.Open(net,
		bonsai.WithWorkers(2),
		// Bound the abstraction store: past the budget, cold cached
		// abstractions are evicted (and recompress on their next query).
		bonsai.WithMemoryBudget(64<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close() // frees the pooled BDD tables

	// Stream the first compression: classes are enumerated lazily and the
	// per-class results arrive as the sharded scheduler completes them —
	// the batch Compress below is this same pipeline plus a drain.
	s, err := eng.CompressStream(ctx, bonsai.ClassSelector{})
	if err != nil {
		log.Fatal(err)
	}
	for r := range s.Results() {
		fmt.Printf("  %-14s %d abstract nodes (%s)\n", r.Prefix, r.AbstractNodes, r.Source)
	}
	if err := s.Err(); err != nil {
		log.Fatal(err)
	}

	// The batch form aggregates the same stream into one report. The
	// engine deduplicates abstractions across classes, so symmetric
	// classes share one refinement run.
	rep, err := eng.Compress(ctx, bonsai.ClassSelector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d classes: %.0f nodes -> %.1f abstract (%.1fx), %d distinct refinements\n",
		rep.ClassesCompressed, float64(rep.Network.Routers), rep.AvgAbstractNodes(),
		rep.NodeRatio, rep.Cache.Fresh)

	// Verify all-pairs reachability on the compressed network.
	vrep, err := eng.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d pairs, %d reachable, in %v\n",
		vrep.Pairs, vrep.ReachablePairs, vrep.Total.Round(1000))

	// Single queries are answered from the warm abstraction cache.
	res, err := eng.Reach(ctx, "edge-1-1", "10.0.0.0/24")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge-1-1 -> 10.0.0.0/24: reachable=%v (%v)\n", res.Reachable, res.Duration.Round(1000))

	// A link fails. Apply revalidates every cached abstraction against the
	// new topology and invalidates only the classes the failure can affect.
	arep, err := eng.Apply(ctx, bonsai.Delta{
		LinkDown: []bonsai.LinkRef{{A: "agg-3-0", B: "core-0"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link down: %d classes adopted, %d invalidated %v (in %v)\n",
		arep.Adopted, arep.Invalidated, arep.InvalidatedPrefixes, arep.Duration.Round(1000))

	// Queries keep working mid-evolution; invalidated classes recompress
	// lazily on first touch.
	if res, err = eng.Reach(ctx, "edge-1-1", "10.0.0.0/24"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failure: edge-1-1 -> 10.0.0.0/24 reachable=%v\n", res.Reachable)

	// A new customer prefix appears on edge-1-1: originate it and extend
	// the router's export filter so it is announced.
	own := &bonsai.PrefixList{Entries: []bonsai.PrefixEntry{
		{Action: bonsai.Permit, Prefix: mustPrefix("10.0.3.0/24")},
		{Action: bonsai.Permit, Prefix: mustPrefix("10.42.0.0/24")},
	}}
	arep, err = eng.Apply(ctx, bonsai.Delta{
		AddOriginated:  []bonsai.OriginEdit{{Router: "edge-1-1", Prefix: "10.42.0.0/24"}},
		SetPrefixLists: []bonsai.PrefixListEdit{{Router: "edge-1-1", Name: "OWN", List: own}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new prefix: %d adopted, %d new class(es)\n", arep.Adopted, arep.NewClasses)

	if res, err = eng.Reach(ctx, "edge-0-0", "10.42.0.0/24"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge-0-0 -> 10.42.0.0/24: reachable=%v\n", res.Reachable)

	st := eng.Stats()
	fmt.Printf("cache: %d fresh, %d transported, %d adopted, %d served\n",
		st.Fresh, st.Transported, st.Adopted, st.Served)
}

func mustPrefix(s string) bonsai.Prefix {
	p, err := bonsai.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}
