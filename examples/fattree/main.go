// Command fattree reproduces the datacenter experiments: it generates a
// k-ary fat-tree running eBGP (Table 1a), compresses every destination
// equivalence class, verifies CP-equivalence for a sample of classes, and
// contrasts the shortest-path policy with the "middle tier prefers the
// bottom tier" policy of Figure 11, whose abstraction is necessarily larger.
//
// Usage: fattree [-k 8] [-verify 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/equiv"
	"bonsai/internal/netgen"
)

func main() {
	k := flag.Int("k", 8, "fat-tree arity (even)")
	verifyN := flag.Int("verify", 4, "classes to verify for CP-equivalence")
	flag.Parse()

	for _, pol := range []struct {
		name string
		p    netgen.FattreePolicy
	}{
		{"shortest-path", netgen.PolicyShortestPath},
		{"prefer-bottom (Figure 11)", netgen.PolicyPreferBottom},
	} {
		net := netgen.Fattree(*k, pol.p)
		b, err := build.New(net)
		if err != nil {
			log.Fatal(err)
		}
		classes := b.Classes()
		fmt.Printf("== fattree k=%d, policy %s ==\n", *k, pol.name)
		fmt.Printf("concrete: %d routers, %d links, %d destination classes\n",
			b.G.NumNodes(), b.G.NumLinks(), len(classes))

		comp := b.NewCompiler(true)
		start := time.Now()
		var sumNodes, sumEdges int
		for _, cls := range classes {
			abs, err := b.Compress(context.Background(), comp, cls)
			if err != nil {
				log.Fatal(err)
			}
			sumNodes += abs.NumAbstractNodes()
			sumEdges += abs.NumAbstractEdges()
		}
		elapsed := time.Since(start)
		fmt.Printf("compressed: avg %.1f nodes / %.1f links per class (%.2fx / %.2fx), %v total (%v per class)\n",
			avg(sumNodes, len(classes)), avg(sumEdges, len(classes)),
			float64(b.G.NumNodes())/avg(sumNodes, len(classes)),
			float64(b.G.NumLinks())/avg(sumEdges, len(classes)),
			elapsed.Round(time.Millisecond), (elapsed / time.Duration(len(classes))).Round(time.Microsecond))

		for i := 0; i < *verifyN && i < len(classes); i++ {
			cls := classes[i]
			abs, err := b.Compress(context.Background(), comp, cls)
			if err != nil {
				log.Fatal(err)
			}
			conc, err := b.Instance(cls)
			if err != nil {
				log.Fatal(err)
			}
			abst, err := b.AbstractInstance(cls, abs)
			if err != nil {
				log.Fatal(err)
			}
			if err := equiv.CheckAcrossSolutions(conc, abst, abs, 4); err != nil {
				log.Fatalf("class %v: %v", cls.Prefix, err)
			}
		}
		fmt.Printf("CP-equivalence verified on %d classes\n\n", min(*verifyN, len(classes)))
	}
}

func avg(sum, n int) float64 { return float64(sum) / float64(n) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
