// Command bgpdiamond walks through the paper's central BGP subtlety
// (Figures 2 and 3): three identically configured routers that prefer
// peer-learned routes cannot all route through each other — loop prevention
// forces one of them down — so a naive abstraction that merges them is
// unsound, while the BGP-effective abstraction splits the merged node into
// |prefs| = 2 copies. The program enumerates the gadget's stable solutions,
// compresses it, and checks the bisimulation of Theorem 4.5.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/equiv"
	"bonsai/internal/policy"
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

func gadget() *config.Network {
	n := config.New("figure2")
	for i, name := range []string{"a", "b1", "b2", "b3", "d"} {
		n.AddRouter(name).EnsureBGP(65001 + i)
	}
	peer := func(x, y string) {
		n.AddLink(x, y)
		n.Routers[x].BGP.Neighbors[y] = &config.Neighbor{}
		n.Routers[y].BGP.Neighbors[x] = &config.Neighbor{}
	}
	for _, b := range []string{"b1", "b2", "b3"} {
		peer("a", b)
		peer(b, "d")
	}
	peer("b1", "b2")
	peer("b2", "b3")
	peer("b1", "b3")
	n.Routers["d"].Originate = append(n.Routers["d"].Originate,
		mustPrefix("10.0.0.0/24"))

	// Each b prefers routes learned from its b-peers: import map PREF-PEER
	// raises local preference to 200 on those sessions only.
	for _, bn := range []string{"b1", "b2", "b3"} {
		r := n.Routers[bn]
		r.Env.RouteMaps["PREF-PEER"] = &policy.RouteMap{Name: "PREF-PEER", Clauses: []policy.Clause{
			{Seq: 10, Action: policy.Permit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 200}}},
		}}
		for peerName, nb := range r.BGP.Neighbors {
			if peerName[0] == 'b' {
				nb.ImportMap = "PREF-PEER"
			}
		}
	}
	return n
}

func main() {
	n := gadget()
	b, err := build.New(n)
	if err != nil {
		log.Fatal(err)
	}
	cls := b.Classes()[0]
	inst, err := b.Instance(cls)
	if err != nil {
		log.Fatal(err)
	}

	sols := srp.SolveAll(inst, 64)
	fmt.Printf("the gadget has %d distinct stable solutions; in each, exactly one b routes direct:\n", len(sols))
	for i, sol := range sols {
		fmt.Printf("  solution %d:", i)
		for _, name := range []string{"b1", "b2", "b3"} {
			u := b.G.MustLookup(name)
			tgt := "?"
			if len(sol.Fwd[u]) > 0 {
				tgt = b.G.Name(sol.Fwd[u][0])
			}
			fmt.Printf("  %s->%s", name, tgt)
		}
		fmt.Println()
	}

	comp := b.NewCompiler(true)
	abs, err := b.Compress(context.Background(), comp, cls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBGP-effective abstraction (Figure 3c): %d abstract nodes, %d links\n",
		abs.NumAbstractNodes(), abs.NumAbstractEdges())
	for gi, members := range abs.Groups {
		fmt.Printf("  group %d: members=%v copies=%d\n", gi, names(b, members), len(abs.Copies[gi]))
	}

	abst, err := b.AbstractInstance(cls, abs)
	if err != nil {
		log.Fatal(err)
	}
	if err := equiv.CheckAcrossSolutions(inst, abst, abs, 64); err != nil {
		log.Fatalf("bisimulation check failed: %v", err)
	}
	fmt.Println("\nTheorem 4.5 bisimulation verified: every concrete solution has an")
	fmt.Println("equivalent abstract solution and vice versa, with the b-group's two")
	fmt.Println("copies covering both forwarding behaviors.")
}

func names(b *build.Builder, ids []topo.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = b.G.Name(id)
	}
	return out
}

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
