package bonsai

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"bonsai/internal/config"
)

// coalesceNet builds a bare four-router line a--b--c--d with one link
// administratively down (c--d) and one originated prefix on d. The
// coalescer only consults topology and origination, so no policy or BGP
// configuration is needed.
func coalesceNet() *config.Network {
	n := &config.Network{
		Name:    "coalesce-test",
		Routers: make(map[string]*config.Router),
		Links: []config.Link{
			{A: "a", B: "b"},
			{A: "b", B: "c"},
			{A: "c", B: "d", Down: true},
		},
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		n.Routers[name] = &config.Router{Name: name}
	}
	n.Routers["d"].Originate = []netip.Prefix{netip.MustParsePrefix("10.0.4.0/24")}
	return n
}

func TestCoalesceFlapCancels(t *testing.T) {
	c := newCoalescer(coalesceNet())
	if err := c.add(Delta{LinkDown: []LinkRef{{A: "a", B: "b"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.add(Delta{LinkUp: []LinkRef{{A: "b", B: "a"}}}); err != nil {
		t.Fatal(err)
	}
	d, st := c.build()
	if !d.empty() {
		t.Fatalf("flap should cancel to an empty delta, got %+v", d)
	}
	if st.EditsIn != 2 || st.EditsOut != 0 || st.Coalesced != 2 {
		t.Fatalf("stats = %+v, want 2 in / 0 out / 2 coalesced", st)
	}
}

func TestCoalesceDownFlapCancels(t *testing.T) {
	// c--d starts administratively down: up-then-down returns to base.
	c := newCoalescer(coalesceNet())
	if err := c.add(Delta{
		LinkUp:   []LinkRef{{A: "c", B: "d"}},
		LinkDown: []LinkRef{{A: "d", B: "c"}},
	}); err != nil {
		t.Fatal(err)
	}
	// Delta.apply processes LinkDown before LinkUp, so fold order within
	// one delta is down-then-up; issue the edits as two deltas to get the
	// up-then-down order under test.
	c2 := newCoalescer(coalesceNet())
	if err := c2.add(Delta{LinkUp: []LinkRef{{A: "c", B: "d"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c2.add(Delta{LinkDown: []LinkRef{{A: "c", B: "d"}}}); err != nil {
		t.Fatal(err)
	}
	if d, _ := c2.build(); !d.empty() {
		t.Fatalf("up-then-down on a down link should cancel, got %+v", d)
	}
}

func TestCoalesceLinkFinalStateWins(t *testing.T) {
	c := newCoalescer(coalesceNet())
	for i := 0; i < 5; i++ {
		if err := c.add(Delta{LinkDown: []LinkRef{{A: "a", B: "b"}}}); err != nil {
			t.Fatal(err)
		}
		if err := c.add(Delta{LinkUp: []LinkRef{{A: "a", B: "b"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.add(Delta{LinkDown: []LinkRef{{A: "a", B: "b"}}}); err != nil {
		t.Fatal(err)
	}
	d, st := c.build()
	if len(d.LinkDown) != 1 || len(d.LinkUp) != 0 {
		t.Fatalf("want single LinkDown, got %+v", d)
	}
	if st.EditsIn != 11 || st.EditsOut != 1 || st.Coalesced != 10 {
		t.Fatalf("stats = %+v, want 11 in / 1 out / 10 coalesced", st)
	}
}

func TestCoalesceCreatedThenDownedLinkVanishes(t *testing.T) {
	c := newCoalescer(coalesceNet())
	if err := c.add(Delta{LinkUp: []LinkRef{{A: "a", B: "d"}}}); err != nil {
		t.Fatal(err)
	}
	// The pending creation must be visible to later deltas' validation.
	if err := c.add(Delta{LinkDown: []LinkRef{{A: "a", B: "d"}}}); err != nil {
		t.Fatalf("LinkDown of pending-created link rejected: %v", err)
	}
	if d, _ := c.build(); !d.empty() {
		t.Fatalf("created-then-downed link should vanish (down = topologically absent), got %+v", d)
	}
}

func TestCoalesceLastWriterWinsPolicy(t *testing.T) {
	c := newCoalescer(coalesceNet())
	rm1 := &RouteMap{Name: "rm"}
	rm2 := &RouteMap{Name: "rm", Clauses: []Clause{{Action: Deny}}}
	if err := c.add(Delta{SetRouteMaps: []RouteMapEdit{{Router: "a", Name: "rm-x", Map: rm1}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.add(Delta{SetRouteMaps: []RouteMapEdit{{Router: "a", Name: "rm-x", Map: rm2}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.add(Delta{SetPrefixLists: []PrefixListEdit{
		{Router: "b", Name: "pl-1", List: &PrefixList{}},
		{Router: "b", Name: "pl-1", List: nil}, // delete wins within one delta too
	}}); err != nil {
		t.Fatal(err)
	}
	d, st := c.build()
	if len(d.SetRouteMaps) != 1 || d.SetRouteMaps[0].Map != rm2 {
		t.Fatalf("route-map LWW failed: %+v", d.SetRouteMaps)
	}
	if len(d.SetPrefixLists) != 1 || d.SetPrefixLists[0].List != nil {
		t.Fatalf("prefix-list LWW failed: %+v", d.SetPrefixLists)
	}
	if st.Coalesced != 2 {
		t.Fatalf("want 2 coalesced-away policy edits, got %+v", st)
	}
	joined := strings.Join(st.CoalescedAway, ",")
	if !strings.Contains(joined, "set_route_map a/rm-x") || !strings.Contains(joined, "set_prefix_list b/pl-1") {
		t.Fatalf("coalesced-away list missing superseded edits: %q", joined)
	}
}

func TestCoalesceOriginCancelsAgainstBase(t *testing.T) {
	c := newCoalescer(coalesceNet())
	// d already originates 10.0.4.0/24: remove then add cancels.
	if err := c.add(Delta{RemoveOriginated: []OriginEdit{{Router: "d", Prefix: "10.0.4.0/24"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.add(Delta{AddOriginated: []OriginEdit{{Router: "d", Prefix: "10.0.4.0/24"}}}); err != nil {
		t.Fatal(err)
	}
	// a does not originate 10.9.0.0/16: add then remove cancels.
	if err := c.add(Delta{AddOriginated: []OriginEdit{{Router: "a", Prefix: "10.9.0.0/16"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.add(Delta{RemoveOriginated: []OriginEdit{{Router: "a", Prefix: "10.9.0.0/16"}}}); err != nil {
		t.Fatal(err)
	}
	// b gains a genuinely new origin.
	if err := c.add(Delta{AddOriginated: []OriginEdit{{Router: "b", Prefix: "10.8.0.0/16"}}}); err != nil {
		t.Fatal(err)
	}
	d, st := c.build()
	if len(d.AddOriginated) != 1 || d.AddOriginated[0].Router != "b" {
		t.Fatalf("want single surviving origin add for b, got %+v", d)
	}
	if len(d.RemoveOriginated) != 0 {
		t.Fatalf("origin removes should have cancelled, got %+v", d.RemoveOriginated)
	}
	if st.EditsIn != 5 || st.EditsOut != 1 || st.Coalesced != 4 {
		t.Fatalf("stats = %+v, want 5 in / 1 out / 4 coalesced", st)
	}
}

func TestCoalesceRejectsInvalidDeltaWhole(t *testing.T) {
	c := newCoalescer(coalesceNet())
	bad := Delta{
		AddOriginated: []OriginEdit{{Router: "a", Prefix: "10.1.0.0/16"}},
		LinkDown:      []LinkRef{{A: "a", B: "zz"}},
	}
	if err := c.add(bad); err == nil {
		t.Fatal("want error for unknown link")
	}
	if d, st := c.build(); !d.empty() || st.EditsIn != 0 {
		t.Fatalf("rejected delta must not fold any edits, got %+v %+v", d, st)
	}
}

func TestCoalesceCoalescedAwayListCapped(t *testing.T) {
	c := newCoalescer(coalesceNet())
	for i := 0; i < maxCoalescedAwayListed+40; i++ {
		down := i%2 == 0
		var d Delta
		if down {
			d.LinkDown = []LinkRef{{A: "a", B: "b"}}
		} else {
			d.LinkUp = []LinkRef{{A: "a", B: "b"}}
		}
		if err := c.add(d); err != nil {
			t.Fatal(err)
		}
	}
	_, st := c.build()
	if len(st.CoalescedAway) != maxCoalescedAwayListed {
		t.Fatalf("list length = %d, want cap %d", len(st.CoalescedAway), maxCoalescedAwayListed)
	}
	if st.Coalesced <= maxCoalescedAwayListed {
		t.Fatalf("full counter should exceed the cap, got %d", st.Coalesced)
	}
}

func TestDeltaValidateDoesNotMutate(t *testing.T) {
	n := coalesceNet()
	before := fmt.Sprintf("%+v|%+v", n.Links, n.Routers["d"].Originate)
	bad := Delta{
		LinkDown:      []LinkRef{{A: "a", B: "b"}},
		AddOriginated: []OriginEdit{{Router: "a", Prefix: "not-a-prefix"}},
	}
	if err := bad.Validate(n); err == nil {
		t.Fatal("want validation error for bad prefix")
	}
	if got := fmt.Sprintf("%+v|%+v", n.Links, n.Routers["d"].Originate); got != before {
		t.Fatalf("Validate mutated the network:\nbefore %s\nafter  %s", before, got)
	}
}

func TestDeltaApplyAtomicOnValidationFailure(t *testing.T) {
	n := coalesceNet()
	before := fmt.Sprintf("%+v|%+v", n.Links, n.Routers["d"].Originate)
	// Valid link edit first, invalid origin edit later: nothing may stick.
	bad := Delta{
		LinkDown:         []LinkRef{{A: "a", B: "b"}},
		RemoveOriginated: []OriginEdit{{Router: "ghost", Prefix: "10.0.4.0/24"}},
	}
	if err := bad.apply(n); err == nil {
		t.Fatal("want apply error for unknown router")
	}
	if got := fmt.Sprintf("%+v|%+v", n.Links, n.Routers["d"].Originate); got != before {
		t.Fatalf("failed apply mutated the network:\nbefore %s\nafter  %s", before, got)
	}
}
