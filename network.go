package bonsai

import (
	"io"
	"os"

	"bonsai/internal/config"
)

// Network is a vendor-independent network configuration: routers with BGP,
// OSPF and static routing plus policy namespaces, joined by links. It is an
// alias of the internal configuration type, so values produced by Parse,
// the generators under cmd/bonsai, or an Engine's AbstractNetwork all
// interoperate.
type Network = config.Network

// Parse reads a Network from its text form (see the format documentation
// in the repository README).
func Parse(r io.Reader) (*Network, error) { return config.Parse(r) }

// ParseString parses a Network from a string.
func ParseString(s string) (*Network, error) { return config.ParseString(s) }

// ParseFile parses a Network from a file.
func ParseFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return config.Parse(f)
}

// Print writes the network's canonical text form to w.
func Print(w io.Writer, n *Network) error { return config.Print(w, n) }
