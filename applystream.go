package bonsai

import (
	"context"
	"time"

	"bonsai/internal/ingest"
)

// streamOpts collects ApplyStream's tunables.
type streamOpts struct {
	maxPending   int
	maxStaleness time.Duration
	observer     func(*ApplyReport)
}

// StreamApplyOption configures one ApplyStream call.
type StreamApplyOption func(*streamOpts)

// WithMaxPending bounds staleness by count: once n deltas are batched, the
// batch is flushed even if more input is immediately available. Zero (the
// default) means no count bound — the batch grows as long as the channel
// keeps producing without a gap.
func WithMaxPending(n int) StreamApplyOption {
	return func(o *streamOpts) { o.maxPending = n }
}

// WithMaxStaleness bounds staleness by wall clock: after the first delta of
// a batch arrives, the stream keeps gathering for at most d before
// flushing, trading staleness for coalescing opportunity. Zero (the
// default) flushes as soon as the channel is momentarily empty.
func WithMaxStaleness(d time.Duration) StreamApplyOption {
	return func(o *streamOpts) { o.maxStaleness = d }
}

// WithBatchObserver registers fn to receive every batch's ApplyReport as it
// lands (including empty batches, reported with zero classes touched). fn
// runs on the stream's goroutine between batches, so it must not block.
func WithBatchObserver(fn func(*ApplyReport)) StreamApplyOption {
	return func(o *streamOpts) { o.observer = fn }
}

// ApplyStats is a live snapshot of stream ingestion, readable from any
// goroutine while an ApplyStream is running (and after it returns).
type ApplyStats struct {
	// Pending is the current queue depth: deltas accepted into the batch
	// being gathered but not yet applied.
	Pending int `json:"pending"`
	// Received and Rejected count deltas read off the channel so far.
	Received int `json:"received"`
	Rejected int `json:"rejected"`
	// Batches counts flushes so far; MaxPending is the high-water queue
	// depth.
	Batches    int `json:"batches"`
	MaxPending int `json:"max_pending"`
}

// ApplyStats returns the live ingestion snapshot of the engine's most
// recent ApplyStream (zero value if none has run).
func (e *Engine) ApplyStats() ApplyStats {
	if s := e.streamStats.Load(); s != nil {
		return *s
	}
	return ApplyStats{}
}

// ApplyStreamReport summarises one ApplyStream run.
type ApplyStreamReport struct {
	// Deltas counts deltas read from the channel; Rejected of those failed
	// validation and were skipped (the stream continues).
	Deltas   int `json:"deltas"`
	Rejected int `json:"rejected"`
	// Batches counts coalesced flushes; EmptyBatches of those cancelled to
	// an empty canonical delta (e.g. a flap storm returning every link to
	// its base state) and touched nothing.
	Batches      int `json:"batches"`
	EmptyBatches int `json:"empty_batches"`
	// EditsReceived counts individual edits across all accepted deltas;
	// EditsApplied counts edits surviving coalescing into canonical
	// deltas; Coalesced is the difference, and CoalesceRatio is
	// EditsReceived/EditsApplied (0 when nothing was applied).
	EditsReceived int     `json:"edits_received"`
	EditsApplied  int     `json:"edits_applied"`
	Coalesced     int     `json:"coalesced"`
	CoalesceRatio float64 `json:"coalesce_ratio,omitempty"`
	// Adoption totals across batches, as in ApplyReport.
	Adopted        int `json:"adopted"`
	Invalidated    int `json:"invalidated"`
	NewClasses     int `json:"new_classes"`
	RemovedClasses int `json:"removed_classes"`
	// DegradedBatches counts batches that exceeded the adoption sweep's
	// profitable range and swapped to a cold snapshot instead.
	DegradedBatches int `json:"degraded_batches,omitempty"`
	// MaxPending is the high-water queue depth; the flush counters say why
	// each batch was cut (channel drained, count bound, staleness window,
	// channel closed).
	MaxPending   int           `json:"max_pending"`
	FlushDrain   int           `json:"flush_drain"`
	FlushPending int           `json:"flush_pending"`
	FlushStale   int           `json:"flush_stale"`
	FlushClose   int           `json:"flush_close"`
	Duration     time.Duration `json:"duration_ns"`
}

// ApplyAll replays a recorded delta sequence through the coalescing stream
// path and returns its report. It is the recovery entry point: a journal
// tail re-applied as one burst gets the same coalescing as the live stream
// that wrote it, so a flap storm that crashed mid-burst still cancels out on
// recovery instead of being replayed flap by flap. Invalid deltas are
// counted and skipped exactly as ApplyStream does, which keeps a replayed
// history deterministic: a delta rejected live is rejected again on every
// recovery.
func (e *Engine) ApplyAll(ctx context.Context, deltas []Delta, opts ...StreamApplyOption) (*ApplyStreamReport, error) {
	// The whole sequence is in hand, so hand it to the coalescer in one
	// fully-buffered burst. An unbuffered feed would let the drain-flush
	// fire between single sends, degrading a 10k-delta journal tail into
	// ~10k rebuilds instead of one coalesced batch.
	ch := make(chan Delta, len(deltas))
	for _, d := range deltas {
		ch <- d
	}
	close(ch)
	return e.ApplyStream(ctx, ch, opts...)
}

// ApplyStream consumes configuration deltas from a channel until it closes,
// coalescing queued deltas into canonical batches (a flap's LinkDown +
// LinkUp cancels before any invalidation; route-map, prefix-list and origin
// edits are last-writer-wins per key) and applying each batch as a single
// topology rebuild plus one adoption pass. The robustness contract:
//
//   - Backpressure: the channel is read only as fast as rebuilds complete —
//     while a batch is applying, producers block (or buffer in the channel),
//     and the queue depth is observable via ApplyStats.
//   - Bounded staleness: WithMaxPending / WithMaxStaleness force a flush;
//     with neither, a batch flushes as soon as the channel is momentarily
//     empty.
//   - Graceful degradation: an oversized burst swaps to a cold snapshot
//     (classes recompress lazily) instead of erroring or buffering without
//     bound; invalid deltas are counted and skipped, never fatal.
//
// ApplyStream serializes with Apply (and other ApplyStream calls): it holds
// the engine's apply lock for its whole run. Queries are never blocked —
// they serve the latest published snapshot throughout. The call returns
// when the channel closes (flushing any pending batch first), the context
// is cancelled, or the engine is closed mid-stream (ErrClosed; the pending
// batch is abandoned, the last published snapshot stands). The report is
// non-nil even on error, covering the work done up to the failure.
func (e *Engine) ApplyStream(ctx context.Context, deltas <-chan Delta, opts ...StreamApplyOption) (*ApplyStreamReport, error) {
	var o streamOpts
	for _, opt := range opts {
		opt(&o)
	}
	rep := &ApplyStreamReport{}
	if e.closed.Load() {
		return rep, ErrClosed
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	start := time.Now()

	var live ApplyStats
	publish := func() {
		snap := live
		e.streamStats.Store(&snap)
	}
	publish()

	var c *coalescer
	add := func(d Delta) error {
		if c == nil {
			c = newCoalescer(e.state.Load().cfg)
		}
		return c.add(d)
	}
	flush := func(reason ingest.FlushReason, batched int) error {
		if c == nil {
			return nil
		}
		d, cst := c.build()
		c = nil
		rep.EditsReceived += cst.EditsIn
		rep.EditsApplied += cst.EditsOut
		rep.Coalesced += cst.Coalesced
		if d.empty() {
			rep.EmptyBatches++
			if o.observer != nil {
				o.observer(&ApplyReport{
					Classes:       len(e.state.Load().b.Classes()),
					CoalescedAway: cst.CoalescedAway,
					Coalesced:     cst.Coalesced,
				})
			}
			return nil
		}
		br, err := e.applyDelta(ctx, d)
		if err != nil {
			return err
		}
		br.CoalescedAway = cst.CoalescedAway
		br.Coalesced = cst.Coalesced
		rep.Adopted += br.Adopted
		rep.Invalidated += br.Invalidated
		rep.NewClasses += br.NewClasses
		rep.RemovedClasses += br.RemovedClasses
		if br.Degraded {
			rep.DegradedBatches++
		}
		if o.observer != nil {
			o.observer(br)
		}
		return nil
	}

	st, err := ingest.Run(ctx, deltas, ingest.Options{
		MaxPending:   o.maxPending,
		MaxStaleness: o.maxStaleness,
		Stop:         e.closeCh,
		OnPending: func(n int) {
			live.Pending = n
			if n == 0 {
				live.Batches++
			} else {
				live.Received++
				if n > live.MaxPending {
					live.MaxPending = n
				}
			}
			publish()
		},
	}, add, flush)

	rep.Deltas = st.Received
	rep.Rejected = st.Rejected
	rep.Batches = st.Batches
	rep.MaxPending = st.MaxPending
	rep.FlushDrain = st.FlushDrain
	rep.FlushPending = st.FlushPending
	rep.FlushStale = st.FlushStale
	rep.FlushClose = st.FlushClose
	if rep.EditsApplied > 0 {
		rep.CoalesceRatio = float64(rep.EditsReceived) / float64(rep.EditsApplied)
	}
	rep.Duration = time.Since(start)

	live.Pending = 0
	live.Received = st.Received
	live.Rejected = st.Rejected
	live.Batches = st.Batches
	live.MaxPending = st.MaxPending
	publish()

	if err == ingest.ErrStopped {
		err = ErrClosed
	}
	return rep, err
}
