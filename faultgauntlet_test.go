package bonsai

// The fault-injection gauntlet: panics, cancellations and evictions are
// injected at every seam (scheduler task, adoption check, store install,
// snapshot swap) and the engine must always land in a consistent snapshot —
// queries during and after the fault return results field-identical to a
// cold Open on whatever configuration the engine reports. This file is an
// internal test so it can reach the builder under the snapshot (to force
// evictions mid-apply) without widening the public API.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bonsai/internal/faultinject"
	"bonsai/internal/netgen"
	"bonsai/internal/sched"
)

func gauntletOpen(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng, err := Open(netgen.Fattree(4, netgen.PolicyShortestPath), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	t.Cleanup(faultinject.Reset)
	return eng
}

// gauntletFingerprint renders every (source, class) answer, cross-checked
// against concrete simulation.
func gauntletFingerprint(t *testing.T, eng *Engine) string {
	t.Helper()
	ctx := context.Background()
	var out strings.Builder
	for _, dest := range eng.Classes() {
		for _, src := range eng.Network().RouterNames() {
			res, err := eng.Reach(ctx, src, dest)
			if err != nil {
				t.Fatalf("reach %s -> %s: %v", src, dest, err)
			}
			con, err := eng.ReachConcrete(ctx, src, dest)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reachable != con.Reachable {
				t.Fatalf("compressed diverges from concrete for %s -> %s", src, dest)
			}
			fmt.Fprintf(&out, "%s>%s=%v;", src, dest, res.Reachable)
		}
	}
	return out.String()
}

// checkConsistentSnapshot is the gauntlet's invariant: whatever just
// happened, the engine's queries must match a cold Open on the
// configuration the engine currently reports.
func checkConsistentSnapshot(t *testing.T, eng *Engine) {
	t.Helper()
	fresh, err := Open(eng.Network())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got, want := gauntletFingerprint(t, eng), gauntletFingerprint(t, fresh); got != want {
		t.Fatal("post-fault queries diverge from cold open on the engine's config")
	}
	ctx := context.Background()
	warm, err := eng.Verify(ctx, VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := fresh.Verify(ctx, VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pairs != cold.Pairs || warm.ReachablePairs != cold.ReachablePairs || warm.Classes != cold.Classes {
		t.Fatalf("verify reports diverge: warm %v cold %v", warm, cold)
	}
}

var gauntletDelta = Delta{LinkDown: []LinkRef{{A: "agg-0-0", B: "core-0"}}}

func TestGauntletAdoptPanicInvalidatesNotCrashes(t *testing.T) {
	eng := gauntletOpen(t)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	disarm := faultinject.Arm(faultinject.AdoptClass, func(string) { panic("poisoned adoption") })
	rep, err := eng.Apply(ctx, gauntletDelta)
	disarm()
	if err != nil {
		t.Fatalf("adoption panics must degrade to invalidation, got error: %v", err)
	}
	if rep.Adopted != 0 || rep.Invalidated == 0 {
		t.Fatalf("report = %+v, want every cached class invalidated", rep)
	}
	checkConsistentSnapshot(t, eng)
}

func TestGauntletCancelMidAdoptionKeepsOldSnapshot(t *testing.T) {
	eng := gauntletOpen(t)
	bg := context.Background()
	if _, err := eng.Compress(bg, ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	before := gauntletFingerprint(t, eng)
	beforeCfg := eng.Network()

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	fired := 0
	disarm := faultinject.Arm(faultinject.AdoptClass, func(string) {
		fired++
		if fired == 2 {
			cancel() // mid-adoption: some classes decided, some not
		}
	})
	// Queries race the failing Apply; under -race this doubles as the
	// mid-adoption consistency test of the robustness contract.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	dest := eng.Classes()[0]
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Reach(bg, "edge-0-0", dest); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	_, err := eng.Apply(ctx, gauntletDelta)
	close(stop)
	wg.Wait()
	disarm()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.Network() != beforeCfg {
		t.Fatal("failed apply must not swap the snapshot")
	}
	if got := gauntletFingerprint(t, eng); got != before {
		t.Fatal("old snapshot's answers changed after a cancelled apply")
	}
	checkConsistentSnapshot(t, eng)
}

func TestGauntletEvictionMidApply(t *testing.T) {
	eng := gauntletOpen(t)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	// After the first adopted entry installs, collapse the *old* builder's
	// store budget: the entries the adoption sweep is still reading are
	// evicted under it mid-apply. Evicted classes must read as cold (they
	// land in NewClasses), never as corruption or an error.
	fired := 0
	disarm := faultinject.Arm(faultinject.StoreInstall, func(string) {
		fired++
		if fired == 1 {
			eng.state.Load().b.SetAbstractionBudget(1)
		}
	})
	rep, err := eng.Apply(ctx, gauntletDelta)
	disarm()
	if err != nil {
		t.Fatalf("evictions mid-apply must not fail the apply: %v", err)
	}
	if fired == 0 {
		t.Fatal("store.install seam never fired; the scenario never engaged")
	}
	if rep.NewClasses == 0 {
		t.Fatalf("mid-sweep evictions should leave some classes cold: %+v", rep)
	}
	checkConsistentSnapshot(t, eng)
}

func TestGauntletSwapPanicLeavesOldSnapshot(t *testing.T) {
	eng := gauntletOpen(t)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	beforeCfg := eng.Network()
	disarm := faultinject.Arm(faultinject.ApplySwap, func(string) { panic("swap poisoned") })
	_, err := eng.Apply(ctx, gauntletDelta)
	disarm()
	if err == nil || !strings.Contains(err.Error(), "apply panicked") {
		t.Fatalf("err = %v, want contained apply panic", err)
	}
	if eng.Network() != beforeCfg {
		t.Fatal("panicked apply must not swap the snapshot")
	}
	checkConsistentSnapshot(t, eng)
	// The engine must remain fully usable: the same delta applies cleanly
	// once the fault is gone.
	if _, err := eng.Apply(ctx, gauntletDelta); err != nil {
		t.Fatalf("apply after contained panic: %v", err)
	}
	checkConsistentSnapshot(t, eng)
}

func TestGauntletSchedPanicFailsQueryNotProcess(t *testing.T) {
	eng := gauntletOpen(t, WithWorkers(4))
	ctx := context.Background()
	// Poison exactly one class's compression task; a parallel Verify must
	// fail with a PanicError naming it — not kill the process or wedge the
	// scheduler.
	victim := eng.Classes()[0]
	disarm := faultinject.Arm(faultinject.SchedTask, func(key string) {
		if strings.Contains(key, victim) {
			panic("poisoned class " + victim)
		}
	})
	_, err := eng.Verify(ctx, VerifyRequest{})
	disarm()
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if !strings.Contains(pe.Item, victim) || len(pe.Stack) == 0 {
		t.Fatalf("panic error should carry the class key and stack: item=%q stack=%d bytes", pe.Item, len(pe.Stack))
	}
	// Other classes stay healthy: the same verify succeeds with the
	// poison removed, and single-class queries never touched it.
	if _, err := eng.Verify(ctx, VerifyRequest{}); err != nil {
		t.Fatalf("verify after poisoned run: %v", err)
	}
	checkConsistentSnapshot(t, eng)
}

func TestGauntletStreamSurvivesAdoptPanics(t *testing.T) {
	eng := gauntletOpen(t)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	// Every third adoption check panics while a stream of real work flows
	// through; the stream must complete and land consistent.
	fired := 0
	disarm := faultinject.Arm(faultinject.AdoptClass, func(string) {
		fired++
		if fired%3 == 0 {
			panic("intermittent adoption poison")
		}
	})
	ch := make(chan Delta, 8)
	ch <- Delta{LinkDown: []LinkRef{{A: "agg-0-0", B: "core-0"}}}
	ch <- Delta{LinkDown: []LinkRef{{A: "agg-1-0", B: "core-1"}}}
	ch <- Delta{LinkUp: []LinkRef{{A: "agg-0-0", B: "core-0"}}}
	ch <- Delta{AddOriginated: []OriginEdit{{Router: "edge-0-0", Prefix: "10.123.0.0/24"}}}
	close(ch)
	rep, err := eng.ApplyStream(ctx, ch, WithMaxPending(2))
	disarm()
	if err != nil {
		t.Fatalf("stream under injected panics: %v", err)
	}
	if rep.Batches == 0 {
		t.Fatalf("report = %+v", rep)
	}
	checkConsistentSnapshot(t, eng)
}
