package bonsai

import "bonsai/internal/build"

// SharedPool is a global memory budget shared by several Engines: the sum of
// all attached engines' retained abstraction bytes is bounded by one
// ceiling, with least-recently-used entries shed from the engine furthest
// over its guaranteed floor when the total overflows. A multi-tenant server
// attaches every tenant's engine to one pool (WithSharedPool) so a churning
// tenant reclaims memory from its own cache — and then from neighbors above
// their floors — instead of growing the process without bound. Eviction is
// always safe: an evicted class reads as cold and recomputes on its next
// query.
type SharedPool = build.Pool

// SharedPoolStats is a snapshot of a SharedPool: global live/peak/ceiling
// bytes, cross-engine eviction counters, and per-member shares.
type SharedPoolStats = build.PoolStats

// NewSharedPool creates a pool with the given global byte ceiling. A
// ceiling <= 0 disables eviction: the pool still aggregates accounting
// (useful for metrics) but never sheds.
func NewSharedPool(ceiling int64) *SharedPool { return build.NewPool(ceiling) }
