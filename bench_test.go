// Package bonsai's repository-root benchmarks regenerate every table and
// figure of the paper's evaluation (§8) as testing.B harnesses. One
// benchmark (family) exists per table row group and per figure; run
//
//	go test -bench=. -benchmem
//
// and compare against EXPERIMENTS.md. Custom metrics report the quantities
// the paper tabulates (abstract nodes/links, compression ratios, roles,
// speedups) alongside wall-clock timings.
package bonsai_test

import (
	"context"
	"fmt"
	"testing"

	"bonsai/internal/benchrun"
	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/netgen"
	"bonsai/internal/policy"
	"bonsai/internal/verify"
)

// benchCompress measures compression of a class sample, total per
// iteration, with the cross-EC dedup cache active (reset each iteration);
// abstract sizes are reported as metrics (Table 1 columns). The shared
// definition lives in internal/benchrun so cmd/bonsai-bench measures the
// same thing.
func benchCompress(b *testing.B, net *config.Network, sampleECs int) {
	benchrun.CompressSet(func() *config.Network { return net }, sampleECs, true)(b)
}

// BenchmarkTable1aFattree regenerates the Fattree rows of Table 1(a):
// 180/500/1125 concrete nodes all compress to 6 abstract nodes and 5 links
// per destination class (72/200/450 classes). Each iteration compresses the
// FULL class set; the dedup sub-benchmark exercises the cross-EC cache
// (identity + symmetry transport, reset per iteration) and the independent
// sub-benchmark compresses every class from scratch — their ratio is the
// dedup speedup on total work (≥5x).
func BenchmarkTable1aFattree(b *testing.B) {
	for _, k := range []int{12, 20, 30} {
		k := k
		gen := func() *config.Network { return netgen.Fattree(k, netgen.PolicyShortestPath) }
		b.Run(fmt.Sprintf("nodes=%d/dedup", 5*k*k/4), benchrun.CompressSet(gen, 0, true))
		b.Run(fmt.Sprintf("nodes=%d/independent", 5*k*k/4), benchrun.CompressSet(gen, 0, false))
	}
}

// BenchmarkTable1aRing regenerates the Ring rows of Table 1(a): n nodes
// compress to n/2+1 (path-length preservation bounds compression), and the
// per-EC cost grows with the diameter because refinement splits one
// distance class per sweep.
func BenchmarkTable1aRing(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchCompress(b, netgen.Ring(n), 2)
		})
	}
}

// BenchmarkTable1aRingFullSet compresses every ring class per iteration with
// dedup: rotations make all n classes symmetric, so one refinement run plus
// n-1 transports covers the network.
func BenchmarkTable1aRingFullSet(b *testing.B) {
	b.Run("nodes=100", benchrun.CompressSet(func() *config.Network { return netgen.Ring(100) }, 0, true))
}

// BenchmarkTable1aMesh regenerates the Full Mesh rows of Table 1(a): any
// size compresses to 2 nodes and 1 link thanks to the destination-based
// prefix filters killing transit edges.
func BenchmarkTable1aMesh(b *testing.B) {
	for _, n := range []int{50, 150, 250} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchCompress(b, netgen.FullMesh(n), 4)
		})
	}
}

// BenchmarkTable1bDatacenter regenerates the datacenter row of Table 1(b)
// on the calibrated stand-in (197 routers, ~1.3k classes, 14k interfaces).
func BenchmarkTable1bDatacenter(b *testing.B) {
	net := netgen.Datacenter(netgen.DCOptions{})
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(bd.RoleCount(false, false)), "rolesFull")
	b.ReportMetric(float64(bd.RoleCount(true, false)), "rolesErased")
	b.ReportMetric(float64(bd.RoleCount(true, true)), "rolesNoStatics")
	benchCompress(b, net, 16)
}

// BenchmarkTable1bWAN regenerates the WAN row of Table 1(b) on the stand-in
// (1086 devices, eBGP+OSPF+static, neighbor-specific filters -> ~137 roles).
func BenchmarkTable1bWAN(b *testing.B) {
	net := netgen.WAN(netgen.WANOptions{})
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(bd.RoleCount(true, false)), "rolesErased")
	benchCompress(b, net, 8)
}

// BenchmarkFigure11 contrasts the fattree abstraction under the two
// policies of Figure 11: shortest-path stays at 6 nodes; the middle-tier-
// prefers-bottom policy needs a larger abstraction (BGP case splitting).
func BenchmarkFigure11(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    netgen.FattreePolicy
	}{
		{"shortest-path", netgen.PolicyShortestPath},
		{"prefer-bottom", netgen.PolicyPreferBottom},
	} {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			benchCompress(b, netgen.Fattree(8, pol.p), 4)
		})
	}
}

// benchFig12 measures one Figure 12 point: all-pairs reachability with
// per-query certification, concrete vs compressed (shared with
// cmd/bonsai-bench via internal/benchrun).
func benchFig12(b *testing.B, net *config.Network, bonsai bool, maxClasses int) {
	benchrun.Fig12(func() *config.Network { return net }, bonsai, maxClasses)(b)
}

// BenchmarkFigure12Fattree regenerates Figure 12(a): verification time vs
// fattree size. The concrete series grows super-linearly; the bonsai series
// (which includes compression time) stays near-flat — the widening gap is
// the paper's headline result.
func BenchmarkFigure12Fattree(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		net := netgen.Fattree(k, netgen.PolicyShortestPath)
		for _, mode := range []string{"concrete", "bonsai"} {
			mode := mode
			b.Run(fmt.Sprintf("nodes=%d/%s", 5*k*k/4, mode), func(b *testing.B) {
				benchFig12(b, net, mode == "bonsai", 8)
			})
		}
	}
}

// BenchmarkFigure12Mesh regenerates Figure 12(b) on full meshes.
func BenchmarkFigure12Mesh(b *testing.B) {
	for _, n := range []int{10, 20, 40} {
		net := netgen.FullMesh(n)
		for _, mode := range []string{"concrete", "bonsai"} {
			mode := mode
			b.Run(fmt.Sprintf("nodes=%d/%s", n, mode), func(b *testing.B) {
				benchFig12(b, net, mode == "bonsai", 8)
			})
		}
	}
}

// BenchmarkFigure12Ring regenerates Figure 12(c) on rings.
func BenchmarkFigure12Ring(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		net := netgen.Ring(n)
		for _, mode := range []string{"concrete", "bonsai"} {
			mode := mode
			b.Run(fmt.Sprintf("nodes=%d/%s", n, mode), func(b *testing.B) {
				benchFig12(b, net, mode == "bonsai", 8)
			})
		}
	}
}

// BenchmarkBatfishQuery regenerates the §8 single-query experiment: one
// port-to-port reachability query on the datacenter, concrete vs bonsai
// (the paper: 77 s with Bonsai, out-of-memory without).
func BenchmarkBatfishQuery(b *testing.B) {
	net := netgen.Datacenter(netgen.DCOptions{})
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	dest := net.Routers["leaf-0-00"].Originate[0].String()
	for _, mode := range []string{"concrete", "bonsai"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := verify.Reach(context.Background(), bd, nil, "leaf-1-00", dest, mode == "bonsai")
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("query flipped to unreachable")
				}
			}
		})
	}
}

// BenchmarkAblationTagErasure measures the §8 attribute-abstraction ablation
// on the datacenter: compressing with the unused-community-erasing h versus
// the full community universe (larger BDDs, more roles, bigger abstractions).
func BenchmarkAblationTagErasure(b *testing.B) {
	net := netgen.Datacenter(netgen.DCOptions{})
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	cls := bd.Classes()[1] // a leaf prefix (class 0 is the default route)
	for _, erase := range []bool{true, false} {
		erase := erase
		name := "erased"
		if !erase {
			name = "full-universe"
		}
		b.Run(name, func(b *testing.B) {
			comp := bd.NewCompiler(erase)
			var absNodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				abs, err := bd.Compress(context.Background(), comp, cls)
				if err != nil {
					b.Fatal(err)
				}
				absNodes = abs.NumAbstractNodes()
			}
			b.StopTimer()
			b.ReportMetric(float64(absNodes), "absNodes")
			b.ReportMetric(float64(comp.M.Size()), "bddNodes")
		})
	}
}

// BenchmarkAblationSharedCompiler quantifies amortising BDD construction
// across destination classes (one compiler reused, as Bonsai does) versus
// rebuilding the compiler per class.
func BenchmarkAblationSharedCompiler(b *testing.B) {
	net := netgen.Fattree(12, netgen.PolicyShortestPath)
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	classes := bd.Classes()[:8]
	b.Run("shared", func(b *testing.B) {
		comp := bd.NewCompiler(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bd.CompressFresh(context.Background(), comp, classes[i%len(classes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh-per-class", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp := bd.NewCompiler(true)
			if _, err := bd.CompressFresh(context.Background(), comp, classes[i%len(classes)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPolicyEquivalence compares the cost of deciding policy
// equivalence the Bonsai way (compile to canonical BDDs once, then O(1)
// handle comparison) against re-deriving syntactic role signatures, the
// design choice §5.1 motivates.
func BenchmarkAblationPolicyEquivalence(b *testing.B) {
	net := netgen.Datacenter(netgen.DCOptions{})
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	cls := bd.Classes()[1]
	b.Run("bdd-canonical", func(b *testing.B) {
		comp := bd.NewCompiler(true)
		keyFn := bd.EdgeKeyFunc(comp, cls)
		edges := bd.G.Edges()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			k1 := keyFn(e.U, e.V)
			k2 := keyFn(e.U, e.V)
			if k1 != k2 {
				b.Fatal("canonical keys unstable")
			}
		}
	})
	b.Run("syntactic-signature", func(b *testing.B) {
		matched := map[string]bool{}
		_ = matched
		names := bd.Cfg.RouterNames()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := bd.Cfg.Routers[names[i%len(names)]]
			s1 := build.RoleSignature(r, nil, true, false)
			s2 := build.RoleSignature(r, nil, true, false)
			if s1 != s2 {
				b.Fatal("signatures unstable")
			}
		}
	})
}

// BenchmarkAblationModes contrasts the two refinement modes of §4 on the
// policy-rich fattree (Figure 11's prefer-bottom): ModeEffective (∀∃ only —
// NOT sound for BGP with loop prevention, measured for the ablation) versus
// ModeBGP (∀∀ strengthening around multi-preference groups plus case
// splitting). The sound mode pays with a larger abstraction and more
// refinement work.
func BenchmarkAblationModes(b *testing.B) {
	net := netgen.Fattree(8, netgen.PolicyPreferBottom)
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	cls := bd.Classes()[0]
	dest := bd.G.MustLookup(cls.Origins[0])
	comp := bd.NewCompiler(true)
	keyFn := bd.EdgeKeyFunc(comp, cls)
	prefsFn := bd.PrefsFunc(cls)
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{
		{"forall-exists-unsound", core.ModeEffective},
		{"bgp-effective", core.ModeBGP},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				abs := core.FindAbstraction(bd.G, dest, core.Options{
					Mode: mode.m, EdgeKey: keyFn, Prefs: prefsFn,
				})
				nodes = abs.NumAbstractNodes()
			}
			b.ReportMetric(float64(nodes), "absNodes")
		})
	}
}

// BenchmarkCompilePolicies measures raw BDD compilation of the Figure 10
// style policies across a whole network.
func BenchmarkCompilePolicies(b *testing.B) {
	net := netgen.Datacenter(netgen.DCOptions{})
	bd, err := build.New(net)
	if err != nil {
		b.Fatal(err)
	}
	cls := bd.Classes()[1]
	edges := bd.G.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var comp *policy.Compiler
		comp = bd.NewCompiler(true)
		keyFn := bd.EdgeKeyFunc(comp, cls)
		for _, e := range edges {
			keyFn(e.U, e.V)
		}
	}
}

// BenchmarkChurnStorm measures sustained delta ingestion under a rolling
// link-flap storm on a warm engine: the coalescing ApplyStream versus naive
// per-delta Apply calls (one rebuild and adoption sweep per delta). The
// deltasPerSec ratio between the two is the streaming pipeline's win on
// flappy input; p99QueryNs tracks concurrent query latency during the storm.
// cmd/bonsai-bench runs the same cases at full (2000-node) scale.
func BenchmarkChurnStorm(b *testing.B) {
	gen := func() *config.Network { return netgen.Fattree(8, netgen.PolicyShortestPath) }
	b.Run("nodes=80/stream", benchrun.ChurnStorm(gen, 16, 64, true))
	b.Run("nodes=80/naive", benchrun.ChurnStorm(gen, 16, 64, false))
}
