package bonsai_test

import (
	"context"
	"encoding/json"
	"testing"

	"bonsai"
	"bonsai/internal/netgen"
)

func openFattree(t testing.TB, k int, pol netgen.FattreePolicy, opts ...bonsai.Option) *bonsai.Engine {
	t.Helper()
	eng, err := bonsai.Open(netgen.Fattree(k, pol), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineCompress(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath, bonsai.WithWorkers(2))
	rep, err := eng.Compress(context.Background(), bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Network.Routers != 20 || rep.Network.Classes != 8 {
		t.Fatalf("network info: %+v", rep.Network)
	}
	if rep.ClassesCompressed != 8 {
		t.Fatalf("compressed %d classes, want 8", rep.ClassesCompressed)
	}
	// Fat trees compress to 6 abstract nodes / 5 links per class.
	if got := rep.AvgAbstractNodes(); got != 6 {
		t.Errorf("avg abstract nodes = %v, want 6", got)
	}
	if got := rep.AvgAbstractLinks(); got != 5 {
		t.Errorf("avg abstract links = %v, want 5", got)
	}
	st := eng.Stats()
	if st.Fresh+int(st.Transported) != 8 {
		t.Errorf("cache stats %+v: fresh+transported != classes", st)
	}
	// The report must round-trip as JSON (the -json CLI contract).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal report: %v", err)
	}
}

func TestEngineCompressSelector(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	one, err := eng.Compress(ctx, bonsai.ClassSelector{Prefix: "10.0.0.0/24"})
	if err != nil {
		t.Fatal(err)
	}
	if one.ClassesCompressed != 1 || one.SumAbstractNodes != 6 {
		t.Fatalf("selector compress: %+v", one)
	}
	limited, err := eng.Compress(ctx, bonsai.ClassSelector{MaxClasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if limited.ClassesCompressed != 3 {
		t.Fatalf("max-classes compress: %+v", limited)
	}
}

func TestEngineVerifyAndReach(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath, bonsai.WithWorkers(2))
	ctx := context.Background()
	for _, concrete := range []bool{false, true} {
		rep, err := eng.Verify(ctx, bonsai.VerifyRequest{Concrete: concrete})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pairs == 0 || rep.Pairs != rep.ReachablePairs {
			t.Fatalf("concrete=%v: %v", concrete, rep)
		}
	}
	com, err := eng.Reach(ctx, "edge-1-1", "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	con, err := eng.ReachConcrete(ctx, "edge-1-1", "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if !com.Reachable || !con.Reachable || !com.Compressed || con.Compressed {
		t.Fatalf("reach compressed=%+v concrete=%+v", com, con)
	}
	if _, err := eng.Reach(ctx, "no-such-router", "10.0.0.0/24"); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestEngineRolesAndRoutes(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	roles, err := eng.Roles(ctx, bonsai.RolesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if roles.Routers != 20 || roles.Roles <= 0 || roles.Roles > 20 {
		t.Fatalf("roles: %+v", roles)
	}
	routes, err := eng.Routes(ctx, "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if len(routes.Routes) != 20 {
		t.Fatalf("routes for %d routers, want 20", len(routes.Routes))
	}
	for _, r := range routes.Routes {
		if r.Label == "<nil>" {
			t.Errorf("router %s has no route", r.Router)
		}
	}
}

func TestEngineAbstractNetwork(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	absCfg, err := eng.AbstractNetwork(context.Background(), "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if len(absCfg.Routers) != 6 {
		t.Fatalf("abstract config has %d routers, want 6", len(absCfg.Routers))
	}
	// The written-back abstract configuration must itself open and answer.
	absEng, err := bonsai.Open(absCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := absEng.Verify(context.Background(), bonsai.VerifyRequest{Concrete: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 || rep.Pairs != rep.ReachablePairs {
		t.Fatalf("abstract config verify: %v", rep)
	}
}

func TestEngineDedupDisabled(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath, bonsai.WithDedup(false))
	rep, err := eng.Compress(context.Background(), bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Fresh != 0 || st.Transported != 0 || st.Served != 0 {
		t.Fatalf("dedup-off engine touched the cache: %+v", st)
	}
	if rep.AvgAbstractNodes() != 6 {
		t.Fatalf("dedup-off compression: %+v", rep)
	}
}

func TestEngineBDDCacheBitsOption(t *testing.T) {
	// A tiny BDD cache must not change results, only performance.
	eng := openFattree(t, 4, netgen.PolicyShortestPath, bonsai.WithBDDCacheBits(8))
	rep, err := eng.Verify(context.Background(), bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != rep.ReachablePairs {
		t.Fatalf("small-cache verify: %v", rep)
	}
}

func TestEngineCancellation(t *testing.T) {
	eng := openFattree(t, 6, netgen.PolicyShortestPath, bonsai.WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Verify(ctx, bonsai.VerifyRequest{}); err != context.Canceled {
		t.Fatalf("Verify on cancelled ctx: %v", err)
	}
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != context.Canceled {
		t.Fatalf("Compress on cancelled ctx: %v", err)
	}
	if _, err := eng.Reach(ctx, "edge-1-1", "10.0.0.0/24"); err != context.Canceled {
		t.Fatalf("Reach on cancelled ctx: %v", err)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	var buf []byte
	{
		w := &writer{buf: &buf}
		if err := bonsai.Print(w, eng.Network()); err != nil {
			t.Fatal(err)
		}
	}
	net, err := bonsai.ParseString(string(buf))
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := bonsai.Open(net)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(eng2.Classes()), len(eng.Classes()); got != want {
		t.Fatalf("round-trip classes: %d != %d", got, want)
	}
}

type writer struct{ buf *[]byte }

func (w *writer) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
