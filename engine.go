package bonsai

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bonsai/internal/bdd"
	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/faultinject"
	"bonsai/internal/policy"
	"bonsai/internal/srp"
	"bonsai/internal/verify"
)

// ErrClosed is returned by engine operations after Close.
var ErrClosed = errors.New("bonsai: engine is closed")

// Engine is a long-lived compression and verification session over one
// network. It is safe for concurrent use: queries fan out over a worker
// pool, compiled-policy state lives in a pool of single-owner BDD
// compilers, and Apply swaps the network atomically while in-flight queries
// finish against the pre-delta state.
type Engine struct {
	opts options

	// state is the current immutable snapshot; Apply builds a successor
	// off-line and swaps the pointer.
	state atomic.Pointer[engineState]
	// applyMu serialises Apply calls (queries never take it).
	applyMu sync.Mutex
	// pool holds idle policy compilers. A compiler is owned by exactly one
	// goroutine between acquire and release; compilers whose community
	// universe no longer matches the current network are dropped on
	// acquire.
	pool chan *pooledCompiler
	// closed is set by Close; operations observe it and return ErrClosed.
	closed atomic.Bool
	// closeCh is closed by Close so blocking operations (ApplyStream's
	// ingestion pump) observe shutdown without polling.
	closeCh chan struct{}
	// streamStats is the live ApplyStats snapshot of the most recent
	// ApplyStream (nil before the first stream).
	streamStats atomic.Pointer[ApplyStats]

	// BDD-layer aggregates, folded from per-compiler counters at release
	// and retire time (the owning goroutine folds, so the managers' hot
	// paths stay free of atomics). Nodes/slots are the live contribution of
	// every engine-created compiler as of its last fold; hit/miss/overwrite
	// counters are cumulative over the engine's lifetime.
	bddNodes      atomic.Int64
	bddSlots      atomic.Int64
	bddManagers   atomic.Int64
	bddHits       atomic.Uint64
	bddMisses     atomic.Uint64
	bddOverwrites atomic.Uint64
}

// engineState is one immutable network snapshot.
type engineState struct {
	cfg      *config.Network
	b        *build.Builder
	universe string // community-universe key a compiler must match
}

type pooledCompiler struct {
	comp     *policy.Compiler
	universe string
	last     bdd.Stats // counters as of the last fold into engine aggregates
}

// Open validates net and builds an Engine over it. The network is cloned,
// so the caller may keep mutating its copy; use Apply to change the
// engine's.
func Open(net *Network, opts ...Option) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("bonsai: nil network")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	cfg := net.Clone()
	b, err := build.New(cfg)
	if err != nil {
		return nil, err
	}
	if o.memBudget > 0 {
		b.SetAbstractionBudget(o.memBudget)
	}
	e := &Engine{opts: o, closeCh: make(chan struct{})}
	poolCap := o.workerCount() + 2
	if s := o.shardCount(); s > o.workerCount() {
		poolCap = s + 2
	}
	e.pool = make(chan *pooledCompiler, poolCap)
	e.state.Store(&engineState{cfg: cfg, b: b, universe: universeKey(cfg)})
	if o.pool != nil {
		o.pool.Attach(b, e.poolLabel(), o.poolFloor)
	}
	if o.relStore != "" {
		// Best-effort warm start; a missing or rejected store is a cold
		// start, not an error (see WithRelationStore).
		e.LoadRelationStore(o.relStore)
	}
	return e, nil
}

// poolLabel names this engine in shared-pool stats.
func (e *Engine) poolLabel() string {
	if e.opts.poolLabel != "" {
		return e.opts.poolLabel
	}
	if name := e.state.Load().cfg.Name; name != "" {
		return name
	}
	return "engine"
}

// Close shuts the engine down: the idle compiler pool is drained and every
// pooled compiler's BDD unique table and operation caches are freed, so a
// process cycling through many engines reclaims per-engine memory
// deterministically instead of waiting for the GC to notice multi-megabyte
// managers. Operations started after Close return ErrClosed; operations
// already in flight finish normally (their checked-out compilers are freed
// when released). Close is idempotent and safe to call concurrently.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.closeCh)
	if e.opts.relStore != "" {
		// Persist the warm state before the pool (and its relation caches)
		// is torn down; failure degrades the next Open to a cold start.
		e.saveRelStore(e.opts.relStore)
	}
	e.drainPool()
	if e.opts.pool != nil {
		// Serialise with any in-flight Apply/ApplyStream (both abort promptly
		// on closeCh) so the builder detached is the final snapshot's.
		e.applyMu.Lock()
		e.opts.pool.Detach(e.state.Load().b)
		e.applyMu.Unlock()
	}
	return nil
}

// OpenFile parses the network file at path and opens an Engine over it.
func OpenFile(path string, opts ...Option) (*Engine, error) {
	net, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	return Open(net, opts...)
}

// universeKey renders the matched-community universe; compilers compiled
// over a different universe (different BDD variable layout) must not serve
// the network.
func universeKey(cfg *config.Network) string {
	return fmt.Sprint(cfg.MatchedCommunities())
}

// Network returns the engine's current configuration snapshot. The result
// is shared with the engine and must be treated as read-only; Clone it
// before editing.
func (e *Engine) Network() *Network { return e.state.Load().cfg }

// Stats snapshots the cross-class abstraction cache.
func (e *Engine) Stats() CacheStats {
	return cacheStats(e.state.Load().b)
}

// Classes lists the destination equivalence classes of the current network
// as prefix strings, in their deterministic order.
func (e *Engine) Classes() []string {
	st := e.state.Load()
	classes := st.b.Classes()
	out := make([]string, len(classes))
	for i, cls := range classes {
		out[i] = cls.Prefix.String()
	}
	return out
}

func cacheStats(b *build.Builder) CacheStats {
	s := b.AbstractionCacheStats()
	return CacheStats{
		Fresh:          s.Fresh,
		Transported:    s.Transported,
		Served:         s.Served,
		Adopted:        s.Adopted,
		Misses:         s.Misses,
		Evictions:      s.Evictions,
		LiveBytes:      s.LiveBytes,
		PeakBytes:      s.PeakBytes,
		BudgetBytes:    s.BudgetBytes,
		DuplicateFresh: s.DuplicateFresh,
	}
}

// acquire checks a compiler out of the pool for st, discarding pooled
// compilers whose universe is stale and creating a fresh one when the pool
// runs dry.
func (e *Engine) acquire(st *engineState) *pooledCompiler {
	for {
		select {
		case pc := <-e.pool:
			if pc.universe != st.universe {
				e.retire(pc) // stale variable layout; free its tables
				continue
			}
			// The compiler's relation cache rides on the compiler itself
			// (policy.Compiler.Cache), so it follows the compiler across
			// configuration updates with no hand-off.
			return pc
		default:
			e.bddManagers.Add(1)
			return &pooledCompiler{
				comp:     st.b.NewCompilerSized(true, e.opts.bddCacheBits),
				universe: st.universe,
			}
		}
	}
}

// foldBDD folds the compiler's counter deltas since the last fold into the
// engine aggregates. Called only by the goroutine that owns pc.
func (e *Engine) foldBDD(pc *pooledCompiler) {
	s := pc.comp.M.Stats()
	e.bddNodes.Add(int64(s.Nodes - pc.last.Nodes))
	e.bddSlots.Add(int64(s.UniqueSlots - pc.last.UniqueSlots))
	e.bddHits.Add(s.CacheHits - pc.last.CacheHits)
	e.bddMisses.Add(s.CacheMisses - pc.last.CacheMisses)
	e.bddOverwrites.Add(s.CacheOverwrites - pc.last.CacheOverwrites)
	pc.last = s
}

// retire folds a compiler's final counters, removes its live contribution
// from the aggregates, and frees its BDD tables.
func (e *Engine) retire(pc *pooledCompiler) {
	e.foldBDD(pc)
	e.bddNodes.Add(-int64(pc.last.Nodes))
	e.bddSlots.Add(-int64(pc.last.UniqueSlots))
	e.bddManagers.Add(-1)
	pc.comp.Close()
}

// release returns a compiler to the pool, retiring it when the pool is full
// or the engine has been closed (the query that held it across Close
// finishes normally; the compiler does not outlive it).
func (e *Engine) release(pc *pooledCompiler) {
	e.foldBDD(pc)
	if e.closed.Load() {
		e.retire(pc)
		return
	}
	select {
	case e.pool <- pc:
		if e.closed.Load() {
			// Close ran between the check above and the send, so its drain
			// may have missed this compiler; sweep the pool so shutdown
			// stays deterministic.
			e.drainPool()
		}
	default:
		e.retire(pc)
	}
}

// drainPool empties the idle pool, freeing each compiler's BDD tables.
func (e *Engine) drainPool() {
	for {
		select {
		case pc := <-e.pool:
			e.retire(pc)
		default:
			return
		}
	}
}

// BDDStats snapshots the engine's BDD-layer aggregates: the live node and
// unique-table footprint of its compiler pool and the cumulative op-cache
// behaviour. Counters for a checked-out compiler fold in when it is
// released, so long-running queries surface on completion.
func (e *Engine) BDDStats() BDDStats {
	s := BDDStats{
		NodesLive:       e.bddNodes.Load(),
		UniqueSlots:     e.bddSlots.Load(),
		Managers:        e.bddManagers.Load(),
		CacheHits:       e.bddHits.Load(),
		CacheMisses:     e.bddMisses.Load(),
		CacheOverwrites: e.bddOverwrites.Load(),
	}
	if s.UniqueSlots > 0 {
		s.LoadFactor = float64(s.NodesLive) / float64(s.UniqueSlots)
	}
	return s
}

// SaveRelationStore writes the engine's warm state — every completed cached
// abstraction plus the merged BDD edge-relation caches of the idle compiler
// pool — to a versioned, CRC-framed file at path, atomically (temp + fsync +
// rename; a crash mid-save leaves the previous file intact). A later Open of
// the same network with WithRelationStore (or LoadRelationStore) restores
// it, skipping refinement for every saved class.
func (e *Engine) SaveRelationStore(path string) error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.saveRelStore(path)
}

// saveRelStore is SaveRelationStore without the closed gate, so Close can
// persist state after marking the engine closed.
func (e *Engine) saveRelStore(path string) error {
	st := e.state.Load()
	sc := e.acquire(st)
	defer e.release(sc)
	// Fold the other idle compilers' relation caches into sc so the saved
	// image covers the whole pool, not one worker's slice of it. Compilers
	// are returned as they are merged; a stale-universe compiler is retired
	// exactly as acquire would.
	var idle []*pooledCompiler
	for {
		select {
		case pc := <-e.pool:
			if pc.universe != st.universe {
				e.retire(pc)
				continue
			}
			idle = append(idle, pc)
			continue
		default:
		}
		break
	}
	var mergeErr error
	for _, pc := range idle {
		if mergeErr == nil {
			mergeErr = st.b.MergeRelationCaches(sc.comp, pc.comp)
		}
		e.release(pc)
	}
	if mergeErr != nil {
		return mergeErr
	}
	return st.b.SaveRelationStoreFile(path, sc.comp)
}

// LoadRelationStore restores a relation store saved by SaveRelationStore
// into the current network's caches, returning how many class abstractions
// were installed. The file loads whole or not at all: a truncated,
// bit-flipped, or wrong-network file yields an error and leaves the engine
// cold but fully consistent.
func (e *Engine) LoadRelationStore(path string) (int, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	st := e.state.Load()
	pc := e.acquire(st)
	defer e.release(pc)
	return st.b.LoadRelationStoreFile(path, pc.comp)
}

// Compress compresses the selected destination classes, sharing cached
// abstractions across identical and symmetric classes (unless the engine
// was opened with WithDedup(false)). It is the batch form of
// CompressStream: the same streaming pipeline runs underneath, with the
// per-class results drained into the aggregate report.
func (e *Engine) Compress(ctx context.Context, sel ClassSelector) (*CompressReport, error) {
	s, err := e.CompressStream(ctx, sel)
	if err != nil {
		return nil, err
	}
	for range s.Results() {
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return s.Report(), nil
}

func (e *Engine) networkInfo(st *engineState) NetworkInfo {
	return NetworkInfo{
		Name:       st.cfg.Name,
		Routers:    st.b.G.NumNodes(),
		Links:      st.b.G.NumLinks(),
		Interfaces: st.cfg.NumInterfaces(),
		Classes:    st.b.NumClasses(),
	}
}

// AbstractNetwork compresses the class owning destPrefix and writes the
// abstraction back out as a (smaller) configuration.
func (e *Engine) AbstractNetwork(ctx context.Context, destPrefix string) (*Network, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	st := e.state.Load()
	cls, err := st.b.ClassFor(destPrefix)
	if err != nil {
		return nil, err
	}
	pc := e.acquire(st)
	defer e.release(pc)
	abs, err := st.b.Compress(ctx, pc.comp, cls)
	if err != nil {
		return nil, err
	}
	return st.b.AbstractConfig(cls, abs)
}

// Verify runs an all-pairs reachability verification and returns its
// structured report.
func (e *Engine) Verify(ctx context.Context, req VerifyRequest) (*Report, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	st := e.state.Load()
	workers := req.Workers
	if workers <= 0 {
		workers = e.opts.workerCount()
	}
	max := req.MaxClasses
	if max == 0 {
		max = e.opts.maxClasses
	}
	opts := verify.Options{
		MaxClasses:           max,
		Workers:              workers,
		PerPairCertification: req.PerPair,
	}
	var res *verify.Result
	var err error
	if req.Concrete {
		res, err = verify.AllPairsConcrete(ctx, st.b, opts)
	} else {
		comps := make([]*pooledCompiler, workers)
		opts.Compilers = make([]*policy.Compiler, workers)
		for i := range comps {
			comps[i] = e.acquire(st)
			opts.Compilers[i] = comps[i].comp
		}
		defer func() {
			for _, pc := range comps {
				e.release(pc)
			}
		}()
		res, err = verify.AllPairsBonsai(ctx, st.b, opts)
	}
	if err != nil {
		return nil, err
	}
	return &Report{
		Mode:                 res.Mode,
		Classes:              res.Classes,
		Pairs:                res.Pairs,
		ReachablePairs:       res.ReachablePairs,
		AbstractNodeSum:      res.AbstractNodeSum,
		DistinctAbstractions: res.DistinctAbstractions,
		CompressTime:         res.Compress,
		Total:                res.Total,
		Cache:                cacheStats(st.b),
	}, nil
}

// Reach answers one reachability query on the compressed network, serving
// the class's abstraction from the warm cache when possible.
func (e *Engine) Reach(ctx context.Context, src, destPrefix string) (*ReachResult, error) {
	return e.reach(ctx, src, destPrefix, true)
}

// ReachConcrete answers one reachability query by simulating the concrete
// network, bypassing compression entirely.
func (e *Engine) ReachConcrete(ctx context.Context, src, destPrefix string) (*ReachResult, error) {
	return e.reach(ctx, src, destPrefix, false)
}

func (e *Engine) reach(ctx context.Context, src, destPrefix string, compressed bool) (*ReachResult, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	st := e.state.Load()
	var comp *policy.Compiler
	if compressed {
		pc := e.acquire(st)
		defer e.release(pc)
		comp = pc.comp
	}
	ok, dur, err := verify.Reach(ctx, st.b, comp, src, destPrefix, compressed)
	if err != nil {
		return nil, err
	}
	return &ReachResult{Reachable: ok, Compressed: compressed, Duration: dur}, nil
}

// Roles counts the behavioral router roles of the network (paper §8).
func (e *Engine) Roles(ctx context.Context, req RolesRequest) (*RolesReport, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := e.state.Load()
	return &RolesReport{
		Roles:   st.b.RoleCount(!req.NoErase, req.NoStatics),
		Routers: st.b.G.NumNodes(),
	}, nil
}

// Routes simulates the concrete control plane for the class owning
// destPrefix and returns every router's converged state.
func (e *Engine) Routes(ctx context.Context, destPrefix string) (*RoutesReport, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := e.state.Load()
	cls, err := st.b.ClassFor(destPrefix)
	if err != nil {
		return nil, err
	}
	inst, err := st.b.Instance(cls)
	if err != nil {
		return nil, err
	}
	sol, err := srp.Solve(inst)
	if err != nil {
		return nil, err
	}
	rep := &RoutesReport{Dest: cls.Prefix.String()}
	for _, u := range st.b.G.Nodes() {
		entry := RouteEntry{
			Router: st.b.G.Name(u),
			Label:  fmt.Sprint(sol.Label[u]),
		}
		for _, v := range sol.Fwd[u] {
			entry.NextHops = append(entry.NextHops, st.b.G.Name(v))
		}
		rep.Routes = append(rep.Routes, entry)
	}
	return rep, nil
}

// Apply atomically applies a configuration delta. It rebuilds the
// network's topology tables, then carries every cached abstraction that is
// still valid across the change: classes the delta provably cannot touch
// (per the edge→class liveness index) are adopted directly, the rest are
// re-validated with an O(E) stability sweep, and only the classes the
// delta actually affected are invalidated — they recompress lazily on
// their next query. Queries running concurrently with Apply finish against
// the pre-delta snapshot; queries started after Apply returns see the
// post-delta network and the surviving warm cache.
func (e *Engine) Apply(ctx context.Context, d Delta) (*ApplyReport, error) {
	if d.empty() {
		return nil, fmt.Errorf("bonsai: empty delta")
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	return e.applyDelta(ctx, d)
}

// oversizedDelta reports whether the delta's blast radius makes the
// per-class adoption sweep a bad bet: when a burst flaps a quarter of the
// links or edits a quarter of the routers, almost every class fails its
// stability checks anyway, so the sweep's O(classes × degree) cost buys
// nothing. The engine then degrades gracefully — cold successor snapshot,
// every class recompresses lazily on its next query — instead of erroring
// or grinding through a doomed sweep.
func oversizedDelta(cfg *config.Network, d *Delta) bool {
	links := len(d.LinkDown) + len(d.LinkUp)
	routers := len(d.touchedRouters())
	return links*4 > len(cfg.Links) || routers*4 > len(cfg.Routers)
}

// applyDelta is the shared core of Apply and ApplyStream: validate, clone,
// rebuild, adopt (or degrade), swap. The caller holds applyMu. Any panic in
// the rebuild or adoption machinery is contained here: the snapshot is not
// swapped, the old state keeps serving queries, and the panic surfaces as
// an error with the stack attached.
func (e *Engine) applyDelta(ctx context.Context, d Delta) (rep *ApplyReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = nil
			err = fmt.Errorf("bonsai: apply panicked (snapshot unchanged): %v\n%s", r, debug.Stack())
		}
	}()
	start := time.Now()
	st := e.state.Load()
	// Validate against the live config before paying for the clone; apply
	// re-validates against the clone, keeping all-or-nothing semantics even
	// for direct callers.
	if err := d.Validate(st.cfg); err != nil {
		return nil, err
	}
	cfg2 := st.cfg.Clone()
	if err := d.apply(cfg2); err != nil {
		return nil, err
	}
	b2, err := build.New(cfg2)
	if err != nil {
		return nil, fmt.Errorf("bonsai: delta produces invalid network: %w", err)
	}
	if e.opts.memBudget > 0 {
		b2.SetAbstractionBudget(e.opts.memBudget)
	}
	// The compiled-policy pool stays warm across the swap on its own:
	// relation caches ride on the compilers (policy.Compiler.Cache), and
	// entries are keyed by policy-namespace pointer, which unchanged routers
	// share with the old config.
	st2 := &engineState{cfg: cfg2, b: b2, universe: universeKey(cfg2)}

	var stats build.AdoptStats
	degraded := oversizedDelta(st.cfg, &d)
	if degraded {
		// Cold successor: no adoption sweep, every class recompresses
		// lazily. Count the class-set diff so the report stays truthful.
		newSet := make(map[string]bool, len(b2.Classes()))
		for _, cls := range b2.Classes() {
			newSet[cls.Prefix.String()] = true
		}
		stats.NewClasses = len(b2.Classes())
		for _, cls := range st.b.Classes() {
			if !newSet[cls.Prefix.String()] {
				stats.Removed++
			}
		}
	} else {
		pc := e.acquire(st2)
		defer e.release(pc)
		stats, err = b2.AdoptFrom(ctx, pc.comp, st.b, build.AdoptDelta{
			TouchedRouters: d.touchedRouters(),
		})
		if err != nil {
			return nil, err // state not swapped; the old snapshot stays live
		}
	}
	if faultinject.Active() {
		faultinject.Fire(faultinject.ApplySwap, "")
	}
	e.state.Store(st2)
	if e.opts.pool != nil {
		// Pool membership follows the snapshot: the successor is attached
		// only now (so a failed apply never perturbs pool accounting) and
		// the predecessor's bytes are released immediately rather than when
		// the GC notices the old builder.
		e.opts.pool.Detach(st.b)
		e.opts.pool.Attach(st2.b, e.poolLabel(), e.opts.poolFloor)
	}
	return &ApplyReport{
		Classes:             len(b2.Classes()),
		Adopted:             stats.Adopted,
		Unchanged:           stats.Unchanged,
		Reassembled:         stats.Reassembled,
		Invalidated:         stats.Invalidated,
		InvalidatedPrefixes: stats.InvalidatedPrefixes,
		NewClasses:          stats.NewClasses,
		RemovedClasses:      stats.Removed,
		Degraded:            degraded,
		Duration:            time.Since(start),
	}, nil
}
