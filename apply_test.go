package bonsai_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/netgen"
)

// queryFingerprint renders every (source, class) reachability answer of the
// engine — the observable behavior an incremental update must preserve.
func queryFingerprint(t *testing.T, eng *bonsai.Engine) string {
	t.Helper()
	ctx := context.Background()
	srcs := eng.Network().RouterNames()
	out := ""
	for _, dest := range eng.Classes() {
		for _, src := range srcs {
			res, err := eng.Reach(ctx, src, dest)
			if err != nil {
				t.Fatalf("reach %s -> %s: %v", src, dest, err)
			}
			con, err := eng.ReachConcrete(ctx, src, dest)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reachable != con.Reachable {
				t.Fatalf("compressed answer diverges from concrete for %s -> %s after update", src, dest)
			}
			out += fmt.Sprintf("%s>%s=%v;", src, dest, res.Reachable)
		}
	}
	return out
}

// checkApplyEquivalence warms eng, applies delta, and asserts that every
// query answer afterwards is field-identical to a cold engine opened on the
// post-delta configuration.
func checkApplyEquivalence(t *testing.T, eng *bonsai.Engine, delta bonsai.Delta) *bonsai.ApplyReport {
	t.Helper()
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Apply(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := bonsai.Open(eng.Network())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := queryFingerprint(t, eng), queryFingerprint(t, fresh); got != want {
		t.Fatalf("warm engine diverges from cold open after %+v", delta)
	}
	warm, err := eng.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := fresh.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Pairs != cold.Pairs || warm.ReachablePairs != cold.ReachablePairs || warm.Classes != cold.Classes {
		t.Fatalf("verify reports diverge: warm %v cold %v", warm, cold)
	}
	return rep
}

func TestApplyLinkFlap(t *testing.T) {
	for _, pol := range []struct {
		name string
		p    netgen.FattreePolicy
	}{
		{"shortest", netgen.PolicyShortestPath},
		{"prefer-bottom", netgen.PolicyPreferBottom},
	} {
		t.Run(pol.name, func(t *testing.T) {
			eng := openFattree(t, 4, pol.p)
			link := []bonsai.LinkRef{{A: "agg-3-0", B: "core-0"}}
			rep := checkApplyEquivalence(t, eng, bonsai.Delta{LinkDown: link})
			if rep.Adopted+rep.Invalidated != 8 {
				t.Fatalf("down report: %+v", rep)
			}
			// Bring it back: answers must match the original network again.
			orig, err := bonsai.Open(netgen.Fattree(4, pol.p))
			if err != nil {
				t.Fatal(err)
			}
			checkApplyEquivalence(t, eng, bonsai.Delta{LinkUp: link})
			if got, want := queryFingerprint(t, eng), queryFingerprint(t, orig); got != want {
				t.Fatal("link up did not restore the original behavior")
			}
		})
	}
}

func TestApplyMeshLinkDown(t *testing.T) {
	// In a full mesh with destination-based export filters, a link between
	// r1 and r2 is dead for every class but theirs — the delta must adopt
	// all other classes via the dead-edge fast path and invalidate exactly
	// the two endpoint classes.
	eng, err := bonsai.Open(netgen.FullMesh(8))
	if err != nil {
		t.Fatal(err)
	}
	rep := checkApplyEquivalence(t, eng, bonsai.Delta{
		LinkDown: []bonsai.LinkRef{{A: "r-0001", B: "r-0002"}},
	})
	if rep.Adopted != 6 || rep.Invalidated != 2 || rep.Unchanged != 6 {
		t.Fatalf("mesh apply report: %+v", rep)
	}
	res, err := eng.Reach(context.Background(), "r-0001", "10.0.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("r-0001 still reaches r-0002 with the only permitted path down")
	}
}

func TestApplyLinkDownChangesAnswers(t *testing.T) {
	// Cutting both uplinks of edge-0-0 must actually change reachability —
	// guarding against a vacuous equivalence test.
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Reach(ctx, "edge-1-0", "10.0.0.0/24")
	if err != nil || !res.Reachable {
		t.Fatalf("precondition: %v %v", res, err)
	}
	_, err = eng.Apply(ctx, bonsai.Delta{LinkDown: []bonsai.LinkRef{
		{A: "edge-0-0", B: "agg-0-0"},
		{A: "edge-0-0", B: "agg-0-1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Reach(ctx, "edge-1-0", "10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("destination still reachable with every uplink down")
	}
	con, err := eng.ReachConcrete(ctx, "edge-1-0", "10.0.0.0/24")
	if err != nil || con.Reachable {
		t.Fatalf("concrete disagrees: %v %v", con, err)
	}
}

func TestApplyRouteMapEdit(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	// Stop edge-1-0 from exporting anything: its class becomes unreachable
	// from everywhere while every other class is untouched.
	delta := bonsai.Delta{SetRouteMaps: []bonsai.RouteMapEdit{{
		Router: "edge-1-0",
		Name:   "EXPORT-OWN",
		Map: &bonsai.RouteMap{Clauses: []bonsai.Clause{
			{Seq: 10, Action: bonsai.Deny},
		}},
	}}}
	rep := checkApplyEquivalence(t, eng, delta)
	// The edit is confined to edge-1-0's sessions; classes for which those
	// sessions were already dead (every class but its own) stay adopted.
	if rep.Invalidated > 1 {
		t.Fatalf("route-map edit invalidated %d classes: %+v", rep.Invalidated, rep)
	}
	res, err := eng.Reach(context.Background(), "edge-0-0", "10.0.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("class still reachable after export shut off")
	}
}

func TestApplyPrefixAddRemove(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	classesBefore := len(eng.Classes())
	// Originate a fresh prefix on edge-1-1 and extend its OWN filter so the
	// new prefix is exported like the old one.
	own := &bonsai.PrefixList{Entries: []bonsai.PrefixEntry{
		{Action: bonsai.Permit, Prefix: mustPfx("10.0.3.0/24")}, // its original /24
		{Action: bonsai.Permit, Prefix: mustPfx("10.9.0.0/24")},
	}}
	delta := bonsai.Delta{
		AddOriginated:  []bonsai.OriginEdit{{Router: "edge-1-1", Prefix: "10.9.0.0/24"}},
		SetPrefixLists: []bonsai.PrefixListEdit{{Router: "edge-1-1", Name: "OWN", List: own}},
	}
	rep := checkApplyEquivalence(t, eng, delta)
	if got := len(eng.Classes()); got != classesBefore+1 {
		t.Fatalf("classes after add: %d, want %d", got, classesBefore+1)
	}
	if rep.NewClasses != 1 {
		t.Fatalf("apply report: %+v", rep)
	}
	res, err := eng.Reach(ctx, "edge-0-0", "10.9.0.0/24")
	if err != nil || !res.Reachable {
		t.Fatalf("new prefix unreachable: %v %v", res, err)
	}
	// And remove it again.
	rep2 := checkApplyEquivalence(t, eng, bonsai.Delta{
		RemoveOriginated: []bonsai.OriginEdit{{Router: "edge-1-1", Prefix: "10.9.0.0/24"}},
	})
	if got := len(eng.Classes()); got != classesBefore {
		t.Fatalf("classes after remove: %d, want %d", got, classesBefore)
	}
	if rep2.RemovedClasses != 1 {
		t.Fatalf("remove report: %+v", rep2)
	}
}

func TestApplyErrors(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath)
	ctx := context.Background()
	if _, err := eng.Apply(ctx, bonsai.Delta{}); err == nil {
		t.Fatal("empty delta accepted")
	}
	if _, err := eng.Apply(ctx, bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "x", B: "y"}}}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if _, err := eng.Apply(ctx, bonsai.Delta{SetRouteMaps: []bonsai.RouteMapEdit{{Router: "nope", Name: "M"}}}); err == nil {
		t.Fatal("unknown router accepted")
	}
	// A failed Apply must leave the engine serving the old network.
	if _, err := eng.Verify(ctx, bonsai.VerifyRequest{}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyConcurrentVerify exercises queries racing an update: readers must
// always see a consistent snapshot (run under -race in CI).
func TestApplyConcurrentVerify(t *testing.T) {
	eng := openFattree(t, 4, netgen.PolicyShortestPath, bonsai.WithWorkers(2))
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	link := []bonsai.LinkRef{{A: "agg-3-0", B: "core-0"}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if w == 0 {
					if _, err := eng.Verify(ctx, bonsai.VerifyRequest{MaxClasses: 4}); err != nil {
						errCh <- err
						return
					}
				} else {
					dests := eng.Classes()
					if _, err := eng.Reach(ctx, "edge-1-1", dests[i%len(dests)]); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 6; i++ {
		var d bonsai.Delta
		if i%2 == 0 {
			d.LinkDown = link
		} else {
			d.LinkUp = link
		}
		if _, err := eng.Apply(ctx, d); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestApplyInvalidatesOnlyAffected is the acceptance check on fattree-180:
// taking one aggregation-core link down must invalidate exactly the classes
// of the pod that loses core connectivity (6 of 72) and adopt the rest.
func TestApplyInvalidatesOnlyAffected(t *testing.T) {
	eng := openFattree(t, 12, netgen.PolicyShortestPath)
	ctx := context.Background()
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Apply(ctx, bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "agg-5-0", B: "core-0"}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes != 72 || rep.Adopted != 66 || rep.Invalidated != 6 {
		t.Fatalf("apply report: %+v", rep)
	}
	// The invalidated classes are exactly pod 5's prefixes (alloc order:
	// pod*6+edge -> 10.0.30.0/24 .. 10.0.35.0/24).
	want := map[string]bool{}
	for i := 30; i < 36; i++ {
		want[fmt.Sprintf("10.0.%d.0/24", i)] = true
	}
	for _, p := range rep.InvalidatedPrefixes {
		if !want[p] {
			t.Fatalf("unexpected invalidated class %s (report %+v)", p, rep)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("pod-5 classes not invalidated: %v", want)
	}
	st := eng.Stats()
	if st.Adopted != 66 {
		t.Fatalf("cache stats after apply: %+v", st)
	}
	// Recompressing the full set must only pay for the invalidated pod:
	// one fresh refinement, five symmetry transports, the rest served.
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Fresh+int(st.Transported) != 6 {
		t.Fatalf("recompression stats: %+v (want fresh+transported == 6)", st)
	}
	if st.Adopted != 66 {
		t.Fatalf("adopted entries lost: %+v", st)
	}
}

// TestApplyWarmVsColdSpeed is a coarse guard on the acceptance benchmark
// (the precise >= 5x number lives in BENCH_compress.json): a warm Apply
// plus recompression must beat a cold open plus full compression by a wide
// margin. The threshold is deliberately loose for noisy CI boxes.
func TestApplyWarmVsColdSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	cfg := netgen.Fattree(12, netgen.PolicyShortestPath)
	ctx := context.Background()
	eng, err := bonsai.Open(cfg, bonsai.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	link := []bonsai.LinkRef{{A: "agg-5-0", B: "core-0"}}
	// Measure the best warm Apply of a few flaps; recompression of the
	// invalidated pod happens between measurements (the lazy query-time
	// cost, reported separately by the apply-warm benchmark).
	warm, cycle := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 6; i++ {
		var d bonsai.Delta
		if i%2 == 0 {
			d.LinkDown = link
		} else {
			d.LinkUp = link
		}
		start := time.Now()
		if _, err := eng.Apply(ctx, d); err != nil {
			t.Fatal(err)
		}
		if a := time.Since(start); a < warm {
			warm = a
		}
		if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
			t.Fatal(err)
		}
		if c := time.Since(start); c < cycle {
			cycle = c
		}
	}
	cold := time.Duration(1 << 62)
	for i := 0; i < 2; i++ {
		start := time.Now()
		cool, err := bonsai.Open(cfg, bonsai.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cool.Compress(ctx, bonsai.ClassSelector{}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < cold {
			cold = d
		}
	}
	if warm*3 >= cold {
		t.Fatalf("warm Apply %v not clearly faster than cold open+compress %v", warm, cold)
	}
	if cycle*2 >= cold {
		t.Fatalf("warm apply+recompress %v not clearly faster than cold open+compress %v", cycle, cold)
	}
	t.Logf("apply %v (cycle with recompress %v) vs cold open+compress %v (%.1fx apply, %.1fx cycle)",
		warm, cycle, cold, float64(cold)/float64(warm), float64(cold)/float64(cycle))
}

func mustPfx(s string) bonsai.Prefix {
	p, err := bonsai.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}
