// Package bonsai is the public interface to the control-plane compression
// engine of Beckett, Gupta, Mahajan and Walker, "Control Plane Compression"
// (SIGCOMM 2018): it compresses a network configuration into a smaller,
// behaviorally equivalent one — per destination equivalence class — and
// answers reachability and verification queries on the compressed form.
//
// The entry point is an Engine, a long-lived, concurrency-safe session over
// one network:
//
//	net, err := bonsai.ParseFile("net.txt")
//	eng, err := bonsai.Open(net, bonsai.WithWorkers(4))
//	rep, err := eng.Verify(ctx, bonsai.VerifyRequest{})
//	ok,  err := eng.Reach(ctx, "edge-1-1", "10.0.0.0/24")
//
// An Engine owns the compression pipeline's warm state: the destination
// classes, the compiled-policy (BDD) pool, and a cross-class deduplication
// cache that serves identical and symmetric classes without re-running
// abstraction refinement. Queries share that state; repeated queries on a
// stable network skip almost all compression work.
//
// # Incremental updates
//
// Networks evolve. Instead of rebuilding the engine after every
// configuration change, Apply takes a Delta — links going down or up, a
// route-map or prefix-list edit, prefixes added or removed — and carries
// every cached abstraction that is still valid across the change:
//
//	rep, err := eng.Apply(ctx, bonsai.Delta{
//	    LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}},
//	})
//	// rep.Adopted cached classes survived; rep.Invalidated must recompress.
//
// Apply re-validates each cached partition against the edited network with
// a cheap stability sweep (no refinement, no new BDDs) and adopts the
// survivors; only genuinely affected classes are invalidated and lazily
// recompressed by the next query. Queries issued concurrently with Apply
// keep running against the pre-delta state and never block.
//
// # Streaming compression
//
// Compress is the batch face of a streaming pipeline. CompressStream
// yields per-class results as they complete, with classes enumerated
// lazily off the prefix trie and scheduled onto sharded work-stealing
// workers grouped by deduplication fingerprint (one refinement per group;
// followers ride the cache):
//
//	s, err := eng.CompressStream(ctx, bonsai.ClassSelector{})
//	for r := range s.Results() {
//	    fmt.Println(r.Prefix, r.AbstractNodes, r.Source)
//	}
//	err = s.Err()
//
// WithMemoryBudget bounds the engine's abstraction store: past the budget,
// least-recently-used cached abstractions are evicted and recompress on
// their next query, so memory is a policy rather than a function of how
// many classes the network has. Close releases the pooled BDD compilers'
// tables; a closed engine returns ErrClosed.
//
// All Engine methods take a context.Context; cancellation propagates into
// the compression and verification worker pools and stops them promptly.
package bonsai
