package bonsai

import (
	"fmt"
	"net/netip"

	"bonsai/internal/config"
)

// maxCoalescedAwayListed caps how many coalesced-away edit descriptions a
// report retains verbatim; past the cap only the counter grows, so a
// million-flap storm cannot balloon the report.
const maxCoalescedAwayListed = 64

// linkKey identifies an undirected link regardless of edit orientation.
type linkKey struct{ a, b string }

func canonLink(a, b string) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a, b}
}

// linkAcc folds every link edit for one link into its final desired state.
type linkAcc struct {
	ref      LinkRef // first-seen orientation, used when emitting
	baseIdx  int     // index into base.Links, or -1 when the batch creates it
	baseDown bool
	down     bool // desired final administrative state
	edits    int
}

type editKey struct{ router, name string }

type rmAcc struct {
	edit  RouteMapEdit
	edits int
}

type plAcc struct {
	edit  PrefixListEdit
	edits int
}

type originKey struct {
	router string
	prefix netip.Prefix
}

type originAcc struct {
	edit       OriginEdit
	originated bool // desired final state
	edits      int
}

// coalesceStats summarizes one coalescing window.
type coalesceStats struct {
	// Deltas is how many deltas were folded into the batch.
	Deltas int
	// EditsIn counts individual edits received across those deltas;
	// EditsOut counts edits surviving into the canonical delta.
	EditsIn  int
	EditsOut int
	// CoalescedAway lists (up to maxCoalescedAwayListed) edits that were
	// received but never applied: superseded by a later writer, or
	// cancelled by returning to the base state. Coalesced is the full count.
	CoalescedAway []string
	Coalesced     int
}

// coalescer folds a run of deltas into one canonical Delta against a fixed
// base configuration. Link edits collapse to the final desired state and
// cancel entirely when that matches the base (a down link is topologically
// absent, so "created then downed" also cancels); route-map and prefix-list
// edits are last-writer-wins per (router, name); origin edits are
// last-writer-wins per (router, prefix) and cancel against the base
// origination set. Emission order is first-touch, so the canonical delta is
// deterministic for a given edit sequence.
type coalescer struct {
	base *config.Network

	links     map[linkKey]*linkAcc
	linkOrder []linkKey

	rms     map[editKey]*rmAcc
	rmOrder []editKey

	pls     map[editKey]*plAcc
	plOrder []editKey

	origins     map[originKey]*originAcc
	originOrder []originKey

	deltas   int
	editsIn  int
	dropped  []string
	droppedN int
}

func newCoalescer(base *config.Network) *coalescer {
	return &coalescer{
		base:    base,
		links:   make(map[linkKey]*linkAcc),
		rms:     make(map[editKey]*rmAcc),
		pls:     make(map[editKey]*plAcc),
		origins: make(map[originKey]*originAcc),
	}
}

func (c *coalescer) drop(desc string) {
	c.droppedN++
	if len(c.dropped) < maxCoalescedAwayListed {
		c.dropped = append(c.dropped, desc)
	}
}

// validate checks a delta against the base configuration plus the batch's
// pending link creations, mirroring Delta.Validate. A delta that fails here
// is rejected whole: none of its edits are folded in.
func (c *coalescer) validate(d *Delta) error {
	for _, l := range d.LinkDown {
		if c.base.FindLink(l.A, l.B) >= 0 {
			continue
		}
		if _, pending := c.links[canonLink(l.A, l.B)]; pending {
			continue
		}
		return fmt.Errorf("bonsai: delta: no link %s -- %s", l.A, l.B)
	}
	for _, l := range d.LinkUp {
		if c.base.FindLink(l.A, l.B) >= 0 {
			continue
		}
		if _, pending := c.links[canonLink(l.A, l.B)]; pending {
			continue
		}
		for _, r := range []string{l.A, l.B} {
			if _, ok := c.base.Routers[r]; !ok {
				return fmt.Errorf("bonsai: delta: link references unknown router %q", r)
			}
		}
	}
	checkRouter := func(name string) error {
		if _, ok := c.base.Routers[name]; !ok {
			return fmt.Errorf("bonsai: delta: unknown router %q", name)
		}
		return nil
	}
	for _, e := range d.SetRouteMaps {
		if err := checkRouter(e.Router); err != nil {
			return err
		}
	}
	for _, e := range d.SetPrefixLists {
		if err := checkRouter(e.Router); err != nil {
			return err
		}
	}
	for _, es := range [][]OriginEdit{d.AddOriginated, d.RemoveOriginated} {
		for _, e := range es {
			if err := checkRouter(e.Router); err != nil {
				return err
			}
			if _, err := netip.ParsePrefix(e.Prefix); err != nil {
				return fmt.Errorf("bonsai: delta: bad prefix %q: %w", e.Prefix, err)
			}
		}
	}
	return nil
}

// add validates d and folds its edits into the batch. On error the batch is
// unchanged.
func (c *coalescer) add(d Delta) error {
	if err := c.validate(&d); err != nil {
		return err
	}
	c.deltas++
	for _, l := range d.LinkDown {
		c.foldLink(l, true)
	}
	for _, l := range d.LinkUp {
		c.foldLink(l, false)
	}
	for _, e := range d.SetRouteMaps {
		c.editsIn++
		k := editKey{e.Router, e.Name}
		if acc, ok := c.rms[k]; ok {
			c.drop(fmt.Sprintf("set_route_map %s/%s", acc.edit.Router, acc.edit.Name))
			acc.edit = e
			acc.edits++
		} else {
			c.rms[k] = &rmAcc{edit: e, edits: 1}
			c.rmOrder = append(c.rmOrder, k)
		}
	}
	for _, e := range d.SetPrefixLists {
		c.editsIn++
		k := editKey{e.Router, e.Name}
		if acc, ok := c.pls[k]; ok {
			c.drop(fmt.Sprintf("set_prefix_list %s/%s", acc.edit.Router, acc.edit.Name))
			acc.edit = e
			acc.edits++
		} else {
			c.pls[k] = &plAcc{edit: e, edits: 1}
			c.plOrder = append(c.plOrder, k)
		}
	}
	for _, e := range d.AddOriginated {
		c.foldOrigin(e, true)
	}
	for _, e := range d.RemoveOriginated {
		c.foldOrigin(e, false)
	}
	return nil
}

func (c *coalescer) foldLink(l LinkRef, down bool) {
	c.editsIn++
	k := canonLink(l.A, l.B)
	acc, ok := c.links[k]
	if !ok {
		idx := c.base.FindLink(l.A, l.B)
		acc = &linkAcc{ref: l, baseIdx: idx}
		if idx >= 0 {
			acc.baseDown = c.base.Links[idx].Down
		}
		c.links[k] = acc
		c.linkOrder = append(c.linkOrder, k)
	} else {
		c.drop(linkEditDesc(acc.ref, acc.down))
	}
	acc.down = down
	acc.edits++
}

func (c *coalescer) foldOrigin(e OriginEdit, add bool) {
	c.editsIn++
	p, err := netip.ParsePrefix(e.Prefix)
	if err != nil {
		// validate already rejected unparseable prefixes.
		return
	}
	k := originKey{e.Router, p.Masked()}
	acc, ok := c.origins[k]
	if !ok {
		acc = &originAcc{edit: e}
		c.origins[k] = acc
		c.originOrder = append(c.originOrder, k)
	} else {
		c.drop(originEditDesc(acc.edit, acc.originated))
	}
	acc.edit = e
	acc.originated = add
	acc.edits++
}

func linkEditDesc(l LinkRef, down bool) string {
	if down {
		return fmt.Sprintf("link_down %s--%s", l.A, l.B)
	}
	return fmt.Sprintf("link_up %s--%s", l.A, l.B)
}

func originEditDesc(e OriginEdit, add bool) string {
	if add {
		return fmt.Sprintf("add_originated %s %s", e.Router, e.Prefix)
	}
	return fmt.Sprintf("remove_originated %s %s", e.Router, e.Prefix)
}

// baseOriginates reports whether the base configuration already originates
// the (masked) prefix at the router.
func (c *coalescer) baseOriginates(k originKey) bool {
	r, ok := c.base.Routers[k.router]
	if !ok {
		return false
	}
	for _, q := range r.Originate {
		if q == k.prefix {
			return true
		}
	}
	return false
}

// build emits the canonical merged delta. Edits whose final state matches
// the base are cancelled here (and counted as coalesced away), so a flap
// storm that returns every link to its initial state builds an empty delta.
func (c *coalescer) build() (Delta, coalesceStats) {
	var out Delta
	for _, k := range c.linkOrder {
		acc := c.links[k]
		if acc.baseIdx < 0 {
			if acc.down {
				// Created and then taken down inside the batch: a down
				// link contributes no SRP adjacency, so the net effect
				// is indistinguishable from never creating it.
				c.drop(linkEditDesc(acc.ref, true))
				continue
			}
			out.LinkUp = append(out.LinkUp, acc.ref)
			continue
		}
		if acc.down == acc.baseDown {
			c.drop(linkEditDesc(acc.ref, acc.down))
			continue
		}
		if acc.down {
			out.LinkDown = append(out.LinkDown, acc.ref)
		} else {
			out.LinkUp = append(out.LinkUp, acc.ref)
		}
	}
	for _, k := range c.rmOrder {
		out.SetRouteMaps = append(out.SetRouteMaps, c.rms[k].edit)
	}
	for _, k := range c.plOrder {
		out.SetPrefixLists = append(out.SetPrefixLists, c.pls[k].edit)
	}
	for _, k := range c.originOrder {
		acc := c.origins[k]
		if acc.originated == c.baseOriginates(k) {
			c.drop(originEditDesc(acc.edit, acc.originated))
			continue
		}
		if acc.originated {
			out.AddOriginated = append(out.AddOriginated, acc.edit)
		} else {
			out.RemoveOriginated = append(out.RemoveOriginated, acc.edit)
		}
	}
	editsOut := len(out.LinkDown) + len(out.LinkUp) +
		len(out.SetRouteMaps) + len(out.SetPrefixLists) +
		len(out.AddOriginated) + len(out.RemoveOriginated)
	return out, coalesceStats{
		Deltas:        c.deltas,
		EditsIn:       c.editsIn,
		EditsOut:      editsOut,
		CoalescedAway: c.dropped,
		Coalesced:     c.droppedN,
	}
}
