package bonsai

import (
	"fmt"
	"net/netip"

	"bonsai/internal/config"
	"bonsai/internal/policy"
)

// Policy vocabulary, re-exported so library users can construct route maps
// and prefix lists for Delta edits without reaching into internal packages.
type (
	// RouteMap is an ordered list of permit/deny clauses applied to routes
	// crossing a BGP session.
	RouteMap = policy.RouteMap
	// Clause is one route-map clause: match conditions, an action, and
	// attribute modifications.
	Clause = policy.Clause
	// Match is one clause condition (prefix-list or community-list).
	Match = policy.Match
	// Set is one clause attribute modification.
	Set = policy.Set
	// PrefixList matches destination prefixes.
	PrefixList = policy.PrefixList
	// PrefixEntry is one prefix-list entry.
	PrefixEntry = policy.PrefixEntry
	// Action is a permit/deny verdict.
	Action = policy.Action
	// Prefix is an IP prefix in CIDR form (an alias of netip.Prefix).
	Prefix = netip.Prefix
)

// ParsePrefix parses a CIDR prefix and masks it to its canonical form.
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, err
	}
	return p.Masked(), nil
}

// Re-exported policy constants for building Delta edits.
const (
	Permit = policy.Permit
	Deny   = policy.Deny

	MatchPrefix    = policy.MatchPrefix
	MatchCommunity = policy.MatchCommunity

	SetLocalPref    = policy.SetLocalPref
	SetAddCommunity = policy.AddCommunity
	SetDelCommunity = policy.DeleteCommunity
)

// LinkRef names the undirected link between two routers.
type LinkRef struct {
	A string `json:"a"`
	B string `json:"b"`
}

// RouteMapEdit replaces (or, with a nil Map, deletes) the named route map
// in one router's policy namespace.
type RouteMapEdit struct {
	Router string    `json:"router"`
	Name   string    `json:"name"`
	Map    *RouteMap `json:"map,omitempty"`
}

// PrefixListEdit replaces (or, with a nil List, deletes) the named prefix
// list in one router's policy namespace.
type PrefixListEdit struct {
	Router string      `json:"router"`
	Name   string      `json:"name"`
	List   *PrefixList `json:"list,omitempty"`
}

// OriginEdit adds or removes an originated prefix on a router.
type OriginEdit struct {
	Router string `json:"router"`
	// Prefix is the CIDR text of the prefix, e.g. "10.0.9.0/24".
	Prefix string `json:"prefix"`
}

// Delta is a batch of configuration edits applied atomically by
// Engine.Apply. Link flaps toggle an administrative down flag, so the
// routers' session and interface configuration referencing the link
// survives a LinkDown and is restored by the matching LinkUp; LinkUp of a
// link that never existed creates a bare link (attach sessions via policy
// or neighbor configuration in the network before bringing it up).
type Delta struct {
	// LinkDown takes existing links administratively down.
	LinkDown []LinkRef `json:"link_down,omitempty"`
	// LinkUp brings links back up (or creates them when absent).
	LinkUp []LinkRef `json:"link_up,omitempty"`
	// SetRouteMaps edits route maps per router.
	SetRouteMaps []RouteMapEdit `json:"set_route_maps,omitempty"`
	// SetPrefixLists edits prefix lists per router.
	SetPrefixLists []PrefixListEdit `json:"set_prefix_lists,omitempty"`
	// AddOriginated and RemoveOriginated change which prefixes a router
	// originates, adding or removing destination equivalence classes.
	AddOriginated    []OriginEdit `json:"add_originated,omitempty"`
	RemoveOriginated []OriginEdit `json:"remove_originated,omitempty"`
}

// empty reports whether the delta contains no edits.
func (d *Delta) empty() bool {
	return len(d.LinkDown) == 0 && len(d.LinkUp) == 0 &&
		len(d.SetRouteMaps) == 0 && len(d.SetPrefixLists) == 0 &&
		len(d.AddOriginated) == 0 && len(d.RemoveOriginated) == 0
}

// touchedRouters returns the routers whose configuration (beyond link
// state) the delta edits.
func (d *Delta) touchedRouters() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(r string) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, e := range d.SetRouteMaps {
		add(e.Router)
	}
	for _, e := range d.SetPrefixLists {
		add(e.Router)
	}
	for _, e := range d.AddOriginated {
		add(e.Router)
	}
	for _, e := range d.RemoveOriginated {
		add(e.Router)
	}
	return out
}

// Validate checks every edit of the delta against cfg without mutating
// anything: link references must name existing links (LinkDown) or known
// routers (LinkUp of a new link), policy and origin edits must name known
// routers, and origin prefixes must parse. Engine.Apply and the stream
// coalescer validate before any clone or compile work, so a bad edit fails
// fast and a delta is applied either completely or not at all.
func (d *Delta) Validate(cfg *config.Network) error {
	for _, l := range d.LinkDown {
		if cfg.FindLink(l.A, l.B) < 0 {
			return fmt.Errorf("bonsai: delta: no link %s -- %s", l.A, l.B)
		}
	}
	for _, l := range d.LinkUp {
		if cfg.FindLink(l.A, l.B) >= 0 {
			continue
		}
		for _, r := range []string{l.A, l.B} {
			if _, ok := cfg.Routers[r]; !ok {
				return fmt.Errorf("bonsai: delta: link references unknown router %q", r)
			}
		}
	}
	checkRouter := func(name string) error {
		if _, ok := cfg.Routers[name]; !ok {
			return fmt.Errorf("bonsai: delta: unknown router %q", name)
		}
		return nil
	}
	for _, e := range d.SetRouteMaps {
		if err := checkRouter(e.Router); err != nil {
			return err
		}
	}
	for _, e := range d.SetPrefixLists {
		if err := checkRouter(e.Router); err != nil {
			return err
		}
	}
	for _, es := range [][]OriginEdit{d.AddOriginated, d.RemoveOriginated} {
		for _, e := range es {
			if err := checkRouter(e.Router); err != nil {
				return err
			}
			if _, err := netip.ParsePrefix(e.Prefix); err != nil {
				return fmt.Errorf("bonsai: delta: bad prefix %q: %w", e.Prefix, err)
			}
		}
	}
	return nil
}

// apply mutates cfg (a private clone) in place. Policy namespaces are
// copy-on-write: a router's Env is replaced before its first edit so clones
// sharing the original are unaffected. The delta must have passed Validate
// against the same configuration; apply re-runs it so direct callers keep
// all-or-nothing semantics.
func (d *Delta) apply(cfg *config.Network) error {
	if err := d.Validate(cfg); err != nil {
		return err
	}
	for _, l := range d.LinkDown {
		cfg.Links[cfg.FindLink(l.A, l.B)].Down = true
	}
	for _, l := range d.LinkUp {
		if i := cfg.FindLink(l.A, l.B); i >= 0 {
			cfg.Links[i].Down = false
			continue
		}
		cfg.Links = append(cfg.Links, config.Link{A: l.A, B: l.B})
	}
	cloned := make(map[string]bool)
	envFor := func(name string) *config.Router {
		r := cfg.Routers[name]
		if !cloned[name] {
			r.CloneEnv()
			cloned[name] = true
		}
		return r
	}
	for _, e := range d.SetRouteMaps {
		r := envFor(e.Router)
		if e.Map == nil {
			delete(r.Env.RouteMaps, e.Name)
		} else {
			m := *e.Map
			m.Name = e.Name
			r.Env.RouteMaps[e.Name] = &m
		}
	}
	for _, e := range d.SetPrefixLists {
		r := envFor(e.Router)
		if e.List == nil {
			delete(r.Env.PrefixLists, e.Name)
		} else {
			l := *e.List
			l.Name = e.Name
			r.Env.PrefixLists[e.Name] = &l
		}
	}
	for _, e := range d.AddOriginated {
		r := cfg.Routers[e.Router]
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			return fmt.Errorf("bonsai: delta: bad prefix %q: %w", e.Prefix, err)
		}
		p = p.Masked()
		exists := false
		for _, q := range r.Originate {
			if q == p {
				exists = true
				break
			}
		}
		if !exists {
			r.Originate = append(r.Originate, p)
		}
	}
	for _, e := range d.RemoveOriginated {
		r := cfg.Routers[e.Router]
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			return fmt.Errorf("bonsai: delta: bad prefix %q: %w", e.Prefix, err)
		}
		p = p.Masked()
		out := r.Originate[:0]
		for _, q := range r.Originate {
			if q != p {
				out = append(out, q)
			}
		}
		r.Originate = out
	}
	return nil
}
