package bonsai

import (
	"fmt"
	"time"
)

// ClassSelector narrows an operation to a subset of the destination
// equivalence classes. The zero value selects every class (subject to the
// engine's WithMaxClasses default).
type ClassSelector struct {
	// Prefix selects the single class owning this destination prefix
	// (e.g. "10.0.3.0/24").
	Prefix string `json:"prefix,omitempty"`
	// MaxClasses bounds the classes processed; 0 defers to the engine
	// default.
	MaxClasses int `json:"max_classes,omitempty"`
}

// CacheStats is a snapshot of the engine's cross-class abstraction store.
type CacheStats struct {
	// Fresh counts abstractions computed by full refinement.
	Fresh int `json:"fresh"`
	// Transported counts abstractions served by symmetry transport.
	Transported int64 `json:"transported"`
	// Served counts compression calls answered from the identity cache (the
	// store's hit counter).
	Served int64 `json:"served"`
	// Adopted counts abstractions carried across an incremental update by
	// partition re-validation instead of recompression.
	Adopted int `json:"adopted"`
	// Misses counts compression calls that had to compute: first touches
	// and recompressions of classes the memory budget evicted.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped under the memory budget
	// (WithMemoryBudget); LiveBytes and PeakBytes are the store's current
	// and high-water accounted footprint, BudgetBytes the configured
	// ceiling (0 = unbounded).
	Evictions   int64 `json:"evictions"`
	LiveBytes   int64 `json:"live_bytes"`
	PeakBytes   int64 `json:"peak_bytes"`
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// DuplicateFresh counts duplicated refinements for one fingerprint —
	// zero in a healthy engine (the scheduler runs one leader per
	// fingerprint group; tests assert it).
	DuplicateFresh int64 `json:"duplicate_fresh,omitempty"`
}

// BDDStats is a snapshot of the engine's BDD layer: the live footprint of
// its compiler pool's unique tables and the cumulative operation-cache
// behaviour. Per-compiler counters fold into these aggregates when a
// compiler is released back to the pool or retired.
type BDDStats struct {
	// NodesLive sums the live BDD nodes (including canonical seed prefixes)
	// across the engine's compilers, as of each compiler's last release.
	NodesLive int64 `json:"nodes_live"`
	// UniqueSlots sums unique-table capacities; LoadFactor is
	// NodesLive/UniqueSlots.
	UniqueSlots int64   `json:"unique_slots"`
	LoadFactor  float64 `json:"load_factor"`
	// Managers counts compilers the engine has created and not yet retired.
	Managers int64 `json:"managers"`
	// CacheHits/CacheMisses count op-cache probes; CacheOverwrites counts
	// stores that evicted a colliding entry (the lossy-cache churn signal).
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	CacheOverwrites uint64 `json:"cache_overwrites"`
}

// NetworkInfo describes the concrete network an engine is serving.
type NetworkInfo struct {
	Name       string `json:"name,omitempty"`
	Routers    int    `json:"routers"`
	Links      int    `json:"links"`
	Interfaces int    `json:"interfaces"`
	Classes    int    `json:"classes"`
}

// CompressReport summarises one Compress call.
type CompressReport struct {
	Network NetworkInfo `json:"network"`
	// ClassesCompressed is how many destination classes this call
	// compressed (Network.Classes counts all of them).
	ClassesCompressed int `json:"classes_compressed"`
	// SumAbstractNodes and SumAbstractLinks total the compressed topology
	// sizes across the compressed classes.
	SumAbstractNodes int `json:"sum_abstract_nodes"`
	SumAbstractLinks int `json:"sum_abstract_links"`
	// NodeRatio and LinkRatio are the average concrete/abstract
	// compression ratios (higher is smaller).
	NodeRatio float64 `json:"node_ratio"`
	LinkRatio float64 `json:"link_ratio"`
	// Cache snapshots the deduplication cache after the call.
	Cache CacheStats `json:"cache"`
	// BDDSetup is the time spent preparing policy compilers (zero when the
	// engine's pool was already warm); Duration is the compression time.
	BDDSetup time.Duration `json:"bdd_setup_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// AvgAbstractNodes returns the mean abstract node count per compressed
// class.
func (r *CompressReport) AvgAbstractNodes() float64 {
	if r.ClassesCompressed == 0 {
		return 0
	}
	return float64(r.SumAbstractNodes) / float64(r.ClassesCompressed)
}

// AvgAbstractLinks returns the mean abstract link count per compressed
// class.
func (r *CompressReport) AvgAbstractLinks() float64 {
	if r.ClassesCompressed == 0 {
		return 0
	}
	return float64(r.SumAbstractLinks) / float64(r.ClassesCompressed)
}

// VerifyRequest configures a Verify call. The zero value verifies all-pairs
// reachability for every class on the compressed network.
type VerifyRequest struct {
	// Concrete runs the verification on the uncompressed network (the
	// baseline the paper's Figure 12 compares against).
	Concrete bool `json:"concrete,omitempty"`
	// PerPair re-analyses the control plane for every (source, class)
	// query, modelling a per-query verifier such as Minesweeper.
	PerPair bool `json:"per_pair,omitempty"`
	// MaxClasses bounds the classes verified; 0 defers to the engine
	// default.
	MaxClasses int `json:"max_classes,omitempty"`
	// Workers overrides the engine's worker count for this call.
	Workers int `json:"workers,omitempty"`
}

// Report is the structured result of a Verify call.
type Report struct {
	// Mode is "concrete" or "bonsai".
	Mode    string `json:"mode"`
	Classes int    `json:"classes"`
	// Pairs counts the (source, class) queries checked; ReachablePairs how
	// many delivered traffic.
	Pairs          int64 `json:"pairs"`
	ReachablePairs int64 `json:"reachable_pairs"`
	// AbstractNodeSum totals abstract node counts across classes (bonsai
	// mode).
	AbstractNodeSum int64 `json:"abstract_node_sum,omitempty"`
	// DistinctAbstractions counts the abstractions actually computed by
	// refinement; the remaining classes shared one (bonsai mode).
	DistinctAbstractions int `json:"distinct_abstractions,omitempty"`
	// CompressTime is the portion of Total spent compressing (bonsai mode).
	CompressTime time.Duration `json:"compress_ns"`
	Total        time.Duration `json:"total_ns"`
	// Cache snapshots the deduplication cache after the call.
	Cache CacheStats `json:"cache"`
}

func (r *Report) String() string {
	s := fmt.Sprintf("%s: classes=%d pairs=%d reachable=%d compress=%v total=%v",
		r.Mode, r.Classes, r.Pairs, r.ReachablePairs, r.CompressTime, r.Total)
	if r.Mode == "bonsai" {
		s += fmt.Sprintf(" distinctAbs=%d", r.DistinctAbstractions)
	}
	return s
}

// ReachResult answers a single reachability query.
type ReachResult struct {
	Reachable bool `json:"reachable"`
	// Compressed reports whether the answer came from the compressed
	// network.
	Compressed bool          `json:"compressed"`
	Duration   time.Duration `json:"duration_ns"`
}

// RolesRequest configures a Roles call. The zero value erases unused
// community tags (the paper's §8 attribute abstraction) and includes static
// routes in the role signature.
type RolesRequest struct {
	// NoErase counts unused community tags as role-distinguishing.
	NoErase bool `json:"no_erase,omitempty"`
	// NoStatics excludes static routes from the role signature.
	NoStatics bool `json:"no_statics,omitempty"`
}

// RolesReport counts the behavioral router roles of the network.
type RolesReport struct {
	Roles   int `json:"roles"`
	Routers int `json:"routers"`
}

// RouteEntry is one router's converged state for a destination class.
type RouteEntry struct {
	Router string `json:"router"`
	// Label renders the router's stable routing attribute; "<nil>" means no
	// route.
	Label    string   `json:"label"`
	NextHops []string `json:"next_hops,omitempty"`
}

// RoutesReport is the converged control-plane solution for one destination
// class on the concrete network.
type RoutesReport struct {
	Dest   string       `json:"dest"`
	Routes []RouteEntry `json:"routes"`
}

// ApplyReport summarises one incremental update.
type ApplyReport struct {
	// Classes is the class count of the post-delta network.
	Classes int `json:"classes"`
	// Adopted counts cached classes carried across the delta after their
	// partitions passed the stability checks; of those, Unchanged reused
	// the cached abstraction object outright and Reassembled had its
	// abstract graph rebuilt over the new topology (no refinement either
	// way).
	Adopted     int `json:"adopted"`
	Unchanged   int `json:"unchanged"`
	Reassembled int `json:"reassembled"`
	// Invalidated counts cached classes the delta actually affected; they
	// recompress lazily on their next query. InvalidatedPrefixes lists
	// them.
	Invalidated         int      `json:"invalidated"`
	InvalidatedPrefixes []string `json:"invalidated_prefixes,omitempty"`
	// NewClasses counts post-delta classes that had no cached abstraction
	// (newly originated prefixes, or classes never yet compressed);
	// RemovedClasses counts pre-delta classes that no longer exist.
	NewClasses     int `json:"new_classes"`
	RemovedClasses int `json:"removed_classes"`
	// Degraded reports that the delta's blast radius exceeded the adoption
	// sweep's profitable range, so the engine swapped to a cold successor
	// snapshot (every class recompresses lazily) instead of running
	// per-class stability checks. Degradation is graceful: queries stay
	// correct, memory stays bounded, only warm-cache coverage is lost.
	Degraded bool `json:"degraded,omitempty"`
	// CoalescedAway lists edits that were received by an ApplyStream batch
	// but never applied — superseded by a later writer or cancelled by
	// returning to the pre-batch state. The list is capped; Coalesced is
	// the full count. Both are zero for direct Apply calls.
	CoalescedAway []string      `json:"coalesced_away,omitempty"`
	Coalesced     int           `json:"coalesced,omitempty"`
	Duration      time.Duration `json:"duration_ns"`
}
