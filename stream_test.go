package bonsai_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"bonsai"
	"bonsai/internal/netgen"
)

// gauntletScenarios are the netgen scenarios the stream-vs-batch
// differential runs over: every generator family, including the shapes
// that exercise symmetry transport (fattree, ring, mesh, spine-leaf),
// local-preference case splitting (prefer-bottom), identity sharing
// (datacenter leaves, spine-leaf externals) and multi-protocol edges
// (WAN).
func gauntletScenarios() []struct {
	name string
	gen  func() *bonsai.Network
} {
	return []struct {
		name string
		gen  func() *bonsai.Network
	}{
		{"fattree", func() *bonsai.Network { return netgen.Fattree(8, netgen.PolicyShortestPath) }},
		{"fattree-prefer-bottom", func() *bonsai.Network { return netgen.Fattree(4, netgen.PolicyPreferBottom) }},
		{"ring", func() *bonsai.Network { return netgen.Ring(24) }},
		{"mesh", func() *bonsai.Network { return netgen.FullMesh(12) }},
		{"spineleaf", func() *bonsai.Network {
			return netgen.SpineLeaf(netgen.SpineLeafOptions{Spines: 3, Leaves: 4, ExtPerLeaf: 2, PrefixesPerExt: 2})
		}},
		{"spineleaf-prefer-external", func() *bonsai.Network {
			return netgen.SpineLeaf(netgen.SpineLeafOptions{Spines: 2, Leaves: 3, ExtPerLeaf: 2, PrefixesPerExt: 2, PreferExternal: true})
		}},
		{"datacenter", func() *bonsai.Network {
			return netgen.Datacenter(netgen.DCOptions{
				Clusters: 3, SpinesPerClus: 2, LeavesPerClus: 4, Cores: 2, Borders: 1,
				PrefixesPerLeaf: 2, VirtualIfaces: 3, StaticPatterns: 4, TagGroups: 5,
			})
		}},
		{"wan", func() *bonsai.Network {
			return netgen.WAN(netgen.WANOptions{Backbone: 6, Sites: 4, SwitchesPerSite: 3})
		}},
	}
}

// collectRows drains a stream into a prefix-indexed map of per-class
// results, failing on duplicates.
func collectRows(t *testing.T, s *bonsai.Stream) map[string]bonsai.ClassResult {
	t.Helper()
	rows := make(map[string]bonsai.ClassResult)
	for r := range s.Results() {
		if _, dup := rows[r.Prefix]; dup {
			t.Fatalf("class %s streamed twice", r.Prefix)
		}
		rows[r.Prefix] = r
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestStreamMatchesBatch is the stream-vs-batch differential gauntlet: on
// every netgen scenario and in both dedup modes, the parallel streaming
// pipeline (lazy enumeration -> sharded fingerprint-grouped scheduler)
// must produce a CompressReport field-identical to the serial batch shape
// (workers=1 runs the plain in-order loop), and identical per-class
// topology sizes.
func TestStreamMatchesBatch(t *testing.T) {
	ctx := context.Background()
	for _, tc := range gauntletScenarios() {
		for _, dedup := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/dedup=%v", tc.name, dedup), func(t *testing.T) {
				net := tc.gen()
				engSerial, err := bonsai.Open(net, bonsai.WithWorkers(1), bonsai.WithDedup(dedup))
				if err != nil {
					t.Fatal(err)
				}
				defer engSerial.Close()
				batch, err := engSerial.Compress(ctx, bonsai.ClassSelector{})
				if err != nil {
					t.Fatal(err)
				}
				// Per-class reference rows: a second pass over the warm
				// serial engine (sizes are deterministic; provenance is not
				// compared).
				refStream, err := engSerial.CompressStream(ctx, bonsai.ClassSelector{})
				if err != nil {
					t.Fatal(err)
				}
				ref := collectRows(t, refStream)

				engPar, err := bonsai.Open(net, bonsai.WithWorkers(4), bonsai.WithDedup(dedup))
				if err != nil {
					t.Fatal(err)
				}
				defer engPar.Close()
				s, err := engPar.CompressStream(ctx, bonsai.ClassSelector{})
				if err != nil {
					t.Fatal(err)
				}
				rows := collectRows(t, s)
				stream := s.Report()

				if len(rows) != len(ref) || len(rows) != batch.ClassesCompressed {
					t.Fatalf("row counts: stream %d, ref %d, batch %d", len(rows), len(ref), batch.ClassesCompressed)
				}
				for p, r := range rows {
					w, ok := ref[p]
					if !ok {
						t.Fatalf("stream produced unknown class %s", p)
					}
					if r.AbstractNodes != w.AbstractNodes || r.AbstractLinks != w.AbstractLinks {
						t.Fatalf("class %s: stream %d/%d, batch %d/%d",
							p, r.AbstractNodes, r.AbstractLinks, w.AbstractNodes, w.AbstractLinks)
					}
				}
				if stream.Network != batch.Network {
					t.Fatalf("network info: stream %+v, batch %+v", stream.Network, batch.Network)
				}
				if stream.ClassesCompressed != batch.ClassesCompressed ||
					stream.SumAbstractNodes != batch.SumAbstractNodes ||
					stream.SumAbstractLinks != batch.SumAbstractLinks ||
					stream.NodeRatio != batch.NodeRatio ||
					stream.LinkRatio != batch.LinkRatio {
					t.Fatalf("aggregate mismatch:\nstream %+v\nbatch  %+v", stream, batch)
				}
				for name, st := range map[string]bonsai.CacheStats{"serial": batch.Cache, "stream": stream.Cache} {
					if st.DuplicateFresh != 0 {
						t.Fatalf("%s: duplicated fresh compressions: %+v", name, st)
					}
					if dedup {
						classes := int64(batch.ClassesCompressed)
						if int64(st.Fresh)+st.Transported+st.Served < classes {
							t.Fatalf("%s: cache accounting: %+v over %d classes", name, st, classes)
						}
					} else if st.Fresh != 0 || st.Served != 0 || st.Transported != 0 {
						t.Fatalf("%s: dedup-off engine touched the cache: %+v", name, st)
					}
				}

				// Verify differential: the sched fan-out must report the
				// same verification result as the serial loop.
				vSerial, err := engSerial.Verify(ctx, bonsai.VerifyRequest{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				vPar, err := engPar.Verify(ctx, bonsai.VerifyRequest{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				if vSerial.Mode != vPar.Mode || vSerial.Classes != vPar.Classes ||
					vSerial.Pairs != vPar.Pairs || vSerial.ReachablePairs != vPar.ReachablePairs ||
					vSerial.AbstractNodeSum != vPar.AbstractNodeSum {
					t.Fatalf("verify mismatch:\nserial %v\nsched  %v", vSerial, vPar)
				}
			})
		}
	}
}

// TestStreamZeroDuplicateFresh asserts the scheduler's reason to exist: on
// a network with identity-shared classes (each spine-leaf external
// originates several prefixes with equal fingerprints), parallel streaming
// compression performs exactly one fresh refinement for the whole fabric,
// serves every identity-shared class from the cache, and never duplicates
// a fresh compression.
func TestStreamZeroDuplicateFresh(t *testing.T) {
	const leaves, ext, perExt = 4, 2, 3
	net := netgen.SpineLeaf(netgen.SpineLeafOptions{
		Spines: 3, Leaves: leaves, ExtPerLeaf: ext, PrefixesPerExt: perExt,
	})
	eng, err := bonsai.Open(net, bonsai.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s, err := eng.CompressStream(context.Background(), bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	rows := collectRows(t, s)
	classes := leaves * ext * perExt
	groups := leaves * ext // one fingerprint per external peer
	if len(rows) != classes {
		t.Fatalf("streamed %d classes, want %d", len(rows), classes)
	}
	st := eng.Stats()
	if st.DuplicateFresh != 0 {
		t.Fatalf("duplicate fresh compressions: %+v", st)
	}
	// With parallel workers, leaders of *different* fingerprint groups may
	// refine concurrently before the first transport seed exists, so Fresh
	// is bounded by the worker count — never by timing beyond it, and never
	// more than one per group.
	if st.Fresh < 1 || st.Fresh > 4 {
		t.Fatalf("fresh = %d, want 1..workers: %+v", st.Fresh, st)
	}
	if int64(st.Fresh)+st.Transported != int64(groups) {
		t.Fatalf("leaders = %d, want %d (one per fingerprint group): %+v",
			int64(st.Fresh)+st.Transported, groups, st)
	}
	if st.Served != int64(classes-groups) {
		t.Fatalf("identity hits = %d, want %d: %+v", st.Served, classes-groups, st)
	}
	if st.Misses != int64(groups) {
		t.Fatalf("misses = %d, want %d: %+v", st.Misses, groups, st)
	}

	// Serially (one worker), leader-first ordering is total: the very
	// first leader's result seeds every later group, so exactly one fresh
	// refinement serves the whole fabric.
	serial, err := bonsai.Open(net, bonsai.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	if _, err := serial.Compress(context.Background(), bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	sst := serial.Stats()
	if sst.Fresh != 1 || sst.DuplicateFresh != 0 {
		t.Fatalf("serial fresh = %d (dup %d), want exactly 1: %+v", sst.Fresh, sst.DuplicateFresh, sst)
	}
}

// TestClassSelectorEdgeCases covers the selector corners: an unknown
// prefix errors (batch and stream alike), the empty selector means every
// class, a covering address resolves to its class, and Engine.Classes is
// deterministic across engines.
func TestClassSelectorEdgeCases(t *testing.T) {
	ctx := context.Background()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	eng, err := bonsai.Open(net)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if _, err := eng.Compress(ctx, bonsai.ClassSelector{Prefix: "203.0.113.0/24"}); err == nil {
		t.Fatal("unknown prefix accepted by Compress")
	}
	if _, err := eng.CompressStream(ctx, bonsai.ClassSelector{Prefix: "203.0.113.0/24"}); err == nil {
		t.Fatal("unknown prefix accepted by CompressStream")
	}
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{Prefix: "not-a-prefix"}); err == nil {
		t.Fatal("garbage prefix accepted")
	}

	all, err := eng.Compress(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if all.ClassesCompressed != 8 || all.Network.Classes != 8 {
		t.Fatalf("empty selector compressed %d of %d classes, want all 8",
			all.ClassesCompressed, all.Network.Classes)
	}

	// A covering address inside a class's range selects that class.
	one, err := eng.Compress(ctx, bonsai.ClassSelector{Prefix: "10.0.0.128/32"})
	if err != nil {
		t.Fatal(err)
	}
	if one.ClassesCompressed != 1 {
		t.Fatalf("covering selector: %+v", one)
	}

	// MaxClasses larger than the class count is the full set; 0 defers.
	big, err := eng.Compress(ctx, bonsai.ClassSelector{MaxClasses: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if big.ClassesCompressed != 8 {
		t.Fatalf("oversized MaxClasses: %+v", big)
	}

	// Classes ordering is deterministic across independently opened engines.
	eng2, err := bonsai.Open(net)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	a, b := eng.Classes(), eng2.Classes()
	if len(a) != len(b) {
		t.Fatalf("class counts differ: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("class order differs at %d: %s != %s", i, a[i], b[i])
		}
	}
}

// TestEngineClose covers the shutdown contract: operations after Close
// return ErrClosed, Close is idempotent, and closing with a stream in
// flight lets the stream finish.
func TestEngineClose(t *testing.T) {
	ctx := context.Background()
	eng, err := bonsai.Open(netgen.Fattree(4, netgen.PolicyShortestPath), bonsai.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool so Close has compilers to free.
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err) // double-Close is a no-op
	}
	if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("Compress after Close: %v", err)
	}
	if _, err := eng.CompressStream(ctx, bonsai.ClassSelector{}); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("CompressStream after Close: %v", err)
	}
	if _, err := eng.Verify(ctx, bonsai.VerifyRequest{}); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("Verify after Close: %v", err)
	}
	if _, err := eng.Reach(ctx, "edge-1-1", "10.0.0.0/24"); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("Reach after Close: %v", err)
	}
	if _, err := eng.Roles(ctx, bonsai.RolesRequest{}); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("Roles after Close: %v", err)
	}
	if _, err := eng.Routes(ctx, "10.0.0.0/24"); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("Routes after Close: %v", err)
	}
	if _, err := eng.Apply(ctx, bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "agg-0-0", B: "core-0"}}}); !errors.Is(err, bonsai.ErrClosed) {
		t.Fatalf("Apply after Close: %v", err)
	}

	// Close while a stream is in flight: the stream completes, its
	// compilers are freed on release.
	eng2, err := bonsai.Open(netgen.Fattree(6, netgen.PolicyShortestPath), bonsai.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng2.CompressStream(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	var closeOnce sync.Once
	n := 0
	for range s.Results() {
		n++
		closeOnce.Do(func() {
			if err := eng2.Close(); err != nil {
				t.Error(err)
			}
		})
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 18 { // k=6: k²/2 classes
		t.Fatalf("in-flight stream yielded %d classes, want 18", n)
	}
}

// TestStreamEarlyBreakCancels: breaking out of Results cancels the
// remaining work, Err reports the cancellation, and the engine stays
// usable.
func TestStreamEarlyBreakCancels(t *testing.T) {
	ctx := context.Background()
	eng, err := bonsai.Open(netgen.Ring(32), bonsai.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s, err := eng.CompressStream(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for range s.Results() {
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("consumed %d rows", seen)
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after break: %v", err)
	}
	rep := s.Report()
	if rep.ClassesCompressed < 3 || rep.ClassesCompressed > 32 {
		t.Fatalf("partial report: %+v", rep)
	}
	// The engine survives an abandoned stream.
	full, err := eng.Compress(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if full.ClassesCompressed != 32 {
		t.Fatalf("engine unusable after break: %+v", full)
	}
}

// TestStreamProgress: the progress callback counts every class exactly
// once up to the selected total.
func TestStreamProgress(t *testing.T) {
	eng, err := bonsai.Open(netgen.Fattree(4, netgen.PolicyShortestPath), bonsai.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var mu sync.Mutex
	var calls []int
	total := -1
	s, err := eng.CompressStream(context.Background(), bonsai.ClassSelector{},
		bonsai.WithProgress(func(done, tot int) {
			mu.Lock()
			calls = append(calls, done)
			total = tot
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	collectRows(t, s)
	mu.Lock()
	defer mu.Unlock()
	if total != 8 || len(calls) != 8 {
		t.Fatalf("progress: %d calls, total %d", len(calls), total)
	}
	seen := make(map[int]bool)
	for _, d := range calls {
		if d < 1 || d > 8 || seen[d] {
			t.Fatalf("progress sequence %v", calls)
		}
		seen[d] = true
	}
}

// TestStreamMemoryBudget: a streaming run under a budget half the
// unbounded footprint keeps the store within it (plus the pinned seed
// floor), evicts, and still produces identical per-class results.
func TestStreamMemoryBudget(t *testing.T) {
	ctx := context.Background()
	net := netgen.Fattree(12, netgen.PolicyShortestPath)

	free, err := bonsai.Open(net, bonsai.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	fs, err := free.CompressStream(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, fs)
	baseline := free.Stats().LiveBytes
	if baseline <= 0 {
		t.Fatalf("no baseline footprint: %+v", free.Stats())
	}

	budget := baseline / 2
	bounded, err := bonsai.Open(net, bonsai.WithWorkers(2), bonsai.WithMemoryBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	defer bounded.Close()
	bs, err := bounded.CompressStream(ctx, bonsai.ClassSelector{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, bs)
	if len(got) != len(want) {
		t.Fatalf("bounded run compressed %d classes, want %d", len(got), len(want))
	}
	for p, r := range got {
		w := want[p]
		if r.AbstractNodes != w.AbstractNodes || r.AbstractLinks != w.AbstractLinks {
			t.Fatalf("class %s: bounded %d/%d, unbounded %d/%d",
				p, r.AbstractNodes, r.AbstractLinks, w.AbstractNodes, w.AbstractLinks)
		}
	}
	st := bounded.Stats()
	if st.BudgetBytes != budget {
		t.Fatalf("budget not applied: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("half budget evicted nothing: %+v", st)
	}
	// Peak may overshoot by the entry completing when eviction runs plus
	// the pinned seed floor; anything near the unbounded footprint means
	// the bound is not working.
	if st.PeakBytes > budget+baseline/4 {
		t.Fatalf("peak %d bytes under budget %d (unbounded %d)", st.PeakBytes, budget, baseline)
	}
	if st.DuplicateFresh != 0 {
		t.Fatalf("duplicate fresh under eviction: %+v", st)
	}
}
