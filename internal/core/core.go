// Package core implements Bonsai's compression algorithm (paper §5,
// Algorithm 1): abstraction refinement over a union-split-find partition of
// the concrete nodes, using canonical BDD edge policies so that
// transfer-function equivalence is a constant-time comparison. Starting from
// the coarsest partition ({d}, V∖{d}), abstract nodes are repeatedly split
// until every group is uniform in its policies toward neighboring groups;
// groups whose routers can assign k > 1 distinct BGP local-preference values
// are then split into k copies (Theorem 4.4's bound), yielding a
// BGP-effective abstraction.
package core

import (
	"fmt"
	"slices"
	"sort"

	"bonsai/internal/bdd"
	"bonsai/internal/topo"
	"bonsai/internal/usf"
)

// EdgeKey is the canonical signature of one directed SRP edge (u, v) for a
// fixed destination class: the composed BGP policy relation (export at v
// then import at u) as a hash-consed BDD node, plus the scalar parts of the
// transfer function (OSPF cost and area crossing, static route presence)
// and the dataplane ACL verdict, which Bonsai folds into the signature so
// that fwd-equivalence survives compression (paper §6). Two edges have
// equivalent transfer functions iff their EdgeKeys are equal.
type EdgeKey struct {
	BGP       bool     // live BGP session (present and not constant-drop)
	BGPRel    bdd.Node // canonical policy relation; False when !BGP
	IBGP      bool     // session is internal BGP (§6)
	OSPF      bool
	OSPFCost  int
	OSPFCross bool
	Static    bool
	ACLPermit bool
}

// Dead reports that no protocol can carry the destination across the edge;
// dead edges are ignored by refinement and omitted from the abstract graph.
func (k EdgeKey) Dead() bool { return !k.BGP && !k.OSPF && !k.Static }

// EdgeKey is comparable, so refinement does not render it at all: the
// adjacency builder interns each distinct key to a dense int32 ID and
// signatures are built from those IDs (see buildAdjacency).

// Mode selects the abstraction conditions targeted by refinement.
type Mode int

// Modes.
const (
	// ModeEffective computes a ∀∃-abstraction with transfer-equivalence,
	// sufficient for protocols without loop prevention (RIP, OSPF, static).
	ModeEffective Mode = iota
	// ModeBGP computes a BGP-effective abstraction: groups with multiple
	// possible local-preference values are refined against concrete
	// neighbors (∀∀) and split into |prefs| copies (paper §4.3).
	ModeBGP
)

// Options configures FindAbstraction.
type Options struct {
	Mode Mode
	// EdgeKey returns the canonical signature of directed edge (u, v).
	EdgeKey func(u, v topo.NodeID) EdgeKey
	// Prefs returns |prefs(u)|: the number of distinct BGP local-preference
	// values node u can assign for this destination (≥ 1). nil means 1.
	Prefs func(u topo.NodeID) int
}

// Abstraction is the result of compression: the node partition, the
// topology function f, and the abstract graph with BGP case splitting
// applied.
type Abstraction struct {
	G    *topo.Graph
	Dest topo.NodeID

	Groups [][]topo.NodeID // group index -> sorted members
	F      []int           // concrete node -> group index

	AbsG    *topo.Graph
	AbsDest topo.NodeID
	// Copies[g] lists the abstract node IDs for group g (one per BGP split
	// case; a single entry for unsplit groups).
	Copies [][]topo.NodeID
	// RepEdge maps each abstract directed edge to a representative concrete
	// edge; by transfer-equivalence any representative defines the abstract
	// transfer function.
	RepEdge map[topo.Edge]topo.Edge

	// Iterations counts refinement sweeps until fixpoint.
	Iterations int
	// ColorSplits counts groups divided by the greedy self-loop-freedom
	// coloring (phase 2b). First-fit coloring is the one phase of Algorithm 1
	// whose output depends on member order rather than on signatures alone,
	// so cross-class transport (internal/build) only reuses abstractions
	// with ColorSplits == 0.
	ColorSplits int
}

// FAbs returns the topology function f as concrete node -> primary abstract
// node (the first copy of its group).
func (a *Abstraction) FAbs(u topo.NodeID) topo.NodeID { return a.Copies[a.F[u]][0] }

// NumAbstractNodes returns the abstract node count including split copies.
func (a *Abstraction) NumAbstractNodes() int { return a.AbsG.NumNodes() }

// NumAbstractEdges returns the abstract undirected link count.
func (a *Abstraction) NumAbstractEdges() int { return a.AbsG.NumLinks() }

// FindAbstraction runs Algorithm 1 and returns the resulting abstraction.
func FindAbstraction(g *topo.Graph, dest topo.NodeID, opt Options) *Abstraction {
	if opt.EdgeKey == nil {
		panic("core: Options.EdgeKey is required")
	}
	prefs := opt.Prefs
	if prefs == nil {
		prefs = func(topo.NodeID) int { return 1 }
	}

	n := g.NumNodes()
	p := usf.New(n)
	p.Split([]int{int(dest)})

	// Edge keys are destination-specific but fixed across refinement
	// sweeps: compute them (and their string tokens) once up front.
	keyCache := make(map[topo.Edge]EdgeKey, g.NumEdges())
	edgeKey := func(u, v topo.NodeID) EdgeKey {
		e := topo.Edge{U: u, V: v}
		if k, ok := keyCache[e]; ok {
			return k
		}
		k := opt.EdgeKey(u, v)
		keyCache[e] = k
		return k
	}
	adj := buildAdjacency(g, edgeKey)
	sc := newSigCtx(adj, p)

	groupPrefs := func(members []int) int {
		numPrefs := 1
		for _, x := range members {
			if k := prefs(topo.NodeID(x)); k > numPrefs {
				numPrefs = k
			}
		}
		return numPrefs
	}

	iterations := 0
	colorSplits := 0
	for {
		// Phase 1 (∀∃): refine every group against abstract neighbor
		// groups and edge policies until nothing splits. Applying the
		// stronger ∀∀ keys before this fixpoint would shatter symmetric
		// nodes that are still mixed with dissimilar ones (Algorithm 1
		// reaches the same state by re-running Refine to fixpoint).
		for changed := true; changed; {
			iterations++
			changed = false
			for _, id := range append([]int(nil), p.Groups()...) {
				if len(p.Members(id)) <= 1 {
					continue
				}
				if sc.refine(id, false) {
					changed = true
				}
			}
		}
		before := p.NumGroups()
		// Phase 2a (∀∀, Algorithm 1 line 19): groups that may use several
		// local preferences must be uniformly adjacent to their neighbor
		// groups (modulo self), since their split copies will interconnect.
		if opt.Mode == ModeBGP {
			for _, id := range append([]int(nil), p.Groups()...) {
				members := p.Members(id)
				if len(members) <= 1 || groupPrefs(members) <= 1 {
					continue
				}
				sc.refine(id, true)
			}
		}
		// Phase 2b (self-loop freedom): an abstract SRP may not contain
		// self loops (§3.1), so a group joined by live internal edges is
		// only valid when BGP case splitting will expand it into
		// interconnected copies. Otherwise divide it so that no two
		// adjacent concrete nodes share an abstract node; greedy coloring
		// keeps the division small.
		for _, id := range append([]int(nil), p.Groups()...) {
			members := p.Members(id)
			if len(members) <= 1 {
				continue
			}
			if opt.Mode == ModeBGP && groupPrefs(members) > 1 {
				continue // copies of a split group may interconnect
			}
			if colorSplit(p, members, adj) {
				colorSplits++
			}
		}
		if p.NumGroups() == before {
			break
		}
	}

	_, idx := p.Snapshot()
	return Assemble(g, dest, idx, AssembleOptions{
		Mode:        opt.Mode,
		Prefs:       prefs,
		Live:        func(u, v topo.NodeID) bool { return !edgeKey(u, v).Dead() },
		Iterations:  iterations,
		ColorSplits: colorSplits,
	})
}

// AssembleOptions configures Assemble: the inputs of the post-refinement
// phases of Algorithm 1 (case splitting and abstract-graph construction).
type AssembleOptions struct {
	Mode Mode
	// Prefs returns |prefs(u)| (≥ 1); nil means 1.
	Prefs func(u topo.NodeID) int
	// Live reports whether the directed concrete edge (u, v) can carry the
	// destination (the negation of EdgeKey.Dead).
	Live func(u, v topo.NodeID) bool
	// LiveEdges, when non-nil, supplies the same information aligned with
	// g.Edges() order and takes precedence over Live — the per-edge lookup
	// disappears from the assembly loop.
	LiveEdges []bool
	// Iterations and ColorSplits are recorded on the result.
	Iterations  int
	ColorSplits int
}

// Assemble builds the Abstraction of a finished partition: BGP case
// splitting (§4.3), the abstract graph and the representative-edge table.
// groupOf maps each concrete node to a group id under any numbering; groups
// are re-canonicalised (ordered by smallest member) so that equal partitions
// always assemble to identical Abstractions. FindAbstraction uses it as its
// final step, and the cross-class transport of internal/build uses it to
// rebuild a permuted partition exactly as a fresh compression would.
func Assemble(g *topo.Graph, dest topo.NodeID, groupOf []int, opt AssembleOptions) *Abstraction {
	prefs := opt.Prefs
	if prefs == nil {
		prefs = func(topo.NodeID) int { return 1 }
	}

	// Canonicalise the partition: groups ordered by smallest member,
	// members sorted. Node iteration is in increasing id, so a group's
	// first-seen member is its smallest and group order follows it.
	remap := make(map[int]int)
	var groups [][]topo.NodeID
	for u := 0; u < len(groupOf); u++ {
		gi, ok := remap[groupOf[u]]
		if !ok {
			gi = len(groups)
			remap[groupOf[u]] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], topo.NodeID(u))
	}
	idx := make([]int, len(groupOf))
	for gi, ms := range groups {
		for _, u := range ms {
			idx[u] = gi
		}
	}

	abs := &Abstraction{
		G:           g,
		Dest:        dest,
		F:           idx,
		Groups:      groups,
		Iterations:  opt.Iterations,
		ColorSplits: opt.ColorSplits,
		RepEdge:     make(map[topo.Edge]topo.Edge),
	}

	// BGP case splitting (paper §4.3, Theorem 4.4): each abstract node is
	// duplicated once per possible local-preference value its members can
	// use. The destination is never split.
	splits := make([]int, len(abs.Groups))
	for i, ms := range abs.Groups {
		splits[i] = 1
		if opt.Mode == ModeBGP && abs.F[dest] != i {
			for _, u := range ms {
				if k := prefs(u); k > splits[i] {
					splits[i] = k
				}
			}
			// A solution assigns each concrete node one behavior, so a
			// group never needs more copies than members (and the refined
			// mapping f_r of Theorem 4.5 must be onto the copies).
			if splits[i] > len(ms) {
				splits[i] = len(ms)
			}
		}
	}

	absG := topo.New()
	abs.Copies = make([][]topo.NodeID, len(abs.Groups))
	for i, ms := range abs.Groups {
		rep := g.Name(ms[0])
		for c := 0; c < splits[i]; c++ {
			name := "~" + rep
			if splits[i] > 1 {
				name = fmt.Sprintf("~%s#%d", rep, c)
			}
			abs.Copies[i] = append(abs.Copies[i], absG.AddNode(name))
		}
	}
	abs.AbsDest = abs.Copies[abs.F[dest]][0]

	// Abstract edges: one per pair of groups joined by a live concrete
	// edge, expanded across split copies (copies of the same group connect
	// to each other but never to themselves: SRPs are self-loop-free).
	type groupEdge struct{ a, b int }
	repFor := make(map[groupEdge]topo.Edge)
	for i, e := range g.Edges() {
		if opt.LiveEdges != nil {
			if !opt.LiveEdges[i] {
				continue
			}
		} else if !opt.Live(e.U, e.V) {
			continue
		}
		ge := groupEdge{abs.F[e.U], abs.F[e.V]}
		if _, ok := repFor[ge]; !ok {
			repFor[ge] = e
		}
	}
	ges := make([]groupEdge, 0, len(repFor))
	for ge := range repFor {
		ges = append(ges, ge)
	}
	sort.Slice(ges, func(i, j int) bool {
		if ges[i].a != ges[j].a {
			return ges[i].a < ges[j].a
		}
		return ges[i].b < ges[j].b
	})
	for _, ge := range ges {
		rep := repFor[ge]
		for _, ca := range abs.Copies[ge.a] {
			for _, cb := range abs.Copies[ge.b] {
				if ca == cb {
					continue
				}
				absG.AddEdge(ca, cb)
				if _, ok := abs.RepEdge[topo.Edge{U: ca, V: cb}]; !ok {
					abs.RepEdge[topo.Edge{U: ca, V: cb}] = rep
				}
			}
		}
	}
	abs.AbsG = absG
	return abs
}

// liveEdge is a precomputed neighbor entry: the neighbor node and the
// interned ID of the edge's canonical policy key.
type liveEdge struct {
	nbr topo.NodeID
	tok int32
}

// adjacency holds, per node, the live out- and in-edges with their interned
// policy-key IDs, computed once per destination class, plus the sorted
// live-neighbor lists used by the self-loop-freedom coloring.
type adjacency struct {
	out  [][]liveEdge
	in   [][]liveEdge
	nbrs [][]topo.NodeID // union of live out/in neighbors, sorted, deduped
}

func buildAdjacency(g *topo.Graph, edgeKey func(u, v topo.NodeID) EdgeKey) *adjacency {
	n := g.NumNodes()
	a := &adjacency{
		out:  make([][]liveEdge, n),
		in:   make([][]liveEdge, n),
		nbrs: make([][]topo.NodeID, n),
	}
	// EdgeKey is comparable, so distinct keys intern to dense IDs and the
	// refinement loop never renders a key again.
	keyIDs := make(map[EdgeKey]int32, 16)
	for _, u := range g.Nodes() {
		for _, v := range g.Succ(u) {
			k := edgeKey(u, v)
			if k.Dead() {
				continue
			}
			tok, ok := keyIDs[k]
			if !ok {
				tok = int32(len(keyIDs))
				keyIDs[k] = tok
			}
			a.out[u] = append(a.out[u], liveEdge{v, tok})
			a.in[v] = append(a.in[v], liveEdge{u, tok})
			a.nbrs[u] = append(a.nbrs[u], v)
			a.nbrs[v] = append(a.nbrs[v], u)
		}
	}
	for i, ns := range a.nbrs {
		slices.Sort(ns)
		a.nbrs[i] = slices.Compact(ns)
	}
	return a
}

// adjacent reports whether a live edge joins u and v in either direction.
func (a *adjacency) adjacent(u, v int) bool {
	_, found := slices.BinarySearch(a.nbrs[u], topo.NodeID(v))
	return found
}

// colorSplit divides a group so that no two live-adjacent members remain
// together, using first-fit coloring in member order (deterministic). It
// reports whether the group was split.
func colorSplit(p *usf.Partition, members []int, adj *adjacency) bool {
	var colors [][]int
	for _, u := range members {
		placed := false
		for ci := range colors {
			ok := true
			for _, v := range colors[ci] {
				if adj.adjacent(u, v) {
					ok = false
					break
				}
			}
			if ok {
				colors[ci] = append(colors[ci], u)
				placed = true
				break
			}
		}
		if !placed {
			colors = append(colors, []int{u})
		}
	}
	if len(colors) <= 1 {
		return false
	}
	for _, c := range colors[1:] {
		p.Split(c)
	}
	return true
}

// interner assigns dense int32 IDs to uint64 sequences. Its byte buffer is
// reused across calls, and the map[string] lookup with an in-place
// string([]byte) conversion does not allocate on the hit path, so interning
// an already-seen sequence is allocation-free.
type interner struct {
	ids map[string]int32
	buf []byte
}

func newInterner() *interner { return &interner{ids: make(map[string]int32, 64)} }

func (in *interner) intern(words []uint64) int32 {
	buf := in.buf[:0]
	for _, w := range words {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	in.buf = buf
	if id, ok := in.ids[string(buf)]; ok {
		return id
	}
	id := int32(len(in.ids))
	in.ids[string(buf)] = id
	return id
}

// reset forgets all assignments but keeps the allocated capacity.
func (in *interner) reset() { clear(in.ids) }

// sigCtx computes refinement signatures as interned integers. Signature IDs
// are only comparable within one Refine call (both interners are reset per
// call), which keeps the tables bounded by the group size instead of growing
// with the number of sweeps.
type sigCtx struct {
	adj  *adjacency
	p    *usf.Partition
	sigs *interner // sorted token sequences -> signature IDs
	toks *interner // ∀∀ token payloads -> token IDs
	ws   []uint64  // signature scratch
	tw   []uint64  // token scratch
}

func newSigCtx(adj *adjacency, p *usf.Partition) *sigCtx {
	return &sigCtx{adj: adj, p: p, sigs: newInterner(), toks: newInterner()}
}

// refine runs one signature-refinement pass over group id.
func (sc *sigCtx) refine(id int, forallForall bool) bool {
	sc.sigs.reset()
	sc.toks.reset()
	return sc.p.Refine(id, func(x int) int64 {
		return int64(sc.signature(topo.NodeID(x), forallForall))
	})
}

// packTok encodes one refinement token as a single word: direction (in/out)
// in the top bit, the interned policy-key (or ∀∀ token) ID in bits 32..62
// and the neighbor group in the low 32 bits.
func packTok(in bool, tok int32, group int) uint64 {
	w := uint64(uint32(tok))<<32 | uint64(uint32(group))
	if in {
		w |= 1 << 63
	}
	return w
}

// signature builds the refinement key of node u: the interned, sorted set of
// (edge policy, neighbor group) tokens over its live out- and in-edges.
// Including in-edges guarantees that all concrete edges mapped to one
// abstract edge share a single policy, which transfer-equivalence requires
// of the edge as a whole.
//
// When the group under refinement may use several local preferences
// (forallForall, Algorithm 1 line 19), out-edge tokens additionally record
// whether u reaches *every* member of the neighbor group (the ∀∀ condition,
// group-wise) — and, if not, exactly which members it reaches, so that nodes
// with matching partial adjacency (e.g. fattree aggregation routers of the
// same pod) can still share an abstract node. Those variable-length payloads
// are interned to token IDs first, so every token is one word and the
// signature is a sorted small int slice, never a string.
func (sc *sigCtx) signature(u topo.NodeID, forallForall bool) int32 {
	a, p := sc.adj, sc.p
	ws := sc.ws[:0]
	if forallForall {
		// Group out-edges by (policy key, neighbor group).
		reach := make(map[uint64][]int, len(a.out[u]))
		for _, le := range a.out[u] {
			pg := packTok(false, le.tok, p.Find(int(le.nbr)))
			reach[pg] = append(reach[pg], int(le.nbr))
		}
		for pg, vs := range reach {
			tw := append(sc.tw[:0], pg)
			// Record which members of the neighbor group u does NOT reach,
			// always excluding u itself: nodes whose reach differs only by
			// self-exclusion (the split copies of §4.3 never self-connect)
			// must share a key, while partial adjacency (fattree pods)
			// still separates correctly.
			missing := missedMembers(p, int(pg&0xffffffff), int(u), vs)
			if len(missing) == 0 {
				tw = append(tw, 1)
			} else {
				tw = append(tw, 0)
				for _, v := range missing {
					tw = append(tw, uint64(v))
				}
			}
			sc.tw = tw
			ws = append(ws, packTok(false, sc.toks.intern(tw), 0))
		}
	} else {
		for _, le := range a.out[u] {
			ws = append(ws, packTok(false, le.tok, p.Find(int(le.nbr))))
		}
	}
	for _, le := range a.in[u] {
		ws = append(ws, packTok(true, le.tok, p.Find(int(le.nbr))))
	}
	slices.Sort(ws)
	ws = slices.Compact(ws)
	sc.ws = ws
	return sc.sigs.intern(ws)
}

// missedMembers returns the members of group that u does not reach via vs,
// excluding u itself, in sorted order.
func missedMembers(p *usf.Partition, group, u int, vs []int) []int {
	reached := make(map[int]bool, len(vs))
	for _, v := range vs {
		reached[v] = true
	}
	var missing []int
	for _, m := range p.Members(group) {
		if m != u && !reached[m] {
			missing = append(missing, m)
		}
	}
	return missing // Members() is sorted, so missing is too
}
