// Package core implements Bonsai's compression algorithm (paper §5,
// Algorithm 1): abstraction refinement over a union-split-find partition of
// the concrete nodes, using canonical BDD edge policies so that
// transfer-function equivalence is a constant-time comparison. Starting from
// the coarsest partition ({d}, V∖{d}), abstract nodes are repeatedly split
// until every group is uniform in its policies toward neighboring groups;
// groups whose routers can assign k > 1 distinct BGP local-preference values
// are then split into k copies (Theorem 4.4's bound), yielding a
// BGP-effective abstraction.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bonsai/internal/bdd"
	"bonsai/internal/topo"
	"bonsai/internal/usf"
)

// EdgeKey is the canonical signature of one directed SRP edge (u, v) for a
// fixed destination class: the composed BGP policy relation (export at v
// then import at u) as a hash-consed BDD node, plus the scalar parts of the
// transfer function (OSPF cost and area crossing, static route presence)
// and the dataplane ACL verdict, which Bonsai folds into the signature so
// that fwd-equivalence survives compression (paper §6). Two edges have
// equivalent transfer functions iff their EdgeKeys are equal.
type EdgeKey struct {
	BGP       bool     // live BGP session (present and not constant-drop)
	BGPRel    bdd.Node // canonical policy relation; False when !BGP
	IBGP      bool     // session is internal BGP (§6)
	OSPF      bool
	OSPFCost  int
	OSPFCross bool
	Static    bool
	ACLPermit bool
}

// Dead reports that no protocol can carry the destination across the edge;
// dead edges are ignored by refinement and omitted from the abstract graph.
func (k EdgeKey) Dead() bool { return !k.BGP && !k.OSPF && !k.Static }

// token renders the key for use inside refinement signatures.
func (k EdgeKey) token() string {
	b := make([]byte, 0, 32)
	b = appendBool(b, k.BGP)
	b = appendBool(b, k.IBGP)
	b = strconv.AppendInt(b, int64(k.BGPRel), 10)
	b = append(b, ',')
	b = appendBool(b, k.OSPF)
	b = strconv.AppendInt(b, int64(k.OSPFCost), 10)
	b = appendBool(b, k.OSPFCross)
	b = append(b, ',')
	b = appendBool(b, k.Static)
	b = appendBool(b, k.ACLPermit)
	return string(b)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// Mode selects the abstraction conditions targeted by refinement.
type Mode int

// Modes.
const (
	// ModeEffective computes a ∀∃-abstraction with transfer-equivalence,
	// sufficient for protocols without loop prevention (RIP, OSPF, static).
	ModeEffective Mode = iota
	// ModeBGP computes a BGP-effective abstraction: groups with multiple
	// possible local-preference values are refined against concrete
	// neighbors (∀∀) and split into |prefs| copies (paper §4.3).
	ModeBGP
)

// Options configures FindAbstraction.
type Options struct {
	Mode Mode
	// EdgeKey returns the canonical signature of directed edge (u, v).
	EdgeKey func(u, v topo.NodeID) EdgeKey
	// Prefs returns |prefs(u)|: the number of distinct BGP local-preference
	// values node u can assign for this destination (≥ 1). nil means 1.
	Prefs func(u topo.NodeID) int
}

// Abstraction is the result of compression: the node partition, the
// topology function f, and the abstract graph with BGP case splitting
// applied.
type Abstraction struct {
	G    *topo.Graph
	Dest topo.NodeID

	Groups [][]topo.NodeID // group index -> sorted members
	F      []int           // concrete node -> group index

	AbsG    *topo.Graph
	AbsDest topo.NodeID
	// Copies[g] lists the abstract node IDs for group g (one per BGP split
	// case; a single entry for unsplit groups).
	Copies [][]topo.NodeID
	// RepEdge maps each abstract directed edge to a representative concrete
	// edge; by transfer-equivalence any representative defines the abstract
	// transfer function.
	RepEdge map[topo.Edge]topo.Edge

	// Iterations counts refinement sweeps until fixpoint.
	Iterations int
}

// FAbs returns the topology function f as concrete node -> primary abstract
// node (the first copy of its group).
func (a *Abstraction) FAbs(u topo.NodeID) topo.NodeID { return a.Copies[a.F[u]][0] }

// NumAbstractNodes returns the abstract node count including split copies.
func (a *Abstraction) NumAbstractNodes() int { return a.AbsG.NumNodes() }

// NumAbstractEdges returns the abstract undirected link count.
func (a *Abstraction) NumAbstractEdges() int { return a.AbsG.NumLinks() }

// FindAbstraction runs Algorithm 1 and returns the resulting abstraction.
func FindAbstraction(g *topo.Graph, dest topo.NodeID, opt Options) *Abstraction {
	if opt.EdgeKey == nil {
		panic("core: Options.EdgeKey is required")
	}
	prefs := opt.Prefs
	if prefs == nil {
		prefs = func(topo.NodeID) int { return 1 }
	}

	n := g.NumNodes()
	p := usf.New(n)
	p.Split([]int{int(dest)})

	// Edge keys are destination-specific but fixed across refinement
	// sweeps: compute them (and their string tokens) once up front.
	keyCache := make(map[topo.Edge]EdgeKey, g.NumEdges())
	edgeKey := func(u, v topo.NodeID) EdgeKey {
		e := topo.Edge{U: u, V: v}
		if k, ok := keyCache[e]; ok {
			return k
		}
		k := opt.EdgeKey(u, v)
		keyCache[e] = k
		return k
	}
	adj := buildAdjacency(g, edgeKey)

	groupPrefs := func(members []int) int {
		numPrefs := 1
		for _, x := range members {
			if k := prefs(topo.NodeID(x)); k > numPrefs {
				numPrefs = k
			}
		}
		return numPrefs
	}

	iterations := 0
	for {
		// Phase 1 (∀∃): refine every group against abstract neighbor
		// groups and edge policies until nothing splits. Applying the
		// stronger ∀∀ keys before this fixpoint would shatter symmetric
		// nodes that are still mixed with dissimilar ones (Algorithm 1
		// reaches the same state by re-running Refine to fixpoint).
		for changed := true; changed; {
			iterations++
			changed = false
			for _, id := range append([]int(nil), p.Groups()...) {
				if len(p.Members(id)) <= 1 {
					continue
				}
				if p.Refine(id, func(x int) string {
					return adj.signature(topo.NodeID(x), p, false)
				}) {
					changed = true
				}
			}
		}
		before := p.NumGroups()
		// Phase 2a (∀∀, Algorithm 1 line 19): groups that may use several
		// local preferences must be uniformly adjacent to their neighbor
		// groups (modulo self), since their split copies will interconnect.
		if opt.Mode == ModeBGP {
			for _, id := range append([]int(nil), p.Groups()...) {
				members := p.Members(id)
				if len(members) <= 1 || groupPrefs(members) <= 1 {
					continue
				}
				p.Refine(id, func(x int) string {
					return adj.signature(topo.NodeID(x), p, true)
				})
			}
		}
		// Phase 2b (self-loop freedom): an abstract SRP may not contain
		// self loops (§3.1), so a group joined by live internal edges is
		// only valid when BGP case splitting will expand it into
		// interconnected copies. Otherwise divide it so that no two
		// adjacent concrete nodes share an abstract node; greedy coloring
		// keeps the division small.
		for _, id := range append([]int(nil), p.Groups()...) {
			members := p.Members(id)
			if len(members) <= 1 {
				continue
			}
			if opt.Mode == ModeBGP && groupPrefs(members) > 1 {
				continue // copies of a split group may interconnect
			}
			colorSplit(p, members, adj)
		}
		if p.NumGroups() == before {
			break
		}
	}

	groups, idx := p.Snapshot()
	abs := &Abstraction{
		G:          g,
		Dest:       dest,
		F:          idx,
		Iterations: iterations,
		RepEdge:    make(map[topo.Edge]topo.Edge),
	}
	abs.Groups = make([][]topo.NodeID, len(groups))
	for i, ms := range groups {
		nodes := make([]topo.NodeID, len(ms))
		for j, x := range ms {
			nodes[j] = topo.NodeID(x)
		}
		abs.Groups[i] = nodes
	}

	// BGP case splitting (paper §4.3, Theorem 4.4): each abstract node is
	// duplicated once per possible local-preference value its members can
	// use. The destination is never split.
	splits := make([]int, len(abs.Groups))
	for i, ms := range abs.Groups {
		splits[i] = 1
		if opt.Mode == ModeBGP && abs.F[dest] != i {
			for _, u := range ms {
				if k := prefs(u); k > splits[i] {
					splits[i] = k
				}
			}
			// A solution assigns each concrete node one behavior, so a
			// group never needs more copies than members (and the refined
			// mapping f_r of Theorem 4.5 must be onto the copies).
			if splits[i] > len(ms) {
				splits[i] = len(ms)
			}
		}
	}

	absG := topo.New()
	abs.Copies = make([][]topo.NodeID, len(abs.Groups))
	for i, ms := range abs.Groups {
		rep := g.Name(ms[0])
		for c := 0; c < splits[i]; c++ {
			name := "~" + rep
			if splits[i] > 1 {
				name = fmt.Sprintf("~%s#%d", rep, c)
			}
			abs.Copies[i] = append(abs.Copies[i], absG.AddNode(name))
		}
	}
	abs.AbsDest = abs.Copies[abs.F[dest]][0]

	// Abstract edges: one per pair of groups joined by a live concrete
	// edge, expanded across split copies (copies of the same group connect
	// to each other but never to themselves: SRPs are self-loop-free).
	type groupEdge struct{ a, b int }
	repFor := make(map[groupEdge]topo.Edge)
	for _, e := range g.Edges() {
		if edgeKey(e.U, e.V).Dead() {
			continue
		}
		ge := groupEdge{abs.F[e.U], abs.F[e.V]}
		if _, ok := repFor[ge]; !ok {
			repFor[ge] = e
		}
	}
	ges := make([]groupEdge, 0, len(repFor))
	for ge := range repFor {
		ges = append(ges, ge)
	}
	sort.Slice(ges, func(i, j int) bool {
		if ges[i].a != ges[j].a {
			return ges[i].a < ges[j].a
		}
		return ges[i].b < ges[j].b
	})
	for _, ge := range ges {
		rep := repFor[ge]
		for _, ca := range abs.Copies[ge.a] {
			for _, cb := range abs.Copies[ge.b] {
				if ca == cb {
					continue
				}
				absG.AddEdge(ca, cb)
				if _, ok := abs.RepEdge[topo.Edge{U: ca, V: cb}]; !ok {
					abs.RepEdge[topo.Edge{U: ca, V: cb}] = rep
				}
			}
		}
	}
	abs.AbsG = absG
	return abs
}

// liveEdge is a precomputed neighbor entry: the neighbor node and the edge's
// policy token.
type liveEdge struct {
	nbr topo.NodeID
	tok string
}

// adjacency holds, per node, the live out- and in-edges with their policy
// tokens, computed once per destination class.
type adjacency struct {
	out  [][]liveEdge
	in   [][]liveEdge
	live map[topo.Edge]bool
}

func buildAdjacency(g *topo.Graph, edgeKey func(u, v topo.NodeID) EdgeKey) *adjacency {
	n := g.NumNodes()
	a := &adjacency{
		out:  make([][]liveEdge, n),
		in:   make([][]liveEdge, n),
		live: make(map[topo.Edge]bool, g.NumEdges()),
	}
	for _, u := range g.Nodes() {
		for _, v := range g.Succ(u) {
			k := edgeKey(u, v)
			if k.Dead() {
				continue
			}
			tok := k.token()
			a.out[u] = append(a.out[u], liveEdge{v, tok})
			a.in[v] = append(a.in[v], liveEdge{u, tok})
			a.live[topo.Edge{U: u, V: v}] = true
		}
	}
	return a
}

// colorSplit divides a group so that no two live-adjacent members remain
// together, using first-fit coloring in member order (deterministic). It
// reports whether the group was split.
func colorSplit(p *usf.Partition, members []int, adj *adjacency) bool {
	adjacent := func(u, v int) bool {
		return adj.live[topo.Edge{U: topo.NodeID(u), V: topo.NodeID(v)}] ||
			adj.live[topo.Edge{U: topo.NodeID(v), V: topo.NodeID(u)}]
	}
	var colors [][]int
	for _, u := range members {
		placed := false
		for ci := range colors {
			ok := true
			for _, v := range colors[ci] {
				if adjacent(u, v) {
					ok = false
					break
				}
			}
			if ok {
				colors[ci] = append(colors[ci], u)
				placed = true
				break
			}
		}
		if !placed {
			colors = append(colors, []int{u})
		}
	}
	if len(colors) <= 1 {
		return false
	}
	for _, c := range colors[1:] {
		p.Split(c)
	}
	return true
}

// signature builds the refinement key of node u: the sorted set of
// (edge policy, neighbor group) tokens over its live out- and in-edges.
// Including in-edges guarantees that all concrete edges mapped to one
// abstract edge share a single policy, which transfer-equivalence requires
// of the edge as a whole.
//
// When the group under refinement may use several local preferences
// (forallForall, Algorithm 1 line 19), out-edge tokens additionally record
// whether u reaches *every* member of the neighbor group (the ∀∀ condition,
// group-wise) — and, if not, exactly which members it reaches, so that nodes
// with matching partial adjacency (e.g. fattree aggregation routers of the
// same pod) can still share an abstract node.
func (a *adjacency) signature(u topo.NodeID, p *usf.Partition, forallForall bool) string {
	type polGroup struct {
		tok   string
		group int
	}
	toks := make([]string, 0, len(a.out[u])+len(a.in[u]))
	if forallForall {
		reach := make(map[polGroup][]int)
		for _, le := range a.out[u] {
			pg := polGroup{le.tok, p.Find(int(le.nbr))}
			reach[pg] = append(reach[pg], int(le.nbr))
		}
		for pg, vs := range reach {
			b := make([]byte, 0, 64)
			b = append(b, 'o', '|')
			b = append(b, pg.tok...)
			b = append(b, '|', 'g')
			b = strconv.AppendInt(b, int64(pg.group), 10)
			// Record which members of the neighbor group u does NOT reach,
			// always excluding u itself: nodes whose reach differs only by
			// self-exclusion (the split copies of §4.3 never self-connect)
			// must share a key, while partial adjacency (fattree pods)
			// still separates correctly.
			missing := missedMembers(p, pg.group, int(u), vs)
			if len(missing) == 0 {
				b = append(b, "|full"...)
			} else {
				b = append(b, "|miss"...)
				for _, v := range missing {
					b = strconv.AppendInt(b, int64(v), 10)
					b = append(b, ',')
				}
			}
			toks = append(toks, string(b))
		}
	} else {
		for _, le := range a.out[u] {
			b := make([]byte, 0, 48)
			b = append(b, 'o', '|')
			b = append(b, le.tok...)
			b = append(b, '|', 'g')
			b = strconv.AppendInt(b, int64(p.Find(int(le.nbr))), 10)
			toks = append(toks, string(b))
		}
	}
	for _, le := range a.in[u] {
		b := make([]byte, 0, 48)
		b = append(b, 'i', '|')
		b = append(b, le.tok...)
		b = append(b, '|', 'g')
		b = strconv.AppendInt(b, int64(p.Find(int(le.nbr))), 10)
		toks = append(toks, string(b))
	}
	sort.Strings(toks)
	toks = dedupStrings(toks)
	return strings.Join(toks, ";")
}

// missedMembers returns the members of group that u does not reach via vs,
// excluding u itself, in sorted order.
func missedMembers(p *usf.Partition, group, u int, vs []int) []int {
	reached := make(map[int]bool, len(vs))
	for _, v := range vs {
		reached[v] = true
	}
	var missing []int
	for _, m := range p.Members(group) {
		if m != u && !reached[m] {
			missing = append(missing, m)
		}
	}
	return missing // Members() is sorted, so missing is too
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}
