// Package core implements Bonsai's compression algorithm (paper §5,
// Algorithm 1): abstraction refinement over a union-split-find partition of
// the concrete nodes, using canonical BDD edge policies so that
// transfer-function equivalence is a constant-time comparison. Starting from
// the coarsest partition ({d}, V∖{d}), abstract nodes are repeatedly split
// until every group is uniform in its policies toward neighboring groups;
// groups whose routers can assign k > 1 distinct BGP local-preference values
// are then split into k copies (Theorem 4.4's bound), yielding a
// BGP-effective abstraction.
//
// Scheduling is Paige–Tarjan-style: instead of re-sweeping every group to a
// fixpoint, a worklist tracks exactly the groups whose members may have
// changed signature — when a group sheds members, only the groups holding
// live in/out-neighbors of the moved nodes are re-examined. The ∀∃ fixpoint
// is the unique coarsest stable refinement of the starting partition
// (signature equality is preserved under coarsening, so stability is
// schedule-independent), which makes worklist scheduling produce the same
// partition as the naive sweep; FindAbstractionSweep retains the sweep as
// the reference implementation and the differential tests in this package
// assert field-identical Abstractions across both. The partition core
// (internal/usf) and the signature context refine without per-call maps or
// slices, so a fresh compression allocates O(groups), not O(sweeps·nodes).
package core

import (
	"fmt"
	"slices"

	"bonsai/internal/bdd"
	"bonsai/internal/topo"
	"bonsai/internal/usf"
)

// EdgeKey is the canonical signature of one directed SRP edge (u, v) for a
// fixed destination class: the composed BGP policy relation (export at v
// then import at u) as a hash-consed BDD node, plus the scalar parts of the
// transfer function (OSPF cost and area crossing, static route presence)
// and the dataplane ACL verdict, which Bonsai folds into the signature so
// that fwd-equivalence survives compression (paper §6). Two edges have
// equivalent transfer functions iff their EdgeKeys are equal.
type EdgeKey struct {
	BGP       bool     // live BGP session (present and not constant-drop)
	BGPRel    bdd.Node // canonical policy relation; False when !BGP
	IBGP      bool     // session is internal BGP (§6)
	OSPF      bool
	OSPFCost  int
	OSPFCross bool
	Static    bool
	ACLPermit bool
}

// Dead reports that no protocol can carry the destination across the edge;
// dead edges are ignored by refinement and omitted from the abstract graph.
func (k EdgeKey) Dead() bool { return !k.BGP && !k.OSPF && !k.Static }

// EdgeKey is comparable, so refinement does not render it at all: the
// adjacency builder interns each distinct key to a dense int32 ID and
// signatures are built from those IDs (see buildAdjacency).

// Mode selects the abstraction conditions targeted by refinement.
type Mode int

// Modes.
const (
	// ModeEffective computes a ∀∃-abstraction with transfer-equivalence,
	// sufficient for protocols without loop prevention (RIP, OSPF, static).
	ModeEffective Mode = iota
	// ModeBGP computes a BGP-effective abstraction: groups with multiple
	// possible local-preference values are refined against concrete
	// neighbors (∀∀) and split into |prefs| copies (paper §4.3).
	ModeBGP
)

// Options configures FindAbstraction.
type Options struct {
	Mode Mode
	// EdgeKey returns the canonical signature of directed edge (u, v).
	EdgeKey func(u, v topo.NodeID) EdgeKey
	// EdgeKeys, when non-nil, supplies every edge's canonical signature
	// aligned with g.Edges() and takes precedence over EdgeKey: adjacency
	// construction reads the vector instead of calling back per edge.
	// Callers that can batch-derive keys (internal/build resolves each
	// distinct session shape once per class) avoid per-edge policy lookups
	// entirely.
	EdgeKeys []EdgeKey
	// Prefs returns |prefs(u)|: the number of distinct BGP local-preference
	// values node u can assign for this destination (≥ 1). nil means 1.
	Prefs func(u topo.NodeID) int
}

// Abstraction is the result of compression: the node partition, the
// topology function f, and the abstract graph with BGP case splitting
// applied.
type Abstraction struct {
	G    *topo.Graph
	Dest topo.NodeID

	Groups [][]topo.NodeID // group index -> sorted members
	F      []int           // concrete node -> group index

	AbsG    *topo.Graph
	AbsDest topo.NodeID
	// Copies[g] lists the abstract node IDs for group g (one per BGP split
	// case; a single entry for unsplit groups).
	Copies [][]topo.NodeID
	// RepEdge maps each abstract directed edge to a representative concrete
	// edge; by transfer-equivalence any representative defines the abstract
	// transfer function.
	RepEdge map[topo.Edge]topo.Edge

	// Live records, per index of G.Edges(), whether the directed edge can
	// carry the destination class (the negation of EdgeKey.Dead): the
	// liveness vector refinement ran against. Consumers (internal/build's
	// dedup cache) read it instead of re-deriving edge keys. It is aligned
	// with the G this abstraction was computed over.
	Live []bool

	// Iterations counts group refinements until fixpoint (sweep passes for
	// the reference scheduler, worklist pops for the production one); it is
	// diagnostic only and, unlike every other field, scheduling-dependent.
	Iterations int
	// ColorSplits counts groups divided by the greedy self-loop-freedom
	// coloring (phase 2b). First-fit coloring is the one phase of Algorithm 1
	// whose output depends on member order rather than on signatures alone,
	// so cross-class transport (internal/build) only reuses abstractions
	// with ColorSplits == 0.
	ColorSplits int
}

// FAbs returns the topology function f as concrete node -> primary abstract
// node (the first copy of its group).
func (a *Abstraction) FAbs(u topo.NodeID) topo.NodeID { return a.Copies[a.F[u]][0] }

// NumAbstractNodes returns the abstract node count including split copies.
func (a *Abstraction) NumAbstractNodes() int { return a.AbsG.NumNodes() }

// NumAbstractEdges returns the abstract undirected link count.
func (a *Abstraction) NumAbstractEdges() int { return a.AbsG.NumLinks() }

// FindAbstraction runs Algorithm 1 with worklist scheduling and returns the
// resulting abstraction.
func FindAbstraction(g *topo.Graph, dest topo.NodeID, opt Options) *Abstraction {
	return findAbstraction(g, dest, opt, false)
}

// FindAbstractionSweep runs Algorithm 1 with the naive sweep-to-fixpoint
// scheduling: every refinement pass recomputes the signature of every
// multi-member group. It is retained purely as the reference implementation
// the worklist engine is differentially tested against — both produce
// field-identical Abstractions (Iterations aside), because the refinement
// fixpoint is unique and the order-sensitive phases scan groups in
// canonical order under either scheduler.
func FindAbstractionSweep(g *topo.Graph, dest topo.NodeID, opt Options) *Abstraction {
	return findAbstraction(g, dest, opt, true)
}

func findAbstraction(g *topo.Graph, dest topo.NodeID, opt Options, sweep bool) *Abstraction {
	if opt.EdgeKey == nil && opt.EdgeKeys == nil {
		panic("core: Options.EdgeKey or Options.EdgeKeys is required")
	}
	prefs := opt.Prefs
	if prefs == nil {
		prefs = func(topo.NodeID) int { return 1 }
	}

	n := g.NumNodes()
	adj, live := buildAdjacency(g, opt.EdgeKeys, opt.EdgeKey)
	p := usf.New(n)
	eng := &engine{p: p, adj: adj, sc: newSigCtx(adj, p), worklist: !sweep}
	p.Split([]int{int(dest)})
	if eng.worklist {
		for _, id := range p.Groups() {
			eng.markDirty(id)
		}
	}

	groupPrefs := func(members []int) int {
		numPrefs := 1
		for _, x := range members {
			if k := prefs(topo.NodeID(x)); k > numPrefs {
				numPrefs = k
			}
		}
		return numPrefs
	}

	iterations := 0
	colorSplits := 0
	for {
		// Phase 1 (∀∃): refine against abstract neighbor groups and edge
		// policies until nothing splits. Applying the stronger ∀∀ keys
		// before this fixpoint would shatter symmetric nodes that are still
		// mixed with dissimilar ones (Algorithm 1 reaches the same state by
		// re-running Refine to fixpoint).
		iterations += eng.phase1()
		before := p.NumGroups()
		// Phase 2a (∀∀, Algorithm 1 line 19): groups that may use several
		// local preferences must be uniformly adjacent to their neighbor
		// groups (modulo self), since their split copies will interconnect.
		if opt.Mode == ModeBGP {
			eng.phase2a(groupPrefs)
		}
		// Phase 2b (self-loop freedom): an abstract SRP may not contain
		// self loops (§3.1), so a group joined by live internal edges is
		// only valid when BGP case splitting will expand it into
		// interconnected copies. Otherwise divide it so that no two
		// adjacent concrete nodes share an abstract node; greedy coloring
		// keeps the division small.
		colorSplits += eng.phase2b(opt.Mode, groupPrefs)
		if p.NumGroups() == before {
			break
		}
	}

	_, idx := p.Snapshot()
	return Assemble(g, dest, idx, AssembleOptions{
		Mode:        opt.Mode,
		Prefs:       prefs,
		LiveEdges:   live,
		Iterations:  iterations,
		ColorSplits: colorSplits,
	})
}

// engine drives one findAbstraction run: the partition, its signature
// context, and the worklist bookkeeping. With worklist set, a dirty flag per
// group tracks "some member's signature may have changed"; only dirty
// groups are refined, and splits propagate dirtiness to the groups holding
// live neighbors of the moved members. With worklist unset, phase 1 is the
// naive full sweep and the flags stay untouched.
type engine struct {
	p        *usf.Partition
	adj      *adjacency
	sc       *sigCtx
	worklist bool

	dirty   []bool // per group id: members' signatures may have changed
	queue   []int  // dirty group ids awaiting refinement, FIFO
	qhead   int
	created []int   // scratch: groups created by the last split
	canon   []int   // scratch: canonically ordered group ids for phase 2
	colorOK []int32 // per group id: member count at the last no-split coloring
	buckets [][]int // scratch: first-fit color classes
	color   []int32 // per node: color index within the group being colored
}

// markDirty flags a group for (re-)refinement.
func (e *engine) markDirty(id int) {
	if id >= len(e.dirty) {
		e.dirty = append(e.dirty, make([]bool, id+1-len(e.dirty))...)
	}
	if !e.dirty[id] {
		e.dirty[id] = true
		e.queue = append(e.queue, id)
	}
}

// afterSplit updates the worklist after a split moved the members of the
// created groups out of parent. A node's ∀∃ signature reads the group ids of
// its live in/out-neighbors, so exactly the groups holding a neighbor of a
// moved member may have become unstable (adj.nbrs is that neighbor set). A
// pending dirty mark on the parent extends to the created groups: their
// members inherit whatever staleness the parent had accumulated before the
// split, and a flag left on the parent alone would no longer cover them.
func (e *engine) afterSplit(parent int, created []int) {
	if !e.worklist || len(created) == 0 {
		return
	}
	for _, c := range created {
		for _, m := range e.p.Members(c) {
			for _, v := range e.adj.nbrs[m] {
				e.markDirty(e.p.Find(int(v)))
			}
		}
	}
	if parent < len(e.dirty) && e.dirty[parent] {
		for _, c := range created {
			e.markDirty(c)
		}
	}
}

// phase1 refines to the ∀∃ fixpoint and returns the number of refinement
// passes (sweep) or group refinements (worklist) performed.
func (e *engine) phase1() int {
	iter := 0
	if !e.worklist {
		for changed := true; changed; {
			iter++
			changed = false
			// Groups() is append-only; capturing the slice header snapshots
			// the groups existing at the start of the pass.
			groups := e.p.Groups()
			for _, id := range groups {
				if len(e.p.Members(id)) <= 1 {
					continue
				}
				if e.sc.refine(id, false) {
					changed = true
				}
			}
		}
		return iter
	}
	for e.qhead < len(e.queue) {
		id := e.queue[e.qhead]
		e.qhead++
		e.dirty[id] = false
		if len(e.p.Members(id)) <= 1 {
			continue
		}
		iter++
		created, _ := e.sc.refineCollect(id, false, e.created[:0])
		e.created = created
		e.afterSplit(id, created)
	}
	e.queue = e.queue[:0]
	e.qhead = 0
	return iter
}

// canonGroups returns the live multi-member groups ordered by smallest
// member. Phases 2a/2b scan in this canonical order because worklist and
// sweep scheduling create groups in different orders, and a ∀∀ signature
// can depend on splits applied to earlier groups of the same pass — with a
// schedule-independent scan order (and signatures that are invariant under
// group renumbering), both schedulers make identical split decisions.
func (e *engine) canonGroups() []int {
	ids := e.canon[:0]
	for _, id := range e.p.Groups() {
		if len(e.p.Members(id)) > 1 {
			ids = append(ids, id)
		}
	}
	slices.SortFunc(ids, func(a, b int) int {
		return e.p.Members(a)[0] - e.p.Members(b)[0]
	})
	e.canon = ids
	return ids
}

// phase2a applies the ∀∀ strengthening to every preference-diverse group.
func (e *engine) phase2a(groupPrefs func([]int) int) {
	for _, id := range e.canonGroups() {
		members := e.p.Members(id)
		if len(members) <= 1 || groupPrefs(members) <= 1 {
			continue
		}
		created, _ := e.sc.refineCollect(id, true, e.created[:0])
		e.created = created
		e.afterSplit(id, created)
	}
}

// phase2b enforces self-loop freedom and returns how many groups the
// coloring divided.
func (e *engine) phase2b(mode Mode, groupPrefs func([]int) int) int {
	splits := 0
	for _, id := range e.canonGroups() {
		members := e.p.Members(id)
		if len(members) <= 1 {
			continue
		}
		if mode == ModeBGP && groupPrefs(members) > 1 {
			continue // copies of a split group may interconnect
		}
		// Coloring is a function of the member set and the (static) live
		// adjacency alone, and members only ever leave a group — equal size
		// means an identical set, so a group that last colored clean at this
		// size cannot split now.
		if id < len(e.colorOK) && int(e.colorOK[id]) == len(members) {
			continue
		}
		if e.colorSplit(id, members) {
			splits++
		} else {
			if id >= len(e.colorOK) {
				e.colorOK = append(e.colorOK, make([]int32, id+1-len(e.colorOK))...)
			}
			e.colorOK[id] = int32(len(members))
		}
	}
	return splits
}

// colorSplit divides a group so that no two live-adjacent members remain
// together: first-fit coloring in member order (deterministic), then one
// multi-way split keyed by color class. It reports whether the group split.
func (e *engine) colorSplit(id int, members []int) bool {
	buckets := e.buckets[:0]
	for _, u := range members {
		placed := false
		for ci := range buckets {
			ok := true
			for _, v := range buckets[ci] {
				if e.adj.adjacent(u, v) {
					ok = false
					break
				}
			}
			if ok {
				buckets[ci] = append(buckets[ci], u)
				placed = true
				break
			}
		}
		if !placed {
			if len(buckets) < cap(buckets) {
				buckets = buckets[:len(buckets)+1]
				buckets[len(buckets)-1] = append(buckets[len(buckets)-1][:0], u)
			} else {
				buckets = append(buckets, []int{u})
			}
		}
	}
	e.buckets = buckets
	if len(buckets) <= 1 {
		return false
	}
	if e.color == nil {
		e.color = make([]int32, e.p.Len())
	}
	for ci, b := range buckets {
		for _, u := range b {
			e.color[u] = int32(ci)
		}
	}
	created, _ := e.p.RefineCollect(id, func(x int) int64 { return int64(e.color[x]) }, e.created[:0])
	e.created = created
	e.afterSplit(id, created)
	return true
}

// AssembleOptions configures Assemble: the inputs of the post-refinement
// phases of Algorithm 1 (case splitting and abstract-graph construction).
type AssembleOptions struct {
	Mode Mode
	// Prefs returns |prefs(u)| (≥ 1); nil means 1.
	Prefs func(u topo.NodeID) int
	// Live reports whether the directed concrete edge (u, v) can carry the
	// destination (the negation of EdgeKey.Dead).
	Live func(u, v topo.NodeID) bool
	// LiveEdges, when non-nil, supplies the same information aligned with
	// g.Edges() order and takes precedence over Live — the per-edge lookup
	// disappears from the assembly loop.
	LiveEdges []bool
	// Iterations and ColorSplits are recorded on the result.
	Iterations  int
	ColorSplits int
}

// Assemble builds the Abstraction of a finished partition: BGP case
// splitting (§4.3), the abstract graph and the representative-edge table.
// groupOf maps each concrete node to a group id under any numbering; groups
// are re-canonicalised (ordered by smallest member) so that equal partitions
// always assemble to identical Abstractions. FindAbstraction uses it as its
// final step, and the cross-class transport of internal/build uses it to
// rebuild a permuted partition exactly as a fresh compression would.
func Assemble(g *topo.Graph, dest topo.NodeID, groupOf []int, opt AssembleOptions) *Abstraction {
	prefs := opt.Prefs
	if prefs == nil {
		prefs = func(topo.NodeID) int { return 1 }
	}

	// Canonicalise the partition: groups ordered by smallest member,
	// members sorted. Node iteration is in increasing id, so a group's
	// first-seen member is its smallest and group order follows it. Every
	// caller numbers groups densely (usf ids are bounded by 2·n, snapshot
	// and transport indices by n), so the remapping is a slice, member
	// counts are known before any group slice is built, and all members
	// share one exact-size backing array.
	n := len(groupOf)
	maxID := 0
	for _, gid := range groupOf {
		if gid > maxID {
			maxID = gid
		}
	}
	remap := make([]int32, maxID+1)
	for i := range remap {
		remap[i] = -1
	}
	idx := make([]int, n)
	ng := 0
	for u := 0; u < n; u++ {
		gi := remap[groupOf[u]]
		if gi < 0 {
			gi = int32(ng)
			remap[groupOf[u]] = gi
			ng++
		}
		idx[u] = int(gi)
	}
	counts := make([]int32, ng)
	for _, gi := range idx {
		counts[gi]++
	}
	memberBuf := make([]topo.NodeID, n)
	groups := make([][]topo.NodeID, ng)
	off := 0
	for gi := 0; gi < ng; gi++ {
		c := int(counts[gi])
		groups[gi] = memberBuf[off : off : off+c]
		off += c
	}
	for u := 0; u < n; u++ {
		groups[idx[u]] = append(groups[idx[u]], topo.NodeID(u))
	}

	edges := g.Edges()
	live := opt.LiveEdges
	if live == nil {
		live = make([]bool, len(edges))
		for i, e := range edges {
			live[i] = opt.Live(e.U, e.V)
		}
	}

	abs := &Abstraction{
		G:           g,
		Dest:        dest,
		F:           idx,
		Groups:      groups,
		Live:        live,
		Iterations:  opt.Iterations,
		ColorSplits: opt.ColorSplits,
	}

	// BGP case splitting (paper §4.3, Theorem 4.4): each abstract node is
	// duplicated once per possible local-preference value its members can
	// use. The destination is never split.
	splits := make([]int, ng)
	numCopies := 0
	for i, ms := range abs.Groups {
		splits[i] = 1
		if opt.Mode == ModeBGP && abs.F[dest] != i {
			for _, u := range ms {
				if k := prefs(u); k > splits[i] {
					splits[i] = k
				}
			}
			// A solution assigns each concrete node one behavior, so a
			// group never needs more copies than members (and the refined
			// mapping f_r of Theorem 4.5 must be onto the copies).
			if splits[i] > len(ms) {
				splits[i] = len(ms)
			}
		}
		numCopies += splits[i]
	}

	absG := topo.New()
	copyBuf := make([]topo.NodeID, 0, numCopies)
	abs.Copies = make([][]topo.NodeID, ng)
	for i, ms := range abs.Groups {
		rep := g.Name(ms[0])
		start := len(copyBuf)
		for c := 0; c < splits[i]; c++ {
			name := "~" + rep
			if splits[i] > 1 {
				name = fmt.Sprintf("~%s#%d", rep, c)
			}
			copyBuf = append(copyBuf, absG.AddNode(name))
		}
		abs.Copies[i] = copyBuf[start:len(copyBuf):len(copyBuf)]
	}
	abs.AbsDest = abs.Copies[abs.F[dest]][0]

	// Abstract edges: one per pair of groups joined by a live concrete
	// edge, expanded across split copies (copies of the same group connect
	// to each other but never to themselves: SRPs are self-loop-free). The
	// group-pair ids are dense, so representative selection is a sort over
	// packed (pair, edge) words — ascending pair order, and within a pair
	// the first live edge in g.Edges() order, exactly as the map-based
	// grouping used to pick — instead of two maps per assembly.
	type pairRep struct {
		pair uint64
		rep  topo.Edge
	}
	prs := make([]pairRep, 0, len(edges))
	for i, e := range edges {
		if !live[i] {
			continue
		}
		prs = append(prs, pairRep{uint64(uint32(idx[e.U]))<<32 | uint64(uint32(idx[e.V])), e})
	}
	slices.SortStableFunc(prs, func(a, b pairRep) int {
		switch {
		case a.pair < b.pair:
			return -1
		case a.pair > b.pair:
			return 1
		}
		return 0
	})
	// Size RepEdge by distinct group pairs, not live edges: regular
	// networks map tens of thousands of concrete edges onto a handful of
	// abstract ones, and an over-sized map here dominates assembly cost.
	pairs := 0
	for s := 0; s < len(prs); s++ {
		if s == 0 || prs[s].pair != prs[s-1].pair {
			pairs++
		}
	}
	abs.RepEdge = make(map[topo.Edge]topo.Edge, pairs)
	for s := 0; s < len(prs); {
		t := s + 1
		for t < len(prs) && prs[t].pair == prs[s].pair {
			t++
		}
		a, b := int(prs[s].pair>>32), int(uint32(prs[s].pair))
		rep := prs[s].rep
		for _, ca := range abs.Copies[a] {
			for _, cb := range abs.Copies[b] {
				if ca == cb {
					continue
				}
				absG.AddEdge(ca, cb)
				if _, ok := abs.RepEdge[topo.Edge{U: ca, V: cb}]; !ok {
					abs.RepEdge[topo.Edge{U: ca, V: cb}] = rep
				}
			}
		}
		s = t
	}
	abs.AbsG = absG
	return abs
}

// liveEdge is a precomputed neighbor entry: the neighbor node and the
// interned ID of the edge's canonical policy key.
type liveEdge struct {
	nbr topo.NodeID
	tok int32
}

// adjacency holds, per node, the live out- and in-edges with their interned
// policy-key IDs, computed once per destination class, plus the sorted
// live-neighbor lists used by the self-loop-freedom coloring.
type adjacency struct {
	out  [][]liveEdge
	in   [][]liveEdge
	nbrs [][]topo.NodeID // union of live out/in neighbors, sorted, deduped
}

// buildAdjacency derives each edge's canonical key exactly once — from the
// keys vector when supplied, else via the callback — interning distinct keys
// to dense IDs (EdgeKey is comparable, so the refinement loop never renders
// a key). It returns the adjacency plus the liveness vector aligned with
// g.Edges(), which the final Assemble reuses. Per-node lists are carved from
// three exact-size backing arrays sized by a counting pass, so adjacency
// construction performs O(1) slice allocations.
func buildAdjacency(g *topo.Graph, keys []EdgeKey, edgeKey func(u, v topo.NodeID) EdgeKey) (*adjacency, []bool) {
	n := g.NumNodes()
	edges := g.Edges()
	a := &adjacency{
		out:  make([][]liveEdge, n),
		in:   make([][]liveEdge, n),
		nbrs: make([][]topo.NodeID, n),
	}
	live := make([]bool, len(edges))
	toks := make([]int32, len(edges))
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	keyIDs := make(map[EdgeKey]int32, 16)
	nLive := 0
	for i, e := range edges {
		var k EdgeKey
		if keys != nil {
			k = keys[i]
		} else {
			k = edgeKey(e.U, e.V)
		}
		if k.Dead() {
			continue
		}
		live[i] = true
		nLive++
		tok, ok := keyIDs[k]
		if !ok {
			tok = int32(len(keyIDs))
			keyIDs[k] = tok
		}
		toks[i] = tok
		outDeg[e.U]++
		inDeg[e.V]++
	}
	outBuf := make([]liveEdge, nLive)
	inBuf := make([]liveEdge, nLive)
	nbrBuf := make([]topo.NodeID, 2*nLive)
	oo, io, no := 0, 0, 0
	for u := 0; u < n; u++ {
		od, id := int(outDeg[u]), int(inDeg[u])
		a.out[u] = outBuf[oo : oo : oo+od]
		a.in[u] = inBuf[io : io : io+id]
		a.nbrs[u] = nbrBuf[no : no : no+od+id]
		oo += od
		io += id
		no += od + id
	}
	for i, e := range edges {
		if !live[i] {
			continue
		}
		a.out[e.U] = append(a.out[e.U], liveEdge{e.V, toks[i]})
		a.in[e.V] = append(a.in[e.V], liveEdge{e.U, toks[i]})
		a.nbrs[e.U] = append(a.nbrs[e.U], e.V)
		a.nbrs[e.V] = append(a.nbrs[e.V], e.U)
	}
	for i, ns := range a.nbrs {
		slices.Sort(ns)
		a.nbrs[i] = slices.Compact(ns)
	}
	return a, live
}

// adjacent reports whether a live edge joins u and v in either direction.
func (a *adjacency) adjacent(u, v int) bool {
	_, found := slices.BinarySearch(a.nbrs[u], topo.NodeID(v))
	return found
}

// interner assigns dense int32 IDs to uint64 sequences. Its byte buffer is
// reused across calls, and the map[string] lookup with an in-place
// string([]byte) conversion does not allocate on the hit path, so interning
// an already-seen sequence is allocation-free.
type interner struct {
	ids map[string]int32
	buf []byte
}

func newInterner() *interner { return &interner{ids: make(map[string]int32, 64)} }

func (in *interner) intern(words []uint64) int32 {
	buf := in.buf[:0]
	for _, w := range words {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	in.buf = buf
	if id, ok := in.ids[string(buf)]; ok {
		return id
	}
	id := int32(len(in.ids))
	in.ids[string(buf)] = id
	return id
}

// reset forgets all assignments but keeps the allocated capacity.
func (in *interner) reset() { clear(in.ids) }

// pgPair is one ∀∀ scratch entry: the packed (policy key, neighbor group)
// token and the reached neighbor itself.
type pgPair struct {
	pg  uint64
	nbr int32
}

// sigCtx computes refinement signatures as interned integers. Signature IDs
// are only comparable within one Refine call (both interners are reset per
// call), which keeps the tables bounded by the group size instead of growing
// with the number of sweeps.
type sigCtx struct {
	adj   *adjacency
	p     *usf.Partition
	sigs  *interner // sorted token sequences -> signature IDs
	toks  *interner // ∀∀ token payloads -> token IDs
	ws    []uint64  // signature scratch
	tw    []uint64  // token scratch
	pairs []pgPair  // ∀∀ scratch
}

func newSigCtx(adj *adjacency, p *usf.Partition) *sigCtx {
	return &sigCtx{adj: adj, p: p, sigs: newInterner(), toks: newInterner()}
}

// refine runs one signature-refinement pass over group id.
func (sc *sigCtx) refine(id int, forallForall bool) bool {
	sc.sigs.reset()
	sc.toks.reset()
	return sc.p.Refine(id, func(x int) int64 {
		return int64(sc.signature(topo.NodeID(x), forallForall))
	})
}

// refineCollect is refine, collecting the created group ids into the given
// scratch slice for the worklist's split notifications.
func (sc *sigCtx) refineCollect(id int, forallForall bool, created []int) ([]int, bool) {
	sc.sigs.reset()
	sc.toks.reset()
	return sc.p.RefineCollect(id, func(x int) int64 {
		return int64(sc.signature(topo.NodeID(x), forallForall))
	}, created)
}

// packTok encodes one refinement token as a single word: direction (in/out)
// in the top bit, the interned policy-key (or ∀∀ token) ID in bits 32..62
// and the neighbor group in the low 32 bits.
func packTok(in bool, tok int32, group int) uint64 {
	w := uint64(uint32(tok))<<32 | uint64(uint32(group))
	if in {
		w |= 1 << 63
	}
	return w
}

// signature builds the refinement key of node u: the interned, sorted set of
// (edge policy, neighbor group) tokens over its live out- and in-edges.
// Including in-edges guarantees that all concrete edges mapped to one
// abstract edge share a single policy, which transfer-equivalence requires
// of the edge as a whole.
//
// When the group under refinement may use several local preferences
// (forallForall, Algorithm 1 line 19), out-edge tokens additionally record
// whether u reaches *every* member of the neighbor group (the ∀∀ condition,
// group-wise) — and, if not, exactly which members it reaches, so that nodes
// with matching partial adjacency (e.g. fattree aggregation routers of the
// same pod) can still share an abstract node. Those variable-length payloads
// are interned to token IDs first, so every token is one word and the
// signature is a sorted small int slice, never a string.
func (sc *sigCtx) signature(u topo.NodeID, forallForall bool) int32 {
	a, p := sc.adj, sc.p
	ws := sc.ws[:0]
	if forallForall {
		// Group out-edges by (policy key, neighbor group): sort the packed
		// tokens with their reached neighbors so each group is a contiguous
		// run with the reached members ascending — no per-call maps.
		pairs := sc.pairs[:0]
		for _, le := range a.out[u] {
			pairs = append(pairs, pgPair{packTok(false, le.tok, p.Find(int(le.nbr))), int32(le.nbr)})
		}
		slices.SortFunc(pairs, func(x, y pgPair) int {
			switch {
			case x.pg < y.pg:
				return -1
			case x.pg > y.pg:
				return 1
			case x.nbr < y.nbr:
				return -1
			case x.nbr > y.nbr:
				return 1
			}
			return 0
		})
		sc.pairs = pairs
		for s := 0; s < len(pairs); {
			t := s + 1
			for t < len(pairs) && pairs[t].pg == pairs[s].pg {
				t++
			}
			pg := pairs[s].pg
			// Record which members of the neighbor group u does NOT reach,
			// always excluding u itself: nodes whose reach differs only by
			// self-exclusion (the split copies of §4.3 never self-connect)
			// must share a key, while partial adjacency (fattree pods)
			// still separates correctly. Members and the reached run are
			// both sorted, so the missing set is a linear merge.
			tw := append(sc.tw[:0], pg, 0)
			j := s
			for _, m := range p.Members(int(uint32(pg))) {
				if m == int(u) {
					continue
				}
				for j < t && int(pairs[j].nbr) < m {
					j++
				}
				if j < t && int(pairs[j].nbr) == m {
					continue
				}
				tw = append(tw, uint64(m))
			}
			if len(tw) == 2 {
				tw[1] = 1 // reaches the whole group
			}
			sc.tw = tw
			ws = append(ws, packTok(false, sc.toks.intern(tw), 0))
			s = t
		}
	} else {
		for _, le := range a.out[u] {
			ws = append(ws, packTok(false, le.tok, p.Find(int(le.nbr))))
		}
	}
	for _, le := range a.in[u] {
		ws = append(ws, packTok(true, le.tok, p.Find(int(le.nbr))))
	}
	slices.Sort(ws)
	ws = slices.Compact(ws)
	sc.ws = ws
	return sc.sigs.intern(ws)
}
