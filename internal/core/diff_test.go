// Differential property tests for the worklist refinement engine: across
// the generator scenarios and randomized graphs, FindAbstraction (worklist
// scheduling) must return an Abstraction whose every field except the
// diagnostic Iterations counter matches FindAbstractionSweep (the retained
// naive reference scheduler) exactly. This is the guarantee the cross-class
// transport and incremental adoption layers of internal/build lean on: the
// worklist is a scheduling change only, never a partition change.
package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bonsai/internal/bdd"
	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/netgen"
	"bonsai/internal/topo"
)

// requireIdentical compares every scheduling-independent Abstraction field.
func requireIdentical(t *testing.T, tag string, got, want *core.Abstraction) {
	t.Helper()
	if got.Dest != want.Dest || got.AbsDest != want.AbsDest {
		t.Fatalf("%s: dest mismatch: got (%d,%d) want (%d,%d)", tag, got.Dest, got.AbsDest, want.Dest, want.AbsDest)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("%s: groups differ:\n got %v\nwant %v", tag, got.Groups, want.Groups)
	}
	if !reflect.DeepEqual(got.F, want.F) {
		t.Fatalf("%s: topology function differs:\n got %v\nwant %v", tag, got.F, want.F)
	}
	if !reflect.DeepEqual(got.Copies, want.Copies) {
		t.Fatalf("%s: copies differ:\n got %v\nwant %v", tag, got.Copies, want.Copies)
	}
	if !reflect.DeepEqual(got.RepEdge, want.RepEdge) {
		t.Fatalf("%s: representative edges differ:\n got %v\nwant %v", tag, got.RepEdge, want.RepEdge)
	}
	if !reflect.DeepEqual(got.Live, want.Live) {
		t.Fatalf("%s: live-edge vectors differ", tag)
	}
	if got.ColorSplits != want.ColorSplits {
		t.Fatalf("%s: ColorSplits %d != %d", tag, got.ColorSplits, want.ColorSplits)
	}
	if gn, wn := got.AbsG.NumNodes(), want.AbsG.NumNodes(); gn != wn {
		t.Fatalf("%s: abstract node count %d != %d", tag, gn, wn)
	}
	for u := 0; u < got.AbsG.NumNodes(); u++ {
		if got.AbsG.Name(topo.NodeID(u)) != want.AbsG.Name(topo.NodeID(u)) {
			t.Fatalf("%s: abstract node %d named %q, want %q", tag, u,
				got.AbsG.Name(topo.NodeID(u)), want.AbsG.Name(topo.NodeID(u)))
		}
	}
	if !reflect.DeepEqual(got.AbsG.Edges(), want.AbsG.Edges()) {
		t.Fatalf("%s: abstract edges differ:\n got %v\nwant %v", tag, got.AbsG.Edges(), want.AbsG.Edges())
	}
}

// TestWorklistMatchesSweepNetgen runs both schedulers over every destination
// class of each generator scenario, with real compiled edge keys and prefs.
func TestWorklistMatchesSweepNetgen(t *testing.T) {
	nets := []struct {
		name string
		net  *config.Network
	}{
		{"fattree", netgen.Fattree(4, netgen.PolicyShortestPath)},
		{"fattree-prefer-bottom", netgen.Fattree(4, netgen.PolicyPreferBottom)},
		{"ring", netgen.Ring(17)},
		{"mesh", netgen.FullMesh(10)},
		{"datacenter", netgen.Datacenter(netgen.DCOptions{Clusters: 2, LeavesPerClus: 4, Cores: 2, TagGroups: 4})},
		{"wan", netgen.WAN(netgen.WANOptions{Backbone: 4, Sites: 3, SwitchesPerSite: 2})},
	}
	for _, tc := range nets {
		t.Run(tc.name, func(t *testing.T) {
			bd, err := build.New(tc.net)
			if err != nil {
				t.Fatal(err)
			}
			comp := bd.NewCompiler(true)
			mode := core.ModeEffective
			if bd.HasBGP() {
				mode = core.ModeBGP
			}
			classes := bd.Classes()
			if len(classes) > 24 {
				classes = classes[:24]
			}
			for _, cls := range classes {
				dest, ok := bd.G.Lookup(cls.Origins[0])
				if !ok {
					t.Fatalf("class %v: origin %q unknown", cls.Prefix, cls.Origins[0])
				}
				opt := core.Options{
					Mode:     mode,
					EdgeKeys: bd.EdgeKeyVec(comp, cls),
					Prefs:    bd.PrefsFunc(cls),
				}
				got := core.FindAbstraction(bd.G, dest, opt)
				want := core.FindAbstractionSweep(bd.G, dest, opt)
				requireIdentical(t, fmt.Sprintf("%s %v", tc.name, cls.Prefix), got, want)
			}
		})
	}
}

// TestEdgeKeyVecMatchesCallback pins the batch edge-key derivation to the
// per-edge callback it replaced on the hot path: both must yield identical
// keys for every directed edge (adoption still uses the callback form, so
// divergence would silently desynchronise the two).
func TestEdgeKeyVecMatchesCallback(t *testing.T) {
	nets := []*config.Network{
		netgen.Fattree(4, netgen.PolicyPreferBottom),
		netgen.Datacenter(netgen.DCOptions{Clusters: 2, LeavesPerClus: 4, Cores: 2, TagGroups: 4}),
		netgen.WAN(netgen.WANOptions{Backbone: 4, Sites: 3, SwitchesPerSite: 2}),
	}
	for _, net := range nets {
		bd, err := build.New(net)
		if err != nil {
			t.Fatal(err)
		}
		comp := bd.NewCompiler(true)
		classes := bd.Classes()
		if len(classes) > 8 {
			classes = classes[:8]
		}
		for _, cls := range classes {
			vec := bd.EdgeKeyVec(comp, cls)
			keyFn := bd.EdgeKeyFunc(comp, cls)
			for i, e := range bd.G.Edges() {
				if vec[i] != keyFn(e.U, e.V) {
					t.Fatalf("%s %v: edge %v: vec key %+v != callback key %+v",
						net.Name, cls.Prefix, e, vec[i], keyFn(e.U, e.V))
				}
			}
		}
	}
}

// randomEdgeKey draws a key from a small pool so that refinement sees
// repeated policies, dead edges and ACL denials.
func randomEdgeKey(rng *rand.Rand) core.EdgeKey {
	if rng.Intn(6) == 0 {
		return core.EdgeKey{} // dead
	}
	k := core.EdgeKey{ACLPermit: rng.Intn(8) != 0}
	switch rng.Intn(3) {
	case 0:
		k.BGP = true
		k.BGPRel = bdd.Node(1 + rng.Intn(3))
		k.IBGP = rng.Intn(4) == 0
	case 1:
		k.OSPF = true
		k.OSPFCost = 1 + rng.Intn(2)
		k.OSPFCross = rng.Intn(5) == 0
	default:
		k.Static = rng.Intn(2) == 0
		if !k.Static {
			k.BGP = true
			k.BGPRel = 1
		}
	}
	return k
}

// TestWorklistMatchesSweepRandom fuzzes both schedulers over random graphs
// with random EdgeKey assignments and random prefs, in both modes.
func TestWorklistMatchesSweepRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	for trial := 0; trial < 80; trial++ {
		n := 5 + rng.Intn(36)
		g := topo.New()
		ids := make([]topo.NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(fmt.Sprintf("n%02d", i))
		}
		// Random spanning tree plus extra links keeps most nodes reachable.
		for i := 1; i < n; i++ {
			g.AddLink(ids[i], ids[rng.Intn(i)])
		}
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddLink(ids[a], ids[b])
			}
		}
		keys := make(map[topo.Edge]core.EdgeKey, g.NumEdges())
		for _, e := range g.Edges() {
			keys[e] = randomEdgeKey(rng)
		}
		prefs := make([]int, n)
		for i := range prefs {
			prefs[i] = 1 + rng.Intn(3)*rng.Intn(2) // mostly 1, some 2 and 3
		}
		dest := ids[rng.Intn(n)]
		for _, mode := range []core.Mode{core.ModeEffective, core.ModeBGP} {
			opt := core.Options{
				Mode:    mode,
				EdgeKey: func(u, v topo.NodeID) core.EdgeKey { return keys[topo.Edge{U: u, V: v}] },
				Prefs:   func(u topo.NodeID) int { return prefs[u] },
			}
			got := core.FindAbstraction(g, dest, opt)
			want := core.FindAbstractionSweep(g, dest, opt)
			requireIdentical(t, fmt.Sprintf("trial %d mode %d (n=%d dest=%d)", trial, mode, n, dest), got, want)
		}
	}
}
