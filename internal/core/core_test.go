package core

import (
	"testing"

	"bonsai/internal/topo"
)

// uniformKey gives every edge the same live BGP policy.
func uniformKey(u, v topo.NodeID) EdgeKey {
	return EdgeKey{BGP: true, BGPRel: 42, ACLPermit: true}
}

func TestRingCompression(t *testing.T) {
	// A ring of n nodes compresses to n/2 + 1 abstract nodes: the
	// destination, one group per distance pair {i, n-i}, and the antipode
	// (paper Table 1a, Ring).
	for _, n := range []int{8, 10, 20} {
		g := topo.New()
		ids := make([]topo.NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode(string(rune('A'+i/26)) + string(rune('a'+i%26)))
		}
		for i := 0; i < n; i++ {
			g.AddLink(ids[i], ids[(i+1)%n])
		}
		abs := FindAbstraction(g, ids[0], Options{Mode: ModeEffective, EdgeKey: uniformKey})
		want := n/2 + 1
		if got := abs.NumAbstractNodes(); got != want {
			t.Fatalf("ring %d: abstract nodes = %d, want %d", n, got, want)
		}
		if got := abs.NumAbstractEdges(); got != want-1 {
			t.Fatalf("ring %d: abstract links = %d, want %d (a path)", n, got, want-1)
		}
		// Distance symmetry: nodes i and n-i share a group.
		for i := 1; i < n/2; i++ {
			if abs.F[ids[i]] != abs.F[ids[n-i]] {
				t.Fatalf("ring %d: %d and %d not grouped", n, i, n-i)
			}
		}
	}
}

func TestMeshCompression(t *testing.T) {
	// A full mesh where only edges touching the destination are live (the
	// paper's per-destination prefix filters) compresses to 2 nodes and 1
	// link (Table 1a, Full Mesh).
	n := 10
	g := topo.New()
	ids := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddLink(ids[i], ids[j])
		}
	}
	dest := ids[0]
	key := func(u, v topo.NodeID) EdgeKey {
		if u == dest || v == dest {
			return EdgeKey{BGP: true, BGPRel: 1, ACLPermit: true}
		}
		return EdgeKey{} // dead: transit filtered
	}
	abs := FindAbstraction(g, dest, Options{Mode: ModeEffective, EdgeKey: key})
	if abs.NumAbstractNodes() != 2 {
		t.Fatalf("mesh: abstract nodes = %d, want 2", abs.NumAbstractNodes())
	}
	if abs.NumAbstractEdges() != 1 {
		t.Fatalf("mesh: abstract links = %d, want 1", abs.NumAbstractEdges())
	}
}

func TestStarHeterogeneousPolicies(t *testing.T) {
	// Hub with two classes of leaves distinguished only by edge policy:
	// refinement must separate them.
	g := topo.New()
	hub := g.AddNode("hub")
	var leavesA, leavesB []topo.NodeID
	for i := 0; i < 3; i++ {
		a := g.AddNode("a" + string(rune('0'+i)))
		b := g.AddNode("b" + string(rune('0'+i)))
		g.AddLink(hub, a)
		g.AddLink(hub, b)
		leavesA = append(leavesA, a)
		leavesB = append(leavesB, b)
	}
	key := func(u, v topo.NodeID) EdgeKey {
		name := g.Name(u)
		if u == hub {
			name = g.Name(v)
		}
		if name[0] == 'a' {
			return EdgeKey{BGP: true, BGPRel: 1, ACLPermit: true}
		}
		return EdgeKey{BGP: true, BGPRel: 2, ACLPermit: true}
	}
	abs := FindAbstraction(g, hub, Options{Mode: ModeEffective, EdgeKey: key})
	// Groups: {hub}, {a leaves}, {b leaves}.
	if len(abs.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(abs.Groups))
	}
	if abs.F[leavesA[0]] != abs.F[leavesA[2]] || abs.F[leavesA[0]] == abs.F[leavesB[0]] {
		t.Fatal("policy classes not separated")
	}
}

func TestFattreeLikeRoles(t *testing.T) {
	// Two-pod toy fattree: dest edge router, its pod's aggs, cores, other
	// pod's aggs, other pod's edge routers, plus sibling edge router in the
	// dest pod -> 6 roles, matching the paper's fattree result.
	g := topo.New()
	core1, core2 := g.AddNode("c1"), g.AddNode("c2")
	aggs := [][]topo.NodeID{}
	edges := [][]topo.NodeID{}
	for p := 0; p < 2; p++ {
		a1 := g.AddNode("agg" + string(rune('0'+p)) + "a")
		a2 := g.AddNode("agg" + string(rune('0'+p)) + "b")
		e1 := g.AddNode("edge" + string(rune('0'+p)) + "a")
		e2 := g.AddNode("edge" + string(rune('0'+p)) + "b")
		for _, a := range []topo.NodeID{a1, a2} {
			g.AddLink(a, core1)
			g.AddLink(a, core2)
			g.AddLink(a, e1)
			g.AddLink(a, e2)
		}
		aggs = append(aggs, []topo.NodeID{a1, a2})
		edges = append(edges, []topo.NodeID{e1, e2})
	}
	dest := edges[0][0]
	abs := FindAbstraction(g, dest, Options{Mode: ModeEffective, EdgeKey: uniformKey})
	if got := abs.NumAbstractNodes(); got != 6 {
		t.Fatalf("fattree roles = %d, want 6", got)
	}
	if abs.F[aggs[0][0]] != abs.F[aggs[0][1]] {
		t.Fatal("same-pod aggs split")
	}
	if abs.F[aggs[0][0]] == abs.F[aggs[1][0]] {
		t.Fatal("dest-pod and remote aggs merged")
	}
	if abs.F[core1] != abs.F[core2] {
		t.Fatal("cores split")
	}
	if abs.F[edges[0][1]] == abs.F[edges[1][0]] {
		t.Fatal("sibling edge and remote edge merged")
	}
	if got := abs.NumAbstractEdges(); got != 5 {
		t.Fatalf("fattree abstract links = %d, want 5", got)
	}
}

func TestBGPGadgetSplitting(t *testing.T) {
	// Figure 2/3: b1,b2,b3 fully meshed, all linked to a (above) and d
	// (below), with two possible local preferences -> the b group stays
	// together and splits into 2 copies; final abstraction has 4 nodes.
	g := topo.New()
	a := g.AddNode("a")
	b1, b2, b3 := g.AddNode("b1"), g.AddNode("b2"), g.AddNode("b3")
	d := g.AddNode("d")
	for _, b := range []topo.NodeID{b1, b2, b3} {
		g.AddLink(a, b)
		g.AddLink(b, d)
	}
	g.AddLink(b1, b2)
	g.AddLink(b2, b3)
	g.AddLink(b1, b3)
	prefs := func(u topo.NodeID) int {
		if u == b1 || u == b2 || u == b3 {
			return 2
		}
		return 1
	}
	abs := FindAbstraction(g, d, Options{Mode: ModeBGP, EdgeKey: uniformKey, Prefs: prefs})
	// Groups: {d}, {a}, {b1,b2,b3}.
	if len(abs.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(abs.Groups))
	}
	if abs.F[b1] != abs.F[b2] || abs.F[b2] != abs.F[b3] {
		t.Fatal("b nodes should remain one group under group-wise forall-forall")
	}
	// 4 abstract nodes after splitting the b group in two.
	if got := abs.NumAbstractNodes(); got != 4 {
		t.Fatalf("abstract nodes = %d, want 4", got)
	}
	bGroup := abs.F[b1]
	if len(abs.Copies[bGroup]) != 2 {
		t.Fatalf("b copies = %d, want 2", len(abs.Copies[bGroup]))
	}
	// The two b copies are connected to each other, to a and to d.
	c0, c1 := abs.Copies[bGroup][0], abs.Copies[bGroup][1]
	if !abs.AbsG.HasEdge(c0, c1) || !abs.AbsG.HasEdge(c1, c0) {
		t.Fatal("split copies must interconnect")
	}
	if !abs.AbsG.HasEdge(c0, abs.AbsDest) {
		t.Fatal("b copy lost its edge to the destination")
	}
}

func TestModeEffectiveIgnoresPrefs(t *testing.T) {
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, d)
	g.AddLink(b, d)
	prefs := func(topo.NodeID) int { return 3 }
	abs := FindAbstraction(g, d, Options{Mode: ModeEffective, EdgeKey: uniformKey, Prefs: prefs})
	if abs.NumAbstractNodes() != 2 {
		t.Fatalf("effective mode must not split cases: %d nodes", abs.NumAbstractNodes())
	}
}

func TestDestIsAlone(t *testing.T) {
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, d)
	g.AddLink(b, d)
	g.AddLink(a, b)
	abs := FindAbstraction(g, d, Options{Mode: ModeEffective, EdgeKey: uniformKey})
	if len(abs.Groups[abs.F[d]]) != 1 {
		t.Fatal("destination must be its own abstract node (dest-equivalence)")
	}
	if abs.FAbs(d) != abs.AbsDest {
		t.Fatal("AbsDest inconsistent with FAbs")
	}
}

func TestRepEdgeConsistency(t *testing.T) {
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, d)
	g.AddLink(b, d)
	abs := FindAbstraction(g, d, Options{Mode: ModeEffective, EdgeKey: uniformKey})
	for _, e := range abs.AbsG.Edges() {
		rep, ok := abs.RepEdge[e]
		if !ok {
			t.Fatalf("abstract edge %v has no representative", e)
		}
		if abs.FAbs(rep.U) != e.U || abs.FAbs(rep.V) != e.V {
			t.Fatalf("representative %v does not map to %v", rep, e)
		}
	}
}

func TestDeadEdgesExcluded(t *testing.T) {
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, d)
	g.AddLink(b, d)
	g.AddLink(a, b)
	key := func(u, v topo.NodeID) EdgeKey {
		if (u == a && v == b) || (u == b && v == a) {
			return EdgeKey{} // dead
		}
		return EdgeKey{Static: true}
	}
	abs := FindAbstraction(g, d, Options{Mode: ModeEffective, EdgeKey: key})
	if abs.NumAbstractNodes() != 2 || abs.NumAbstractEdges() != 1 {
		t.Fatalf("dead edge leaked: %d nodes, %d links",
			abs.NumAbstractNodes(), abs.NumAbstractEdges())
	}
}
