package abstraction

import (
	"context"
	"testing"

	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/netgen"
	"bonsai/internal/topo"
)

func uniformKey(u, v topo.NodeID) core.EdgeKey {
	return core.EdgeKey{BGP: true, BGPRel: 7, ACLPermit: true}
}

func ringAbs(t *testing.T, n int) (*core.Abstraction, func(u, v topo.NodeID) core.EdgeKey) {
	t.Helper()
	g := topo.New()
	ids := make([]topo.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(string(rune('a'+i/26)) + string(rune('a'+i%26)))
	}
	for i := range ids {
		g.AddLink(ids[i], ids[(i+1)%n])
	}
	abs := core.FindAbstraction(g, ids[0], core.Options{Mode: core.ModeEffective, EdgeKey: uniformKey})
	return abs, uniformKey
}

func TestRingSatisfiesConditions(t *testing.T) {
	abs, key := ringAbs(t, 12)
	c := &Checker{Abs: abs, EdgeKey: key}
	if err := c.CheckAll(core.ModeEffective, nil); err != nil {
		t.Fatal(err)
	}
	if internal := c.CheckSelfLoopFreedom(); len(internal) != 0 {
		t.Fatalf("ring groups should never be internally adjacent: %v", internal)
	}
}

func TestGeneratedNetworksSatisfyConditions(t *testing.T) {
	nets := map[string]*config.Network{
		"fattree": netgen.Fattree(4, netgen.PolicyShortestPath),
		"mesh":    netgen.FullMesh(6),
		"dc": netgen.Datacenter(netgen.DCOptions{
			Clusters: 2, SpinesPerClus: 2, LeavesPerClus: 3, Cores: 2, Borders: 1,
			PrefixesPerLeaf: 2, VirtualIfaces: 2, StaticPatterns: 3, TagGroups: 3,
		}),
		"wan": netgen.WAN(netgen.WANOptions{Backbone: 4, Sites: 3, SwitchesPerSite: 2}),
		"spineleaf": netgen.SpineLeaf(netgen.SpineLeafOptions{
			Spines: 2, Leaves: 3, ExtPerLeaf: 2, PrefixesPerExt: 2,
		}),
	}
	for name, net := range nets {
		b, err := build.New(net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		comp := b.NewCompiler(true)
		for _, cls := range b.Classes() {
			abs, err := b.Compress(context.Background(), comp, cls)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			key := b.EdgeKeyFunc(comp, cls)
			prefsFn := b.PrefsFunc(cls)
			multiPref := make(map[int]bool)
			for gi, ms := range abs.Groups {
				for _, u := range ms {
					if prefsFn(u) > 1 {
						multiPref[gi] = true
					}
				}
			}
			mode := core.ModeEffective
			if b.HasBGP() {
				mode = core.ModeBGP
			}
			c := &Checker{Abs: abs, EdgeKey: key}
			if err := c.CheckAll(mode, multiPref); err != nil {
				t.Fatalf("%s class %v: %v", name, cls.Prefix, err)
			}
		}
	}
}

func TestDetectsBrokenDestEquivalence(t *testing.T) {
	abs, key := ringAbs(t, 8)
	// Sabotage: merge the destination's group record with another member.
	abs.Groups[abs.F[abs.Dest]] = append(abs.Groups[abs.F[abs.Dest]], topo.NodeID(1))
	c := &Checker{Abs: abs, EdgeKey: key}
	if err := c.CheckDestEquivalence(); err == nil {
		t.Fatal("corrupted destination group not detected")
	}
}

func TestDetectsBrokenForallExists(t *testing.T) {
	// Merge two groups that have different neighbor structure: a chain
	// d - a - b with {a, b} forced into one group violates ∀∃ (b has no
	// edge to d's group).
	g := topo.New()
	d, a, b := g.AddNode("d"), g.AddNode("a"), g.AddNode("b")
	g.AddLink(d, a)
	g.AddLink(a, b)
	abs := core.FindAbstraction(g, d, core.Options{Mode: core.ModeEffective, EdgeKey: uniformKey})
	// The algorithm correctly separates a and b; force them together.
	if abs.F[a] == abs.F[b] {
		t.Fatal("test premise broken")
	}
	abs.F[b] = abs.F[a]
	abs.Groups = [][]topo.NodeID{{d}, {a, b}}
	abs.F = []int{0, 1, 1}
	abs.Copies = [][]topo.NodeID{{abs.AbsDest}, {abs.AbsDest + 1}}
	c := &Checker{Abs: abs, EdgeKey: uniformKey}
	if err := c.CheckForallExists(); err == nil {
		t.Fatal("∀∃ violation not detected")
	}
}

func TestDetectsTransferInequivalence(t *testing.T) {
	// Two parallel middle nodes with different policies, manually merged.
	g := topo.New()
	d, m1, m2, a := g.AddNode("d"), g.AddNode("m1"), g.AddNode("m2"), g.AddNode("a")
	g.AddLink(d, m1)
	g.AddLink(d, m2)
	g.AddLink(m1, a)
	g.AddLink(m2, a)
	key := func(u, v topo.NodeID) core.EdgeKey {
		k := core.EdgeKey{BGP: true, BGPRel: 7, ACLPermit: true}
		if u == m2 || v == m2 {
			k.BGPRel = 8
		}
		return k
	}
	abs := core.FindAbstraction(g, d, core.Options{Mode: core.ModeEffective, EdgeKey: key})
	if abs.F[m1] == abs.F[m2] {
		t.Fatal("algorithm should have split m1/m2")
	}
	// Force-merge them and expect the checker to object.
	gi := abs.F[m1]
	abs.F[m2] = gi
	abs.Groups = [][]topo.NodeID{{d}, {m1, m2}, {a}}
	abs.F = []int{0, 1, 1, 2}
	c := &Checker{Abs: abs, EdgeKey: key}
	if err := c.CheckTransferEquivalence(); err == nil {
		t.Fatal("transfer inequivalence not detected")
	}
}

func TestSelfLoopReporting(t *testing.T) {
	// Triangle with the destination: the two non-dest nodes are adjacent
	// and symmetric, so they merge with an internal live edge.
	g := topo.New()
	d, x, y := g.AddNode("d"), g.AddNode("x"), g.AddNode("y")
	g.AddLink(d, x)
	g.AddLink(d, y)
	g.AddLink(x, y)
	abs := core.FindAbstraction(g, d, core.Options{Mode: core.ModeEffective, EdgeKey: uniformKey})
	c := &Checker{Abs: abs, EdgeKey: uniformKey}
	if abs.F[x] == abs.F[y] {
		if internal := c.CheckSelfLoopFreedom(); len(internal) == 0 {
			t.Fatal("internal adjacency not reported")
		}
	}
}
