// Package abstraction checks the effective-abstraction conditions of paper
// §4 (Figure 4) on a computed abstraction: dest-equivalence, the ∀∃ and ∀∀
// topology conditions, and transfer-equivalence of edges mapped together.
// The compression algorithm in internal/core constructs abstractions that
// satisfy these by construction; this package provides the independent
// validator used in tests, examples and ablations — the paper's point is
// precisely that these local conditions are efficiently checkable and imply
// the global CP-equivalence property.
package abstraction

import (
	"fmt"

	"bonsai/internal/core"
	"bonsai/internal/topo"
)

// Checker validates one abstraction against its concrete network.
type Checker struct {
	Abs *core.Abstraction
	// EdgeKey gives the canonical policy signature of concrete edges.
	EdgeKey func(u, v topo.NodeID) core.EdgeKey
}

// CheckDestEquivalence verifies that the destination, and only the
// destination, maps to the abstract destination (Figure 4,
// dest-equivalence).
func (c *Checker) CheckDestEquivalence() error {
	a := c.Abs
	dg := a.F[a.Dest]
	if len(a.Groups[dg]) != 1 {
		return fmt.Errorf("abstraction: destination group has %d members", len(a.Groups[dg]))
	}
	if a.Copies[dg][0] != a.AbsDest || len(a.Copies[dg]) != 1 {
		return fmt.Errorf("abstraction: destination group split or mislabelled")
	}
	return nil
}

// CheckForallExists verifies the two ∀∃-abstraction conditions: every live
// concrete edge has an abstract counterpart, and for every abstract edge,
// every member of the source group has a live edge into the target group.
func (c *Checker) CheckForallExists() error {
	a := c.Abs
	// Condition 1: concrete edges map to abstract edges.
	for _, e := range a.G.Edges() {
		if c.EdgeKey(e.U, e.V).Dead() {
			continue
		}
		found := false
		for _, cu := range a.Copies[a.F[e.U]] {
			for _, cv := range a.Copies[a.F[e.V]] {
				if a.AbsG.HasEdge(cu, cv) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return fmt.Errorf("abstraction: live edge %s->%s has no abstract counterpart",
				a.G.Name(e.U), a.G.Name(e.V))
		}
	}
	// Condition 2: per abstract edge, ∀u ∃v.
	for _, ge := range c.liveGroupEdges() {
		for _, u := range a.Groups[ge.src] {
			ok := false
			for _, v := range a.G.Succ(u) {
				if a.F[v] == ge.dst && !c.EdgeKey(u, v).Dead() {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("abstraction: %s has no live edge into group %d despite abstract edge",
					a.G.Name(u), ge.dst)
			}
		}
	}
	return nil
}

// CheckForallForall verifies the stronger ∀∀-abstraction condition required
// by BGP-effective abstractions (Figure 4) for the listed groups: every
// member of the source group has a live edge to every member of the target
// group (excluding itself). Groups not listed are skipped — the paper only
// needs ∀∀ around nodes with multiple local-preference behaviors.
func (c *Checker) CheckForallForall(groups map[int]bool) error {
	a := c.Abs
	for _, ge := range c.liveGroupEdges() {
		if !groups[ge.src] && !groups[ge.dst] {
			continue
		}
		for _, u := range a.Groups[ge.src] {
			for _, v := range a.Groups[ge.dst] {
				if u == v {
					continue
				}
				if !a.G.HasEdge(u, v) || c.EdgeKey(u, v).Dead() {
					return fmt.Errorf("abstraction: ∀∀ violated: %s has no live edge to %s",
						a.G.Name(u), a.G.Name(v))
				}
			}
		}
	}
	return nil
}

// CheckTransferEquivalence verifies that all concrete edges mapped to one
// abstract edge share a single canonical transfer signature, so that the
// abstract edge's behavior is well defined (Figure 4, trans-equivalence; for
// BGP the BDD relation already excludes the loop-prevention check, making
// this transfer-approx).
func (c *Checker) CheckTransferEquivalence() error {
	a := c.Abs
	type ge struct{ src, dst int }
	seen := make(map[ge]core.EdgeKey)
	for _, e := range a.G.Edges() {
		k := c.EdgeKey(e.U, e.V)
		if k.Dead() {
			continue
		}
		g := ge{a.F[e.U], a.F[e.V]}
		if prev, ok := seen[g]; ok {
			if prev != k {
				return fmt.Errorf("abstraction: edges into group pair (%d,%d) have different transfer functions: %+v vs %+v",
					g.src, g.dst, prev, k)
			}
		} else {
			seen[g] = k
		}
	}
	return nil
}

// CheckSelfLoopFreedom verifies that live concrete edges inside one group
// only occur when the group is split into multiple copies, since abstract
// SRPs must remain self-loop-free (paper §3.1) while split copies may
// legitimately interconnect (§4.3). Unsplit internal adjacency is sound
// only when the transfer function strictly worsens attributes; the checker
// reports it so callers can decide.
func (c *Checker) CheckSelfLoopFreedom() []topo.Edge {
	a := c.Abs
	var internal []topo.Edge
	for _, e := range a.G.Edges() {
		if c.EdgeKey(e.U, e.V).Dead() {
			continue
		}
		if a.F[e.U] == a.F[e.V] && len(a.Copies[a.F[e.U]]) == 1 {
			internal = append(internal, e)
		}
	}
	return internal
}

// CheckAll runs every condition appropriate for the mode and returns the
// first violation.
func (c *Checker) CheckAll(mode core.Mode, multiPrefGroups map[int]bool) error {
	if err := c.CheckDestEquivalence(); err != nil {
		return err
	}
	if err := c.CheckForallExists(); err != nil {
		return err
	}
	if err := c.CheckTransferEquivalence(); err != nil {
		return err
	}
	if mode == core.ModeBGP {
		if err := c.CheckForallForall(multiPrefGroups); err != nil {
			return err
		}
	}
	return nil
}

type groupEdge struct{ src, dst int }

// liveGroupEdges returns the group pairs joined by at least one live edge.
func (c *Checker) liveGroupEdges() []groupEdge {
	a := c.Abs
	seen := make(map[groupEdge]bool)
	var out []groupEdge
	for _, e := range a.G.Edges() {
		if c.EdgeKey(e.U, e.V).Dead() {
			continue
		}
		ge := groupEdge{a.F[e.U], a.F[e.V]}
		if !seen[ge] {
			seen[ge] = true
			out = append(out, ge)
		}
	}
	return out
}
