package sched

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func seqOf(n int) iter.Seq[int] {
	return func(yield func(int) bool) {
		for i := 0; i < n; i++ {
			if !yield(i) {
				return
			}
		}
	}
}

func TestRunExecutesEveryItem(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var mu sync.Mutex
		var got []int
		st, err := Run(context.Background(), seqOf(100), Options{Shards: shards}, nil,
			func(_ int, item int) error {
				mu.Lock()
				got = append(got, item)
				mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		slices.Sort(got)
		if len(got) != 100 || got[0] != 0 || got[99] != 99 {
			t.Fatalf("shards=%d: ran %d items", shards, len(got))
		}
		if st.Items != 100 || st.Groups != 100 || st.Followers != 0 {
			t.Fatalf("shards=%d: stats %+v", shards, st)
		}
	}
}

// TestLeaderRunsBeforeFollowers is the single-flight ordering property: for
// every group, the leader's do call must have completed before any
// follower's begins, and exactly one item per group is the leader.
func TestLeaderRunsBeforeFollowers(t *testing.T) {
	const groups, per = 7, 9
	var mu sync.Mutex
	leaderDone := make(map[string]bool)
	firstPerGroup := make(map[string]int)
	items := func(yield func(int) bool) {
		for i := 0; i < groups*per; i++ {
			if !yield(i) {
				return
			}
		}
	}
	key := func(i int) string { return fmt.Sprintf("g%d", i%groups) }
	st, err := Run(context.Background(), items, Options{Shards: 4}, key,
		func(_ int, item int) error {
			k := key(item)
			mu.Lock()
			if !leaderDone[k] {
				// We must be the group's leader: no other item of the group
				// may run concurrently with or before us.
				if n, ok := firstPerGroup[k]; ok {
					mu.Unlock()
					return fmt.Errorf("two leaders for %s: %d and %d", k, n, item)
				}
				firstPerGroup[k] = item
				mu.Unlock()
				time.Sleep(time.Millisecond) // widen the race window
				mu.Lock()
				leaderDone[k] = true
			}
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != groups || st.Items != groups*per {
		t.Fatalf("stats %+v", st)
	}
	if st.Followers == 0 {
		t.Fatal("no followers parked; grouping inert")
	}
}

func TestErrorStopsRun(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(context.Background(), seqOf(1000), Options{Shards: 4}, nil,
		func(_ int, item int) error {
			if ran.Add(1) == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("error did not stop the run (%d items ran)", n)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Run(ctx, seqOf(10000), Options{Shards: 2}, nil,
		func(_ int, item int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatal("cancellation did not stop the run")
	}
}

// TestLeaderErrorDrainsFollowers: a failing leader must not deadlock its
// parked followers — the run terminates and reports the leader's error.
func TestLeaderErrorDrainsFollowers(t *testing.T) {
	boom := errors.New("leader failed")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(context.Background(), seqOf(50), Options{Shards: 2},
			func(i int) string { return "all-one-group" },
			func(_ int, item int) error { return boom })
		if !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run deadlocked on parked followers")
	}
}

// TestStealing: a deliberately skewed dispatch (everything grouped onto few
// leaders completing on one shard) must still use all workers via steals.
func TestStealing(t *testing.T) {
	var workers sync.Map
	st, err := Run(context.Background(), seqOf(64), Options{Shards: 4}, nil,
		func(w int, item int) error {
			workers.Store(w, true)
			time.Sleep(200 * time.Microsecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	workers.Range(func(_, _ any) bool { n++; return true })
	if n < 2 {
		t.Skipf("only %d workers ran (single-CPU scheduling); steals=%d", n, st.Steals)
	}
}

// TestFollowersAfterDoneDispatchImmediately: items of a group arriving after
// the leader completed must not park forever.
func TestFollowersAfterDoneDispatchImmediately(t *testing.T) {
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	seq := func(yield func(int) bool) {
		if !yield(0) { // leader
			return
		}
		<-release // leader has certainly completed
		for i := 1; i < 10; i++ {
			if !yield(i) {
				return
			}
		}
	}
	st, err := Run(context.Background(), seq, Options{Shards: 2},
		func(int) string { return "g" },
		func(_ int, item int) error {
			if first.CompareAndSwap(true, false) {
				close(release)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 10 || st.Groups != 1 || st.Followers != 9 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDispatchBackpressure: with workers blocked, the dispatcher must stop
// consuming the sequence once the in-flight bound is reached — the
// bounded-memory property of streaming dispatch.
func TestDispatchBackpressure(t *testing.T) {
	const shards = 2
	release := make(chan struct{})
	var yielded atomic.Int64
	seq := func(yield func(int) bool) {
		for i := 0; i < 100000; i++ {
			if !yield(i) {
				return
			}
			yielded.Add(1)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(context.Background(), seq, Options{Shards: shards}, nil,
			func(_ int, item int) error {
				<-release
				return nil
			})
		if err != nil {
			t.Error(err)
		}
	}()
	// Give the dispatcher ample time to run ahead if it were unbounded.
	time.Sleep(100 * time.Millisecond)
	if n := yielded.Load(); n > 8*shards+shards {
		t.Errorf("dispatcher ran ahead: %d items consumed while workers blocked", n)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish after release")
	}
	if n := yielded.Load(); n != 100000 {
		t.Fatalf("consumed %d items", n)
	}
}

func TestPanicContainedAsError(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Run(context.Background(), seqOf(50), Options{Shards: shards}, nil,
			func(_ int, item int) error {
				if item == 7 {
					panic("poisoned item")
				}
				ran.Add(1)
				return nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("shards=%d: err = %v, want *PanicError", shards, err)
		}
		if pe.Item != "7" || pe.Value != "poisoned item" || len(pe.Stack) == 0 {
			t.Fatalf("shards=%d: panic error = item %q value %v stack %d bytes", shards, pe.Item, pe.Value, len(pe.Stack))
		}
		// The scheduler drained and stays healthy: a fresh run over the
		// same shard count completes cleanly.
		ran.Store(0)
		if _, err := Run(context.Background(), seqOf(50), Options{Shards: shards}, nil,
			func(_ int, item int) error { ran.Add(1); return nil }); err != nil {
			t.Fatalf("shards=%d: run after contained panic: %v", shards, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("shards=%d: %d of 50 items ran after contained panic", shards, ran.Load())
		}
	}
}

func TestLeaderPanicReleasesFollowers(t *testing.T) {
	// A panicking leader must still flush its parked followers so the run
	// terminates (they drain unexecuted once the error stops the run).
	key := func(int) string { return "same-group" }
	_, err := Run(context.Background(), seqOf(20), Options{Shards: 2}, key,
		func(_ int, item int) error { panic(fmt.Sprintf("leader %d", item)) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}
