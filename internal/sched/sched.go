// Package sched is the sharded scheduler of the streaming compression
// pipeline. It fans work items out over per-worker deques with
// work-stealing (each worker pops its own deque newest-first and steals
// oldest-first from the others), and — its reason to exist over a plain
// worker pool — understands *fingerprint groups*: items sharing a group key
// are known in advance to reduce to the same computation, so only the first
// item of a group (its leader) is scheduled immediately, and the rest wait
// parked off-queue until the leader completes. Followers then run on the
// warm result (an identity cache hit in the compression pipeline) without
// ever occupying a worker while the leader is still computing.
//
// Before this package, that ordering was accidental: the fan-out in
// internal/verify dispatched every class immediately and duplicate-
// fingerprint classes simply blocked on the Builder's single-flight slot,
// holding a worker (and its policy compiler) hostage for the leader's whole
// refinement run. Here the ordering is deliberate: a group's followers
// consume no worker until their result is already cached, so workers stay
// busy with classes that still need computing. Run never executes two
// leaders of one group, which the Builder's DuplicateFresh statistic
// (asserted zero in the tests) makes observable.
//
// Items are consumed from an iter.Seq, so the caller can stream them (e.g.
// from the prefix-trie walk of internal/ec) without materializing a slice;
// dispatch happens on the calling goroutine and blocks once the in-flight
// count (queued tasks plus parked followers) reaches a small per-shard
// bound, so memory stays O(shards) however long the sequence is — the
// backpressure the pipeline's bounded-memory claim rests on.
package sched

import (
	"context"
	"fmt"
	"iter"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"bonsai/internal/faultinject"
)

// PanicError is the error a Run returns when a task panicked: the worker
// recovers, captures the item and stack, and fails the run like any task
// error — the process survives, the scheduler drains and stays usable for
// subsequent runs.
type PanicError struct {
	// Item renders the panicking work item (for compression tasks, the
	// class); Value is the recovered panic value.
	Item  string
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %s panicked: %v\n%s", e.Item, e.Value, e.Stack)
}

// Protect runs do(worker, item), converting a panic into a *PanicError and
// firing the sched.task fault-injection seam. Exported so serial fallback
// paths that bypass the scheduler (e.g. single-worker verification) get the
// same containment contract.
func Protect[T any](worker int, item T, do func(worker int, item T) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Item: fmt.Sprint(item), Value: r, Stack: debug.Stack()}
		}
	}()
	if faultinject.Active() {
		faultinject.Fire(faultinject.SchedTask, fmt.Sprint(item))
	}
	return do(worker, item)
}

// Options configures one Run.
type Options struct {
	// Shards is the number of worker goroutines, each owning one deque (and,
	// in the compression pipeline, one policy compiler). Values below 1 mean
	// 1.
	Shards int
}

// Stats reports what one Run did.
type Stats struct {
	// Items counts work items consumed from the sequence; Groups counts
	// distinct group keys among them (ungrouped items count as their own
	// group). Followers counts items that waited for a leader.
	Items     int64
	Groups    int64
	Followers int64
	// Steals counts tasks a worker took from another worker's deque.
	Steals int64
}

// Process-wide accumulators across every Run, for long-lived embedders
// (bonsaid's /metrics) whose callers discard per-run Stats.
var global struct {
	items, groups, followers, steals atomic.Int64
}

// GlobalStats returns the process-wide totals accumulated across all Runs.
func GlobalStats() Stats {
	return Stats{
		Items:     global.items.Load(),
		Groups:    global.groups.Load(),
		Followers: global.followers.Load(),
		Steals:    global.steals.Load(),
	}
}

// accumulate folds one Run's stats into the process-wide totals.
func (st Stats) accumulate() {
	global.items.Add(st.Items)
	global.groups.Add(st.Groups)
	global.followers.Add(st.Followers)
	global.steals.Add(st.Steals)
}

// task is one schedulable unit.
type task[T any] struct {
	item   T
	g      *group[T] // nil for ungrouped items
	leader bool
}

// group tracks one fingerprint group's single-flight state. pending holds
// followers that arrived before the leader completed; they are flushed onto
// the finishing worker's deque (the shard whose caches are warmest).
type group[T any] struct {
	done    bool
	pending []T
}

// Run consumes items from seq and executes do(worker, item) for each, with
// worker < opts.Shards identifying the executing shard (callers attach
// per-worker state — policy compilers — by index). key, when non-nil,
// assigns each item its fingerprint group; items with equal non-empty keys
// are single-flighted as described in the package comment, and an empty key
// means ungrouped. The first error from do stops the run (remaining tasks
// are drained, not executed), as does ctx cancellation, which wins over any
// concurrent task error.
func Run[T any](ctx context.Context, seq iter.Seq[T], opts Options, key func(T) string, do func(worker int, item T) error) (Stats, error) {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	s := &state[T]{
		deques: make([][]task[T], shards),
	}
	s.cond = sync.NewCond(&s.mu)

	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			s.work(ctx, worker, do)
		}(w)
	}

	// Dispatch throttle: enough tasks to keep every shard busy and give
	// steals a choice, few enough that an arbitrarily long sequence never
	// accumulates in the deques.
	limit := 8 * shards
	groups := make(map[string]*group[T])
	next := 0 // round-robin dispatch shard
	for item := range seq {
		if !s.throttle(ctx, limit) {
			break
		}
		s.stats.Items++
		k := ""
		if key != nil {
			k = key(item)
		}
		if k == "" {
			s.stats.Groups++
			s.enqueue(next, task[T]{item: item})
			next = (next + 1) % shards
			continue
		}
		g, ok := groups[k]
		if !ok {
			g = &group[T]{}
			groups[k] = g
			s.stats.Groups++
			s.enqueue(next, task[T]{item: item, g: g, leader: true})
			next = (next + 1) % shards
			continue
		}
		s.stats.Followers++
		// The group lock is s.mu: leaders flip g.done under it.
		s.mu.Lock()
		if g.done {
			s.pushLocked(next, task[T]{item: item, g: g})
			next = (next + 1) % shards
			s.inflight++
			s.cond.Broadcast()
			s.mu.Unlock()
			continue
		}
		g.pending = append(g.pending, item)
		s.inflight++ // parked followers still count toward termination
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.dispatchDone = true
	s.cond.Broadcast()
	s.mu.Unlock()
	wg.Wait()

	s.stats.accumulate()
	if err := ctx.Err(); err != nil {
		return s.stats, err
	}
	return s.stats, s.err
}

// state is the shared side of one Run. One mutex guards the deques, the
// termination counters and the group flags: tasks are coarse (a compression
// run is milliseconds; queue operations are nanoseconds), so sharding the
// *data* — each worker preferring its own deque — matters for locality and
// fairness, while sharding the lock would buy nothing measurable.
type state[T any] struct {
	mu           sync.Mutex
	cond         *sync.Cond
	deques       [][]task[T]
	inflight     int // enqueued or parked, not yet completed
	dispatchDone bool
	err          error
	stopped      bool
	stats        Stats
}

// throttle blocks until fewer than limit tasks are in flight (workers
// broadcast on every completion), reporting false when dispatch should
// stop instead. Progress is guaranteed: every in-flight task is queued,
// running, or parked behind a queued or running leader, so workers always
// drain the count. ctx is only polled — a worker observes the cancellation
// and sets stopped, which is broadcast.
func (s *state[T]) throttle(ctx context.Context, limit int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.inflight >= limit && !s.stopped && ctx.Err() == nil {
		s.cond.Wait()
	}
	return !s.stopped && ctx.Err() == nil
}

// enqueue pushes a task onto a shard's deque and accounts it in-flight.
func (s *state[T]) enqueue(shard int, t task[T]) {
	s.mu.Lock()
	s.pushLocked(shard, t)
	s.inflight++
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *state[T]) pushLocked(shard int, t task[T]) {
	s.deques[shard] = append(s.deques[shard], t)
}

// take pops the worker's own deque newest-first, else steals oldest-first
// from another shard, scanning from the next shard up for fairness. ok is
// false when every deque is empty.
func (s *state[T]) take(worker int) (task[T], bool) {
	if d := s.deques[worker]; len(d) > 0 {
		t := d[len(d)-1]
		s.deques[worker] = d[:len(d)-1]
		return t, true
	}
	for i := 1; i < len(s.deques); i++ {
		v := (worker + i) % len(s.deques)
		if d := s.deques[v]; len(d) > 0 {
			t := d[0]
			s.deques[v] = d[1:]
			s.stats.Steals++
			return t, true
		}
	}
	var zero task[T]
	return zero, false
}

// work is one worker's loop: take (own deque, then steal), run, flush the
// task's group on leader completion, until dispatch has finished and no
// task is in flight.
func (s *state[T]) work(ctx context.Context, worker int, do func(worker int, item T) error) {
	for {
		s.mu.Lock()
		t, ok := s.take(worker)
		for !ok {
			if s.inflight == 0 && s.dispatchDone {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			t, ok = s.take(worker)
		}
		run := !s.stopped && ctx.Err() == nil
		s.mu.Unlock()

		var err error
		if run {
			err = Protect(worker, t.item, do)
		}
		s.mu.Lock()
		if err != nil && s.err == nil {
			s.err = err
			s.stopped = true
		}
		if ctx.Err() != nil {
			s.stopped = true
		}
		if t.leader {
			// Flush parked followers onto this worker's deque even when
			// stopping: they are in-flight and must be drained for
			// termination; run=false skips their execution.
			t.g.done = true
			for _, item := range t.g.pending {
				s.pushLocked(worker, task[T]{item: item, g: t.g})
			}
			t.g.pending = nil
		}
		s.inflight--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
