package journal

import (
	"os"
	"path/filepath"
)

// ReplayInfo summarises one recovery scan.
type ReplayInfo struct {
	// Records counts the records delivered to fn; LastSeq is the newest of
	// them (0 if none).
	Records int    `json:"records"`
	LastSeq uint64 `json:"last_seq"`
	// Truncated reports that the scan stopped before the physical end of a
	// segment: a torn final record (the benign kill -9 shape) or a corrupt
	// one. Gap additionally reports that valid data is known to exist past
	// the stop point — a corrupt record with intact records after it, or a
	// whole unreadable segment followed by a later one — so the recovered
	// prefix provably misses history. Gap is the soundness alarm; Truncated
	// alone is routine.
	Truncated bool `json:"truncated,omitempty"`
	Gap       bool `json:"gap,omitempty"`
	// DroppedBytes counts segment bytes past the last valid record.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
}

// Replay streams every valid record with seq > fromSeq, in sequence order,
// to fn. It never fails on damaged data: a torn or corrupt record ends the
// scan at the last valid sequence and the damage is reported in ReplayInfo
// (Gap when later records provably exist). fn returning an error aborts the
// replay and surfaces that error.
func (j *Journal) Replay(fromSeq uint64, fn func(seq uint64, payload []byte) error) (ReplayInfo, error) {
	// Appends write straight to the segment file (no userspace buffer), so
	// the scan sees them regardless of fsync policy.
	return replayDir(j.dir, fromSeq, fn)
}

// ReplayDir is Replay over a directory no live Journal owns — the recovery
// harness's read-only view of a dead daemon's data.
func ReplayDir(dir string, fromSeq uint64, fn func(seq uint64, payload []byte) error) (ReplayInfo, error) {
	return replayDir(dir, fromSeq, fn)
}

func replayDir(dir string, fromSeq uint64, fn func(seq uint64, payload []byte) error) (ReplayInfo, error) {
	var info ReplayInfo
	segs, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	for i, s := range segs {
		path := filepath.Join(dir, s.name)
		fi, statErr := os.Stat(path)
		if os.IsNotExist(statErr) {
			// Reclaimed by a concurrent checkpoint between listing and open;
			// everything it held is covered by that checkpoint.
			continue
		}
		var size int64
		if statErr == nil {
			size = fi.Size()
		}
		wrapped := func(seq uint64, payload []byte) error {
			if seq <= fromSeq {
				return nil
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			info.Records++
			info.LastSeq = seq
			return nil
		}
		end, _, _, err := scanSegment(path, wrapped)
		if os.IsNotExist(err) {
			continue // reclaimed between stat and open; see above
		}
		if err != nil {
			return info, err // fn's error, or the segment is unreadable
		}
		if end < size {
			info.Truncated = true
			info.DroppedBytes += size - end
			if i < len(segs)-1 {
				// Valid records live in later segments; the prefix we can
				// recover provably misses history.
				info.Gap = true
			}
			// Stop at the first damage: replaying later segments would apply
			// deltas out of order across the hole.
			return info, nil
		}
	}
	return info, nil
}

// LoadCheckpoint reads the checkpoint from a directory no live Journal
// owns. Returns ErrNoCheckpoint when absent.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, ckptName))
	if os.IsNotExist(err) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(data)
}
