package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bonsai/internal/faultinject"
)

// mustOpen opens a journal with SyncNever (tests don't need power-loss
// durability and fsync dominates runtime) unless the test overrides opts.
func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("delta-%03d:%s", i+1, string(bytes.Repeat([]byte{'x'}, i%17))))
		seq, err := j.Append(payload)
		if err != nil {
			t.Fatalf("Append #%d: %v", i+1, err)
		}
		if want := j.LastSeq(); seq != want {
			t.Fatalf("Append returned seq %d, LastSeq %d", seq, want)
		}
	}
}

func collect(t *testing.T, dir string, from uint64) (seqs []uint64, payloads [][]byte, info ReplayInfo) {
	t.Helper()
	info, err := ReplayDir(dir, from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	return seqs, payloads, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNever})
	appendN(t, j, 25)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seqs, payloads, info := collect(t, dir, 0)
	if len(seqs) != 25 || info.Records != 25 || info.LastSeq != 25 {
		t.Fatalf("replay got %d records (info %+v), want 25", len(seqs), info)
	}
	if info.Truncated || info.Gap {
		t.Fatalf("clean journal reported damage: %+v", info)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
		want := fmt.Sprintf("delta-%03d:%s", i+1, string(bytes.Repeat([]byte{'x'}, i%17)))
		if string(payloads[i]) != want {
			t.Fatalf("payload[%d] = %q, want %q", i, payloads[i], want)
		}
	}

	// Reopen: the writer resumes after the last record.
	j2 := mustOpen(t, dir, Options{Sync: SyncNever})
	defer j2.Close()
	if got := j2.LastSeq(); got != 25 {
		t.Fatalf("reopened LastSeq = %d, want 25", got)
	}
	if seq, err := j2.Append([]byte("after")); err != nil || seq != 26 {
		t.Fatalf("append after reopen: seq=%d err=%v, want 26", seq, err)
	}
}

// TestTornWritePrefixTable is the satellite table test: for every byte-length
// prefix of a valid multi-record journal, recovery must succeed without a
// panic or error and deliver exactly the records that fit entirely inside
// the prefix — then a reopened journal must accept new appends at the next
// sequence after the surviving prefix.
func TestTornWritePrefixTable(t *testing.T) {
	srcDir := t.TempDir()
	j := mustOpen(t, srcDir, Options{Sync: SyncNever})
	const nRecords = 8
	var bounds []int64 // byte offset just past record i (1-based)
	var off int64
	for i := 0; i < nRecords; i++ {
		payload := []byte(fmt.Sprintf("record-%d-%s", i+1, string(bytes.Repeat([]byte{'a' + byte(i)}, 5+i*7))))
		if _, err := j.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
		off += int64(headerSize + len(payload))
		bounds = append(bounds, off)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(srcDir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, got %d (err %v)", len(segs), err)
	}
	full, err := os.ReadFile(filepath.Join(srcDir, segs[0].name))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if int64(len(full)) != bounds[nRecords-1] {
		t.Fatalf("segment is %d bytes, want %d", len(full), bounds[nRecords-1])
	}

	for cut := 0; cut <= len(full); cut++ {
		wantRecords := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				wantRecords++
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segs[0].name), full[:cut], 0o644); err != nil {
			t.Fatalf("cut=%d: write prefix: %v", cut, err)
		}

		seqs, _, info := collect(t, dir, 0)
		if len(seqs) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(seqs), wantRecords)
		}
		if info.LastSeq != uint64(wantRecords) {
			t.Fatalf("cut=%d: LastSeq %d, want %d", cut, info.LastSeq, wantRecords)
		}
		tornBytes := int64(cut)
		if wantRecords > 0 {
			tornBytes = int64(cut) - bounds[wantRecords-1]
		}
		if (tornBytes > 0) != info.Truncated {
			t.Fatalf("cut=%d: Truncated=%v with %d torn bytes", cut, info.Truncated, tornBytes)
		}
		if info.Gap {
			t.Fatalf("cut=%d: single-segment torn tail must not report a gap", cut)
		}
		if info.DroppedBytes != tornBytes {
			t.Fatalf("cut=%d: DroppedBytes=%d, want %d", cut, info.DroppedBytes, tornBytes)
		}

		// Open repairs the tail and the next append continues the sequence.
		j2 := mustOpen(t, dir, Options{Sync: SyncNever})
		if got := j2.LastSeq(); got != uint64(wantRecords) {
			t.Fatalf("cut=%d: reopened LastSeq %d, want %d", cut, got, wantRecords)
		}
		seq, err := j2.Append([]byte("post-repair"))
		if err != nil || seq != uint64(wantRecords)+1 {
			t.Fatalf("cut=%d: post-repair append seq=%d err=%v", cut, seq, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		seqs, _, info = collect(t, dir, 0)
		if len(seqs) != wantRecords+1 || info.Truncated {
			t.Fatalf("cut=%d: after repair replay got %d records (info %+v), want %d",
				cut, len(seqs), info, wantRecords+1)
		}
	}
}

// TestCorruptRecordGap flips a byte inside an early record with later
// segments present: replay must stop at the last valid sequence before the
// damage and raise the Gap alarm, because valid history provably exists past
// the stop point.
func TestCorruptRecordGap(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes=1 seals a segment after every record, so each record
	// lands in its own file and the corruption sits before intact segments.
	j := mustOpen(t, dir, Options{Sync: SyncNever, SegmentBytes: 1})
	appendN(t, j, 6)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 6 {
		t.Fatalf("want 6 segments, got %d (err %v)", len(segs), err)
	}

	// Corrupt the payload of record 3 (third segment).
	path := filepath.Join(dir, segs[2].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[headerSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	seqs, _, info := collect(t, dir, 0)
	if len(seqs) != 2 || info.LastSeq != 2 {
		t.Fatalf("replay past corruption: got %d records last=%d, want 2", len(seqs), info.LastSeq)
	}
	if !info.Truncated || !info.Gap {
		t.Fatalf("corrupt mid-journal record must report Truncated+Gap, got %+v", info)
	}
	if info.DroppedBytes != int64(len(data)) {
		t.Fatalf("DroppedBytes=%d, want %d", info.DroppedBytes, len(data))
	}
}

func TestCheckpointRoundTripAndTruncate(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNever})
	appendN(t, j, 10)
	state := []byte("network-config-at-10")
	if err := j.WriteCheckpoint(10, state); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	ck, err := j.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ck.Seq != 10 || !bytes.Equal(ck.Payload, state) {
		t.Fatalf("checkpoint = seq %d payload %q", ck.Seq, ck.Payload)
	}
	// The covered segment is gone; replay past the checkpoint is empty.
	seqs, _, _ := collect(t, dir, ck.Seq)
	if len(seqs) != 0 {
		t.Fatalf("tail after checkpoint: %v, want empty", seqs)
	}
	appendN(t, j, 3) // seqs 11..13
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ck2, err := LoadCheckpoint(dir)
	if err != nil || ck2.Seq != 10 {
		t.Fatalf("LoadCheckpoint: %+v, %v", ck2, err)
	}
	seqs, _, info := collect(t, dir, ck2.Seq)
	if len(seqs) != 3 || seqs[0] != 11 || seqs[2] != 13 || info.Truncated {
		t.Fatalf("tail replay got %v (info %+v), want [11 12 13]", seqs, info)
	}

	// Reopen resumes after the tail, not at the checkpoint.
	j2 := mustOpen(t, dir, Options{Sync: SyncNever})
	defer j2.Close()
	if got := j2.LastSeq(); got != 13 {
		t.Fatalf("reopened LastSeq = %d, want 13", got)
	}
	if got := j2.CheckpointSeq(); got != 10 {
		t.Fatalf("reopened CheckpointSeq = %d, want 10", got)
	}
}

func TestCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNever})
	defer j.Close()
	appendN(t, j, 5)
	if err := j.WriteCheckpoint(7, []byte("x")); err == nil {
		t.Fatal("checkpoint beyond last appended seq must fail")
	}
	if err := j.WriteCheckpoint(4, []byte("at-4")); err != nil {
		t.Fatalf("WriteCheckpoint(4): %v", err)
	}
	if err := j.WriteCheckpoint(2, []byte("regress")); err == nil {
		t.Fatal("checkpoint behind the current one must fail")
	}
	// Base snapshot at seq 0 on a fresh journal is allowed.
	dir2 := t.TempDir()
	j2 := mustOpen(t, dir2, Options{Sync: SyncNever})
	defer j2.Close()
	if err := j2.WriteCheckpoint(0, []byte("base")); err != nil {
		t.Fatalf("base checkpoint: %v", err)
	}
}

// TestCheckpointCrashBeforeRename simulates a crash between writing
// checkpoint.tmp and the rename: the previous checkpoint must stay in force
// and the stray tmp file must be ignored (and not break a later checkpoint).
func TestCheckpointCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNever})
	appendN(t, j, 4)
	if err := j.WriteCheckpoint(2, []byte("at-2")); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}

	t.Cleanup(faultinject.Reset)
	disarm := faultinject.Arm(faultinject.CheckpointRename, func(string) {
		panic("crash before rename")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected injected panic")
			}
		}()
		j.WriteCheckpoint(4, []byte("at-4"))
	}()
	disarm()
	j.Close()

	if _, err := os.Stat(filepath.Join(dir, ckptTmp)); err != nil {
		t.Fatalf("expected stray checkpoint.tmp after crash: %v", err)
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil || ck.Seq != 2 || string(ck.Payload) != "at-2" {
		t.Fatalf("previous checkpoint not in force: %+v, %v", ck, err)
	}
	// Tail replay still covers everything past the surviving checkpoint.
	seqs, _, _ := collect(t, dir, ck.Seq)
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("tail = %v, want [3 4]", seqs)
	}

	// Recovery + a fresh checkpoint succeed despite the stray tmp.
	j2 := mustOpen(t, dir, Options{Sync: SyncNever})
	defer j2.Close()
	if err := j2.WriteCheckpoint(4, []byte("at-4-retry")); err != nil {
		t.Fatalf("checkpoint after crash: %v", err)
	}
	ck, err = LoadCheckpoint(dir)
	if err != nil || ck.Seq != 4 || string(ck.Payload) != "at-4-retry" {
		t.Fatalf("retried checkpoint: %+v, %v", ck, err)
	}
}

func TestCorruptCheckpointIsAnError(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNever})
	appendN(t, j, 2)
	if err := j.WriteCheckpoint(2, []byte("good")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	j.Close()

	path := filepath.Join(dir, ckptName)
	data, _ := os.ReadFile(path)
	data[len(data)-12] ^= 0x01 // inside the CRC/trailer region
	os.WriteFile(path, data, 0o644)
	if _, err := LoadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint must fail validation, not load")
	}

	// Missing checkpoint is the distinct, benign case.
	os.Remove(path)
	if _, err := LoadCheckpoint(dir); err != ErrNoCheckpoint {
		t.Fatalf("missing checkpoint: err=%v, want ErrNoCheckpoint", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy must fail")
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	appendN(t, j, 3)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if j.Stats().Fsyncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestConcurrentAppendCheckpointReplay runs appenders, a checkpointer and a
// reader together (the -race half of the satellite test) and then verifies
// the directory recovers to a contiguous history.
func TestConcurrentAppendCheckpointReplay(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNever, SegmentBytes: 4 << 10})

	const total = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // appender
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := j.Append([]byte(fmt.Sprintf("concurrent-%d", i))); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if seq := j.LastSeq(); seq > 0 {
				if err := j.WriteCheckpoint(seq, []byte(fmt.Sprintf("state-%d", seq))); err != nil {
					t.Errorf("WriteCheckpoint(%d): %v", seq, err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = j.Stats()
			if _, err := j.Replay(j.CheckpointSeq(), func(uint64, []byte) error { return nil }); err != nil {
				t.Errorf("Replay: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for the appender, then stop the background loops.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j.LastSeq() < total {
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("appender did not finish")
	}
	close(stop)
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recover: checkpoint seq + tail must cover exactly 1..total.
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	seqs, _, info := collect(t, dir, ck.Seq)
	if info.Truncated || info.Gap {
		t.Fatalf("damage after clean close: %+v", info)
	}
	want := ck.Seq + 1
	for _, s := range seqs {
		if s != want {
			t.Fatalf("tail not contiguous: got %d, want %d", s, want)
		}
		want++
	}
	if want != total+1 {
		t.Fatalf("checkpoint %d + %d tail records covers to %d, want %d", ck.Seq, len(seqs), want-1, total)
	}
}
