// Package journal is bonsaid's per-tenant durability layer: an append-only
// write-ahead delta log plus an atomically-replaced checkpoint, both living
// in one tenant directory. The discipline is log-then-apply: a delta is
// framed, sequence-numbered and (policy permitting) fsynced to the journal
// before the engine runs it, so the tenant's state is always reconstructible
// as checkpoint + ordered journal tail. Recovery tolerates every crash shape
// a kill -9 can produce — torn final records, half-written checkpoints,
// stale segments left behind by an interrupted truncation — and degrades a
// corrupt record to a detectable gap instead of a panic.
//
// On-disk layout of a journal directory:
//
//	wal-<first-seq>.log    append-only segments of framed records
//	checkpoint             last durable snapshot (temp + rename, trailered)
//	checkpoint.tmp         in-flight checkpoint; never trusted on load
//
// Record frame (little-endian, written in a single Write so any crash
// leaves a pure prefix):
//
//	u32 payloadLen | u64 seq | u32 crc32c(seq || payload) | payload
//
// Sequence numbers are monotonic across segments and restarts; segment
// files are named by the first sequence they hold, so a checkpoint at seq S
// can delete every segment whose successor starts at or below S+1.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bonsai/internal/faultinject"
)

// SyncPolicy says when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns: an acknowledged delta is
	// durable against power loss. Slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery): at most
	// one window of acknowledged deltas is exposed to power loss. A plain
	// process crash (kill -9) loses nothing — written bytes survive in the
	// page cache.
	SyncInterval
	// SyncNever leaves syncing to the OS writeback. Same kill -9 guarantee
	// as SyncInterval; power loss may take the whole unsynced tail.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseSyncPolicy parses the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a journal.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB); checkpoints also rotate, so truncation can reclaim
	// everything behind them.
	SegmentBytes int64
}

func (o *Options) defaults() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptName   = "checkpoint"
	ckptTmp    = "checkpoint.tmp"
	headerSize = 4 + 8 + 4 // payloadLen + seq + crc
	// maxRecordBytes bounds a single record; a length prefix beyond it is
	// treated as corruption rather than an allocation request.
	maxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Stats is a point-in-time snapshot of one journal.
type Stats struct {
	// LastSeq is the newest appended sequence (0 before the first append).
	LastSeq uint64 `json:"last_seq"`
	// CheckpointSeq is the sequence the durable checkpoint covers.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// TailRecords counts appended records past the checkpoint — the replay
	// work a recovery would do right now.
	TailRecords uint64 `json:"tail_records"`
	// Appends and Fsyncs count operations over this process's lifetime;
	// Checkpoints counts durable checkpoint replacements.
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	Checkpoints uint64 `json:"checkpoints"`
	// SegmentCount and SegmentBytes size the on-disk journal (excluding the
	// checkpoint file).
	SegmentCount int   `json:"segment_count"`
	SegmentBytes int64 `json:"segment_bytes"`
}

// Journal is one tenant's write-ahead log plus checkpoint. Appends and
// checkpoints are safe for concurrent use; a Journal owns its directory.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	fSize    int64
	fStart   uint64 // first seq of the active segment
	nextSeq  uint64
	ckptSeq  uint64
	dirty    bool // bytes written since the last fsync
	closed   bool
	buf      []byte
	segBytes int64 // total bytes across sealed segments (not the active one)
	segCount int   // sealed segments

	appends     uint64
	fsyncs      uint64
	checkpoints uint64

	syncStop chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the journal directory, repairs a torn tail in the
// newest segment, and positions the writer after the last valid record.
// Records damaged earlier in the log are left for Replay to report — Open
// only needs the append position, which lives in the final segment.
func Open(dir string, opts Options) (*Journal, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opts: opts, nextSeq: 1}

	if ck, err := j.Checkpoint(); err == nil && ck != nil {
		j.ckptSeq = ck.Seq
		j.nextSeq = ck.Seq + 1
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, s := range segs {
		if i == len(segs)-1 {
			break
		}
		fi, err := os.Stat(filepath.Join(dir, s.name))
		if err == nil {
			j.segBytes += fi.Size()
		}
		j.segCount++
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		path := filepath.Join(dir, last.name)
		end, lastSeq, _, err := scanSegment(path, nil)
		if err != nil {
			return nil, err
		}
		// Repair: drop any torn/corrupt tail so the next append starts at a
		// clean frame boundary. Bytes past the last valid record are garbage
		// by construction — they were never acknowledged at SyncAlways, and
		// at looser policies the contract is exactly that they may be lost.
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		j.f, j.fSize, j.fStart = f, end, last.start
		if lastSeq >= j.nextSeq {
			j.nextSeq = lastSeq + 1
		}
		// An empty active segment still pins the append position: it was
		// named after the next sequence when it was created, so sequences
		// below its start live in sealed segments we didn't scan.
		if last.start > j.nextSeq {
			j.nextSeq = last.start
		}
	}

	if opts.Sync == SyncInterval {
		j.syncStop = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// syncLoop flushes dirty appends on the SyncInterval timer.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(j.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.syncStop:
			return
		case <-t.C:
			j.Sync()
		}
	}
}

// Append frames payload under the next sequence number, writes it to the
// active segment, and — under SyncAlways — fsyncs before returning. The
// returned sequence is the record's durable identity; callers must not
// acknowledge the delta to a client before Append returns.
func (j *Journal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	seq := j.nextSeq
	if faultinject.Active() {
		faultinject.Fire(faultinject.JournalAppend, strconv.FormatUint(seq, 10))
	}
	if j.f == nil || j.fSize >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	need := headerSize + len(payload)
	if cap(j.buf) < need {
		j.buf = make([]byte, need)
	}
	b := j.buf[:need]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(b[4:12], seq)
	crc := crc32.Update(0, castagnoli, b[4:12])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(b[12:16], crc)
	copy(b[16:], payload)
	if _, err := j.f.Write(b); err != nil {
		// A short write leaves a torn tail; the next Open repairs it. The
		// in-memory size is best-effort from here, which is fine — rotation
		// thresholds are advisory.
		return 0, err
	}
	j.fSize += int64(need)
	j.nextSeq = seq + 1
	j.appends++
	j.dirty = true
	if j.opts.Sync == SyncAlways {
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes appended bytes to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || !j.dirty || j.f == nil {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if faultinject.Active() {
		faultinject.Fire(faultinject.JournalFsync, strconv.FormatUint(j.nextSeq-1, 10))
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.dirty = false
	j.fsyncs++
	return nil
}

// rotateLocked seals the active segment and opens a fresh one starting at
// nextSeq. The directory is fsynced so the new file's existence survives a
// crash as soon as its records matter.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if j.dirty {
			if err := j.syncLocked(); err != nil {
				return err
			}
		}
		if err := j.f.Close(); err != nil {
			return err
		}
		j.segBytes += j.fSize
		j.segCount++
		j.f = nil
	}
	name := segName(j.nextSeq)
	f, err := os.OpenFile(filepath.Join(j.dir, name), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f, j.fSize, j.fStart = f, 0, j.nextSeq
	return nil
}

// LastSeq returns the newest appended sequence (0 before any append).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// CheckpointSeq returns the sequence the durable checkpoint covers.
func (j *Journal) CheckpointSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckptSeq
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Stats{
		LastSeq:       j.nextSeq - 1,
		CheckpointSeq: j.ckptSeq,
		Appends:       j.appends,
		Fsyncs:        j.fsyncs,
		Checkpoints:   j.checkpoints,
		SegmentCount:  j.segCount,
		SegmentBytes:  j.segBytes + j.fSize,
	}
	if j.f != nil {
		s.SegmentCount++
	}
	if s.LastSeq > s.CheckpointSeq {
		s.TailRecords = s.LastSeq - s.CheckpointSeq
	}
	return s
}

// Close flushes and closes the journal. Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	var err error
	if j.f != nil {
		if j.dirty {
			err = j.f.Sync()
		}
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	stop := j.syncStop
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-j.syncDone
	}
	return err
}

// segName renders the segment filename for a first sequence.
func segName(start uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
}

type segInfo struct {
	name  string
	start uint64
}

// listSegments returns the directory's wal segments sorted by start seq.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue // not ours; leave it alone
		}
		segs = append(segs, segInfo{name: name, start: start})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].start < segs[b].start })
	return segs, nil
}

// syncDir fsyncs a directory so entry creation/rename/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// scanSegment walks one segment's records, calling fn (when non-nil) for
// each valid one, and returns the offset just past the last valid record
// plus the last valid sequence seen (0 if none). Invalid framing — short
// header, absurd length, CRC mismatch, truncated payload — ends the scan at
// the last valid boundary; the caller decides whether that is a repairable
// torn tail (final segment) or a reportable gap (records known to follow).
func scanSegment(path string, fn func(seq uint64, payload []byte) error) (end int64, lastSeq uint64, nrec int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return off, lastSeq, nrec, nil // clean EOF or torn header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		if plen > maxRecordBytes {
			return off, lastSeq, nrec, nil // corrupt length
		}
		seq := binary.LittleEndian.Uint64(hdr[4:12])
		want := binary.LittleEndian.Uint32(hdr[12:16])
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, lastSeq, nrec, nil // torn payload
		}
		crc := crc32.Update(0, castagnoli, hdr[4:12])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			return off, lastSeq, nrec, nil // corrupt record
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return off, lastSeq, nrec, err
			}
		}
		off += int64(headerSize) + int64(plen)
		lastSeq = seq
		nrec++
	}
}
