package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"

	"bonsai/internal/faultinject"
)

// Checkpoint file layout (little-endian):
//
//	magic   "BONSCKP1" (8 bytes)
//	u64     seq
//	u64     payloadLen
//	payload (the tenant's canonical network text)
//	u32     crc32c(seq || payloadLen || payload)
//	magic   "BONSCKPE" (8 bytes)
//
// The trailer is the commit record: a checkpoint missing its closing magic
// or failing its CRC was interrupted mid-write and is never trusted. The
// file only ever appears under its final name via rename, so a crash leaves
// either the previous complete checkpoint or a stray .tmp that load
// ignores.

var (
	ckptMagic    = []byte("BONSCKP1")
	ckptEndMagic = []byte("BONSCKPE")
)

// ErrNoCheckpoint reports that the directory holds no usable checkpoint.
var ErrNoCheckpoint = errors.New("journal: no checkpoint")

// Checkpoint is a loaded snapshot: the tenant state at sequence Seq.
type Checkpoint struct {
	Seq     uint64
	Payload []byte
}

// Checkpoint loads and validates the durable checkpoint, returning
// (nil, ErrNoCheckpoint) when none exists and an error when one exists but
// fails validation (half-written files never reach the final name, so a bad
// checkpoint file means real corruption, not a crash artifact).
func (j *Journal) Checkpoint() (*Checkpoint, error) {
	return LoadCheckpoint(j.dir)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	const fixed = 8 + 8 + 8 + 4 + 8 // magic + seq + len + crc + end magic
	if len(data) < fixed {
		return nil, fmt.Errorf("journal: checkpoint truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != string(ckptMagic) {
		return nil, fmt.Errorf("journal: checkpoint has bad magic")
	}
	if string(data[len(data)-8:]) != string(ckptEndMagic) {
		return nil, fmt.Errorf("journal: checkpoint missing trailer magic")
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	plen := binary.LittleEndian.Uint64(data[16:24])
	if int(plen) != len(data)-fixed {
		return nil, fmt.Errorf("journal: checkpoint length mismatch (%d vs %d)", plen, len(data)-fixed)
	}
	payload := data[24 : 24+plen]
	want := binary.LittleEndian.Uint32(data[24+plen : 24+plen+4])
	crc := crc32.Update(0, castagnoli, data[8:24])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return nil, fmt.Errorf("journal: checkpoint CRC mismatch")
	}
	return &Checkpoint{Seq: seq, Payload: payload}, nil
}

// WriteCheckpoint durably replaces the checkpoint with payload-at-seq, then
// truncates the journal behind it: the active segment is sealed first so
// every record at or below seq lives in a fully-covered old segment, the
// checkpoint is written to a temp file, fsynced and renamed into place, and
// only then are the covered segments deleted. A crash at any point leaves a
// recoverable directory — at worst the previous checkpoint with a longer
// tail, or the new checkpoint with stale segments that replay skips by
// sequence.
func (j *Journal) WriteCheckpoint(seq uint64, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if seq < j.ckptSeq {
		return fmt.Errorf("journal: checkpoint seq %d behind current %d", seq, j.ckptSeq)
	}
	// seq must name an appended record (or 0 for a base snapshot).
	if seq != 0 && seq >= j.nextSeq {
		return fmt.Errorf("journal: checkpoint seq %d beyond last appended %d", seq, j.nextSeq-1)
	}

	// Seal the active segment so truncation below can reason per-file.
	if j.f != nil && j.fSize > 0 {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}

	fixed := 8 + 8 + 8 + len(payload) + 4 + 8
	buf := make([]byte, fixed)
	copy(buf[:8], ckptMagic)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(payload)))
	copy(buf[24:], payload)
	crc := crc32.Update(0, castagnoli, buf[8:24])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[24+len(payload):], crc)
	copy(buf[fixed-8:], ckptEndMagic)

	tmp := filepath.Join(j.dir, ckptTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if faultinject.Active() {
		faultinject.Fire(faultinject.CheckpointRename, strconv.FormatUint(seq, 10))
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, ckptName)); err != nil {
		return err
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	j.ckptSeq = seq
	j.checkpoints++
	j.truncateLocked(seq)
	return nil
}

// truncateLocked deletes sealed segments fully covered by a checkpoint at
// seq: a segment is reclaimable when its successor starts at or below
// seq+1, i.e. every record it holds is at or below seq. Deletion failures
// are ignored — stale segments cost disk, not correctness, and the next
// checkpoint retries.
func (j *Journal) truncateLocked(seq uint64) {
	segs, err := listSegments(j.dir)
	if err != nil {
		return
	}
	for i, s := range segs {
		if j.f != nil && s.start == j.fStart {
			continue // never the active segment
		}
		if i+1 >= len(segs) || segs[i+1].start > seq+1 {
			continue
		}
		os.Remove(filepath.Join(j.dir, s.name))
	}
	// Recompute sealed bytes from what's left rather than tracking deltas.
	j.segBytes = 0
	j.segCount = 0
	segs, _ = listSegments(j.dir)
	for _, s := range segs {
		if j.f != nil && s.start == j.fStart {
			continue
		}
		if fi, err := os.Stat(filepath.Join(j.dir, s.name)); err == nil {
			j.segBytes += fi.Size()
			j.segCount++
		}
	}
	syncDir(j.dir)
}
