// Package faultinject provides process-wide fault-injection seams for
// robustness tests. Production code calls Fire at interesting points; tests
// Arm hooks that panic, cancel contexts, or poke caches at those points.
// The layer is always compiled in (no build tags, so the tested binary is
// the shipped binary) but costs a single atomic load per seam while nothing
// is armed.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Point names one injection seam.
type Point string

const (
	// SchedTask fires in a scheduler worker just before it runs a task;
	// the key is the task's item rendering.
	SchedTask Point = "sched.task"
	// AdoptClass fires before each class's adoption check during an
	// incremental update; the key is the class prefix.
	AdoptClass Point = "adopt.class"
	// StoreInstall fires before an abstraction is installed into the
	// bounded store; the key is the class prefix.
	StoreInstall Point = "store.install"
	// ApplySwap fires after a delta's successor snapshot is fully built,
	// just before the engine publishes it.
	ApplySwap Point = "apply.swap"
	// JournalAppend fires in journal.Append before the record is written;
	// the key is the record's sequence number. A crash here loses the
	// record entirely — it was never acknowledged.
	JournalAppend Point = "journal.append"
	// JournalFsync fires after a record is written, before fsync; the key
	// is the newest appended sequence. A crash here leaves the record in
	// the page cache: survives kill -9, exposed to power loss.
	JournalFsync Point = "journal.fsync"
	// CheckpointRename fires after the checkpoint temp file is written and
	// fsynced, just before the atomic rename; the key is the checkpoint
	// sequence. A crash here leaves the previous checkpoint in force.
	CheckpointRename Point = "checkpoint.rename"
)

type hook struct {
	id int64
	fn func(key string)
}

var (
	armed  atomic.Int32
	nextID atomic.Int64
	mu     sync.RWMutex
	hooks  map[Point][]hook
)

// Active reports whether any hook is armed; seams may use it to skip
// building keys.
func Active() bool { return armed.Load() > 0 }

// Fire invokes every hook armed at p. Hooks run on the calling goroutine
// and may panic or block — that is the point. When nothing is armed, Fire
// is one atomic load.
func Fire(p Point, key string) {
	if armed.Load() == 0 {
		return
	}
	mu.RLock()
	fns := make([]func(string), 0, len(hooks[p]))
	for _, h := range hooks[p] {
		fns = append(fns, h.fn)
	}
	mu.RUnlock()
	for _, fn := range fns {
		fn(key)
	}
}

// Arm registers fn at p and returns an idempotent disarm function. Seams
// are process-global, so tests must disarm (t.Cleanup) before finishing.
func Arm(p Point, fn func(key string)) (disarm func()) {
	id := nextID.Add(1)
	mu.Lock()
	if hooks == nil {
		hooks = make(map[Point][]hook)
	}
	hooks[p] = append(hooks[p], hook{id: id, fn: fn})
	mu.Unlock()
	armed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			hs := hooks[p]
			for i, h := range hs {
				if h.id == id {
					hooks[p] = append(hs[:i:i], hs[i+1:]...)
					break
				}
			}
			mu.Unlock()
			armed.Add(-1)
		})
	}
}

// Reset removes every armed hook. Tests call it (usually via t.Cleanup) so
// a failing scenario cannot leak hooks into the next.
func Reset() {
	mu.Lock()
	hooks = nil
	mu.Unlock()
	armed.Store(0)
}

// OnNth wraps fn so it runs only on the n-th Fire (1-based) of the hook it
// is armed as; earlier and later hits are ignored. Safe for concurrent
// Fires.
func OnNth(n int64, fn func(key string)) func(key string) {
	var hits atomic.Int64
	return func(key string) {
		if hits.Add(1) == n {
			fn(key)
		}
	}
}

// OnKey wraps fn so it runs only when the fired key equals k.
func OnKey(k string, fn func(key string)) func(key string) {
	return func(key string) {
		if key == k {
			fn(key)
		}
	}
}
