package srp

import (
	"testing"

	"bonsai/internal/topo"
)

func TestTieRandomization(t *testing.T) {
	// Diamond: x ties between two equal-length paths via m1/m2; the label
	// (a hop count) is identical, so use a path-carrying protocol instead.
	g := topo.New()
	d, m1, m2, x := g.AddNode("d"), g.AddNode("m1"), g.AddNode("m2"), g.AddNode("x")
	g.AddLink(d, m1)
	g.AddLink(d, m2)
	g.AddLink(m1, x)
	g.AddLink(m2, x)
	p := &pathProto{}
	inst := &Instance{G: g, Dest: d, P: p}
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		sol, err := Solve(inst, WithOrder(seed))
		if err != nil {
			t.Fatal(err)
		}
		seen[attrKey(sol.Label[x])] = true
	}
	if len(seen) < 2 {
		t.Fatalf("tie randomization ineffective: %v", seen)
	}
}

type pathProto struct{}

func (pathProto) Name() string { return "path" }
func (pathProto) Origin() Attr { return []topo.NodeID{} }
func (pathProto) Compare(a, b Attr) int {
	return len(a.([]topo.NodeID)) - len(b.([]topo.NodeID))
}
func (pathProto) Equal(a, b Attr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	x, y := a.([]topo.NodeID), b.([]topo.NodeID)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}
func (pathProto) Transfer(e topo.Edge, a Attr) Attr {
	if a == nil {
		return nil
	}
	p := a.([]topo.NodeID)
	out := make([]topo.NodeID, 0, len(p)+1)
	out = append(out, e.V)
	out = append(out, p...)
	return out
}

func attrKey(a Attr) string {
	if a == nil {
		return "nil"
	}
	s := ""
	for _, n := range a.([]topo.NodeID) {
		s += string(rune('a' + int(n)))
	}
	return s
}
