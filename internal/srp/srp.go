// Package srp defines the Stable Routing Problem (paper §3): a generic model
// of a routing protocol running over a topology toward a single destination.
// An SRP instance is (G, A, ad, ≺, trans); a solution labels every node with
// the route it selected such that no node prefers an offer from a neighbor
// over its chosen route. The package also provides a fixed-point solver that
// simulates protocol dynamics to find stable solutions, and a checker that
// validates the stability constraints of Figure 4 directly.
package srp

import (
	"errors"
	"fmt"
	"math/rand"

	"bonsai/internal/topo"
)

// Attr is a routing-message attribute. A nil Attr is ⊥ (no route). Concrete
// protocols define their own attribute types in internal/protocols.
type Attr interface{}

// Protocol supplies the attribute-dependent pieces of an SRP instance: the
// initial route ad, the comparison relation ≺ and the transfer function.
type Protocol interface {
	// Name identifies the protocol (used in diagnostics only).
	Name() string
	// Origin returns the initial attribute ad advertised by the destination.
	Origin() Attr
	// Compare orders two non-nil attributes: negative if a is preferred
	// (a ≺ b), positive if b is preferred, zero if equally good (a ≈ b).
	Compare(a, b Attr) int
	// Equal reports semantic equality of two attributes (nil == nil).
	Equal(a, b Attr) bool
	// Transfer maps the attribute a at neighbor v across the edge e=(u,v)
	// into the attribute received at u, or nil if the route is dropped.
	// Implementations other than static routing must be non-spontaneous:
	// Transfer(e, nil) == nil.
	Transfer(e topo.Edge, a Attr) Attr
}

// NodeMapper is implemented by protocols whose attributes embed topology
// node IDs (e.g. the BGP AS path). The attribute abstraction h of a network
// abstraction maps those IDs through the topology function f (paper §4.3:
// h((lp, tags, path)) = (lp, tags, f(path))).
type NodeMapper interface {
	MapNodes(a Attr, f func(topo.NodeID) topo.NodeID) Attr
}

// MapAttr applies the protocol's attribute abstraction if it has one, and
// returns a unchanged otherwise.
func MapAttr(p Protocol, a Attr, f func(topo.NodeID) topo.NodeID) Attr {
	if nm, ok := p.(NodeMapper); ok {
		return nm.MapNodes(a, f)
	}
	return a
}

// Instance is an SRP instance: a topology, a destination vertex and a
// protocol defining attributes, comparison and transfer.
type Instance struct {
	G    *topo.Graph
	Dest topo.NodeID
	P    Protocol
}

// Solution is a stable labelling L : V → A⊥ along with the forwarding
// relation it induces (fwd_L of Figure 4).
type Solution struct {
	Label []Attr
	Fwd   [][]topo.NodeID // Fwd[u] = neighbors u forwards to, sorted
}

// ErrDiverged reports that the solver exceeded its sweep budget without
// reaching a stable solution (e.g. a BGP "naughty gadget").
var ErrDiverged = errors.New("srp: no stable solution found within sweep budget")

type options struct {
	seed      int64
	useSeed   bool
	maxSweeps int
}

// Option configures Solve.
type Option func(*options)

// WithOrder makes the solver activate nodes in a pseudo-random order derived
// from seed. Different orders can reach different stable solutions of the
// same SRP (paper Figure 2 has several).
func WithOrder(seed int64) Option {
	return func(o *options) { o.seed = seed; o.useSeed = true }
}

// WithMaxSweeps overrides the divergence bound (default 2·|V|+64 sweeps).
func WithMaxSweeps(n int) Option {
	return func(o *options) { o.maxSweeps = n }
}

// Solve simulates the SRP to a stable solution using asynchronous
// (Gauss-Seidel) fixed-point iteration: nodes repeatedly re-select their best
// available route given neighbors' current labels until a full sweep changes
// nothing. It returns ErrDiverged if no fixed point is reached within the
// sweep budget.
func Solve(inst *Instance, opts ...Option) (*Solution, error) {
	o := options{maxSweeps: 2*inst.G.NumNodes() + 64}
	for _, f := range opts {
		f(&o)
	}
	n := inst.G.NumNodes()
	order := make([]topo.NodeID, 0, n)
	for _, u := range inst.G.Nodes() {
		if u != inst.Dest {
			order = append(order, u)
		}
	}
	if o.useSeed {
		rng := rand.New(rand.NewSource(o.seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	label := make([]Attr, n)
	label[inst.Dest] = inst.P.Origin()

	// With a seeded order, ties between equally-good attributes are also
	// broken pseudo-randomly, so SolveAll can discover every labelling a
	// real network might converge to (the SRP definition allows any minimal
	// attribute to be chosen).
	var tieRng *rand.Rand
	if o.useSeed {
		tieRng = rand.New(rand.NewSource(o.seed ^ 0x5bd1e995))
	}

	for sweep := 0; sweep < o.maxSweeps; sweep++ {
		changed := false
		for _, u := range order {
			best := bestChoice(inst, label, u, tieRng)
			if !inst.P.Equal(best, label[u]) {
				label[u] = best
				changed = true
			}
		}
		if !changed {
			sol := &Solution{Label: label, Fwd: forwarding(inst, label)}
			if err := inst.Check(sol); err != nil {
				return nil, fmt.Errorf("srp: fixed point failed stability check: %w", err)
			}
			return sol, nil
		}
	}
	return nil, ErrDiverged
}

// bestChoice returns a minimal attribute available to u from its neighbors,
// or nil when attrs_L(u) is empty. Tie handling is sticky: if u's current
// label is still among the minimal choices it is kept, so the iteration
// reaches quiescence; otherwise, with a non-nil tieRng, a random minimal
// choice is taken (reservoir sampling), letting different seeds converge to
// different labellings of tied SRPs — the "any minimal value can be chosen"
// freedom of the solution definition.
func bestChoice(inst *Instance, label []Attr, u topo.NodeID, tieRng *rand.Rand) Attr {
	// Pass 1: find the minimal rank.
	var best Attr
	for _, v := range inst.G.Succ(u) {
		a := inst.P.Transfer(topo.Edge{U: u, V: v}, label[v])
		if a == nil {
			continue
		}
		if best == nil || inst.P.Compare(a, best) < 0 {
			best = a
		}
	}
	if best == nil {
		return nil
	}
	// Pass 2: among minimal candidates, prefer the current label, then a
	// random one (reservoir), then the first.
	var pick Attr
	ties := 0
	for _, v := range inst.G.Succ(u) {
		a := inst.P.Transfer(topo.Edge{U: u, V: v}, label[v])
		if a == nil || inst.P.Compare(a, best) != 0 {
			continue
		}
		if inst.P.Equal(a, label[u]) {
			return a // sticky: quiescence under ties
		}
		ties++
		if pick == nil || (tieRng != nil && tieRng.Intn(ties) == 0) {
			pick = a
		}
	}
	return pick
}

// forwarding computes fwd_L: for each node the set of edges whose received
// attribute ties with the chosen label.
func forwarding(inst *Instance, label []Attr) [][]topo.NodeID {
	n := inst.G.NumNodes()
	fwd := make([][]topo.NodeID, n)
	for _, u := range inst.G.Nodes() {
		if label[u] == nil || u == inst.Dest {
			continue
		}
		for _, v := range inst.G.Succ(u) {
			a := inst.P.Transfer(topo.Edge{U: u, V: v}, label[v])
			if a == nil {
				continue
			}
			if inst.P.Compare(a, label[u]) == 0 {
				fwd[u] = append(fwd[u], v)
			}
		}
	}
	return fwd
}

// Check validates that sol satisfies the SRP solution constraints of
// Figure 4: the destination holds ad, nodes with no offers hold ⊥, and every
// other node holds a minimal received attribute.
func (inst *Instance) Check(sol *Solution) error {
	if len(sol.Label) != inst.G.NumNodes() {
		return fmt.Errorf("label length %d != %d nodes", len(sol.Label), inst.G.NumNodes())
	}
	if !inst.P.Equal(sol.Label[inst.Dest], inst.P.Origin()) {
		return fmt.Errorf("destination %s not labelled with origin attribute",
			inst.G.Name(inst.Dest))
	}
	for _, u := range inst.G.Nodes() {
		if u == inst.Dest {
			continue
		}
		var attrs []Attr
		for _, v := range inst.G.Succ(u) {
			if a := inst.P.Transfer(topo.Edge{U: u, V: v}, sol.Label[v]); a != nil {
				attrs = append(attrs, a)
			}
		}
		lu := sol.Label[u]
		if len(attrs) == 0 {
			if lu != nil {
				return fmt.Errorf("node %s has no offers but label %v", inst.G.Name(u), lu)
			}
			continue
		}
		if lu == nil {
			return fmt.Errorf("node %s has offers but label ⊥", inst.G.Name(u))
		}
		equalsSome := false
		for _, a := range attrs {
			if inst.P.Compare(a, lu) < 0 {
				return fmt.Errorf("node %s is unstable: offer %v preferred over label %v",
					inst.G.Name(u), a, lu)
			}
			if inst.P.Equal(a, lu) {
				equalsSome = true
			}
		}
		if !equalsSome {
			return fmt.Errorf("node %s label %v was never offered", inst.G.Name(u), lu)
		}
	}
	return nil
}

// SolveAll attempts numSeeds randomized activation orders (plus the
// deterministic order) and returns the distinct stable solutions found,
// keyed by forwarding behavior. It is used to explore SRPs with multiple
// solutions, such as the BGP gadget of Figure 2.
func SolveAll(inst *Instance, numSeeds int) []*Solution {
	var out []*Solution
	seen := make(map[string]bool)
	try := func(opts ...Option) {
		sol, err := Solve(inst, opts...)
		if err != nil {
			return
		}
		k := fingerprint(sol)
		if !seen[k] {
			seen[k] = true
			out = append(out, sol)
		}
	}
	try()
	for s := 0; s < numSeeds; s++ {
		try(WithOrder(int64(s)))
	}
	return out
}

func fingerprint(sol *Solution) string {
	b := make([]byte, 0, 64)
	for u, nbrs := range sol.Fwd {
		b = append(b, byte(u), ':')
		for _, v := range nbrs {
			b = append(b, byte(v>>8), byte(v))
		}
		b = append(b, ';')
	}
	return string(b)
}
