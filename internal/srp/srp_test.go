package srp

import (
	"errors"
	"math/rand"
	"testing"

	"bonsai/internal/topo"
)

// hopProto is a minimal shortest-path protocol for solver tests.
type hopProto struct{ limit int }

func (p *hopProto) Name() string { return "hops" }
func (p *hopProto) Origin() Attr { return 0 }
func (p *hopProto) Compare(a, b Attr) int {
	return a.(int) - b.(int)
}
func (p *hopProto) Equal(a, b Attr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.(int) == b.(int)
}
func (p *hopProto) Transfer(e topo.Edge, a Attr) Attr {
	if a == nil {
		return nil
	}
	h := a.(int) + 1
	if p.limit > 0 && h > p.limit {
		return nil
	}
	return h
}

// growProto has no stable solution on any cycle: larger attributes are
// preferred and transfer increments, so two mutually-reachable nodes chase
// each other upward forever (a divergence gadget in the spirit of BGP's bad
// gadget).
type growProto struct{}

func (growProto) Name() string { return "grow" }
func (growProto) Origin() Attr { return 0 }
func (growProto) Compare(a, b Attr) int {
	return b.(int) - a.(int) // bigger is better
}
func (growProto) Equal(a, b Attr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.(int) == b.(int)
}
func (growProto) Transfer(e topo.Edge, a Attr) Attr {
	if a == nil {
		return nil
	}
	return a.(int) + 1
}

func lineGraph(n int) (*topo.Graph, []topo.NodeID) {
	g := topo.New()
	ids := make([]topo.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(string(rune('a'+i/26)) + string(rune('a'+i%26)))
	}
	for i := 1; i < n; i++ {
		g.AddLink(ids[i-1], ids[i])
	}
	return g, ids
}

func TestSolveShortestPaths(t *testing.T) {
	g, ids := lineGraph(6)
	sol, err := Solve(&Instance{G: g, Dest: ids[0], P: &hopProto{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if sol.Label[id].(int) != i {
			t.Fatalf("label[%d] = %v, want %d", i, sol.Label[id], i)
		}
	}
}

func TestSolveRandomGraphsMatchBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(12)
		g := topo.New()
		ids := make([]topo.NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(string(rune('a'+i/26)) + string(rune('a'+i%26)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddLink(ids[i], ids[j])
				}
			}
		}
		dest := ids[rng.Intn(n)]
		sol, err := Solve(&Instance{G: g, Dest: dest, P: &hopProto{}})
		if err != nil {
			t.Fatal(err)
		}
		// Reference BFS distances.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[dest] = 0
		queue := []topo.NodeID{dest}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Succ(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for i, id := range ids {
			want := dist[id]
			if want < 0 {
				if sol.Label[id] != nil {
					t.Fatalf("trial %d: unreachable node %d labelled %v", trial, i, sol.Label[id])
				}
				continue
			}
			if sol.Label[id] == nil || sol.Label[id].(int) != want {
				t.Fatalf("trial %d: label[%d] = %v, want %d", trial, i, sol.Label[id], want)
			}
		}
		// Forwarding must follow decreasing distance.
		for i, id := range ids {
			for _, v := range sol.Fwd[id] {
				if dist[v] != dist[id]-1 {
					t.Fatalf("trial %d: node %d forwards uphill", trial, i)
				}
			}
		}
	}
}

func TestSolveDivergence(t *testing.T) {
	// d - x - y with x and y also connected: x and y improve through each
	// other without bound.
	g := topo.New()
	d, x, y := g.AddNode("d"), g.AddNode("x"), g.AddNode("y")
	g.AddLink(d, x)
	g.AddLink(x, y)
	_, err := Solve(&Instance{G: g, Dest: d, P: growProto{}}, WithMaxSweeps(50))
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestCheckRejectsBadLabelings(t *testing.T) {
	g, ids := lineGraph(4)
	inst := &Instance{G: g, Dest: ids[0], P: &hopProto{}}
	sol, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(sol); err != nil {
		t.Fatal(err)
	}
	// Wrong label value.
	bad := &Solution{Label: append([]Attr(nil), sol.Label...), Fwd: sol.Fwd}
	bad.Label[ids[2]] = 7
	if inst.Check(bad) == nil {
		t.Fatal("wrong label accepted")
	}
	// Missing label.
	bad2 := &Solution{Label: append([]Attr(nil), sol.Label...), Fwd: sol.Fwd}
	bad2.Label[ids[3]] = nil
	if inst.Check(bad2) == nil {
		t.Fatal("dropped label accepted")
	}
	// Wrong destination label.
	bad3 := &Solution{Label: append([]Attr(nil), sol.Label...), Fwd: sol.Fwd}
	bad3.Label[ids[0]] = 5
	if inst.Check(bad3) == nil {
		t.Fatal("wrong origin accepted")
	}
	// Wrong length.
	if inst.Check(&Solution{Label: sol.Label[:2]}) == nil {
		t.Fatal("short labelling accepted")
	}
}

func TestWithOrderReachesSameUniqueSolution(t *testing.T) {
	// Shortest-path SRPs have a unique label solution; every activation
	// order must find it.
	g, ids := lineGraph(8)
	inst := &Instance{G: g, Dest: ids[0], P: &hopProto{}}
	base, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		sol, err := Solve(inst, WithOrder(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := range sol.Label {
			if !inst.P.Equal(sol.Label[i], base.Label[i]) {
				t.Fatalf("seed %d: labels diverge at %d", seed, i)
			}
		}
	}
}

func TestSolveAllDedups(t *testing.T) {
	g, ids := lineGraph(5)
	inst := &Instance{G: g, Dest: ids[0], P: &hopProto{}}
	sols := SolveAll(inst, 16)
	if len(sols) != 1 {
		t.Fatalf("unique-solution SRP reported %d solutions", len(sols))
	}
}

func TestHopLimitCreatesBottom(t *testing.T) {
	g, ids := lineGraph(8)
	sol, err := Solve(&Instance{G: g, Dest: ids[0], P: &hopProto{limit: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Label[ids[4]] == nil || sol.Label[ids[5]] != nil {
		t.Fatalf("hop limit wrong: %v %v", sol.Label[ids[4]], sol.Label[ids[5]])
	}
}

func TestMapAttrDefaultIdentity(t *testing.T) {
	p := &hopProto{}
	if got := MapAttr(p, 3, func(n topo.NodeID) topo.NodeID { return n + 1 }); got.(int) != 3 {
		t.Fatalf("MapAttr changed an attribute without NodeMapper: %v", got)
	}
}
