// Package ec computes destination equivalence classes from a network
// configuration (paper §5.1): because announcements for distinct destination
// prefixes do not interact, the address space is partitioned — via a prefix
// trie — into classes of addresses whose longest-match originated prefix is
// the same, and Bonsai builds one abstraction per class rather than one per
// address.
package ec

import (
	"fmt"
	"iter"
	"net/netip"

	"bonsai/internal/config"
	"bonsai/internal/trie"
)

// Class re-exports trie.Class: a representative prefix plus origin routers.
type Class = trie.Class

// Stream yields the destination equivalence classes of the network lazily,
// one per originated prefix that is the longest match for some address, in
// the same deterministic (address, prefix length) order as Classes. The
// prefix trie is walked on demand, so consumers that stop early — or that
// hand each class straight to a compression worker — never hold the full
// class slice.
func Stream(n *config.Network) iter.Seq[Class] {
	t := trie.New()
	for p, origins := range n.OriginatedPrefixes() {
		for _, o := range origins {
			t.Insert(p, o)
		}
	}
	return t.All()
}

// Classes returns the destination equivalence classes of the network as a
// slice: a thin collector over Stream for callers that index or re-iterate.
func Classes(n *config.Network) []Class {
	var out []Class
	for c := range Stream(n) {
		out = append(out, c)
	}
	return out
}

// ClassFor returns the class owning the given prefix's address, for queries
// that target a specific destination.
func ClassFor(n *config.Network, prefix string) (Class, error) {
	cls := Classes(n)
	for _, c := range cls {
		if c.Prefix.String() == prefix {
			return c, nil
		}
	}
	if p, err := netip.ParsePrefix(prefix); err == nil {
		best, bestBits := Class{}, -1
		for _, c := range cls {
			if c.Prefix.Contains(p.Addr()) && c.Prefix.Bits() > bestBits {
				best, bestBits = c, c.Prefix.Bits()
			}
		}
		if bestBits >= 0 {
			return best, nil
		}
	}
	return Class{}, fmt.Errorf("ec: no destination class for %q", prefix)
}
