package ec

import (
	"net/netip"
	"reflect"
	"testing"

	"bonsai/internal/config"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func demoNet() *config.Network {
	n := config.New("demo")
	a := n.AddRouter("a")
	b := n.AddRouter("b")
	c := n.AddRouter("c")
	n.AddLink("a", "b")
	n.AddLink("b", "c")
	a.Originate = []netip.Prefix{pfx("10.0.0.0/24"), pfx("10.0.1.0/24")}
	b.Originate = []netip.Prefix{pfx("10.1.0.0/16")}
	c.Originate = []netip.Prefix{pfx("0.0.0.0/0")}
	return n
}

func TestClasses(t *testing.T) {
	cls := Classes(demoNet())
	if len(cls) != 4 {
		t.Fatalf("classes = %d, want 4: %+v", len(cls), cls)
	}
	// Sorted by prefix: default route first.
	if cls[0].Prefix != pfx("0.0.0.0/0") || cls[0].Origins[0] != "c" {
		t.Fatalf("first class = %+v", cls[0])
	}
	if cls[1].Prefix != pfx("10.0.0.0/24") || cls[1].Origins[0] != "a" {
		t.Fatalf("second class = %+v", cls[1])
	}
}

func TestClassForExactAndCovering(t *testing.T) {
	n := demoNet()
	cls, err := ClassFor(n, "10.1.0.0/16")
	if err != nil || cls.Origins[0] != "b" {
		t.Fatalf("exact lookup: %+v %v", cls, err)
	}
	// An address inside a's /24 resolves to a's class.
	cls, err = ClassFor(n, "10.0.0.128/32")
	if err != nil || cls.Origins[0] != "a" {
		t.Fatalf("covering lookup: %+v %v", cls, err)
	}
	if _, err := ClassFor(n, "not-a-prefix"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAnycastOrigins(t *testing.T) {
	n := demoNet()
	n.Routers["c"].Originate = append(n.Routers["c"].Originate, pfx("10.0.0.0/24"))
	cls := Classes(n)
	for _, c := range cls {
		if c.Prefix == pfx("10.0.0.0/24") {
			if len(c.Origins) != 2 {
				t.Fatalf("anycast origins = %v", c.Origins)
			}
			return
		}
	}
	t.Fatal("class missing")
}

// TestStreamMatchesClasses proves the lazy enumeration yields exactly the
// eager slice, in order, and that early termination stops the walk.
func TestStreamMatchesClasses(t *testing.T) {
	n := demoNet()
	want := Classes(n)
	var got []Class
	for c := range Stream(n) {
		got = append(got, c)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stream != Classes:\n got %+v\nwant %+v", got, want)
	}
	seen := 0
	for range Stream(n) {
		seen++
		if seen == 2 {
			break
		}
	}
	if seen != 2 {
		t.Fatalf("early stop consumed %d", seen)
	}
}
