// Package dataplane derives forwarding state from SRP solutions and checks
// the path properties that CP-equivalence preserves (paper §4.4):
// reachability, path length, black holes, multipath consistency,
// waypointing and routing loops. ACLs drop traffic on edges without
// affecting routing, mirroring §6.
package dataplane

import (
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// FIB is the forwarding state of one destination class: for every node the
// forwarding edges chosen by the control plane, with ACL verdicts applied to
// traffic (not to routes).
type FIB struct {
	G    *topo.Graph
	Dest topo.NodeID
	// Next[u] lists u's forwarding next hops (possibly several under
	// multipath).
	Next [][]topo.NodeID
	// Blocked marks edges whose ACL drops traffic to this destination.
	Blocked map[topo.Edge]bool
	// HasRoute[u] reports a non-⊥ control plane label at u.
	HasRoute []bool
}

// New builds a FIB from a solved SRP. aclPermit reports whether traffic may
// be forwarded across edge (u, v); nil permits everything.
func New(inst *srp.Instance, sol *srp.Solution, aclPermit func(u, v topo.NodeID) bool) *FIB {
	f := &FIB{
		G:        inst.G,
		Dest:     inst.Dest,
		Next:     sol.Fwd,
		Blocked:  make(map[topo.Edge]bool),
		HasRoute: make([]bool, inst.G.NumNodes()),
	}
	for _, u := range inst.G.Nodes() {
		f.HasRoute[u] = sol.Label[u] != nil
		if aclPermit == nil {
			continue
		}
		for _, v := range sol.Fwd[u] {
			if !aclPermit(u, v) {
				f.Blocked[topo.Edge{U: u, V: v}] = true
			}
		}
	}
	return f
}

// usable reports whether traffic at u progresses to v.
func (f *FIB) usable(u, v topo.NodeID) bool {
	return !f.Blocked[topo.Edge{U: u, V: v}]
}

// Reachable reports whether traffic from src can reach the destination
// along some forwarding path.
func (f *FIB) Reachable(src topo.NodeID) bool {
	if src == f.Dest {
		return true
	}
	seen := make([]bool, f.G.NumNodes())
	stack := []topo.NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range f.Next[u] {
			if !f.usable(u, v) {
				continue
			}
			if v == f.Dest {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// ReachableSet returns, for every node, whether it reaches the destination.
// It runs one reverse traversal instead of per-source walks.
func (f *FIB) ReachableSet() []bool {
	n := f.G.NumNodes()
	// Build reverse forwarding adjacency.
	rev := make([][]topo.NodeID, n)
	for u := 0; u < n; u++ {
		for _, v := range f.Next[u] {
			if f.usable(topo.NodeID(u), v) {
				rev[v] = append(rev[v], topo.NodeID(u))
			}
		}
	}
	out := make([]bool, n)
	out[f.Dest] = true
	stack := []topo.NodeID{f.Dest}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range rev[v] {
			if !out[u] {
				out[u] = true
				stack = append(stack, u)
			}
		}
	}
	return out
}

// HasLoop reports a forwarding loop anywhere in the FIB (e.g. from
// misconfigured static routes).
func (f *FIB) HasLoop() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, f.G.NumNodes())
	var visit func(u topo.NodeID) bool
	visit = func(u topo.NodeID) bool {
		color[u] = gray
		for _, v := range f.Next[u] {
			if !f.usable(u, v) {
				continue
			}
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for _, u := range f.G.Nodes() {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// BlackHoles returns the nodes where traffic can arrive but is dropped:
// they either have no route, or all their forwarding edges are ACL-blocked.
func (f *FIB) BlackHoles() []topo.NodeID {
	var out []topo.NodeID
	for _, u := range f.G.Nodes() {
		if u == f.Dest {
			continue
		}
		usable := 0
		for _, v := range f.Next[u] {
			if f.usable(u, v) {
				usable++
			}
		}
		if usable == 0 {
			out = append(out, u)
		}
	}
	return out
}

// PathLengths returns the minimum and maximum forwarding path length from
// src to the destination, and ok=false if no path exists. Loops make the
// maximum unbounded; maxOK is false in that case.
func (f *FIB) PathLengths(src topo.NodeID) (minLen, maxLen int, ok, maxOK bool) {
	type state struct {
		u     topo.NodeID
		depth int
	}
	// BFS for min.
	minLen = -1
	seen := make([]bool, f.G.NumNodes())
	queue := []state{{src, 0}}
	seen[src] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.u == f.Dest {
			minLen = s.depth
			break
		}
		for _, v := range f.Next[s.u] {
			if f.usable(s.u, v) && !seen[v] {
				seen[v] = true
				queue = append(queue, state{v, s.depth + 1})
			}
		}
	}
	if minLen < 0 {
		return 0, 0, false, false
	}
	// Longest path via DFS with cycle detection (forwarding DAGs are small).
	onPath := make([]bool, f.G.NumNodes())
	cyclic := false
	var dfs func(u topo.NodeID) int
	dfs = func(u topo.NodeID) int {
		if u == f.Dest {
			return 0
		}
		onPath[u] = true
		best := -1
		for _, v := range f.Next[u] {
			if !f.usable(u, v) {
				continue
			}
			if onPath[v] {
				cyclic = true
				continue
			}
			if d := dfs(v); d >= 0 && d+1 > best {
				best = d + 1
			}
		}
		onPath[u] = false
		return best
	}
	maxLen = dfs(src)
	return minLen, maxLen, true, !cyclic
}

// MultipathConsistent reports whether traffic from src is consistently
// delivered or consistently dropped: inconsistency means some forwarding
// path reaches the destination while another dies (paper §4.4, Multipath
// Consistency).
func (f *FIB) MultipathConsistent(src topo.NodeID) bool {
	reach := f.ReachableSet()
	if src != f.Dest && !f.HasRoute[src] {
		return true // consistently dropped at the source
	}
	// Walk forward; inconsistency is reaching any node that (a) black-holes
	// or (b) cannot reach the destination, while src itself can.
	if !reach[src] {
		return !f.Reachable(src) // unreachable src is consistent iff nothing gets through
	}
	seen := make([]bool, f.G.NumNodes())
	stack := []topo.NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u != f.Dest && !reach[u] {
			return false
		}
		for _, v := range f.Next[u] {
			if f.usable(u, v) && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return true
}

// Waypointed reports whether every forwarding path from src to the
// destination traverses at least one of the waypoints (paper §4.4).
func (f *FIB) Waypointed(src topo.NodeID, waypoints map[topo.NodeID]bool) bool {
	if !f.Reachable(src) {
		return true // vacuously: no path escapes the waypoints
	}
	if waypoints[src] || waypoints[f.Dest] {
		return true
	}
	// Is the destination reachable without entering a waypoint?
	seen := make([]bool, f.G.NumNodes())
	stack := []topo.NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range f.Next[u] {
			if !f.usable(u, v) || waypoints[v] {
				continue
			}
			if v == f.Dest {
				return false
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return true
}
