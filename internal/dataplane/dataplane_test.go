package dataplane

import (
	"testing"

	"bonsai/internal/protocols"
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// ripFIB builds a FIB for a small RIP network.
func ripFIB(t *testing.T, edges [][2]string, dest string, acl func(u, v topo.NodeID) bool) (*FIB, *topo.Graph) {
	t.Helper()
	g := topo.New()
	for _, e := range edges {
		a, b := g.AddNode(e[0]), g.AddNode(e[1])
		g.AddLink(a, b)
	}
	inst := &srp.Instance{G: g, Dest: g.MustLookup(dest), P: &protocols.RIP{}}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	return New(inst, sol, acl), g
}

func TestReachability(t *testing.T) {
	f, g := ripFIB(t, [][2]string{{"a", "b"}, {"b", "d"}, {"c", "c2"}}, "d", nil)
	if !f.Reachable(g.MustLookup("a")) {
		t.Fatal("a should reach d")
	}
	if f.Reachable(g.MustLookup("c")) {
		t.Fatal("disconnected c should not reach d")
	}
	rs := f.ReachableSet()
	if !rs[g.MustLookup("b")] || rs[g.MustLookup("c2")] {
		t.Fatal("ReachableSet disagrees with Reachable")
	}
	if !rs[g.MustLookup("d")] {
		t.Fatal("dest must be in its own reachable set")
	}
}

func TestACLBlocksTraffic(t *testing.T) {
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, b)
	g.AddLink(b, d)
	inst := &srp.Instance{G: g, Dest: d, P: &protocols.RIP{}}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	f := New(inst, sol, func(u, v topo.NodeID) bool { return !(u == b && v == d) })
	// Routing still works (b has a route) but traffic is dropped.
	if !f.HasRoute[b] {
		t.Fatal("ACL must not remove routes")
	}
	if f.Reachable(a) || f.Reachable(b) {
		t.Fatal("ACL should block traffic through b->d")
	}
	bh := f.BlackHoles()
	found := false
	for _, u := range bh {
		if u == b {
			found = true
		}
	}
	if !found {
		t.Fatalf("b should be a black hole, got %v", bh)
	}
}

func TestLoopDetection(t *testing.T) {
	// Static-route loop a <-> b.
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, b)
	g.AddLink(b, a)
	g.AddLink(b, d)
	p := &protocols.Static{Routes: map[topo.Edge]bool{
		{U: a, V: b}: true,
		{U: b, V: a}: true,
	}}
	inst := &srp.Instance{G: g, Dest: d, P: p}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	f := New(inst, sol, nil)
	if !f.HasLoop() {
		t.Fatal("static loop not detected")
	}
	if f.Reachable(a) {
		t.Fatal("looping traffic must not count as reachable")
	}
	// Loop-free network reports no loop.
	f2, _ := ripFIB(t, [][2]string{{"a", "b"}, {"b", "d"}}, "d", nil)
	if f2.HasLoop() {
		t.Fatal("false loop")
	}
}

func TestPathLengths(t *testing.T) {
	// Diamond: a-b-d and a-c-d (equal) plus a long tail a-e-f-d... RIP
	// picks shortest so max == min == 2 here.
	f, g := ripFIB(t, [][2]string{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}}, "d", nil)
	mn, mx, ok, maxOK := f.PathLengths(g.MustLookup("a"))
	if !ok || !maxOK || mn != 2 || mx != 2 {
		t.Fatalf("lengths = %d..%d ok=%v maxOK=%v", mn, mx, ok, maxOK)
	}
	if _, _, ok, _ := f.PathLengths(g.MustLookup("d")); !ok {
		t.Fatal("dest should reach itself with length 0")
	}
}

func TestMultipathConsistency(t *testing.T) {
	// a multipaths to b and c; c's onward edge is ACL-blocked: inconsistent.
	g := topo.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddLink(a, b)
	g.AddLink(a, c)
	g.AddLink(b, d)
	g.AddLink(c, d)
	inst := &srp.Instance{G: g, Dest: d, P: &protocols.RIP{}}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	blocked := New(inst, sol, func(u, v topo.NodeID) bool { return !(u == c && v == d) })
	if blocked.MultipathConsistent(a) {
		t.Fatal("half-blocked multipath should be inconsistent")
	}
	clean := New(inst, sol, nil)
	if !clean.MultipathConsistent(a) {
		t.Fatal("clean multipath reported inconsistent")
	}
}

func TestWaypointing(t *testing.T) {
	// All traffic from a passes b (chain a-b-d).
	f, g := ripFIB(t, [][2]string{{"a", "b"}, {"b", "d"}}, "d", nil)
	wp := map[topo.NodeID]bool{g.MustLookup("b"): true}
	if !f.Waypointed(g.MustLookup("a"), wp) {
		t.Fatal("chain must be waypointed through b")
	}
	// Diamond: a can bypass b via c.
	f2, g2 := ripFIB(t, [][2]string{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}}, "d", nil)
	wp2 := map[topo.NodeID]bool{g2.MustLookup("b"): true}
	if f2.Waypointed(g2.MustLookup("a"), wp2) {
		t.Fatal("diamond is not waypointed through b alone")
	}
	wpBoth := map[topo.NodeID]bool{g2.MustLookup("b"): true, g2.MustLookup("c"): true}
	if !f2.Waypointed(g2.MustLookup("a"), wpBoth) {
		t.Fatal("diamond must be waypointed through {b, c}")
	}
}

func TestBlackHolesNoRoute(t *testing.T) {
	f, g := ripFIB(t, [][2]string{{"a", "b"}, {"b", "d"}, {"x", "a"}}, "d", nil)
	_ = g
	bhs := f.BlackHoles()
	// x has a route (via a); nobody black-holes in this connected chain.
	if len(bhs) != 0 {
		t.Fatalf("unexpected black holes: %v", bhs)
	}
}
