// Package topo provides the directed graph used as the topology component of
// a Stable Routing Problem (paper §3.1: G = (V, E, d)). Vertices carry names
// so that compressed networks remain human-readable; edges are directed, and
// an SRP edge (u, v) means "u may learn routes from v".
package topo

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a vertex within one Graph.
type NodeID int

// Edge is a directed edge (U learns from V).
type Edge struct {
	U, V NodeID
}

// Graph is a directed graph with named vertices. The zero value is an empty
// graph ready to use.
type Graph struct {
	names []string
	index map[string]NodeID
	succ  [][]NodeID // succ[u] = nodes u has edges to (u learns from them)
	pred  [][]NodeID
	edges map[Edge]bool
	// edgeList memoises Edges(): hot paths (refinement, assembly, instance
	// construction) iterate the sorted edge list far more often than the
	// graph mutates. Atomic so concurrent readers of a finished graph can
	// populate the cache without a data race; mutations clear it.
	edgeList atomic.Pointer[[]Edge]
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]NodeID), edges: make(map[Edge]bool)}
}

// AddNode adds a vertex with the given name, or returns the existing one.
func (g *Graph) AddNode(name string) NodeID {
	if id, ok := g.index[name]; ok {
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.index[name] = id
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// Lookup returns the vertex with the given name.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.index[name]
	return id, ok
}

// MustLookup returns the vertex with the given name or panics.
func (g *Graph) MustLookup(name string) NodeID {
	id, ok := g.index[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return id
}

// Name returns the name of vertex u.
func (g *Graph) Name(u NodeID) string { return g.names[u] }

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumLinks returns the number of undirected links, counting a pair of
// antiparallel directed edges as one link and a lone directed edge as one.
func (g *Graph) NumLinks() int {
	n := 0
	for e := range g.edges {
		if e.U < e.V || !g.edges[Edge{e.V, e.U}] {
			n++
		}
	}
	return n
}

// AddEdge inserts the directed edge (u, v). Self loops are rejected because
// well-formed SRPs are self-loop-free (paper §3.1).
func (g *Graph) AddEdge(u, v NodeID) {
	if u == v {
		panic(fmt.Sprintf("topo: self loop at %s", g.names[u]))
	}
	e := Edge{u, v}
	if g.edges[e] {
		return
	}
	g.edges[e] = true
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.edgeList.Store(nil)
}

// AddLink inserts both directed edges between u and v.
func (g *Graph) AddLink(u, v NodeID) {
	g.AddEdge(u, v)
	g.AddEdge(v, u)
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.edges[Edge{u, v}] }

// Succ returns the vertices u has edges to. The caller must not modify it.
func (g *Graph) Succ(u NodeID) []NodeID { return g.succ[u] }

// Pred returns the vertices with edges to u. The caller must not modify it.
func (g *Graph) Pred(u NodeID) []NodeID { return g.pred[u] }

// Edges returns all directed edges in deterministic order. The returned
// slice is shared (memoised until the next mutation) — callers must not
// modify it.
func (g *Graph) Edges() []Edge {
	if p := g.edgeList.Load(); p != nil {
		return *p
	}
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	g.edgeList.Store(&out)
	return out
}

// Nodes returns all vertex IDs in order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, len(g.names))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{%d nodes, %d edges}", g.NumNodes(), g.NumEdges())
	return b.String()
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := New()
	for _, name := range g.names {
		h.AddNode(name)
	}
	for e := range g.edges {
		h.AddEdge(e.U, e.V)
	}
	return h
}
