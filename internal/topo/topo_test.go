package topo

import "testing"

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if g.AddNode("a") != a {
		t.Fatal("AddNode not idempotent")
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	if g.Name(a) != "a" {
		t.Fatalf("Name = %q", g.Name(a))
	}
}

func TestEdges(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b)
	g.AddEdge(a, b) // duplicate ignored
	g.AddLink(b, c)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", g.NumLinks())
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Fatal("directedness broken")
	}
	if len(g.Succ(a)) != 1 || g.Succ(a)[0] != b {
		t.Fatal("Succ wrong")
	}
	if len(g.Pred(b)) != 2 {
		t.Fatalf("Pred(b) = %v", g.Pred(b))
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self loop did not panic")
		}
	}()
	g := New()
	a := g.AddNode("a")
	g.AddEdge(a, a)
}

func TestEdgesDeterministic(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddLink(a, c)
	g.AddLink(a, b)
	es := g.Edges()
	for i := 1; i < len(es); i++ {
		if es[i-1].U > es[i].U || (es[i-1].U == es[i].U && es[i-1].V >= es[i].V) {
			t.Fatalf("edges not sorted: %v", es)
		}
	}
	if len(es) != 4 {
		t.Fatalf("len = %d", len(es))
	}
	_ = b
}

func TestClone(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddLink(a, b)
	h := g.Clone()
	c := h.AddNode("c")
	h.AddEdge(c, a)
	if g.NumNodes() != 2 || h.NumNodes() != 3 {
		t.Fatal("clone not independent")
	}
	if !h.HasEdge(a, b) {
		t.Fatal("clone missing edge")
	}
}

func TestLookup(t *testing.T) {
	g := New()
	g.AddNode("r1")
	if _, ok := g.Lookup("r2"); ok {
		t.Fatal("found missing node")
	}
	if id := g.MustLookup("r1"); g.Name(id) != "r1" {
		t.Fatal("MustLookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on missing node did not panic")
		}
	}()
	g.MustLookup("nope")
}
