package protocols

import (
	"fmt"

	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// OSPFAttr is the OSPF attribute of §3.2: a path cost plus a flag recording
// whether the route has crossed an area boundary. Intra-area routes are
// preferred over inter-area routes regardless of cost.
type OSPFAttr struct {
	Cost      int
	InterArea bool
}

func (a OSPFAttr) String() string {
	if a.InterArea {
		return fmt.Sprintf("ospf(cost=%d,inter)", a.Cost)
	}
	return fmt.Sprintf("ospf(cost=%d)", a.Cost)
}

// OSPF models the link-state protocol: the transfer function adds the
// configured link cost, and crossing an inter-area edge sets the inter-area
// flag.
type OSPF struct {
	// Cost maps an SRP edge (u, v) to the cost u pays to reach via v.
	// Missing edges default to DefaultCost; edges absent from the OSPF
	// process entirely should not be presented to Transfer.
	Cost map[topo.Edge]int
	// CrossArea marks edges that cross an area boundary.
	CrossArea map[topo.Edge]bool
	// DefaultCost is used for edges missing from Cost (zero means 1).
	DefaultCost int
}

func (p *OSPF) cost(e topo.Edge) int {
	if c, ok := p.Cost[e]; ok {
		return c
	}
	if p.DefaultCost == 0 {
		return 1
	}
	return p.DefaultCost
}

// Name implements srp.Protocol.
func (p *OSPF) Name() string { return "ospf" }

// Origin implements srp.Protocol.
func (p *OSPF) Origin() srp.Attr { return OSPFAttr{Cost: 0} }

// Compare implements srp.Protocol: intra-area first, then lower cost.
func (p *OSPF) Compare(x, y srp.Attr) int {
	a, b := x.(OSPFAttr), y.(OSPFAttr)
	if a.InterArea != b.InterArea {
		if a.InterArea {
			return 1
		}
		return -1
	}
	return a.Cost - b.Cost
}

// Equal implements srp.Protocol.
func (p *OSPF) Equal(x, y srp.Attr) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	return x.(OSPFAttr) == y.(OSPFAttr)
}

// Transfer implements srp.Protocol.
func (p *OSPF) Transfer(e topo.Edge, x srp.Attr) srp.Attr {
	if x == nil {
		return nil
	}
	a := x.(OSPFAttr)
	return OSPFAttr{Cost: a.Cost + p.cost(e), InterArea: a.InterArea || p.CrossArea[e]}
}

// MapNodes implements srp.NodeMapper; OSPF attributes carry no node names.
func (p *OSPF) MapNodes(a srp.Attr, f func(topo.NodeID) topo.NodeID) srp.Attr { return a }
