package protocols

import (
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// Static models static routing (§3.2, Figure 6). The attribute set is the
// single value true; the comparison relation is empty; and the transfer
// function ignores the neighbor's attribute entirely, returning true exactly
// when a static route is configured on the edge. Static routing is
// deliberately spontaneous (Transfer(e, ⊥) may be non-⊥), which is why the
// paper proves its fwd-equivalence separately (Theorem 4.3): static routes
// can form loops.
type Static struct {
	// Routes marks the SRP edges (u, v) on which u has a static route for
	// the destination via v.
	Routes map[topo.Edge]bool
}

// Name implements srp.Protocol.
func (p *Static) Name() string { return "static" }

// Origin implements srp.Protocol.
func (p *Static) Origin() srp.Attr { return true }

// Compare implements srp.Protocol: the order is empty, all attributes tie.
func (p *Static) Compare(a, b srp.Attr) int { return 0 }

// Equal implements srp.Protocol.
func (p *Static) Equal(a, b srp.Attr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.(bool) == b.(bool)
}

// Transfer implements srp.Protocol. Note it does not consult a.
func (p *Static) Transfer(e topo.Edge, a srp.Attr) srp.Attr {
	if p.Routes[e] {
		return true
	}
	return nil
}

// MapNodes implements srp.NodeMapper.
func (p *Static) MapNodes(a srp.Attr, f func(topo.NodeID) topo.NodeID) srp.Attr { return a }
