package protocols

import (
	"testing"

	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// chainGraph builds the Figure 1 topology: a - b1 - d, a - b2 - d.
func chainGraph() (*topo.Graph, topo.NodeID, topo.NodeID, topo.NodeID, topo.NodeID) {
	g := topo.New()
	a, b1, b2, d := g.AddNode("a"), g.AddNode("b1"), g.AddNode("b2"), g.AddNode("d")
	g.AddLink(a, b1)
	g.AddLink(a, b2)
	g.AddLink(b1, d)
	g.AddLink(b2, d)
	return g, a, b1, b2, d
}

func TestRIPFigure1(t *testing.T) {
	g, a, b1, b2, d := chainGraph()
	inst := &srp.Instance{G: g, Dest: d, P: &RIP{}}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	want := map[topo.NodeID]int{d: 0, b1: 1, b2: 1, a: 2}
	for u, w := range want {
		if sol.Label[u].(int) != w {
			t.Fatalf("label[%s] = %v, want %d", g.Name(u), sol.Label[u], w)
		}
	}
	// a forwards to both b1 and b2 (equal cost).
	if len(sol.Fwd[a]) != 2 {
		t.Fatalf("fwd[a] = %v, want both b's", sol.Fwd[a])
	}
	if len(sol.Fwd[b1]) != 1 || sol.Fwd[b1][0] != d {
		t.Fatalf("fwd[b1] = %v", sol.Fwd[b1])
	}
}

func TestRIPHopLimit(t *testing.T) {
	g := topo.New()
	var prev topo.NodeID
	for i := 0; i < 20; i++ {
		u := g.AddNode(string(rune('a' + i)))
		if i > 0 {
			g.AddLink(prev, u)
		}
		prev = u
	}
	d, _ := g.Lookup("a")
	inst := &srp.Instance{G: g, Dest: d, P: &RIP{}}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes at distance >= 16 must have no route.
	far := g.MustLookup(string(rune('a' + 17)))
	if sol.Label[far] != nil {
		t.Fatalf("node beyond hop limit has route %v", sol.Label[far])
	}
	near := g.MustLookup(string(rune('a' + 15)))
	if sol.Label[near] == nil {
		t.Fatal("node at hop 15 lost its route")
	}
}

func TestOSPFCostsAndAreas(t *testing.T) {
	g := topo.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddLink(a, b)
	g.AddLink(b, d)
	g.AddLink(a, c)
	g.AddLink(c, d)
	p := &OSPF{
		Cost: map[topo.Edge]int{
			{U: a, V: b}: 10, {U: b, V: d}: 10, // expensive path
			{U: a, V: c}: 1, {U: c, V: d}: 1, // cheap path
		},
		CrossArea: map[topo.Edge]bool{{U: a, V: c}: true}, // but inter-area
	}
	inst := &srp.Instance{G: g, Dest: d, P: p}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Despite higher cost, a prefers the intra-area path via b.
	la := sol.Label[a].(OSPFAttr)
	if la.InterArea || la.Cost != 20 {
		t.Fatalf("label[a] = %v, want intra cost 20", la)
	}
	if len(sol.Fwd[a]) != 1 || sol.Fwd[a][0] != b {
		t.Fatalf("fwd[a] = %v, want [b]", sol.Fwd[a])
	}
}

func TestBGPFigure5(t *testing.T) {
	// a - b1 - d chain plus b2 attached to both a and d:
	//   b2 prefers the long path through a because a tags announcements
	//   with community 1 and b2 raises local preference on that tag.
	g := topo.New()
	a, b1, b2, d := g.AddNode("a"), g.AddNode("b1"), g.AddNode("b2"), g.AddNode("d")
	g.AddLink(d, b1)
	g.AddLink(b1, a)
	g.AddLink(a, b2)
	g.AddLink(b2, d)

	tag := MakeCommunity(65001, 1)
	export := func(e topo.Edge, at *BGPAttr) *BGPAttr {
		if e.V == a { // a exporting (to anyone): add tag 1
			out := at.Clone()
			out.Comms = out.Comms.With(tag)
			return out
		}
		return at
	}
	imp := func(e topo.Edge, at *BGPAttr) *BGPAttr {
		if e.U == b2 && at.Comms.Has(tag) { // b2 prefers tagged routes
			out := at.Clone()
			out.LP = 200
			return out
		}
		return at
	}
	p := &BGP{Export: export, Import: imp}
	inst := &srp.Instance{G: g, Dest: d, P: p}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	lb2 := sol.Label[b2].(*BGPAttr)
	if lb2.LP != 200 {
		t.Fatalf("b2 LP = %d, want 200", lb2.LP)
	}
	wantPath := []topo.NodeID{a, b1, d}
	if len(lb2.Path) != 3 {
		t.Fatalf("b2 path = %v, want %v", lb2.Path, wantPath)
	}
	for i := range wantPath {
		if lb2.Path[i] != wantPath[i] {
			t.Fatalf("b2 path = %v, want %v", lb2.Path, wantPath)
		}
	}
	if len(sol.Fwd[b2]) != 1 || sol.Fwd[b2][0] != a {
		t.Fatalf("fwd[b2] = %v, want [a]", sol.Fwd[b2])
	}
	la := sol.Label[a].(*BGPAttr)
	if !la.Comms.Equal(NewCommSet()) {
		t.Fatalf("a's own label should carry no tag, got %v", la.Comms)
	}
}

// figure2 builds the BGP gadget of Figure 2(a): b1, b2, b3 all peer with a
// (above) and d (below) and with each other, preferring to route "down"
// through a peer b over going direct... here modelled as in the paper:
// each bi prefers routes through another bi (lp 200) over direct d (lp 100),
// and a sits above all bi.
func figure2() (*topo.Graph, *BGP, topo.NodeID, []topo.NodeID, topo.NodeID) {
	g := topo.New()
	a := g.AddNode("a")
	b1, b2, b3 := g.AddNode("b1"), g.AddNode("b2"), g.AddNode("b3")
	d := g.AddNode("d")
	bs := []topo.NodeID{b1, b2, b3}
	for _, b := range bs {
		g.AddLink(a, b)
		g.AddLink(b, d)
	}
	g.AddLink(b1, b2)
	g.AddLink(b2, b3)
	g.AddLink(b1, b3)
	isB := func(x topo.NodeID) bool { return x == b1 || x == b2 || x == b3 }
	imp := func(e topo.Edge, at *BGPAttr) *BGPAttr {
		if isB(e.U) && isB(e.V) { // bi prefers routes via peer bj
			out := at.Clone()
			out.LP = 200
			return out
		}
		return at
	}
	return g, &BGP{Import: imp}, a, bs, d
}

func TestBGPLoopPreventionGadget(t *testing.T) {
	g, p, a, bs, d := figure2()
	inst := &srp.Instance{G: g, Dest: d, P: p}
	sols := srp.SolveAll(inst, 32)
	if len(sols) == 0 {
		t.Fatal("gadget found no stable solution")
	}
	for _, sol := range sols {
		// Exactly one of the b's must route directly to d; the others
		// route through a peer.
		direct := 0
		for _, b := range bs {
			lb := sol.Label[b].(*BGPAttr)
			if lb.LP == DefaultLocalPref {
				direct++
				if len(sol.Fwd[b]) != 1 || sol.Fwd[b][0] != d {
					t.Fatalf("direct b fwd = %v", sol.Fwd[b])
				}
			}
		}
		if direct != 1 {
			t.Fatalf("want exactly 1 direct-routing b, got %d", direct)
		}
		if sol.Label[a] == nil {
			t.Fatal("a has no route")
		}
	}
	// Multiple distinct stable solutions should be discoverable (one per
	// choice of the direct router).
	if len(sols) < 2 {
		t.Logf("note: only %d distinct solutions found (order-dependent)", len(sols))
	}
}

func TestBGPWithoutLoopPreventionDiverges(t *testing.T) {
	// The same gadget without loop prevention has no stable solution of
	// this shape in bounded time: every b always prefers a peer, chasing
	// each other forever (BAD GADGET analogue).
	g, p, _, _, d := figure2()
	p.DisableLoopPrevention = true
	inst := &srp.Instance{G: g, Dest: d, P: p}
	_, err := srp.Solve(inst)
	if err == nil {
		t.Skip("gadget converged without loop prevention under this order")
	}
}

func TestStaticRoutes(t *testing.T) {
	g := topo.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddLink(a, b)
	g.AddLink(b, d)
	g.AddLink(c, d)
	p := &Static{Routes: map[topo.Edge]bool{
		{U: a, V: b}: true,
		{U: b, V: d}: true,
	}}
	inst := &srp.Instance{G: g, Dest: d, P: p}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Label[a] == nil || sol.Label[b] == nil {
		t.Fatal("static chain not labelled")
	}
	if sol.Label[c] != nil {
		t.Fatal("c has no static route but got a label")
	}
	if len(sol.Fwd[a]) != 1 || sol.Fwd[a][0] != b {
		t.Fatalf("fwd[a] = %v", sol.Fwd[a])
	}
}

func TestStaticLoopIsStable(t *testing.T) {
	// Misconfigured static routes can loop; the SRP still has a stable
	// solution (the theory must be sound for buggy configs, §4.2).
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, b)
	g.AddLink(b, a)
	g.AddLink(b, d)
	p := &Static{Routes: map[topo.Edge]bool{
		{U: a, V: b}: true,
		{U: b, V: a}: true, // loop a <-> b
	}}
	inst := &srp.Instance{G: g, Dest: d, P: p}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Label[a] == nil || sol.Label[b] == nil {
		t.Fatal("loop nodes must still be labelled")
	}
	if len(sol.Fwd[a]) != 1 || sol.Fwd[a][0] != b || len(sol.Fwd[b]) != 1 || sol.Fwd[b][0] != a {
		t.Fatal("static loop forwarding not reproduced")
	}
}

func TestCommSet(t *testing.T) {
	s := NewCommSet(MakeCommunity(1, 2), MakeCommunity(1, 1), MakeCommunity(1, 2))
	if len(s) != 2 {
		t.Fatalf("dedup failed: %v", s)
	}
	if !s.Has(MakeCommunity(1, 1)) || s.Has(MakeCommunity(9, 9)) {
		t.Fatal("Has wrong")
	}
	s2 := s.With(MakeCommunity(2, 2))
	if len(s) != 2 || len(s2) != 3 {
		t.Fatal("With must not mutate")
	}
	s3 := s2.Without(MakeCommunity(1, 1))
	if s3.Has(MakeCommunity(1, 1)) || len(s2) != 3 {
		t.Fatal("Without wrong")
	}
	if !NewCommSet().Equal(NewCommSet()) {
		t.Fatal("empty sets must be equal")
	}
	if c := MakeCommunity(65001, 3); c.String() != "65001:3" {
		t.Fatalf("String = %s", c.String())
	}
}

func TestMultiProtocolADPreference(t *testing.T) {
	// d - a via both OSPF and BGP; b - a with a static route at b.
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, d)
	g.AddLink(b, a)
	m := &Multi{
		BGP:    &BGP{},
		OSPF:   &OSPF{},
		Static: &Static{Routes: map[topo.Edge]bool{{U: b, V: a}: true}},
		BGPEdges: map[topo.Edge]bool{
			{U: a, V: d}: true, {U: d, V: a}: true,
			{U: b, V: a}: true, {U: a, V: b}: true,
		},
		OSPFEdges: map[topo.Edge]bool{
			{U: a, V: d}: true, {U: d, V: a}: true,
		},
		OriginBGP:  true,
		OriginOSPF: true,
	}
	inst := &srp.Instance{G: g, Dest: d, P: m}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	la := sol.Label[a].(*MultiAttr)
	if la.Best != SrcBGP {
		t.Fatalf("a best = %v, want bgp (AD 20 < OSPF 110)", la.Best)
	}
	if la.OSPF == nil {
		t.Fatal("a should still carry the OSPF route")
	}
	lb := sol.Label[b].(*MultiAttr)
	if lb.Best != SrcStatic {
		t.Fatalf("b best = %v, want static (AD 1)", lb.Best)
	}
	if lb.BGP == nil {
		t.Fatal("b should also have learned the BGP route from a")
	}
}

func TestMultiRedistribution(t *testing.T) {
	// d -ospf- a -bgp- b: without redistribution b learns nothing; with
	// OSPF->BGP redistribution at a, b gets a BGP route.
	g := topo.New()
	a, b, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddLink(a, d)
	g.AddLink(b, a)
	base := func() *Multi {
		return &Multi{
			BGP:        &BGP{},
			OSPF:       &OSPF{},
			Static:     &Static{},
			BGPEdges:   map[topo.Edge]bool{{U: b, V: a}: true, {U: a, V: b}: true},
			OSPFEdges:  map[topo.Edge]bool{{U: a, V: d}: true, {U: d, V: a}: true},
			OriginOSPF: true,
		}
	}
	m := base()
	inst := &srp.Instance{G: g, Dest: d, P: m}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Label[b] != nil {
		t.Fatalf("b should have no route without redistribution, got %v", sol.Label[b])
	}
	m2 := base()
	m2.Redist = func(v topo.NodeID, src RouteSource) bool { return src == SrcOSPF }
	sol2, err := srp.Solve(&srp.Instance{G: g, Dest: d, P: m2})
	if err != nil {
		t.Fatal(err)
	}
	lb := sol2.Label[b]
	if lb == nil || lb.(*MultiAttr).Best != SrcBGP {
		t.Fatalf("b = %v, want redistributed BGP route", lb)
	}
}

func TestBGPMapNodes(t *testing.T) {
	p := &BGP{}
	a := &BGPAttr{LP: 100, Path: []topo.NodeID{3, 2, 1}}
	f := func(n topo.NodeID) topo.NodeID { return n * 10 }
	m := srp.MapAttr(p, a, f).(*BGPAttr)
	if m.Path[0] != 30 || m.Path[2] != 10 {
		t.Fatalf("mapped path = %v", m.Path)
	}
	if a.Path[0] != 3 {
		t.Fatal("MapNodes mutated the input")
	}
	if srp.MapAttr(p, nil, f) != nil {
		t.Fatal("nil must map to nil")
	}
}
