// Package protocols implements SRP protocol models for the routing protocols
// treated in the paper (§3.2): RIP (distance vector), OSPF (link state with
// areas), eBGP (path vector with policy and loop prevention), static routes,
// and the multi-protocol main-RIB combination of §6.
package protocols

import (
	"fmt"

	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// RIP models the distance-vector protocol of §3.2: attributes are hop counts
// in [0, Limit), the comparison prefers fewer hops, and the transfer
// function increments the hop count and drops routes at the limit.
type RIP struct {
	// Limit is the maximum path length; RIP uses 16. Zero means 16.
	Limit int
}

func (r *RIP) limit() int {
	if r.Limit == 0 {
		return 16
	}
	return r.Limit
}

// Name implements srp.Protocol.
func (r *RIP) Name() string { return "rip" }

// Origin implements srp.Protocol: the destination advertises hop count 0.
func (r *RIP) Origin() srp.Attr { return 0 }

// Compare implements srp.Protocol: fewer hops is better.
func (r *RIP) Compare(a, b srp.Attr) int { return a.(int) - b.(int) }

// Equal implements srp.Protocol.
func (r *RIP) Equal(a, b srp.Attr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.(int) == b.(int)
}

// Transfer implements srp.Protocol: add one hop, drop at the limit.
func (r *RIP) Transfer(e topo.Edge, a srp.Attr) srp.Attr {
	if a == nil {
		return nil
	}
	h := a.(int) + 1
	if h >= r.limit() {
		return nil
	}
	return h
}

// MapNodes implements srp.NodeMapper; RIP attributes carry no node names.
func (r *RIP) MapNodes(a srp.Attr, f func(topo.NodeID) topo.NodeID) srp.Attr { return a }

func (r *RIP) String() string { return fmt.Sprintf("RIP(limit=%d)", r.limit()) }
