package protocols

import (
	"fmt"

	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// RouteSource identifies which protocol produced a RIB entry.
type RouteSource int

// Route sources in increasing default administrative distance.
const (
	SrcNone      RouteSource = iota
	SrcConnected             // the destination's own prefix
	SrcStatic
	SrcBGP
	SrcOSPF
)

func (s RouteSource) String() string {
	switch s {
	case SrcConnected:
		return "connected"
	case SrcStatic:
		return "static"
	case SrcBGP:
		return "bgp"
	case SrcOSPF:
		return "ospf"
	default:
		return "none"
	}
}

// DefaultAD returns the conventional administrative distance of a source
// (Cisco defaults: connected 0, static 1, eBGP 20, OSPF 110).
func DefaultAD(s RouteSource) int {
	switch s {
	case SrcConnected:
		return 0
	case SrcStatic:
		return 1
	case SrcBGP:
		return 20
	case SrcOSPF:
		return 110
	default:
		return 255
	}
}

// MultiAttr is the product attribute of §6: per-protocol routes plus the
// main-RIB winner chosen by administrative distance
// (A = A_BGP × A_OSPF × A_RIB).
type MultiAttr struct {
	BGP    *BGPAttr
	OSPF   *OSPFAttr
	Static bool
	Best   RouteSource
}

func (a *MultiAttr) String() string {
	return fmt.Sprintf("multi(best=%v,bgp=%v,ospf=%v,static=%v)", a.Best, a.BGP, a.OSPF, a.Static)
}

// Multi runs BGP, OSPF and static routing side by side, combining them
// through the main RIB and modelling route redistribution via the transfer
// function, following Batfish's approach as described in §6.
type Multi struct {
	BGP    *BGP
	OSPF   *OSPF
	Static *Static

	// BGPEdges and OSPFEdges give the session/adjacency topology of each
	// protocol; an SRP edge may carry several protocols.
	BGPEdges  map[topo.Edge]bool
	OSPFEdges map[topo.Edge]bool

	// Redist reports whether router v redistributes routes learned from
	// src into BGP (paper §6, route redistribution). nil means never.
	Redist func(v topo.NodeID, src RouteSource) bool

	// OriginSources lists which protocols the destination originates the
	// prefix into; SrcConnected is implied for the RIB winner.
	OriginBGP  bool
	OriginOSPF bool

	// AD overrides administrative distances per source (nil = defaults).
	AD map[RouteSource]int
}

func (p *Multi) ad(s RouteSource) int {
	if p.AD != nil {
		if d, ok := p.AD[s]; ok {
			return d
		}
	}
	return DefaultAD(s)
}

// Name implements srp.Protocol.
func (p *Multi) Name() string { return "multi" }

// Origin implements srp.Protocol: the destination holds a connected route
// and injects the prefix into the configured protocols.
func (p *Multi) Origin() srp.Attr {
	a := &MultiAttr{Best: SrcConnected}
	if p.OriginBGP {
		a.BGP = p.BGP.Origin().(*BGPAttr)
	}
	if p.OriginOSPF {
		o := p.OSPF.Origin().(OSPFAttr)
		a.OSPF = &o
	}
	return a
}

// Compare implements srp.Protocol: administrative distance of the RIB
// winner first, then the winning protocol's own comparison.
func (p *Multi) Compare(x, y srp.Attr) int {
	a, b := x.(*MultiAttr), y.(*MultiAttr)
	da, db := p.ad(a.Best), p.ad(b.Best)
	if da != db {
		return da - db
	}
	if a.Best != b.Best {
		return 0
	}
	switch a.Best {
	case SrcBGP:
		return p.BGP.Compare(a.BGP, b.BGP)
	case SrcOSPF:
		return p.OSPF.Compare(*a.OSPF, *b.OSPF)
	default:
		return 0
	}
}

// Equal implements srp.Protocol.
func (p *Multi) Equal(x, y srp.Attr) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	a, b := x.(*MultiAttr), y.(*MultiAttr)
	if a.Best != b.Best || a.Static != b.Static {
		return false
	}
	if (a.BGP == nil) != (b.BGP == nil) || (a.OSPF == nil) != (b.OSPF == nil) {
		return false
	}
	if a.BGP != nil && !p.BGP.Equal(a.BGP, b.BGP) {
		return false
	}
	if a.OSPF != nil && *a.OSPF != *b.OSPF {
		return false
	}
	return true
}

// Transfer implements srp.Protocol: run each protocol over the edge, then
// recompute the RIB winner by administrative distance.
func (p *Multi) Transfer(e topo.Edge, x srp.Attr) srp.Attr {
	var in *MultiAttr
	if x != nil {
		in = x.(*MultiAttr)
	}
	out := &MultiAttr{}

	// OSPF propagates its own best route over OSPF adjacencies.
	if p.OSPFEdges[e] && in != nil && in.OSPF != nil {
		if r := p.OSPF.Transfer(e, *in.OSPF); r != nil {
			o := r.(OSPFAttr)
			out.OSPF = &o
		}
	}

	// BGP advertises the neighbor's RIB winner: a BGP route if BGP won, or
	// a redistributed route when configured.
	if p.BGPEdges[e] && in != nil {
		var candidate *BGPAttr
		switch {
		case in.Best == SrcBGP || in.Best == SrcConnected:
			candidate = in.BGP
		case in.Best == SrcOSPF && p.Redist != nil && p.Redist(e.V, SrcOSPF):
			candidate = &BGPAttr{LP: DefaultLocalPref}
		case in.Best == SrcStatic && p.Redist != nil && p.Redist(e.V, SrcStatic):
			candidate = &BGPAttr{LP: DefaultLocalPref}
		}
		if candidate != nil {
			if r := p.BGP.Transfer(e, candidate); r != nil {
				out.BGP = r.(*BGPAttr)
			}
		}
	}

	// Static routes are local configuration and spontaneous.
	if p.Static != nil && p.Static.Routes[e] {
		out.Static = true
	}

	out.Best = p.ribWinner(out)
	if out.Best == SrcNone {
		return nil
	}
	return out
}

func (p *Multi) ribWinner(a *MultiAttr) RouteSource {
	best, bestAD := SrcNone, 1<<30
	consider := func(s RouteSource, present bool) {
		if present && p.ad(s) < bestAD {
			best, bestAD = s, p.ad(s)
		}
	}
	consider(SrcStatic, a.Static)
	consider(SrcBGP, a.BGP != nil)
	consider(SrcOSPF, a.OSPF != nil)
	return best
}

// MapNodes implements srp.NodeMapper: only the BGP AS path carries node IDs.
func (p *Multi) MapNodes(x srp.Attr, f func(topo.NodeID) topo.NodeID) srp.Attr {
	if x == nil {
		return nil
	}
	a := x.(*MultiAttr)
	out := &MultiAttr{OSPF: a.OSPF, Static: a.Static, Best: a.Best}
	if a.BGP != nil {
		out.BGP = p.BGP.MapNodes(a.BGP, f).(*BGPAttr)
	}
	return out
}
