package protocols

import (
	"fmt"
	"sort"
	"strings"

	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// Community is a BGP community value, conventionally written asn:tag and
// packed as asn<<16|tag.
type Community uint32

// MakeCommunity packs asn:tag into a Community.
func MakeCommunity(asn, tag uint16) Community {
	return Community(uint32(asn)<<16 | uint32(tag))
}

func (c Community) String() string { return fmt.Sprintf("%d:%d", c>>16, c&0xffff) }

// CommSet is an immutable, sorted, duplicate-free set of communities.
// Treat values as read-only; use With/Without to derive new sets.
type CommSet []Community

// NewCommSet builds a set from arbitrary values.
func NewCommSet(cs ...Community) CommSet {
	out := append(CommSet(nil), cs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, c := range out {
		if i == 0 || c != out[i-1] {
			dedup = append(dedup, c)
		}
	}
	return dedup
}

// Has reports membership.
func (s CommSet) Has(c Community) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= c })
	return i < len(s) && s[i] == c
}

// With returns a new set including c.
func (s CommSet) With(c Community) CommSet {
	if s.Has(c) {
		return s
	}
	return NewCommSet(append(append(CommSet(nil), s...), c)...)
}

// Without returns a new set excluding c.
func (s CommSet) Without(c Community) CommSet {
	if !s.Has(c) {
		return s
	}
	out := make(CommSet, 0, len(s)-1)
	for _, x := range s {
		if x != c {
			out = append(out, x)
		}
	}
	return out
}

// Equal reports set equality.
func (s CommSet) Equal(t CommSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersect returns the elements of s that are also in keep.
func (s CommSet) Intersect(keep func(Community) bool) CommSet {
	out := make(CommSet, 0, len(s))
	for _, c := range s {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

func (s CommSet) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// BGPAttr is the eBGP attribute of §3.2 (Figure 5): a local preference, a
// community set, and the AS path as a list of node IDs (each router runs its
// own AS). The path excludes the holder and lists the sender chain back to
// the destination, most recent hop first.
type BGPAttr struct {
	LP    uint32
	Comms CommSet
	Path  []topo.NodeID
	// FromIBGP marks a route learned over an iBGP session; such routes are
	// not re-advertised to other iBGP peers (paper §6).
	FromIBGP bool
}

// Clone returns a deep copy safe for mutation.
func (a *BGPAttr) Clone() *BGPAttr {
	return &BGPAttr{
		LP:       a.LP,
		Comms:    append(CommSet(nil), a.Comms...),
		Path:     append([]topo.NodeID(nil), a.Path...),
		FromIBGP: a.FromIBGP,
	}
}

// HasLoop reports whether node u already appears on the AS path.
func (a *BGPAttr) HasLoop(u topo.NodeID) bool {
	for _, x := range a.Path {
		if x == u {
			return true
		}
	}
	return false
}

func (a *BGPAttr) String() string {
	return fmt.Sprintf("bgp(lp=%d,comms=%v,path=%v)", a.LP, a.Comms, a.Path)
}

// DefaultLocalPref is the BGP default local preference.
const DefaultLocalPref uint32 = 100

// PolicyFunc transforms an attribute crossing edge e, returning nil to drop
// the route. Implementations must not mutate the argument.
type PolicyFunc func(e topo.Edge, a *BGPAttr) *BGPAttr

// BGP models eBGP. For an SRP edge e = (u, v) (u learns from v), Transfer
// applies, in order: loop prevention (reject if u is on the path), the
// sender's Export policy, the AS-path extension with v, and the receiver's
// Import policy. Comparison prefers higher local preference, then shorter
// AS path.
type BGP struct {
	// Export is v's export policy toward u for edge (u, v); nil = permit all.
	Export PolicyFunc
	// Import is u's import policy from v for edge (u, v); nil = permit all.
	Import PolicyFunc
	// DisableLoopPrevention turns off the implicit loop check. The paper's
	// BGP-effective theory exists precisely because this mechanism breaks
	// transfer-equivalence; disabling it is used in tests and ablations.
	DisableLoopPrevention bool
	// OriginComms are communities attached at the destination.
	OriginComms CommSet
	// IBGP marks edges carrying iBGP sessions (same AS on both ends): the
	// AS path is not extended, local preference crosses the session (it is
	// internal), and routes learned from iBGP are not re-advertised to
	// other iBGP peers — the §6 simplification that lets iBGP neighbors
	// compress together.
	IBGP map[topo.Edge]bool
}

// Name implements srp.Protocol.
func (p *BGP) Name() string { return "bgp" }

// Origin implements srp.Protocol: ad = (100, OriginComms, []).
func (p *BGP) Origin() srp.Attr {
	return &BGPAttr{LP: DefaultLocalPref, Comms: p.OriginComms}
}

// Compare implements srp.Protocol: local preference descending, then AS
// path length ascending.
func (p *BGP) Compare(x, y srp.Attr) int {
	a, b := x.(*BGPAttr), y.(*BGPAttr)
	if a.LP != b.LP {
		if a.LP > b.LP {
			return -1
		}
		return 1
	}
	return len(a.Path) - len(b.Path)
}

// Equal implements srp.Protocol.
func (p *BGP) Equal(x, y srp.Attr) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	a, b := x.(*BGPAttr), y.(*BGPAttr)
	if a.LP != b.LP || a.FromIBGP != b.FromIBGP || !a.Comms.Equal(b.Comms) || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// Transfer implements srp.Protocol.
func (p *BGP) Transfer(e topo.Edge, x srp.Attr) srp.Attr {
	if x == nil {
		return nil
	}
	a := x.(*BGPAttr)
	ibgp := p.IBGP[e]
	if ibgp && a.FromIBGP {
		return nil // iBGP-learned routes are not re-advertised over iBGP
	}
	if !p.DisableLoopPrevention && a.HasLoop(e.U) {
		return nil
	}
	cur := a
	if p.Export != nil {
		cur = p.Export(e, cur)
		if cur == nil {
			return nil
		}
	}
	next := cur.Clone()
	if ibgp {
		next.FromIBGP = true
	} else {
		next.Path = append([]topo.NodeID{e.V}, next.Path...)
		next.FromIBGP = false
		// LOCAL_PREF is not transitive across eBGP sessions: the receiver
		// starts from the default and only its own import policy may change
		// it. This also makes Theorem 4.4's prefs(v) bound — the values v's
		// own policies can assign — exact for eBGP.
		next.LP = DefaultLocalPref
	}
	if p.Import != nil {
		out := p.Import(e, next)
		if out == nil {
			return nil
		}
		return out
	}
	return next
}

// MapNodes implements srp.NodeMapper: the attribute abstraction h for BGP
// maps the concrete AS path through the topology function f (paper §4.3).
func (p *BGP) MapNodes(x srp.Attr, f func(topo.NodeID) topo.NodeID) srp.Attr {
	if x == nil {
		return nil
	}
	a := x.(*BGPAttr).Clone()
	for i, n := range a.Path {
		a.Path[i] = f(n)
	}
	return a
}
