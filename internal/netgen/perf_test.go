package netgen

import (
	"context"
	"testing"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/config"
)

// TestPerfLarge probes compression cost at the paper's largest sizes. It is
// a smoke test (no assertions beyond success) used to keep the Table 1
// benchmarks honest.
func TestPerfLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("perf probe")
	}
	cases := []struct {
		name string
		net  *config.Network
	}{
		{"fattree30", Fattree(30, PolicyShortestPath)},
		{"ring1000", Ring(1000)},
		{"mesh150", FullMesh(150)},
		{"dc-default", Datacenter(DCOptions{})},
		{"wan-default", WAN(WANOptions{})},
	}
	for _, c := range cases {
		b, err := build.New(c.net)
		if err != nil {
			t.Fatal(err)
		}
		classes := b.Classes()
		start := time.Now()
		comp := b.NewCompiler(true)
		cls := classes[0]
		abs, err := b.Compress(context.Background(), comp, cls)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: nodes=%d links=%d ifaces=%d classes=%d compress1EC=%v -> %d/%d (iter=%d) bdd=%d roles(erased)=%d",
			c.name, b.G.NumNodes(), b.G.NumLinks(), c.net.NumInterfaces(), len(classes),
			time.Since(start), abs.NumAbstractNodes(), abs.NumAbstractEdges(),
			abs.Iterations, comp.M.Size(), b.RoleCount(true, false))
	}
}
