package netgen

import (
	"fmt"
	"net/netip"

	"bonsai/internal/config"
	"bonsai/internal/policy"
)

// DCOptions sizes the datacenter stand-in. The defaults are calibrated to
// the published statistics of the paper's operational datacenter (Table 1b):
// 197 routers organised as multiple Clos-like clusters, ~1.3k destination
// equivalence classes, eBGP with private AS numbers, extensive use of
// communities (many set but never matched), static routes, ACLs, and a
// large number of virtual interfaces per physical link.
type DCOptions struct {
	Clusters        int // Clos-like clusters (default 9)
	SpinesPerClus   int // spine routers per cluster (default 4)
	LeavesPerClus   int // leaf routers per cluster (default 16)
	Cores           int // core routers joining clusters (default 16)
	Borders         int // border routers (default 1)
	PrefixesPerLeaf int // originated prefixes per leaf (default 9)
	VirtualIfaces   int // VLAN subinterfaces per physical link (default 6)
	StaticPatterns  int // distinct leaf static-route patterns (default 18)
	TagGroups       int // distinct unused-tag variants (default 88)
}

func (o *DCOptions) defaults() {
	if o.Clusters == 0 {
		o.Clusters = 9
	}
	if o.SpinesPerClus == 0 {
		o.SpinesPerClus = 4
	}
	if o.LeavesPerClus == 0 {
		o.LeavesPerClus = 16
	}
	if o.Cores == 0 {
		o.Cores = 16
	}
	if o.Borders == 0 {
		o.Borders = 1
	}
	if o.PrefixesPerLeaf == 0 {
		o.PrefixesPerLeaf = 9
	}
	if o.VirtualIfaces == 0 {
		o.VirtualIfaces = 6
	}
	if o.StaticPatterns == 0 {
		o.StaticPatterns = 18
	}
	if o.TagGroups == 0 {
		o.TagGroups = 88
	}
}

// Datacenter generates the operational-datacenter stand-in.
func Datacenter(opts DCOptions) *config.Network {
	opts.defaults()
	n := config.New("datacenter")
	var alloc prefixAlloc
	asn := 64512

	nextASN := func() int {
		asn++
		return asn
	}

	cores := make([]string, opts.Cores)
	for i := range cores {
		cores[i] = fmt.Sprintf("core-%02d", i)
		n.AddRouter(cores[i]).EnsureBGP(nextASN())
	}
	borders := make([]string, opts.Borders)
	for i := range borders {
		borders[i] = fmt.Sprintf("border-%02d", i)
		r := n.AddRouter(borders[i])
		r.EnsureBGP(nextASN())
		r.Originate = append(r.Originate, netip.MustParsePrefix("0.0.0.0/0"))
		for _, c := range cores {
			n.AddLinkN(borders[i], c, opts.VirtualIfaces)
			peer(n, borders[i], c)
		}
		// Border ACL: block a management prefix from leaving.
		r.Env.ACLs["MGMT"] = &policy.ACL{Name: "MGMT", Entries: []policy.PrefixEntry{
			{Action: policy.Deny, Prefix: netip.MustParsePrefix("10.255.0.0/16"), Ge: 16, Le: 32},
			{Action: policy.Permit, Prefix: netip.MustParsePrefix("0.0.0.0/0"), Ge: 0, Le: 32},
		}}
		for _, c := range cores {
			r.IfaceACL[c] = "MGMT"
		}
	}

	leafGlobal := 0
	allLeafPrefixes := make(map[int][]netip.Prefix) // cluster -> prefixes
	for cl := 0; cl < opts.Clusters; cl++ {
		spines := make([]string, opts.SpinesPerClus)
		for s := range spines {
			spines[s] = fmt.Sprintf("spine-%d-%d", cl, s)
			r := n.AddRouter(spines[s])
			r.EnsureBGP(nextASN())
			for _, c := range cores {
				n.AddLinkN(spines[s], c, opts.VirtualIfaces)
				peer(n, spines[s], c)
			}
			// Spines attach an unused community to exported routes; the
			// tag varies per cluster and is never matched anywhere,
			// producing the paper's inflated pre-erasure role count.
			tagMap := fmt.Sprintf("TAG-%d", cl%opts.TagGroups)
			r.Env.RouteMaps[tagMap] = &policy.RouteMap{Name: tagMap, Clauses: []policy.Clause{
				{Seq: 10, Action: policy.Permit, Sets: []policy.Set{
					{Kind: policy.AddCommunity, Comm: unusedTag(cl % opts.TagGroups)},
				}},
			}}
			for _, nb := range r.BGP.Neighbors {
				nb.ExportMap = tagMap
			}
		}
		for lf := 0; lf < opts.LeavesPerClus; lf++ {
			name := fmt.Sprintf("leaf-%d-%02d", cl, lf)
			r := n.AddRouter(name)
			r.EnsureBGP(nextASN())
			for _, p := range spines {
				n.AddLinkN(name, p, opts.VirtualIfaces)
				peer(n, name, p)
			}
			for k := 0; k < opts.PrefixesPerLeaf; k++ {
				p := alloc.alloc()
				r.Originate = append(r.Originate, p)
				allLeafPrefixes[cl] = append(allLeafPrefixes[cl], p)
			}
			// Unused-tag noise on leaf exports too, varying faster than
			// the cluster so the pre-erasure role count grows further.
			tagMap := fmt.Sprintf("LTAG-%d", leafGlobal%opts.TagGroups)
			r.Env.RouteMaps[tagMap] = &policy.RouteMap{Name: tagMap, Clauses: []policy.Clause{
				{Seq: 10, Action: policy.Permit, Sets: []policy.Set{
					{Kind: policy.AddCommunity, Comm: unusedTag(leafGlobal % opts.TagGroups)},
				}},
			}}
			for _, nb := range r.BGP.Neighbors {
				nb.ExportMap = tagMap
			}
			leafGlobal++
		}
	}

	// Static-route noise: every fifth leaf pins its first originated prefix
	// of a *peer cluster* through one specific spine, in one of
	// StaticPatterns patterns. This is the dominant source of role
	// diversity after tag erasure (paper: 26 roles with statics, 8
	// without).
	leafGlobal = 0
	for cl := 0; cl < opts.Clusters; cl++ {
		for lf := 0; lf < opts.LeavesPerClus; lf++ {
			name := fmt.Sprintf("leaf-%d-%02d", cl, lf)
			if leafGlobal%5 == 0 {
				pattern := leafGlobal % opts.StaticPatterns
				other := (cl + 1 + pattern%opts.Clusters) % opts.Clusters
				if other != cl && len(allLeafPrefixes[other]) > pattern {
					spine := fmt.Sprintf("spine-%d-%d", cl, pattern%opts.SpinesPerClus)
					n.Routers[name].Statics = append(n.Routers[name].Statics, config.StaticRoute{
						Prefix:  allLeafPrefixes[other][pattern],
						NextHop: spine,
					})
				}
			}
			leafGlobal++
		}
	}
	return n
}
