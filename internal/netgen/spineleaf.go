package netgen

import (
	"fmt"

	"bonsai/internal/config"
	"bonsai/internal/policy"
)

// SpineLeafOptions sizes the spine-leaf fabric with external BGP peers at
// the leaves. The shape is deliberately different from the fat-tree: two
// switching tiers only, full bipartite spine<->leaf wiring, and the
// destination classes originate *outside* the fabric on degree-one external
// peer routers — the enterprise-edge pattern (each leaf terminates a few
// customer or server-farm eBGP sessions) rather than the datacenter-core
// one. Every external exports only its own prefixes, so externals never
// provide transit, while the fabric itself is open.
//
// Node count is Spines + Leaves·(1 + ExtPerLeaf); class count is
// Leaves·ExtPerLeaf·PrefixesPerExt. The scenario exercises both reuse
// levels of the streaming pipeline at once: prefixes of one external are
// identity-shared (equal fingerprints — one leader, followers from the
// cache) and distinct externals are related by symmetry transport.
type SpineLeafOptions struct {
	Spines         int // spine tier width (default 4)
	Leaves         int // leaf tier width (default 8)
	ExtPerLeaf     int // external eBGP peers per leaf (default 2)
	PrefixesPerExt int // originated prefixes per external (default 2)
	// PreferExternal installs a local-preference import policy on the
	// leaves favoring externally learned routes, the classic
	// customer-over-peer rule; it makes the class preference-diverse (the
	// adoption lp-gate and BGP case splitting engage).
	PreferExternal bool
}

func (o *SpineLeafOptions) defaults() {
	if o.Spines == 0 {
		o.Spines = 4
	}
	if o.Leaves == 0 {
		o.Leaves = 8
	}
	if o.ExtPerLeaf == 0 {
		o.ExtPerLeaf = 2
	}
	if o.PrefixesPerExt == 0 {
		o.PrefixesPerExt = 2
	}
}

// SpineLeaf generates the spine-leaf fabric with external peers.
func SpineLeaf(opts SpineLeafOptions) *config.Network {
	opts.defaults()
	if opts.Spines < 1 || opts.Leaves < 2 {
		panic("netgen: spine-leaf needs >= 1 spine and >= 2 leaves")
	}
	n := config.New(fmt.Sprintf("spineleaf-%d-%d-%d", opts.Spines, opts.Leaves, opts.ExtPerLeaf))
	var alloc prefixAlloc
	asn := 64512
	nextASN := func() int { asn++; return asn }

	spines := make([]string, opts.Spines)
	for s := range spines {
		spines[s] = fmt.Sprintf("spine-%d", s)
		n.AddRouter(spines[s]).EnsureBGP(nextASN())
	}
	for l := 0; l < opts.Leaves; l++ {
		leaf := fmt.Sprintf("leaf-%d", l)
		lr := n.AddRouter(leaf)
		lr.EnsureBGP(nextASN())
		for _, s := range spines {
			n.AddLink(leaf, s)
			peer(n, leaf, s)
		}
		for x := 0; x < opts.ExtPerLeaf; x++ {
			ext := fmt.Sprintf("ext-%d-%d", l, x)
			xr := n.AddRouter(ext)
			xr.EnsureBGP(nextASN())
			for p := 0; p < opts.PrefixesPerExt; p++ {
				xr.Originate = append(xr.Originate, alloc.alloc())
			}
			n.AddLink(leaf, ext)
			peer(n, leaf, ext)
			originateOnlyOwn(xr)
			if opts.PreferExternal {
				lr.Env.RouteMaps["PREF-EXT"] = &policy.RouteMap{Name: "PREF-EXT", Clauses: []policy.Clause{
					{Seq: 10, Action: policy.Permit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 200}}},
				}}
				lr.BGP.Neighbors[ext].ImportMap = "PREF-EXT"
			}
		}
	}
	return n
}
