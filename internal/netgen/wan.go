package netgen

import (
	"fmt"

	"bonsai/internal/config"
	"bonsai/internal/policy"
)

// WANOptions sizes the wide-area-network stand-in. Defaults calibrate to
// the paper's operational WAN (Table 1b): 1086 devices — a routed backbone
// plus many sites whose access switches run an IGP and reach the world
// through a redistributing gateway — using a mix of eBGP, OSPF and static
// routing, with neighbor-specific prefix-based filters providing most of the
// role diversity. The paper's network also used iBGP; this substitute
// replaces the iBGP overlay with eBGP at the gateways plus OSPF-to-BGP
// redistribution, which exercises the same compression machinery (multi-
// protocol attributes, per-neighbor policy BDDs) without a full iBGP model
// (see DESIGN.md substitutions).
type WANOptions struct {
	Backbone        int // backbone routers in a chorded ring (default 30)
	Sites           int // sites, each one gateway (default 132)
	SwitchesPerSite int // access switches per site (default 7)
}

func (o *WANOptions) defaults() {
	if o.Backbone == 0 {
		o.Backbone = 30
	}
	if o.Sites == 0 {
		o.Sites = 132
	}
	if o.SwitchesPerSite == 0 {
		o.SwitchesPerSite = 7
	}
}

// WAN generates the operational-WAN stand-in.
func WAN(opts WANOptions) *config.Network {
	opts.defaults()
	n := config.New("wan")
	var alloc prefixAlloc
	asn := 64512
	nextASN := func() int { asn++; return asn }

	// Backbone: chorded ring of eBGP routers providing transit.
	bb := make([]string, opts.Backbone)
	for i := range bb {
		bb[i] = fmt.Sprintf("bb-%02d", i)
		n.AddRouter(bb[i]).EnsureBGP(nextASN())
	}
	link := func(a, b string) {
		n.AddLink(a, b)
		peer(n, a, b)
	}
	for i := range bb {
		link(bb[i], bb[(i+1)%opts.Backbone])
	}
	for i := 0; i < opts.Backbone; i += 3 {
		j := (i + opts.Backbone/2) % opts.Backbone
		if j != i && j != (i+1)%opts.Backbone {
			link(bb[i], bb[j])
		}
	}

	for s := 0; s < opts.Sites; s++ {
		gw := fmt.Sprintf("gw-%03d", s)
		g := n.AddRouter(gw)
		g.EnsureBGP(nextASN())
		g.BGP.RedistributeOSPF = true
		g.BGP.RedistributeStatic = true

		// Dual-homed to two adjacent backbone routers.
		a := bb[s%opts.Backbone]
		b := bb[(s+1)%opts.Backbone]
		n.AddLink(gw, a)
		n.AddLink(gw, b)
		peer(n, gw, a)
		peer(n, gw, b)

		// Site interior: OSPF star of access switches; each switch
		// originates one prefix and also carries a static default toward
		// the gateway (common operational practice, and it exercises
		// static routing at scale).
		gOSPF := g.EnsureOSPF()
		sitePrefixes := []policy.PrefixEntry{}
		for w := 0; w < opts.SwitchesPerSite; w++ {
			sw := fmt.Sprintf("sw-%03d-%d", s, w)
			r := n.AddRouter(sw)
			n.AddLink(sw, gw)
			cost := 10
			if w%3 == 2 {
				cost = 20 // a slower uplink variant
			}
			r.EnsureOSPF().Ifaces[gw] = config.OSPFIface{Cost: cost, Area: s + 1}
			gOSPF.Ifaces[sw] = config.OSPFIface{Cost: cost, Area: s + 1}
			p := alloc.alloc()
			r.Originate = append(r.Originate, p)
			sitePrefixes = append(sitePrefixes, policy.PrefixEntry{Action: policy.Permit, Prefix: p})
			r.Statics = append(r.Statics, config.StaticRoute{
				Prefix:  mustPrefix("0.0.0.0/0"),
				NextHop: gw,
			})
		}

		// Neighbor-specific prefix filter: the gateway only exports its own
		// site's prefixes to the backbone. Because every site's prefix set
		// differs, nearly every gateway is a distinct role — the dominant
		// source of the paper's 137 WAN roles.
		g.Env.PrefixLists["SITE"] = &policy.PrefixList{Name: "SITE", Entries: sitePrefixes}
		g.Env.RouteMaps["EXPORT-SITE"] = &policy.RouteMap{Name: "EXPORT-SITE", Clauses: []policy.Clause{
			{Seq: 10, Action: policy.Permit, Matches: []policy.Match{{Kind: policy.MatchPrefix, Arg: "SITE"}}},
		}}
		for _, nb := range g.BGP.Neighbors {
			nb.ExportMap = "EXPORT-SITE"
		}
	}
	return n
}
