package netgen

import (
	"context"
	"testing"

	"bonsai/internal/build"
	"bonsai/internal/ec"
	"bonsai/internal/equiv"
	"bonsai/internal/srp"
)

func compressFirstClass(t *testing.T, b *build.Builder) (*srp.Instance, *srp.Instance, int, int) {
	t.Helper()
	classes := b.Classes()
	if len(classes) == 0 {
		t.Fatal("no destination classes")
	}
	cls := classes[0]
	comp := b.NewCompiler(true)
	abs, err := b.Compress(context.Background(), comp, cls)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := b.Instance(cls)
	if err != nil {
		t.Fatal(err)
	}
	abst, err := b.AbstractInstance(cls, abs)
	if err != nil {
		t.Fatal(err)
	}
	if err := equiv.CheckAcrossSolutions(conc, abst, abs, 4); err != nil {
		t.Fatalf("CP-equivalence violated: %v", err)
	}
	return conc, abst, abs.NumAbstractNodes(), abs.NumAbstractEdges()
}

func TestFattreeShape(t *testing.T) {
	n := Fattree(4, PolicyShortestPath)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.G.NumNodes(); got != 20 { // 5k²/4 with k=4
		t.Fatalf("nodes = %d, want 20", got)
	}
	if got := len(ec.Classes(n)); got != 8 { // k²/2 edge routers
		t.Fatalf("classes = %d, want 8", got)
	}
	_, _, nodes, edges := compressFirstClass(t, b)
	if nodes != 6 {
		t.Fatalf("fattree abstract nodes = %d, want 6 (Table 1a)", nodes)
	}
	if edges != 5 {
		t.Fatalf("fattree abstract links = %d, want 5", edges)
	}
}

func TestFattreePreferBottomIsLarger(t *testing.T) {
	sp := Fattree(4, PolicyShortestPath)
	pb := Fattree(4, PolicyPreferBottom)
	bs, err := build.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := build.New(pb)
	if err != nil {
		t.Fatal(err)
	}
	clsS, clsP := bs.Classes()[0], bp.Classes()[0]
	absS, err := bs.Compress(context.Background(), bs.NewCompiler(true), clsS)
	if err != nil {
		t.Fatal(err)
	}
	absP, err := bp.Compress(context.Background(), bp.NewCompiler(true), clsP)
	if err != nil {
		t.Fatal(err)
	}
	if absP.NumAbstractNodes() <= absS.NumAbstractNodes() {
		t.Fatalf("prefer-bottom abstraction (%d) should exceed shortest-path (%d), Figure 11",
			absP.NumAbstractNodes(), absS.NumAbstractNodes())
	}
}

func TestRingShape(t *testing.T) {
	n := Ring(10)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ec.Classes(n)); got != 10 {
		t.Fatalf("classes = %d, want 10", got)
	}
	_, _, nodes, edges := compressFirstClass(t, b)
	if nodes != 6 { // n/2 + 1
		t.Fatalf("ring abstract nodes = %d, want 6", nodes)
	}
	if edges != 5 {
		t.Fatalf("ring abstract links = %d, want 5", edges)
	}
}

func TestFullMeshShape(t *testing.T) {
	n := FullMesh(6)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	_, _, nodes, edges := compressFirstClass(t, b)
	if nodes != 2 || edges != 1 {
		t.Fatalf("mesh abstraction = %d nodes / %d links, want 2/1 (Table 1a)", nodes, edges)
	}
}

func tinyDC() DCOptions {
	return DCOptions{
		Clusters: 3, SpinesPerClus: 2, LeavesPerClus: 4, Cores: 2, Borders: 1,
		PrefixesPerLeaf: 2, VirtualIfaces: 3, StaticPatterns: 4, TagGroups: 5,
	}
}

func TestDatacenterBuilds(t *testing.T) {
	n := Datacenter(tinyDC())
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	// 3*(2+4) + 2 + 1 routers.
	if got := b.G.NumNodes(); got != 21 {
		t.Fatalf("nodes = %d, want 21", got)
	}
	// Virtual interfaces multiply interface count.
	if n.NumInterfaces() <= 2*len(n.Links) {
		t.Fatal("virtual interfaces not accounted")
	}
	// Classes: leaves' prefixes plus the border default route.
	if got := len(ec.Classes(n)); got != 3*4*2+1 {
		t.Fatalf("classes = %d, want 25", got)
	}
	compressFirstClass(t, b)
}

func TestDatacenterRoleStructure(t *testing.T) {
	b, err := build.New(Datacenter(tinyDC()))
	if err != nil {
		t.Fatal(err)
	}
	erased := b.RoleCount(true, false)
	full := b.RoleCount(false, false)
	noStatics := b.RoleCount(true, true)
	if full <= erased {
		t.Fatalf("unused-tag erasure must reduce roles: full=%d erased=%d", full, erased)
	}
	if noStatics >= erased {
		t.Fatalf("dropping statics must reduce roles further: erased=%d noStatics=%d", erased, noStatics)
	}
}

func tinyWAN() WANOptions {
	return WANOptions{Backbone: 6, Sites: 4, SwitchesPerSite: 3}
}

func TestWANBuilds(t *testing.T) {
	n := WAN(tinyWAN())
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.G.NumNodes(); got != 6+4+4*3 {
		t.Fatalf("nodes = %d, want 22", got)
	}
	if got := len(ec.Classes(n)); got != 12 {
		t.Fatalf("classes = %d, want 12", got)
	}
	compressFirstClass(t, b)
}

func TestWANMultiProtocolRoutes(t *testing.T) {
	n := WAN(tinyWAN())
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	cls := b.Classes()[0]
	inst, err := b.Instance(cls)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The destination's prefix must be reachable from a remote gateway
	// (via BGP redistribution through the backbone).
	routed := 0
	for _, u := range b.G.Nodes() {
		if sol.Label[u] != nil {
			routed++
		}
	}
	if routed < b.G.NumNodes() {
		t.Fatalf("only %d/%d nodes routed; redistribution or statics broken",
			routed, b.G.NumNodes())
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"odd fattree": func() { Fattree(5, PolicyShortestPath) },
		"tiny ring":   func() { Ring(2) },
		"tiny mesh":   func() { FullMesh(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpineLeafShape(t *testing.T) {
	o := SpineLeafOptions{Spines: 3, Leaves: 4, ExtPerLeaf: 2, PrefixesPerExt: 2}
	n := SpineLeaf(o)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.G.NumNodes(), 3+4*(1+2); got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	if got, want := len(ec.Classes(n)), 4*2*2; got != want {
		t.Fatalf("classes = %d, want %d", got, want)
	}
	// CP equivalence on the first class (the shared gauntlet helper).
	compressFirstClass(t, b)

	// The scenario must exercise both reuse levels: identity sharing
	// within one external peer (equal fingerprints) and symmetry transport
	// across externals — one fresh compression for the whole network.
	comp := b.NewCompiler(true)
	for _, cls := range b.Classes() {
		if _, err := b.Compress(context.Background(), comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	st := b.AbstractionCacheStats()
	if st.Fresh != 1 {
		t.Errorf("fresh compressions = %d, want 1 (transported %d, served %d)",
			st.Fresh, st.Transported, st.Served)
	}
	if st.Served == 0 {
		t.Error("no identity-shared classes; PrefixesPerExt > 1 should share fingerprints")
	}
	if st.Transported == 0 {
		t.Error("no symmetry transports across externals")
	}
}

func TestSpineLeafPreferExternal(t *testing.T) {
	n := SpineLeaf(SpineLeafOptions{Spines: 2, Leaves: 3, ExtPerLeaf: 1, PrefixesPerExt: 1, PreferExternal: true})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	if !b.UsesLocalPref() {
		t.Fatal("PreferExternal did not install a local-preference policy")
	}
	compressFirstClass(t, b)
}
