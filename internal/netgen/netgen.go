// Package netgen generates the evaluation networks of paper §8: the
// synthetic Fattree / Ring / Full-mesh topologies running eBGP shortest-path
// routing with destination-based prefix filters (Table 1a, Figures 11-12),
// and configurable stand-ins for the two operational networks (Table 1b):
// a multi-cluster Clos datacenter with private-AS eBGP, static-route noise,
// unused community tags and ACLs; and a WAN mixing eBGP, OSPF and static
// routing. The operational networks themselves are proprietary; DESIGN.md
// documents how these substitutes preserve the behaviors that matter.
package netgen

import (
	"fmt"
	"net/netip"

	"bonsai/internal/config"
	"bonsai/internal/policy"
	"bonsai/internal/protocols"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// prefixAlloc hands out distinct /24s under 10.0.0.0/8.
type prefixAlloc struct{ next int }

func (a *prefixAlloc) alloc() netip.Prefix {
	if a.next >= 256*256 {
		panic("netgen: prefix space exhausted")
	}
	p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(a.next / 256), byte(a.next % 256), 0}), 24)
	a.next++
	return p
}

// peer establishes a bidirectional all-permit eBGP session over a link.
func peer(n *config.Network, a, b string) {
	n.Routers[a].BGP.Neighbors[b] = &config.Neighbor{}
	n.Routers[b].BGP.Neighbors[a] = &config.Neighbor{}
}

// originateOnlyOwn installs the paper's destination-based prefix filter on a
// router: its export policy toward every peer permits only its own
// originated prefixes, so it never provides transit.
func originateOnlyOwn(r *config.Router) {
	pl := &policy.PrefixList{Name: "OWN"}
	for _, p := range r.Originate {
		pl.Entries = append(pl.Entries, policy.PrefixEntry{Action: policy.Permit, Prefix: p})
	}
	r.Env.PrefixLists["OWN"] = pl
	r.Env.RouteMaps["EXPORT-OWN"] = &policy.RouteMap{Name: "EXPORT-OWN", Clauses: []policy.Clause{
		{Seq: 10, Action: policy.Permit, Matches: []policy.Match{{Kind: policy.MatchPrefix, Arg: "OWN"}}},
	}}
	for _, nb := range r.BGP.Neighbors {
		nb.ExportMap = "EXPORT-OWN"
	}
}

// FattreePolicy selects the routing policy of Figure 11.
type FattreePolicy int

// Policies.
const (
	// PolicyShortestPath routes on AS-path length only.
	PolicyShortestPath FattreePolicy = iota
	// PolicyPreferBottom makes aggregation routers prefer routes learned
	// from the edge (bottom) tier via a higher local preference, enlarging
	// the abstraction (Figure 11, right).
	PolicyPreferBottom
)

// Fattree builds a k-ary fat-tree (k pods, (k/2)² cores, k²/2 aggregation
// and k²/2 edge routers — 5k²/4 nodes total; k=12, 20, 30 give the paper's
// 180, 500 and 1125 nodes). Every router runs its own BGP AS; each edge
// router originates one /24, so there are k²/2 destination equivalence
// classes, matching Table 1a.
func Fattree(k int, pol FattreePolicy) *config.Network {
	if k < 2 || k%2 != 0 {
		panic("netgen: fat-tree arity must be even and >= 2")
	}
	n := config.New(fmt.Sprintf("fattree-%d", k))
	var alloc prefixAlloc
	asn := 64512
	nextASN := func() int { asn++; return asn }

	half := k / 2
	cores := make([]string, half*half)
	for i := range cores {
		cores[i] = fmt.Sprintf("core-%d", i)
		n.AddRouter(cores[i]).EnsureBGP(nextASN())
	}
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			name := fmt.Sprintf("agg-%d-%d", p, a)
			n.AddRouter(name).EnsureBGP(nextASN())
			// Aggregation router a of each pod connects to cores
			// [a*half, (a+1)*half).
			for c := a * half; c < (a+1)*half; c++ {
				n.AddLink(name, cores[c])
				peer(n, name, cores[c])
			}
		}
		for e := 0; e < half; e++ {
			name := fmt.Sprintf("edge-%d-%d", p, e)
			r := n.AddRouter(name)
			r.EnsureBGP(nextASN())
			r.Originate = append(r.Originate, alloc.alloc())
			for a := 0; a < half; a++ {
				agg := fmt.Sprintf("agg-%d-%d", p, a)
				n.AddLink(name, agg)
				peer(n, name, agg)
			}
		}
	}
	// Destination-based prefix filters at the edge: edge routers never
	// provide transit between their aggregation uplinks.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			originateOnlyOwn(n.Routers[fmt.Sprintf("edge-%d-%d", p, e)])
		}
	}
	if pol == PolicyPreferBottom {
		for p := 0; p < k; p++ {
			for a := 0; a < half; a++ {
				agg := n.Routers[fmt.Sprintf("agg-%d-%d", p, a)]
				agg.Env.RouteMaps["PREF-DOWN"] = &policy.RouteMap{Name: "PREF-DOWN", Clauses: []policy.Clause{
					{Seq: 10, Action: policy.Permit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 200}}},
				}}
				for peerName, nb := range agg.BGP.Neighbors {
					if len(peerName) >= 4 && peerName[:4] == "edge" {
						nb.ImportMap = "PREF-DOWN"
					}
				}
			}
		}
	}
	return n
}

// Ring builds a cycle of n eBGP routers, each originating one /24
// (Table 1a, Ring: n destination classes; compression is bounded by the
// diameter because path length must be preserved).
func Ring(n int) *config.Network {
	if n < 3 {
		panic("netgen: ring needs at least 3 nodes")
	}
	net := config.New(fmt.Sprintf("ring-%d", n))
	var alloc prefixAlloc
	asn := 64512
	nextASN := func() int { asn++; return asn }
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("r-%04d", i)
		r := net.AddRouter(names[i])
		r.EnsureBGP(nextASN())
		r.Originate = append(r.Originate, alloc.alloc())
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		net.AddLink(names[i], names[j])
		peer(net, names[i], names[j])
	}
	return net
}

// FullMesh builds a clique of n eBGP routers, each originating one /24 and
// exporting only its own prefix (the destination-based filter), so every
// destination class collapses to two abstract nodes and one link
// (Table 1a, Full Mesh).
func FullMesh(n int) *config.Network {
	if n < 3 {
		panic("netgen: mesh needs at least 3 nodes")
	}
	net := config.New(fmt.Sprintf("mesh-%d", n))
	var alloc prefixAlloc
	asn := 64512
	nextASN := func() int { asn++; return asn }
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("r-%04d", i)
		r := net.AddRouter(names[i])
		r.EnsureBGP(nextASN())
		r.Originate = append(r.Originate, alloc.alloc())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			net.AddLink(names[i], names[j])
			peer(net, names[i], names[j])
		}
	}
	for _, name := range names {
		originateOnlyOwn(net.Routers[name])
	}
	return net
}

// unusedTag returns a community that is set by some routers' policies but
// never matched anywhere, reproducing the role-noise of the paper's
// datacenter network.
func unusedTag(i int) protocols.Community {
	return protocols.MakeCommunity(65000, uint16(1+i%4096))
}
