// Package experiments regenerates the paper's evaluation artifacts
// (Table 1, Figure 11, Figure 12, and the §8 Batfish query) from the
// network generators and the compression pipeline. cmd/bonsai-tables prints
// them as text tables; the repository-root benchmarks wrap them in
// testing.B harnesses. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/config"
	"bonsai/internal/ec"
	"bonsai/internal/netgen"
	"bonsai/internal/verify"
)

// Table1Row is one row of Table 1: concrete size, average abstract size,
// compression ratios, destination classes, and timing split into BDD setup
// and per-class compression, mirroring the paper's columns.
type Table1Row struct {
	Name          string
	Nodes         int
	Links         int
	Ifaces        int
	Classes       int
	SampledECs    int
	AbsNodesAvg   float64
	AbsLinksAvg   float64
	NodeRatio     float64
	LinkRatio     float64
	BDDTime       time.Duration
	CompressPerEC time.Duration
}

func (r Table1Row) String() string {
	return fmt.Sprintf("%-14s %5d/%-6d -> %6.1f/%-7.1f  ratio %6.2fx/%-7.2fx  ECs %5d  bdd %8v  per-EC %8v",
		r.Name, r.Nodes, r.Links, r.AbsNodesAvg, r.AbsLinksAvg,
		r.NodeRatio, r.LinkRatio, r.Classes,
		r.BDDTime.Round(time.Millisecond), r.CompressPerEC.Round(time.Microsecond))
}

// CompressNetwork compresses up to sampleECs destination classes (0 = all,
// stride-sampled for coverage) and aggregates a Table1Row.
func CompressNetwork(name string, net *config.Network, sampleECs int) (Table1Row, error) {
	b, err := build.New(net)
	if err != nil {
		return Table1Row{}, err
	}
	classes := b.Classes()
	sample := strideSample(classes, sampleECs)

	bddStart := time.Now()
	comp := b.NewCompiler(true)
	// Warm the shared BDD tables on one class so per-EC times reflect the
	// amortised steady state, like the paper's separate "BDD time" column.
	// CompressFresh keeps the cross-EC dedup cache out of the row: Table 1
	// reports independent per-EC compression cost (the dedup speedup is
	// measured separately by BenchmarkTable1a*/dedup and bonsai-bench).
	if len(sample) > 0 {
		if _, err := b.CompressFresh(context.Background(), comp, sample[0]); err != nil {
			return Table1Row{}, err
		}
	}
	bddTime := time.Since(bddStart)

	var sumNodes, sumLinks int
	start := time.Now()
	for _, cls := range sample {
		abs, err := b.CompressFresh(context.Background(), comp, cls)
		if err != nil {
			return Table1Row{}, err
		}
		sumNodes += abs.NumAbstractNodes()
		sumLinks += abs.NumAbstractEdges()
	}
	elapsed := time.Since(start)

	n := float64(len(sample))
	row := Table1Row{
		Name:          name,
		Nodes:         b.G.NumNodes(),
		Links:         b.G.NumLinks(),
		Ifaces:        net.NumInterfaces(),
		Classes:       len(classes),
		SampledECs:    len(sample),
		AbsNodesAvg:   float64(sumNodes) / n,
		AbsLinksAvg:   float64(sumLinks) / n,
		BDDTime:       bddTime,
		CompressPerEC: elapsed / time.Duration(len(sample)),
	}
	row.NodeRatio = float64(row.Nodes) / row.AbsNodesAvg
	row.LinkRatio = float64(row.Links) / row.AbsLinksAvg
	return row, nil
}

// Table1Synthetic regenerates Table 1(a). quick shrinks sizes for test and
// CI runs; the full sizes match the paper (fattree 180/500/1125 nodes, ring
// 100/500/1000, mesh 50/150/250).
func Table1Synthetic(quick bool) ([]Table1Row, error) {
	type entry struct {
		name   string
		net    *config.Network
		sample int
	}
	var entries []entry
	if quick {
		entries = []entry{
			{"fattree-45", netgen.Fattree(6, netgen.PolicyShortestPath), 6},
			{"fattree-80", netgen.Fattree(8, netgen.PolicyShortestPath), 6},
			{"ring-20", netgen.Ring(20), 6},
			{"ring-60", netgen.Ring(60), 6},
			{"mesh-10", netgen.FullMesh(10), 6},
			{"mesh-30", netgen.FullMesh(30), 6},
		}
	} else {
		entries = []entry{
			{"fattree-180", netgen.Fattree(12, netgen.PolicyShortestPath), 16},
			{"fattree-500", netgen.Fattree(20, netgen.PolicyShortestPath), 8},
			{"fattree-1125", netgen.Fattree(30, netgen.PolicyShortestPath), 4},
			{"ring-100", netgen.Ring(100), 8},
			{"ring-500", netgen.Ring(500), 4},
			{"ring-1000", netgen.Ring(1000), 2},
			{"mesh-50", netgen.FullMesh(50), 8},
			{"mesh-150", netgen.FullMesh(150), 4},
			{"mesh-250", netgen.FullMesh(250), 2},
		}
	}
	out := make([]Table1Row, 0, len(entries))
	for _, e := range entries {
		row, err := CompressNetwork(e.name, e.net, e.sample)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// RealNetworkRow extends Table1Row with the role statistics reported for
// the operational networks in §8.
type RealNetworkRow struct {
	Table1Row
	RolesFull      int // without unused-tag erasure (paper DC: 112)
	RolesErased    int // with erasure (paper DC: 26)
	RolesNoStatics int // erasure + ignoring statics (paper DC: 8)
}

// Table1Real regenerates Table 1(b) on the operational-network stand-ins.
func Table1Real(quick bool) ([]RealNetworkRow, error) {
	dcOpts, wanOpts := netgen.DCOptions{}, netgen.WANOptions{}
	sample := 12
	if quick {
		dcOpts = netgen.DCOptions{
			Clusters: 3, SpinesPerClus: 2, LeavesPerClus: 4, Cores: 2, Borders: 1,
			PrefixesPerLeaf: 2, VirtualIfaces: 3, StaticPatterns: 4, TagGroups: 5,
		}
		wanOpts = netgen.WANOptions{Backbone: 6, Sites: 6, SwitchesPerSite: 3}
		sample = 6
	}
	var out []RealNetworkRow
	for _, e := range []struct {
		name string
		net  *config.Network
	}{
		{"datacenter", netgen.Datacenter(dcOpts)},
		{"wan", netgen.WAN(wanOpts)},
	} {
		row, err := CompressNetwork(e.name, e.net, sample)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		b, err := build.New(e.net)
		if err != nil {
			return nil, err
		}
		out = append(out, RealNetworkRow{
			Table1Row:      row,
			RolesFull:      b.RoleCount(false, false),
			RolesErased:    b.RoleCount(true, false),
			RolesNoStatics: b.RoleCount(true, true),
		})
	}
	return out, nil
}

// Fig11Result compares the abstraction sizes of the two fattree policies.
type Fig11Result struct {
	K                 int
	ShortestPathNodes int
	ShortestPathLinks int
	PreferBottomNodes int
	PreferBottomLinks int
}

// Figure11 regenerates Figure 11: the same fattree under shortest-path vs
// middle-tier-prefers-bottom routing; the latter needs a larger abstraction
// to capture the extra forwarding behaviors.
func Figure11(k int) (Fig11Result, error) {
	res := Fig11Result{K: k}
	for i, pol := range []netgen.FattreePolicy{netgen.PolicyShortestPath, netgen.PolicyPreferBottom} {
		b, err := build.New(netgen.Fattree(k, pol))
		if err != nil {
			return res, err
		}
		comp := b.NewCompiler(true)
		abs, err := b.Compress(context.Background(), comp, b.Classes()[0])
		if err != nil {
			return res, err
		}
		if i == 0 {
			res.ShortestPathNodes = abs.NumAbstractNodes()
			res.ShortestPathLinks = abs.NumAbstractEdges()
		} else {
			res.PreferBottomNodes = abs.NumAbstractNodes()
			res.PreferBottomLinks = abs.NumAbstractEdges()
		}
	}
	return res, nil
}

// Fig12Point is one x-position of a Figure 12 plot: total verification time
// for an all-pairs reachability query, with and without Bonsai.
type Fig12Point struct {
	Nodes    int
	Concrete time.Duration
	Bonsai   time.Duration
}

func (p Fig12Point) String() string {
	speedup := float64(p.Concrete) / float64(p.Bonsai)
	return fmt.Sprintf("n=%5d  concrete %10v  bonsai %10v  speedup %6.1fx",
		p.Nodes, p.Concrete.Round(time.Millisecond), p.Bonsai.Round(time.Millisecond), speedup)
}

// Figure12 sweeps one topology family over sizes and measures the
// per-query-certification verifier on the concrete and compressed networks.
// maxClasses bounds the per-size work so sweeps finish in bounded time
// (both modes see the same classes, preserving the comparison).
func Figure12(family string, sizes []int, maxClasses int) ([]Fig12Point, error) {
	var out []Fig12Point
	for _, size := range sizes {
		var net *config.Network
		switch family {
		case "fattree":
			net = netgen.Fattree(size, netgen.PolicyShortestPath)
		case "ring":
			net = netgen.Ring(size)
		case "mesh":
			net = netgen.FullMesh(size)
		default:
			return nil, fmt.Errorf("unknown family %q", family)
		}
		b, err := build.New(net)
		if err != nil {
			return nil, err
		}
		opts := verify.Options{MaxClasses: maxClasses, Workers: 1, PerPairCertification: true}
		conc, err := verify.AllPairsConcrete(context.Background(), b, opts)
		if err != nil {
			return nil, err
		}
		bon, err := verify.AllPairsBonsai(context.Background(), b, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig12Point{Nodes: b.G.NumNodes(), Concrete: conc.Total, Bonsai: bon.Total})
	}
	return out, nil
}

// BatfishQueryResult is the §8 single-query experiment: one reachability
// query on the datacenter, with and without compression.
type BatfishQueryResult struct {
	Src, Dest        string
	Reachable        bool
	Concrete, Bonsai time.Duration
}

// BatfishQuery runs a single port-to-port reachability query on the
// datacenter stand-in both ways.
func BatfishQuery(quick bool) (BatfishQueryResult, error) {
	opts := netgen.DCOptions{}
	if quick {
		opts = netgen.DCOptions{
			Clusters: 3, SpinesPerClus: 2, LeavesPerClus: 4, Cores: 2, Borders: 1,
			PrefixesPerLeaf: 2, VirtualIfaces: 3, StaticPatterns: 4, TagGroups: 5,
		}
	}
	net := netgen.Datacenter(opts)
	b, err := build.New(net)
	if err != nil {
		return BatfishQueryResult{}, err
	}
	res := BatfishQueryResult{Src: "leaf-1-00"}
	res.Dest = net.Routers["leaf-0-00"].Originate[0].String()
	ok, dur, err := verify.Reach(context.Background(), b, nil, res.Src, res.Dest, false)
	if err != nil {
		return res, err
	}
	res.Reachable = ok
	res.Concrete = dur
	ok2, dur2, err := verify.Reach(context.Background(), b, nil, res.Src, res.Dest, true)
	if err != nil {
		return res, err
	}
	if ok2 != ok {
		return res, fmt.Errorf("batfish query: answers diverge: concrete=%v bonsai=%v", ok, ok2)
	}
	res.Bonsai = dur2
	return res, nil
}

func strideSample(classes []ec.Class, n int) []ec.Class {
	if n <= 0 || n >= len(classes) {
		return classes
	}
	out := make([]ec.Class, 0, n)
	stride := len(classes) / n
	for i := 0; i < n; i++ {
		out = append(out, classes[i*stride])
	}
	return out
}
