package verify

import (
	"context"
	"testing"

	"bonsai/internal/build"
	"bonsai/internal/netgen"
)

func BenchmarkCompressOneEC(b *testing.B) {
	bd, err := build.New(netgen.Fattree(12, netgen.PolicyShortestPath))
	if err != nil {
		b.Fatal(err)
	}
	comp := bd.NewCompiler(true)
	classes := bd.Classes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bd.Compress(context.Background(), comp, classes[i%len(classes)]); err != nil {
			b.Fatal(err)
		}
	}
}
