package verify

import (
	"context"
	"testing"

	"bonsai/internal/build"
	"bonsai/internal/netgen"
)

func TestFig12Probe(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		b, err := build.New(netgen.Fattree(k, netgen.PolicyShortestPath))
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Workers: 1, PerPairCertification: true}
		conc, err := AllPairsConcrete(context.Background(), b, opts)
		if err != nil {
			t.Fatal(err)
		}
		bon, err := AllPairsBonsai(context.Background(), b, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("k=%d nodes=%d: concrete=%v bonsai=%v (compress %v)", k, b.G.NumNodes(), conc.Total, bon.Total, bon.Compress)
	}
}
