// Package verify provides the two analysis engines used in the paper's
// evaluation (§8), reimplemented over Bonsai's own control-plane simulator:
//
//   - AllPairs: an all-pairs reachability verifier standing in for
//     Minesweeper (Figure 12). For every destination equivalence class it
//     computes the stable control plane, derives the data plane, and checks
//     which sources deliver traffic. Its cost grows with classes × network
//     size, so — like the SMT-based original — it benefits dramatically from
//     running on the compressed network.
//
//   - Reach: a single source/destination reachability query standing in for
//     the Batfish-plus-NoD query of §8, again with and without compression.
//
// Absolute runtimes differ from the paper's (different machinery); the
// comparison *shape* — concrete cost exploding with size while the abstract
// cost stays near-flat — is what these engines reproduce.
package verify

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"slices"
	"sync"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/dataplane"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
	"bonsai/internal/sched"
	"bonsai/internal/srp"
)

// Result aggregates one verification run.
type Result struct {
	Mode            string // "concrete" or "bonsai"
	Classes         int
	Pairs           int64 // (source, class) pairs checked
	ReachablePairs  int64
	AbstractNodeSum int64         // total abstract nodes across classes (bonsai mode)
	Compress        time.Duration // time spent compressing (bonsai mode)
	Total           time.Duration
	// DistinctAbstractions counts the abstractions actually computed by the
	// Builder's cross-EC deduplication cache (bonsai mode); the remaining
	// classes were served a shared abstraction.
	DistinctAbstractions int
}

func (r *Result) String() string {
	s := fmt.Sprintf("%s: classes=%d pairs=%d reachable=%d compress=%v total=%v",
		r.Mode, r.Classes, r.Pairs, r.ReachablePairs, r.Compress, r.Total)
	if r.Mode == "bonsai" {
		s += fmt.Sprintf(" distinctAbs=%d", r.DistinctAbstractions)
	}
	return s
}

// Options configures a verification run.
type Options struct {
	// MaxClasses bounds the destination classes verified (0 = all).
	MaxClasses int
	// Workers parallelises across classes, as Bonsai's implementation does
	// (§7). 0 means GOMAXPROCS.
	Workers int
	// PerPairCertification makes the verifier re-analyse the control plane
	// for every (source, destination) query, the way a per-query verifier
	// like Minesweeper re-encodes the network for each SMT query. This is
	// the mode used to regenerate Figure 12. Without it, one simulation is
	// shared by all sources of a class (Batfish-style), the cheapest
	// possible baseline.
	PerPairCertification bool
	// Compilers, when it holds exactly workers() entries, supplies the
	// per-worker policy compilers for the bonsai engine instead of fresh
	// ones — long-lived callers pass pooled compilers so their BDD tables
	// survive across calls. Each compiler is used by one worker goroutine
	// for the duration of the call.
	Compilers []*policy.Compiler
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// AllPairsConcrete verifies all-pairs reachability on the concrete network.
// Cancelling ctx stops the worker goroutines promptly and returns the
// context's error.
func AllPairsConcrete(ctx context.Context, b *build.Builder, opts Options) (*Result, error) {
	classes := clip(b.Classes(), opts.MaxClasses)
	res := &Result{Mode: "concrete", Classes: len(classes)}
	start := time.Now()
	err := ForEachClass(ctx, classes, opts.workers(), func(_ int, cls ec.Class) error {
		mkFIB := func() (*dataplane.FIB, error) {
			inst, err := b.Instance(cls)
			if err != nil {
				return nil, err
			}
			sol, err := srp.Solve(inst)
			if err != nil {
				return nil, fmt.Errorf("class %v: %w", cls.Prefix, err)
			}
			return dataplane.New(inst, sol, b.ACLPermitFunc(cls)), nil
		}
		pairs, ok, err := countReachable(ctx, mkFIB, opts.PerPairCertification)
		if err != nil {
			return err
		}
		addPairs(res, pairs, ok, 0)
		return nil
	})
	res.Total = time.Since(start)
	return res, err
}

// AllPairsBonsai verifies all-pairs reachability after compressing each
// class with Bonsai. The reported time includes compression, as in
// Figure 12. Cancelling ctx stops the worker goroutines promptly (including
// mid-compression) and returns the context's error.
func AllPairsBonsai(ctx context.Context, b *build.Builder, opts Options) (*Result, error) {
	classes := clip(b.Classes(), opts.MaxClasses)
	res := &Result{Mode: "bonsai", Classes: len(classes)}
	start := time.Now()
	// One policy compiler per worker: BDD managers are not safe for
	// concurrent use, but sharing one across a worker's classes amortises
	// BDD construction exactly as the paper's implementation does (§7:
	// BDDs are built once, classes are compressed in parallel). On top of
	// that, Builder.Compress deduplicates whole abstractions across classes,
	// and the fan-out groups classes by fingerprint so each group's leader
	// compresses exactly once while its followers wait off-worker until the
	// result is cached.
	compilers := opts.Compilers
	if len(compilers) != opts.workers() {
		compilers = make([]*policy.Compiler, opts.workers())
		for i := range compilers {
			compilers[i] = b.NewCompiler(true)
		}
	}
	err := ForEachClassKeyed(ctx, slices.Values(classes), opts.workers(), FingerprintKey(b), func(worker int, cls ec.Class) error {
		cStart := time.Now()
		comp := compilers[worker]
		abs, err := b.Compress(ctx, comp, cls)
		if err != nil {
			return err
		}
		compressed := time.Since(cStart)
		mkFIB := func() (*dataplane.FIB, error) {
			inst, err := b.AbstractInstance(cls, abs)
			if err != nil {
				return nil, err
			}
			sol, err := srp.Solve(inst)
			if err != nil {
				return nil, fmt.Errorf("abstract class %v: %w", cls.Prefix, err)
			}
			return dataplane.New(inst, sol, b.AbstractACLPermitFunc(cls, abs)), nil
		}
		pairs, ok, err := countReachable(ctx, mkFIB, opts.PerPairCertification)
		if err != nil {
			return err
		}
		addPairsCompress(res, pairs, ok, int64(abs.NumAbstractNodes()), compressed)
		return nil
	})
	res.Total = time.Since(start)
	res.DistinctAbstractions = b.AbstractionCacheStats().Fresh
	return res, err
}

// Reach answers a single reachability query: can traffic from src reach the
// destination prefix? With useBonsai, the query runs on the compressed
// network (src is mapped through the topology function f). comp, when
// non-nil, supplies the policy compiler for the bonsai path — long-lived
// callers pass one to reuse its BDD tables across queries; nil creates a
// fresh compiler per call.
func Reach(ctx context.Context, b *build.Builder, comp *policy.Compiler, srcName, destPrefix string, useBonsai bool) (bool, time.Duration, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return false, 0, err
	}
	cls, err := ec.ClassFor(b.Cfg, destPrefix)
	if err != nil {
		return false, 0, err
	}
	src, okSrc := b.G.Lookup(srcName)
	if !okSrc {
		return false, 0, fmt.Errorf("verify: unknown source router %q", srcName)
	}
	if !useBonsai {
		inst, err := b.Instance(cls)
		if err != nil {
			return false, 0, err
		}
		sol, err := srp.Solve(inst)
		if err != nil {
			return false, 0, err
		}
		fib := dataplane.New(inst, sol, b.ACLPermitFunc(cls))
		return fib.Reachable(src), time.Since(start), nil
	}
	if comp == nil {
		comp = b.NewCompiler(true)
	}
	abs, err := b.Compress(ctx, comp, cls)
	if err != nil {
		return false, 0, err
	}
	inst, err := b.AbstractInstance(cls, abs)
	if err != nil {
		return false, 0, err
	}
	sol, err := srp.Solve(inst)
	if err != nil {
		return false, 0, err
	}
	fib := dataplane.New(inst, sol, b.AbstractACLPermitFunc(cls, abs))
	// With BGP case splitting the source may map to several copies; the
	// query must hold for the copy exhibiting the source's behavior — all
	// copies are checked and any reachable copy counts (Theorem 4.5's
	// caveat: properties are checked against all copies).
	reachable := false
	for _, c := range abs.Copies[abs.F[src]] {
		if fib.Reachable(c) {
			reachable = true
			break
		}
	}
	return reachable, time.Since(start), nil
}

// countReachable counts how many non-destination sources deliver traffic.
// In per-pair mode the control plane analysis (mkFIB) is repeated for every
// source, modelling a per-query verifier — that loop observes ctx so
// cancellation interrupts even a single large class promptly.
func countReachable(ctx context.Context, mkFIB func() (*dataplane.FIB, error), perPair bool) (pairs, ok int64, err error) {
	fib, err := mkFIB()
	if err != nil {
		return 0, 0, err
	}
	if perPair {
		for _, u := range fib.G.Nodes() {
			if err := ctx.Err(); err != nil {
				return pairs, ok, err
			}
			if u == fib.Dest {
				continue
			}
			pairs++
			if fib.Reachable(u) {
				ok++
			}
			// Re-analyse for the next query, as a per-query verifier would.
			if fib, err = mkFIB(); err != nil {
				return pairs, ok, err
			}
		}
		return pairs, ok, nil
	}
	reach := fib.ReachableSet()
	for u, r := range reach {
		if u == int(fib.Dest) {
			continue
		}
		pairs++
		if r {
			ok++
		}
	}
	return pairs, ok, nil
}

func clip(classes []ec.Class, max int) []ec.Class {
	if max > 0 && len(classes) > max {
		return classes[:max]
	}
	return classes
}

var resMu sync.Mutex

func addPairs(r *Result, pairs, ok, absNodes int64) {
	resMu.Lock()
	defer resMu.Unlock()
	r.Pairs += pairs
	r.ReachablePairs += ok
	r.AbstractNodeSum += absNodes
}

func addPairsCompress(r *Result, pairs, ok, absNodes int64, d time.Duration) {
	resMu.Lock()
	defer resMu.Unlock()
	r.Pairs += pairs
	r.ReachablePairs += ok
	r.AbstractNodeSum += absNodes
	r.Compress += d
}

// ForEachClassKeyed fans f out over a (possibly lazily enumerated) class
// sequence. With workers <= 1 it runs serially in sequence order — the
// batch reference shape the differential tests compare the scheduler
// against; otherwise it hands the sequence to the sharded work-stealing
// scheduler of internal/sched, with key (when non-nil) grouping classes by
// deduplication fingerprint so each group's leader computes once and its
// followers run on the warm cache. Each invocation of f receives its
// worker index (compilers are per-worker). Cancelling ctx stops dispatch,
// drains the workers promptly and returns the context's error. It is the
// shared fan-out primitive of the verify engines and the public bonsai
// Engine.
func ForEachClassKeyed(ctx context.Context, classes iter.Seq[ec.Class], workers int, key func(ec.Class) string, f func(worker int, cls ec.Class) error) error {
	if workers <= 1 {
		for cls := range classes {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Protect gives the serial path the scheduler's panic
			// containment: a poisoned class fails the call, not the process.
			if err := sched.Protect(0, cls, f); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	_, err := sched.Run(ctx, classes, sched.Options{Shards: workers}, key, f)
	return err
}

// ForEachClass is ForEachClassKeyed over a class slice without fingerprint
// grouping.
func ForEachClass(ctx context.Context, classes []ec.Class, workers int, f func(worker int, cls ec.Class) error) error {
	return ForEachClassKeyed(ctx, slices.Values(classes), workers, nil, f)
}

// FingerprintKey returns the scheduler grouping key for b's classes: the
// deduplication fingerprint, or "" (ungrouped) for classes whose
// fingerprint cannot be computed — those fail identically inside Compress,
// which reports the actual error.
func FingerprintKey(b *build.Builder) func(ec.Class) string {
	return func(cls ec.Class) string {
		fp, err := b.ClassFingerprint(cls)
		if err != nil {
			return ""
		}
		return fp
	}
}
