package verify

import (
	"fmt"

	"bonsai/internal/config"
	"bonsai/internal/policy"
)

// parseACL pulls the ACL named B out of a config snippet for test setup.
func parseACL(text string) (*policy.ACL, error) {
	net, err := config.ParseString(text)
	if err != nil {
		return nil, err
	}
	a := net.Routers["x"].Env.ACLs["B"]
	if a == nil {
		return nil, fmt.Errorf("acl B missing")
	}
	return a, nil
}
