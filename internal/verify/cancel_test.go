package verify

import (
	"context"
	"testing"
	"time"

	"bonsai/internal/build"
	"bonsai/internal/netgen"
)

// TestCancelledContextReturnsImmediately covers the pre-cancelled case for
// every entry point.
func TestCancelledContextReturnsImmediately(t *testing.T) {
	b, err := build.New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AllPairsConcrete(ctx, b, Options{Workers: 2}); err != context.Canceled {
		t.Fatalf("AllPairsConcrete: %v", err)
	}
	if _, err := AllPairsBonsai(ctx, b, Options{Workers: 2}); err != context.Canceled {
		t.Fatalf("AllPairsBonsai: %v", err)
	}
	if _, _, err := Reach(ctx, b, nil, "edge-0-0", "10.0.0.0/24", true); err != context.Canceled {
		t.Fatalf("Reach: %v", err)
	}
}

// TestCancellationStopsWorkersPromptly cancels a verification that would
// otherwise run for a long time (per-pair certification over a large ring
// re-solves the control plane for every source) and requires the worker
// pool to drain within a generous bound.
func TestCancellationStopsWorkersPromptly(t *testing.T) {
	b, err := build.New(netgen.Ring(150))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = AllPairsConcrete(ctx, b, Options{Workers: 4, PerPairCertification: true})
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The full run takes far longer than this; a prompt stop means the
	// dispatch loop and workers observed the cancellation.
	if elapsed > 5*time.Second {
		t.Fatalf("verification kept running %v after cancellation", elapsed)
	}
}

// TestCancellationDuringCompression cancels AllPairsBonsai mid-run so the
// cancellation lands inside Builder.Compress, including its single-flight
// waiters.
func TestCancellationDuringCompression(t *testing.T) {
	b, err := build.New(netgen.Fattree(8, netgen.PolicyPreferBottom))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = AllPairsBonsai(ctx, b, Options{Workers: 4, PerPairCertification: true})
	if err == nil {
		t.Skip("run finished before the cancellation landed")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("verification kept running %v after cancellation", elapsed)
	}
	// The builder must stay usable: a failed single-flight slot is dropped,
	// so a fresh context compresses cleanly.
	res, err := AllPairsBonsai(context.Background(), b, Options{Workers: 2, MaxClasses: 4})
	if err != nil {
		t.Fatalf("builder unusable after cancellation: %v", err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs verified after cancellation recovery")
	}
}
