package verify

import (
	"context"
	"testing"

	"bonsai/internal/build"
	"bonsai/internal/netgen"
)

func fattree4(t *testing.T) *build.Builder {
	t.Helper()
	b, err := build.New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAllPairsConcreteAndBonsaiAgree(t *testing.T) {
	b := fattree4(t)
	conc, err := AllPairsConcrete(context.Background(), b, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bon, err := AllPairsBonsai(context.Background(), b, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// In a healthy fattree everything reaches everything: both verifiers
	// must report full reachability (over their respective node sets).
	if conc.ReachablePairs != conc.Pairs {
		t.Fatalf("concrete: %d/%d reachable", conc.ReachablePairs, conc.Pairs)
	}
	if bon.ReachablePairs != bon.Pairs {
		t.Fatalf("bonsai: %d/%d reachable", bon.ReachablePairs, bon.Pairs)
	}
	if bon.Pairs >= conc.Pairs {
		t.Fatalf("abstract verification should check fewer pairs: %d vs %d",
			bon.Pairs, conc.Pairs)
	}
	if conc.Classes != bon.Classes {
		t.Fatal("class counts must match")
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	b := fattree4(t)
	seq, err := AllPairsConcrete(context.Background(), b, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AllPairsConcrete(context.Background(), b, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pairs != par.Pairs || seq.ReachablePairs != par.ReachablePairs {
		t.Fatalf("parallel run diverged: seq=%v par=%v", seq, par)
	}
}

func TestAllPairsBonsaiParallelMatchesSequential(t *testing.T) {
	b := fattree4(t)
	seq, err := AllPairsBonsai(context.Background(), b, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AllPairsBonsai(context.Background(), b, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pairs != par.Pairs || seq.ReachablePairs != par.ReachablePairs ||
		seq.AbstractNodeSum != par.AbstractNodeSum {
		t.Fatalf("parallel bonsai run diverged: seq=%v par=%v", seq, par)
	}
}

func TestMaxClasses(t *testing.T) {
	b := fattree4(t)
	r, err := AllPairsConcrete(context.Background(), b, Options{MaxClasses: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Classes != 3 {
		t.Fatalf("classes = %d, want 3", r.Classes)
	}
}

func TestReachQueryBothModes(t *testing.T) {
	b := fattree4(t)
	// Find the prefix originated by edge-0-0.
	dest := b.Cfg.Routers["edge-0-0"].Originate[0].String()
	for _, bonsai := range []bool{false, true} {
		ok, _, err := Reach(context.Background(), b, nil, "edge-1-1", dest, bonsai)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("bonsai=%v: edge-1-1 should reach %s", bonsai, dest)
		}
	}
	// Unknown source errors.
	if _, _, err := Reach(context.Background(), b, nil, "nope", dest, false); err == nil {
		t.Fatal("unknown source accepted")
	}
	// Unknown destination errors.
	if _, _, err := Reach(context.Background(), b, nil, "edge-1-1", "203.0.113.0/24", false); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestReachDetectsACLBlock(t *testing.T) {
	// Block a destination at every aggregation router of its own pod: the
	// query must flip to unreachable, concretely and compressed.
	n := netgen.Fattree(4, netgen.PolicyShortestPath)
	dest := n.Routers["edge-0-0"].Originate[0]
	for _, agg := range []string{"agg-0-0", "agg-0-1"} {
		r := n.Routers[agg]
		txt := "router x\n  acl B deny " + dest.String() + "\n  acl B permit 0.0.0.0/0 le 32\n"
		parsed, err := parseACL(txt)
		if err != nil {
			t.Fatal(err)
		}
		r.Env.ACLs["B"] = parsed
		r.IfaceACL["edge-0-0"] = "B"
	}
	b, err := build.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, bonsai := range []bool{false, true} {
		ok, _, err := Reach(context.Background(), b, nil, "edge-1-1", dest.String(), bonsai)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("bonsai=%v: ACL block not detected", bonsai)
		}
		// The sibling edge router in pod 0 is also cut off (its only
		// paths go through the pod aggs).
		ok, _, err = Reach(context.Background(), b, nil, "edge-0-1", dest.String(), bonsai)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("bonsai=%v: sibling should be blocked too", bonsai)
		}
	}
}

func TestBonsaiSpeedupOnLargerNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	b, err := build.New(netgen.Fattree(8, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := AllPairsConcrete(context.Background(), b, Options{Workers: 1, MaxClasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	bon, err := AllPairsBonsai(context.Background(), b, Options{Workers: 1, MaxClasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("concrete=%v bonsai=%v (incl. compression %v)", conc.Total, bon.Total, bon.Compress)
	if conc.ReachablePairs != conc.Pairs || bon.ReachablePairs != bon.Pairs {
		t.Fatal("reachability broken")
	}
}
