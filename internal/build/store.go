// The bounded abstraction store: the Builder's cross-EC cache with
// byte-accounted entries, LRU eviction under a configurable budget, and
// hit/miss/eviction statistics. Unbounded retention was fine while a
// Builder compressed one evaluation network and exited, but a long-lived
// engine streaming millions of classes would hold every abstraction it
// ever computed; the store makes retention a policy, not an accident.
//
// Eviction is always safe because the store is a cache, never the source of
// truth: a Compress call that misses (first touch or post-eviction) simply
// recomputes, and incremental adoption (adopt.go) treats an evicted entry
// as a cold class — never an error. Two kinds of entries are exempt from
// eviction:
//
//   - In-flight entries (single-flight slots whose computation is running)
//     are not yet in the LRU list — nor in the byte accounting, whose
//     charge lands on completion; the budget therefore bounds *retained*
//     results, and transient overshoot is at most the abstractions
//     currently being computed (one per shard).
//   - Transport seeds — fresh, ColorSplits-free entries indexed by label
//     histogram — are pinned (but charged). One seed exists per symmetry
//     family, it is the entry every symmetric class's multi-millisecond
//     refinement is skipped through, and evicting it would make
//     compression cost resurge for the whole family. A budget below the
//     seed working set therefore degrades gracefully: everything else is
//     evicted and the store floats at the seed footprint.
package build

import (
	"sync"

	"bonsai/internal/topo"
)

// absStore is the bounded cross-EC abstraction cache. All fields are
// guarded by mu; absEntry.ready/abs/err follow the single-flight protocol
// of dedup.go. The prefix -> fingerprint index lives on the Builder
// (fpByPrefix): it is deterministic and class-count-sized, so it survives
// eviction instead of being torn down with each entry.
type absStore struct {
	mu      sync.Mutex
	entries map[string]*absEntry // fingerprint -> single-flight slot
	// isoIndex holds the pinned transport seeds per label-histogram hash.
	isoIndex map[uint64][]*absEntry

	// budget is the byte ceiling (0 = unbounded); bytes is the accounted
	// footprint of completed entries, peak its high-water mark.
	budget int64
	bytes  int64
	peak   int64
	// LRU list of evictable entries: head is coldest, tail hottest.
	head, tail *absEntry

	served, transported, misses, evictions, dupFresh int64
	fresh, adopted                                   int

	// pool, when non-nil, is the shared cross-Builder memory pool this
	// store's bytes are charged against (pool.go). Guarded by mu; the pool
	// itself is updated with atomics so no Pool lock is taken here.
	pool *Pool
}

func newAbsStore() absStore {
	return absStore{
		entries:  make(map[string]*absEntry),
		isoIndex: make(map[uint64][]*absEntry),
	}
}

// reset empties the store and its counters, keeping the budget (and pool
// membership, discharging the dropped bytes).
func (s *absStore) reset() {
	if s.pool != nil {
		s.pool.charge(-s.bytes)
	}
	s.entries = make(map[string]*absEntry)
	s.isoIndex = make(map[uint64][]*absEntry)
	s.bytes, s.peak = 0, 0
	s.head, s.tail = nil, nil
	s.served, s.transported, s.misses, s.evictions, s.dupFresh = 0, 0, 0, 0, 0
	s.fresh, s.adopted = 0, 0
}

// lruUnlink removes e from the LRU list if present. Callers hold mu.
func (s *absStore) lruUnlink(e *absEntry) {
	if !e.inLRU {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next, e.inLRU = nil, nil, false
}

// lruTouch moves e to the hot end (inserting it if absent). Pinned entries
// never enter the list. Callers hold mu.
func (s *absStore) lruTouch(e *absEntry) {
	if e.pinned {
		return
	}
	s.lruUnlink(e)
	e.prev, e.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
	e.inLRU = true
}

// account charges e's estimated footprint against the budget and makes the
// completed entry evictable (or pins it as a transport seed). Callers hold
// mu; callers run evict afterwards — the peak watermark is taken there,
// after eviction settles, so it reports the bounded steady state rather
// than the unavoidable transient of the entry being installed.
func (s *absStore) account(e *absEntry) {
	e.bytes = entryBytes(e)
	s.bytes += e.bytes
	if s.pool != nil {
		s.pool.charge(e.bytes)
	}
	s.lruTouch(e)
}

// evict removes coldest entries until the store fits its budget. Entries
// vanish from every index; their waiters (goroutines already holding the
// pointer) are unaffected, and the next Compress for an evicted class is
// an ordinary miss that recomputes. Callers hold mu.
func (s *absStore) evict() {
	for s.budget > 0 && s.bytes > s.budget && s.head != nil {
		e := s.head
		s.lruUnlink(e)
		s.remove(e)
		s.evictions++
	}
	if s.bytes > s.peak {
		s.peak = s.bytes
	}
}

// remove deletes a completed entry from the fingerprint map and the byte
// accounting. Callers hold mu and have unlinked e from the LRU.
func (s *absStore) remove(e *absEntry) {
	if cur, ok := s.entries[e.fp]; ok && cur == e {
		delete(s.entries, e.fp)
	}
	s.bytes -= e.bytes
	if s.pool != nil {
		s.pool.charge(-e.bytes)
	}
}

// SetAbstractionBudget bounds the abstraction store to approximately the
// given number of bytes of retained results (0 restores unbounded
// retention), evicting least-recently-used entries immediately if the
// store is already over. Pinned transport seeds are charged but never
// evicted, so very small budgets float at the seed working set instead of
// thrashing the symmetry machinery; in-flight computations are charged on
// completion.
func (b *Builder) SetAbstractionBudget(bytes int64) {
	b.store.mu.Lock()
	defer b.store.mu.Unlock()
	b.store.budget = bytes
	b.store.evict()
}

// entryBytes estimates the retained footprint of a completed entry: the
// abstraction's partition vectors and abstract graph plus the cached
// liveness/preference/signature vectors. It deliberately ignores memory
// shared with the Builder (the concrete topology, interned strings): the
// store's job is to bound what *retention of entries* adds.
func entryBytes(e *absEntry) int64 {
	const (
		word   = 8
		slice  = 24 // slice header
		mapEnt = 48 // conservative per-map-entry overhead
	)
	n := int64(160) // entry struct + LRU links + channel
	n += int64(len(e.fp))
	n += slice + int64(cap(e.live))
	n += slice + word*int64(cap(e.prefs))
	if s := e.sig; s != nil {
		n += 96 + int64(len(s.fp)) // the struct; fp string shared with e.fp when equal
		n += slice + int64(cap(s.origin))
		n += slice + 4*int64(cap(s.fpIDs))
		n += slice + int64(cap(s.aclV))
		n += mapEnt * int64(len(s.statics))
		n += slice + word*int64(cap(s.el))
		n += slice + word*int64(cap(s.colors))
	}
	if a := e.abs; a != nil {
		n += 128 // struct
		n += slice + word*int64(cap(a.F))
		n += slice * int64(len(a.Groups)+len(a.Copies))
		for _, g := range a.Groups {
			n += word * int64(cap(g))
		}
		for _, c := range a.Copies {
			n += word * int64(cap(c))
		}
		n += mapEnt * int64(len(a.RepEdge))
		n += slice + int64(cap(a.Live))
		if a.AbsG != nil {
			n += graphBytes(a.AbsG)
		}
	}
	return n
}

// graphBytes estimates a topo.Graph's footprint from its public shape.
func graphBytes(g *topo.Graph) int64 {
	nodes, edges := int64(g.NumNodes()), int64(2*g.NumLinks())
	// names + index entries + succ/pred headers and members + edge map.
	return nodes*(16+48+2*24) + edges*(2*8) + edges*48
}
