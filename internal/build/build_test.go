package build

import (
	"context"
	"net/netip"
	"reflect"
	"testing"

	"bonsai/internal/config"
	"bonsai/internal/equiv"
	"bonsai/internal/netgen"
	"bonsai/internal/policy"
	"bonsai/internal/srp"
)

// TestBuilderConstruction checks that every generator family builds and
// that the Builder's topology mirrors the configuration.
func TestBuilderConstruction(t *testing.T) {
	cases := []struct {
		name  string
		net   *config.Network
		nodes int
	}{
		{"fattree", netgen.Fattree(4, netgen.PolicyShortestPath), 20},
		{"ring", netgen.Ring(8), 8},
		{"mesh", netgen.FullMesh(5), 5},
	}
	for _, c := range cases {
		b, err := New(c.net)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := b.G.NumNodes(); got != c.nodes {
			t.Errorf("%s: nodes = %d, want %d", c.name, got, c.nodes)
		}
		if got := b.G.NumLinks(); got != len(c.net.Links) {
			t.Errorf("%s: links = %d, want %d", c.name, got, len(c.net.Links))
		}
		if !b.HasBGP() {
			t.Errorf("%s: HasBGP = false, want true", c.name)
		}
		if len(b.Classes()) == 0 {
			t.Errorf("%s: no destination classes", c.name)
		}
	}
}

// TestNewRejectsInvalidNetwork checks that validation errors surface.
func TestNewRejectsInvalidNetwork(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil network accepted")
	}
	n := config.New("broken")
	n.AddRouter("a")
	n.Links = append(n.Links, config.Link{A: "a", B: "ghost"})
	if _, err := New(n); err == nil {
		t.Fatal("dangling link accepted")
	}
}

// TestClassesDeterministic checks that class enumeration is stable within a
// Builder and across independently constructed Builders of the same network.
func TestClassesDeterministic(t *testing.T) {
	mk := func() *Builder {
		b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := mk(), mk()
	c1, c2 := b1.Classes(), b2.Classes()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("class enumeration differs across builders:\n%v\n%v", c1, c2)
	}
	again := b1.Classes()
	if !reflect.DeepEqual(c1, again) {
		t.Fatal("repeated Classes() calls differ")
	}
	for i := 1; i < len(c1); i++ {
		if c1[i].Prefix.String() <= c1[i-1].Prefix.String() {
			// Prefix ordering comes from the trie walk; equal or descending
			// neighbors would mean nondeterministic iteration leaked through.
			t.Fatalf("classes not strictly ordered at %d: %v then %v", i, c1[i-1].Prefix, c1[i].Prefix)
		}
	}
}

// TestRoleSignatureSymmetry checks that symmetric routers share a role
// signature while asymmetric ones do not.
func TestRoleSignatureSymmetry(t *testing.T) {
	// Every ring router is configured identically up to names and prefixes.
	ring := netgen.Ring(6)
	names := ring.RouterNames()
	want := RoleSignature(ring.Routers[names[0]], nil, true, false)
	for _, name := range names[1:] {
		if got := RoleSignature(ring.Routers[name], nil, true, false); got != want {
			t.Fatalf("ring routers %s and %s disagree:\n%q\n%q", names[0], name, want, got)
		}
	}

	// Datacenter spines of different clusters differ only by their unused
	// tag: equal roles with erasure, distinct without.
	dc := netgen.Datacenter(netgen.DCOptions{
		Clusters: 3, SpinesPerClus: 2, LeavesPerClus: 4, Cores: 2, Borders: 1,
		PrefixesPerLeaf: 2, VirtualIfaces: 3, StaticPatterns: 4, TagGroups: 5,
	})
	s00, s10 := dc.Routers["spine-0-0"], dc.Routers["spine-1-0"]
	if RoleSignature(s00, nil, true, false) != RoleSignature(s10, nil, true, false) {
		t.Fatal("cross-cluster spines should share a role after tag erasure")
	}
	if RoleSignature(s00, nil, false, false) == RoleSignature(s10, nil, false, false) {
		t.Fatal("cross-cluster spines should differ without erasure (distinct tags)")
	}
	// Same-cluster spines are symmetric either way.
	s01 := dc.Routers["spine-0-1"]
	if RoleSignature(s00, nil, false, false) != RoleSignature(s01, nil, false, false) {
		t.Fatal("same-cluster spines should share a role")
	}
	// A spine and a leaf are never the same role.
	if RoleSignature(s00, nil, true, true) == RoleSignature(dc.Routers["leaf-0-00"], nil, true, true) {
		t.Fatal("spine and leaf must differ")
	}
}

// TestRoleCountMatchesSignatures cross-checks RoleCount against a direct
// signature count and its cache against a recomputation.
func TestRoleCountMatchesSignatures(t *testing.T) {
	net := netgen.WAN(netgen.WANOptions{Backbone: 4, Sites: 3, SwitchesPerSite: 2})
	b, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, name := range net.RouterNames() {
		seen[RoleSignature(net.Routers[name], b.matchedSet, true, false)] = true
	}
	if got := b.RoleCount(true, false); got != len(seen) {
		t.Fatalf("RoleCount = %d, direct count = %d", got, len(seen))
	}
	if got := b.RoleCount(true, false); got != len(seen) {
		t.Fatalf("cached RoleCount diverged: %d vs %d", got, len(seen))
	}
	// Gateways carry site-specific prefix filters: roughly one role each.
	if b.RoleCount(true, false) < 3 {
		t.Fatalf("WAN gateways should contribute distinct roles, got %d", b.RoleCount(true, false))
	}
}

// TestEdgeKeyLiveness spot-checks the canonical edge keys of the fattree:
// the destination-based export filter kills transit edges through non-dest
// edge routers while keeping the destination's own uplinks live.
func TestEdgeKeyLiveness(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	cls := b.Classes()[0] // edge-0-0's prefix
	if cls.Origins[0] != "edge-0-0" {
		t.Fatalf("unexpected first class origin %q", cls.Origins[0])
	}
	comp := b.NewCompiler(true)
	key := b.EdgeKeyFunc(comp, cls)
	agg := b.G.MustLookup("agg-0-0")
	dest := b.G.MustLookup("edge-0-0")
	other := b.G.MustLookup("edge-0-1")
	if k := key(agg, dest); k.Dead() || !k.BGP {
		t.Fatalf("uplink agg-0-0 <- edge-0-0 should carry BGP, got %+v", k)
	}
	if k := key(agg, other); !k.Dead() {
		t.Fatalf("transit agg-0-0 <- edge-0-1 should be dead for this class, got %+v", k)
	}
	// Edge learning from its aggregation router: live, unfiltered session.
	if k := key(other, agg); k.Dead() || !k.BGP {
		t.Fatalf("downlink edge-0-1 <- agg-0-0 should be live, got %+v", k)
	}
	// Keys are canonical: recomputing with the same compiler is stable.
	k1, k2 := key(agg, dest), b.EdgeKeyFunc(comp, cls)(agg, dest)
	if k1 != k2 {
		t.Fatalf("edge keys unstable across EdgeKeyFunc calls: %+v vs %+v", k1, k2)
	}
}

// TestPrefsReflectLocalPreferencePolicies checks Theorem 4.4's prefs bound:
// shortest-path routers can only use the default preference, while the
// prefer-bottom aggregation routers can assign two values.
func TestPrefsReflectLocalPreferencePolicies(t *testing.T) {
	sp, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	prefs := sp.PrefsFunc(sp.Classes()[0])
	for _, u := range sp.G.Nodes() {
		if got := prefs(u); got != 1 {
			t.Fatalf("shortest-path prefs(%s) = %d, want 1", sp.G.Name(u), got)
		}
	}
	pb, err := New(netgen.Fattree(4, netgen.PolicyPreferBottom))
	if err != nil {
		t.Fatal(err)
	}
	prefs = pb.PrefsFunc(pb.Classes()[0])
	if got := prefs(pb.G.MustLookup("agg-0-0")); got != 2 {
		t.Fatalf("prefer-bottom prefs(agg-0-0) = %d, want 2", got)
	}
	if got := prefs(pb.G.MustLookup("edge-0-0")); got != 1 {
		t.Fatalf("prefer-bottom prefs(edge-0-0) = %d, want 1", got)
	}
}

// TestPrefsExactUnderEBGPReset pins down the Theorem 4.4 bound on an
// asymmetric diamond: d-a-u and d-b-u where only a's import from d raises
// the local preference. Because LOCAL_PREF is reset across eBGP sessions,
// u can only ever hold the default preference — prefs(u) must be 1, a can
// assign two values, and the compressed network must stay CP-equivalent.
func TestPrefsExactUnderEBGPReset(t *testing.T) {
	n := config.New("diamond")
	for i, name := range []string{"d", "a", "b", "u"} {
		n.AddRouter(name).EnsureBGP(65001 + i)
	}
	peer := func(x, y string) {
		n.AddLink(x, y)
		n.Routers[x].BGP.Neighbors[y] = &config.Neighbor{}
		n.Routers[y].BGP.Neighbors[x] = &config.Neighbor{}
	}
	peer("d", "a")
	peer("d", "b")
	peer("a", "u")
	peer("b", "u")
	n.Routers["d"].Originate = append(n.Routers["d"].Originate, netip.MustParsePrefix("10.0.0.0/24"))
	ra := n.Routers["a"]
	ra.Env.RouteMaps["UP"] = &policy.RouteMap{Name: "UP", Clauses: []policy.Clause{
		{Seq: 10, Action: policy.Permit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 200}}},
	}}
	ra.BGP.Neighbors["d"].ImportMap = "UP"

	b, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	cls := b.Classes()[0]
	prefs := b.PrefsFunc(cls)
	if got := prefs(b.G.MustLookup("a")); got != 2 {
		t.Fatalf("prefs(a) = %d, want 2", got)
	}
	if got := prefs(b.G.MustLookup("u")); got != 1 {
		t.Fatalf("prefs(u) = %d, want 1 (preference must not leak across eBGP)", got)
	}
	abs, err := b.Compress(context.Background(), b.NewCompiler(true), cls)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := b.Instance(cls)
	if err != nil {
		t.Fatal(err)
	}
	abst, err := b.AbstractInstance(cls, abs)
	if err != nil {
		t.Fatal(err)
	}
	if err := equiv.CheckAcrossSolutions(conc, abst, abs, 8); err != nil {
		t.Fatalf("CP-equivalence violated on the asymmetric diamond: %v", err)
	}
}

// TestPrefsCrossIBGPSession checks the iBGP side of the bound: a
// preference assigned by the sender's eBGP import map crosses an iBGP
// session untouched, so the receiver's prefs must count it.
// d -eBGP- b -iBGP- u, plus d -eBGP- c -eBGP- u; b's import from d sets 300.
func TestPrefsCrossIBGPSession(t *testing.T) {
	n := config.New("ibgp")
	for name, asn := range map[string]int{"d": 65001, "b": 65100, "u": 65100, "c": 65002} {
		n.AddRouter(name).EnsureBGP(asn)
	}
	peer := func(x, y string) {
		n.AddLink(x, y)
		n.Routers[x].BGP.Neighbors[y] = &config.Neighbor{}
		n.Routers[y].BGP.Neighbors[x] = &config.Neighbor{}
	}
	peer("d", "b")
	peer("b", "u")
	peer("d", "c")
	peer("c", "u")
	n.Routers["d"].Originate = append(n.Routers["d"].Originate, netip.MustParsePrefix("10.0.0.0/24"))
	rb := n.Routers["b"]
	rb.Env.RouteMaps["UP"] = &policy.RouteMap{Name: "UP", Clauses: []policy.Clause{
		{Seq: 10, Action: policy.Permit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 300}}},
	}}
	rb.BGP.Neighbors["d"].ImportMap = "UP"

	b, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	cls := b.Classes()[0]
	prefs := b.PrefsFunc(cls)
	if got := prefs(b.G.MustLookup("u")); got != 2 {
		t.Fatalf("prefs(u) = %d, want 2 (300 crosses the iBGP session, 100 arrives via c)", got)
	}
	if got := prefs(b.G.MustLookup("c")); got != 1 {
		t.Fatalf("prefs(c) = %d, want 1", got)
	}
}

// TestAbstractConfigRoundTrips compresses one class, writes the abstraction
// back out as a configuration, and re-parses it.
func TestAbstractConfigRoundTrips(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	cls := b.Classes()[0]
	abs, err := b.Compress(context.Background(), b.NewCompiler(true), cls)
	if err != nil {
		t.Fatal(err)
	}
	absCfg, err := b.AbstractConfig(cls, abs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(absCfg.Routers); got != abs.NumAbstractNodes() {
		t.Fatalf("abstract config has %d routers, abstraction has %d nodes", got, abs.NumAbstractNodes())
	}
	reparsed, err := config.ParseString(config.PrintString(absCfg))
	if err != nil {
		t.Fatalf("abstract config does not round-trip: %v", err)
	}
	if err := reparsed.Validate(); err != nil {
		t.Fatalf("re-parsed abstract config invalid: %v", err)
	}
	// The destination must originate the class prefix in the small network.
	var origin *config.Router
	for _, r := range reparsed.Routers {
		if len(r.Originate) > 0 {
			origin = r
		}
	}
	if origin == nil || origin.Originate[0] != cls.Prefix {
		t.Fatalf("abstract destination does not originate %v", cls.Prefix)
	}
	// The re-parsed configuration must simulate like the abstraction: every
	// abstract node ends up with a route (BGP sessions need entries on both
	// ends even when only one direction is live in the abstract graph).
	b2, err := New(reparsed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := b2.Instance(b2.Classes()[0])
	if err != nil {
		t.Fatal(err)
	}
	sol, err := srp.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range b2.G.Nodes() {
		if sol.Label[u] == nil {
			t.Fatalf("re-parsed abstract config leaves %s without a route", b2.G.Name(u))
		}
	}
}

// TestInstanceErrors checks the error paths of instance construction.
func TestInstanceErrors(t *testing.T) {
	b, err := New(netgen.Ring(4))
	if err != nil {
		t.Fatal(err)
	}
	var bad = b.Classes()[0]
	bad.Origins = nil
	if _, err := b.Instance(bad); err == nil {
		t.Fatal("class without origins accepted")
	}
	bad.Origins = []string{"ghost"}
	if _, err := b.Instance(bad); err == nil {
		t.Fatal("class with unknown origin accepted")
	}
	if _, err := b.Compress(context.Background(), b.NewCompiler(true), bad); err == nil {
		t.Fatal("Compress accepted unknown origin")
	}
}
