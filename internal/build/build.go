// Package build is the orchestration layer tying the algorithmic packages
// into one compression pipeline (paper §7): it parses a vendor-independent
// network into an SRP topology, enumerates destination equivalence classes,
// compiles routing policies into canonical BDDs, runs the refinement loop of
// internal/core per class, and instantiates concrete and abstract SRP
// simulations for the verification engines.
//
// A Builder is safe for concurrent use: the verify engines fan out across
// destination classes with one goroutine per worker. The only shared mutable
// state is a set of caches guarded by a mutex; each policy.Compiler, however,
// wraps a single BDD manager and must not be shared between goroutines —
// create one compiler per worker (NewCompiler is cheap because the community
// universes and variable ordering are computed once per Builder).
package build

import (
	"fmt"
	"iter"
	"net/netip"
	"slices"
	"sync"
	"sync/atomic"

	"bonsai/internal/config"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
	"bonsai/internal/protocols"
	"bonsai/internal/topo"
)

// bgpSession is the precomputed, class-independent description of a live BGP
// session on the directed SRP edge (u, v): u learns from v, so v's export
// map runs first and u's import map second.
type bgpSession struct {
	expEnv *policy.Env
	expMap string
	impEnv *policy.Env
	impMap string
	ibgp   bool
	// redistOSPF/redistStatic record whether the sender v injects RIB routes
	// learned from those protocols into BGP (paper §6). They are part of the
	// edge's transfer function and therefore of its canonical key.
	redistOSPF   bool
	redistStatic bool
}

// ospfAdj is the precomputed OSPF adjacency on the directed edge (u, v):
// the cost u pays to reach via v, and whether the edge crosses an area
// boundary.
type ospfAdj struct {
	cost  int
	cross bool
}

// Builder owns the parsed network, its SRP topology and the caches shared
// across per-class compressions.
type Builder struct {
	// Cfg is the parsed network configuration.
	Cfg *config.Network
	// G is the SRP topology: one vertex per router, a pair of directed edges
	// per link.
	G *topo.Graph

	routers []*config.Router // indexed by NodeID
	hasBGP  bool

	// Community universes, computed once so that every compiler shares the
	// same variable ordering (paper §7: BDDs are built once per network).
	erasedUniverse []protocols.Community // only communities ever matched
	fullUniverse   []protocols.Community // every community mentioned

	bgpSess map[topo.Edge]bgpSession
	ospfAdj map[topo.Edge]ospfAdj

	// Flattened per-edge protocol tables, aligned with G.Edges(): the
	// class-independent inputs of EdgeKeyVec as dense vectors, so the
	// per-class edge-key derivation is array indexing instead of map
	// lookups. shapes holds the distinct session descriptors; shapeOf maps
	// each edge to its shape (-1 when the edge carries no BGP session), so
	// each shape's relation is resolved once per class, not once per edge.
	shapes    []bgpSession
	shapeOf   []int32
	ospfCost  []int32 // -1 when the edge has no OSPF adjacency
	ospfCross []bool

	classesOnce  sync.Once
	classes      []ec.Class
	classesReady atomic.Bool // classes is built (readable without the Once)

	lpOnce sync.Once
	lpUsed bool // some session route map sets a local preference (adopt.go)

	// Shared compilation universes (policy.Space): the canonical BDD
	// constant space per universe, built once so stamping a per-worker
	// compiler copies three flat arrays instead of re-deriving the
	// vocabulary. Index 0 = full universe, 1 = erased.
	polSpaces [2]*policy.Space

	mu         sync.Mutex
	roleCache  map[[2]bool]int
	matchedSet map[protocols.Community]bool

	// Cross-EC deduplication (dedup.go, transport.go): classes are
	// fingerprinted and compressed once per distinct fingerprint; symmetric
	// classes are served by verified partition transport. Completed
	// abstractions live in the bounded store (store.go); the fingerprint
	// intern table and the prefix->fingerprint memo are Builder-lifetime
	// (they grow with the class count, not with retained abstractions) and
	// survive eviction so evicted classes re-enter the store without
	// recomputing signatures they already proved deterministic.
	sigRMs     []rmRef
	sigACLs    []aclRef
	iso        *isoTables
	internMu   sync.Mutex
	fpIntern   map[string]int32
	fpByPrefix map[netip.Prefix]string
	// sigMemo stashes, per fingerprint, one signature computed by
	// ClassFingerprint (the scheduler's grouping key) for the group's
	// leader to consume inside Compress — the leader would otherwise
	// recompute the identical signature. Entries are deleted on
	// consumption, so the memo holds at most one signature per in-flight
	// group.
	sigMemo map[string]*classSig
	store   absStore

	ncOnce sync.Once
	nc     int // NumClasses memo
}

// New validates the network and constructs its Builder: the SRP graph, the
// per-edge protocol tables and the shared community universes.
func New(net *config.Network) (*Builder, error) {
	if net == nil {
		return nil, fmt.Errorf("build: nil network")
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	b := &Builder{
		Cfg:        net,
		G:          topo.New(),
		bgpSess:    make(map[topo.Edge]bgpSession),
		ospfAdj:    make(map[topo.Edge]ospfAdj),
		roleCache:  make(map[[2]bool]int),
		fpIntern:   make(map[string]int32),
		fpByPrefix: make(map[netip.Prefix]string),
		sigMemo:    make(map[string]*classSig),
		store:      newAbsStore(),
	}
	names := net.RouterNames()
	b.routers = make([]*config.Router, 0, len(names))
	for _, name := range names {
		b.G.AddNode(name)
		r := net.Routers[name]
		b.routers = append(b.routers, r)
		if r.BGP != nil {
			b.hasBGP = true
		}
	}
	for _, l := range net.Links {
		if l.Down {
			continue // administratively down: no SRP adjacency
		}
		b.G.AddLink(b.G.MustLookup(l.A), b.G.MustLookup(l.B))
	}
	for _, e := range b.G.Edges() {
		b.indexEdge(e)
	}
	b.buildEdgeTables()
	b.collectSigRefs()
	b.buildIsoTables()
	b.erasedUniverse = net.MatchedCommunities()
	b.fullUniverse = net.AllCommunities()
	b.matchedSet = make(map[protocols.Community]bool, len(b.erasedUniverse))
	for _, c := range b.erasedUniverse {
		b.matchedSet[c] = true
	}
	b.polSpaces[0] = policy.NewSpace(b.fullUniverse)
	b.polSpaces[1] = policy.NewSpace(b.erasedUniverse)
	return b, nil
}

// indexEdge precomputes the class-independent protocol state of directed
// edge e = (u, v): the BGP session (if configured on both ends) and the OSPF
// adjacency (if both interfaces exist).
func (b *Builder) indexEdge(e topo.Edge) {
	ur, vr := b.routers[e.U], b.routers[e.V]
	uName, vName := b.G.Name(e.U), b.G.Name(e.V)
	if ur.BGP != nil && vr.BGP != nil {
		uNb, vNb := ur.BGP.Neighbors[vName], vr.BGP.Neighbors[uName]
		if uNb != nil && vNb != nil {
			b.bgpSess[e] = bgpSession{
				expEnv:       vr.Env,
				expMap:       vNb.ExportMap,
				impEnv:       ur.Env,
				impMap:       uNb.ImportMap,
				ibgp:         ur.BGP.ASN == vr.BGP.ASN,
				redistOSPF:   vr.BGP.RedistributeOSPF,
				redistStatic: vr.BGP.RedistributeStatic,
			}
		}
	}
	if ur.OSPF != nil && vr.OSPF != nil {
		uIf, uOK := ur.OSPF.Ifaces[vName]
		vIf, vOK := vr.OSPF.Ifaces[uName]
		if uOK && vOK {
			cost := uIf.Cost
			if cost <= 0 {
				cost = 1
			}
			b.ospfAdj[e] = ospfAdj{cost: cost, cross: uIf.Area != vIf.Area}
		}
	}
}

// buildEdgeTables flattens the per-edge protocol maps into vectors aligned
// with G.Edges(), interning distinct BGP session descriptors to shape ids.
// Runs once from New; everything here is class-independent.
func (b *Builder) buildEdgeTables() {
	edges := b.G.Edges()
	b.shapeOf = make([]int32, len(edges))
	b.ospfCost = make([]int32, len(edges))
	b.ospfCross = make([]bool, len(edges))
	shapeIDs := make(map[bgpSession]int32)
	for i, e := range edges {
		b.shapeOf[i] = -1
		b.ospfCost[i] = -1
		if sess, ok := b.bgpSess[e]; ok {
			// The identity map is namespace-independent (same normalisation
			// as edgeRelation's cache key): without it every router's Env
			// pointer would make every session a distinct shape.
			if sess.expMap == "" {
				sess.expEnv = nil
			}
			if sess.impMap == "" {
				sess.impEnv = nil
			}
			id, ok := shapeIDs[sess]
			if !ok {
				id = int32(len(b.shapes))
				shapeIDs[sess] = id
				b.shapes = append(b.shapes, sess)
			}
			b.shapeOf[i] = id
		}
		if adj, ok := b.ospfAdj[e]; ok {
			b.ospfCost[i] = int32(adj.cost)
			b.ospfCross[i] = adj.cross
		}
	}
}

// Classes returns the destination equivalence classes of the network,
// deterministically ordered by prefix (paper §5.1). The slice is computed
// once and shared; callers must not modify it.
func (b *Builder) Classes() []ec.Class {
	b.classesOnce.Do(func() {
		b.classes = ec.Classes(b.Cfg)
		b.classesReady.Store(true)
	})
	return b.classes
}

// ClassFor returns the destination class owning the given prefix.
func (b *Builder) ClassFor(prefix string) (ec.Class, error) {
	return ec.ClassFor(b.Cfg, prefix)
}

// ClassStream yields the destination classes lazily in the same
// deterministic order as Classes, walking the prefix trie on demand. It is
// the enumeration layer of the streaming pipeline: unlike Classes, it never
// materializes (or memoizes) the class slice, so a consumer that hands each
// class straight to a compression worker holds one class at a time. When
// some caller has already paid for the memoized slice (Classes), repeated
// streams serve from it instead of rebuilding the trie.
func (b *Builder) ClassStream() iter.Seq[ec.Class] {
	if b.classesReady.Load() {
		return slices.Values(b.classes)
	}
	return ec.Stream(b.Cfg)
}

// NumClasses counts the destination classes without materializing them,
// memoized per Builder (progress reporting and ratio denominators need the
// count, not the slice).
func (b *Builder) NumClasses() int {
	b.ncOnce.Do(func() {
		for range b.ClassStream() {
			b.nc++
		}
	})
	return b.nc
}

// ClassFingerprint returns the class's deduplication fingerprint — the
// grouping key of the streaming scheduler: classes with equal fingerprints
// share one abstraction, so the scheduler runs one leader per fingerprint
// and parks the rest until the leader's result is cached. The prefix ->
// fingerprint memo is Builder-lifetime (eviction from the abstraction
// store never invalidates it: the mapping is deterministic), so repeated
// streams pay the signature computation once per class.
func (b *Builder) ClassFingerprint(cls ec.Class) (string, error) {
	b.internMu.Lock()
	fp, ok := b.fpByPrefix[cls.Prefix]
	b.internMu.Unlock()
	if ok {
		return fp, nil
	}
	sig, err := b.classSignature(cls)
	if err != nil {
		return "", err
	}
	// Stash the signature for the group's leader (first one per
	// fingerprint wins; group members share fingerprint semantics, so any
	// member's signature serves the leader).
	b.internMu.Lock()
	if _, ok := b.sigMemo[sig.fp]; !ok {
		b.sigMemo[sig.fp] = sig
	}
	b.internMu.Unlock()
	return sig.fp, nil
}

// takeSig consumes a stashed signature for fp, if one exists.
func (b *Builder) takeSig(fp string) *classSig {
	b.internMu.Lock()
	defer b.internMu.Unlock()
	s := b.sigMemo[fp]
	if s != nil {
		delete(b.sigMemo, fp)
	}
	return s
}

// HasBGP reports whether any router runs BGP; if so, compression uses the
// BGP-effective mode (∀∀ refinement plus case splitting, paper §4.3).
func (b *Builder) HasBGP() bool { return b.hasBGP }

// NewCompiler creates a policy compiler over the network's community
// universe. With eraseUnusedTags, the universe contains only communities
// that some route map can match, implementing the unused-tag-erasing
// attribute abstraction of §8; otherwise every mentioned community gets BDD
// variables. Compilers reuse the Builder's precomputed universes, so the
// variable ordering is identical across compilers and the per-compiler
// canonical edge-policy cache composes across destination classes.
//
// A compiler (and its BDD manager) must only be used by one goroutine at a
// time; create one per worker for parallel compression.
func (b *Builder) NewCompiler(eraseUnusedTags bool) *policy.Compiler {
	return b.NewCompilerSized(eraseUnusedTags, 0)
}

// NewCompilerSized is NewCompiler with an explicit BDD operation-cache size
// exponent (see bdd.NewSized); 0 selects the default geometry. The compiler
// is stamped from the Builder's shared policy.Space, so construction copies
// precomputed seed arrays instead of re-deriving the universe.
func (b *Builder) NewCompilerSized(eraseUnusedTags bool, bddCacheBits int) *policy.Compiler {
	sp := b.polSpaces[0]
	if eraseUnusedTags {
		sp = b.polSpaces[1]
	}
	c := sp.NewCompiler(bddCacheBits)
	c.Cache = newCompilerCache()
	return c
}

// cacheFor returns the canonical-relation cache riding on comp, creating
// one for foreign compilers (not obtained via NewCompiler). The cache lives
// on the compiler itself — owned by the worker goroutine that owns the
// compiler, reachable exactly as long as the compiler is, and carried along
// when a pool's compilers outlive a configuration delta — so workers never
// serialize on a Builder-level registry lock, and a dropped compiler's BDD
// tables become garbage with it.
func (b *Builder) cacheFor(comp *policy.Compiler) *compilerCache {
	if cc, ok := comp.Cache.(*compilerCache); ok {
		return cc
	}
	cc := newCompilerCache()
	comp.Cache = cc
	return cc
}

// destOf resolves the destination vertex of a class. Classes always carry at
// least one origin; anycast classes (several origins) are modelled from
// their first origin, which is the only form the evaluation networks use.
func (b *Builder) destOf(cls ec.Class) (topo.NodeID, error) {
	if len(cls.Origins) == 0 {
		return 0, fmt.Errorf("build: class %v has no origin router", cls.Prefix)
	}
	dest, ok := b.G.Lookup(cls.Origins[0])
	if !ok {
		return 0, fmt.Errorf("build: class %v origin %q is not a router", cls.Prefix, cls.Origins[0])
	}
	return dest, nil
}

// staticEdges returns the directed edges (u, v) on which u has a static
// route applicable to the class: its prefix covers the class prefix (equal
// or shorter, so the class's addresses fall under it) and points via v.
//
// Limitation: the class partition (internal/ec) splits the address space on
// originated prefixes only, so a static route strictly finer than its class
// prefix would govern only part of the class's range and is excluded here
// rather than modelled per sub-range. Configurations from the generators
// never contain such statics (theirs are exact originated prefixes or
// defaults); hand-written ones that do will see those statics ignored.
func (b *Builder) staticEdges(cls ec.Class) map[topo.Edge]bool {
	out := make(map[topo.Edge]bool)
	for u, r := range b.routers {
		for _, s := range r.Statics {
			if !staticCovers(s.Prefix, cls.Prefix) {
				continue
			}
			if v, ok := b.G.Lookup(s.NextHop); ok {
				out[topo.Edge{U: topo.NodeID(u), V: v}] = true
			}
		}
	}
	return out
}

// staticCovers reports whether a static route for sp governs the class
// prefix: equal or shorter, with the class's addresses under it.
func staticCovers(sp, cls netip.Prefix) bool {
	sp = sp.Masked()
	return sp.Bits() <= cls.Bits() && sp.Contains(cls.Addr())
}

// aclPermit reports whether traffic for the class may be forwarded by u out
// the interface toward v (paper §6: ACLs filter traffic, not routes).
func (b *Builder) aclPermit(u, v topo.NodeID, cls ec.Class) bool {
	r := b.routers[u]
	name := r.IfaceACL[b.G.Name(v)]
	if name == "" {
		return true
	}
	return r.Env.ACLPermits(name, cls.Prefix)
}

// ACLPermitFunc returns the dataplane ACL verdict function for the concrete
// network and one destination class.
func (b *Builder) ACLPermitFunc(cls ec.Class) func(u, v topo.NodeID) bool {
	return func(u, v topo.NodeID) bool { return b.aclPermit(u, v, cls) }
}
