// SRP instantiation: turning a configuration plus a destination class into
// the multi-protocol Stable Routing Problem of §6, either over the concrete
// topology or over a computed abstraction (where every abstract edge
// behaves like its representative concrete edge, which transfer-equivalence
// makes well defined).

package build

import (
	"fmt"
	"net/netip"

	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
	"bonsai/internal/protocols"
	"bonsai/internal/srp"
	"bonsai/internal/topo"
)

// rmRef names a route map inside a router's policy namespace.
type rmRef struct {
	env  *policy.Env
	name string
}

// redistFlags records which RIB sources a router injects into BGP.
type redistFlags struct {
	ospf, static bool
}

// copyGroups inverts abs.Copies: abstract node -> group index.
func copyGroups(abs *core.Abstraction) map[topo.NodeID]int {
	groupOf := make(map[topo.NodeID]int, abs.AbsG.NumNodes())
	for gi, copies := range abs.Copies {
		for _, c := range copies {
			groupOf[c] = gi
		}
	}
	return groupOf
}

// groupRep returns the configuration of group gi's representative member.
func (b *Builder) groupRep(abs *core.Abstraction, gi int) *config.Router {
	return b.routers[abs.Groups[gi][0]]
}

// instanceTables collects the per-edge protocol state of one SRP instance.
type instanceTables struct {
	bgpEdges  map[topo.Edge]bool
	ibgp      map[topo.Edge]bool
	expPol    map[topo.Edge]rmRef
	impPol    map[topo.Edge]rmRef
	ospfEdges map[topo.Edge]bool
	ospfCost  map[topo.Edge]int
	ospfCross map[topo.Edge]bool
	statics   map[topo.Edge]bool
	redist    map[topo.NodeID]redistFlags
}

// Instance builds the concrete SRP instance of one destination class: the
// full topology, the class's origin router as destination, and the §6
// multi-protocol attribute combining BGP, OSPF and static routing through
// the main RIB.
func (b *Builder) Instance(cls ec.Class) (*srp.Instance, error) {
	dest, err := b.destOf(cls)
	if err != nil {
		return nil, err
	}
	statics := b.staticEdges(cls)
	t := newInstanceTables()
	for _, e := range b.G.Edges() {
		if sess, ok := b.bgpSess[e]; ok {
			t.addBGP(e, sess)
		}
		if adj, ok := b.ospfAdj[e]; ok {
			t.addOSPF(e, adj)
		}
		if statics[e] {
			t.statics[e] = true
		}
	}
	for _, u := range b.G.Nodes() {
		if bgp := b.routers[u].BGP; bgp != nil {
			t.redist[u] = redistFlags{ospf: bgp.RedistributeOSPF, static: bgp.RedistributeStatic}
		}
	}
	return &srp.Instance{G: b.G, Dest: dest, P: t.protocol(cls.Prefix, b.routers[dest])}, nil
}

// AbstractInstance builds the SRP instance of the compressed network for the
// class: the abstract topology with every edge inheriting the protocol
// behavior of its representative concrete edge (RepEdge), and the abstract
// destination originating exactly as the concrete one does.
func (b *Builder) AbstractInstance(cls ec.Class, abs *core.Abstraction) (*srp.Instance, error) {
	if _, err := b.destOf(cls); err != nil {
		return nil, err
	}
	statics := b.staticEdges(cls)
	groupOf := copyGroups(abs)
	t := newInstanceTables()
	for _, e := range abs.AbsG.Edges() {
		rep, ok := abs.RepEdge[e]
		if !ok {
			return nil, fmt.Errorf("build: abstract edge %s->%s has no representative",
				abs.AbsG.Name(e.U), abs.AbsG.Name(e.V))
		}
		if sess, ok := b.bgpSess[rep]; ok {
			t.addBGP(e, sess)
		}
		if adj, ok := b.ospfAdj[rep]; ok {
			t.addOSPF(e, adj)
		}
		if statics[rep] {
			t.statics[e] = true
		}
	}
	for _, c := range abs.AbsG.Nodes() {
		if bgp := b.groupRep(abs, groupOf[c]).BGP; bgp != nil {
			t.redist[c] = redistFlags{ospf: bgp.RedistributeOSPF, static: bgp.RedistributeStatic}
		}
	}
	destRouter := b.routers[abs.Dest]
	return &srp.Instance{G: abs.AbsG, Dest: abs.AbsDest, P: t.protocol(cls.Prefix, destRouter)}, nil
}

// AbstractACLPermitFunc returns the dataplane ACL verdict function for the
// compressed network: each abstract edge applies the ACL of its
// representative concrete edge (fwd-equivalence requires all edges mapped
// together to share the verdict, which the edge key guarantees).
func (b *Builder) AbstractACLPermitFunc(cls ec.Class, abs *core.Abstraction) func(u, v topo.NodeID) bool {
	return func(u, v topo.NodeID) bool {
		rep, ok := abs.RepEdge[topo.Edge{U: u, V: v}]
		if !ok {
			return true
		}
		return b.aclPermit(rep.U, rep.V, cls)
	}
}

func newInstanceTables() *instanceTables {
	return &instanceTables{
		bgpEdges:  make(map[topo.Edge]bool),
		ibgp:      make(map[topo.Edge]bool),
		expPol:    make(map[topo.Edge]rmRef),
		impPol:    make(map[topo.Edge]rmRef),
		ospfEdges: make(map[topo.Edge]bool),
		ospfCost:  make(map[topo.Edge]int),
		ospfCross: make(map[topo.Edge]bool),
		statics:   make(map[topo.Edge]bool),
		redist:    make(map[topo.NodeID]redistFlags),
	}
}

func (t *instanceTables) addBGP(e topo.Edge, sess bgpSession) {
	t.bgpEdges[e] = true
	if sess.ibgp {
		t.ibgp[e] = true
	}
	if sess.expMap != "" {
		t.expPol[e] = rmRef{env: sess.expEnv, name: sess.expMap}
	}
	if sess.impMap != "" {
		t.impPol[e] = rmRef{env: sess.impEnv, name: sess.impMap}
	}
}

func (t *instanceTables) addOSPF(e topo.Edge, adj ospfAdj) {
	t.ospfEdges[e] = true
	t.ospfCost[e] = adj.cost
	if adj.cross {
		t.ospfCross[e] = true
	}
}

// protocol assembles the §6 multi-protocol SRP protocol from the tables.
func (t *instanceTables) protocol(pfx netip.Prefix, destRouter *config.Router) srp.Protocol {
	exp := func(e topo.Edge, a *protocols.BGPAttr) *protocols.BGPAttr {
		if r, ok := t.expPol[e]; ok {
			return r.env.EvalRouteMap(r.name, pfx, a)
		}
		return a
	}
	imp := func(e topo.Edge, a *protocols.BGPAttr) *protocols.BGPAttr {
		if r, ok := t.impPol[e]; ok {
			return r.env.EvalRouteMap(r.name, pfx, a)
		}
		return a
	}
	redist := func(v topo.NodeID, src protocols.RouteSource) bool {
		r, ok := t.redist[v]
		if !ok {
			return false
		}
		switch src {
		case protocols.SrcOSPF:
			return r.ospf
		case protocols.SrcStatic:
			return r.static
		default:
			return false
		}
	}
	return &protocols.Multi{
		BGP:        &protocols.BGP{Export: exp, Import: imp, IBGP: t.ibgp},
		OSPF:       &protocols.OSPF{Cost: t.ospfCost, CrossArea: t.ospfCross},
		Static:     &protocols.Static{Routes: t.statics},
		BGPEdges:   t.bgpEdges,
		OSPFEdges:  t.ospfEdges,
		Redist:     redist,
		OriginBGP:  destRouter.BGP != nil,
		OriginOSPF: destRouter.OSPF != nil,
	}
}
