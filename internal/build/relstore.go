// The persisted relation store: a versioned, CRC-framed on-disk image of
// the Builder's warm state — the abstraction store's completed entries and
// a policy compiler's canonical edge-relation cache — so a restarted
// process answers its first queries from disk instead of re-running
// refinement over every fingerprint group.
//
// The format follows the write-ahead journal's framing discipline
// (internal/journal): a fixed magic, then length-and-CRC-framed records,
// then a trailer record whose presence proves the file was written to
// completion. Loading is all-or-nothing: every record is parsed and
// validated into private staging first, and only a fully consistent file
// mutates the Builder — a truncated or bit-flipped file is rejected with an
// error and the store is left exactly as it was (a cold start, since the
// store is a cache and never the source of truth).
//
// Two identities gate a load. The config hash (SHA-256 of the canonical
// config text) ties the file to the exact network it was saved from: any
// drift — including a crash after the relation store was written but before
// the journal sealed — fails the hash and degrades to a cold start.
// Abstraction entries are keyed by a member destination prefix rather than
// by the store's fingerprint string, because fingerprints embed intern-table
// IDs assigned in arrival order and are therefore not stable across
// processes; the prefix re-derives the fingerprint deterministically in the
// loading Builder. BDD relations are keyed by (router-name-resolved policy
// namespaces, map names, session kind, prefix-fingerprint) over one shared
// exported node array; refs below the canonical seed prefix are stable by
// construction (internal/bdd), and Import re-canonicalises the rest.
package build

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"

	"bonsai/internal/bdd"
	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
	"bonsai/internal/topo"
)

// relStoreMagic opens every relation-store file; the trailing byte is the
// format version and bumps on incompatible changes.
const relStoreMagic = "BRELST\x00\x01"

// Record types.
const (
	recMeta    = 1    // format guard: config hash + topology shape
	recClass   = 2    // one completed abstraction-store entry
	recRels    = 3    // a compiler's edge-relation cache over one node array
	recTrailer = 0x7f // completion proof: record count
)

var relCRC = crc32.MakeTable(crc32.Castagnoli)

// ---------------------------------------------------------------------------
// Primitive encoding. Records are byte slices built with appenders and read
// with a cursor that latches the first error; all integers are uvarint
// except the fixed-width framing and the raw BDD node array.

type relDec struct {
	b   []byte
	off int
	err error
}

func (d *relDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("build: relation store: "+format, args...)
	}
}

func (d *relDec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and bounds it by the bytes remaining (each
// element costs at least min bytes), so a corrupt length cannot drive an
// allocation far beyond the file size.
func (d *relDec) count(min int) int {
	v := d.uv()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64((len(d.b)-d.off)/min+1) {
		d.fail("implausible collection length %d at offset %d", v, d.off)
		return 0
	}
	return int(v)
}

func (d *relDec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *relDec) boolv() bool { return d.u8() != 0 }

func (d *relDec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.b) {
		d.fail("truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *relDec) u32s() []uint32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	if d.off+4*n > len(d.b) {
		d.fail("truncated u32 array at offset %d", d.off)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
	}
	return out
}

func (d *relDec) bits() []bool {
	v := d.uv()
	if d.err != nil {
		return nil
	}
	// Bitsets pack 8 elements per byte, so the generic count() bound (one
	// byte per element) is 8x too strict here; bound against bits remaining.
	if v > uint64(len(d.b)-d.off)*8 {
		d.fail("implausible bitset length %d at offset %d", v, d.off)
		return nil
	}
	n := int(v)
	nb := (n + 7) / 8
	if d.off+nb > len(d.b) {
		d.fail("truncated bitset at offset %d", d.off)
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.b[d.off+i/8]&(1<<(i%8)) != 0
	}
	d.off += nb
	return out
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendBits(b []byte, bs []bool) []byte {
	b = binary.AppendUvarint(b, uint64(len(bs)))
	var cur byte
	for i, v := range bs {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(bs)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

func appendU32s(b []byte, vs []uint32) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// ---------------------------------------------------------------------------
// Framing.

func writeRecord(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, relCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// nextRecord slices the record at off, verifying its frame CRC. A short or
// corrupt frame is an error: unlike the journal (whose tail legitimately
// tears mid-append), the relation store is written atomically, so any damage
// means the file must be rejected whole.
func nextRecord(b []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(b) {
		return nil, 0, fmt.Errorf("build: relation store: truncated frame at offset %d", off)
	}
	n := binary.LittleEndian.Uint32(b[off:])
	crc := binary.LittleEndian.Uint32(b[off+4:])
	if off+8+int(n) > len(b) {
		return nil, 0, fmt.Errorf("build: relation store: truncated record at offset %d", off)
	}
	payload = b[off+8 : off+8+int(n)]
	if crc32.Checksum(payload, relCRC) != crc {
		return nil, 0, fmt.Errorf("build: relation store: CRC mismatch at offset %d", off)
	}
	return payload, off + 8 + int(n), nil
}

// ConfigHash returns the identity a relation store is bound to: the SHA-256
// of the network's canonical config text.
func ConfigHash(n *config.Network) [32]byte {
	return sha256.Sum256([]byte(config.PrintString(n)))
}

// ---------------------------------------------------------------------------
// Save.

// envName maps each router's policy namespace to its router name so relation
// cache keys (which hold namespace pointers) serialise by name; the first
// router wins on a shared namespace, which is stable because router order is.
func (b *Builder) envNames() map[*policy.Env]string {
	m := make(map[*policy.Env]string, len(b.routers))
	for i, r := range b.routers {
		if r.Env != nil {
			if _, ok := m[r.Env]; !ok {
				m[r.Env] = b.G.Name(topo.NodeID(i))
			}
		}
	}
	return m
}

// MergeRelationCaches copies every relation cached on src into dst (keys dst
// already holds win), translating the BDD subgraphs between the two managers
// through export/import. Both compilers must come from this Builder and
// share a variable universe; the caller owns both. Synthetic redistribution
// composites are per-compiler handles and are not merged — they rebuild
// lazily and cheaply.
func (b *Builder) MergeRelationCaches(dst, src *policy.Compiler) error {
	if dst == src {
		return nil
	}
	if !slices.Equal(dst.Universe(), src.Universe()) {
		return fmt.Errorf("build: merge relation caches: universe mismatch")
	}
	ccs := b.cacheFor(src)
	if len(ccs.rels) == 0 {
		return nil
	}
	keys := make([]relKey, 0, len(ccs.rels))
	roots := make([]bdd.Node, 0, len(ccs.rels))
	for k, ent := range ccs.rels {
		keys = append(keys, k)
		roots = append(roots, ent.rel)
	}
	nodes, refs := src.M.Export(roots)
	moved, err := dst.M.Import(nodes, refs)
	if err != nil {
		return err
	}
	ccd := b.cacheFor(dst)
	for i, k := range keys {
		if _, ok := ccd.rels[k]; !ok {
			ccd.rels[k] = relEntry{rel: moved[i], drops: ccs.rels[k].drops}
		}
	}
	return nil
}

// SaveRelationStore writes the Builder's warm state to w: every completed
// abstraction-store entry, plus (when comp is non-nil) comp's canonical
// edge-relation cache. comp must belong to this Builder and to the calling
// goroutine.
func (b *Builder) SaveRelationStore(w io.Writer, comp *policy.Compiler) error {
	if _, err := io.WriteString(w, relStoreMagic); err != nil {
		return err
	}
	records := 0

	// Meta: binds the file to this exact network and topology shape.
	hash := ConfigHash(b.Cfg)
	meta := make([]byte, 0, 64)
	meta = append(meta, recMeta)
	meta = append(meta, hash[:]...)
	meta = binary.AppendUvarint(meta, uint64(b.G.NumNodes()))
	meta = binary.AppendUvarint(meta, uint64(len(b.G.Edges())))
	if err := writeRecord(w, meta); err != nil {
		return err
	}
	records++

	// Snapshot completed entries and a prefix naming each, under the store
	// and intern locks respectively; entries are immutable once done, so the
	// encoding below runs lock-free.
	st := &b.store
	st.mu.Lock()
	entries := make([]*absEntry, 0, len(st.entries))
	for _, e := range st.entries {
		if e.done && e.err == nil && e.abs != nil {
			entries = append(entries, e)
		}
	}
	st.mu.Unlock()
	prefixOf := make(map[string]string, len(entries))
	b.internMu.Lock()
	for pfx, fp := range b.fpByPrefix {
		if _, ok := prefixOf[fp]; !ok {
			prefixOf[fp] = pfx.String()
		}
	}
	b.internMu.Unlock()
	// Deterministic output order (map iteration above is not).
	slices.SortFunc(entries, func(a, c *absEntry) int {
		return cmpStr(prefixOf[a.fp], prefixOf[c.fp])
	})
	for _, e := range entries {
		pfx, ok := prefixOf[e.fp]
		if !ok {
			continue // unreachable: every completed entry signatured a prefix
		}
		if err := writeRecord(w, encodeClassRecord(e, pfx)); err != nil {
			return err
		}
		records++
	}

	if comp != nil {
		payload, err := b.encodeRelsRecord(comp)
		if err != nil {
			return err
		}
		if payload != nil {
			if err := writeRecord(w, payload); err != nil {
				return err
			}
			records++
		}
	}

	trailer := []byte{recTrailer}
	trailer = binary.AppendUvarint(trailer, uint64(records))
	return writeRecord(w, trailer)
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// encodeClassRecord renders one completed store entry. Entries are named by
// a member prefix, not their fingerprint: fingerprints embed intern IDs
// assigned in arrival order, so only the prefix re-derives the same identity
// in another process.
func encodeClassRecord(e *absEntry, prefix string) []byte {
	a := e.abs
	p := make([]byte, 0, 256)
	p = append(p, recClass)
	p = appendStr(p, prefix)
	p = appendBool(p, e.pinned)
	p = binary.AppendUvarint(p, uint64(len(e.prefs)))
	for _, v := range e.prefs {
		p = binary.AppendUvarint(p, uint64(v))
	}
	p = appendBits(p, e.live)

	p = binary.AppendUvarint(p, uint64(a.Dest))
	p = binary.AppendUvarint(p, uint64(a.AbsDest))
	p = binary.AppendUvarint(p, uint64(a.Iterations))
	p = binary.AppendUvarint(p, uint64(a.ColorSplits))
	p = binary.AppendUvarint(p, uint64(len(a.Groups)))
	for _, g := range a.Groups {
		p = binary.AppendUvarint(p, uint64(len(g)))
		for _, u := range g {
			p = binary.AppendUvarint(p, uint64(u))
		}
	}
	p = binary.AppendUvarint(p, uint64(len(a.F)))
	for _, f := range a.F {
		p = binary.AppendUvarint(p, uint64(f))
	}
	p = binary.AppendUvarint(p, uint64(len(a.Copies)))
	for _, c := range a.Copies {
		p = binary.AppendUvarint(p, uint64(len(c)))
		for _, u := range c {
			p = binary.AppendUvarint(p, uint64(u))
		}
	}
	// Abstract graph: names, then its directed edge list.
	p = binary.AppendUvarint(p, uint64(a.AbsG.NumNodes()))
	for _, u := range a.AbsG.Nodes() {
		p = appendStr(p, a.AbsG.Name(u))
	}
	absEdges := a.AbsG.Edges()
	p = binary.AppendUvarint(p, uint64(len(absEdges)))
	for _, e := range absEdges {
		p = binary.AppendUvarint(p, uint64(e.U))
		p = binary.AppendUvarint(p, uint64(e.V))
	}
	p = binary.AppendUvarint(p, uint64(len(a.RepEdge)))
	reps := make([]topo.Edge, 0, len(a.RepEdge))
	for ae := range a.RepEdge {
		reps = append(reps, ae)
	}
	slices.SortFunc(reps, func(x, y topo.Edge) int {
		if x.U != y.U {
			return int(x.U) - int(y.U)
		}
		return int(x.V) - int(y.V)
	})
	for _, ae := range reps {
		ce := a.RepEdge[ae]
		p = binary.AppendUvarint(p, uint64(ae.U))
		p = binary.AppendUvarint(p, uint64(ae.V))
		p = binary.AppendUvarint(p, uint64(ce.U))
		p = binary.AppendUvarint(p, uint64(ce.V))
	}
	// abs.Live is the same vector as the entry's in every producing path;
	// persist a separate copy only if that ever diverges.
	shared := slices.Equal(a.Live, e.live)
	p = appendBool(p, shared)
	if !shared {
		p = appendBits(p, a.Live)
	}
	return p
}

// encodeRelsRecord renders comp's edge-relation cache: the cache keys with
// policy namespaces resolved to router names, and every relation exported
// over one shared node array. Returns nil when the cache is empty.
func (b *Builder) encodeRelsRecord(comp *policy.Compiler) ([]byte, error) {
	cc := b.cacheFor(comp)
	if len(cc.rels) == 0 {
		return nil, nil
	}
	names := b.envNames()
	type flatKey struct {
		expRouter, expMap, impRouter, impMap string
		ibgp                                 bool
		fp                                   string
		rel                                  bdd.Node
		drops                                bool
	}
	flat := make([]flatKey, 0, len(cc.rels))
	for k, ent := range cc.rels {
		fk := flatKey{
			expMap: k.expMap, impMap: k.impMap,
			ibgp: k.ibgp, fp: k.fp, rel: ent.rel, drops: ent.drops,
		}
		if k.expEnv != nil {
			n, ok := names[k.expEnv]
			if !ok {
				continue // foreign namespace; nothing to resolve it at load
			}
			fk.expRouter = n
		}
		if k.impEnv != nil {
			n, ok := names[k.impEnv]
			if !ok {
				continue
			}
			fk.impRouter = n
		}
		flat = append(flat, fk)
	}
	slices.SortFunc(flat, func(a, c flatKey) int {
		if v := cmpStr(a.expRouter, c.expRouter); v != 0 {
			return v
		}
		if v := cmpStr(a.expMap, c.expMap); v != 0 {
			return v
		}
		if v := cmpStr(a.impRouter, c.impRouter); v != 0 {
			return v
		}
		if v := cmpStr(a.impMap, c.impMap); v != 0 {
			return v
		}
		if a.ibgp != c.ibgp {
			if a.ibgp {
				return 1
			}
			return -1
		}
		return cmpStr(a.fp, c.fp)
	})
	roots := make([]bdd.Node, len(flat))
	for i := range flat {
		roots[i] = flat[i].rel
	}
	nodes, refs := comp.M.Export(roots)

	p := make([]byte, 0, 64+4*len(nodes)+32*len(flat))
	p = append(p, recRels)
	p = appendBool(p, slices.Equal(comp.Universe(), b.erasedUniverse))
	p = binary.AppendUvarint(p, uint64(compilerNumVars(comp)))
	p = appendU32s(p, nodes)
	p = binary.AppendUvarint(p, uint64(len(flat)))
	for i, fk := range flat {
		p = appendStr(p, fk.expRouter)
		p = appendStr(p, fk.expMap)
		p = appendStr(p, fk.impRouter)
		p = appendStr(p, fk.impMap)
		p = appendBool(p, fk.ibgp)
		p = appendStr(p, fk.fp)
		p = appendBool(p, fk.drops)
		p = binary.LittleEndian.AppendUint32(p, refs[i])
	}
	return p, nil
}

// compilerNumVars derives the BDD variable count of a compiler's manager
// from its universe (the layout of internal/policy: in/out pairs per
// community and LP bit, plus the drop flag).
func compilerNumVars(comp *policy.Compiler) int {
	return 2*len(comp.Universe()) + 2*policy.LPBits + 1
}

// SaveRelationStoreFile writes the relation store to path with the journal's
// atomic-replace discipline: temp file in the same directory, fsync, rename
// over the target, fsync the directory. A crash mid-save leaves either the
// old file or none — never a torn one.
func (b *Builder) SaveRelationStoreFile(path string, comp *policy.Compiler) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".relstore-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = b.SaveRelationStore(tmp, comp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Load.

// stagedClass is one parsed-and-validated class record, not yet installed.
type stagedClass struct {
	prefix string
	pinned bool
	prefs  []int
	live   []bool
	abs    *core.Abstraction
}

// stagedRels is the parsed relation record.
type stagedRels struct {
	erased bool
	nvars  int
	nodes  []uint32
	keys   []relKey
	drops  []bool
	refs   []uint32
}

// LoadRelationStore parses a relation store from r and, if every record
// validates against this Builder, installs the abstractions into the store
// and the relations into comp's edge-relation cache (comp may be nil to
// load abstractions only). It returns the number of abstraction entries
// installed. On any error nothing is installed: the file either loads whole
// or is rejected whole.
func (b *Builder) LoadRelationStore(r io.Reader, comp *policy.Compiler) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	if len(data) < len(relStoreMagic) || string(data[:len(relStoreMagic)]) != relStoreMagic {
		return 0, fmt.Errorf("build: relation store: bad magic")
	}

	var (
		sawMeta    bool
		classes    []*stagedClass
		rels       *stagedRels
		records    int
		sawTrailer bool
	)
	off := len(relStoreMagic)
	for off < len(data) {
		payload, next, err := nextRecord(data, off)
		if err != nil {
			return 0, err
		}
		off = next
		if len(payload) == 0 {
			return 0, fmt.Errorf("build: relation store: empty record")
		}
		d := &relDec{b: payload, off: 1}
		switch payload[0] {
		case recMeta:
			if sawMeta {
				return 0, fmt.Errorf("build: relation store: duplicate meta record")
			}
			sawMeta = true
			if err := b.checkMeta(d); err != nil {
				return 0, err
			}
			records++
		case recClass:
			if !sawMeta {
				return 0, fmt.Errorf("build: relation store: class record before meta")
			}
			sc, err := b.decodeClassRecord(d)
			if err != nil {
				return 0, err
			}
			classes = append(classes, sc)
			records++
		case recRels:
			if !sawMeta {
				return 0, fmt.Errorf("build: relation store: relations record before meta")
			}
			if rels != nil {
				return 0, fmt.Errorf("build: relation store: duplicate relations record")
			}
			rels, err = b.decodeRelsRecord(d)
			if err != nil {
				return 0, err
			}
			records++
		case recTrailer:
			n := d.uv()
			if d.err != nil {
				return 0, d.err
			}
			if n != uint64(records) {
				return 0, fmt.Errorf("build: relation store: trailer count %d != %d records", n, records)
			}
			if off != len(data) {
				return 0, fmt.Errorf("build: relation store: %d trailing bytes after trailer", len(data)-off)
			}
			sawTrailer = true
		default:
			return 0, fmt.Errorf("build: relation store: unknown record type %#x", payload[0])
		}
	}
	if !sawTrailer {
		return 0, fmt.Errorf("build: relation store: missing trailer (truncated save)")
	}
	if !sawMeta {
		return 0, fmt.Errorf("build: relation store: missing meta record")
	}

	// Resolve every class record against this Builder's own class machinery
	// before touching shared state: compute the local signature (and thereby
	// the local fingerprint) per staged prefix, and pre-resolve relation keys
	// against the live config. Signature computation memoizes into
	// fpByPrefix/fpIntern, which is harmless — those memos are deterministic
	// and Builder-lifetime regardless of how the load ends.
	type install struct {
		sc  *stagedClass
		sig *classSig
	}
	installs := make([]install, 0, len(classes))
	seen := make(map[string]bool, len(classes))
	// One pass over the memoized class slice instead of ClassFor per staged
	// prefix: ClassFor rebuilds the prefix trie on every call, which turns
	// the load quadratic at fat-tree-2000 scale (800 classes).
	byPrefix := make(map[string]ec.Class, len(classes))
	for _, cls := range b.Classes() {
		byPrefix[cls.Prefix.String()] = cls
	}
	for _, sc := range classes {
		cls, ok := byPrefix[sc.prefix]
		if !ok {
			return 0, fmt.Errorf("build: relation store: class %q: no such destination class", sc.prefix)
		}
		sig, err := b.classSignature(cls)
		if err != nil {
			return 0, fmt.Errorf("build: relation store: class %q: %w", sc.prefix, err)
		}
		if sig.dest != sc.abs.Dest {
			return 0, fmt.Errorf("build: relation store: class %q: destination mismatch", sc.prefix)
		}
		if seen[sig.fp] {
			return 0, fmt.Errorf("build: relation store: class %q: duplicate fingerprint", sc.prefix)
		}
		seen[sig.fp] = true
		if sc.pinned {
			// Transport seeds serve concurrent candidate scans; their labels
			// and colors must be computed while the signature is still
			// private to this goroutine.
			b.ensureLabels(sig)
			b.ensureColors(sig)
		}
		installs = append(installs, install{sc: sc, sig: sig})
	}
	var relRoots []bdd.Node
	if rels != nil && comp != nil {
		if rels.nvars != compilerNumVars(comp) {
			return 0, fmt.Errorf("build: relation store: relations over %d BDD variables, compiler has %d",
				rels.nvars, compilerNumVars(comp))
		}
		if rels.erased != slices.Equal(comp.Universe(), b.erasedUniverse) {
			return 0, fmt.Errorf("build: relation store: relations universe mismatch")
		}
		relRoots, err = comp.M.Import(rels.nodes, rels.refs)
		if err != nil {
			return 0, err
		}
	}

	// Everything validated; install. The store lock is taken per entry, as
	// Compress would.
	installed := 0
	st := &b.store
	for _, in := range installs {
		sc, sig := in.sc, in.sig
		sc.abs.G = b.G
		ready := make(chan struct{})
		close(ready)
		e := &absEntry{
			ready: ready,
			abs:   sc.abs,
			fp:    sig.fp,
			sig:   sig,
			live:  sc.live,
			prefs: sc.prefs,
			done:  true,
			src:   ProvCached,
		}
		st.mu.Lock()
		if _, exists := st.entries[sig.fp]; exists {
			st.mu.Unlock()
			continue // already warm (load raced a query, or was run twice)
		}
		st.entries[sig.fp] = e
		if sc.pinned && sc.abs.ColorSplits == 0 {
			e.pinned = true
			st.isoIndex[sig.histo] = append(st.isoIndex[sig.histo], e)
		}
		st.account(e)
		st.evict()
		st.mu.Unlock()
		installed++
	}
	if rels != nil && comp != nil {
		cc := b.cacheFor(comp)
		for i, k := range rels.keys {
			if _, ok := cc.rels[k]; !ok {
				cc.rels[k] = relEntry{rel: relRoots[i], drops: rels.drops[i]}
			}
		}
	}
	return installed, nil
}

// LoadRelationStoreFile loads the relation store at path; see
// LoadRelationStore.
func (b *Builder) LoadRelationStoreFile(path string, comp *policy.Compiler) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return b.LoadRelationStore(f, comp)
}

// checkMeta validates the meta record against this Builder's network.
func (b *Builder) checkMeta(d *relDec) error {
	if d.off+32 > len(d.b) {
		return fmt.Errorf("build: relation store: truncated meta record")
	}
	var hash [32]byte
	copy(hash[:], d.b[d.off:])
	d.off += 32
	nodes := d.uv()
	edges := d.uv()
	if d.err != nil {
		return d.err
	}
	if hash != ConfigHash(b.Cfg) {
		return fmt.Errorf("build: relation store: config hash mismatch (saved from a different network)")
	}
	if nodes != uint64(b.G.NumNodes()) || edges != uint64(len(b.G.Edges())) {
		return fmt.Errorf("build: relation store: topology shape mismatch")
	}
	return nil
}

// decodeClassRecord parses and structurally validates one class record.
func (b *Builder) decodeClassRecord(d *relDec) (*stagedClass, error) {
	numNodes := b.G.NumNodes()
	numEdges := len(b.G.Edges())

	sc := &stagedClass{}
	sc.prefix = d.str()
	sc.pinned = d.boolv()
	nPrefs := d.count(1)
	sc.prefs = make([]int, nPrefs)
	for i := range sc.prefs {
		sc.prefs[i] = int(d.uv())
	}
	sc.live = d.bits()

	a := &core.Abstraction{}
	a.Dest = topo.NodeID(d.uv())
	a.AbsDest = topo.NodeID(d.uv())
	a.Iterations = int(d.uv())
	a.ColorSplits = int(d.uv())
	nGroups := d.count(1)
	a.Groups = make([][]topo.NodeID, nGroups)
	for i := range a.Groups {
		g := make([]topo.NodeID, d.count(1))
		for j := range g {
			g[j] = topo.NodeID(d.uv())
		}
		a.Groups[i] = g
	}
	nF := d.count(1)
	a.F = make([]int, nF)
	for i := range a.F {
		a.F[i] = int(d.uv())
	}
	nCopies := d.count(1)
	a.Copies = make([][]topo.NodeID, nCopies)
	for i := range a.Copies {
		c := make([]topo.NodeID, d.count(1))
		for j := range c {
			c[j] = topo.NodeID(d.uv())
		}
		a.Copies[i] = c
	}
	nAbs := d.count(1)
	g := topo.New()
	for i := 0; i < nAbs; i++ {
		g.AddNode(d.str())
	}
	nAbsEdges := d.count(2)
	for i := 0; i < nAbsEdges; i++ {
		u, v := d.uv(), d.uv()
		if d.err != nil {
			return nil, d.err
		}
		if u >= uint64(nAbs) || v >= uint64(nAbs) || u == v {
			return nil, fmt.Errorf("build: relation store: abstract edge out of range")
		}
		g.AddEdge(topo.NodeID(u), topo.NodeID(v))
	}
	a.AbsG = g
	nRep := d.count(4)
	a.RepEdge = make(map[topo.Edge]topo.Edge, nRep)
	for i := 0; i < nRep; i++ {
		aU, aV := d.uv(), d.uv()
		cU, cV := d.uv(), d.uv()
		if d.err != nil {
			return nil, d.err
		}
		if aU >= uint64(nAbs) || aV >= uint64(nAbs) || cU >= uint64(numNodes) || cV >= uint64(numNodes) {
			return nil, fmt.Errorf("build: relation store: representative edge out of range")
		}
		a.RepEdge[topo.Edge{U: topo.NodeID(aU), V: topo.NodeID(aV)}] =
			topo.Edge{U: topo.NodeID(cU), V: topo.NodeID(cV)}
	}
	if d.boolv() {
		a.Live = sc.live
	} else {
		a.Live = d.bits()
		if d.err == nil && len(a.Live) != numEdges {
			return nil, fmt.Errorf("build: relation store: abstraction live vector length mismatch")
		}
	}
	if d.err != nil {
		return nil, d.err
	}

	// Cross-field validation against this network's shape.
	if len(sc.prefs) != numNodes || len(sc.live) != numEdges || len(a.F) != numNodes {
		return nil, fmt.Errorf("build: relation store: class %q: vector length mismatch", sc.prefix)
	}
	if int(a.Dest) >= numNodes || int(a.AbsDest) >= nAbs {
		return nil, fmt.Errorf("build: relation store: class %q: destination out of range", sc.prefix)
	}
	if len(a.Copies) != len(a.Groups) {
		return nil, fmt.Errorf("build: relation store: class %q: copies/groups mismatch", sc.prefix)
	}
	for _, f := range a.F {
		if f < 0 || f >= len(a.Groups) {
			return nil, fmt.Errorf("build: relation store: class %q: partition index out of range", sc.prefix)
		}
	}
	for _, grp := range a.Groups {
		for _, u := range grp {
			if int(u) >= numNodes {
				return nil, fmt.Errorf("build: relation store: class %q: group member out of range", sc.prefix)
			}
		}
	}
	for _, c := range a.Copies {
		if len(c) == 0 {
			return nil, fmt.Errorf("build: relation store: class %q: empty copy set", sc.prefix)
		}
		for _, u := range c {
			if int(u) >= nAbs {
				return nil, fmt.Errorf("build: relation store: class %q: abstract copy out of range", sc.prefix)
			}
		}
	}
	sc.abs = a
	return sc, nil
}

// decodeRelsRecord parses the relation record and resolves its router names
// against the live config.
func (b *Builder) decodeRelsRecord(d *relDec) (*stagedRels, error) {
	sr := &stagedRels{}
	sr.erased = d.boolv()
	sr.nvars = int(d.uv())
	sr.nodes = d.u32s()
	n := d.count(8)
	if d.err != nil {
		return nil, d.err
	}
	sr.keys = make([]relKey, 0, n)
	sr.drops = make([]bool, 0, n)
	sr.refs = make([]uint32, 0, n)
	envOf := func(router string) (*policy.Env, error) {
		if router == "" {
			return nil, nil
		}
		r, ok := b.Cfg.Routers[router]
		if !ok || r.Env == nil {
			return nil, fmt.Errorf("build: relation store: unknown router %q in relation key", router)
		}
		return r.Env, nil
	}
	for i := 0; i < n; i++ {
		expRouter := d.str()
		expMap := d.str()
		impRouter := d.str()
		impMap := d.str()
		ibgp := d.boolv()
		fp := d.str()
		drops := d.boolv()
		if d.err != nil {
			return nil, d.err
		}
		if d.off+4 > len(d.b) {
			return nil, fmt.Errorf("build: relation store: truncated relation ref")
		}
		ref := binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
		k := relKey{expMap: expMap, impMap: impMap, ibgp: ibgp, fp: fp}
		var err error
		// Mirror edgeRelation's normalisation: the identity map carries no
		// namespace.
		if expMap != "" {
			if k.expEnv, err = envOf(expRouter); err != nil {
				return nil, err
			}
		}
		if impMap != "" {
			if k.impEnv, err = envOf(impRouter); err != nil {
				return nil, err
			}
		}
		sr.keys = append(sr.keys, k)
		sr.drops = append(sr.drops, drops)
		sr.refs = append(sr.refs, ref)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("build: relation store: trailing bytes in relations record")
	}
	return sr, nil
}
