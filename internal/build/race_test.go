package build

import (
	"context"
	"sync"
	"testing"

	"bonsai/internal/netgen"
)

// TestParallelCompress drives the concurrency contract under the race
// detector: one shared Builder, one compiler per worker, all destination
// classes compressed by every worker simultaneously. Results must agree
// with a sequential pass bit for bit (abstract sizes are deterministic).
func TestParallelCompress(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	classes := b.Classes()

	wantNodes := make([]int, len(classes))
	wantEdges := make([]int, len(classes))
	seq := b.NewCompiler(true)
	for i, cls := range classes {
		abs, err := b.Compress(context.Background(), seq, cls)
		if err != nil {
			t.Fatal(err)
		}
		wantNodes[i], wantEdges[i] = abs.NumAbstractNodes(), abs.NumAbstractEdges()
	}

	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp := b.NewCompiler(true)
			for i, cls := range classes {
				abs, err := b.Compress(context.Background(), comp, cls)
				if err != nil {
					errCh <- err
					return
				}
				if abs.NumAbstractNodes() != wantNodes[i] || abs.NumAbstractEdges() != wantEdges[i] {
					t.Errorf("class %v: parallel abstraction %d/%d, sequential %d/%d",
						cls.Prefix, abs.NumAbstractNodes(), abs.NumAbstractEdges(), wantNodes[i], wantEdges[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestParallelMixedOperations exercises the remaining shared surfaces —
// Classes, RoleCount, PrefsFunc, instance construction — concurrently with
// compression, again for the race detector.
func TestParallelMixedOperations(t *testing.T) {
	b, err := New(netgen.Datacenter(netgen.DCOptions{
		Clusters: 2, SpinesPerClus: 2, LeavesPerClus: 3, Cores: 2, Borders: 1,
		PrefixesPerLeaf: 2, VirtualIfaces: 2, StaticPatterns: 3, TagGroups: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			comp := b.NewCompiler(w%2 == 0)
			classes := b.Classes()
			cls := classes[w%len(classes)]
			abs, err := b.Compress(context.Background(), comp, cls)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := b.Instance(cls); err != nil {
				t.Error(err)
				return
			}
			if _, err := b.AbstractInstance(cls, abs); err != nil {
				t.Error(err)
				return
			}
			b.RoleCount(true, w%2 == 0)
			b.PrefsFunc(cls)
			b.ACLPermitFunc(cls)(0, 1)
		}(w)
	}
	wg.Wait()
}
