// Writing a compressed network back out as configurations, as Bonsai does
// (paper §7): the abstraction of one destination class becomes a smaller
// Network whose routers are the abstract nodes, each carrying the
// configuration of its group's representative with neighbor references
// remapped through the topology function.

package build

import (
	"fmt"

	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/topo"
)

// AbstractConfig renders the abstraction of one destination class as a
// configuration. Each abstract node copies its representative's policy
// namespace and per-neighbor configuration along representative edges, and
// the abstract destination originates the class prefix. The result
// validates and round-trips through config.Print/Parse.
func (b *Builder) AbstractConfig(cls ec.Class, abs *core.Abstraction) (*config.Network, error) {
	if abs == nil || abs.AbsG == nil {
		return nil, fmt.Errorf("build: nil abstraction")
	}
	out := config.New(b.Cfg.Name + "-" + cls.Prefix.String())
	statics := b.staticEdges(cls)

	groupOf := copyGroups(abs)

	// Routers: one per abstract node, templated on the group representative.
	for _, c := range abs.AbsG.Nodes() {
		rep := b.groupRep(abs, groupOf[c])
		nr := out.AddRouter(abs.AbsG.Name(c))
		nr.Env = rep.Env // shared read-only policy namespace
		if rep.BGP != nil {
			bgp := nr.EnsureBGP(rep.BGP.ASN)
			bgp.RedistributeOSPF = rep.BGP.RedistributeOSPF
			bgp.RedistributeStatic = rep.BGP.RedistributeStatic
		}
		if c == abs.AbsDest {
			nr.Originate = append(nr.Originate, cls.Prefix)
		}
	}

	// Links: one per undirected abstract adjacency.
	seen := make(map[topo.Edge]bool)
	for _, e := range abs.AbsG.Edges() {
		key := e
		if e.V < e.U {
			key = topo.Edge{U: e.V, V: e.U}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out.AddLink(abs.AbsG.Name(key.U), abs.AbsG.Name(key.V))
	}

	// Per-neighbor configuration. All names must resolve in the policy
	// namespace copied onto the abstract router, so every per-edge item is
	// read from the *group representative's* config toward a concrete
	// neighbor in the peer group (transfer-equivalence makes any live choice
	// behave identically; the representative edge is preferred because it is
	// known live for this class).
	for _, e := range abs.AbsG.Edges() {
		gu, gv := groupOf[e.U], groupOf[e.V]
		repID := abs.Groups[gu][0]
		cand, ok := b.neighborInGroup(abs, e, repID, gv)
		if !ok {
			continue
		}
		nr := out.Routers[abs.AbsG.Name(e.U)]
		peer := abs.AbsG.Name(e.V)
		ur := b.routers[repID]
		vName := b.G.Name(cand)
		if ur.BGP != nil && nr.BGP != nil {
			if nb := ur.BGP.Neighbors[vName]; nb != nil {
				nr.BGP.Neighbors[peer] = &config.Neighbor{ImportMap: nb.ImportMap, ExportMap: nb.ExportMap}
			}
		}
		if ur.OSPF != nil {
			if ifc, ok := ur.OSPF.Ifaces[vName]; ok {
				nr.EnsureOSPF().Ifaces[peer] = ifc
			}
		}
		if statics[topo.Edge{U: repID, V: cand}] {
			for _, s := range ur.Statics {
				if s.NextHop == vName && staticCovers(s.Prefix, cls.Prefix) {
					nr.Statics = append(nr.Statics, config.StaticRoute{Prefix: s.Prefix, NextHop: peer})
				}
			}
		}
		if acl := ur.IfaceACL[vName]; acl != "" {
			nr.IfaceACL[peer] = acl
		}
	}

	// BGP sessions are configured on both ends, but a session edge can be
	// live in only one direction (e.g. the reverse is filtered to a
	// constant drop and omitted from the abstract graph). Backfill missing
	// peer-side neighbor entries, again resolving names through the peer
	// group's own representative.
	for _, e := range abs.AbsG.Edges() {
		peerR := out.Routers[abs.AbsG.Name(e.V)]
		self := abs.AbsG.Name(e.U)
		if peerR.BGP == nil || peerR.BGP.Neighbors[self] != nil {
			continue
		}
		gv := groupOf[e.V]
		vRepID := abs.Groups[gv][0]
		vRep := b.routers[vRepID]
		cand, ok := b.neighborInGroup(abs, topo.Edge{U: e.V, V: e.U}, vRepID, groupOf[e.U])
		if !ok || vRep.BGP == nil {
			continue
		}
		if nb := vRep.BGP.Neighbors[b.G.Name(cand)]; nb != nil {
			peerR.BGP.Neighbors[self] = &config.Neighbor{ImportMap: nb.ImportMap, ExportMap: nb.ExportMap}
		}
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("build: abstract configuration invalid: %w", err)
	}
	return out, nil
}

// neighborInGroup returns a concrete neighbor of node u belonging to group
// gi, preferring the representative edge of abstract edge e (known live for
// the class) and falling back to the first successor in the group.
func (b *Builder) neighborInGroup(abs *core.Abstraction, e topo.Edge, u topo.NodeID, gi int) (topo.NodeID, bool) {
	if re, ok := abs.RepEdge[e]; ok && re.U == u && abs.F[re.V] == gi {
		return re.V, true
	}
	for _, v := range b.G.Succ(u) {
		if abs.F[v] == gi {
			return v, true
		}
	}
	return 0, false
}
