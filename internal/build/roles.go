// Router roles (paper §8): two routers play the same role when their
// configurations are equal as templates — identical policy structure with
// instance-specific identifiers (names, AS numbers, originated addresses,
// neighbor names, OSPF area numbers) abstracted away. The paper reports how
// unused-tag erasure collapses the role count of the operational datacenter
// from 112 to 26, and to 8 when static routes are also ignored.

package build

import (
	"sort"
	"strconv"
	"strings"

	"bonsai/internal/config"
	"bonsai/internal/policy"
	"bonsai/internal/protocols"
)

// RoleCount returns the number of distinct router roles in the network.
// With eraseUnusedTags, community sets whose community is never matched by
// any route map in the network are dropped from the signatures (the §8
// attribute abstraction); with ignoreStatics, static routes are excluded.
func (b *Builder) RoleCount(eraseUnusedTags, ignoreStatics bool) int {
	key := [2]bool{eraseUnusedTags, ignoreStatics}
	b.mu.Lock()
	if n, ok := b.roleCache[key]; ok {
		b.mu.Unlock()
		return n
	}
	matched := b.matchedSet
	b.mu.Unlock()

	seen := make(map[string]bool)
	for _, name := range b.Cfg.RouterNames() {
		m := matched
		if !eraseUnusedTags {
			m = nil
		}
		seen[RoleSignature(b.Cfg.Routers[name], m, eraseUnusedTags, ignoreStatics)] = true
	}
	n := len(seen)
	b.mu.Lock()
	b.roleCache[key] = n
	b.mu.Unlock()
	return n
}

// RoleSignature renders a router's configuration template as a canonical
// string: two routers share a role iff their signatures are equal. matched
// is the set of communities that some route map in the network can match;
// with eraseUnusedTags, community sets outside that set are erased (a nil
// map erases every community set). With ignoreStatics, static routes are
// left out of the signature.
//
// Instance-specific identifiers are deliberately excluded: router and
// neighbor names, AS numbers, OSPF areas, and originated prefix values
// (only their count is kept) — roles describe configuration shape, not
// addressing.
func RoleSignature(r *config.Router, matched map[protocols.Community]bool, eraseUnusedTags, ignoreStatics bool) string {
	var sb strings.Builder
	if r.BGP != nil {
		sb.WriteString("bgp")
		if r.BGP.RedistributeOSPF {
			sb.WriteString(" redist-ospf")
		}
		if r.BGP.RedistributeStatic {
			sb.WriteString(" redist-static")
		}
		sessions := make([]string, 0, len(r.BGP.Neighbors))
		for _, nb := range r.BGP.Neighbors {
			var s strings.Builder
			s.WriteString("imp{")
			renderRouteMap(&s, r.Env, nb.ImportMap, matched, eraseUnusedTags)
			s.WriteString("}exp{")
			renderRouteMap(&s, r.Env, nb.ExportMap, matched, eraseUnusedTags)
			s.WriteString("}")
			sessions = append(sessions, s.String())
		}
		sort.Strings(sessions)
		for _, s := range sessions {
			sb.WriteString(";")
			sb.WriteString(s)
		}
		sb.WriteString("\n")
	}
	if r.OSPF != nil {
		sb.WriteString("ospf")
		ifaces := make([]string, 0, len(r.OSPF.Ifaces))
		for _, ifc := range r.OSPF.Ifaces {
			ifaces = append(ifaces, "cost="+strconv.Itoa(ifc.Cost))
		}
		sort.Strings(ifaces)
		sb.WriteString(strings.Join(ifaces, ";"))
		sb.WriteString("\n")
	}
	if !ignoreStatics && len(r.Statics) > 0 {
		routes := make([]string, 0, len(r.Statics))
		for _, s := range r.Statics {
			routes = append(routes, s.Prefix.Masked().String())
		}
		sort.Strings(routes)
		sb.WriteString("static ")
		sb.WriteString(strings.Join(routes, ";"))
		sb.WriteString("\n")
	}
	sb.WriteString("orig=")
	sb.WriteString(strconv.Itoa(len(r.Originate)))
	sb.WriteString("\n")
	if len(r.IfaceACL) > 0 {
		acls := make([]string, 0, len(r.IfaceACL))
		for _, name := range r.IfaceACL {
			var s strings.Builder
			renderACL(&s, r.Env.ACLs[name])
			acls = append(acls, s.String())
		}
		sort.Strings(acls)
		sb.WriteString("acl ")
		sb.WriteString(strings.Join(acls, ";"))
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderRouteMap writes the route map's template: clause structure with
// referenced lists resolved to their contents (names are identifiers, not
// template), applying community erasure to set actions.
func renderRouteMap(sb *strings.Builder, env *policy.Env, name string, matched map[protocols.Community]bool, erase bool) {
	if name == "" {
		return
	}
	rm, ok := env.RouteMaps[name]
	if !ok {
		sb.WriteString("?")
		return
	}
	for i := range rm.Clauses {
		cl := &rm.Clauses[i]
		if i > 0 {
			sb.WriteString("|")
		}
		sb.WriteString(cl.Action.String())
		for _, m := range cl.Matches {
			switch m.Kind {
			case policy.MatchCommunity:
				sb.WriteString(" mc[")
				if l, ok := env.CommunityLists[m.Arg]; ok {
					renderComms(sb, l.Communities)
				}
				sb.WriteString("]")
			case policy.MatchPrefix:
				sb.WriteString(" mp[")
				if l, ok := env.PrefixLists[m.Arg]; ok {
					renderEntries(sb, l.Entries)
				}
				sb.WriteString("]")
			}
		}
		for _, s := range cl.Sets {
			switch s.Kind {
			case policy.SetLocalPref:
				sb.WriteString(" lp=")
				sb.WriteString(strconv.FormatUint(uint64(s.Value), 10))
			case policy.AddCommunity:
				if !erase || matched[s.Comm] {
					sb.WriteString(" +")
					sb.WriteString(s.Comm.String())
				}
			case policy.DeleteCommunity:
				if !erase || matched[s.Comm] {
					sb.WriteString(" -")
					sb.WriteString(s.Comm.String())
				}
			}
		}
	}
}

func renderComms(sb *strings.Builder, cs []protocols.Community) {
	strs := make([]string, len(cs))
	for i, c := range cs {
		strs[i] = c.String()
	}
	sort.Strings(strs)
	sb.WriteString(strings.Join(strs, ","))
}

func renderEntries(sb *strings.Builder, entries []policy.PrefixEntry) {
	for i, e := range entries {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(e.Action.String())
		sb.WriteString(" ")
		sb.WriteString(e.Prefix.String())
		if e.Ge != 0 || e.Le != 0 {
			sb.WriteString(" ge")
			sb.WriteString(strconv.Itoa(e.Ge))
			sb.WriteString(" le")
			sb.WriteString(strconv.Itoa(e.Le))
		}
	}
}

func renderACL(sb *strings.Builder, a *policy.ACL) {
	if a == nil {
		sb.WriteString("?")
		return
	}
	renderEntries(sb, a.Entries)
}
