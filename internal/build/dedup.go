// Cross-EC abstraction deduplication. The paper's evaluation networks are
// highly regular, and compression only ever looks at a destination class
// through the canonical edge keys and prefs, so the Builder avoids redundant
// refinement work at two levels:
//
//  1. Identity: classes whose class-dependent inputs are byte-identical
//     (same destination, origins, statics, prefix-list match outcomes, ACL
//     verdicts) share one *core.Abstraction outright — e.g. the several
//     prefixes each datacenter leaf originates.
//
//  2. Symmetry: classes related by a relabeling of the routers (fattree's
//     per-edge-router classes, ring rotations, mesh stars) are served by
//     transporting a cached partition through an explicitly verified
//     permutation π — see transport.go.
//
// The class fingerprint deliberately avoids compiling anything. Everything
// class-dependent in the pipeline reduces to: the destination vertex and
// origin set; the set of edges carrying an applicable static route; per
// session route map, the outcome of every prefix-list match against the
// class prefix (this determines the compiled BDD relation, AlwaysDrops,
// LocalPrefValues and LocalPrefPassesThrough, because MatchPrefix is the
// only prefix-dependent match kind); and per interface ACL, its verdict.
// Everything else (sessions, iBGP flags, redistribution, OSPF costs/areas)
// is class-independent. The cost per class is O(route maps + ACLs + statics
// + E), orders of magnitude below one refinement run.
package build

import (
	"context"
	"errors"

	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
)

// aclRef names an ACL inside a router's policy namespace.
type aclRef struct {
	env  *policy.Env
	name string
}

// Provenance reports where a Compress result came from: computed by full
// refinement, transported through a verified symmetry, served from the
// identity cache, or carried across an incremental update. The streaming
// API surfaces it per class.
type Provenance uint8

// Provenance values.
const (
	ProvCached Provenance = iota
	ProvFresh
	ProvTransported
	ProvAdopted
)

func (p Provenance) String() string {
	switch p {
	case ProvFresh:
		return "fresh"
	case ProvTransported:
		return "transported"
	case ProvAdopted:
		return "adopted"
	default:
		return "cache"
	}
}

// absEntry is one single-flight slot of the abstraction store: the first
// worker to claim a fingerprint computes (or transports) the abstraction
// while later workers block on ready and share the result. Every successful
// entry carries its liveness and prefs vectors — fresh entries use them to
// seed future symmetry transports, and incremental updates (adopt.go) use
// them to carry entries across a configuration delta without BDD work.
// Completed entries are byte-accounted and LRU-chained by the bounded
// store (store.go); pinned transport seeds are exempt from eviction.
type absEntry struct {
	ready chan struct{}
	abs   *core.Abstraction
	err   error

	fp    string
	sig   *classSig
	live  []bool // per edge index, aligned with Builder.G.Edges()
	prefs []int  // per node
	done  bool   // set under store.mu once abs/err are final
	src   Provenance

	// Bounded-store bookkeeping (store.go), guarded by store.mu.
	bytes      int64
	pinned     bool // transport seed: never evicted
	inLRU      bool
	prev, next *absEntry
}

// collectSigRefs enumerates, once per Builder, the policy objects whose
// class-dependent behavior the fingerprint must record: every route map
// attached to a live BGP session and every interface ACL. Order is arbitrary
// but fixed for the Builder's lifetime, which is all fingerprint equality
// needs.
func (b *Builder) collectSigRefs() {
	seenRM := make(map[rmRef]bool)
	addRM := func(env *policy.Env, name string) {
		if name == "" {
			return
		}
		r := rmRef{env: env, name: name}
		if !seenRM[r] {
			seenRM[r] = true
			b.sigRMs = append(b.sigRMs, r)
		}
	}
	for _, e := range b.G.Edges() {
		if sess, ok := b.bgpSess[e]; ok {
			addRM(sess.expEnv, sess.expMap)
			addRM(sess.impEnv, sess.impMap)
		}
	}
	seenACL := make(map[aclRef]bool)
	for _, r := range b.routers {
		for _, name := range r.IfaceACL {
			if name == "" {
				continue
			}
			a := aclRef{env: r.Env, name: name}
			if !seenACL[a] {
				seenACL[a] = true
				b.sigACLs = append(b.sigACLs, a)
			}
		}
	}
}

// Compress runs the full per-class pipeline (Algorithm 1) with cross-EC
// deduplication: identical classes share one cached abstraction, and
// symmetric classes are served by verified partition transport. Concurrent
// calls are safe — compilers stay per-goroutine, the cache is guarded by the
// Builder lock, and concurrent misses on one fingerprint are single-flighted
// so the work happens once. The returned Abstraction may be shared and must
// be treated as read-only (every consumer in this repository already does).
//
// Cancelling ctx makes Compress return promptly with the context's error;
// a cancelled single-flight claimer drops its cache slot, and waiters with
// live contexts retry the dropped slot rather than inheriting the foreign
// cancellation.
func (b *Builder) Compress(ctx context.Context, comp *policy.Compiler, cls ec.Class) (*core.Abstraction, error) {
	abs, _, err := b.CompressTagged(ctx, comp, cls)
	return abs, err
}

// CompressTagged is Compress with per-class provenance: whether the result
// was computed fresh, transported through a symmetry, or served from the
// identity cache. The streaming pipeline reports it per class.
func (b *Builder) CompressTagged(ctx context.Context, comp *policy.Compiler, cls ec.Class) (*core.Abstraction, Provenance, error) {
	if err := ctx.Err(); err != nil {
		return nil, ProvCached, err
	}
	st := &b.store
	// Warm-hit fast path: the prefix -> fingerprint memo answers without
	// recomputing the class fingerprint.
	b.internMu.Lock()
	fpMemo, memoOK := b.fpByPrefix[cls.Prefix]
	b.internMu.Unlock()
	if memoOK {
		st.mu.Lock()
		if e, ok := st.entries[fpMemo]; ok {
			st.served++
			st.lruTouch(e)
			st.mu.Unlock()
			if abs, err, retry := waitEntry(ctx, e); !retry {
				return abs, ProvCached, err
			}
		} else {
			st.mu.Unlock()
		}
	}
	var sig *classSig
	if memoOK {
		// The scheduler's grouping key already computed this class's
		// signature; consume it instead of recomputing.
		sig = b.takeSig(fpMemo)
	}
	if sig == nil {
		var err error
		sig, err = b.classSignature(cls)
		if err != nil {
			return nil, ProvCached, err
		}
	}
	var e *absEntry
	for {
		st.mu.Lock()
		if prev, ok := st.entries[sig.fp]; ok {
			st.served++
			st.lruTouch(prev)
			st.mu.Unlock()
			if abs, err, retry := waitEntry(ctx, prev); !retry {
				return abs, ProvCached, err
			}
			continue
		}
		e = &absEntry{ready: make(chan struct{}), sig: sig, fp: sig.fp}
		st.entries[sig.fp] = e
		st.misses++
		st.mu.Unlock()
		break
	}

	// Miss path: only now pay for the O(E) edge-label vector (identity hits
	// never need it), then snapshot completed transport seeds with a
	// matching label histogram.
	b.ensureLabels(sig)
	var cands []*absEntry
	st.mu.Lock()
	for _, c := range st.isoIndex[sig.histo] {
		if c.done && c.err == nil && c.abs.ColorSplits == 0 {
			cands = append(cands, c)
		}
	}
	st.mu.Unlock()

	var transported bool
	for _, c := range cands {
		if pi := b.findIso(c.sig, sig); pi != nil {
			abs, live := b.transportAbs(c, sig, pi)
			e.abs, e.live = abs, live
			// The transported prefs vector, π-mapped from the seed, lets
			// the entry survive an incremental update (adopt.go) without a
			// policy re-scan.
			e.prefs = make([]int, len(pi))
			for u := range pi {
				e.prefs[pi[u]] = c.prefs[u]
			}
			transported = true
			break
		}
	}
	if !transported {
		e.abs, e.err = b.CompressFresh(ctx, comp, cls)
		if e.err == nil {
			// The liveness vector refinement ran against, aligned with
			// G.Edges() — no re-derivation of edge keys.
			e.live = e.abs.Live
			e.prefs = b.prefsVec(cls)
			if e.abs.ColorSplits == 0 {
				// This entry will be pinned as a transport seed: future
				// transports read its colors concurrently, so compute them
				// now, while the entry is still private, so no lazy write
				// can race with candidate reads.
				b.ensureColors(sig)
			}
		}
	}

	prov := ProvFresh
	if transported {
		prov = ProvTransported
	}
	st.mu.Lock()
	if e.err != nil {
		// Drop failed entries so a later call can retry; waiters already
		// holding e still observe the error.
		delete(st.entries, sig.fp)
	} else {
		e.done = true
		e.src = prov
		if transported {
			st.transported++
		} else {
			if cur, ok := st.entries[sig.fp]; ok && cur != e && cur.done {
				// A second fresh refinement completed for a fingerprint that
				// already has a live result: single-flight (or the
				// scheduler's leader-first ordering) has been broken and
				// work was duplicated. Recorded, and asserted zero in tests.
				st.dupFresh++
			}
			st.fresh++
			if e.abs.ColorSplits == 0 {
				// Only ColorSplits-free fresh entries seed transports (the
				// candidate scan would skip others anyway): one pinned seed
				// per symmetry family keeps the index small and eviction
				// away from the entries the whole family depends on.
				e.pinned = true
				st.isoIndex[sig.histo] = append(st.isoIndex[sig.histo], e)
			}
		}
		st.account(e)
		st.evict()
	}
	st.mu.Unlock()
	close(e.ready)
	// Cross-tenant pressure runs outside the store lock (Pool.mu is ordered
	// above store.mu); a no-op when the store is not pool-attached or the
	// pool fits its ceiling.
	st.pressure()
	return e.abs, prov, e.err
}

// waitEntry blocks on a single-flight slot. retry is true when the entry
// failed with the *claimer's* context error while the waiter's own context
// is still live: the claimer dropped the slot before closing ready, so the
// waiter should re-claim it instead of surfacing a foreign cancellation.
func waitEntry(ctx context.Context, e *absEntry) (abs *core.Abstraction, err error, retry bool) {
	select {
	case <-e.ready:
		if e.err != nil && ctx.Err() == nil &&
			(errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
			return nil, nil, true
		}
		return e.abs, e.err, false
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
}

// CompressFresh compresses the class unconditionally, bypassing and not
// populating the deduplication cache: canonical edge keys from comp's BDD
// tables, abstraction refinement, and — when the network runs BGP — ∀∀
// strengthening plus local-preference case splitting. It is the reference
// implementation Compress is tested against, and what benchmarks use to
// measure undeduplicated cost.
func (b *Builder) CompressFresh(ctx context.Context, comp *policy.Compiler, cls ec.Class) (*core.Abstraction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dest, err := b.destOf(cls)
	if err != nil {
		return nil, err
	}
	mode := core.ModeEffective
	if b.hasBGP {
		mode = core.ModeBGP
	}
	abs := core.FindAbstraction(b.G, dest, core.Options{
		Mode:     mode,
		EdgeKeys: b.EdgeKeyVec(comp, cls),
		Prefs:    b.PrefsFunc(cls),
	})
	return abs, nil
}

// CacheStats is the state of the cross-EC abstraction store.
type CacheStats struct {
	// Fresh counts abstractions computed by full refinement.
	Fresh int
	// Transported counts abstractions served by symmetry transport.
	Transported int64
	// Served counts Compress calls answered from the identity cache (the
	// store's hit counter).
	Served int64
	// Adopted counts abstractions carried across an incremental update by
	// partition re-validation (adopt.go) instead of recompression.
	Adopted int
	// Misses counts Compress calls that had to compute: first touches and
	// recompressions of evicted classes. Every miss becomes Fresh or
	// Transported (or an error).
	Misses int64
	// Evictions counts entries dropped by the memory budget; LiveBytes and
	// PeakBytes are the store's current and high-water accounted footprint,
	// BudgetBytes its configured ceiling (0 = unbounded).
	Evictions   int64
	LiveBytes   int64
	PeakBytes   int64
	BudgetBytes int64
	// DuplicateFresh counts fresh refinements that completed for a
	// fingerprint already holding a live result — duplicated work that the
	// single-flight protocol and the scheduler's leader-first ordering
	// exist to prevent. Zero in a healthy engine; tests assert it.
	DuplicateFresh int64
}

// AbstractionCacheStats reports the abstraction store state.
func (b *Builder) AbstractionCacheStats() CacheStats {
	st := &b.store
	st.mu.Lock()
	defer st.mu.Unlock()
	return CacheStats{
		Fresh:          st.fresh,
		Transported:    st.transported,
		Served:         st.served,
		Adopted:        st.adopted,
		Misses:         st.misses,
		Evictions:      st.evictions,
		LiveBytes:      st.bytes,
		PeakBytes:      st.peak,
		BudgetBytes:    st.budget,
		DuplicateFresh: st.dupFresh,
	}
}

// InvalidateAbstractionCache empties the abstraction store and resets its
// counters, keeping the configured budget. Benchmarks use it to measure
// full-class-set cost per iteration.
func (b *Builder) InvalidateAbstractionCache() {
	b.store.mu.Lock()
	defer b.store.mu.Unlock()
	b.store.reset()
}
