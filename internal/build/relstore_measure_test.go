package build

import (
	"bytes"
	"context"
	"os"
	"testing"
	"time"

	"bonsai/internal/netgen"
)

// TestMeasureWarmRestart2000 is the measurement harness behind the
// warm-restart table in EXPERIMENTS.md (fattree-2000, the paper's scale).
// It is too slow for every CI run; set BONSAI_MEASURE=1 to run it:
//
//	BONSAI_MEASURE=1 go test ./internal/build -run MeasureWarmRestart2000 -v
func TestMeasureWarmRestart2000(t *testing.T) {
	if os.Getenv("BONSAI_MEASURE") == "" {
		t.Skip("measurement harness; set BONSAI_MEASURE=1")
	}
	ctx := context.Background()
	gen := func() *Builder {
		b, err := New(netgen.Fattree(40, netgen.PolicyShortestPath))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	t0 := time.Now()
	b := gen()
	buildDur := time.Since(t0)
	comp := b.NewCompiler(true)
	t1 := time.Now()
	for _, cls := range b.Classes() {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	coldCompress := time.Since(t1)
	st := b.AbstractionCacheStats()

	var buf bytes.Buffer
	t2 := time.Now()
	if err := b.SaveRelationStore(&buf, comp); err != nil {
		t.Fatal(err)
	}
	saveDur := time.Since(t2)

	b2 := gen()
	comp2 := b2.NewCompiler(true)
	t3 := time.Now()
	n, err := b2.LoadRelationStore(bytes.NewReader(buf.Bytes()), comp2)
	if err != nil {
		t.Fatal(err)
	}
	loadDur := time.Since(t3)
	t4 := time.Now()
	for _, cls := range b2.Classes() {
		if _, err := b2.Compress(ctx, comp2, cls); err != nil {
			t.Fatal(err)
		}
	}
	warmCompress := time.Since(t4)
	if st2 := b2.AbstractionCacheStats(); st2.Fresh != 0 {
		t.Fatalf("warm path refined %d classes", st2.Fresh)
	}
	t.Logf("fattree-2000: classes=%d build=%v coldCompress=%v (fresh=%d transported=%d)",
		len(b.Classes()), buildDur, coldCompress, st.Fresh, st.Transported)
	t.Logf("store: bytes=%d save=%v load=%v installed=%d", buf.Len(), saveDur, loadDur, n)
	t.Logf("warmCompress=%v speedup(compress)=%.1fx speedup(process)=%.1fx",
		warmCompress,
		float64(coldCompress)/float64(loadDur+warmCompress),
		float64(buildDur+coldCompress)/float64(buildDur+loadDur+warmCompress))
}
