package build

import (
	"bytes"
	"context"
	"maps"
	"reflect"
	"testing"

	"bonsai/internal/config"
	"bonsai/internal/netgen"
)

// saveToBuffer warms b over every class and serialises its relation store.
func saveToBuffer(t *testing.T, b *Builder) []byte {
	t.Helper()
	comp := b.NewCompiler(true)
	defer comp.Close()
	ctx := context.Background()
	for _, cls := range b.Classes() {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatalf("compress %v: %v", cls.Prefix, err)
		}
	}
	var buf bytes.Buffer
	if err := b.SaveRelationStore(&buf, comp); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// rebuilt parses the canonical print of net, modelling the recovery path
// (checkpoint text -> parse -> build) rather than reusing in-memory objects.
func rebuilt(t *testing.T, b *Builder) *Builder {
	t.Helper()
	net2, err := config.ParseString(config.PrintString(b.Cfg))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	b2, err := New(net2)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return b2
}

func TestRelationStoreRoundTrip(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	data := saveToBuffer(t, b)
	warm := b.AbstractionCacheStats()
	if warm.Fresh == 0 {
		t.Fatalf("no fresh abstractions computed before save")
	}

	b2 := rebuilt(t, b)
	comp2 := b2.NewCompiler(true)
	defer comp2.Close()
	installed, err := b2.LoadRelationStore(bytes.NewReader(data), comp2)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if want := warm.Fresh + int(warm.Transported); installed != want {
		t.Fatalf("installed %d entries, want %d (fresh %d + transported %d)",
			installed, want, warm.Fresh, warm.Transported)
	}
	if n := len(b2.cacheFor(comp2).rels); n == 0 {
		t.Fatalf("relation cache empty after load")
	}

	// Every class must be served from the loaded store without refinement,
	// and the served abstraction must be field-identical to the original.
	ctx := context.Background()
	comp1 := b.NewCompiler(true)
	defer comp1.Close()
	for _, cls := range b2.Classes() {
		abs2, prov, err := b2.CompressTagged(ctx, comp2, cls)
		if err != nil {
			t.Fatalf("warm compress %v: %v", cls.Prefix, err)
		}
		if prov != ProvCached {
			t.Fatalf("class %v: provenance %v after load, want cache", cls.Prefix, prov)
		}
		abs1, err := b.Compress(ctx, comp1, cls)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(abs1.Groups, abs2.Groups) ||
			!reflect.DeepEqual(abs1.F, abs2.F) ||
			!reflect.DeepEqual(abs1.Copies, abs2.Copies) ||
			abs1.AbsDest != abs2.AbsDest || abs1.Dest != abs2.Dest ||
			abs1.ColorSplits != abs2.ColorSplits {
			t.Fatalf("class %v: loaded abstraction differs from original", cls.Prefix)
		}
		if !maps.Equal(abs1.RepEdge, abs2.RepEdge) {
			t.Fatalf("class %v: representative edges differ", cls.Prefix)
		}
		if abs1.AbsG.NumNodes() != abs2.AbsG.NumNodes() || abs1.AbsG.NumLinks() != abs2.AbsG.NumLinks() {
			t.Fatalf("class %v: abstract graph shape differs", cls.Prefix)
		}
		for _, u := range abs1.AbsG.Nodes() {
			if abs1.AbsG.Name(u) != abs2.AbsG.Name(u) {
				t.Fatalf("class %v: abstract node %d name differs", cls.Prefix, u)
			}
		}
	}
	after := b2.AbstractionCacheStats()
	if after.Fresh != 0 {
		t.Fatalf("warm builder ran %d fresh refinements, want 0", after.Fresh)
	}
	if after.LiveBytes <= 0 {
		t.Fatalf("loaded store accounts %d bytes", after.LiveBytes)
	}
}

func TestRelationStoreLoadIsIdempotent(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	data := saveToBuffer(t, b)
	b2 := rebuilt(t, b)
	n1, err := b2.LoadRelationStore(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := b2.LoadRelationStore(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if n1 == 0 || n2 != 0 {
		t.Fatalf("loads installed %d then %d entries, want >0 then 0", n1, n2)
	}
}

func TestRelationStoreRejectsCorruption(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	data := saveToBuffer(t, b)

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(d []byte) []byte { return nil }},
		{"bad magic", func(d []byte) []byte {
			d[0] ^= 0xff
			return d
		}},
		{"truncated mid-record", func(d []byte) []byte { return d[:len(d)/2] }},
		{"missing trailer", func(d []byte) []byte { return d[:len(d)-9] }},
		{"bit flip early", func(d []byte) []byte {
			d[len(d)/4] ^= 0x10
			return d
		}},
		{"bit flip late", func(d []byte) []byte {
			d[len(d)-20] ^= 0x01
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b2 := rebuilt(t, b)
			comp2 := b2.NewCompiler(true)
			defer comp2.Close()
			mangled := tc.mangle(append([]byte(nil), data...))
			n, err := b2.LoadRelationStore(bytes.NewReader(mangled), comp2)
			if err == nil {
				t.Fatalf("corrupt store loaded without error (%d entries)", n)
			}
			// Rejection must be total: nothing installed, store untouched.
			st := b2.AbstractionCacheStats()
			if n != 0 || st.LiveBytes != 0 || st.Fresh != 0 {
				t.Fatalf("partial install after rejected load: n=%d live=%d", n, st.LiveBytes)
			}
		})
	}
}

func TestRelationStoreRejectsWrongNetwork(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	data := saveToBuffer(t, b)
	other, err := New(netgen.Ring(8))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := other.LoadRelationStore(bytes.NewReader(data), nil); err == nil {
		t.Fatalf("store for another network loaded (%d entries)", n)
	}
	if st := other.AbstractionCacheStats(); st.LiveBytes != 0 {
		t.Fatalf("rejected load left %d live bytes", st.LiveBytes)
	}
}

func TestMergeRelationCaches(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	src := b.NewCompiler(true)
	defer src.Close()
	ctx := context.Background()
	for _, cls := range b.Classes() {
		if _, err := b.CompressFresh(ctx, src, cls); err != nil {
			t.Fatal(err)
		}
	}
	srcCache := b.cacheFor(src)
	if len(srcCache.rels) == 0 {
		t.Skip("network compiled no relations")
	}
	dst := b.NewCompiler(true)
	defer dst.Close()
	if err := b.MergeRelationCaches(dst, src); err != nil {
		t.Fatal(err)
	}
	dstCache := b.cacheFor(dst)
	if len(dstCache.rels) != len(srcCache.rels) {
		t.Fatalf("merged %d relations, want %d", len(dstCache.rels), len(srcCache.rels))
	}
	// Canonical seed handles agree across managers; relations rebuilt via
	// import must carry identical drop semantics.
	for k, ent := range srcCache.rels {
		if got := dstCache.rels[k]; got.drops != ent.drops {
			t.Fatalf("merged relation %v drops=%v, want %v", k.fp, got.drops, ent.drops)
		}
	}
}
