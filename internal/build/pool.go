// The shared abstraction memory pool: one global byte budget partitioned
// across many Builders (bonsaid tenants). Each member keeps its own bounded
// LRU store (store.go) — the pool adds a *second*, cross-member layer of
// pressure: when the sum of all members' retained abstraction bytes exceeds
// the pool ceiling, the pool sheds least-recently-used entries from the
// member furthest over its guaranteed floor, repeating until the total fits
// or every member is at (or under) its floor.
//
// The invariants a multi-tenant server relies on:
//
//   - Global ceiling: after every rebalance, total retained bytes <= ceiling
//     unless the sum of floors and pinned transport seeds alone exceeds it
//     (a misconfiguration the pool degrades through rather than violates by
//     thrashing — seeds are never evicted, exactly as in the local store).
//   - Per-member floor: cross-tenant pressure never evicts a member below
//     its floor. A small tenant keeps its warm working set no matter how
//     hard a large neighbor churns; only the tenant's *own* local budget
//     (SetAbstractionBudget) may cut deeper.
//   - Safety: eviction is the same operation the local store performs — an
//     evicted class reads as cold and recomputes on its next query — so the
//     pool affects performance, never correctness.
//
// Locking: Pool.mu is ordered strictly above every member's store.mu. Stores
// update the pool's byte total with atomics (no Pool.mu on the charge path);
// rebalancing takes Pool.mu and then member store locks one at a time.
// Callers must not hold a store lock when calling into the pool — the charge
// sites in dedup.go/adopt.go call maybeRebalance after releasing store.mu.
package build

import (
	"sync"
	"sync/atomic"
)

// Pool is a shared memory budget across many Builders' abstraction stores.
// The zero value is unusable; use NewPool.
type Pool struct {
	ceiling int64

	total atomic.Int64 // sum of members' accounted bytes
	peak  atomic.Int64 // high-water total

	crossEvictions atomic.Int64 // entries evicted by cross-member pressure
	rebalances     atomic.Int64 // rebalance passes that evicted something

	mu      sync.Mutex
	members []*poolMember
}

// poolMember is one attached store with its guaranteed floor.
type poolMember struct {
	store *absStore
	label string
	floor int64
}

// NewPool creates a pool with the given global byte ceiling (<= 0 means
// unbounded: the pool still aggregates accounting, useful for metrics, but
// never evicts).
func NewPool(ceiling int64) *Pool {
	return &Pool{ceiling: ceiling}
}

// Ceiling returns the configured global budget.
func (p *Pool) Ceiling() int64 { return p.ceiling }

// charge records a byte delta from a member store. Called with the member's
// store.mu held — atomics only, no Pool.mu.
func (p *Pool) charge(delta int64) {
	t := p.total.Add(delta)
	for {
		pk := p.peak.Load()
		if t <= pk || p.peak.CompareAndSwap(pk, t) {
			return
		}
	}
}

// Attach registers b's abstraction store as a pool member with the given
// guaranteed floor, charging its current footprint. Label identifies the
// member in PoolStats (a tenant name). Attaching an already-attached
// builder moves it to the new floor/label.
func (p *Pool) Attach(b *Builder, label string, floor int64) {
	st := &b.store
	p.mu.Lock()
	defer p.mu.Unlock()
	st.mu.Lock()
	if st.pool == p {
		st.mu.Unlock()
		for _, m := range p.members {
			if m.store == st {
				m.label, m.floor = label, floor
			}
		}
		return
	}
	if st.pool != nil {
		st.mu.Unlock()
		panic("build: store attached to two pools")
	}
	st.pool = p
	p.charge(st.bytes)
	st.mu.Unlock()
	p.members = append(p.members, &poolMember{store: st, label: label, floor: floor})
	p.rebalanceLocked()
}

// Detach removes b's store from the pool, discharging its footprint. The
// engine calls it when a snapshot is replaced (Apply) or closed.
func (p *Pool) Detach(b *Builder) {
	st := &b.store
	p.mu.Lock()
	defer p.mu.Unlock()
	st.mu.Lock()
	if st.pool != p {
		st.mu.Unlock()
		return
	}
	st.pool = nil
	p.total.Add(-st.bytes)
	st.mu.Unlock()
	for i, m := range p.members {
		if m.store == st {
			p.members = append(p.members[:i], p.members[i+1:]...)
			break
		}
	}
}

// maybeRebalance sheds cross-member pressure if the total exceeds the
// ceiling. Callers must not hold any store lock.
func (p *Pool) maybeRebalance() {
	if p == nil || p.ceiling <= 0 || p.total.Load() <= p.ceiling {
		return
	}
	p.mu.Lock()
	p.rebalanceLocked()
	p.mu.Unlock()
}

// rebalanceLocked evicts LRU entries from the member furthest over its
// floor until the pool fits its ceiling or no member can shed. Callers hold
// Pool.mu.
func (p *Pool) rebalanceLocked() {
	if p.ceiling <= 0 {
		return
	}
	evictedAny := false
	// A member whose shed makes no progress (everything pinned or in
	// flight) is excluded for the rest of this pass so another member with
	// smaller overage still gets a chance to shed.
	var stuck map[*poolMember]bool
	for {
		need := p.total.Load() - p.ceiling
		if need <= 0 {
			break
		}
		// Victim: the member with the largest overage above its floor.
		var victim *poolMember
		var worst int64
		for _, m := range p.members {
			if stuck[m] {
				continue
			}
			m.store.mu.Lock()
			over := m.store.bytes - m.floor
			m.store.mu.Unlock()
			if over > worst {
				worst, victim = over, m
			}
		}
		if victim == nil {
			break // everyone at or under floor: ceiling < sum of floors
		}
		take := need
		if take > worst {
			take = worst
		}
		_, n := victim.store.shed(take, victim.floor)
		if n == 0 {
			if stuck == nil {
				stuck = make(map[*poolMember]bool)
			}
			stuck[victim] = true
			continue
		}
		p.crossEvictions.Add(int64(n))
		evictedAny = true
	}
	if evictedAny {
		p.rebalances.Add(1)
	}
}

// PoolStats is a snapshot of the shared pool.
type PoolStats struct {
	// CeilingBytes is the configured global budget (0 = unbounded).
	CeilingBytes int64
	// LiveBytes and PeakBytes are the current and high-water sums of all
	// members' retained abstraction bytes.
	LiveBytes int64
	PeakBytes int64
	// CrossEvictions counts entries evicted by cross-member pressure (each
	// member's own Evictions counter includes these); Rebalances counts
	// rebalance passes that evicted at least one entry.
	CrossEvictions int64
	Rebalances     int64
	Members        []PoolMemberStats
}

// PoolMemberStats is one member's share.
type PoolMemberStats struct {
	Label      string
	FloorBytes int64
	LiveBytes  int64
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	s := PoolStats{
		CeilingBytes:   p.ceiling,
		LiveBytes:      p.total.Load(),
		PeakBytes:      p.peak.Load(),
		CrossEvictions: p.crossEvictions.Load(),
		Rebalances:     p.rebalances.Load(),
	}
	p.mu.Lock()
	for _, m := range p.members {
		m.store.mu.Lock()
		b := m.store.bytes
		m.store.mu.Unlock()
		s.Members = append(s.Members, PoolMemberStats{Label: m.label, FloorBytes: m.floor, LiveBytes: b})
	}
	p.mu.Unlock()
	return s
}

// pressure asks the store's pool (if any) to rebalance. Callers must not
// hold the store lock.
func (s *absStore) pressure() {
	s.mu.Lock()
	p := s.pool
	s.mu.Unlock()
	p.maybeRebalance()
}

// shed evicts coldest entries until it has freed at least want bytes or the
// store would drop below floor (or runs out of evictable entries). It
// returns the bytes freed and entries evicted. Unlike evict (the local
// budget), shed respects the member floor: cross-tenant pressure never
// cuts into a member's guaranteed share.
func (s *absStore) shed(want, floor int64) (freed int64, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for freed < want && s.head != nil && s.bytes-s.head.bytes >= floor {
		e := s.head
		s.lruUnlink(e)
		s.remove(e)
		s.evictions++
		freed += e.bytes
		n++
	}
	return freed, n
}
