package build

import (
	"bytes"
	"context"
	"testing"

	"bonsai/internal/netgen"
)

// Regression scale check: fattree(8) has 512 directed edges, enough that a
// byte-bounded length check on the packed live bitset falsely rejects it.
func TestRelationStoreRoundTripLarger(t *testing.T) {
	b, err := New(netgen.Fattree(8, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	comp := b.NewCompiler(true)
	defer comp.Close()
	ctx := context.Background()
	for _, cls := range b.Classes() {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.SaveRelationStore(&buf, comp); err != nil {
		t.Fatal(err)
	}
	b2, err := New(netgen.Fattree(8, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	comp2 := b2.NewCompiler(true)
	defer comp2.Close()
	n, err := b2.LoadRelationStore(bytes.NewReader(buf.Bytes()), comp2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing installed")
	}
	for _, cls := range b2.Classes() {
		if _, err := b2.Compress(ctx, comp2, cls); err != nil {
			t.Fatal(err)
		}
	}
	if st := b2.AbstractionCacheStats(); st.Fresh != 0 {
		t.Fatalf("warm builder ran %d fresh refinements", st.Fresh)
	}
}
