package build

import (
	"context"
	"testing"

	"bonsai/internal/netgen"
)

// TestStoreBudgetEvictsAndRecompresses drives the bounded store through its
// whole life cycle on a fattree: fill, shrink the budget, verify eviction
// spared the pinned transport seed, and verify an evicted class recompresses
// on its next query to a field-identical abstraction.
func TestStoreBudgetEvictsAndRecompresses(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	comp := b.NewCompiler(true)
	classes := b.Classes()
	for _, cls := range classes {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	st := b.AbstractionCacheStats()
	if st.Misses != int64(len(classes)) || st.Fresh != 1 || st.Transported != int64(len(classes)-1) {
		t.Fatalf("cold fill stats: %+v", st)
	}
	if st.LiveBytes <= 0 || st.PeakBytes < st.LiveBytes || st.Evictions != 0 {
		t.Fatalf("accounting: %+v", st)
	}

	// A budget of one byte evicts everything evictable; the pinned seed
	// stays (the symmetry family must keep compressing via transport).
	b.SetAbstractionBudget(1)
	st = b.AbstractionCacheStats()
	if st.Evictions != int64(len(classes)-1) {
		t.Fatalf("evictions = %d, want %d: %+v", st.Evictions, len(classes)-1, st)
	}
	if st.LiveBytes <= 0 {
		t.Fatalf("pinned seed evicted: %+v", st)
	}
	if st.BudgetBytes != 1 {
		t.Fatalf("budget not recorded: %+v", st)
	}

	// An evicted class is a plain miss: recomputed (transported again via
	// the surviving seed), field-identical to an uncached compression.
	cls := classes[len(classes)-1]
	got, prov, err := b.CompressTagged(ctx, comp, cls)
	if err != nil {
		t.Fatal(err)
	}
	if prov != ProvTransported {
		t.Fatalf("recompression provenance = %v", prov)
	}
	want, err := b.CompressFresh(ctx, comp, cls)
	if err != nil {
		t.Fatal(err)
	}
	absEqual(t, "recompress-after-evict", got, want)
	st2 := b.AbstractionCacheStats()
	if st2.Misses != st.Misses+1 {
		t.Fatalf("recompression not a miss: %+v -> %+v", st, st2)
	}
	if st2.DuplicateFresh != 0 {
		t.Fatalf("duplicate fresh compressions: %+v", st2)
	}

	// Restoring an unbounded budget lets entries accumulate again.
	b.SetAbstractionBudget(0)
	for _, cls := range classes {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	st3 := b.AbstractionCacheStats()
	if st3.LiveBytes <= st.LiveBytes {
		t.Fatalf("store did not refill: %+v", st3)
	}
}

// TestStoreEvictionKeepsWithinBudget checks the LRU actually bounds the
// accounted footprint when the budget admits a few entries.
func TestStoreEvictionKeepsWithinBudget(t *testing.T) {
	b, err := New(netgen.Ring(24))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	comp := b.NewCompiler(true)
	classes := b.Classes()
	// Size the budget from one completed entry: room for about three.
	if _, err := b.Compress(ctx, comp, classes[0]); err != nil {
		t.Fatal(err)
	}
	one := b.AbstractionCacheStats().LiveBytes
	b.SetAbstractionBudget(3 * one)
	for _, cls := range classes[1:] {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	st := b.AbstractionCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 3*one, st)
	}
	// The footprint may exceed the budget only by the pinned seed floor.
	if st.LiveBytes > 3*one+one {
		t.Fatalf("footprint way over budget: %+v", st)
	}
}

// TestAdoptionTreatsEvictedAsCold: after eviction, AdoptFrom must count the
// evicted classes as new (cold), not fail.
func TestAdoptionTreatsEvictedAsCold(t *testing.T) {
	cfg := netgen.Fattree(4, netgen.PolicyShortestPath)
	old, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	comp := old.NewCompiler(true)
	for _, cls := range old.Classes() {
		if _, err := old.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	old.SetAbstractionBudget(1) // keep only the pinned seed

	b2, err := New(cfg.Clone())
	if err != nil {
		t.Fatal(err)
	}
	comp2 := b2.NewCompiler(true)
	stats, err := b2.AdoptFrom(ctx, comp2, old, AdoptDelta{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(b2.Classes())
	if stats.Adopted+stats.NewClasses != total || stats.Invalidated != 0 {
		t.Fatalf("adoption after eviction: %+v (total %d)", stats, total)
	}
	if stats.Adopted == 0 {
		t.Fatalf("pinned seed not adopted: %+v", stats)
	}
	if stats.NewClasses == 0 {
		t.Fatalf("evicted classes not treated as cold: %+v", stats)
	}
	// The adopting builder must still answer every class.
	for _, cls := range b2.Classes() {
		if _, err := b2.Compress(ctx, comp2, cls); err != nil {
			t.Fatal(err)
		}
	}
}
