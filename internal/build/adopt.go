// Incremental adoption: carrying compressed abstractions across a
// configuration delta. A long-lived engine that has compressed a network
// holds one cached partition per destination class; after a small change
// (link flap, policy edit, prefix add/remove) most of those partitions are
// still valid abstractions of the new network, and re-running Algorithm 1
// — or even re-deriving every class's edge keys — would redo work the
// cache already paid for.
//
// Two observations make adoption cheap and sound:
//
//  1. The refinement loop of internal/core computes signatures as *sets* of
//     (edge policy, neighbor group) tokens over *live* edges: multiplicities
//     are discarded and dead edges contribute nothing. A partition therefore
//     remains a valid effective abstraction as long as the stability
//     conditions hold under the new inputs — uniform policy per abstract
//     edge, ∀∃ coverage in both directions, self-loop freedom, destination
//     alone — and a delta perturbs those conditions only *at the edges and
//     routers it touches*. Removing a live edge (u, v) preserves stability
//     iff u keeps another surviving live edge with an equal label into v's
//     group and v keeps one from u's group (the lost token was not the last
//     of its kind); adding a live edge preserves stability iff it lands on
//     an abstract edge that already existed with the same label (the gained
//     token is not new to the group). Everything else is untouched, so the
//     validity check is O(degree) per changed edge, not O(E) per class.
//
//  2. Labels, not BDDs, decide equality. The transport machinery
//     (transport.go) already established that an edge's full label —
//     class-independent content plus per-class match outcomes and verdicts —
//     determines its compiled relation, its liveness, and its canonical key.
//     Comparing labels is integer comparison against the cached class
//     signature; no policy is recompiled during adoption. The one place a
//     BDD compiler is consulted is deciding liveness of an edge with no
//     surviving same-labeled sibling (a restored link, an edited map), where
//     the per-compiler relation cache amortises the cost across classes.
//
// A class failing any check is simply not adopted and recompresses from
// scratch on its next query — soundness never depends on *why* a check
// failed. The paper's correctness theorems (§4) hold for any abstraction
// satisfying the conditions, not just the coarsest one, so an adopted
// partition that a fresh run could merge further is still a correct
// (merely sub-minimal) abstraction. BGP case splitting (Theorem 4.4) adds
// conditions the local checks do not re-validate, so adoption is gated to
// classes whose routers hold a single local-preference value — the common
// case; preference-diverse classes always recompress.
package build

import (
	"context"

	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/faultinject"
	"bonsai/internal/policy"
	"bonsai/internal/topo"
)

// CachedAbstraction returns the completed cached abstraction for cls, if
// the deduplication cache holds one. It never computes anything beyond the
// class fingerprint.
func (b *Builder) CachedAbstraction(cls ec.Class) (*core.Abstraction, bool) {
	e, ok := b.cachedEntry(cls)
	if !ok {
		return nil, false
	}
	return e.abs, true
}

// cachedEntry looks up the completed cache entry for cls, consulting the
// prefix -> fingerprint memo before falling back to a fingerprint
// computation. An entry the store has evicted is simply absent — the class
// reads as cold, never as an error.
func (b *Builder) cachedEntry(cls ec.Class) (*absEntry, bool) {
	b.internMu.Lock()
	fp, ok := b.fpByPrefix[cls.Prefix]
	b.internMu.Unlock()
	if !ok {
		sig, err := b.classSignature(cls)
		if err != nil {
			return nil, false
		}
		fp = sig.fp
	}
	st := &b.store
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[fp]
	if !ok || !e.done || e.err != nil {
		return nil, false
	}
	st.lruTouch(e)
	return e, true
}

// UsesLocalPref reports whether any route map attached to a live session
// can set a BGP local preference, computed once per Builder. Networks
// without preference-setting policies have prefs(u) == 1 everywhere, which
// adoption relies on to skip re-validating the case-splitting conditions.
func (b *Builder) UsesLocalPref() bool {
	b.lpOnce.Do(func() {
		for _, ref := range b.sigRMs {
			rm := ref.env.RouteMaps[ref.name]
			if rm == nil {
				continue
			}
			for ci := range rm.Clauses {
				for _, s := range rm.Clauses[ci].Sets {
					if s.Kind == policy.SetLocalPref {
						b.lpUsed = true
						return
					}
				}
			}
		}
	})
	return b.lpUsed
}

// AdoptStats reports what one AdoptFrom pass did.
type AdoptStats struct {
	// Adopted counts classes whose cached abstraction was carried across
	// the delta; Unchanged of those reused the old abstraction object
	// outright, Reassembled had their abstract graph rebuilt over the new
	// topology (same partition, fresh representatives).
	Adopted     int
	Unchanged   int
	Reassembled int
	// Invalidated counts cached classes the delta actually affected (they
	// recompress on their next query); InvalidatedPrefixes lists them.
	Invalidated         int
	InvalidatedPrefixes []string
	// NewClasses counts classes with no usable cache entry; Removed counts
	// pre-delta classes that no longer exist.
	NewClasses int
	Removed    int
}

// AdoptDelta tells AdoptFrom what the delta between the two builders
// touched beyond topology.
type AdoptDelta struct {
	// TouchedRouters names routers whose policies, statics or originated
	// prefixes the delta edited. Link-state-only deltas leave it empty.
	TouchedRouters []string
}

// AdoptFrom carries every still-valid cached abstraction of old — a
// Builder over the same router-name set — into b's cache, invalidating
// only the classes the delta actually affected. comp must be a compiler of
// b owned by the calling goroutine. It returns statistics and stops early
// (state consistent, remaining classes simply cold) when ctx is cancelled.
func (b *Builder) AdoptFrom(ctx context.Context, comp *policy.Compiler, old *Builder, delta AdoptDelta) (AdoptStats, error) {
	var st AdoptStats
	if !sameRouterNames(old, b) {
		// Node IDs are not comparable; nothing can be adopted.
		st.NewClasses = len(b.Classes())
		st.Removed = len(old.Classes())
		return st, nil
	}
	ad := newAdoption(b, old, delta)
	oldByPrefix := make(map[string]ec.Class, len(old.Classes()))
	for _, cls := range old.Classes() {
		oldByPrefix[cls.Prefix.String()] = cls
	}
	for _, cls := range b.Classes() {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		key := cls.Prefix.String()
		oldCls, existed := oldByPrefix[key]
		delete(oldByPrefix, key)
		if !existed || !sameOrigins(oldCls, cls) {
			st.NewClasses++
			continue
		}
		entry, ok := old.cachedEntry(oldCls)
		if !ok {
			st.NewClasses++
			continue
		}
		switch ad.adoptClassSafe(comp, cls, entry) {
		case adoptUnchanged:
			st.Adopted++
			st.Unchanged++
		case adoptReassembled:
			st.Adopted++
			st.Reassembled++
		default:
			st.Invalidated++
			st.InvalidatedPrefixes = append(st.InvalidatedPrefixes, key)
		}
	}
	st.Removed = len(oldByPrefix)
	// One cross-tenant pressure pass per adoption sweep: installs above ran
	// under the store lock, so the shared pool (if b is attached) settles
	// here rather than per class.
	b.store.pressure()
	return st, nil
}

// adoptClassSafe wraps adoptClass with the adopt.class injection seam and
// panic containment. Invalidating on panic is sound: an unadopted class is
// merely cold and recompresses from scratch on its next query, so a
// poisoned adoption check costs recomputation, never correctness or the
// process.
func (ad *adoption) adoptClassSafe(comp *policy.Compiler, cls ec.Class, entry *absEntry) (out adoptOutcome) {
	defer func() {
		if recover() != nil {
			out = adoptFailed
		}
	}()
	if faultinject.Active() {
		faultinject.Fire(faultinject.AdoptClass, cls.Prefix.String())
	}
	return ad.adoptClass(comp, cls, entry)
}

type adoptOutcome int

const (
	adoptFailed adoptOutcome = iota
	adoptUnchanged
	adoptReassembled
)

// adoption carries the per-Apply precomputed state shared by every class.
type adoption struct {
	b, old *Builder
	// removedIdx marks old edge indices whose edge is gone; addedIdx marks
	// new edge indices whose edge did not exist before. remap maps new edge
	// index -> old edge index (-1 for added edges).
	removedIdx []bool
	removed    []int32 // removed old edge indices
	addedIdx   []bool
	added      []int32 // added new edge indices
	remap      []int32
	// touched describes the delta-edited routers (same NodeIDs in both
	// builders).
	touched []touchedRouter
	lpGate  bool // either builder's policies can set local preferences
}

// touchedRouter is one delta-edited router with the class-independent part
// of its dirtiness precomputed.
type touchedRouter struct {
	u      topo.NodeID
	oldEnv *policy.Env
	// maps lists the router's session route-map names (import and export,
	// deduplicated); contentDirty marks those whose class-independent
	// content changed — their compiled relations may differ even for
	// classes with identical match outcomes.
	maps         []string
	contentDirty map[string]bool
	// structural is set when the router's sessions, interface-ACL
	// assignments or BGP presence changed shape — adoption then treats
	// every adjacent edge as dirty.
	structural bool
}

func edgeLess(a, b topo.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func sameRouterNames(a, b *Builder) bool {
	if a.G.NumNodes() != b.G.NumNodes() {
		return false
	}
	for _, u := range a.G.Nodes() {
		if a.G.Name(u) != b.G.Name(u) {
			return false
		}
	}
	return true
}

func sameOrigins(a, b ec.Class) bool {
	if len(a.Origins) != len(b.Origins) {
		return false
	}
	for i := range a.Origins {
		if a.Origins[i] != b.Origins[i] {
			return false
		}
	}
	return true
}

func newAdoption(b, old *Builder, delta AdoptDelta) *adoption {
	ad := &adoption{
		b:          b,
		old:        old,
		removedIdx: make([]bool, len(old.iso.edges)),
		addedIdx:   make([]bool, len(b.iso.edges)),
		remap:      make([]int32, len(b.iso.edges)),
		lpGate:     old.UsesLocalPref() || b.UsesLocalPref(),
	}
	// Both edge lists are sorted by (U, V) — a linear merge classifies
	// every edge as shared, added or removed without hashing.
	newEdges, oldEdges := b.iso.edges, old.iso.edges
	i, j := 0, 0
	for i < len(newEdges) || j < len(oldEdges) {
		switch {
		case j >= len(oldEdges) || (i < len(newEdges) && edgeLess(newEdges[i], oldEdges[j])):
			ad.remap[i] = -1
			ad.addedIdx[i] = true
			ad.added = append(ad.added, int32(i))
			i++
		case i >= len(newEdges) || edgeLess(oldEdges[j], newEdges[i]):
			ad.removedIdx[j] = true
			ad.removed = append(ad.removed, int32(j))
			j++
		default:
			ad.remap[i] = int32(j)
			i++
			j++
		}
	}
	for _, name := range delta.TouchedRouters {
		if u, ok := b.G.Lookup(name); ok {
			ad.touched = append(ad.touched, ad.classifyRouter(u))
		}
	}
	return ad
}

// classifyRouter compares the class-independent configuration of router u
// between the two builders: which session route maps changed content, and
// whether the router's session or ACL shape changed at all.
func (ad *adoption) classifyRouter(u topo.NodeID) touchedRouter {
	oldR, newR := ad.old.routers[u], ad.b.routers[u]
	tr := touchedRouter{u: u, oldEnv: oldR.Env, contentDirty: make(map[string]bool)}
	if (oldR.BGP == nil) != (newR.BGP == nil) {
		tr.structural = true
		return tr
	}
	if len(oldR.IfaceACL) != len(newR.IfaceACL) {
		tr.structural = true
	}
	for peer, acl := range newR.IfaceACL {
		if oldR.IfaceACL[peer] != acl {
			tr.structural = true
		}
	}
	if newR.BGP != nil {
		if len(oldR.BGP.Neighbors) != len(newR.BGP.Neighbors) {
			tr.structural = true
		}
		oldCache := make(map[rmRef]string)
		newCache := make(map[rmRef]string)
		seen := make(map[string]bool)
		for peer, nb := range newR.BGP.Neighbors {
			oldNb := oldR.BGP.Neighbors[peer]
			if oldNb == nil || oldNb.ImportMap != nb.ImportMap || oldNb.ExportMap != nb.ExportMap {
				tr.structural = true
				continue
			}
			for _, m := range []string{nb.ImportMap, nb.ExportMap} {
				if m == "" || seen[m] {
					continue
				}
				seen[m] = true
				tr.maps = append(tr.maps, m)
				if mapContentSig(oldCache, oldR.Env, m) != mapContentSig(newCache, newR.Env, m) {
					tr.contentDirty[m] = true
				}
			}
		}
	}
	return tr
}

// adoptClass decides one class. entry is the old builder's completed cache
// entry for the same prefix and origins.
func (ad *adoption) adoptClass(comp *policy.Compiler, cls ec.Class, entry *absEntry) adoptOutcome {
	b, old := ad.b, ad.old
	abs := entry.abs
	if len(abs.F) != b.G.NumNodes() || entry.live == nil {
		return adoptFailed
	}
	// Local-preference gate: the local checks do not re-validate the ∀∀
	// and case-splitting conditions of Theorem 4.4.
	if ad.lpGate {
		if entry.prefs == nil {
			return adoptFailed
		}
		for _, p := range entry.prefs {
			if p > 1 {
				return adoptFailed
			}
		}
		for _, p := range b.prefsVec(cls) {
			if p > 1 {
				return adoptFailed
			}
		}
	}
	oldSig := entry.sig
	F := abs.F

	// A lazily-built edge-key function: only consulted for edges whose
	// liveness the cached data cannot determine (added links, edited
	// policies). The compiler's relation cache amortises those compiles
	// across classes.
	var keyFn func(u, v topo.NodeID) core.EdgeKey
	key := func(u, v topo.NodeID) core.EdgeKey {
		if keyFn == nil {
			keyFn = b.EdgeKeyFunc(comp, cls)
		}
		return keyFn(u, v)
	}

	// Touched-router checks: only the edges actually carrying an edited
	// object can change, and each of those must have been dead and stay
	// dead for this class (live carriers invalidate it).
	for _, tr := range ad.touched {
		if !ad.checkTouchedRouter(tr, cls, entry, key) {
			return adoptFailed
		}
	}

	// Removed live edges: the lost signature token must not have been the
	// last of its kind for either endpoint, witnessed by a *surviving*
	// equal-labeled live edge in the same bucket.
	for _, j := range ad.removed {
		if !entry.live[j] {
			continue
		}
		e := old.iso.edges[j]
		if !ad.survivingOutWitness(oldSig, entry.live, F, e, j) ||
			!ad.survivingInWitness(oldSig, entry.live, F, e, j) {
			return adoptFailed
		}
	}

	// Added edges: dead edges are invisible; a live added edge must land on
	// an abstract edge that already existed with the same label.
	live2 := make([]bool, len(b.iso.edges))
	for i, j := range ad.remap {
		if j >= 0 {
			live2[i] = entry.live[j]
		}
	}
	sig2, err := b.classSignature(cls)
	if err != nil {
		return adoptFailed
	}
	for _, i := range ad.added {
		e := b.iso.edges[i]
		if key(e.U, e.V).Dead() {
			continue
		}
		live2[i] = true
		if F[e.U] == F[e.V] {
			return adoptFailed // would create an abstract self loop
		}
		if !ad.addedWitness(sig2, live2, F, e, i) {
			return adoptFailed
		}
	}

	// The partition survives, and — because every lost or gained token had
	// a same-bucket witness — the abstract graph's edges are unchanged.
	// Reuse the old abstraction object outright when its representative
	// concrete edges all survive; otherwise re-assemble from the partition
	// (fresh representatives, no refinement).
	if ad.repEdgesSurvive(abs) {
		return ad.install(cls, sig2, abs, live2, entry.prefs, adoptUnchanged)
	}
	mode := core.ModeEffective
	if b.hasBGP {
		mode = core.ModeBGP
	}
	re := core.Assemble(b.G, abs.Dest, F, core.AssembleOptions{
		Mode:        mode,
		LiveEdges:   live2,
		Iterations:  abs.Iterations,
		ColorSplits: abs.ColorSplits,
	})
	return ad.install(cls, sig2, re, live2, entry.prefs, adoptReassembled)
}

// checkTouchedRouter verifies that a delta-edited router cannot change this
// class's compression inputs: every adjacent edge carrying an edited object
// (a route map with changed content or changed match outcomes, an ACL whose
// verdict flipped, an applicable static that appeared or vanished) was dead
// for the class and remains dead under the new configuration.
func (ad *adoption) checkTouchedRouter(tr touchedRouter, cls ec.Class, entry *absEntry, key func(u, v topo.NodeID) core.EdgeKey) bool {
	oldR, newR := ad.old.routers[tr.u], ad.b.routers[tr.u]
	dirtyMaps := make(map[string]bool)
	for _, m := range tr.maps {
		if tr.contentDirty[m] {
			dirtyMaps[m] = true
			continue
		}
		oldBits := appendPrefixFingerprint(nil, oldR.Env, m, cls.Prefix)
		newBits := appendPrefixFingerprint(nil, newR.Env, m, cls.Prefix)
		if string(oldBits) != string(newBits) {
			dirtyMaps[m] = true
		}
	}
	aclDirty := false
	for peer, acl := range newR.IfaceACL {
		if oldR.Env.ACLPermits(oldR.IfaceACL[peer], cls.Prefix) != newR.Env.ACLPermits(acl, cls.Prefix) {
			aclDirty = true
		}
	}
	staticsDirty := !staticSetEqual(oldR, newR, cls)

	t := ad.old.iso
	rmDirty := func(idx int32) bool {
		if idx < 0 {
			return false
		}
		r := ad.old.sigRMs[idx]
		return r.env == tr.oldEnv && dirtyMaps[r.name]
	}
	edgeDirty := func(j int32, egress bool) bool {
		if tr.structural {
			return true
		}
		if rmDirty(t.expRM[j]) || rmDirty(t.impRM[j]) {
			return true
		}
		// The router's egress ACL and statics ride its outgoing edges.
		return egress && (aclDirty || staticsDirty)
	}
	for _, ne := range t.nbrEdges[tr.u] {
		for _, dir := range [2]struct {
			j      int32
			egress bool
		}{{ne.out, true}, {ne.in_, false}} {
			if !edgeDirty(dir.j, dir.egress) {
				continue
			}
			if entry.live[dir.j] {
				return false // a live edge's transfer function may change
			}
			if ad.removedIdx[dir.j] {
				continue // the delta also removed it; dead either way
			}
			e := t.edges[dir.j]
			if !key(e.U, e.V).Dead() {
				return false // a dead edge would come alive
			}
		}
	}
	return true
}

// staticSetEqual compares the two routers' statics applicable to the class.
func staticSetEqual(oldR, newR *config.Router, cls ec.Class) bool {
	type st struct {
		p   string
		via string
	}
	oldSt := make(map[st]bool)
	for _, s := range oldR.Statics {
		if staticCovers(s.Prefix, cls.Prefix) {
			oldSt[st{s.Prefix.String(), s.NextHop}] = true
		}
	}
	n := 0
	for _, s := range newR.Statics {
		if staticCovers(s.Prefix, cls.Prefix) {
			if !oldSt[st{s.Prefix.String(), s.NextHop}] {
				return false
			}
			n++
		}
	}
	return n == len(oldSt)
}

// survivingOutWitness reports whether u (of removed old edge e = (u, v))
// keeps a surviving live out-edge with an equal label into v's group.
func (ad *adoption) survivingOutWitness(sig *classSig, live []bool, F []int, e topo.Edge, j int32) bool {
	t := ad.old.iso
	for _, ne := range t.nbrEdges[e.U] {
		if ne.out == j || ad.removedIdx[ne.out] || !live[ne.out] {
			continue
		}
		if F[ne.v] == F[e.V] && t.edgeEq(sig, sig, ne.out, j) {
			return true
		}
	}
	return false
}

// survivingInWitness reports whether v (of removed old edge e = (u, v))
// keeps a surviving live in-edge with an equal label from u's group.
func (ad *adoption) survivingInWitness(sig *classSig, live []bool, F []int, e topo.Edge, j int32) bool {
	t := ad.old.iso
	for _, ne := range t.nbrEdges[e.V] {
		// ne.out is (v, w); ne.in_ is (w, v) — the in-edge direction.
		if ne.in_ == j || ad.removedIdx[ne.in_] || !live[ne.in_] {
			continue
		}
		if F[ne.v] == F[e.U] && t.edgeEq(sig, sig, ne.in_, j) {
			return true
		}
	}
	return false
}

// addedWitness reports whether added live new edge e = (u, v) lands on an
// already-covered abstract edge with an equal label: a surviving live edge
// (u, w) with w in v's group and the same label. Token sets are unchanged
// in that case, so the partition stays stable.
func (ad *adoption) addedWitness(sig *classSig, live []bool, F []int, e topo.Edge, i int32) bool {
	t := ad.b.iso
	for _, ne := range t.nbrEdges[e.U] {
		if ne.out == i || ad.addedIdx[ne.out] || !live[ne.out] {
			continue
		}
		if F[ne.v] == F[e.V] && t.edgeEq(sig, sig, ne.out, i) {
			// Out-token witnessed; the in-token needs a witness too.
			for _, me := range t.nbrEdges[e.V] {
				if me.in_ == i || ad.addedIdx[me.in_] || !live[me.in_] {
					continue
				}
				if F[me.v] == F[e.U] && t.edgeEq(sig, sig, me.in_, i) {
					return true
				}
			}
			return false
		}
	}
	return false
}

// repEdgesSurvive reports whether every representative concrete edge of the
// abstraction still exists in the new topology (so RepEdge needs no
// rebuild).
func (ad *adoption) repEdgesSurvive(abs *core.Abstraction) bool {
	for _, rep := range abs.RepEdge {
		if _, ok := ad.b.iso.edgeIdx[rep]; !ok {
			return false
		}
	}
	return true
}

// install records an adopted abstraction in b's store under sig. Adopted
// entries serve identity hits and future adoptions but are not symmetry
// transport seeds (their label/color tables are left uncomputed to keep
// Apply fast), so they are evictable like any other entry — an evicted
// adoption recompresses on its next query.
func (ad *adoption) install(cls ec.Class, sig *classSig, abs *core.Abstraction, live []bool, prefs []int, out adoptOutcome) adoptOutcome {
	b := ad.b
	if faultinject.Active() {
		// The store.install seam lets tests shrink the budget (forcing
		// evictions) or panic mid-install while an apply is writing entries.
		faultinject.Fire(faultinject.StoreInstall, cls.Prefix.String())
	}
	e := &absEntry{ready: make(chan struct{}), sig: sig, fp: sig.fp, abs: abs, live: live, prefs: prefs, done: true, src: ProvAdopted}
	close(e.ready)
	st := &b.store
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[sig.fp]; ok {
		// An identity-shared class already installed this fingerprint.
		return out
	}
	st.entries[sig.fp] = e
	st.adopted++
	st.account(e)
	st.evict()
	return out
}
