// Symmetry transport: cross-EC abstraction reuse between destination classes
// related by a network symmetry. The evaluation networks are regular —
// fattree's 72/200/450 classes differ only in *which* edge router originates
// the prefix, not in any behavioral structure — so compressing every class
// independently redoes identical refinement work modulo a relabeling of the
// routers. This file finds that relabeling explicitly.
//
// Given a cached class A and a new class B, transport searches for a
// permutation π of the concrete nodes such that π maps every directed edge
// onto an edge with the same class-independent content label (BGP session
// shape, route-map *content*, OSPF cost/area, redistribution) and the same
// class-dependent bits (prefix-list match outcomes, ACL verdicts, static
// routes, origins, destination). Such a π is an isomorphism between the two
// compression inputs, and every phase of Algorithm 1 that Bonsai runs —
// partition-refinement fixpoints, ∀∀ strengthening, case splitting, and the
// canonical assembly — commutes with it. The one exception is the greedy
// first-fit coloring of phase 2b, whose output can depend on member order;
// abstractions where it fired are therefore never transported
// (Abstraction.ColorSplits > 0). Under that gate, Assemble(π(partition_A))
// is byte-identical to compressing B from scratch, which the property tests
// assert.
//
// Soundness does not rest on the search heuristics: hash collisions in the
// color-refinement pruning can only admit extra candidates, every candidate
// π is verified edge-by-edge against the exact label conditions before use,
// and any failure (or exceeding the search budget) falls back to
// CompressFresh.
package build

import (
	"slices"
	"sort"
	"strconv"

	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
	"bonsai/internal/topo"
)

// nbrEdge is one undirected neighbor with the indices of the two directed
// edges joining it, precomputed so the hot loops never consult a map.
type nbrEdge struct {
	v        topo.NodeID
	out, in_ int32 // edge indices of (u, v) and (v, u)
}

// isoTables holds the class-independent side of the transport machinery,
// built once per Builder.
type isoTables struct {
	edges    []topo.Edge            // b.G.Edges() order
	edgeIdx  map[topo.Edge]int32    // directed edge -> index in edges
	content  []int32                // per edge: interned content label
	expRM    []int32                // per edge: sigRMs index of the export map, -1 none
	impRM    []int32                // per edge: sigRMs index of the import map, -1 none
	aclIdx   []int32                // per edge: sigACLs index of the egress ACL, -1 none
	nbrs     [][]topo.NodeID        // undirected neighbors per node, sorted
	nbrEdges [][]nbrEdge            // aligned with nbrs
	rmLists  [][]*policy.PrefixList // per sigRMs entry: prefix lists matched, in clause/match order
	rmKnown  []bool                 // per sigRMs entry: route map exists
}

// buildIsoTables precomputes edge content labels and index tables. Runs once
// from New; everything here is class-independent.
func (b *Builder) buildIsoTables() {
	t := &isoTables{
		edges:   b.G.Edges(),
		edgeIdx: make(map[topo.Edge]int32),
		nbrs:    make([][]topo.NodeID, b.G.NumNodes()),
	}
	rmIdx := make(map[rmRef]int32, len(b.sigRMs))
	for i, r := range b.sigRMs {
		rmIdx[r] = int32(i)
	}
	aclIdx := make(map[aclRef]int32, len(b.sigACLs))
	for i, a := range b.sigACLs {
		aclIdx[a] = int32(i)
	}
	contentIDs := make(map[string]int32)
	rmContent := make(map[rmRef]string)
	t.content = make([]int32, len(t.edges))
	t.expRM = make([]int32, len(t.edges))
	t.impRM = make([]int32, len(t.edges))
	t.aclIdx = make([]int32, len(t.edges))
	for i, e := range t.edges {
		t.edgeIdx[e] = int32(i)
		t.nbrs[e.U] = append(t.nbrs[e.U], e.V)
		t.expRM[i], t.impRM[i], t.aclIdx[i] = -1, -1, -1
		var lbl []byte
		if sess, ok := b.bgpSess[e]; ok {
			lbl = append(lbl, 'B')
			lbl = appendFlag(lbl, sess.ibgp)
			lbl = appendFlag(lbl, sess.redistOSPF)
			lbl = appendFlag(lbl, sess.redistStatic)
			lbl = append(lbl, mapContentSig(rmContent, sess.expEnv, sess.expMap)...)
			lbl = append(lbl, '/')
			lbl = append(lbl, mapContentSig(rmContent, sess.impEnv, sess.impMap)...)
			if sess.expMap != "" {
				t.expRM[i] = rmIdx[rmRef{env: sess.expEnv, name: sess.expMap}]
			}
			if sess.impMap != "" {
				t.impRM[i] = rmIdx[rmRef{env: sess.impEnv, name: sess.impMap}]
			}
		}
		if adj, ok := b.ospfAdj[e]; ok {
			lbl = append(lbl, 'O')
			lbl = strconv.AppendInt(lbl, int64(adj.cost), 10)
			lbl = appendFlag(lbl, adj.cross)
		}
		if name := b.routers[e.U].IfaceACL[b.G.Name(e.V)]; name != "" {
			t.aclIdx[i] = aclIdx[aclRef{env: b.routers[e.U].Env, name: name}]
		}
		id, ok := contentIDs[string(lbl)]
		if !ok {
			id = int32(len(contentIDs))
			contentIDs[string(lbl)] = id
		}
		t.content[i] = id
	}
	t.nbrEdges = make([][]nbrEdge, len(t.nbrs))
	for u, ns := range t.nbrs {
		slices.Sort(ns)
		ns = slices.Compact(ns)
		t.nbrs[u] = ns
		for _, v := range ns {
			t.nbrEdges[u] = append(t.nbrEdges[u], nbrEdge{
				v:   v,
				out: t.edgeIdx[topo.Edge{U: topo.NodeID(u), V: v}],
				in_: t.edgeIdx[topo.Edge{U: v, V: topo.NodeID(u)}],
			})
		}
	}
	// Per route map, the prefix lists its clauses match, in clause/match
	// order — the positions whose outcomes the class fingerprint records.
	t.rmLists = make([][]*policy.PrefixList, len(b.sigRMs))
	t.rmKnown = make([]bool, len(b.sigRMs))
	for i, r := range b.sigRMs {
		rm := r.env.RouteMaps[r.name]
		if rm == nil {
			continue
		}
		t.rmKnown[i] = true
		for ci := range rm.Clauses {
			for _, m := range rm.Clauses[ci].Matches {
				if m.Kind != policy.MatchPrefix {
					continue
				}
				t.rmLists[i] = append(t.rmLists[i], r.env.PrefixLists[m.Arg])
			}
		}
	}
	b.iso = t
}

func appendFlag(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// mapContentSig serialises everything the BDD compiler and the prefs
// analysis read from a route map, with prefix-list matches abstracted to a
// positional placeholder (their per-class outcomes live in the fingerprint).
// Two maps with equal content signatures and equal match-outcome bits
// compile to the same relation and yield the same local-preference sets.
func mapContentSig(cache map[rmRef]string, env *policy.Env, name string) string {
	if name == "" {
		return "-"
	}
	ref := rmRef{env: env, name: name}
	if s, ok := cache[ref]; ok {
		return s
	}
	rm := env.RouteMaps[name]
	var b []byte
	if rm == nil {
		b = append(b, '?')
		b = append(b, name...)
	} else {
		for ci := range rm.Clauses {
			cl := &rm.Clauses[ci]
			b = append(b, ';')
			if cl.Action == policy.Permit {
				b = append(b, 'p')
			} else {
				b = append(b, 'd')
			}
			for _, m := range cl.Matches {
				switch m.Kind {
				case policy.MatchPrefix:
					b = append(b, 'P') // outcome supplied per class
				case policy.MatchCommunity:
					b = append(b, 'C')
					if l := env.CommunityLists[m.Arg]; l != nil {
						for _, c := range l.Communities {
							b = strconv.AppendUint(b, uint64(c), 10)
							b = append(b, ',')
						}
					} else {
						b = append(b, '?')
						b = append(b, m.Arg...)
					}
				}
			}
			b = append(b, ':')
			for _, s := range cl.Sets {
				b = strconv.AppendInt(b, int64(s.Kind), 10)
				b = append(b, '=')
				b = strconv.AppendUint(b, uint64(s.Value), 10)
				b = append(b, '+')
				b = strconv.AppendUint(b, uint64(s.Comm), 10)
			}
		}
	}
	s := string(b)
	cache[ref] = s
	return s
}

// classSig carries every class-dependent input of compression in comparable
// form: the identity fingerprint plus the per-object tables transport needs.
type classSig struct {
	fp      string // identity fingerprint (absCache key)
	histo   uint64 // relabeling-invariant edge-label histogram hash
	dest    topo.NodeID
	origin  []bool  // per node: origin of the class
	fpIDs   []int32 // per sigRMs: interned match-outcome string
	aclV    []bool  // per sigACLs: verdict for the class prefix
	statics map[topo.Edge]bool
	el      []uint64 // per edge: hashed full label (content + class bits)
	colors  []uint64 // per node: iterated neighborhood colors (lazy)
	colHash uint64   // commutative hash of the color multiset
}

// classSignature computes the class's fingerprint and transport tables.
// Cost is O(route maps + ACLs + statics + E) with no BDD work.
func (b *Builder) classSignature(cls ec.Class) (*classSig, error) {
	dest, err := b.destOf(cls)
	if err != nil {
		return nil, err
	}
	t := b.iso
	s := &classSig{
		dest:    dest,
		origin:  make([]bool, b.G.NumNodes()),
		fpIDs:   make([]int32, len(b.sigRMs)),
		aclV:    make([]bool, len(b.sigACLs)),
		statics: b.staticEdges(cls),
	}
	fp := make([]byte, 0, 64+2*len(b.sigRMs)+len(b.sigACLs))
	fp = strconv.AppendInt(fp, int64(dest), 10)
	fp = append(fp, '|')
	for _, o := range cls.Origins {
		fp = append(fp, o...)
		fp = append(fp, ',')
		if id, ok := b.G.Lookup(o); ok {
			s.origin[id] = true
		}
	}
	fp = append(fp, '|')
	statics := make([]topo.Edge, 0, len(s.statics))
	for e := range s.statics {
		statics = append(statics, e)
	}
	sort.Slice(statics, func(i, j int) bool {
		if statics[i].U != statics[j].U {
			return statics[i].U < statics[j].U
		}
		return statics[i].V < statics[j].V
	})
	for _, e := range statics {
		fp = strconv.AppendInt(fp, int64(e.U), 10)
		fp = append(fp, '>')
		fp = strconv.AppendInt(fp, int64(e.V), 10)
		fp = append(fp, ',')
	}
	fp = append(fp, '|')
	// Match-outcome strings per route map, interned Builder-wide so that
	// transport can compare them across classes as ints. The prefix-list
	// matching runs outside the lock (concurrent workers signature-compute
	// in parallel); only the intern-table access is a critical section.
	var bits []byte
	offs := make([]int, len(b.sigRMs)+1)
	for i := range b.sigRMs {
		if !t.rmKnown[i] {
			bits = append(bits, '?')
		}
		for _, l := range t.rmLists[i] {
			if l != nil && l.Matches(cls.Prefix) {
				bits = append(bits, '1')
			} else {
				bits = append(bits, '0')
			}
		}
		offs[i+1] = len(bits)
	}
	b.internMu.Lock()
	for i := range b.sigRMs {
		key := bits[offs[i]:offs[i+1]]
		id, ok := b.fpIntern[string(key)]
		if !ok {
			id = int32(len(b.fpIntern))
			b.fpIntern[string(key)] = id
		}
		s.fpIDs[i] = id
	}
	b.internMu.Unlock()
	for i := range b.sigRMs {
		fp = strconv.AppendInt(fp, int64(s.fpIDs[i]), 10)
		fp = append(fp, ';')
	}
	fp = append(fp, '|')
	for i, a := range b.sigACLs {
		s.aclV[i] = a.env.ACLPermits(a.name, cls.Prefix)
		fp = appendFlag(fp, s.aclV[i])
	}
	s.fp = string(fp)
	// Memoize prefix -> fingerprint for the Builder's lifetime: the mapping
	// is deterministic, so warm-hit paths and the scheduler's grouping key
	// never need to recompute a signature for a class seen before — even
	// after its store entry is evicted.
	b.internMu.Lock()
	b.fpByPrefix[cls.Prefix] = s.fp
	b.internMu.Unlock()
	return s, nil
}

// ensureLabels computes (once per classSig) the per-edge label vector and
// its relabeling-invariant histogram hash. Deferred off the identity-hit
// path: cache hits only read sig.fp, so the O(E) hashing runs on misses
// alone. Like ensureColors, the lazy write is unsynchronised — callers must
// only invoke it on a classSig not yet shared with other goroutines.
func (b *Builder) ensureLabels(s *classSig) {
	if s.el != nil {
		return
	}
	t := b.iso
	// Addition is commutative, so summing the mixed labels is invariant
	// under any edge reordering — no sort needed.
	s.el = make([]uint64, len(t.edges))
	h := uint64(14695981039346656037)
	for i := range t.edges {
		w := t.edgeLabel(s, int32(i))
		s.el[i] = w
		h += mix64(w)
	}
	norig := 0
	for _, o := range s.origin {
		if o {
			norig++
		}
	}
	s.histo = mix64(h ^ uint64(norig))
}

// edgeLabel hashes the full (content + class-dependent) label of edge index
// i under class signature s into one word. Used for pruning and histograms;
// exact comparisons go through edgeEq.
func (t *isoTables) edgeLabel(s *classSig, i int32) uint64 {
	w := mix64(uint64(uint32(t.content[i])) + 1)
	if rm := t.expRM[i]; rm >= 0 {
		w = mix64(w ^ (uint64(uint32(s.fpIDs[rm])) + 0x9e3779b97f4a7c15))
	}
	if rm := t.impRM[i]; rm >= 0 {
		w = mix64(w ^ (uint64(uint32(s.fpIDs[rm])) + 0xc2b2ae3d27d4eb4f))
	}
	if a := t.aclIdx[i]; a >= 0 && !s.aclV[a] {
		w = mix64(w ^ 0x165667b19e3779f9)
	}
	if len(s.statics) > 0 && s.statics[t.edges[i]] {
		w = mix64(w ^ 0x27d4eb2f165667c5)
	}
	return w
}

// mix64 is splitmix64's finaliser: a fast, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// edgeEq reports whether edge e under class sa carries exactly the same
// label as edge f under class sb — the per-edge transport condition.
func (t *isoTables) edgeEq(sa, sb *classSig, e, f int32) bool {
	if t.content[e] != t.content[f] {
		return false
	}
	rmE, rmF := t.expRM[e], t.expRM[f]
	if (rmE < 0) != (rmF < 0) || (rmE >= 0 && sa.fpIDs[rmE] != sb.fpIDs[rmF]) {
		return false
	}
	rmE, rmF = t.impRM[e], t.impRM[f]
	if (rmE < 0) != (rmF < 0) || (rmE >= 0 && sa.fpIDs[rmE] != sb.fpIDs[rmF]) {
		return false
	}
	aclA, aclB := true, true
	if a := t.aclIdx[e]; a >= 0 {
		aclA = sa.aclV[a]
	}
	if a := t.aclIdx[f]; a >= 0 {
		aclB = sb.aclV[a]
	}
	if aclA != aclB {
		return false
	}
	return sa.statics[t.edges[e]] == sb.statics[t.edges[f]]
}

// colorRounds bounds the color-refinement preprocessing. Three rounds
// separate structural roles in the evaluation networks; under-refinement
// only enlarges candidate sets (the search's forward checking and the final
// sweep keep wrong permutations out), so fewer rounds trade search effort
// for a cheaper per-class preprocessing pass.
const colorRounds = 3

// ensureColors computes (once per classSig) iterated neighborhood colors:
// hash-based 1-WL refinement over the labeled graph with the destination
// individualised. Colors are plain hashes, so they are comparable across
// classes without shared state and cacheable per entry. The lazy write is
// not synchronised: callers must only invoke this on a classSig that no
// other goroutine can reach (Compress precomputes colors on fresh entries
// before publishing them as transport seeds).
func (b *Builder) ensureColors(s *classSig) []uint64 {
	if s.colors != nil {
		return s.colors
	}
	b.ensureLabels(s)
	t := b.iso
	n := b.G.NumNodes()
	col := make([]uint64, n)
	for u := 0; u < n; u++ {
		w := uint64(0)
		if topo.NodeID(u) == s.dest {
			w |= 1
		}
		if s.origin[u] {
			w |= 2
		}
		col[u] = mix64(w + 0x9e3779b97f4a7c15)
	}
	next := make([]uint64, n)
	for r := 0; r < colorRounds; r++ {
		for u := 0; u < n; u++ {
			// Commutative combine (sum of mixed tuples) keeps the color a
			// multiset invariant of the labeled neighborhood without sorting.
			h := mix64(col[u])
			for _, ne := range t.nbrEdges[u] {
				h += mix64(s.el[ne.out] ^ mix64(s.el[ne.in_]^mix64(col[ne.v])))
			}
			next[u] = mix64(h)
		}
		col, next = next, col
	}
	h := uint64(0)
	for _, c := range col {
		h += mix64(c)
	}
	s.colHash = h
	s.colors = col
	return col
}

// nbrEdgeOf binary-searches u's sorted neighbor list for v, returning the
// pair of directed edge indices, or ok=false when (u, v) is not an edge.
// Faster than the edgeIdx map in the search hot paths.
func (t *isoTables) nbrEdgeOf(u, v topo.NodeID) (out, in_ int32, ok bool) {
	i, found := slices.BinarySearch(t.nbrs[u], v)
	if !found {
		return 0, 0, false
	}
	ne := t.nbrEdges[u][i]
	return ne.out, ne.in_, true
}

// isoBudgetFactor bounds the backtracking search to factor×V node
// placements (including undone ones) before giving up.
const isoBudgetFactor = 64

// findIso searches for a node permutation π with π(sa.dest) = sb.dest that
// maps every directed edge onto an edge with an equal label (edgeEq) and
// preserves the origin marking. Returns nil if none is found within budget.
// The final sweep re-verifies the result, so heuristic failure or hash
// collisions are only missed optimisations, never wrong answers.
func (b *Builder) findIso(sa, sb *classSig) []topo.NodeID {
	t := b.iso
	n := b.G.NumNodes()
	colA := b.ensureColors(sa)
	colB := b.ensureColors(sb)
	// Color-multiset check (commutative hash): a mismatch means no π can
	// exist; a collision only admits a doomed search that the forward
	// checking rejects.
	if sa.colHash != sb.colHash {
		return nil
	}
	// BFS order from the destination; every node processed after its parent
	// so candidates are constrained by at least one mapped neighbor.
	order := make([]topo.NodeID, 0, n)
	seen := make([]bool, n)
	parent := make([]topo.NodeID, n)
	order = append(order, sa.dest)
	seen[sa.dest] = true
	parent[sa.dest] = -1
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for _, v := range t.nbrs[u] {
			if !seen[v] {
				seen[v] = true
				parent[v] = u
				order = append(order, v)
			}
		}
	}
	if len(order) != n {
		return nil // disconnected from dest; transport not attempted
	}
	pi := make([]topo.NodeID, n)
	rev := make([]topo.NodeID, n)
	for i := range pi {
		pi[i], rev[i] = -1, -1
	}
	budget := isoBudgetFactor * n
	steps := 0
	// compatible checks u→w against all already-mapped neighbors of u.
	compatible := func(u, w topo.NodeID) bool {
		if colA[u] != colB[w] || sa.origin[u] != sb.origin[w] {
			return false
		}
		for _, ne := range t.nbrEdges[u] {
			pv := pi[ne.v]
			if pv < 0 {
				continue
			}
			fo, fi, ok := t.nbrEdgeOf(w, pv)
			if !ok {
				return false
			}
			if !t.edgeEq(sa, sb, ne.out, fo) || !t.edgeEq(sa, sb, ne.in_, fi) {
				return false
			}
		}
		return true
	}
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == n {
			return true
		}
		u := order[i]
		var cands []topo.NodeID
		if parent[u] < 0 {
			cands = []topo.NodeID{sb.dest}
		} else {
			cands = t.nbrs[pi[parent[u]]]
		}
		for _, w := range cands {
			if rev[w] >= 0 || !compatible(u, w) {
				continue
			}
			steps++
			if steps > budget {
				return false
			}
			pi[u], rev[w] = w, u
			if dfs(i + 1) {
				return true
			}
			pi[u], rev[w] = -1, -1
			if steps > budget {
				return false
			}
		}
		return false
	}
	if !dfs(0) {
		return nil
	}
	// Full verification sweep: π must map every edge onto an edge with an
	// equal label (the search already enforced this locally; the sweep makes
	// soundness independent of the search code).
	for i, e := range t.edges {
		f, _, ok := t.nbrEdgeOf(pi[e.U], pi[e.V])
		if !ok || !t.edgeEq(sa, sb, int32(i), f) {
			return nil
		}
	}
	for u := 0; u < n; u++ {
		if sa.origin[u] != sb.origin[pi[u]] {
			return nil
		}
	}
	if pi[sa.dest] != sb.dest {
		return nil
	}
	return pi
}

// transportAbs rebuilds class sig's abstraction from a cached entry by
// mapping its partition, liveness and prefs through π and re-running the
// canonical assembly, returning the abstraction together with the π-mapped
// live-edge vector (aligned with b.G.Edges()). The result is exactly what
// CompressFresh would return for the class, because every phase before
// assembly commutes with π and the cached entry is gated on
// ColorSplits == 0.
func (b *Builder) transportAbs(cand *absEntry, sig *classSig, pi []topo.NodeID) (*core.Abstraction, []bool) {
	t := b.iso
	A := cand.abs
	n := len(pi)
	groupOf := make([]int, n)
	prefs := make([]int, n)
	for u := 0; u < n; u++ {
		groupOf[pi[u]] = A.F[u]
		prefs[pi[u]] = cand.prefs[u]
	}
	live := make([]bool, len(t.edges))
	for i, e := range t.edges {
		if cand.live[i] {
			f, _, ok := t.nbrEdgeOf(pi[e.U], pi[e.V])
			if ok {
				live[f] = true
			}
		}
	}
	mode := core.ModeEffective
	if b.hasBGP {
		mode = core.ModeBGP
	}
	abs := core.Assemble(b.G, sig.dest, groupOf, core.AssembleOptions{
		Mode:        mode,
		Prefs:       func(u topo.NodeID) int { return prefs[u] },
		LiveEdges:   live, // t.edges shares g.Edges() order
		Iterations:  A.Iterations,
		ColorSplits: 0,
	})
	return abs, live
}
