package build

import (
	"context"
	"sync"
	"testing"

	"bonsai/internal/netgen"
)

// fillBuilder compresses every class of a fattree through one compiler,
// returning the builder.
func fillBuilder(t *testing.T, k int) *Builder {
	t.Helper()
	b, err := New(netgen.Fattree(k, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	comp := b.NewCompiler(true)
	ctx := context.Background()
	for _, cls := range b.Classes() {
		if _, err := b.Compress(ctx, comp, cls); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestPoolCeilingEnforced attaches two builders to one pool whose ceiling is
// well below their combined footprint and asserts the pool sheds down to the
// ceiling while both keep answering queries.
func TestPoolCeilingEnforced(t *testing.T) {
	a := fillBuilder(t, 4)
	bytesA := a.AbstractionCacheStats().LiveBytes
	if bytesA <= 0 {
		t.Fatal("no accounted bytes")
	}
	// Ceiling: 1.2x one builder's footprint — two full builders cannot fit.
	p := NewPool(bytesA + bytesA/5)
	p.Attach(a, "a", 0)

	b := fillBuilder(t, 4)
	p.Attach(b, "b", 0)

	s := p.Stats()
	if s.LiveBytes > s.CeilingBytes {
		// Only pinned seeds may hold the total above the ceiling; two
		// fattree-4 builders have far more evictable than pinned bytes.
		t.Fatalf("pool over ceiling after attach: live=%d ceiling=%d", s.LiveBytes, s.CeilingBytes)
	}
	if s.CrossEvictions == 0 {
		t.Fatalf("expected cross evictions: %+v", s)
	}
	if s.PeakBytes < s.LiveBytes {
		t.Fatalf("peak below live: %+v", s)
	}

	// Both builders still serve every class (evicted ones recompute).
	for _, bb := range []*Builder{a, b} {
		comp := bb.NewCompiler(true)
		for _, cls := range bb.Classes() {
			if _, err := bb.Compress(context.Background(), comp, cls); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPoolFloorsHonored fills a small tenant, then lets a big tenant churn
// hard under a tight ceiling; the small tenant must keep at least its floor
// of retained bytes (cross-tenant pressure never cuts into the floor).
func TestPoolFloorsHonored(t *testing.T) {
	small := fillBuilder(t, 4)
	smallBytes := small.AbstractionCacheStats().LiveBytes
	// Floor: everything small currently holds.
	p := NewPool(smallBytes + smallBytes/2)
	p.Attach(small, "small", smallBytes)

	big := fillBuilder(t, 6) // fattree-6 has a larger class set
	p.Attach(big, "big", 0)

	s := p.Stats()
	var smallLive, bigLive int64
	for _, m := range s.Members {
		switch m.Label {
		case "small":
			smallLive = m.LiveBytes
		case "big":
			bigLive = m.LiveBytes
		}
	}
	if smallLive < smallBytes {
		t.Fatalf("small tenant evicted below floor: live=%d floor=%d", smallLive, smallBytes)
	}
	if got := small.AbstractionCacheStats().Evictions; got != 0 {
		t.Fatalf("small tenant saw %d evictions despite floor", got)
	}
	// Big absorbed all the pressure: it must have shed essentially
	// everything evictable (pinned seeds may remain).
	if bigLive >= big.AbstractionCacheStats().PeakBytes {
		t.Fatalf("big tenant shed nothing: live=%d", bigLive)
	}
	if s.CrossEvictions == 0 {
		t.Fatal("no cross evictions recorded")
	}
}

// TestPoolDetachDischarges asserts detaching a member releases its bytes
// from the pool total.
func TestPoolDetachDischarges(t *testing.T) {
	a := fillBuilder(t, 4)
	b := fillBuilder(t, 4)
	p := NewPool(0) // unbounded: accounting only
	p.Attach(a, "a", 0)
	p.Attach(b, "b", 0)
	before := p.Stats()
	if len(before.Members) != 2 || before.LiveBytes <= 0 {
		t.Fatalf("attach accounting: %+v", before)
	}
	aBytes := a.AbstractionCacheStats().LiveBytes
	p.Detach(a)
	after := p.Stats()
	if len(after.Members) != 1 {
		t.Fatalf("detach left %d members", len(after.Members))
	}
	if after.LiveBytes != before.LiveBytes-aBytes {
		t.Fatalf("detach accounting: before=%d after=%d aBytes=%d",
			before.LiveBytes, after.LiveBytes, aBytes)
	}
	// Double detach is a no-op.
	p.Detach(a)
	if got := p.Stats().LiveBytes; got != after.LiveBytes {
		t.Fatalf("double detach changed total: %d", got)
	}
}

// TestPoolConcurrentCompress races many members compressing under a shared
// tight ceiling — the accounting must stay consistent and the total bounded
// once the dust settles.
func TestPoolConcurrentCompress(t *testing.T) {
	probe := fillBuilder(t, 4)
	one := probe.AbstractionCacheStats().LiveBytes
	p := NewPool(2 * one)

	const n = 4
	builders := make([]*Builder, n)
	for i := range builders {
		b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
		if err != nil {
			t.Fatal(err)
		}
		builders[i] = b
		p.Attach(b, string(rune('a'+i)), one/8)
	}
	var wg sync.WaitGroup
	for _, b := range builders {
		wg.Add(1)
		go func(b *Builder) {
			defer wg.Done()
			comp := b.NewCompiler(true)
			ctx := context.Background()
			for round := 0; round < 3; round++ {
				for _, cls := range b.Classes() {
					if _, err := b.Compress(ctx, comp, cls); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(b)
	}
	wg.Wait()

	s := p.Stats()
	// Sum of member bytes must equal the pool total (no accounting drift).
	var sum int64
	for _, m := range s.Members {
		sum += m.LiveBytes
	}
	if sum != s.LiveBytes {
		t.Fatalf("accounting drift: members sum %d, pool total %d", sum, s.LiveBytes)
	}
	if s.LiveBytes > s.CeilingBytes {
		t.Fatalf("settled over ceiling: live=%d ceiling=%d", s.LiveBytes, s.CeilingBytes)
	}
	for _, b := range builders {
		p.Detach(b)
	}
	if got := p.Stats().LiveBytes; got != 0 {
		t.Fatalf("detach-all left %d bytes accounted", got)
	}
}
