// Canonical edge keys: the per-edge transfer-function signatures consumed by
// the refinement loop (paper §5.1). BGP policies are compiled to canonical
// BDD relations so that policy equivalence is a handle comparison; the
// scalar protocol parts (OSPF cost/area, statics, redistribution, ACL
// verdicts) are folded in alongside.

package build

import (
	"net/netip"

	"bonsai/internal/bdd"
	"bonsai/internal/core"
	"bonsai/internal/ec"
	"bonsai/internal/policy"
	"bonsai/internal/protocols"
	"bonsai/internal/topo"
)

// relEntry is one cached edge-policy compilation.
type relEntry struct {
	rel   bdd.Node
	drops bool
}

// relKey identifies an edge-policy compilation across both edges and
// destination classes: the composed relation is fully determined by the two
// route maps (identified by their namespace pointer plus name; a nil env
// marks the empty identity map), the session kind, and the prefix-list match
// outcomes against the class prefix. Symmetric edges carrying the same
// policy pair share one compilation, and across classes the same fingerprint
// shares it again — the amortisation the paper relies on when compressing
// ~1.3k classes of one network (§8).
type relKey struct {
	expEnv *policy.Env
	expMap string
	impEnv *policy.Env
	impMap string
	ibgp   bool
	fp     string
}

// synthKey identifies a composite policy signature: the BDD relation of the
// session plus the sender's redistribution behavior, which is part of the
// edge's transfer function (§6) but has no BDD encoding of its own.
type synthKey struct {
	rel          bdd.Node
	redistOSPF   bool
	redistStatic bool
}

// compilerCache holds the canonical tables attached to one policy.Compiler.
// A compiler is single-goroutine by contract, so the cache needs no lock of
// its own; only the Builder's compiler->cache map is mutex-guarded.
type compilerCache struct {
	rels  map[relKey]relEntry
	synth map[synthKey]bdd.Node
	// nextSynth allocates composite signature handles from the negative
	// range, which real BDD nodes (non-negative manager indices) never use,
	// so composites and plain relations can share EdgeKey.BGPRel.
	nextSynth bdd.Node
}

func newCompilerCache() *compilerCache {
	return &compilerCache{
		rels:  make(map[relKey]relEntry),
		synth: make(map[synthKey]bdd.Node),
	}
}

// withRedist maps a relation to the canonical composite signature for the
// sender's redistribution flags. Identity when nothing is redistributed.
func (cc *compilerCache) withRedist(rel bdd.Node, ospf, static bool) bdd.Node {
	if !ospf && !static {
		return rel
	}
	k := synthKey{rel, ospf, static}
	if n, ok := cc.synth[k]; ok {
		return n
	}
	cc.nextSynth--
	cc.synth[k] = cc.nextSynth
	return cc.nextSynth
}

// appendPrefixFingerprint renders the outcome of every prefix-list match a
// route map can perform against pfx. Together with the edge identity it
// uniquely determines the compiled relation, letting compilations be shared
// across destination classes; the class fingerprint of dedup.go reuses it to
// deduplicate whole abstractions.
func appendPrefixFingerprint(dst []byte, env *policy.Env, mapName string, pfx netip.Prefix) []byte {
	if mapName == "" {
		return append(dst, '-')
	}
	rm := env.RouteMaps[mapName]
	if rm == nil {
		return append(dst, '?')
	}
	for i := range rm.Clauses {
		for _, m := range rm.Clauses[i].Matches {
			if m.Kind != policy.MatchPrefix {
				continue
			}
			if l, ok := env.PrefixLists[m.Arg]; ok && l.Matches(pfx) {
				dst = append(dst, '1')
			} else {
				dst = append(dst, '0')
			}
		}
	}
	return dst
}

// edgeRelation compiles (or recalls) the canonical BGP relation of a
// session for the class prefix: v's export map composed with u's import map.
func (b *Builder) edgeRelation(comp *policy.Compiler, cc *compilerCache, sess bgpSession, pfx netip.Prefix) relEntry {
	fp := appendPrefixFingerprint(make([]byte, 0, 32), sess.expEnv, sess.expMap, pfx)
	fp = append(fp, '|')
	fp = appendPrefixFingerprint(fp, sess.impEnv, sess.impMap, pfx)
	k := relKey{
		expEnv: sess.expEnv, expMap: sess.expMap,
		impEnv: sess.impEnv, impMap: sess.impMap,
		ibgp: sess.ibgp, fp: string(fp),
	}
	if k.expMap == "" {
		k.expEnv = nil // the identity map is namespace-independent
	}
	if k.impMap == "" {
		k.impEnv = nil
	}
	if ent, ok := cc.rels[k]; ok {
		return ent
	}
	var rel bdd.Node
	if sess.ibgp {
		rel = comp.CompileEdge(sess.expEnv, sess.expMap, sess.impEnv, sess.impMap, pfx)
	} else {
		rel = comp.CompileEdgeEBGP(sess.expEnv, sess.expMap, sess.impEnv, sess.impMap, pfx)
	}
	ent := relEntry{rel: rel, drops: comp.AlwaysDrops(rel)}
	cc.rels[k] = ent
	return ent
}

// EdgeKeyFunc returns the canonical edge-signature function for one
// destination class, backed by comp's BDD manager and its cross-class
// relation cache. The returned function must only be used from the
// goroutine owning comp.
func (b *Builder) EdgeKeyFunc(comp *policy.Compiler, cls ec.Class) func(u, v topo.NodeID) core.EdgeKey {
	cc := b.cacheFor(comp)
	statics := b.staticEdges(cls)
	return func(u, v topo.NodeID) core.EdgeKey {
		e := topo.Edge{U: u, V: v}
		var k core.EdgeKey
		if sess, ok := b.bgpSess[e]; ok {
			ent := b.edgeRelation(comp, cc, sess, cls.Prefix)
			if !ent.drops {
				k.BGP = true
				k.IBGP = sess.ibgp
				k.BGPRel = cc.withRedist(ent.rel, sess.redistOSPF, sess.redistStatic)
			}
		}
		if adj, ok := b.ospfAdj[e]; ok {
			k.OSPF = true
			k.OSPFCost = adj.cost
			k.OSPFCross = adj.cross
		}
		k.Static = statics[e]
		k.ACLPermit = b.aclPermit(u, v, cls)
		return k
	}
}

// EdgeKeyVec computes the canonical signatures of every directed edge for
// one destination class, aligned with b.G.Edges(). It produces exactly the
// keys EdgeKeyFunc would return, but derives them batch-wise: each distinct
// session shape is resolved through comp's relation cache once, each
// interface ACL is evaluated once, and applicable statics are marked by
// edge index — per-class cost is O(E) vector writes plus O(shapes + ACLs +
// statics) policy work, with none of the per-edge map lookups or
// fingerprint rendering of the callback path. CompressFresh feeds the
// vector to core.Options.EdgeKeys; the callback form remains for sparse
// consumers (incremental adoption probes a handful of edges).
func (b *Builder) EdgeKeyVec(comp *policy.Compiler, cls ec.Class) []core.EdgeKey {
	cc := b.cacheFor(comp)
	edges := b.G.Edges()
	keys := make([]core.EdgeKey, len(edges))
	type shapeRel struct {
		rel  bdd.Node
		live bool
		ibgp bool
	}
	rels := make([]shapeRel, len(b.shapes))
	for si, sess := range b.shapes {
		ent := b.edgeRelation(comp, cc, sess, cls.Prefix)
		if !ent.drops {
			rels[si] = shapeRel{
				rel:  cc.withRedist(ent.rel, sess.redistOSPF, sess.redistStatic),
				live: true,
				ibgp: sess.ibgp,
			}
		}
	}
	aclV := make([]bool, len(b.sigACLs))
	for ai, a := range b.sigACLs {
		aclV[ai] = a.env.ACLPermits(a.name, cls.Prefix)
	}
	for i := range edges {
		k := &keys[i]
		if si := b.shapeOf[i]; si >= 0 && rels[si].live {
			k.BGP = true
			k.IBGP = rels[si].ibgp
			k.BGPRel = rels[si].rel
		}
		if c := b.ospfCost[i]; c >= 0 {
			k.OSPF = true
			k.OSPFCost = int(c)
			k.OSPFCross = b.ospfCross[i]
		}
		if a := b.iso.aclIdx[i]; a >= 0 {
			k.ACLPermit = aclV[a]
		} else {
			k.ACLPermit = true
		}
	}
	for e := range b.staticEdges(cls) {
		if j, ok := b.iso.edgeIdx[e]; ok {
			keys[j].Static = true
		}
	}
	return keys
}

// PrefsFunc returns prefs(u) for the class: the number of distinct BGP
// local-preference values node u can hold for this destination (Theorem
// 4.4's case-splitting bound). Because LOCAL_PREF is reset across eBGP
// sessions, the bound over eBGP is exactly the values settable by u's own
// import maps, plus the default whenever some session can deliver a route
// without overriding it. On iBGP sessions the sender's preference crosses:
// its export-map values count, and — since iBGP-learned routes are not
// re-advertised over iBGP (§6), so the sender's own preference is either
// import-assigned on an eBGP session or the default — a one-hop closure
// over the sender's eBGP import maps completes the bound without recursion.
func (b *Builder) PrefsFunc(cls ec.Class) func(u topo.NodeID) int {
	prefs := b.prefsVec(cls)
	return func(u topo.NodeID) int { return prefs[u] }
}

// prefsVec computes prefs(u) for every node (see PrefsFunc). Sessions are
// read through the flattened shape tables (edge-index vectors, no map
// lookups) and the value-set scratch map is reused across nodes, so the
// per-class cost is one pass over the live adjacency.
func (b *Builder) prefsVec(cls ec.Class) []int {
	prefs := make([]int, b.G.NumNodes())
	t := b.iso
	vals := make(map[uint32]bool)
	for u := range prefs {
		clear(vals)
		passthrough := false
		for _, ne := range t.nbrEdges[u] {
			si := b.shapeOf[ne.out]
			if si < 0 {
				continue
			}
			sess := b.shapes[si]
			sess.impEnv.LocalPrefValues(sess.impMap, cls.Prefix, vals)
			if !sess.impEnv.LocalPrefPassesThrough(sess.impMap, cls.Prefix) {
				continue
			}
			if !sess.ibgp {
				// eBGP: the import stage saw the default preference.
				passthrough = true
				continue
			}
			// iBGP: the export stage's value survives the session.
			sess.expEnv.LocalPrefValues(sess.expMap, cls.Prefix, vals)
			if !sess.expEnv.LocalPrefPassesThrough(sess.expMap, cls.Prefix) {
				continue
			}
			// The sender's RIB preference crosses untouched: union what its
			// own eBGP import maps can assign (iBGP-learned routes are not
			// re-advertised, and an originated route holds the default).
			senderDefault := false
			for _, ne2 := range t.nbrEdges[ne.v] {
				si2 := b.shapeOf[ne2.out]
				if si2 < 0 || b.shapes[si2].ibgp {
					continue
				}
				s2 := b.shapes[si2]
				s2.impEnv.LocalPrefValues(s2.impMap, cls.Prefix, vals)
				if s2.impEnv.LocalPrefPassesThrough(s2.impMap, cls.Prefix) {
					senderDefault = true
				}
			}
			if senderDefault || originates(cls, b.G.Name(ne.v)) {
				passthrough = true
			}
		}
		if passthrough {
			vals[protocols.DefaultLocalPref] = true
		}
		n := len(vals)
		if n < 1 {
			n = 1
		}
		prefs[u] = n
	}
	return prefs
}

// originates reports whether the named router is an origin of the class.
func originates(cls ec.Class, name string) bool {
	for _, o := range cls.Origins {
		if o == name {
			return true
		}
	}
	return false
}
