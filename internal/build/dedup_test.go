package build

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"testing"

	"bonsai/internal/config"
	"bonsai/internal/core"
	"bonsai/internal/netgen"
	"bonsai/internal/policy"
	"bonsai/internal/topo"
)

// bgpDiamond rebuilds the paper's Figure 2 gadget (examples/bgpdiamond):
// three identically configured routers preferring peer-learned routes, the
// central case for BGP-effective abstraction and ∀∀ refinement.
func bgpDiamond() *config.Network {
	n := config.New("figure2")
	for i, name := range []string{"a", "b1", "b2", "b3", "d"} {
		n.AddRouter(name).EnsureBGP(65001 + i)
	}
	peer := func(x, y string) {
		n.AddLink(x, y)
		n.Routers[x].BGP.Neighbors[y] = &config.Neighbor{}
		n.Routers[y].BGP.Neighbors[x] = &config.Neighbor{}
	}
	for _, b := range []string{"b1", "b2", "b3"} {
		peer("a", b)
		peer(b, "d")
	}
	peer("b1", "b2")
	peer("b2", "b3")
	peer("b1", "b3")
	n.Routers["d"].Originate = append(n.Routers["d"].Originate,
		netip.MustParsePrefix("10.0.0.0/24"))
	for _, bn := range []string{"b1", "b2", "b3"} {
		r := n.Routers[bn]
		r.Env.RouteMaps["PREF-PEER"] = &policy.RouteMap{Name: "PREF-PEER", Clauses: []policy.Clause{
			{Seq: 10, Action: policy.Permit, Sets: []policy.Set{{Kind: policy.SetLocalPref, Value: 200}}},
		}}
		for peerName, nb := range r.BGP.Neighbors {
			if peerName[0] == 'b' {
				nb.ImportMap = "PREF-PEER"
			}
		}
	}
	return n
}

// absEqual compares two abstractions field by field; dedup must return
// exactly what independent compression returns.
func absEqual(t *testing.T, tag string, got, want *core.Abstraction) {
	t.Helper()
	if got.Dest != want.Dest || got.AbsDest != want.AbsDest {
		t.Fatalf("%s: dest mismatch: got (%d,%d) want (%d,%d)", tag, got.Dest, got.AbsDest, want.Dest, want.AbsDest)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("%s: groups differ:\n got %v\nwant %v", tag, got.Groups, want.Groups)
	}
	if !reflect.DeepEqual(got.F, want.F) {
		t.Fatalf("%s: topology function differs", tag)
	}
	if !reflect.DeepEqual(got.Copies, want.Copies) {
		t.Fatalf("%s: copies differ:\n got %v\nwant %v", tag, got.Copies, want.Copies)
	}
	if !reflect.DeepEqual(got.RepEdge, want.RepEdge) {
		t.Fatalf("%s: representative edges differ:\n got %v\nwant %v", tag, got.RepEdge, want.RepEdge)
	}
	gn, wn := got.AbsG.NumNodes(), want.AbsG.NumNodes()
	if gn != wn {
		t.Fatalf("%s: abstract node count %d != %d", tag, gn, wn)
	}
	for u := 0; u < gn; u++ {
		if got.AbsG.Name(topo.NodeID(u)) != want.AbsG.Name(topo.NodeID(u)) {
			t.Fatalf("%s: abstract node %d named %q, want %q", tag, u,
				got.AbsG.Name(topo.NodeID(u)), want.AbsG.Name(topo.NodeID(u)))
		}
	}
	if !reflect.DeepEqual(got.AbsG.Edges(), want.AbsG.Edges()) {
		t.Fatalf("%s: abstract edges differ:\n got %v\nwant %v", tag, got.AbsG.Edges(), want.AbsG.Edges())
	}
}

// TestDedupMatchesIndependentCompression is the transport property test:
// across structurally different networks (fattree symmetry, ring rotations,
// the BGP diamond's ∀∀/case-splitting path, mesh stars), deduplicated
// Compress must return abstractions identical — same groups, copies,
// abstract edges, representatives — to independently compressing every
// class with CompressFresh.
func TestDedupMatchesIndependentCompression(t *testing.T) {
	nets := []struct {
		name string
		net  *config.Network
	}{
		{"fattree", netgen.Fattree(8, netgen.PolicyShortestPath)},
		{"fattree-prefer-bottom", netgen.Fattree(4, netgen.PolicyPreferBottom)},
		{"ring", netgen.Ring(24)},
		{"mesh", netgen.FullMesh(12)},
		{"bgp-diamond", bgpDiamond()},
		{"spineleaf", netgen.SpineLeaf(netgen.SpineLeafOptions{
			Spines: 3, Leaves: 4, ExtPerLeaf: 2, PrefixesPerExt: 2,
		})},
	}
	for _, tc := range nets {
		t.Run(tc.name, func(t *testing.T) {
			b, err := New(tc.net)
			if err != nil {
				t.Fatal(err)
			}
			comp := b.NewCompiler(true)
			for _, cls := range b.Classes() {
				got, err := b.Compress(context.Background(), comp, cls)
				if err != nil {
					t.Fatal(err)
				}
				want, err := b.CompressFresh(context.Background(), comp, cls)
				if err != nil {
					t.Fatal(err)
				}
				absEqual(t, fmt.Sprintf("%s %v", tc.name, cls.Prefix), got, want)
			}
			cstats := b.AbstractionCacheStats()
			fresh, transported := cstats.Fresh, cstats.Transported
			// Every class is computed (fresh or transported) or served from
			// the identity cache (spineleaf: prefixes of one external share
			// a fingerprint).
			if int64(fresh)+transported+cstats.Served != int64(len(b.Classes())) {
				t.Fatalf("cache accounting: fresh=%d transported=%d served=%d classes=%d",
					fresh, transported, cstats.Served, len(b.Classes()))
			}
			if cstats.DuplicateFresh != 0 {
				t.Fatalf("duplicate fresh compressions: %+v", cstats)
			}
			// The symmetric evaluation networks must actually deduplicate —
			// the optimisation the benchmarks rely on.
			if tc.name == "fattree" || tc.name == "ring" || tc.name == "mesh" || tc.name == "spineleaf" {
				if fresh != 1 {
					t.Errorf("%s: expected 1 fresh compression, got %d (transported %d)",
						tc.name, fresh, transported)
				}
			}
		})
	}
}

// TestDedupCacheRace hammers the shared dedup cache from many workers with
// interleaved invalidation, under -race in CI. Every result must still match
// an independent compression.
func TestDedupCacheRace(t *testing.T) {
	b, err := New(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	classes := b.Classes()
	comp := b.NewCompiler(true)
	want := make([]*core.Abstraction, len(classes))
	for i, cls := range classes {
		if want[i], err = b.CompressFresh(context.Background(), comp, cls); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp := b.NewCompiler(true)
			for round := 0; round < 3; round++ {
				for i := range classes {
					cls := classes[(i+w)%len(classes)]
					abs, err := b.Compress(context.Background(), comp, cls)
					if err != nil {
						errs <- err
						return
					}
					ref := want[(i+w)%len(classes)]
					if abs.NumAbstractNodes() != ref.NumAbstractNodes() ||
						abs.NumAbstractEdges() != ref.NumAbstractEdges() {
						errs <- fmt.Errorf("worker %d: size mismatch for %v", w, cls.Prefix)
						return
					}
				}
				if w == 0 {
					b.InvalidateAbstractionCache()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
