package usf

import (
	"math/rand"
	"testing"
)

func TestNewCoarsest(t *testing.T) {
	p := New(5)
	if p.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1", p.NumGroups())
	}
	for i := 0; i < 5; i++ {
		if p.Find(i) != p.Find(0) {
			t.Fatal("coarsest partition not one group")
		}
	}
	if len(p.Members(p.Find(0))) != 5 {
		t.Fatal("group missing members")
	}
}

func TestSplit(t *testing.T) {
	p := New(6)
	created := p.Split([]int{1, 3, 5})
	if len(created) != 1 {
		t.Fatalf("created %d groups, want 1", len(created))
	}
	if p.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", p.NumGroups())
	}
	if p.SameGroup(1, 0) || !p.SameGroup(1, 3) || !p.SameGroup(0, 2) {
		t.Fatal("split grouping wrong")
	}
	// Splitting out an entire group is a no-op.
	if got := p.Split([]int{1, 3, 5}); len(got) != 0 {
		t.Fatal("full-group split should be a no-op")
	}
	if p.NumGroups() != 2 {
		t.Fatal("no-op split changed group count")
	}
}

func TestSplitAcrossGroups(t *testing.T) {
	p := New(6)
	p.Split([]int{3, 4, 5})
	created := p.Split([]int{0, 3})
	if len(created) != 2 {
		t.Fatalf("created %d, want 2", len(created))
	}
	if !p.SameGroup(1, 2) || !p.SameGroup(4, 5) {
		t.Fatal("remainders merged wrongly")
	}
	if p.SameGroup(0, 3) {
		t.Fatal("split elements from different groups must stay apart")
	}
}

func TestRefine(t *testing.T) {
	p := New(8)
	split := p.Refine(p.Find(0), func(x int) int64 { return int64(x % 3) })
	if !split {
		t.Fatal("Refine reported no split")
	}
	if p.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", p.NumGroups())
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			if (x%3 == y%3) != p.SameGroup(x, y) {
				t.Fatalf("refine grouping wrong at %d,%d", x, y)
			}
		}
	}
	// Refining a uniform group changes nothing.
	if p.Refine(p.Find(0), func(int) int64 { return 7 }) {
		t.Fatal("uniform refine reported split")
	}
}

func TestSnapshotOrdering(t *testing.T) {
	p := New(7)
	p.Refine(p.Find(0), func(x int) int64 { return int64(x % 2) })
	groups, idx := p.Snapshot()
	if len(groups) != 2 {
		t.Fatalf("snapshot groups = %d", len(groups))
	}
	if groups[0][0] != 0 {
		t.Fatal("snapshot not ordered by smallest member")
	}
	for gi, g := range groups {
		for _, x := range g {
			if idx[x] != gi {
				t.Fatal("index map inconsistent")
			}
		}
	}
}

func TestRefineCollect(t *testing.T) {
	p := New(9)
	created, split := p.RefineCollect(p.Find(0), func(x int) int64 { return int64(x % 3) }, nil)
	if !split {
		t.Fatal("RefineCollect reported no split")
	}
	// Key class 0 keeps the group; classes 1 and 2 are created in key order.
	if len(created) != 2 {
		t.Fatalf("created = %v, want 2 groups", created)
	}
	for ci, id := range created {
		for _, x := range p.Members(id) {
			if x%3 != ci+1 {
				t.Fatalf("created group %d holds %d", ci, x)
			}
		}
	}
	// A uniform refine creates nothing and must not touch the scratch result.
	scratch := created[:0]
	scratch, split = p.RefineCollect(p.Find(0), func(int) int64 { return 1 }, scratch)
	if split || len(scratch) != 0 {
		t.Fatal("uniform RefineCollect must report no split and create nothing")
	}
}

// TestRepeatedSplitIsolation carves one large group down with many
// successive splits and verifies no sibling group's members are corrupted —
// the groups share one backing array, so any out-of-range write would show.
func TestRepeatedSplitIsolation(t *testing.T) {
	const n = 128
	p := New(n)
	for k := 0; k < 6; k++ {
		// Split every current group by a different modulus each round.
		for _, id := range append([]int(nil), p.Groups()...) {
			p.Refine(id, func(x int) int64 { return int64(x % (k + 2)) })
		}
		seen := make([]bool, n)
		for _, g := range p.Groups() {
			ms := p.Members(g)
			for i, x := range ms {
				if seen[x] {
					t.Fatalf("element %d appears in two groups after round %d", x, k)
				}
				seen[x] = true
				if i > 0 && ms[i-1] >= x {
					t.Fatalf("group %d not sorted after round %d: %v", g, k, ms)
				}
				if p.Find(x) != g {
					t.Fatalf("Find(%d) = %d, want %d", x, p.Find(x), g)
				}
			}
		}
		for x, ok := range seen {
			if !ok {
				t.Fatalf("element %d lost after round %d", x, k)
			}
		}
	}
}

func TestInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := New(40)
	for step := 0; step < 200; step++ {
		k := rng.Intn(4) + 1
		id := p.Groups()[rng.Intn(p.NumGroups())]
		p.Refine(id, func(x int) int64 { return int64(x % (k + 1)) })
		// Invariant: groups partition 0..39.
		seen := make(map[int]int)
		total := 0
		for _, g := range p.Groups() {
			for _, x := range p.Members(g) {
				seen[x]++
				total++
				if p.Find(x) != g {
					t.Fatal("Find disagrees with Members")
				}
			}
		}
		if total != 40 {
			t.Fatalf("partition lost elements: %d", total)
		}
		for x, c := range seen {
			if c != 1 {
				t.Fatalf("element %d in %d groups", x, c)
			}
		}
	}
}
