// Package usf implements the union-split-find partition structure used by
// Bonsai's abstraction-refinement loop (paper §5.2, Algorithm 1). It
// maintains a partition of {0..n-1} into disjoint groups (the abstract
// nodes), supports splitting a group by an arbitrary key function, and maps
// elements to group representatives in O(1).
//
// The structure is built for the refinement hot path: Refine performs a
// single-pass multi-way split — all key classes are carved out of the group
// in one rewrite of its member storage — and both Refine and Split reuse
// per-Partition scratch instead of per-call maps, so splitting allocates
// nothing beyond the group-table bookkeeping itself.
package usf

import "slices"

// kv is one (key, element) scratch pair used by Refine and Split.
type kv struct {
	k int64
	x int
}

// Partition maintains disjoint groups over the elements 0..n-1.
type Partition struct {
	group  []int   // element -> group id
	member [][]int // group id -> sorted members
	live   []int   // ids of live groups, in creation order

	kv []kv // scratch: (key, element) pairs, reused across calls
}

// New returns the coarsest partition: a single group holding 0..n-1.
func New(n int) *Partition {
	p := &Partition{group: make([]int, n)}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	p.member = append(p.member, all)
	p.live = append(p.live, 0)
	return p
}

// Len returns the number of elements.
func (p *Partition) Len() int { return len(p.group) }

// NumGroups returns the current number of groups.
func (p *Partition) NumGroups() int { return len(p.live) }

// Find returns the group id of element x.
func (p *Partition) Find(x int) int { return p.group[x] }

// Members returns the sorted members of group id. Callers must not modify
// the returned slice: sibling groups carved from one split share its backing
// array.
func (p *Partition) Members(id int) []int { return p.member[id] }

// Groups returns the ids of all live groups in creation order. The slice is
// append-only, so callers may capture it to snapshot the groups existing at
// one moment; they must not modify it.
func (p *Partition) Groups() []int { return p.live }

// SameGroup reports whether x and y are currently in the same group.
func (p *Partition) SameGroup(x, y int) bool { return p.group[x] == p.group[y] }

// Split separates the listed elements out of their groups. Elements must
// currently belong to live groups. For each affected group g, the elements
// of g listed in xs form one new group and the remainder of g stays in g
// (unless the remainder is empty, in which case g keeps exactly xs and no
// new group is created). New groups are created in ascending order of the
// group being divided. It returns the ids of the newly created groups.
func (p *Partition) Split(xs []int) []int {
	kvs := p.kv[:0]
	for _, x := range xs {
		kvs = append(kvs, kv{int64(p.group[x]), x})
	}
	p.kv = kvs
	slices.SortFunc(kvs, cmpKV)
	var created []int
	for s := 0; s < len(kvs); {
		e := s + 1
		for e < len(kvs) && kvs[e].k == kvs[s].k {
			e++
		}
		g := int(kvs[s].k)
		ms := p.member[g]
		// Deduplicate repeated listings of one element (sorted, so adjacent).
		np := 0
		for i := s; i < e; i++ {
			if i == s || kvs[i].x != kvs[i-1].x {
				kvs[s+np] = kvs[i]
				np++
			}
		}
		if np < len(ms) {
			// Single pass over the group: keep unlisted members in the front
			// of the existing backing, move the picked ones to the back. Both
			// sequences are ascending, so the rewrite preserves sortedness.
			w := 0
			j := s
			for _, x := range ms {
				if j < s+np && kvs[j].x == x {
					j++
					continue
				}
				ms[w] = x
				w++
			}
			for i := 0; i < np; i++ {
				ms[w+i] = kvs[s+i].x
			}
			newID := len(p.member)
			picked := ms[w : w+np : w+np]
			p.member[g] = ms[:w:w]
			p.member = append(p.member, picked)
			p.live = append(p.live, newID)
			for _, x := range picked {
				p.group[x] = newID
			}
			created = append(created, newID)
		}
		s = e
	}
	return created
}

// Refine splits group id by key: members with equal keys stay together.
// It returns true if the group actually split. Keys are opaque integers —
// typically interned signature IDs, so callers compare semantic signatures
// without materialising them as strings.
func (p *Partition) Refine(id int, key func(x int) int64) bool {
	_, split := p.refineInto(id, key, nil, false)
	return split
}

// RefineCollect is Refine, additionally appending the ids of the groups the
// split created to created (typically a reused scratch slice) and returning
// the extended slice. The worklist engine uses it to learn which members
// moved without re-deriving the partition delta.
func (p *Partition) RefineCollect(id int, key func(x int) int64, created []int) ([]int, bool) {
	return p.refineInto(id, key, created, true)
}

// refineInto performs the single-pass multi-way split: keys are computed
// once per member, members are ordered by (key, member) in scratch, and
// every key class is written back into the group's original backing array —
// the first class (smallest key) keeps the group id, later classes become
// new groups in ascending key order.
func (p *Partition) refineInto(id int, key func(x int) int64, created []int, collect bool) ([]int, bool) {
	members := p.member[id]
	if len(members) <= 1 {
		return created, false
	}
	kvs := p.kv[:0]
	uniform := true
	k0 := key(members[0])
	kvs = append(kvs, kv{k0, members[0]})
	for _, x := range members[1:] {
		k := key(x)
		if k != k0 {
			uniform = false
		}
		kvs = append(kvs, kv{k, x})
	}
	p.kv = kvs
	if uniform {
		return created, false
	}
	// Stable on members because they are already ascending and the
	// comparison breaks ties on x, so each class stays sorted.
	slices.SortFunc(kvs, cmpKV)
	for i := range kvs {
		members[i] = kvs[i].x
	}
	first := true
	for s := 0; s < len(kvs); {
		e := s + 1
		for e < len(kvs) && kvs[e].k == kvs[s].k {
			e++
		}
		run := members[s:e:e]
		if first {
			p.member[id] = run
			first = false
		} else {
			newID := len(p.member)
			p.member = append(p.member, run)
			p.live = append(p.live, newID)
			for _, x := range run {
				p.group[x] = newID
			}
			if collect {
				created = append(created, newID)
			}
		}
		s = e
	}
	return created, true
}

// cmpKV orders scratch pairs by key, then element.
func cmpKV(a, b kv) int {
	switch {
	case a.k < b.k:
		return -1
	case a.k > b.k:
		return 1
	case a.x < b.x:
		return -1
	case a.x > b.x:
		return 1
	}
	return 0
}

// Snapshot returns the current groups as a slice of sorted member slices,
// ordered by smallest member, along with a map element -> snapshot index.
// The member slices share one freshly allocated backing array.
func (p *Partition) Snapshot() ([][]int, []int) {
	groups := make([][]int, 0, len(p.live))
	buf := make([]int, len(p.group))
	w := 0
	for _, id := range p.live {
		n := copy(buf[w:], p.member[id])
		groups = append(groups, buf[w:w+n:w+n])
		w += n
	}
	slices.SortFunc(groups, func(a, b []int) int { return a[0] - b[0] })
	idx := make([]int, len(p.group))
	for i, g := range groups {
		for _, x := range g {
			idx[x] = i
		}
	}
	return groups, idx
}
