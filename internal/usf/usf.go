// Package usf implements the union-split-find partition structure used by
// Bonsai's abstraction-refinement loop (paper §5.2, Algorithm 1). It
// maintains a partition of {0..n-1} into disjoint groups (the abstract
// nodes), supports splitting a group by an arbitrary key function, and maps
// elements to group representatives in O(1).
package usf

import "sort"

// Partition maintains disjoint groups over the elements 0..n-1.
type Partition struct {
	group  []int   // element -> group id
	member [][]int // group id -> sorted members (nil after a group dies)
	live   []int   // ids of live groups, in creation order
}

// New returns the coarsest partition: a single group holding 0..n-1.
func New(n int) *Partition {
	p := &Partition{group: make([]int, n)}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	p.member = append(p.member, all)
	p.live = append(p.live, 0)
	return p
}

// Len returns the number of elements.
func (p *Partition) Len() int { return len(p.group) }

// NumGroups returns the current number of groups.
func (p *Partition) NumGroups() int { return len(p.live) }

// Find returns the group id of element x.
func (p *Partition) Find(x int) int { return p.group[x] }

// Members returns the sorted members of group id. Callers must not modify
// the returned slice.
func (p *Partition) Members(id int) []int { return p.member[id] }

// Groups returns the ids of all live groups in creation order. Callers must
// not modify the returned slice.
func (p *Partition) Groups() []int { return p.live }

// SameGroup reports whether x and y are currently in the same group.
func (p *Partition) SameGroup(x, y int) bool { return p.group[x] == p.group[y] }

// Split separates the listed elements out of their groups. Elements must
// currently belong to live groups. For each affected group g, the elements
// of g listed in xs form one new group and the remainder of g stays in g
// (unless the remainder is empty, in which case g keeps exactly xs and no
// new group is created). It returns the ids of the newly created groups.
func (p *Partition) Split(xs []int) []int {
	byGroup := make(map[int][]int)
	for _, x := range xs {
		byGroup[p.group[x]] = append(byGroup[p.group[x]], x)
	}
	var created []int
	for g, picked := range byGroup {
		if len(picked) == len(p.member[g]) {
			continue // splitting out everything is a no-op
		}
		pickedSet := make(map[int]bool, len(picked))
		for _, x := range picked {
			pickedSet[x] = true
		}
		var rest []int
		for _, x := range p.member[g] {
			if !pickedSet[x] {
				rest = append(rest, x)
			}
		}
		sort.Ints(picked)
		p.member[g] = rest
		newID := len(p.member)
		p.member = append(p.member, picked)
		p.live = append(p.live, newID)
		for _, x := range picked {
			p.group[x] = newID
		}
		created = append(created, newID)
	}
	return created
}

// Refine splits group id by key: members with equal keys stay together.
// It returns true if the group actually split. Keys are opaque integers —
// typically interned signature IDs, so callers compare semantic signatures
// without materialising them as strings.
func (p *Partition) Refine(id int, key func(x int) int64) bool {
	members := p.member[id]
	if len(members) <= 1 {
		return false
	}
	byKey := make(map[int64][]int)
	order := []int64{}
	for _, x := range members {
		k := key(x)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], x)
	}
	if len(byKey) == 1 {
		return false
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] }) // deterministic split order
	// Keep the first key class in place; split the rest out.
	for _, k := range order[1:] {
		p.Split(byKey[k])
	}
	return true
}

// Snapshot returns the current groups as a slice of sorted member slices,
// ordered by smallest member, along with a map element -> snapshot index.
func (p *Partition) Snapshot() ([][]int, []int) {
	groups := make([][]int, 0, len(p.live))
	for _, id := range p.live {
		ms := make([]int, len(p.member[id]))
		copy(ms, p.member[id])
		groups = append(groups, ms)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	idx := make([]int, len(p.group))
	for i, g := range groups {
		for _, x := range g {
			idx[x] = i
		}
	}
	return groups, idx
}
