// The tenant registry: named engines with lifecycle management. Each tenant
// wraps one bonsai.Engine plus its admission state — a concurrent-query
// semaphore and a bounded apply queue drained by a dedicated worker — and
// the registry owns open (attach to the shared pool), idle eviction (a
// janitor closes tenants unused past the TTL) and close-on-drain (shutdown
// stops admitting, waits for in-flight work, then closes every engine).
package server

import (
	"context"
	"errors"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bonsai"
	"bonsai/internal/journal"
)

// Errors the HTTP layer maps to status codes.
var (
	ErrTenantExists   = errors.New("server: tenant already exists")
	ErrTenantNotFound = errors.New("server: no such tenant")
	ErrDraining       = errors.New("server: draining")
	ErrTooManyTenants = errors.New("server: tenant limit reached")
	// ErrQueryBusy: the tenant's concurrent-query quota is exhausted (429).
	ErrQueryBusy = errors.New("server: tenant query quota exhausted")
	// ErrApplyQueueFull: the tenant's bounded apply queue is full (503).
	ErrApplyQueueFull = errors.New("server: apply queue full")
)

// tenant is one named engine with its admission state.
type tenant struct {
	name string
	eng  *bonsai.Engine

	// queries is the concurrent-query semaphore (admission control).
	queries chan struct{}
	// applyCh is the bounded apply queue; applyDone closes when the worker
	// exits. replayMu serialises replay streams with the queue worker so a
	// replay observes a quiet apply path. closeMu guards the closed-check +
	// send in enqueueApply against close(applyCh): writers hold it shared,
	// close holds it exclusive, so a send can never follow the close.
	applyCh   chan applyReq
	applyDone chan struct{}
	replayMu  sync.Mutex
	closeMu   sync.RWMutex

	// lastUsed is a unix-nano timestamp of the last admitted request, for
	// idle eviction.
	lastUsed atomic.Int64

	// closed marks the tenant evicted/deleted; requests admitted after this
	// observe it and 404 rather than racing the engine teardown.
	closed atomic.Bool

	// applyActive reports the worker is processing a dequeued delta — the
	// true queue occupancy is len(applyCh) plus this.
	applyActive atomic.Bool

	// Aggregates for /metrics: compression work (ns/class), coalescing.
	compressClasses atomic.Int64
	compressNs      atomic.Int64
	editsReceived   atomic.Int64
	editsApplied    atomic.Int64

	// Durability (nil jrnl = ephemeral tenant). appliedSeq is the newest
	// journal sequence known to be reflected in the live engine — a
	// conservative lower bound, safe because delta replay is
	// prefix-idempotent. recovery is set once at startup recovery and
	// read-only after. The ckpt* channels drive the background checkpointer.
	jrnl *journal.Journal
	// dir is the tenant's data directory (set with jrnl); the sealed
	// relation store lives beside the journal segments.
	dir        string
	appliedSeq atomic.Uint64
	recovery   *RecoveryInfo
	ckptEvery  int
	ckptKick   chan struct{}
	ckptStop   chan struct{}
	ckptDone   chan struct{}
}

type applyReq struct {
	ctx  context.Context
	d    bonsai.Delta
	resp chan applyResp
}

type applyResp struct {
	rep *bonsai.ApplyReport
	err error
}

func (t *tenant) touch() { t.lastUsed.Store(time.Now().UnixNano()) }

// acquireQuery admits one query or fails fast with ErrQueryBusy.
func (t *tenant) acquireQuery() error {
	select {
	case t.queries <- struct{}{}:
		if t.closed.Load() {
			<-t.queries
			return ErrTenantNotFound
		}
		t.touch()
		return nil
	default:
		return ErrQueryBusy
	}
}

func (t *tenant) releaseQuery() { <-t.queries }

// applyWorker drains the bounded apply queue, one delta at a time — the
// queue depth is the backpressure bound the HTTP layer admits against. For
// durable tenants the worker is also where the log-then-apply discipline
// lives: the delta is validated, journaled (fsynced under fsync=always),
// and only then applied, all under replayMu — so journal order equals apply
// order by construction and a crash between append and apply is repaired by
// replaying the journal tail on recovery.
func (t *tenant) applyWorker() {
	defer close(t.applyDone)
	for req := range t.applyCh {
		t.applyActive.Store(true)
		t.replayMu.Lock()
		// Pre-validate against the current config so known-bad deltas are
		// rejected without polluting the journal. Apply revalidates, but only
		// post-validation deltas reach the log.
		if t.jrnl != nil {
			if err := req.d.Validate(t.eng.Network()); err != nil {
				t.replayMu.Unlock()
				t.applyActive.Store(false)
				req.resp <- applyResp{nil, err}
				continue
			}
		}
		seq, jerr := t.journalDelta(req.d)
		if jerr != nil {
			t.replayMu.Unlock()
			t.applyActive.Store(false)
			req.resp <- applyResp{nil, jerr}
			continue
		}
		// Detached context: once admitted (and now journaled), a queued delta
		// always lands even if the enqueuing client times out — dropping it
		// silently would let the client's view of the network diverge from
		// the engine's (and from the journal's).
		rep, err := t.eng.Apply(context.WithoutCancel(req.ctx), req.d)
		if err == nil && seq > 0 {
			t.appliedSeq.Store(seq)
		}
		t.replayMu.Unlock()
		t.applyActive.Store(false)
		req.resp <- applyResp{rep, err}
		t.maybeKickCheckpoint()
	}
}

// enqueueApply admits a delta into the bounded queue (ErrApplyQueueFull on
// overload) and waits for its report.
func (t *tenant) enqueueApply(ctx context.Context, d bonsai.Delta) (*bonsai.ApplyReport, error) {
	req := applyReq{ctx: ctx, d: d, resp: make(chan applyResp, 1)}
	t.closeMu.RLock()
	if t.closed.Load() {
		t.closeMu.RUnlock()
		return nil, ErrTenantNotFound
	}
	select {
	case t.applyCh <- req:
		t.closeMu.RUnlock()
		t.touch()
	default:
		t.closeMu.RUnlock()
		return nil, ErrApplyQueueFull
	}
	select {
	case r := <-req.resp:
		return r.rep, r.err
	case <-ctx.Done():
		// The worker still runs the delta (it owns the request now, with a
		// detached context) and the buffered resp channel keeps it from
		// blocking; only the wait is abandoned.
		return nil, ctx.Err()
	}
}

// busy reports in-flight work: admitted queries, queued or executing
// deltas, or a replay holding replayMu. The janitor skips busy tenants so
// a stream longer than IdleTTL is never evicted mid-flight.
func (t *tenant) busy() bool {
	if len(t.queries) > 0 || t.applyActive.Load() || len(t.applyCh) > 0 {
		return true
	}
	if !t.replayMu.TryLock() {
		return true
	}
	t.replayMu.Unlock()
	return false
}

// registry is the named-tenant table.
type registry struct {
	cfg  Config
	pool *bonsai.SharedPool

	mu       sync.Mutex
	tenants  map[string]*tenant
	draining bool

	// inflight counts admitted requests across all tenants; drain waits on
	// it after refusing new admissions.
	inflight sync.WaitGroup
}

func newRegistry(cfg Config, pool *bonsai.SharedPool) *registry {
	return &registry{cfg: cfg, pool: pool, tenants: make(map[string]*tenant)}
}

// buildTenant constructs a tenant's engine and admission state without
// registering it — shared by open (fresh tenants) and startup recovery.
func (r *registry) buildTenant(name string, net *bonsai.Network) (*tenant, error) {
	opts := append([]bonsai.Option(nil), r.cfg.EngineOptions...)
	if r.pool != nil {
		opts = append(opts, bonsai.WithSharedPool(r.pool, r.cfg.TenantFloor, name))
	}
	eng, err := bonsai.Open(net, opts...)
	if err != nil {
		return nil, err
	}
	t := &tenant{
		name:      name,
		eng:       eng,
		queries:   make(chan struct{}, max(1, r.cfg.MaxQueriesPerTenant)),
		applyCh:   make(chan applyReq, max(1, r.cfg.ApplyQueueDepth)),
		applyDone: make(chan struct{}),
		ckptEvery: r.checkpointEvery(),
	}
	t.touch()
	return t, nil
}

// open creates a tenant over net, attaching its engine to the shared pool
// and (when a data dir is configured) starting its journal with a base
// checkpoint of the opening config.
func (r *registry) open(name string, net *bonsai.Network) (*tenant, error) {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	if _, ok := r.tenants[name]; ok {
		r.mu.Unlock()
		return nil, ErrTenantExists
	}
	if r.cfg.MaxTenants > 0 && len(r.tenants) >= r.cfg.MaxTenants {
		r.mu.Unlock()
		return nil, ErrTooManyTenants
	}
	// Reserve the name before the (slow) engine build so concurrent opens
	// of the same name fail fast instead of racing.
	r.tenants[name] = nil
	r.mu.Unlock()

	fail := func(err error) (*tenant, error) {
		r.mu.Lock()
		delete(r.tenants, name)
		r.mu.Unlock()
		return nil, err
	}
	t, err := r.buildTenant(name, net)
	if err != nil {
		return fail(err)
	}
	if r.persistent() {
		// Durability was asked for: an open that can't journal must fail
		// rather than silently serve an ephemeral tenant.
		if err := r.initPersistence(t); err != nil {
			t.eng.Close()
			return fail(err)
		}
		t.startCheckpointer()
	}
	go t.applyWorker()
	r.mu.Lock()
	r.tenants[name] = t
	r.mu.Unlock()
	return t, nil
}

// get looks a tenant up; opening-in-progress (nil) reads as not found.
func (r *registry) get(name string) (*tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok || t == nil {
		return nil, ErrTenantNotFound
	}
	return t, nil
}

// names lists tenants in sorted order.
func (r *registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.tenants))
	for n, t := range r.tenants {
		if t != nil {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// close removes and closes one tenant. deleteData distinguishes an explicit
// DELETE (the tenant and its history are gone for good) from eviction and
// drain (the engine is released but the sealed journal stays on disk, so the
// next daemon start resurrects the tenant). The engine close waits for
// nothing: bonsai.Engine.Close lets in-flight queries finish against their
// snapshot.
func (r *registry) close(name string, deleteData bool) error {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if !ok || t == nil {
		r.mu.Unlock()
		return ErrTenantNotFound
	}
	delete(r.tenants, name)
	r.mu.Unlock()
	// Exclusive closeMu excludes enqueueApply's closed-check + send, so no
	// send can race the close below and panic the daemon.
	t.closeMu.Lock()
	t.closed.Store(true)
	close(t.applyCh)
	t.closeMu.Unlock()
	<-t.applyDone
	if t.ckptStop != nil {
		close(t.ckptStop)
		<-t.ckptDone
	}
	if t.jrnl != nil {
		if deleteData {
			t.jrnl.Close()
			os.RemoveAll(r.tenantDir(name))
		} else {
			// Seal while the engine is still open: the final checkpoint
			// renders the live config.
			t.sealJournal()
		}
	}
	return t.eng.Close()
}

// idleNames lists tenants idle past ttl; the caller closes them (and drops
// their metric series). Tenants with in-flight work are never idle, however
// stale their lastUsed stamp — closing one would block the janitor behind
// its replayMu and tear the engine down under live requests.
func (r *registry) idleNames(ttl time.Duration) []string {
	if ttl <= 0 {
		return nil
	}
	cut := time.Now().Add(-ttl).UnixNano()
	var idle []string
	r.mu.Lock()
	for n, t := range r.tenants {
		if t != nil && t.lastUsed.Load() < cut && !t.busy() {
			idle = append(idle, n)
		}
	}
	r.mu.Unlock()
	return idle
}

// drain stops admitting (every subsequent admission fails with
// ErrDraining), waits for in-flight requests, then closes every tenant.
func (r *registry) drain() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
	r.inflight.Wait()
	for _, n := range r.names() {
		// Keep data: a drained daemon restarts into the same tenants.
		r.close(n, false)
	}
}

// admit registers one in-flight request; callers pair it with done().
// It fails during drain so the inflight count is strictly decreasing then.
func (r *registry) admit() (done func(), err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, ErrDraining
	}
	r.inflight.Add(1)
	return func() { r.inflight.Done() }, nil
}

// TenantInfo is the wire shape of one tenant listing.
type TenantInfo struct {
	Name    string             `json:"name"`
	Network bonsai.NetworkInfo `json:"network"`
	Cache   bonsai.CacheStats  `json:"cache"`
}

func (r *registry) info(t *tenant) TenantInfo {
	net := t.eng.Network()
	return TenantInfo{
		Name: t.name,
		Network: bonsai.NetworkInfo{
			Name:       net.Name,
			Routers:    len(net.Routers),
			Links:      len(net.Links),
			Interfaces: net.NumInterfaces(),
			Classes:    len(t.eng.Classes()),
		},
		Cache: t.eng.Stats(),
	}
}
