package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"bonsai"
	"bonsai/internal/netgen"
)

// benchServer stands up a daemon over httptest with one warm fattree
// tenant and returns a client for it. The compress warms the abstraction
// cache so served queries measure the steady state, not first-touch
// refinement.
func benchServer(b *testing.B, k int) *Client {
	b.Helper()
	s := New(Config{MaxQueriesPerTenant: 64, ApplyQueueDepth: 64})
	hs := httptest.NewServer(s)
	b.Cleanup(func() {
		s.Drain()
		hs.Close()
	})
	c := NewClient(hs.URL)
	ctx := context.Background()
	if err := c.OpenNetwork(ctx, "bench", netgen.Fattree(k, netgen.PolicyShortestPath)); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Compress(ctx, "bench", bonsai.ClassSelector{}); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkServedReach measures compressed reachability queries served
// through the full HTTP path (mux, admission, JSON) with RunParallel
// clients, the daemon-side counterpart of the in-process
// BenchmarkLocalReach below. b.N is the total query count; throughput is
// queries/sec = 1e9 / (ns/op).
func BenchmarkServedReach(b *testing.B) {
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("fattree-%d", k), func(b *testing.B) {
			c := benchServer(b, k)
			ctx := context.Background()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := c.Reach(ctx, "bench", "edge-0-0", "10.0.1.0/24", false)
					if err != nil || !res.Reachable {
						b.Errorf("reach: %+v, %v", res, err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkLocalReach is the same warm query against an in-process
// engine: the gap to BenchmarkServedReach is the HTTP/JSON serving tax.
func BenchmarkLocalReach(b *testing.B) {
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("fattree-%d", k), func(b *testing.B) {
			eng, err := bonsai.Open(netgen.Fattree(k, netgen.PolicyShortestPath))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { eng.Close() })
			ctx := context.Background()
			if _, err := eng.Compress(ctx, bonsai.ClassSelector{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := eng.Reach(ctx, "edge-0-0", "10.0.1.0/24")
					if err != nil || !res.Reachable {
						b.Errorf("reach: %+v, %v", res, err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkServedApply measures sequential link-flap applies through POST
// /apply — each op is one delta enqueued, applied by the tenant's worker,
// and its report returned. Alternating down/up keeps the topology
// returning to its start state so the run doesn't drift.
func BenchmarkServedApply(b *testing.B) {
	c := benchServer(b, 4)
	ctx := context.Background()
	var n atomic.Int64
	flap := [2]bonsai.Delta{
		{LinkDown: []bonsai.LinkRef{{A: "core-0", B: "agg-0-0"}}},
		{LinkUp: []bonsai.LinkRef{{A: "core-0", B: "agg-0-0"}}},
	}
	b.ResetTimer()
	for b.Loop() {
		d := flap[n.Add(1)%2]
		if _, err := c.Apply(ctx, "bench", d); err != nil {
			b.Fatal(err)
		}
	}
}
