package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/netgen"
)

// newTestServer stands up a Server over httptest and returns a client for
// it. Drain runs in cleanup so engines never leak across tests.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Drain()
		hs.Close()
	})
	return s, NewClient(hs.URL)
}

func openFattree(t *testing.T, c *Client, name string, k int) {
	t.Helper()
	if err := c.OpenNetwork(context.Background(), name, netgen.Fattree(k, netgen.PolicyShortestPath)); err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
}

// TestServerLifecycle walks the whole API against one fattree tenant.
func TestServerLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{MaxQueriesPerTenant: 4, ApplyQueueDepth: 4})
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	v, err := c.Version(ctx)
	if err != nil || v.GoVersion == "" {
		t.Fatalf("version: %+v, %v", v, err)
	}

	openFattree(t, c, "ft4", 4)
	if err := c.OpenNetwork(ctx, "ft4", netgen.Fattree(4, netgen.PolicyShortestPath)); StatusCode(err) != http.StatusConflict {
		t.Fatalf("re-open: want 409, got %v", err)
	}

	tenants, err := c.Tenants(ctx)
	if err != nil || len(tenants) != 1 || tenants[0].Name != "ft4" {
		t.Fatalf("tenants: %+v, %v", tenants, err)
	}
	if tenants[0].Network.Routers == 0 || tenants[0].Network.Classes == 0 {
		t.Fatalf("tenant info incomplete: %+v", tenants[0])
	}

	crep, err := c.Compress(ctx, "ft4", bonsai.ClassSelector{})
	if err != nil || crep.ClassesCompressed == 0 {
		t.Fatalf("compress: %+v, %v", crep, err)
	}

	var rows int
	srep, err := c.CompressStream(ctx, "ft4", bonsai.ClassSelector{}, func(bonsai.ClassResult) { rows++ })
	if err != nil || rows == 0 || srep.ClassesCompressed != rows {
		t.Fatalf("compress stream: rows=%d rep=%+v err=%v", rows, srep, err)
	}

	// Pick a concrete edge router and a destination from the routes of the
	// first class.
	routes, err := c.Routes(ctx, "ft4", tenantFirstPrefix(t, c))
	if err != nil || len(routes.Routes) == 0 {
		t.Fatalf("routes: %+v, %v", routes, err)
	}
	src := routes.Routes[0].Router
	res, err := c.Reach(ctx, "ft4", src, routes.Dest, false)
	if err != nil {
		t.Fatalf("reach: %v", err)
	}
	if !res.Compressed {
		t.Fatalf("reach did not use compression: %+v", res)
	}
	cres, err := c.Reach(ctx, "ft4", src, routes.Dest, true)
	if err != nil || cres.Compressed {
		t.Fatalf("concrete reach: %+v, %v", cres, err)
	}
	if res.Reachable != cres.Reachable {
		t.Fatalf("compressed and concrete disagree: %v vs %v", res.Reachable, cres.Reachable)
	}

	roles, err := c.Roles(ctx, "ft4", bonsai.RolesRequest{})
	if err != nil || roles.Roles == 0 || roles.Roles > roles.Routers {
		t.Fatalf("roles: %+v, %v", roles, err)
	}

	vrep, err := c.Verify(ctx, "ft4", bonsai.VerifyRequest{MaxClasses: 2})
	if err != nil || vrep.Pairs == 0 {
		t.Fatalf("verify: %+v, %v", vrep, err)
	}

	// Apply a link flap and confirm adoption shows up in /metrics.
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	l := net.Links[0]
	arep, err := c.Apply(ctx, "ft4", bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: l.A, B: l.B}}})
	if err != nil || arep.Classes == 0 {
		t.Fatalf("apply: %+v, %v", arep, err)
	}
	if arep.Adopted+arep.Invalidated == 0 {
		t.Fatalf("apply touched nothing: %+v", arep)
	}

	st, err := c.Stats(ctx, "ft4")
	if err != nil || st.Cache.LiveBytes == 0 || st.Cache.Adopted+st.Cache.Fresh == 0 {
		t.Fatalf("stats: %+v, %v", st, err)
	}

	exp, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`bonsai_adopted_total{tenant="ft4"}`,
		`bonsai_cache_live_bytes{tenant="ft4"}`,
		`bonsaid_request_seconds_count{tenant="ft4",op="compress"}`,
		"bonsai_sched_items_total",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	if err := c.Close(ctx, "ft4"); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := c.Stats(ctx, "ft4"); StatusCode(err) != http.StatusNotFound {
		t.Fatalf("stats after close: want 404, got %v", err)
	}
}

func tenantFirstPrefix(t *testing.T, c *Client) string {
	t.Helper()
	// The compress stream yields class prefixes; grab one.
	var prefix string
	_, err := c.CompressStream(context.Background(), "ft4", bonsai.ClassSelector{MaxClasses: 1},
		func(r bonsai.ClassResult) { prefix = r.Prefix })
	if err != nil || prefix == "" {
		t.Fatalf("no class prefix: %v", err)
	}
	return prefix
}

// TestServerReplay streams a flap storm through /replay and checks the
// coalescing report comes back over the wire.
func TestServerReplay(t *testing.T) {
	_, c := newTestServer(t, Config{})
	openFattree(t, c, "net", 4)
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	l := net.Links[0]

	var b strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, `{"link_down":[{"a":%q,"b":%q}]}`+"\n", l.A, l.B)
		fmt.Fprintf(&b, `{"link_up":[{"a":%q,"b":%q}]}`+"\n", l.A, l.B)
	}
	rep, err := c.Replay(context.Background(), "net", strings.NewReader(b.String()), 32, 0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Deltas != 12 {
		t.Fatalf("deltas = %d, want 12", rep.Deltas)
	}
	if rep.Coalesced == 0 {
		t.Fatalf("flap storm did not coalesce: %+v", rep)
	}
}

// TestServerConcurrentTenants races opens, queries, applies and closes
// across tenants sharing one pool — the meaningful assertions are the race
// detector's plus end-state accounting.
func TestServerConcurrentTenants(t *testing.T) {
	probe := Config{}
	_ = probe
	s, c := newTestServer(t, Config{
		GlobalBudget:        64 << 20,
		TenantFloor:         1 << 20,
		MaxQueriesPerTenant: 4,
		ApplyQueueDepth:     4,
	})
	ctx := context.Background()

	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			openFattree(t, c, name, 4)
			if _, err := c.Compress(ctx, name, bonsai.ClassSelector{}); err != nil {
				t.Errorf("%s compress: %v", name, err)
			}
			net := netgen.Fattree(4, netgen.PolicyShortestPath)
			l := net.Links[i]
			if _, err := c.Apply(ctx, name, bonsai.Delta{
				LinkDown: []bonsai.LinkRef{{A: l.A, B: l.B}},
			}); err != nil {
				t.Errorf("%s apply: %v", name, err)
			}
			if _, err := c.Compress(ctx, name, bonsai.ClassSelector{MaxClasses: 4}); err != nil {
				t.Errorf("%s recompress: %v", name, err)
			}
		}(i)
	}
	wg.Wait()

	ps := s.pool.Stats()
	var sum int64
	for _, m := range ps.Members {
		sum += m.LiveBytes
	}
	if sum != ps.LiveBytes {
		t.Fatalf("pool accounting drift: members %d, total %d", sum, ps.LiveBytes)
	}
	for i := 0; i < n; i++ {
		if err := c.Close(ctx, fmt.Sprintf("t%d", i)); err != nil {
			t.Errorf("close t%d: %v", i, err)
		}
	}
	if got := s.pool.Stats().LiveBytes; got != 0 {
		t.Fatalf("pool holds %d bytes after all tenants closed", got)
	}
}

// TestServerCrossTenantFloor opens a small tenant whose floor covers its
// whole footprint, then a big tenant under a tight global ceiling: the
// pressure must land on the big tenant only.
func TestServerCrossTenantFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("fattree-6 build in -short")
	}
	// Probe one fattree-4's footprint with a throwaway engine.
	eng, err := bonsai.Open(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compress(context.Background(), bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	one := eng.Stats().LiveBytes
	eng.Close()
	if one <= 0 {
		t.Fatal("no probe bytes")
	}

	s, c := newTestServer(t, Config{GlobalBudget: one + one/2, TenantFloor: one})
	ctx := context.Background()
	openFattree(t, c, "small", 4)
	if _, err := c.Compress(ctx, "small", bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}
	openFattree(t, c, "big", 6)
	if _, err := c.Compress(ctx, "big", bonsai.ClassSelector{}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx, "small")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Evictions != 0 {
		t.Fatalf("small tenant evicted %d entries despite floor", st.Cache.Evictions)
	}
	ps := s.pool.Stats()
	if ps.CrossEvictions == 0 {
		t.Fatalf("no cross-tenant evictions under pressure: %+v", ps)
	}
}

// TestServerOverload exercises both admission paths: 429 when the query
// quota is exhausted, 503 + Retry-After when the apply queue is full.
func TestServerOverload(t *testing.T) {
	s, c := newTestServer(t, Config{MaxQueriesPerTenant: 1, ApplyQueueDepth: 1})
	ctx := context.Background()
	openFattree(t, c, "net", 4)
	tn, err := s.reg.get("net")
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single query slot, then hit a query endpoint.
	if err := tn.acquireQuery(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Roles(ctx, "net", bonsai.RolesRequest{})
	if StatusCode(err) != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %v", err)
	}
	tn.releaseQuery()

	// Block the apply worker by holding replayMu, then fill the depth-1
	// queue step by step so the occupancy is deterministic: first delta
	// dequeued and parked on the lock, second sitting in the channel, third
	// must bounce with 503.
	tn.replayMu.Lock()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	flap := []bonsai.Delta{
		{LinkDown: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}}},
		{LinkUp: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}}},
		{LinkDown: []bonsai.LinkRef{{A: net.Links[1].A, B: net.Links[1].B}}},
	}
	results := make(chan error, 2)
	sent := 0
	sendApply := func() {
		d := flap[sent]
		sent++
		go func() {
			_, err := c.Apply(ctx, "net", d)
			results <- err
		}()
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	sendApply()
	waitFor("worker to park on the first delta", func() bool {
		return tn.applyActive.Load() && len(tn.applyCh) == 0
	})
	sendApply()
	waitFor("second delta to fill the queue", func() bool { return len(tn.applyCh) == 1 })

	_, rejected := c.Apply(ctx, "net", flap[2])
	if StatusCode(rejected) != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %v", rejected)
	}
	tn.replayMu.Unlock()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued apply failed: %v", err)
		}
	}

	exp, _ := c.Metrics(ctx)
	if !strings.Contains(exp, `bonsaid_rejected_total{tenant="net",reason="query_quota"}`) {
		t.Error("missing query_quota rejection metric")
	}
	if !strings.Contains(exp, `bonsaid_rejected_total{tenant="net",reason="apply_queue"}`) {
		t.Error("missing apply_queue rejection metric")
	}
}

// TestServerDrain starts a replay held open by a slow body, drains, and
// asserts: the in-flight replay completes, new requests get 503, every
// engine is closed.
func TestServerDrain(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	openFattree(t, c, "net", 4)
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	l := net.Links[0]

	pr, pw := io.Pipe()
	started := make(chan struct{})
	replayDone := make(chan error, 1)
	go func() {
		close(started)
		_, err := c.Replay(ctx, "net", pr, 0, 0)
		replayDone <- err
	}()
	<-started
	// Feed one delta, then wait until the engine's stream has read it — the
	// transport buffers the pipe write before the handler is even admitted,
	// so the write alone does not prove the replay is in flight.
	if _, err := fmt.Fprintf(pw, `{"link_down":[{"a":%q,"b":%q}]}`+"\n", l.A, l.B); err != nil {
		t.Fatal(err)
	}
	tn, err := s.reg.get("net")
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); tn.eng.ApplyStats().Received < 1; {
		if time.Now().After(deadline) {
			t.Fatal("replay never started ingesting")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()

	// Drain must be blocked on the in-flight replay; new requests 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Tenants(ctx)
		if StatusCode(err) == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started refusing requests")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-drained:
		t.Fatal("drain finished with a replay in flight")
	default:
	}

	pw.Close() // end the delta stream; replay can finish
	if err := <-replayDone; err != nil {
		t.Fatalf("in-flight replay failed across drain: %v", err)
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete after in-flight work finished")
	}
	if got := len(s.reg.names()); got != 0 {
		t.Fatalf("%d tenants survive drain", got)
	}
}

// TestServerIdleEviction verifies the janitor closes tenants past the TTL.
func TestServerIdleEviction(t *testing.T) {
	s, c := newTestServer(t, Config{IdleTTL: 50 * time.Millisecond})
	openFattree(t, c, "net", 4)
	// The janitor ticks at >= 1s; call the sweep directly for a fast test.
	time.Sleep(60 * time.Millisecond)
	for _, name := range s.reg.idleNames(s.cfg.IdleTTL) {
		if err := s.reg.close(name, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Stats(context.Background(), "net"); StatusCode(err) != http.StatusNotFound {
		t.Fatalf("idle tenant still present: %v", err)
	}
}

// TestRegistryApplyCloseRace hammers enqueueApply against a concurrent
// close. A send must never land on the closed apply channel (it would
// panic the whole daemon), and every enqueue must resolve to a report or
// a clean tenant/queue error; run with -race.
func TestRegistryApplyCloseRace(t *testing.T) {
	noop := bonsai.Delta{LinkUp: []bonsai.LinkRef{{A: "r-0000", B: "r-0001"}}}
	for round := 0; round < 5; round++ {
		reg := newRegistry(Config{MaxQueriesPerTenant: 4, ApplyQueueDepth: 4}, nil)
		tn, err := reg.open("race", netgen.FullMesh(4))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 25; j++ {
					_, err := tn.enqueueApply(context.Background(), noop)
					if errors.Is(err, ErrTenantNotFound) {
						return // closed under us: the expected clean outcome
					}
					if err != nil && !errors.Is(err, ErrApplyQueueFull) {
						t.Errorf("enqueue: %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := reg.close("race", false); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}
