// Client is the Go client of the bonsaid API — the other half of the wire
// contract, used by `bonsai -server` thin-client mode and the server tests.
// Every method mirrors one endpoint and decodes into the same public
// structs the library returns, so a caller can swap an in-process Engine
// for a remote tenant without changing result handling.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bonsai"
)

// Client talks to one bonsaid instance.
type Client struct {
	base       string
	hc         *http.Client
	timeout    time.Duration
	maxRetries int
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout bounds each unary call (everything except Replay and
// CompressStream, which legitimately run as long as their streams). Zero
// means no per-call bound beyond the caller's context.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetries caps the 429 retries per idempotent call (default 3; 0
// disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.maxRetries = n }
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7171"). The transport bounds connection setup and
// time-to-first-header so a wedged daemon fails fast, but imposes no overall
// deadline: replay and compress streams legitimately run long. Idempotent
// requests (reads, plus the read-only verify/compress POSTs) that hit 429
// admission control are retried with capped exponential backoff and jitter,
// honoring a Retry-After header when the daemon sends one. Apply and Replay
// are never retried: the caller owns the ack bookkeeping for mutations.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 2 * time.Minute,
			MaxIdleConnsPerHost:   4,
		}},
		maxRetries: 3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError is a non-2xx response, preserving the status code so callers can
// distinguish overload (429/503) from failure.
type apiError struct {
	Status  int
	Message string
	// RetryAfter is the parsed Retry-After header on 429/503, if any.
	RetryAfter time.Duration
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// StatusCode returns err's HTTP status if it came from the daemon, else 0.
func StatusCode(err error) int {
	var ae *apiError
	if ok := asAPIError(err, &ae); ok {
		return ae.Status
	}
	return 0
}

func asAPIError(err error, out **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*out = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// once issues a single request and decodes the JSON response into out
// (skipped when out is nil). Non-2xx responses become *apiError.
func (c *Client) once(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseRetryAfter handles both delta-seconds and HTTP-date forms.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// unaryCtx applies the configured per-call timeout.
func (c *Client) unaryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return ctx, func() {}
}

// do is the non-idempotent unary path: one attempt, bounded by WithTimeout.
// Mutations (Open, Apply, Close) land here — a retry after an ambiguous
// failure could double-submit, and for Apply the ack sequence is the
// caller's durability contract.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	ctx, cancel := c.unaryCtx(ctx)
	defer cancel()
	return c.once(ctx, method, path, body, out)
}

// retryBackoffCap bounds the exponential backoff between 429 retries.
const retryBackoffCap = 2 * time.Second

// doIdem is the idempotent unary path: on 429 it backs off (Retry-After when
// the daemon provides it, else capped exponential with full jitter) and
// retries up to the configured cap, all inside the WithTimeout window.
func (c *Client) doIdem(ctx context.Context, method, path string, body io.Reader, out any) error {
	ctx, cancel := c.unaryCtx(ctx)
	defer cancel()
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		var ae *apiError
		if err == nil || !asAPIError(err, &ae) ||
			ae.Status != http.StatusTooManyRequests || attempt >= c.maxRetries {
			return err
		}
		if body != nil {
			s, ok := body.(io.Seeker)
			if !ok {
				return err // body consumed and not replayable
			}
			if _, serr := s.Seek(0, io.SeekStart); serr != nil {
				return err
			}
		}
		wait := ae.RetryAfter
		if wait <= 0 {
			// Full jitter: a uniform draw from (0, backoff] decorrelates
			// clients that were rejected by the same admission burst.
			wait = time.Duration(rand.Int63n(int64(backoff))) + 1
		}
		backoff *= 2
		if backoff > retryBackoffCap {
			backoff = retryBackoffCap
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}

func jsonBody(v any) io.Reader {
	b, _ := json.Marshal(v)
	return bytes.NewReader(b)
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.doIdem(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Version fetches the daemon's build metadata.
func (c *Client) Version(ctx context.Context) (bonsai.VersionInfo, error) {
	var v bonsai.VersionInfo
	err := c.doIdem(ctx, http.MethodGet, "/version", nil, &v)
	return v, err
}

// Open creates tenant name over the network's text serialization.
func (c *Client) Open(ctx context.Context, name string, network io.Reader) error {
	return c.do(ctx, http.MethodPut, "/v1/tenants/"+url.PathEscape(name), network, nil)
}

// OpenNetwork serializes net and opens it as tenant name.
func (c *Client) OpenNetwork(ctx context.Context, name string, net *bonsai.Network) error {
	var b bytes.Buffer
	if err := bonsai.Print(&b, net); err != nil {
		return err
	}
	return c.Open(ctx, name, &b)
}

// Close deletes tenant name.
func (c *Client) Close(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/tenants/"+url.PathEscape(name), nil, nil)
}

// Tenants lists open tenants.
func (c *Client) Tenants(ctx context.Context) ([]TenantInfo, error) {
	var out []TenantInfo
	err := c.doIdem(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out, err
}

// Apply sends one delta and returns its report.
func (c *Client) Apply(ctx context.Context, name string, d bonsai.Delta) (*bonsai.ApplyReport, error) {
	var rep bonsai.ApplyReport
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(name)+"/apply", jsonBody(d), &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Replay streams JSONL-encoded deltas from r through the tenant's
// ApplyStream. pending/staleness mirror bonsai.WithMaxPending /
// WithMaxStaleness (zero values are omitted).
func (c *Client) Replay(ctx context.Context, name string, r io.Reader, pending int, staleness time.Duration) (*bonsai.ApplyStreamReport, error) {
	q := url.Values{}
	if pending > 0 {
		q.Set("pending", fmt.Sprint(pending))
	}
	if staleness > 0 {
		q.Set("staleness", staleness.String())
	}
	path := "/v1/tenants/" + url.PathEscape(name) + "/replay"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var rep bonsai.ApplyStreamReport
	if err := c.once(ctx, http.MethodPost, path, r, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Verify runs a verification and returns its report.
func (c *Client) Verify(ctx context.Context, name string, req bonsai.VerifyRequest) (*bonsai.Report, error) {
	var rep bonsai.Report
	err := c.doIdem(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(name)+"/verify", jsonBody(req), &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Compress compresses the selected classes and returns the batch report.
func (c *Client) Compress(ctx context.Context, name string, sel bonsai.ClassSelector) (*bonsai.CompressReport, error) {
	var rep bonsai.CompressReport
	err := c.doIdem(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(name)+"/compress", jsonBody(sel), &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// CompressStream streams per-class rows (row is called for each as it
// arrives) and returns the final report.
func (c *Client) CompressStream(ctx context.Context, name string, sel bonsai.ClassSelector, row func(bonsai.ClassResult)) (*bonsai.CompressReport, error) {
	path := "/v1/tenants/" + url.PathEscape(name) + "/compress?stream=1"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, jsonBody(sel))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, &apiError{Status: resp.StatusCode, Message: resp.Status}
	}
	dec := json.NewDecoder(resp.Body)
	var rep *bonsai.CompressReport
	for {
		var msg struct {
			Row    *bonsai.ClassResult    `json:"row"`
			Report *bonsai.CompressReport `json:"report"`
			Error  string                 `json:"error"`
		}
		if err := dec.Decode(&msg); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if msg.Row != nil && row != nil {
			row(*msg.Row)
		}
		if msg.Report != nil {
			rep = msg.Report
		}
		if msg.Error != "" {
			// The trailer flags a stream truncated by an engine error.
			return rep, fmt.Errorf("server: compress stream failed: %s", msg.Error)
		}
	}
	if rep == nil {
		return nil, fmt.Errorf("server: compress stream ended without a report")
	}
	return rep, nil
}

// Reach answers one reachability query; concrete skips compression.
func (c *Client) Reach(ctx context.Context, name, src, dest string, concrete bool) (*bonsai.ReachResult, error) {
	q := url.Values{"src": {src}, "dest": {dest}}
	if concrete {
		q.Set("concrete", "1")
	}
	var res bonsai.ReachResult
	err := c.doIdem(ctx, http.MethodGet,
		"/v1/tenants/"+url.PathEscape(name)+"/reach?"+q.Encode(), nil, &res)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// Routes fetches the converged routes for one destination class.
func (c *Client) Routes(ctx context.Context, name, dest string) (*bonsai.RoutesReport, error) {
	q := url.Values{"dest": {dest}}
	var rep bonsai.RoutesReport
	err := c.doIdem(ctx, http.MethodGet,
		"/v1/tenants/"+url.PathEscape(name)+"/routes?"+q.Encode(), nil, &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Roles counts behavioral router roles.
func (c *Client) Roles(ctx context.Context, name string, req bonsai.RolesRequest) (*bonsai.RolesReport, error) {
	q := url.Values{}
	if req.NoErase {
		q.Set("no_erase", "1")
	}
	if req.NoStatics {
		q.Set("no_statics", "1")
	}
	path := "/v1/tenants/" + url.PathEscape(name) + "/roles"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var rep bonsai.RolesReport
	if err := c.doIdem(ctx, http.MethodGet, path, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Stats fetches one tenant's cache and apply-stream snapshot.
func (c *Client) Stats(ctx context.Context, name string) (*TenantStats, error) {
	var st TenantStats
	err := c.doIdem(ctx, http.MethodGet, "/v1/tenants/"+url.PathEscape(name)+"/stats", nil, &st)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
