package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bonsai"
)

// Retried idempotent calls: a 429 burst clears and the call succeeds without
// the caller seeing the rejections.
func TestClientRetries429(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"tenant busy"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(TenantStats{Name: "x"})
	}))
	defer hs.Close()
	c := NewClient(hs.URL)
	st, err := c.Stats(context.Background(), "x")
	if err != nil {
		t.Fatalf("stats after 429 burst: %v", err)
	}
	if st.Name != "x" || hits.Load() != 3 {
		t.Fatalf("got %+v after %d attempts, want success on attempt 3", st, hits.Load())
	}
}

// A persistent 429 still surfaces once the retry budget is spent.
func TestClientRetryBudget(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := NewClient(hs.URL, WithRetries(2))
	_, err := c.Stats(context.Background(), "x")
	if StatusCode(err) != http.StatusTooManyRequests {
		t.Fatalf("err %v, want 429", err)
	}
	if hits.Load() != 3 { // initial attempt + 2 retries
		t.Fatalf("%d attempts, want 3", hits.Load())
	}
}

// Apply is a mutation: one attempt, the 429 goes straight to the caller who
// owns the ack bookkeeping.
func TestClientApplyNeverRetried(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := NewClient(hs.URL)
	d := bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: "a", B: "b"}}}
	if _, err := c.Apply(context.Background(), "x", d); StatusCode(err) != http.StatusTooManyRequests {
		t.Fatalf("err %v, want 429", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("%d attempts for Apply, want exactly 1", hits.Load())
	}
}

// Retry-After is honored: the client waits at least the advertised delay.
func TestClientHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(TenantStats{Name: "x"})
	}))
	defer hs.Close()
	c := NewClient(hs.URL)
	start := time.Now()
	if _, err := c.Stats(context.Background(), "x"); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if d := time.Since(start); d < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s from Retry-After", d)
	}
}

// WithTimeout bounds a unary call against a wedged daemon.
func TestClientWithTimeout(t *testing.T) {
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-release
	}))
	defer hs.Close()
	defer close(release)
	c := NewClient(hs.URL, WithTimeout(100*time.Millisecond))
	start := time.Now()
	_, err := c.Stats(context.Background(), "x")
	if err == nil {
		t.Fatal("stats succeeded against a wedged server")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("seconds form: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 8*time.Second || d > 10*time.Second {
		t.Fatalf("http-date form: %v", d)
	}
}
