// Metric wiring: the daemon's Prometheus-style catalog, fed from three
// layers — HTTP admission (latency histograms, rejections, queue depths),
// the engines' cache statistics (hit/eviction rates, adoption ratios,
// ns/class, coalesce ratios, sampled at scrape time so counters are always
// consistent with Engine.Stats), and the shared memory pool (live/peak
// bytes, cross-tenant evictions). Everything is stdlib-only text exposition
// via internal/metrics.
package server

import (
	"net/http"

	"bonsai"
	"bonsai/internal/metrics"
	"bonsai/internal/sched"
)

// metricSet bundles the daemon's instruments.
type metricSet struct {
	reg *metrics.Registry

	// HTTP layer.
	reqSeconds *metrics.HistogramVec // {tenant, op}
	rejected   *metrics.CounterVec   // {tenant, reason}
	inflight   *metrics.GaugeVec     // {tenant}
	queueDepth *metrics.GaugeVec     // {tenant}

	// Engine layer, refreshed at scrape time.
	cacheServed    *metrics.GaugeVec // {tenant}
	cacheMisses    *metrics.GaugeVec
	cacheHitRate   *metrics.GaugeVec
	cacheEvictions *metrics.GaugeVec
	cacheLive      *metrics.GaugeVec
	cachePeak      *metrics.GaugeVec
	adopted        *metrics.GaugeVec
	invalidated    *metrics.CounterVec // accumulated from apply reports
	adoptionRatio  *metrics.GaugeVec
	nsPerClass     *metrics.GaugeVec
	coalesceRatio  *metrics.GaugeVec

	// BDD layer, refreshed from Engine.BDDStats at scrape time: live
	// unique-table footprint and op-cache behaviour per tenant.
	bddNodes      *metrics.GaugeVec // {tenant}
	bddLoad       *metrics.GaugeVec
	bddManagers   *metrics.GaugeVec
	bddHits       *metrics.GaugeVec
	bddMisses     *metrics.GaugeVec
	bddOverwrites *metrics.GaugeVec

	// Durability layer: gauges refreshed from journal.Stats at scrape time,
	// counters accumulated at recovery / gap detection.
	journalAppends  *metrics.GaugeVec   // {tenant}
	journalFsyncs   *metrics.GaugeVec   // {tenant}
	journalCkpts    *metrics.GaugeVec   // {tenant}
	journalTail     *metrics.GaugeVec   // {tenant}
	journalBytes    *metrics.GaugeVec   // {tenant}
	journalReplayed *metrics.CounterVec // {tenant}
	journalGaps     *metrics.CounterVec // {tenant}

	// Pool layer.
	poolLive    *metrics.Gauge
	poolPeak    *metrics.Gauge
	poolCeiling *metrics.Gauge
	poolCross   *metrics.Gauge

	// Scheduler layer (process-wide).
	schedItems     *metrics.Gauge
	schedSteals    *metrics.Gauge
	schedFollowers *metrics.Gauge
}

// latencyBuckets: 100µs .. ~100s exponential.
var latencyBuckets = metrics.ExpBuckets(0.0001, 4, 11)

func newMetricSet() *metricSet {
	r := metrics.NewRegistry()
	m := &metricSet{
		reg: r,
		reqSeconds: r.HistogramVec("bonsaid_request_seconds",
			"Request latency by tenant and operation.", latencyBuckets, "tenant", "op"),
		rejected: r.CounterVec("bonsaid_rejected_total",
			"Requests rejected by admission control, by reason.", "tenant", "reason"),
		inflight: r.GaugeVec("bonsaid_inflight_queries",
			"Queries currently admitted per tenant.", "tenant"),
		queueDepth: r.GaugeVec("bonsaid_apply_queue_depth",
			"Deltas waiting in the bounded apply queue.", "tenant"),

		cacheServed: r.GaugeVec("bonsai_cache_served_total",
			"Compression calls answered from the identity cache.", "tenant"),
		cacheMisses: r.GaugeVec("bonsai_cache_misses_total",
			"Compression calls that had to compute.", "tenant"),
		cacheHitRate: r.GaugeVec("bonsai_cache_hit_rate",
			"served / (served + misses).", "tenant"),
		cacheEvictions: r.GaugeVec("bonsai_cache_evictions_total",
			"Entries evicted under memory pressure.", "tenant"),
		cacheLive: r.GaugeVec("bonsai_cache_live_bytes",
			"Retained abstraction bytes.", "tenant"),
		cachePeak: r.GaugeVec("bonsai_cache_peak_bytes",
			"High-water retained abstraction bytes.", "tenant"),
		adopted: r.GaugeVec("bonsai_adopted_total",
			"Abstractions carried across incremental updates.", "tenant"),
		invalidated: r.CounterVec("bonsai_invalidated_total",
			"Cached classes invalidated by applied deltas.", "tenant"),
		adoptionRatio: r.GaugeVec("bonsai_adoption_ratio",
			"adopted / (adopted + invalidated) across the engine's lifetime.", "tenant"),
		nsPerClass: r.GaugeVec("bonsai_compress_ns_per_class",
			"Mean wall-clock nanoseconds per compressed class.", "tenant"),
		coalesceRatio: r.GaugeVec("bonsai_coalesce_ratio",
			"Delta edits received / applied across replay streams.", "tenant"),

		bddNodes: r.GaugeVec("bonsai_bdd_nodes_live",
			"Live BDD nodes across the engine's compiler pool.", "tenant"),
		bddLoad: r.GaugeVec("bonsai_bdd_unique_load_factor",
			"Live nodes / unique-table slots across the pool.", "tenant"),
		bddManagers: r.GaugeVec("bonsai_bdd_managers",
			"BDD managers (compilers) the engine holds.", "tenant"),
		bddHits: r.GaugeVec("bonsai_bdd_cache_hits_total",
			"BDD operation-cache hits across the engine's lifetime.", "tenant"),
		bddMisses: r.GaugeVec("bonsai_bdd_cache_misses_total",
			"BDD operation-cache misses across the engine's lifetime.", "tenant"),
		bddOverwrites: r.GaugeVec("bonsai_bdd_cache_overwrites_total",
			"BDD op-cache stores that evicted a colliding entry (lossy-cache churn).", "tenant"),

		journalAppends: r.GaugeVec("bonsaid_journal_appends_total",
			"Deltas appended to the write-ahead journal this process.", "tenant"),
		journalFsyncs: r.GaugeVec("bonsaid_journal_fsyncs_total",
			"Journal fsync calls this process.", "tenant"),
		journalCkpts: r.GaugeVec("bonsaid_journal_checkpoints_total",
			"Durable checkpoint replacements this process.", "tenant"),
		journalTail: r.GaugeVec("bonsaid_journal_tail_records",
			"Journal records past the checkpoint — the replay cost of a crash right now.", "tenant"),
		journalBytes: r.GaugeVec("bonsaid_journal_segment_bytes",
			"On-disk journal segment bytes (excluding the checkpoint).", "tenant"),
		journalReplayed: r.CounterVec("bonsaid_journal_replayed_deltas_total",
			"Deltas replayed from the journal tail during startup recovery.", "tenant"),
		journalGaps: r.CounterVec("bonsaid_journal_gaps_total",
			"Recoveries that found a corrupt record with valid history past it.", "tenant"),

		poolLive: r.Gauge("bonsai_pool_live_bytes",
			"Shared pool: retained abstraction bytes across all tenants."),
		poolPeak: r.Gauge("bonsai_pool_peak_bytes",
			"Shared pool: high-water retained bytes."),
		poolCeiling: r.Gauge("bonsai_pool_ceiling_bytes",
			"Shared pool: configured global budget."),
		poolCross: r.Gauge("bonsai_pool_cross_evictions_total",
			"Shared pool: entries evicted by cross-tenant pressure."),

		schedItems: r.Gauge("bonsai_sched_items_total",
			"Work items executed by the compression scheduler."),
		schedSteals: r.Gauge("bonsai_sched_steals_total",
			"Tasks stolen between scheduler shards."),
		schedFollowers: r.Gauge("bonsai_sched_followers_total",
			"Classes that waited for a fingerprint-group leader."),
	}
	return m
}

// dropTenant removes a closed tenant's series.
func (m *metricSet) dropTenant(name string) {
	for _, v := range []*metrics.GaugeVec{
		m.inflight, m.queueDepth, m.cacheServed, m.cacheMisses, m.cacheHitRate,
		m.cacheEvictions, m.cacheLive, m.cachePeak, m.adopted, m.adoptionRatio,
		m.nsPerClass, m.coalesceRatio, m.bddNodes, m.bddLoad, m.bddManagers,
		m.bddHits, m.bddMisses, m.bddOverwrites, m.journalAppends,
		m.journalFsyncs, m.journalCkpts, m.journalTail, m.journalBytes,
	} {
		v.Delete(name)
	}
}

// collect refreshes scrape-time gauges from the live tenants, the pool and
// the scheduler, then renders the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.reg.mu.Lock()
	tenants := make([]*tenant, 0, len(s.reg.tenants))
	for _, t := range s.reg.tenants {
		if t != nil {
			tenants = append(tenants, t)
		}
	}
	s.reg.mu.Unlock()

	for _, t := range tenants {
		st := t.eng.Stats()
		m := s.metrics
		m.cacheServed.With(t.name).Set(float64(st.Served))
		m.cacheMisses.With(t.name).Set(float64(st.Misses))
		if tot := st.Served + st.Misses; tot > 0 {
			m.cacheHitRate.With(t.name).Set(float64(st.Served) / float64(tot))
		}
		m.cacheEvictions.With(t.name).Set(float64(st.Evictions))
		m.cacheLive.With(t.name).Set(float64(st.LiveBytes))
		m.cachePeak.With(t.name).Set(float64(st.PeakBytes))
		m.adopted.With(t.name).Set(float64(st.Adopted))
		if inv := m.invalidated.With(t.name).Value(); st.Adopted > 0 || inv > 0 {
			m.adoptionRatio.With(t.name).Set(float64(st.Adopted) / (float64(st.Adopted) + float64(inv)))
		}
		if cls := t.compressClasses.Load(); cls > 0 {
			m.nsPerClass.With(t.name).Set(float64(t.compressNs.Load()) / float64(cls))
		}
		if applied := t.editsApplied.Load(); applied > 0 {
			m.coalesceRatio.With(t.name).Set(float64(t.editsReceived.Load()) / float64(applied))
		}
		bs := t.eng.BDDStats()
		m.bddNodes.With(t.name).Set(float64(bs.NodesLive))
		m.bddLoad.With(t.name).Set(bs.LoadFactor)
		m.bddManagers.With(t.name).Set(float64(bs.Managers))
		m.bddHits.With(t.name).Set(float64(bs.CacheHits))
		m.bddMisses.With(t.name).Set(float64(bs.CacheMisses))
		m.bddOverwrites.With(t.name).Set(float64(bs.CacheOverwrites))
		m.queueDepth.With(t.name).Set(float64(len(t.applyCh)))
		if t.jrnl != nil {
			js := t.jrnl.Stats()
			m.journalAppends.With(t.name).Set(float64(js.Appends))
			m.journalFsyncs.With(t.name).Set(float64(js.Fsyncs))
			m.journalCkpts.With(t.name).Set(float64(js.Checkpoints))
			m.journalTail.With(t.name).Set(float64(js.TailRecords))
			m.journalBytes.With(t.name).Set(float64(js.SegmentBytes))
		}
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		s.metrics.poolLive.Set(float64(ps.LiveBytes))
		s.metrics.poolPeak.Set(float64(ps.PeakBytes))
		s.metrics.poolCeiling.Set(float64(ps.CeilingBytes))
		s.metrics.poolCross.Set(float64(ps.CrossEvictions))
	}
	sc := sched.GlobalStats()
	s.metrics.schedItems.Set(float64(sc.Items))
	s.metrics.schedSteals.Set(float64(sc.Steals))
	s.metrics.schedFollowers.Set(float64(sc.Followers))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// recordApply folds an apply/replay outcome into the per-tenant counters.
func (m *metricSet) recordApply(t *tenant, rep *bonsai.ApplyReport) {
	if rep == nil {
		return
	}
	m.invalidated.With(t.name).Add(int64(rep.Invalidated))
}
