package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/journal"
	"bonsai/internal/netgen"
)

// TestDurableDrainRestart: a drained daemon seals each tenant with a final
// checkpoint; a new daemon over the same data dir resurrects the tenant with
// field-identical query results.
func TestDurableDrainRestart(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	cfg := Config{DataDir: dataDir, Fsync: journal.SyncNever}

	s1 := New(cfg)
	hs1 := httptest.NewServer(s1)
	c1 := NewClient(hs1.URL)
	if err := c1.OpenNetwork(ctx, "ft", netgen.Fattree(4, netgen.PolicyShortestPath)); err != nil {
		t.Fatalf("open: %v", err)
	}
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	// A flap plus a lasting failure: recovered state must differ from base.
	for _, d := range []bonsai.Delta{
		{LinkDown: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}}},
		{LinkUp: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}}},
		{LinkDown: []bonsai.LinkRef{{A: net.Links[1].A, B: net.Links[1].B}}},
	} {
		if _, err := c1.Apply(ctx, "ft", d); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	dest := firstClass(t, c1, "ft")
	routes1, err := c1.Routes(ctx, "ft", dest)
	if err != nil || len(routes1.Routes) == 0 {
		t.Fatalf("routes: %+v, %v", routes1, err)
	}
	src := routes1.Routes[0].Router
	reach1, err := c1.Reach(ctx, "ft", src, dest, false)
	if err != nil {
		t.Fatalf("reach: %v", err)
	}
	roles1, err := c1.Roles(ctx, "ft", bonsai.RolesRequest{})
	if err != nil {
		t.Fatalf("roles: %v", err)
	}
	st1, err := c1.Stats(ctx, "ft")
	if err != nil || st1.Journal == nil {
		t.Fatalf("stats: %+v, %v", st1, err)
	}
	if st1.Journal.LastSeq != 3 || st1.Journal.AppliedSeq != 3 {
		t.Fatalf("journal stats: %+v, want last=applied=3", st1.Journal)
	}
	s1.Drain()
	hs1.Close()

	s2 := New(cfg)
	hs2 := httptest.NewServer(s2)
	defer hs2.Close()
	defer s2.Drain()
	c2 := NewClient(hs2.URL)

	tenants, err := c2.Tenants(ctx)
	if err != nil || len(tenants) != 1 || tenants[0].Name != "ft" {
		t.Fatalf("recovered tenants: %+v, %v", tenants, err)
	}
	st2, err := c2.Stats(ctx, "ft")
	if err != nil || st2.Journal == nil || st2.Journal.Recovery == nil {
		t.Fatalf("recovered stats: %+v, %v", st2, err)
	}
	// Drain sealed with a checkpoint, so recovery replayed nothing.
	if rec := st2.Journal.Recovery; rec.ReplayedDeltas != 0 || rec.CheckpointSeq != 3 || rec.Gap {
		t.Fatalf("recovery info: %+v, want checkpoint-only at seq 3", rec)
	}
	reach2, err := c2.Reach(ctx, "ft", src, dest, false)
	if err != nil || reach2.Reachable != reach1.Reachable || reach2.Compressed != reach1.Compressed {
		t.Fatalf("recovered reach %+v vs %+v (err %v)", reach2, reach1, err)
	}
	roles2, err := c2.Roles(ctx, "ft", bonsai.RolesRequest{})
	if err != nil || *roles2 != *roles1 {
		t.Fatalf("recovered roles %+v vs %+v (err %v)", roles2, roles1, err)
	}
	routes2, err := c2.Routes(ctx, "ft", dest)
	if err != nil || !sameRoutes(routes1, routes2) {
		t.Fatalf("recovered routes differ: %+v vs %+v (err %v)", routes2, routes1, err)
	}

	// DELETE destroys the tenant's history; the next daemon has no tenants.
	if err := c2.Close(ctx, "ft"); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, url.PathEscape("ft"))); !os.IsNotExist(err) {
		t.Fatalf("tenant dir survived DELETE: %v", err)
	}
	s2.Drain()
	hs2.Close()
	s3 := New(cfg)
	defer s3.Drain()
	if names := s3.reg.names(); len(names) != 0 {
		t.Fatalf("deleted tenant resurrected: %v", names)
	}
}

// TestDurableTailRecovery crafts a data dir with a checkpoint plus an
// unsealed journal tail (what a kill -9 leaves behind) and verifies New
// replays the tail: the recovered tenant matches a never-crashed engine that
// applied the same deltas, and the replay shows up in /stats and /metrics.
func TestDurableTailRecovery(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)

	// Reference: a never-crashed engine over the same history.
	ref, err := bonsai.Open(netgen.Fattree(4, netgen.PolicyShortestPath))
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	defer ref.Close()
	deltas := []bonsai.Delta{
		{LinkDown: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}}},
		{LinkUp: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}}},
		{LinkDown: []bonsai.LinkRef{{A: net.Links[2].A, B: net.Links[2].B}}},
	}
	if _, err := ref.ApplyAll(ctx, deltas); err != nil {
		t.Fatalf("reference apply: %v", err)
	}

	// Craft the crashed tenant dir: base checkpoint + journaled tail, no
	// final checkpoint (the journal was never sealed).
	dir := filepath.Join(dataDir, url.PathEscape("ft"))
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	var buf bytes.Buffer
	if err := bonsai.Print(&buf, net); err != nil {
		t.Fatalf("print: %v", err)
	}
	if err := j.WriteCheckpoint(0, buf.Bytes()); err != nil {
		t.Fatalf("base checkpoint: %v", err)
	}
	for _, d := range deltas {
		payload, _ := json.Marshal(d)
		if _, err := j.Append(payload); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	s := New(Config{DataDir: dataDir, Fsync: journal.SyncNever})
	hs := httptest.NewServer(s)
	t.Cleanup(func() { s.Drain(); hs.Close() })
	c := NewClient(hs.URL)

	st, err := c.Stats(ctx, "ft")
	if err != nil || st.Journal == nil || st.Journal.Recovery == nil {
		t.Fatalf("stats: %+v, %v", st, err)
	}
	rec := st.Journal.Recovery
	if rec.ReplayedDeltas != 3 || rec.Truncated || rec.Gap {
		t.Fatalf("recovery info: %+v, want 3 clean replayed deltas", rec)
	}
	if st.Journal.AppliedSeq != 3 {
		t.Fatalf("applied seq %d, want 3", st.Journal.AppliedSeq)
	}

	dest := firstClass(t, c, "ft")
	refRoutes, err := ref.Routes(ctx, dest)
	if err != nil {
		t.Fatalf("reference routes: %v", err)
	}
	gotRoutes, err := c.Routes(ctx, "ft", dest)
	if err != nil || !sameRoutes(refRoutes, gotRoutes) {
		t.Fatalf("recovered routes differ from reference (err %v)", err)
	}
	src := refRoutes.Routes[0].Router
	refReach, err := ref.Reach(ctx, src, dest)
	if err != nil {
		t.Fatalf("reference reach: %v", err)
	}
	gotReach, err := c.Reach(ctx, "ft", src, dest, false)
	if err != nil || gotReach.Reachable != refReach.Reachable {
		t.Fatalf("recovered reach %+v vs reference %+v (err %v)", gotReach, refReach, err)
	}

	exp, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(exp, `bonsaid_journal_replayed_deltas_total{tenant="ft"} 3`) {
		t.Fatalf("metrics missing replay counter:\n%s", grepLines(exp, "journal"))
	}
}

// TestReplayAbortReconverges cancels a replay stream mid-flight and checks
// the daemon restores the durability invariant on its own: every journaled
// record ends up applied (applied_seq catches up to last_seq), and the
// tenant keeps serving.
func TestReplayAbortReconverges(t *testing.T) {
	dataDir := t.TempDir()
	_, c := newTestServer(t, Config{DataDir: dataDir, Fsync: journal.SyncNever})
	ctx := context.Background()
	if err := c.OpenNetwork(ctx, "ft", netgen.Fattree(4, netgen.PolicyShortestPath)); err != nil {
		t.Fatalf("open: %v", err)
	}
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	l := net.Links[0]

	pr, pw := io.Pipe()
	streamCtx, cancel := context.WithCancel(ctx)
	replayErr := make(chan error, 1)
	go func() {
		_, err := c.Replay(streamCtx, "ft", pr, 0, 0)
		replayErr <- err
	}()
	// Feed a few deltas so some are journaled, then abort the stream.
	for i := 0; i < 4; i++ {
		line := fmt.Sprintf(`{"link_down":[{"a":%q,"b":%q}]}`+"\n", l.A, l.B)
		if i%2 == 1 {
			line = fmt.Sprintf(`{"link_up":[{"a":%q,"b":%q}]}`+"\n", l.A, l.B)
		}
		if _, err := io.WriteString(pw, line); err != nil {
			break
		}
	}
	// Give the server a moment to journal at least one record, then abort.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(ctx, "ft")
		if err == nil && st.Journal != nil && st.Journal.LastSeq > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no delta journaled before abort")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	pw.CloseWithError(context.Canceled)
	if err := <-replayErr; err == nil {
		t.Fatal("aborted replay reported success")
	}

	// Reconverge: applied catches up to journaled.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stats(ctx, "ft")
		if err == nil && st.Journal != nil &&
			st.Journal.LastSeq > 0 && st.Journal.AppliedSeq == st.Journal.LastSeq {
			break
		}
		if time.Now().After(deadline) {
			st, _ := c.Stats(ctx, "ft")
			t.Fatalf("applied_seq never caught up: %+v", st.Journal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The tenant still serves and the sequence continues past the abort.
	st, _ := c.Stats(ctx, "ft")
	before := st.Journal.LastSeq
	if _, err := c.Apply(ctx, "ft", bonsai.Delta{
		LinkDown: []bonsai.LinkRef{{A: l.A, B: l.B}},
	}); err != nil {
		t.Fatalf("apply after abort: %v", err)
	}
	st, err := c.Stats(ctx, "ft")
	if err != nil || st.Journal.LastSeq != before+1 || st.Journal.AppliedSeq != before+1 {
		t.Fatalf("post-abort journal: %+v, want seq %d", st.Journal, before+1)
	}
}

// TestDurableCheckpointTruncates drives enough deltas through a tenant with
// a tiny checkpoint threshold to force background checkpoints, then checks
// the journal tail stays bounded and a restart recovers from the checkpoint.
func TestDurableCheckpointTruncates(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	cfg := Config{DataDir: dataDir, Fsync: journal.SyncNever, CheckpointEvery: 4}

	s1 := New(cfg)
	hs1 := httptest.NewServer(s1)
	c1 := NewClient(hs1.URL)
	if err := c1.OpenNetwork(ctx, "ft", netgen.Fattree(4, netgen.PolicyShortestPath)); err != nil {
		t.Fatalf("open: %v", err)
	}
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	for i := 0; i < 16; i++ {
		l := net.Links[i%3]
		d := bonsai.Delta{LinkDown: []bonsai.LinkRef{{A: l.A, B: l.B}}}
		if i%2 == 1 {
			d = bonsai.Delta{LinkUp: []bonsai.LinkRef{{A: l.A, B: l.B}}}
		}
		if _, err := c1.Apply(ctx, "ft", d); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	// The background checkpointer runs async; wait for it to catch up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c1.Stats(ctx, "ft")
		if err == nil && st.Journal != nil && st.Journal.Checkpoints > 0 &&
			st.Journal.TailRecords < 16 {
			break
		}
		if time.Now().After(deadline) {
			st, _ := c1.Stats(ctx, "ft")
			t.Fatalf("checkpointer never truncated the tail: %+v", st.Journal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	roles1, err := c1.Roles(ctx, "ft", bonsai.RolesRequest{})
	if err != nil {
		t.Fatalf("roles: %v", err)
	}
	s1.Drain()
	hs1.Close()

	s2 := New(cfg)
	defer s2.Drain()
	hs2 := httptest.NewServer(s2)
	defer hs2.Close()
	c2 := NewClient(hs2.URL)
	roles2, err := c2.Roles(ctx, "ft", bonsai.RolesRequest{})
	if err != nil || *roles2 != *roles1 {
		t.Fatalf("recovered roles %+v vs %+v (err %v)", roles2, roles1, err)
	}
}

func firstClass(t *testing.T, c *Client, name string) string {
	t.Helper()
	var prefix string
	_, err := c.CompressStream(context.Background(), name, bonsai.ClassSelector{MaxClasses: 1},
		func(r bonsai.ClassResult) { prefix = r.Prefix })
	if err != nil || prefix == "" {
		t.Fatalf("no class prefix: %v", err)
	}
	return prefix
}

func sameRoutes(a, b *bonsai.RoutesReport) bool {
	if a.Dest != b.Dest || len(a.Routes) != len(b.Routes) {
		return false
	}
	am := make(map[string]string, len(a.Routes))
	for _, r := range a.Routes {
		am[r.Router] = fmt.Sprintf("%s|%v", r.Label, r.NextHops)
	}
	for _, r := range b.Routes {
		if am[r.Router] != fmt.Sprintf("%s|%v", r.Label, r.NextHops) {
			return false
		}
	}
	return true
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestSealedRelationStoreWarmsRecovery: a drained daemon seals each durable
// tenant's warm BDD/abstraction state beside its journal; the next daemon
// recovers the tenant warm — identical compression results with zero fresh
// refinements — and exposes the BDD layer on /metrics.
func TestSealedRelationStoreWarmsRecovery(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	cfg := Config{DataDir: dataDir, Fsync: journal.SyncNever}

	s1 := New(cfg)
	hs1 := httptest.NewServer(s1)
	c1 := NewClient(hs1.URL)
	if err := c1.OpenNetwork(ctx, "ft", netgen.Fattree(4, netgen.PolicyShortestPath)); err != nil {
		t.Fatalf("open: %v", err)
	}
	cold, err := c1.Compress(ctx, "ft", bonsai.ClassSelector{})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if cold.Cache.Fresh == 0 {
		t.Fatalf("cold daemon computed no abstractions: %+v", cold.Cache)
	}
	s1.Drain()
	hs1.Close()
	if _, err := os.Stat(filepath.Join(dataDir, url.PathEscape("ft"), relStoreFile)); err != nil {
		t.Fatalf("drain did not seal a relation store: %v", err)
	}

	s2 := New(cfg)
	hs2 := httptest.NewServer(s2)
	defer hs2.Close()
	defer s2.Drain()
	c2 := NewClient(hs2.URL)
	warm, err := c2.Compress(ctx, "ft", bonsai.ClassSelector{})
	if err != nil {
		t.Fatalf("warm compress: %v", err)
	}
	if warm.Cache.Fresh != 0 {
		t.Fatalf("recovered daemon ran %d fresh refinements, want 0", warm.Cache.Fresh)
	}
	if warm.ClassesCompressed != cold.ClassesCompressed ||
		warm.SumAbstractNodes != cold.SumAbstractNodes ||
		warm.SumAbstractLinks != cold.SumAbstractLinks {
		t.Fatalf("warm compression differs: %+v vs %+v", warm, cold)
	}
	metricsText, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, name := range []string{
		"bonsai_bdd_nodes_live", "bonsai_bdd_unique_load_factor",
		"bonsai_bdd_managers", "bonsai_bdd_cache_hits_total",
		"bonsai_bdd_cache_misses_total", "bonsai_bdd_cache_overwrites_total",
	} {
		if !strings.Contains(grepLines(metricsText, name), `tenant="ft"`) {
			t.Fatalf("metric %s missing tenant series:\n%s", name, grepLines(metricsText, name))
		}
	}
}
