// Durability wiring: every admitted delta is appended to the tenant's
// write-ahead journal before the engine runs it, a background checkpointer
// snapshots the tenant's current network config and truncates the journal
// behind it, and daemon start recovers each journaled tenant from its last
// checkpoint plus the journal tail replayed through the coalescing stream
// path. The correctness backbone is that every Delta edit is an idempotent
// blind write, so replay is prefix-idempotent: re-applying an already-applied
// record converges to the same state, which lets recovery (and the
// reconverge pass after an aborted replay stream) over-replay from any
// conservative lower bound instead of tracking an exact applied frontier.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/url"
	"os"
	"path/filepath"

	"bonsai"
	"bonsai/internal/journal"
)

// defaultCheckpointEvery is the journal tail length (records past the
// checkpoint) that triggers a background checkpoint when Config leaves
// CheckpointEvery at zero.
const defaultCheckpointEvery = 4096

// JournalStats is the /stats wire shape of a tenant's durability state.
type JournalStats struct {
	journal.Stats
	// AppliedSeq is the newest journal sequence known to be reflected in the
	// live engine; it can trail LastSeq while deltas sit in the apply path.
	AppliedSeq uint64 `json:"applied_seq"`
	// Recovery describes the recovery that produced this tenant, when the
	// daemon restarted over an existing data dir.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// RecoveryInfo reports what one startup recovery found.
type RecoveryInfo struct {
	CheckpointSeq  uint64 `json:"checkpoint_seq"`
	ReplayedDeltas int    `json:"replayed_deltas"`
	// Truncated: the journal tail ended in a torn record (routine after
	// kill -9). Gap: valid records provably exist past a corrupt one, so the
	// recovered state misses history — the soundness alarm, also counted in
	// bonsaid_journal_gaps_total.
	Truncated    bool  `json:"truncated,omitempty"`
	Gap          bool  `json:"gap,omitempty"`
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
}

func (r *registry) persistent() bool { return r.cfg.DataDir != "" }

// tenantDir maps a tenant name to its data directory; names are URL-escaped
// so any openable tenant name is a safe single path component.
func (r *registry) tenantDir(name string) string {
	return filepath.Join(r.cfg.DataDir, url.PathEscape(name))
}

func (r *registry) journalOpts() journal.Options {
	return journal.Options{Sync: r.cfg.Fsync, SyncEvery: r.cfg.FsyncInterval}
}

func (r *registry) checkpointEvery() int {
	if r.cfg.CheckpointEvery != 0 {
		return r.cfg.CheckpointEvery
	}
	return defaultCheckpointEvery
}

// initPersistence gives a freshly opened tenant its journal: any history
// under the name is discarded (an explicit open defines a new ground truth)
// and a base checkpoint of the opening config is written at sequence 0, so a
// crash before the first delta still recovers the tenant.
func (r *registry) initPersistence(t *tenant) error {
	dir := r.tenantDir(t.name)
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("server: reset tenant dir: %w", err)
	}
	j, err := journal.Open(dir, r.journalOpts())
	if err != nil {
		return fmt.Errorf("server: open journal: %w", err)
	}
	payload, err := configText(t.eng)
	if err != nil {
		j.Close()
		return err
	}
	if err := j.WriteCheckpoint(0, payload); err != nil {
		j.Close()
		return fmt.Errorf("server: base checkpoint: %w", err)
	}
	t.jrnl = j
	t.dir = dir
	return nil
}

// relStoreFile names the sealed relation store inside a tenant's data
// directory: the engine's warm BDD/abstraction state, written at graceful
// shutdown and loaded after recovery replay (see bonsai.Engine's relation
// store). It is a cache beside the journal, never ground truth: recovery
// that cannot use it (config drift after a crash, damage) cold-starts.
const relStoreFile = "relstore.bin"

// configText renders the engine's current network as canonical config text —
// the checkpoint payload, chosen because it round-trips through the same
// parser an open does, so a recovered engine is built exactly like a fresh
// one.
func configText(eng *bonsai.Engine) ([]byte, error) {
	var buf bytes.Buffer
	if err := bonsai.Print(&buf, eng.Network()); err != nil {
		return nil, fmt.Errorf("server: render checkpoint config: %w", err)
	}
	return buf.Bytes(), nil
}

// startCheckpointer launches the tenant's background checkpointer; kicks are
// coalesced through a 1-buffered channel so the apply path never blocks on
// snapshot work.
func (t *tenant) startCheckpointer() {
	t.ckptKick = make(chan struct{}, 1)
	t.ckptStop = make(chan struct{})
	t.ckptDone = make(chan struct{})
	go t.checkpointLoop()
}

// maybeKickCheckpoint nudges the checkpointer once the journal tail reaches
// the configured length. Threshold < 0 disables background checkpoints.
func (t *tenant) maybeKickCheckpoint() {
	if t.jrnl == nil || t.ckptEvery < 0 {
		return
	}
	st := t.jrnl.Stats()
	if st.TailRecords < uint64(t.ckptEvery) {
		return
	}
	select {
	case t.ckptKick <- struct{}{}:
	default:
	}
}

func (t *tenant) checkpointLoop() {
	defer close(t.ckptDone)
	for {
		select {
		case <-t.ckptStop:
			return
		case <-t.ckptKick:
			if err := t.checkpointNow(); err != nil && !errors.Is(err, journal.ErrClosed) {
				log.Printf("bonsaid: tenant %s: checkpoint: %v", t.name, err)
			}
		}
	}
}

// checkpointNow snapshots the live config at the applied frontier and
// truncates the journal behind it. replayMu quiesces the apply path so the
// captured (config, sequence) pair is consistent; the disk write happens
// after release so a slow fsync never stalls appliers.
func (t *tenant) checkpointNow() error {
	t.replayMu.Lock()
	seq := t.appliedSeq.Load()
	if seq <= t.jrnl.CheckpointSeq() {
		t.replayMu.Unlock()
		return nil
	}
	payload, err := configText(t.eng)
	t.replayMu.Unlock()
	if err != nil {
		return err
	}
	return t.jrnl.WriteCheckpoint(seq, payload)
}

// sealJournal writes a final checkpoint (so the next recovery is
// checkpoint-only) and closes the journal, keeping the data directory. The
// caller has already drained the apply worker, so appliedSeq is final.
func (t *tenant) sealJournal() {
	if t.jrnl == nil {
		return
	}
	if seq := t.appliedSeq.Load(); seq > t.jrnl.CheckpointSeq() {
		if payload, err := configText(t.eng); err == nil {
			if err := t.jrnl.WriteCheckpoint(seq, payload); err != nil {
				log.Printf("bonsaid: tenant %s: seal checkpoint: %v", t.name, err)
			}
		}
	}
	// Persist the warm BDD/abstraction state beside the sealed journal so
	// the next recovery skips refinement. The engine is still open (the
	// caller closes it after us); a failed save only costs the next start
	// its warm cache.
	if err := t.eng.SaveRelationStore(filepath.Join(t.dir, relStoreFile)); err != nil {
		log.Printf("bonsaid: tenant %s: save relation store: %v", t.name, err)
	}
	t.jrnl.Close()
}

// errJournal tags journal I/O failures so the HTTP layer can tell them from
// client decode errors in the shared replay-decoder error channel.
var errJournal = errors.New("server: journal")

// journalDelta appends one delta to the tenant's journal, returning its
// sequence (0, nil when the tenant is not persistent). Callers must not
// acknowledge the delta before this returns: under fsync=always a returned
// sequence is durable against power loss.
func (t *tenant) journalDelta(d bonsai.Delta) (uint64, error) {
	if t.jrnl == nil {
		return 0, nil
	}
	payload, err := json.Marshal(d)
	if err != nil {
		return 0, fmt.Errorf("%w: encode delta: %v", errBadRequest, err)
	}
	seq, err := t.jrnl.Append(payload)
	if err != nil {
		return 0, fmt.Errorf("%w append: %v", errJournal, err)
	}
	return seq, nil
}

// reconverge restores the invariant "live state ⊇ journaled prefix" after an
// aborted replay stream left journaled-but-unapplied records, by re-applying
// every record past fromSeq onto the live engine. Over-replay is safe
// (prefix idempotence), so fromSeq only needs to be a lower bound on what
// the stream had already applied. The caller holds replayMu.
func (t *tenant) reconverge(ctx context.Context, fromSeq uint64) {
	var deltas []bonsai.Delta
	if _, err := t.jrnl.Replay(fromSeq, func(_ uint64, payload []byte) error {
		var d bonsai.Delta
		if err := json.Unmarshal(payload, &d); err != nil {
			return err
		}
		deltas = append(deltas, d)
		return nil
	}); err != nil {
		log.Printf("bonsaid: tenant %s: reconverge scan: %v", t.name, err)
		return
	}
	if len(deltas) == 0 {
		return
	}
	// Detached context: the client that aborted the stream is gone, but the
	// re-apply is the daemon's own consistency work and must finish.
	if _, err := t.eng.ApplyAll(context.WithoutCancel(ctx), deltas); err != nil {
		if !errors.Is(err, bonsai.ErrClosed) {
			log.Printf("bonsaid: tenant %s: reconverge apply: %v", t.name, err)
		}
		return
	}
	t.appliedSeq.Store(t.jrnl.LastSeq())
}

// errSkipTenant marks a data directory recovery should ignore (no durable
// tenant ever fully materialised there).
var errSkipTenant = errors.New("skip")

// recoverAll rebuilds every journaled tenant found under DataDir. Failures
// are logged and skipped — one corrupt tenant must not keep the daemon from
// serving the others — and the damaged directory is left in place for
// inspection.
func (r *registry) recoverAll(m *metricSet) {
	ents, err := os.ReadDir(r.cfg.DataDir)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("bonsaid: recovery: read data dir: %v", err)
		}
		return
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			log.Printf("bonsaid: recovery: skipping %q: bad name", e.Name())
			continue
		}
		if err := r.recoverOne(name, m); err != nil {
			if !errors.Is(err, errSkipTenant) {
				log.Printf("bonsaid: recovery: tenant %s: %v", name, err)
			}
			continue
		}
	}
}

// recoverOne rebuilds a single tenant: parse the checkpointed config, build
// a fresh engine over it, replay the journal tail through the coalescing
// stream path, then attach the journal for new appends. The read-only tail
// scan runs before journal.Open because Open repairs (truncates) a torn
// tail — scanning first preserves the damage evidence for /stats.
func (r *registry) recoverOne(name string, m *metricSet) error {
	dir := r.tenantDir(name)
	ck, err := journal.LoadCheckpoint(dir)
	if errors.Is(err, journal.ErrNoCheckpoint) {
		// A directory with no checkpoint never finished opening (the base
		// checkpoint is written before the open is acknowledged); there is no
		// ground truth to recover.
		return errSkipTenant
	}
	if err != nil {
		return fmt.Errorf("load checkpoint: %w", err)
	}
	net, err := bonsai.ParseString(string(ck.Payload))
	if err != nil {
		return fmt.Errorf("parse checkpointed config: %w", err)
	}

	var deltas []bonsai.Delta
	errBadPayload := errors.New("undecodable record")
	info, err := journal.ReplayDir(dir, ck.Seq, func(_ uint64, payload []byte) error {
		var d bonsai.Delta
		if err := json.Unmarshal(payload, &d); err != nil {
			return errBadPayload
		}
		deltas = append(deltas, d)
		return nil
	})
	if errors.Is(err, errBadPayload) {
		// CRC-valid but not a delta: treat like a corrupt record — recover
		// the prefix and raise the gap alarm.
		info.Truncated, info.Gap = true, true
		err = nil
	}
	if err != nil {
		return fmt.Errorf("scan journal: %w", err)
	}

	t, err := r.buildTenant(name, net)
	if err != nil {
		return fmt.Errorf("rebuild engine: %w", err)
	}
	if len(deltas) > 0 {
		if _, err := t.eng.ApplyAll(context.Background(), deltas); err != nil {
			t.eng.Close()
			return fmt.Errorf("replay %d deltas: %w", len(deltas), err)
		}
	}
	// Load the sealed relation store after replay, so its config-hash guard
	// checks the final recovered network: a clean shutdown matches and the
	// engine starts warm; a crash that left journaled deltas past the seal
	// fails the hash and cold-starts — correct either way, since the store
	// is a cache.
	if n, err := t.eng.LoadRelationStore(filepath.Join(dir, relStoreFile)); err != nil {
		if !os.IsNotExist(err) {
			log.Printf("bonsaid: recovery: tenant %s: relation store rejected (cold start): %v", name, err)
		}
	} else if n > 0 {
		log.Printf("bonsaid: recovery: tenant %s: warm start, %d cached abstractions loaded", name, n)
	}
	j, err := journal.Open(dir, r.journalOpts())
	if err != nil {
		t.eng.Close()
		return fmt.Errorf("reopen journal: %w", err)
	}
	t.jrnl = j
	t.dir = dir
	seq := ck.Seq
	if info.LastSeq > seq {
		seq = info.LastSeq
	}
	t.appliedSeq.Store(seq)
	t.recovery = &RecoveryInfo{
		CheckpointSeq:  ck.Seq,
		ReplayedDeltas: info.Records,
		Truncated:      info.Truncated,
		Gap:            info.Gap,
		DroppedBytes:   info.DroppedBytes,
	}
	t.startCheckpointer()

	r.mu.Lock()
	if _, exists := r.tenants[name]; exists {
		r.mu.Unlock()
		j.Close()
		t.eng.Close()
		return fmt.Errorf("tenant already open")
	}
	r.tenants[name] = t
	r.mu.Unlock()
	go t.applyWorker()

	m.journalReplayed.With(name).Add(int64(info.Records))
	if info.Gap {
		m.journalGaps.With(name).Inc()
	}
	if info.Records > 0 || info.Truncated {
		log.Printf("bonsaid: recovery: tenant %s: checkpoint seq %d, replayed %d deltas (truncated=%v gap=%v dropped=%dB)",
			name, ck.Seq, info.Records, info.Truncated, info.Gap, info.DroppedBytes)
	}
	return nil
}

// journalStats assembles the /stats durability block.
func (t *tenant) journalStats() *JournalStats {
	if t.jrnl == nil {
		return nil
	}
	return &JournalStats{
		Stats:      t.jrnl.Stats(),
		AppliedSeq: t.appliedSeq.Load(),
		Recovery:   t.recovery,
	}
}
