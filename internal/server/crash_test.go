// Crash gauntlet: SIGKILL a real bonsaid child process at fault-injected
// points in the durability path (journal append, fsync, checkpoint rename,
// engine state swap) during an apply storm, then restart over the same data
// dir and require the recovered tenant to be field-identical to a
// never-crashed reference engine that applied the same durable delta
// prefix. Separately asserts the ack contract: every delta the client saw
// acknowledged is in that durable prefix.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bonsai"
	"bonsai/internal/journal"
	"bonsai/internal/netgen"
)

// buildBonsaid compiles cmd/bonsaid once per test binary. The gauntlet needs
// a real child process: SIGKILL semantics (no deferred cleanup, no Go
// runtime shutdown) cannot be faked in-process.
var bonsaidBuild struct {
	once sync.Once
	path string
	err  error
}

func buildBonsaid(t *testing.T) string {
	t.Helper()
	bonsaidBuild.once.Do(func() {
		dir, err := os.MkdirTemp("", "bonsaid-gauntlet-*")
		if err != nil {
			bonsaidBuild.err = err
			return
		}
		bin := filepath.Join(dir, "bonsaid")
		out, err := exec.Command("go", "build", "-o", bin, "bonsai/cmd/bonsaid").CombinedOutput()
		if err != nil {
			bonsaidBuild.err = fmt.Errorf("build bonsaid: %v\n%s", err, out)
			return
		}
		bonsaidBuild.path = bin
	})
	if bonsaidBuild.err != nil {
		t.Fatal(bonsaidBuild.err)
	}
	return bonsaidBuild.path
}

type childDaemon struct {
	cmd  *exec.Cmd
	addr string
	exit chan error
}

var listenRe = regexp.MustCompile(`listening on ([^ ]+) \(`)

// startBonsaid launches the daemon on an ephemeral port, optionally armed
// with a BONSAID_CRASH_POINT, and waits for its listening line.
func startBonsaid(t *testing.T, bin, dataDir string, extra []string, crash string) *childDaemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	if crash != "" {
		cmd.Env = append(os.Environ(), "BONSAID_CRASH_POINT="+crash)
	}
	// Own pipe rather than StderrPipe: cmd.Wait must not race the reader.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	cmd.Stderr = pw
	if err := cmd.Start(); err != nil {
		t.Fatalf("start bonsaid: %v", err)
	}
	pw.Close()
	addrCh := make(chan string, 1)
	go func() {
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	d := &childDaemon{cmd: cmd, exit: exit}
	t.Cleanup(func() { d.cmd.Process.Kill() })
	select {
	case d.addr = <-addrCh:
	case err := <-exit:
		t.Fatalf("bonsaid exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("bonsaid never reported listening")
	}
	return d
}

func (d *childDaemon) client() *Client { return NewClient("http://" + d.addr) }

func (d *childDaemon) waitExit(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-d.exit:
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		t.Fatal("daemon still alive; crash point never fired")
	}
}

// stormDeltas builds a deterministic flap storm: link i%4 toggles on each
// visit, so the end state differs from the base network and from any proper
// prefix — a recovery that loses or reorders deltas cannot luck into the
// right answer.
func stormDeltas(net *bonsai.Network, n int) []bonsai.Delta {
	deltas := make([]bonsai.Delta, 0, n)
	down := make([]bool, 4)
	for i := 0; i < n; i++ {
		l := net.Links[i%4]
		ref := []bonsai.LinkRef{{A: l.A, B: l.B}}
		if down[i%4] {
			deltas = append(deltas, bonsai.Delta{LinkUp: ref})
		} else {
			deltas = append(deltas, bonsai.Delta{LinkDown: ref})
		}
		down[i%4] = !down[i%4]
	}
	return deltas
}

type seqDelta struct {
	seq uint64
	d   bonsai.Delta
}

// durableView decodes what actually survived on disk: the checkpoint plus
// every valid journal record past it — the same read a restarted daemon
// performs, done read-only by the harness.
func durableView(t *testing.T, dataDir, name string) (*journal.Checkpoint, []seqDelta, journal.ReplayInfo) {
	t.Helper()
	dir := filepath.Join(dataDir, url.PathEscape(name))
	ck, err := journal.LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	var tail []seqDelta
	info, err := journal.ReplayDir(dir, ck.Seq, func(seq uint64, payload []byte) error {
		var d bonsai.Delta
		if err := json.Unmarshal(payload, &d); err != nil {
			return err
		}
		tail = append(tail, seqDelta{seq, d})
		return nil
	})
	if err != nil {
		t.Fatalf("replay dir: %v", err)
	}
	return ck, tail, info
}

// referenceEngine builds the never-crashed control: parse the durable
// checkpoint's config and apply the durable journal tail through the same
// stream path recovery uses.
func referenceEngine(t *testing.T, ck *journal.Checkpoint, tail []seqDelta) *bonsai.Engine {
	t.Helper()
	net, err := bonsai.ParseString(string(ck.Payload))
	if err != nil {
		t.Fatalf("parse checkpoint config: %v", err)
	}
	ref, err := bonsai.Open(net)
	if err != nil {
		t.Fatalf("open reference: %v", err)
	}
	t.Cleanup(func() { ref.Close() })
	if len(tail) > 0 {
		deltas := make([]bonsai.Delta, len(tail))
		for i, sd := range tail {
			deltas[i] = sd.d
		}
		if _, err := ref.ApplyAll(context.Background(), deltas); err != nil {
			t.Fatalf("reference apply: %v", err)
		}
	}
	return ref
}

// compareRecovered requires the recovered daemon's Verify/Reach/Roles/Routes
// answers to be field-identical to the reference engine's (timing and cache
// fields excluded — they are not state).
func compareRecovered(t *testing.T, ctx context.Context, ref *bonsai.Engine, c *Client, name string) {
	t.Helper()
	refV, err := ref.Verify(ctx, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatalf("reference verify: %v", err)
	}
	gotV, err := c.Verify(ctx, name, bonsai.VerifyRequest{})
	if err != nil {
		t.Fatalf("recovered verify: %v", err)
	}
	if gotV.Mode != refV.Mode || gotV.Classes != refV.Classes ||
		gotV.Pairs != refV.Pairs || gotV.ReachablePairs != refV.ReachablePairs ||
		gotV.AbstractNodeSum != refV.AbstractNodeSum ||
		gotV.DistinctAbstractions != refV.DistinctAbstractions {
		t.Fatalf("verify diverged:\nrecovered %+v\nreference %+v", gotV, refV)
	}
	classes := ref.Classes()
	if len(classes) == 0 {
		t.Fatal("reference has no classes")
	}
	dest := classes[0]
	refR, err := ref.Routes(ctx, dest)
	if err != nil {
		t.Fatalf("reference routes: %v", err)
	}
	gotR, err := c.Routes(ctx, name, dest)
	if err != nil {
		t.Fatalf("recovered routes: %v", err)
	}
	if !sameRoutes(refR, gotR) {
		t.Fatalf("routes diverged for %s:\nrecovered %+v\nreference %+v", dest, gotR, refR)
	}
	src := refR.Routes[0].Router
	refReach, err := ref.Reach(ctx, src, dest)
	if err != nil {
		t.Fatalf("reference reach: %v", err)
	}
	gotReach, err := c.Reach(ctx, name, src, dest, false)
	if err != nil {
		t.Fatalf("recovered reach: %v", err)
	}
	if gotReach.Reachable != refReach.Reachable {
		t.Fatalf("reach(%s,%s) diverged: recovered %v, reference %v",
			src, dest, gotReach.Reachable, refReach.Reachable)
	}
	refRC, err := ref.ReachConcrete(ctx, src, dest)
	if err != nil {
		t.Fatalf("reference concrete reach: %v", err)
	}
	gotRC, err := c.Reach(ctx, name, src, dest, true)
	if err != nil {
		t.Fatalf("recovered concrete reach: %v", err)
	}
	if gotRC.Reachable != refRC.Reachable || gotRC.Reachable != gotReach.Reachable {
		t.Fatalf("concrete reach diverged: recovered %v, reference %v, compressed %v",
			gotRC.Reachable, refRC.Reachable, gotReach.Reachable)
	}
	refRoles, err := ref.Roles(ctx, bonsai.RolesRequest{})
	if err != nil {
		t.Fatalf("reference roles: %v", err)
	}
	gotRoles, err := c.Roles(ctx, name, bonsai.RolesRequest{})
	if err != nil {
		t.Fatalf("recovered roles: %v", err)
	}
	if *gotRoles != *refRoles {
		t.Fatalf("roles diverged: recovered %+v, reference %+v", gotRoles, refRoles)
	}
}

// TestCrashGauntlet kills bonsaid at each durability seam mid-storm.
func TestCrashGauntlet(t *testing.T) {
	if testing.Short() {
		t.Skip("crash gauntlet spawns child daemons")
	}
	bin := buildBonsaid(t)
	scenarios := []struct {
		name  string
		crash string
		extra []string
	}{
		// Die before the 6th journal write: the in-flight delta must not be
		// acked and must not resurface.
		{"append", "journal.append@6", nil},
		// Die before the 4th fsync: the record hit the page cache (kill -9
		// is not power loss), so it survives — but its ack never went out.
		{"fsync", "journal.fsync@4", nil},
		// Die between writing checkpoint.tmp and renaming it (fire #1 is the
		// base checkpoint at open): the old checkpoint plus the full journal
		// must still reconstruct the state the checkpoint tried to capture.
		{"ckpt-rename", "checkpoint.rename@2", []string{"-checkpoint-every", "4"}},
		// Die after journal+fsync but before the engine publishes the new
		// state: the delta was durable but never acked; recovery applies it.
		{"apply-swap", "apply.swap@5", nil},
		// fsync never + kill -9: process death loses nothing the kernel
		// already has.
		{"fsync-never", "journal.append@8", []string{"-fsync", "never"}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			runCrashScenario(t, bin, sc.crash, sc.extra)
		})
	}
}

func runCrashScenario(t *testing.T, bin, crash string, extra []string) {
	dataDir := t.TempDir()
	ctx := context.Background()
	d := startBonsaid(t, bin, dataDir, extra, crash)
	c := d.client()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	if err := c.OpenNetwork(ctx, "ft", net); err != nil {
		t.Fatalf("open: %v", err)
	}
	deltas := stormDeltas(net, 12)
	acked := 0
	for _, dl := range deltas {
		actx, cancel := context.WithTimeout(ctx, 15*time.Second)
		_, err := c.Apply(actx, "ft", dl)
		cancel()
		if err != nil {
			break
		}
		acked++
	}
	// The kill may fire asynchronously (background checkpointer); wait for
	// the corpse either way.
	d.waitExit(t, 30*time.Second)

	ck, tail, info := durableView(t, dataDir, "ft")
	if info.Gap {
		t.Fatalf("crash alone produced a gap: %+v", info)
	}
	lastDurable := ck.Seq
	if info.LastSeq > lastDurable {
		lastDurable = info.LastSeq
	}
	// Ack contract: everything acknowledged is durable...
	if lastDurable < uint64(acked) {
		t.Fatalf("acked %d deltas but only %d are durable", acked, lastDurable)
	}
	// ...and byte-identical to what was sent.
	for _, sd := range tail {
		if sd.seq <= uint64(acked) && !reflect.DeepEqual(sd.d, deltas[sd.seq-1]) {
			t.Fatalf("durable delta %d differs from sent: %+v vs %+v", sd.seq, sd.d, deltas[sd.seq-1])
		}
	}
	ref := referenceEngine(t, ck, tail)

	d2 := startBonsaid(t, bin, dataDir, extra, "")
	c2 := d2.client()
	st, err := c2.Stats(ctx, "ft")
	if err != nil || st.Journal == nil || st.Journal.Recovery == nil {
		t.Fatalf("recovered stats: %+v, %v", st, err)
	}
	rec := st.Journal.Recovery
	if rec.ReplayedDeltas != len(tail) || rec.CheckpointSeq != ck.Seq {
		t.Fatalf("recovery info %+v, want %d replayed from checkpoint %d", rec, len(tail), ck.Seq)
	}
	if len(tail) > 0 {
		exp, err := c2.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		want := fmt.Sprintf(`bonsaid_journal_replayed_deltas_total{tenant="ft"} %d`, len(tail))
		if !strings.Contains(exp, want) {
			t.Fatalf("metrics missing %q:\n%s", want, grepLines(exp, "journal"))
		}
	}
	compareRecovered(t, ctx, ref, c2, "ft")

	// The recovered daemon is a full citizen: it takes new deltas and drains
	// cleanly (sealing the journal for the next generation).
	if _, err := c2.Apply(ctx, "ft", bonsai.Delta{
		LinkDown: []bonsai.LinkRef{{A: net.Links[0].A, B: net.Links[0].B}},
	}); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	d2.waitExit(t, 30*time.Second)
}

// lastSegment returns the newest wal segment of a tenant dir.
func lastSegment(t *testing.T, dataDir, name string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dataDir, url.PathEscape(name), "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// runTamperScenario runs an 8-delta storm to completion, SIGKILLs the
// daemon, lets the caller damage the journal, and verifies recovery degrades
// exactly as ReplayDir predicts — stopping at the last valid record and
// reporting the damage — rather than refusing to start or inventing state.
func runTamperScenario(t *testing.T, tamper func(t *testing.T, seg string)) {
	bin := buildBonsaid(t)
	dataDir := t.TempDir()
	ctx := context.Background()
	d := startBonsaid(t, bin, dataDir, nil, "")
	c := d.client()
	net := netgen.Fattree(4, netgen.PolicyShortestPath)
	if err := c.OpenNetwork(ctx, "ft", net); err != nil {
		t.Fatalf("open: %v", err)
	}
	for i, dl := range stormDeltas(net, 8) {
		if _, err := c.Apply(ctx, "ft", dl); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	d.cmd.Process.Kill()
	d.waitExit(t, 30*time.Second)

	tamper(t, lastSegment(t, dataDir, "ft"))

	ck, tail, info := durableView(t, dataDir, "ft")
	if !info.Truncated {
		t.Fatalf("tamper went undetected: %+v", info)
	}
	if len(tail) >= 8 {
		t.Fatalf("tamper lost nothing? %d records survived", len(tail))
	}
	ref := referenceEngine(t, ck, tail)

	d2 := startBonsaid(t, bin, dataDir, nil, "")
	c2 := d2.client()
	st, err := c2.Stats(ctx, "ft")
	if err != nil || st.Journal == nil || st.Journal.Recovery == nil {
		t.Fatalf("recovered stats: %+v, %v", st, err)
	}
	rec := st.Journal.Recovery
	if !rec.Truncated || rec.ReplayedDeltas != len(tail) || rec.DroppedBytes == 0 {
		t.Fatalf("recovery info %+v, want truncated with %d replayed", rec, len(tail))
	}
	compareRecovered(t, ctx, ref, c2, "ft")
	d2.cmd.Process.Signal(syscall.SIGTERM)
	d2.waitExit(t, 30*time.Second)
}

// TestCrashGauntletTornTail cuts the last journal record mid-payload, the
// signature a crash leaves when a write straddled the kill.
func TestCrashGauntletTornTail(t *testing.T) {
	if testing.Short() {
		t.Skip("crash gauntlet spawns child daemons")
	}
	runTamperScenario(t, func(t *testing.T, seg string) {
		fi, err := os.Stat(seg)
		if err != nil || fi.Size() < 6 {
			t.Fatalf("stat %s: %v", seg, err)
		}
		if err := os.Truncate(seg, fi.Size()-5); err != nil {
			t.Fatalf("truncate: %v", err)
		}
	})
}

// TestCrashGauntletCorruptRecord flips one byte mid-journal (bit rot, bad
// sector): CRC catches it and recovery stops at the last valid prefix.
func TestCrashGauntletCorruptRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("crash gauntlet spawns child daemons")
	}
	runTamperScenario(t, func(t *testing.T, seg string) {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatalf("read %s: %v", seg, err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatalf("write back: %v", err)
		}
	})
}
