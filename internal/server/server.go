// Package server is the bonsaid daemon core: a multi-tenant HTTP/JSON API
// over bonsai engines. Each named tenant wraps one engine; all tenants
// share a global abstraction-memory pool with per-tenant budget floors, and
// every request passes admission control (per-tenant concurrent-query
// quotas, bounded apply queues) so an overloaded tenant degrades with 429s
// and 503s instead of taking the process down. Shutdown is a graceful
// drain: stop admitting, let in-flight work finish, close every engine.
//
// The API (all request/response bodies are JSON):
//
//	GET    /healthz                       liveness probe
//	GET    /version                       build metadata
//	GET    /metrics                       Prometheus text exposition
//	GET    /v1/tenants                    list tenants
//	PUT    /v1/tenants/{name}             open (body: network text)
//	GET    /v1/tenants/{name}             tenant info
//	DELETE /v1/tenants/{name}             close
//	POST   /v1/tenants/{name}/apply       one Delta -> ApplyReport
//	POST   /v1/tenants/{name}/replay      JSONL Deltas -> ApplyStreamReport
//	POST   /v1/tenants/{name}/verify      VerifyRequest -> Report
//	POST   /v1/tenants/{name}/compress    ClassSelector -> CompressReport
//	GET    /v1/tenants/{name}/reach       ?src=&dest=[&concrete=1]
//	GET    /v1/tenants/{name}/routes      ?dest=
//	GET    /v1/tenants/{name}/roles       [?no_erase=1][&no_statics=1]
//	GET    /v1/tenants/{name}/stats       cache + apply-stream snapshot
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bonsai"
	"bonsai/internal/journal"
)

// Config sizes the daemon's shared resources and per-tenant quotas. The
// zero value serves: no global budget (every store unbounded), no tenant
// cap, single-query tenants, depth-1 apply queues, no idle eviction.
type Config struct {
	// GlobalBudget caps retained abstraction bytes across ALL tenants; 0
	// disables the shared pool. TenantFloor is the per-tenant budget floor:
	// cross-tenant eviction pressure never shrinks a tenant below it.
	GlobalBudget int64
	TenantFloor  int64
	// MaxTenants bounds concurrently open tenants (0 = unbounded).
	MaxTenants int
	// MaxQueriesPerTenant bounds concurrently admitted queries per tenant;
	// excess fail fast with 429. ApplyQueueDepth bounds queued deltas per
	// tenant; excess fail fast with 503 + Retry-After.
	MaxQueriesPerTenant int
	ApplyQueueDepth     int
	// IdleTTL closes tenants unused this long (0 = never).
	IdleTTL time.Duration
	// EngineOptions is appended to every tenant's bonsai.Open call.
	EngineOptions []bonsai.Option

	// DataDir enables durability: each tenant gets a write-ahead delta
	// journal plus checkpoint under DataDir/<escaped-name>, every admitted
	// delta is journaled before it is applied, and New recovers all
	// journaled tenants from disk. Empty disables persistence.
	DataDir string
	// Fsync is the journal fsync policy (default journal.SyncAlways);
	// FsyncInterval is the flush period under SyncInterval (default 100ms).
	Fsync         journal.SyncPolicy
	FsyncInterval time.Duration
	// CheckpointEvery checkpoints a tenant once its journal tail reaches
	// this many records (0 = default 4096, negative = never in the
	// background; tenants still checkpoint when sealed on drain/eviction).
	CheckpointEvery int
}

// Server is the daemon core: registry + pool + metrics behind an
// http.Handler. Create with New, serve with ServeHTTP, stop with Drain.
type Server struct {
	cfg     Config
	pool    *bonsai.SharedPool
	reg     *registry
	metrics *metricSet
	mux     *http.ServeMux

	janitorStop chan struct{}
	janitorDone chan struct{}
	drainOnce   sync.Once
}

// New builds a Server from cfg and starts its idle-eviction janitor.
func New(cfg Config) *Server {
	var pool *bonsai.SharedPool
	if cfg.GlobalBudget > 0 {
		pool = bonsai.NewSharedPool(cfg.GlobalBudget)
	}
	s := &Server{
		cfg:         cfg,
		pool:        pool,
		reg:         newRegistry(cfg, pool),
		metrics:     newMetricSet(),
		mux:         http.NewServeMux(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.routes()
	if cfg.DataDir != "" {
		// Recover journaled tenants before serving: requests arriving after
		// New returns see every tenant that survived the previous process.
		s.reg.recoverAll(s.metrics)
	}
	go s.janitor()
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting requests, waits for in-flight work to finish, and
// closes every tenant engine. Safe to call more than once.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.janitorStop)
		<-s.janitorDone
		s.reg.drain()
	})
}

// janitor periodically evicts idle tenants.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.cfg.IdleTTL <= 0 {
		<-s.janitorStop
		return
	}
	period := s.cfg.IdleTTL / 4
	if period < time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			for _, name := range s.reg.idleNames(s.cfg.IdleTTL) {
				// Keep data: eviction reclaims memory, not history.
				if s.reg.close(name, false) == nil {
					s.metrics.dropTenant(name)
				}
			}
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /version", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, bonsai.Version())
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.mux.HandleFunc("GET /v1/tenants", s.instrument("list", s.handleList))
	s.mux.HandleFunc("PUT /v1/tenants/{name}", s.instrument("open", s.handleOpen))
	s.mux.HandleFunc("GET /v1/tenants/{name}", s.instrument("info", s.handleInfo))
	s.mux.HandleFunc("DELETE /v1/tenants/{name}", s.instrument("close", s.handleClose))

	s.mux.HandleFunc("POST /v1/tenants/{name}/apply", s.instrument("apply", s.handleApply))
	s.mux.HandleFunc("POST /v1/tenants/{name}/replay", s.instrument("replay", s.handleReplay))
	s.mux.HandleFunc("POST /v1/tenants/{name}/verify", s.instrument("verify", s.tenantQuery(s.handleVerify)))
	s.mux.HandleFunc("POST /v1/tenants/{name}/compress", s.instrument("compress", s.tenantQuery(s.handleCompress)))
	s.mux.HandleFunc("GET /v1/tenants/{name}/reach", s.instrument("reach", s.tenantQuery(s.handleReach)))
	s.mux.HandleFunc("GET /v1/tenants/{name}/routes", s.instrument("routes", s.tenantQuery(s.handleRoutes)))
	s.mux.HandleFunc("GET /v1/tenants/{name}/roles", s.instrument("roles", s.tenantQuery(s.handleRoles)))
	s.mux.HandleFunc("GET /v1/tenants/{name}/stats", s.instrument("stats", s.tenantQuery(s.handleStats)))
}

// instrument wraps a handler with drain admission and the latency
// histogram. The tenant label comes from the path ("-" for /v1/tenants).
func (s *Server) instrument(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			name = "-"
		}
		done, err := s.reg.admit()
		if err != nil {
			s.metrics.rejected.With(name, "draining").Inc()
			s.httpError(w, err)
			return
		}
		defer done()
		start := time.Now()
		h(w, r)
		s.metrics.reqSeconds.With(name, op).Observe(time.Since(start).Seconds())
	}
}

// tenantQuery resolves the tenant and admits the request against its
// concurrent-query quota before invoking h.
func (s *Server) tenantQuery(h func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		t, err := s.reg.get(name)
		if err != nil {
			s.httpError(w, err)
			return
		}
		if err := t.acquireQuery(); err != nil {
			if errors.Is(err, ErrQueryBusy) {
				s.metrics.rejected.With(name, "query_quota").Inc()
			}
			s.httpError(w, err)
			return
		}
		g := s.metrics.inflight.With(name)
		g.Add(1)
		defer func() {
			g.Add(-1)
			t.releaseQuery()
		}()
		h(w, r, t)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := make([]TenantInfo, 0)
	for _, name := range s.reg.names() {
		if t, err := s.reg.get(name); err == nil {
			infos = append(infos, s.reg.info(t))
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	net, err := bonsai.Parse(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		s.httpError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	t, err := s.reg.open(name, net)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.reg.info(t))
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	t, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.reg.info(t))
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.close(name, true); err != nil {
		s.httpError(w, err)
		return
	}
	s.metrics.dropTenant(name)
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	t, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	var d bonsai.Delta
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&d); err != nil {
		s.httpError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	rep, err := t.enqueueApply(r.Context(), d)
	if err != nil {
		if errors.Is(err, ErrApplyQueueFull) {
			s.metrics.rejected.With(t.name, "apply_queue").Inc()
		}
		s.httpError(w, err)
		return
	}
	s.metrics.recordApply(t, rep)
	writeJSON(w, http.StatusOK, rep)
}

// handleReplay streams JSONL deltas from the request body through
// Engine.ApplyStream. The engine's coalescer provides the backpressure: the
// body is read only as fast as rebuilds complete, so a fast client blocks
// on the socket rather than buffering server-side.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	t, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	var opts []bonsai.StreamApplyOption
	if v := r.URL.Query().Get("pending"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.httpError(w, fmt.Errorf("%w: bad pending %q", errBadRequest, v))
			return
		}
		opts = append(opts, bonsai.WithMaxPending(n))
	}
	if v := r.URL.Query().Get("staleness"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.httpError(w, fmt.Errorf("%w: bad staleness %q", errBadRequest, v))
			return
		}
		opts = append(opts, bonsai.WithMaxStaleness(d))
	}
	t.touch()

	// replayMu serialises with the tenant's apply-queue worker; the engine's
	// own applyMu would too, but holding replayMu keeps queue waits visible
	// (deltas stay queued rather than blocked inside the engine). It is
	// taken BEFORE the decoder starts so the decoder's journal appends can
	// never interleave with the worker's: journal order equals apply order.
	t.replayMu.Lock()
	var startSeq uint64
	if t.jrnl != nil {
		startSeq = t.jrnl.LastSeq()
	}

	deltas := make(chan bonsai.Delta)
	dec := json.NewDecoder(r.Body)
	decErr := make(chan error, 1)
	decDone := make(chan struct{})
	// streamDone unblocks the decoder if ApplyStream returns without
	// draining deltas (engine closed mid-stream via DELETE or eviction), so
	// the handler never wedges on decErr below. Deferred closes run LIFO:
	// decErr settles before deltas closes, so a completed stream implies a
	// settled decErr.
	streamDone := make(chan struct{})
	go func() {
		defer close(decDone)
		defer close(deltas)
		defer close(decErr)
		for {
			var d bonsai.Delta
			if err := dec.Decode(&d); err != nil {
				if !errors.Is(err, io.EOF) {
					decErr <- err
				}
				return
			}
			// Log-then-apply: the delta is journaled before the engine can
			// see it. A record the stream never gets to apply (client gone,
			// engine closed) is healed by the reconverge pass below — replay
			// is prefix-idempotent, so over-journaling is safe, silently
			// dropping an applied-but-unjournaled delta would not be.
			if _, jerr := t.journalDelta(d); jerr != nil {
				decErr <- jerr
				return
			}
			select {
			case deltas <- d:
				t.touch() // a replay outlasting IdleTTL is use, not idleness
			case <-streamDone:
				return
			case <-r.Context().Done():
				return
			}
		}
	}()

	rep, aerr := t.eng.ApplyStream(r.Context(), deltas, opts...)
	close(streamDone)
	if t.jrnl != nil {
		if aerr == nil {
			// Channel closed means the decoder journaled and delivered every
			// delta, and the stream flushed them all.
			t.appliedSeq.Store(t.jrnl.LastSeq())
		} else {
			// Aborted mid-stream: wait for the decoder to quiesce (it may be
			// mid-append), then re-apply the journal tail onto the live
			// engine so journaled-but-unapplied records land after all.
			<-decDone
			t.reconverge(r.Context(), startSeq)
		}
	}
	t.replayMu.Unlock()
	if t.jrnl != nil {
		t.maybeKickCheckpoint()
	}
	if aerr == nil {
		// A nil stream error means ApplyStream consumed deltas to close, so
		// the decoder already exited and decErr is settled; the non-blocking
		// read is belt-and-braces against future early-nil returns.
		select {
		case derr := <-decErr:
			switch {
			case derr == nil:
			case errors.Is(derr, errJournal):
				aerr = derr // server-side durability failure, not a client 400
			default:
				aerr = fmt.Errorf("%w: decoding delta stream: %v", errBadRequest, derr)
			}
		default:
		}
	}
	if rep != nil {
		t.editsReceived.Add(int64(rep.EditsReceived))
		t.editsApplied.Add(int64(rep.EditsApplied))
		s.metrics.invalidated.With(t.name).Add(int64(rep.Invalidated))
	}
	if aerr != nil {
		s.httpError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req bonsai.VerifyRequest
	if err := decodeOptionalBody(w, r, &req); err != nil {
		s.httpError(w, err)
		return
	}
	rep, err := t.eng.Verify(r.Context(), req)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request, t *tenant) {
	var sel bonsai.ClassSelector
	if err := decodeOptionalBody(w, r, &sel); err != nil {
		s.httpError(w, err)
		return
	}
	start := time.Now()
	st, err := t.eng.CompressStream(r.Context(), sel)
	if err != nil {
		s.httpError(w, err)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		// NDJSON: one {"row":...} per completed class, then a {"report":...}
		// trailer that carries any stream error so a truncated stream is
		// distinguishable from a completed one.
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		fl, _ := w.(http.Flusher)
		rows := 0
		for row := range st.Results() {
			if enc.Encode(map[string]any{"row": row}) != nil {
				break // client gone; the range-break path cancels the stream
			}
			rows++
			if fl != nil {
				fl.Flush()
			}
		}
		rep := st.Report()
		t.compressClasses.Add(int64(rep.ClassesCompressed))
		t.compressNs.Add(int64(rep.Duration))
		if err := st.Err(); err != nil && rows == 0 {
			s.httpError(w, err) // nothing written yet: full error response
			return
		}
		trailer := map[string]any{"report": rep}
		if err := st.Err(); err != nil {
			trailer["error"] = err.Error()
		}
		enc.Encode(trailer)
		return
	}
	for range st.Results() {
	}
	if err := st.Err(); err != nil {
		s.httpError(w, err)
		return
	}
	rep := st.Report()
	t.compressClasses.Add(int64(rep.ClassesCompressed))
	t.compressNs.Add(int64(time.Since(start)))
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request, t *tenant) {
	q := r.URL.Query()
	src, dest := q.Get("src"), q.Get("dest")
	if src == "" || dest == "" {
		s.httpError(w, fmt.Errorf("%w: src and dest required", errBadRequest))
		return
	}
	var res *bonsai.ReachResult
	var err error
	if q.Get("concrete") != "" {
		res, err = t.eng.ReachConcrete(r.Context(), src, dest)
	} else {
		res, err = t.eng.Reach(r.Context(), src, dest)
	}
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request, t *tenant) {
	dest := r.URL.Query().Get("dest")
	if dest == "" {
		s.httpError(w, fmt.Errorf("%w: dest required", errBadRequest))
		return
	}
	rep, err := t.eng.Routes(r.Context(), dest)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleRoles(w http.ResponseWriter, r *http.Request, t *tenant) {
	q := r.URL.Query()
	rep, err := t.eng.Roles(r.Context(), bonsai.RolesRequest{
		NoErase:   q.Get("no_erase") != "",
		NoStatics: q.Get("no_statics") != "",
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// TenantStats is the /stats wire shape. Journal is nil for ephemeral
// tenants (no -data-dir).
type TenantStats struct {
	Name    string            `json:"name"`
	Cache   bonsai.CacheStats `json:"cache"`
	Apply   bonsai.ApplyStats `json:"apply"`
	Journal *JournalStats     `json:"journal,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request, t *tenant) {
	writeJSON(w, http.StatusOK, TenantStats{
		Name:    t.name,
		Cache:   t.eng.Stats(),
		Apply:   t.eng.ApplyStats(),
		Journal: t.journalStats(),
	})
}

// errBadRequest tags client errors for the 400 mapping.
var errBadRequest = errors.New("bad request")

// decodeOptionalBody decodes a JSON body into v, treating an empty body as
// the zero value.
func decodeOptionalBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// httpError maps a registry/engine error to a status code and JSON body.
// Overload signals carry Retry-After so well-behaved clients back off.
func (s *Server) httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrTenantNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTenantExists):
		code = http.StatusConflict
	case errors.Is(err, ErrQueryBusy), errors.Is(err, ErrTooManyTenants):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrApplyQueueFull), errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, errBadRequest):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
