// Package ingest pumps a stream of updates into batched flushes with an
// explicit robustness contract: backpressure (the source channel is read
// only between flushes, so producers block while a flush is in progress),
// bounded staleness (a pending-count cap or a wall-clock window forces a
// flush), and single-goroutine operation (add and flush callbacks never run
// concurrently). The package is generic over the update type; the engine
// instantiates it with Delta and a coalescing add callback.
package ingest

import (
	"context"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the Stop channel fires before the
// source is exhausted. Callers typically map it to their own shutdown
// error.
var ErrStopped = errors.New("ingest: stopped")

// FlushReason says why a batch was flushed.
type FlushReason int

const (
	// FlushDrain: the source had no more updates immediately available.
	FlushDrain FlushReason = iota
	// FlushPending: MaxPending updates accumulated.
	FlushPending
	// FlushStale: the MaxStaleness window expired with updates pending.
	FlushStale
	// FlushClose: the source channel closed with updates pending.
	FlushClose
)

// String names the reason for logs and reports.
func (r FlushReason) String() string {
	switch r {
	case FlushDrain:
		return "drain"
	case FlushPending:
		return "pending"
	case FlushStale:
		return "stale"
	case FlushClose:
		return "close"
	}
	return "unknown"
}

// Options tunes one Run.
type Options struct {
	// MaxPending forces a flush once this many updates are batched.
	// Zero or negative means no count bound.
	MaxPending int
	// MaxStaleness opens a gathering window: after the first update of a
	// batch arrives, Run keeps reading for up to this long before
	// flushing, trading staleness for coalescing opportunity. Zero means
	// flush as soon as the source is momentarily empty.
	MaxStaleness time.Duration
	// Stop aborts the run (returning ErrStopped) without flushing; used
	// for owner shutdown where the flush target no longer exists.
	Stop <-chan struct{}
	// OnPending, when set, observes the batched-update count after every
	// accepted update and every flush (with 0). It runs on the pump
	// goroutine, so it must be cheap and non-blocking.
	OnPending func(n int)
}

// Stats summarizes one Run.
type Stats struct {
	// Received counts updates read from the source; Rejected counts those
	// the add callback refused.
	Received int
	Rejected int
	// Batches counts flushes, split by reason below.
	Batches      int
	FlushDrain   int
	FlushPending int
	FlushStale   int
	FlushClose   int
	// MaxPending is the largest batch observed (accepted updates between
	// two flushes) — the high-water queue depth.
	MaxPending int
}

// Run reads updates from src until the channel closes, the context is
// cancelled, or Stop fires. Each update is offered to add (an error counts
// it rejected and otherwise ignores it); accepted updates accumulate until
// a flush condition holds, then flush runs with the reason and the batch
// size. A flush error aborts the run. On a clean close, any pending batch
// is flushed with FlushClose before returning. Context cancellation and
// Stop abandon the pending batch: the flush target is assumed to be
// shutting down with the caller.
func Run[D any](ctx context.Context, src <-chan D, opts Options, add func(D) error, flush func(reason FlushReason, batched int) error) (Stats, error) {
	var st Stats
	pending := 0
	observe := func() {
		if opts.OnPending != nil {
			opts.OnPending(pending)
		}
	}
	tryAdd := func(d D) {
		st.Received++
		if err := add(d); err != nil {
			st.Rejected++
			return
		}
		pending++
		if pending > st.MaxPending {
			st.MaxPending = pending
		}
		observe()
	}
	doFlush := func(r FlushReason) error {
		st.Batches++
		switch r {
		case FlushDrain:
			st.FlushDrain++
		case FlushPending:
			st.FlushPending++
		case FlushStale:
			st.FlushStale++
		case FlushClose:
			st.FlushClose++
		}
		n := pending
		pending = 0
		err := flush(r, n)
		observe()
		return err
	}

	for {
		// Wait for the first update of the next batch.
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-opts.Stop:
			return st, ErrStopped
		case d, ok := <-src:
			if !ok {
				return st, nil
			}
			tryAdd(d)
		}
		if pending == 0 {
			continue // sole update was rejected; nothing to gather for
		}

		var timer *time.Timer
		var window <-chan time.Time
		if opts.MaxStaleness > 0 {
			timer = time.NewTimer(opts.MaxStaleness)
			window = timer.C
		}
		stopTimer := func() {
			if timer != nil {
				timer.Stop()
				timer = nil
			}
		}

	gather:
		for {
			if opts.MaxPending > 0 && pending >= opts.MaxPending {
				stopTimer()
				if err := doFlush(FlushPending); err != nil {
					return st, err
				}
				break gather
			}
			if window == nil {
				// No staleness window: keep reading only while updates
				// are immediately available, then flush.
				select {
				case d, ok := <-src:
					if !ok {
						if err := doFlush(FlushClose); err != nil {
							return st, err
						}
						return st, nil
					}
					tryAdd(d)
					continue
				default:
				}
				if err := doFlush(FlushDrain); err != nil {
					return st, err
				}
				break gather
			}
			select {
			case <-ctx.Done():
				stopTimer()
				return st, ctx.Err()
			case <-opts.Stop:
				stopTimer()
				return st, ErrStopped
			case <-window:
				timer = nil
				if err := doFlush(FlushStale); err != nil {
					return st, err
				}
				break gather
			case d, ok := <-src:
				if !ok {
					stopTimer()
					if err := doFlush(FlushClose); err != nil {
						return st, err
					}
					return st, nil
				}
				tryAdd(d)
			}
		}
	}
}
