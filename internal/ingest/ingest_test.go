package ingest

import (
	"context"
	"errors"
	"testing"
	"time"
)

type flushRec struct {
	reason  FlushReason
	batched int
}

func collect(t *testing.T, src <-chan int, opts Options) (Stats, []flushRec, error) {
	t.Helper()
	var flushes []flushRec
	st, err := Run(context.Background(), src, opts,
		func(int) error { return nil },
		func(r FlushReason, n int) error {
			flushes = append(flushes, flushRec{r, n})
			return nil
		})
	return st, flushes, err
}

func TestRunDrainsAndFlushesOnClose(t *testing.T) {
	src := make(chan int, 8)
	for i := 0; i < 5; i++ {
		src <- i
	}
	close(src)
	st, flushes, err := collect(t, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 5 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, f := range flushes {
		total += f.batched
	}
	if total != 5 {
		t.Fatalf("flushed %d updates, want 5 (%v)", total, flushes)
	}
	// All five are buffered, so the drain loop batches them into one
	// close-flush.
	if len(flushes) != 1 || flushes[0].reason != FlushClose {
		t.Fatalf("flushes = %v, want single close flush", flushes)
	}
}

func TestRunMaxPendingForcesFlush(t *testing.T) {
	src := make(chan int, 32)
	for i := 0; i < 10; i++ {
		src <- i
	}
	close(src)
	st, flushes, err := collect(t, src, Options{MaxPending: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxPending > 3 {
		t.Fatalf("queue depth %d exceeded MaxPending", st.MaxPending)
	}
	if st.FlushPending != 3 || st.FlushClose != 1 {
		t.Fatalf("stats = %+v, want 3 pending flushes (3+3+3) and 1 close flush (1)", st)
	}
	want := []flushRec{{FlushPending, 3}, {FlushPending, 3}, {FlushPending, 3}, {FlushClose, 1}}
	for i, f := range flushes {
		if f != want[i] {
			t.Fatalf("flushes = %v, want %v", flushes, want)
		}
	}
}

func TestRunStalenessWindowGathers(t *testing.T) {
	src := make(chan int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			src <- i
			time.Sleep(2 * time.Millisecond)
		}
		close(src)
	}()
	st, flushes, err := collect(t, src, Options{MaxStaleness: 250 * time.Millisecond})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	// With a generous window and a fast producer, everything lands in one
	// batch (flushed at close, since the producer finishes first).
	if st.Batches != 1 || len(flushes) != 1 || flushes[0].batched != 4 {
		t.Fatalf("stats %+v flushes %v, want one batch of 4", st, flushes)
	}
}

func TestRunStalenessExpiryFlushes(t *testing.T) {
	src := make(chan int)
	go func() { src <- 1 }() // one update, then the channel stays open
	var flushed = make(chan flushRec, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		Run(ctx, src, Options{MaxStaleness: 5 * time.Millisecond},
			func(int) error { return nil },
			func(r FlushReason, n int) error {
				flushed <- flushRec{r, n}
				return nil
			})
	}()
	select {
	case f := <-flushed:
		if f.reason != FlushStale || f.batched != 1 {
			t.Fatalf("flush = %+v, want stale flush of 1", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("staleness window never flushed")
	}
}

func TestRunStopAbandonsPending(t *testing.T) {
	src := make(chan int)
	stop := make(chan struct{})
	go func() {
		src <- 1
		close(stop)
	}()
	st, err := Run(context.Background(), src, Options{MaxStaleness: time.Minute, Stop: stop},
		func(int) error { return nil },
		func(FlushReason, int) error {
			t.Error("flush must not run after stop")
			return nil
		})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if st.Received != 1 || st.Batches != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunContextCancelAbandonsPending(t *testing.T) {
	src := make(chan int)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		src <- 1
		cancel()
	}()
	_, err := Run(ctx, src, Options{MaxStaleness: time.Minute},
		func(int) error { return nil },
		func(FlushReason, int) error {
			t.Error("flush must not run after cancel")
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunRejectedUpdatesDoNotBatch(t *testing.T) {
	src := make(chan int, 8)
	for i := 0; i < 6; i++ {
		src <- i
	}
	close(src)
	var flushes []flushRec
	st, err := Run(context.Background(), src, Options{},
		func(d int) error {
			if d%2 == 1 {
				return errors.New("odd")
			}
			return nil
		},
		func(r FlushReason, n int) error {
			flushes = append(flushes, flushRec{r, n})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 6 || st.Rejected != 3 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, f := range flushes {
		total += f.batched
	}
	if total != 3 {
		t.Fatalf("flushed %d accepted updates, want 3", total)
	}
}

func TestRunFlushErrorAborts(t *testing.T) {
	src := make(chan int, 8)
	src <- 1
	boom := errors.New("boom")
	_, err := Run(context.Background(), src, Options{},
		func(int) error { return nil },
		func(FlushReason, int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want flush error", err)
	}
}

func TestRunBackpressure(t *testing.T) {
	// The pump must not read ahead while a flush is running: flushes are
	// synchronous on the pump goroutine, so a producer's send into an
	// unbuffered channel cannot complete until the in-flight flush returns.
	src := make(chan int)
	inFlush := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), src, Options{},
			func(int) error { return nil },
			func(FlushReason, int) error {
				inFlush <- struct{}{}
				<-release
				return nil
			})
		done <- err
	}()
	src <- 1  // accepted; the empty channel cuts the batch
	<-inFlush // flush of batch 1 is now blocked
	sent := make(chan struct{})
	go func() {
		src <- 2 // must block: the pump is inside flush, not reading
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("send completed while a flush was in progress; the pump read ahead")
	case <-time.After(20 * time.Millisecond):
	}
	release <- struct{}{} // finish batch 1; the pump now reads 2
	<-sent
	close(src)
	<-inFlush // batch 2 (drain- or close-cut, depending on timing)
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
