// Package metrics is a dependency-free Prometheus-style instrumentation
// layer: counters, gauges and histograms, optionally labeled, collected in a
// Registry that renders the text exposition format (version 0.0.4) for a
// /metrics endpoint. It implements exactly the subset bonsaid needs —
// monotonic counters, set/func gauges, fixed-bucket histograms and
// label-vector variants with dynamic label values (tenants come and go) —
// with lock-free hot paths: a counter increment is one atomic add, a
// histogram observation is two adds and a CAS loop on the sum.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. Read is atomic; Set/Add are
// safe from any goroutine.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; fine for low-rate gauges).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets, with a running sum
// and count, matching Prometheus histogram semantics (<basename>_bucket with
// le labels, _sum, _count).
type Histogram struct {
	bounds []float64 // upper bounds, sorted ascending; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets builds n exponential bucket bounds starting at start and
// multiplying by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or more label dimensions.
type family struct {
	name, help string
	kind       metricKind
	labels     []string
	bounds     []float64 // histogram families

	mu       sync.Mutex
	children map[string]*child // label-values key -> child
	order    []string          // insertion order, for stable output
	gaugeFn  func() float64    // unlabeled callback gauge
}

type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// Registry collects metric families and renders them.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byN  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byN[name]; ok {
		return f // registration is idempotent by name
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		bounds: bounds, children: make(map[string]*child)}
	r.fams = append(r.fams, f)
	r.byN[name] = f
	return f
}

// key joins label values; \xff never appears in sane label values.
func key(vals []string) string { return strings.Join(vals, "\xff") }

func (f *family) child(vals []string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := key(vals)
	c, ok := f.children[k]
	if !ok {
		c = &child{labelVals: append([]string(nil), vals...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.hist = newHistogram(f.bounds)
		}
		f.children[k] = c
		f.order = append(f.order, k)
	}
	return c
}

// deleteChild removes one label combination (a closed tenant).
func (f *family) deleteChild(vals []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := key(vals)
	if _, ok := f.children[k]; !ok {
		return
	}
	delete(f.children, k)
	for i, o := range f.order {
		if o == k {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil).counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram with the given
// bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, bounds).child(nil).hist
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(vals ...string) *Counter { return v.f.child(vals).counter }

// Delete drops the series for the given label values.
func (v *CounterVec) Delete(vals ...string) { v.f.deleteChild(vals) }

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.f.child(vals).gauge }

// Delete drops the series for the given label values.
func (v *GaugeVec) Delete(vals ...string) { v.f.deleteChild(vals) }

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.f.child(vals).hist }

// Delete drops the series for the given label values.
func (v *HistogramVec) Delete(vals ...string) { v.f.deleteChild(vals) }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labelString renders {k1="v1",...} (with an optional extra pair appended),
// or "" when empty.
func labelString(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, n, escapeLabel(vals[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	children := make([]*child, 0, len(f.order))
	for _, k := range f.order {
		children = append(children, f.children[k])
	}
	fn := f.gaugeFn
	f.mu.Unlock()
	if len(children) == 0 && fn == nil {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(fn()))
		return err
	}
	for _, c := range children {
		ls := labelString(f.labels, c.labelVals, "", "")
		switch f.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, c.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, fmtFloat(c.gauge.Value())); err != nil {
				return err
			}
		case kindHistogram:
			h := c.hist
			cum := int64(0)
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				le := fmtFloat(ub)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, labelString(f.labels, c.labelVals, "le", le), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, c.labelVals, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, fmtFloat(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
