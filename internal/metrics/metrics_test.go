package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "total requests")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("depth", "queue depth")
	g.Set(2)
	g.Add(1.5)
	r.GaugeFunc("live_bytes", "live bytes", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 4",
		"# TYPE depth gauge",
		"depth 3.5",
		"live_bytes 42",
		"# HELP reqs_total total requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabelsAndDelete(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "ops", "tenant", "op")
	v.With("a", "reach").Add(2)
	v.With("b", "verify").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `ops_total{tenant="a",op="reach"} 2`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `ops_total{tenant="b",op="verify"} 1`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	v.Delete("a", "reach")
	b.Reset()
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), `tenant="a"`) {
		t.Errorf("deleted series still exposed:\n%s", b.String())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.5 || got > 5.6 {
		t.Fatalf("sum = %v", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	if h.counts[0].Load() != 1 {
		t.Fatalf("observation on boundary fell in bucket %v", h.counts)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := b[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "", "k")
	hv := r.HistogramVec("h_seconds", "", []float64{0.5}, "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := string(rune('a' + i%3))
			for j := 0; j < 1000; j++ {
				v.With(k).Inc()
				hv.With(k).Observe(float64(j % 2))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				var b strings.Builder
				r.WritePrometheus(&b)
			}
		}
	}()
	wg.Wait()
	close(done)
	total := int64(0)
	for _, k := range []string{"a", "b", "c"} {
		total += v.With(k).Value()
	}
	if total != 8000 {
		t.Fatalf("lost increments: %d", total)
	}
}
