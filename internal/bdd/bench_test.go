package bdd_test

import (
	"testing"

	"bonsai/internal/bdd"
	"bonsai/internal/benchrun"
)

// The adder circuit is defined once in internal/benchrun (BuildAdder) so
// these micro-benchmarks and the JSON baseline's bdd/adder64 case measure
// the same workload.

// BenchmarkITE measures the ITE hot path: rebuilding a carry chain expressed
// purely through ITE calls on a warm manager, so nearly every call is a
// cache-and-unique-table exercise.
func BenchmarkITE(b *testing.B) {
	const nbits = 64
	m := bdd.New(2 * nbits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		carry := bdd.False
		for j := 0; j < nbits; j++ {
			x, y := m.Var(2*j), m.Var(2*j+1)
			// carry' = ITE(x, ITE(y, 1, carry), ITE(y, carry, 0))
			carry = m.ITE(x, m.ITE(y, bdd.True, carry), m.ITE(y, carry, bdd.False))
		}
		if carry == bdd.False {
			b.Fatal("carry collapsed")
		}
	}
}

// BenchmarkApply2 measures the binary-apply hot path (And/Or/Xor) via the
// full ripple-carry adder on a warm manager.
func BenchmarkApply2(b *testing.B) {
	const nbits = 64
	m := bdd.New(2 * nbits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, carry := benchrun.BuildAdder(m, nbits); carry == bdd.False {
			b.Fatal("carry collapsed")
		}
	}
}

// BenchmarkAdderColdManager measures the whole stack — manager construction,
// unique-table growth, operation caches and a SatCount — with nothing warm,
// the shape of work NewCompiler-per-query verification performs.
func BenchmarkAdderColdManager(b *testing.B) {
	const nbits = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bdd.New(2 * nbits)
		_, carry := benchrun.BuildAdder(m, nbits)
		if m.SatCount(carry) == 0 {
			b.Fatal("unsatisfiable carry")
		}
	}
}

// BenchmarkUniqueTableGrowth measures mk throughput while the unique table
// repeatedly doubles: a long disjunction of distinct minterms creates fresh
// nodes at every step.
func BenchmarkUniqueTableGrowth(b *testing.B) {
	const nvars = 24
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bdd.New(nvars)
		f := bdd.False
		for t := 0; t < 1<<12; t++ {
			minterm := bdd.True
			for v := 0; v < nvars; v += 2 {
				if t&(1<<(v/2)) != 0 {
					minterm = m.And(minterm, m.Var(v))
				} else {
					minterm = m.And(minterm, m.NVar(v))
				}
			}
			f = m.Or(f, minterm)
		}
		if f == bdd.False {
			b.Fatal("disjunction collapsed")
		}
		b.ReportMetric(float64(m.Size()), "nodes")
	}
}

// BenchmarkSatCount measures the lossy sat-count cache on a wide diagram.
func BenchmarkSatCount(b *testing.B) {
	const nbits = 48
	m := bdd.New(2 * nbits)
	_, carry := benchrun.BuildAdder(m, nbits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.SatCount(carry) == 0 {
			b.Fatal("unsatisfiable carry")
		}
	}
}
