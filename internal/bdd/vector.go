package bdd

// Vec is a little-endian vector of BDD functions, used to represent
// bit-vector valued outputs (such as the 32-bit local-preference in a BGP
// policy relation, paper Figure 10) symbolically.
type Vec []Node

// ConstVec returns a width-bit vector holding the constant v
// (least-significant bit first).
func (m *Manager) ConstVec(v uint64, width int) Vec {
	out := make(Vec, width)
	for i := 0; i < width; i++ {
		out[i] = m.Const(v&(1<<uint(i)) != 0)
	}
	return out
}

// VarVec returns the vector of variables vars, each as its own BDD.
func (m *Manager) VarVec(vars []int) Vec {
	out := make(Vec, len(vars))
	for i, v := range vars {
		out[i] = m.Var(v)
	}
	return out
}

// ITEVec returns the element-wise if-then-else of two vectors under guard f.
func (m *Manager) ITEVec(f Node, g, h Vec) Vec {
	if len(g) != len(h) {
		panic("bdd: ITEVec width mismatch")
	}
	out := make(Vec, len(g))
	for i := range g {
		out[i] = m.ITE(f, g[i], h[i])
	}
	return out
}

// EqVec returns the BDD asserting element-wise equality of a and b.
func (m *Manager) EqVec(a, b Vec) Node {
	if len(a) != len(b) {
		panic("bdd: EqVec width mismatch")
	}
	r := True
	for i := range a {
		r = m.And(r, m.Equiv(a[i], b[i]))
	}
	return r
}

// EqConst returns the BDD asserting that the variables vars, read as a
// little-endian bit-vector, equal the constant v.
func (m *Manager) EqConst(vars []int, v uint64) Node {
	r := True
	for i, x := range vars {
		if v&(1<<uint(i)) != 0 {
			r = m.And(r, m.Var(x))
		} else {
			r = m.And(r, m.NVar(x))
		}
	}
	return r
}

// VecValue reads a concrete little-endian value out of a constant vector.
// It reports ok=false if any element is non-constant.
func VecValue(v Vec) (uint64, bool) {
	var out uint64
	for i, n := range v {
		switch n {
		case True:
			out |= 1 << uint(i)
		case False:
		default:
			return 0, false
		}
	}
	return out, true
}
