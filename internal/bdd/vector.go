package bdd

// Vec is a little-endian vector of BDD functions, used to represent
// bit-vector valued outputs (such as the 32-bit local-preference in a BGP
// policy relation, paper Figure 10) symbolically.
//
// The vector operators (ITEVec, AndVec, EqVec) are batched: one recursion
// walks the whole vector, resolving terminals and probing the op caches per
// element but expanding the shared guard / variable level once per vector
// instead of once per element, and deduplicating identical element pairs
// within the batch. Because nodes are canonical, batched results are
// node-identical to the element-wise loops.
type Vec []Node

// ConstVec returns a width-bit vector holding the constant v
// (least-significant bit first).
func (m *Manager) ConstVec(v uint64, width int) Vec {
	out := make(Vec, width)
	for i := 0; i < width; i++ {
		out[i] = m.Const(v&(1<<uint(i)) != 0)
	}
	return out
}

// VarVec returns the vector of variables vars, each as its own BDD.
func (m *Manager) VarVec(vars []int) Vec {
	out := make(Vec, len(vars))
	for i, v := range vars {
		out[i] = m.Var(v)
	}
	return out
}

// ITEVec returns the element-wise if-then-else of two vectors under guard
// f, computed in one batched recursion over the vector.
func (m *Manager) ITEVec(f Node, g, h Vec) Vec {
	if len(g) != len(h) {
		panic("bdd: ITEVec width mismatch")
	}
	out := make(Vec, len(g))
	m.iteVec(f, g, h, out)
	return out
}

func (m *Manager) iteVec(f Node, g, h, out Vec) {
	if f == True {
		copy(out, g)
		return
	}
	if f == False {
		copy(out, h)
		return
	}
	pend := make([]int32, 0, len(g))
	for i := range g {
		gi, hi := g[i], h[i]
		switch {
		case gi == hi:
			out[i] = gi
		case gi == True && hi == False:
			out[i] = f
		case gi == False && hi == True:
			out[i] = m.Not(f)
		default:
			e := &m.ite[mix3(f, gi, hi)&uint32(len(m.ite)-1)]
			if e.f == f && e.g == gi && e.h == hi {
				m.hits++
				out[i] = e.r
			} else {
				m.misses++
				pend = append(pend, int32(i))
			}
		}
	}
	if len(pend) == 0 {
		return
	}
	uniq, dup := dedupPairs(pend, g, h)
	k := len(uniq)
	lf := m.level[f]
	level := lf
	for _, i := range uniq {
		if lg := m.level[g[i]]; lg < level {
			level = lg
		}
		if lh := m.level[h[i]]; lh < level {
			level = lh
		}
	}
	flo, fhi := f, f
	if lf == level {
		flo, fhi = unpack(m.lohi[f])
	}
	buf := make(Vec, 6*k)
	glo, ghi := buf[:k], buf[k:2*k]
	hlo, hhi := buf[2*k:3*k], buf[3*k:4*k]
	rlo, rhi := buf[4*k:5*k], buf[5*k:6*k]
	for x, i := range uniq {
		gi, hi := g[i], h[i]
		glo[x], ghi[x] = gi, gi
		if m.level[gi] == level {
			glo[x], ghi[x] = unpack(m.lohi[gi])
		}
		hlo[x], hhi[x] = hi, hi
		if m.level[hi] == level {
			hlo[x], hhi[x] = unpack(m.lohi[hi])
		}
	}
	m.iteVec(flo, glo, hlo, rlo)
	m.iteVec(fhi, ghi, hhi, rhi)
	for x, i := range uniq {
		r := m.mk(level, rlo[x], rhi[x])
		e := &m.ite[mix3(f, g[i], h[i])&uint32(len(m.ite)-1)]
		if e.f != 0 {
			m.overwrites++
		}
		*e = iteEntry{f: f, g: g[i], h: h[i], r: r}
		out[i] = r
	}
	for _, d := range dup {
		out[d[0]] = out[d[1]]
	}
}

// AndVec returns the conjunction of scalar f with every element of v,
// computed in one batched recursion.
func (m *Manager) AndVec(f Node, v Vec) Vec {
	a := make(Vec, len(v))
	for i := range a {
		a[i] = f
	}
	out := make(Vec, len(v))
	m.applyVec(opAnd, a, v, out)
	return out
}

// EqVec returns the BDD asserting element-wise equality of a and b. The
// per-bit XNORs run as one batched recursion; the conjunction fold is
// inherently sequential.
func (m *Manager) EqVec(a, b Vec) Node {
	if len(a) != len(b) {
		panic("bdd: EqVec width mismatch")
	}
	if len(a) == 0 {
		return True
	}
	x := make(Vec, len(a))
	m.applyVec(opXor, a, b, x)
	r := True
	for _, xi := range x {
		r = m.And(r, m.Not(xi))
	}
	return r
}

// applyStep applies the terminal rules of a binary op, mirroring the
// scalar And/Or/Xor entry points.
func (m *Manager) applyStep(op uint8, a, b Node) (Node, bool) {
	switch op {
	case opAnd:
		switch {
		case a == False || b == False:
			return False, true
		case a == True:
			return b, true
		case b == True:
			return a, true
		case a == b:
			return a, true
		}
	case opOr:
		switch {
		case a == True || b == True:
			return True, true
		case a == False:
			return b, true
		case b == False:
			return a, true
		case a == b:
			return a, true
		}
	case opXor:
		switch {
		case a == False:
			return b, true
		case b == False:
			return a, true
		case a == True:
			return m.Not(b), true
		case b == True:
			return m.Not(a), true
		case a == b:
			return False, true
		}
	default:
		panic("bdd: unknown binary op")
	}
	return 0, false
}

// applyVec runs a binary op element-wise over two vectors in one batched
// recursion, sharing the op cache with the scalar entry points (operands
// are normalised the same way, so entries are interchangeable).
func (m *Manager) applyVec(op uint8, a, b, out Vec) {
	n := len(a)
	na := make(Vec, n)
	nb := make(Vec, n)
	pend := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		if r, ok := m.applyStep(op, x, y); ok {
			out[i] = r
			continue
		}
		if x > y {
			x, y = y, x
		}
		e := &m.apply2[mix3(x, y, Node(op))&uint32(len(m.apply2)-1)]
		if e.a == x && e.b == y && e.op == op {
			m.hits++
			out[i] = e.r
			continue
		}
		m.misses++
		na[i], nb[i] = x, y
		pend = append(pend, int32(i))
	}
	if len(pend) == 0 {
		return
	}
	uniq, dup := dedupPairs(pend, na, nb)
	k := len(uniq)
	level := m.level[na[uniq[0]]]
	for _, i := range uniq {
		if la := m.level[na[i]]; la < level {
			level = la
		}
		if lb := m.level[nb[i]]; lb < level {
			level = lb
		}
	}
	buf := make(Vec, 6*k)
	alo, ahi := buf[:k], buf[k:2*k]
	blo, bhi := buf[2*k:3*k], buf[3*k:4*k]
	rlo, rhi := buf[4*k:5*k], buf[5*k:6*k]
	for x, i := range uniq {
		ai, bi := na[i], nb[i]
		alo[x], ahi[x] = ai, ai
		if m.level[ai] == level {
			alo[x], ahi[x] = unpack(m.lohi[ai])
		}
		blo[x], bhi[x] = bi, bi
		if m.level[bi] == level {
			blo[x], bhi[x] = unpack(m.lohi[bi])
		}
	}
	m.applyVec(op, alo, blo, rlo)
	m.applyVec(op, ahi, bhi, rhi)
	for x, i := range uniq {
		r := m.mk(level, rlo[x], rhi[x])
		e := &m.apply2[mix3(na[i], nb[i], Node(op))&uint32(len(m.apply2)-1)]
		if e.a != 0 {
			m.overwrites++
		}
		*e = applyEntry{a: na[i], b: nb[i], r: r, op: op}
		out[i] = r
	}
	for _, d := range dup {
		out[d[0]] = out[d[1]]
	}
}

// dedupPairs partitions pending indices into representatives (uniq) and
// duplicates (dup, each mapping an index to its representative), comparing
// the (x[i], y[i]) operand pairs. Vectors are narrow (≤ 33 bits in
// practice), so the quadratic scan is cheaper than hashing.
func dedupPairs(pend []int32, x, y Vec) (uniq []int32, dup [][2]int32) {
	uniq = make([]int32, 0, len(pend))
outer:
	for _, i := range pend {
		for _, j := range uniq {
			if x[j] == x[i] && y[j] == y[i] {
				dup = append(dup, [2]int32{i, j})
				continue outer
			}
		}
		uniq = append(uniq, i)
	}
	return uniq, dup
}

// EqConst returns the BDD asserting that the variables vars, read as a
// little-endian bit-vector, equal the constant v.
func (m *Manager) EqConst(vars []int, v uint64) Node {
	r := True
	for i, x := range vars {
		if v&(1<<uint(i)) != 0 {
			r = m.And(r, m.Var(x))
		} else {
			r = m.And(r, m.NVar(x))
		}
	}
	return r
}

// VecValue reads a concrete little-endian value out of a constant vector.
// It reports ok=false if any element is non-constant.
func VecValue(v Vec) (uint64, bool) {
	var out uint64
	for i, n := range v {
		switch n {
		case True:
			out |= 1 << uint(i)
		case False:
		default:
			return 0, false
		}
	}
	return out, true
}
