package bdd

import "fmt"

// Subgraph export/import.
//
// A serialized BDD is a flat list of (level, loRef, hiRef) uint32 triples in
// child-before-parent order plus one ref per root. A ref below SeedLen is a
// literal canonical handle (terminal or single-variable seed) — stable
// across managers with the same variable count — and a ref at or above
// SeedLen addresses the (ref-SeedLen)-th exported triple. Import replays
// the triples through mk, so loaded nodes re-canonicalise against whatever
// the destination manager already holds; handles in the destination need
// not (and generally will not) match the source.

// Export encodes the non-seed subgraph reachable from roots. It returns
// the packed triples and one ref per root, in the encoding above.
func (m *Manager) Export(roots []Node) (nodes []uint32, rootRefs []uint32) {
	ref := make(map[Node]uint32, 64)
	rootRefs = make([]uint32, len(roots))
	var visit func(n Node) uint32
	visit = func(n Node) uint32 {
		if n < Node(m.seedLen) {
			return uint32(n)
		}
		if r, ok := ref[n]; ok {
			return r
		}
		lo, hi := unpack(m.lohi[n])
		loRef := visit(lo)
		hiRef := visit(hi)
		r := uint32(m.seedLen) + uint32(len(nodes)/3)
		nodes = append(nodes, uint32(m.level[n]), loRef, hiRef)
		ref[n] = r
		return r
	}
	for i, n := range roots {
		rootRefs[i] = visit(n)
	}
	return nodes, rootRefs
}

// Import rebuilds an exported subgraph in this manager and resolves the
// given root refs. Every structural invariant is checked — levels in
// range, refs pointing only at seeds or earlier triples, children strictly
// below their parent, no redundant (lo==hi) triples — so corrupt input
// yields an error, never a malformed diagram.
func (m *Manager) Import(nodes []uint32, rootRefs []uint32) ([]Node, error) {
	if len(nodes)%3 != 0 {
		return nil, fmt.Errorf("bdd: import: node array length %d not a multiple of 3", len(nodes))
	}
	count := len(nodes) / 3
	seedLen := uint32(m.seedLen)
	mapped := make([]Node, count)
	resolve := func(ref uint32, before int) (Node, error) {
		if ref < seedLen {
			return Node(ref), nil
		}
		idx := ref - seedLen
		if int(idx) >= before {
			return 0, fmt.Errorf("bdd: import: ref %d out of range (%d nodes resolvable)", ref, before)
		}
		return mapped[idx], nil
	}
	for i := 0; i < count; i++ {
		level := nodes[3*i]
		if level >= uint32(m.nvars) {
			return nil, fmt.Errorf("bdd: import: node %d level %d out of range [0,%d)", i, level, m.nvars)
		}
		lo, err := resolve(nodes[3*i+1], i)
		if err != nil {
			return nil, err
		}
		hi, err := resolve(nodes[3*i+2], i)
		if err != nil {
			return nil, err
		}
		if lo == hi {
			return nil, fmt.Errorf("bdd: import: node %d is redundant (lo == hi)", i)
		}
		if uint32(m.level[lo]) <= level || uint32(m.level[hi]) <= level {
			return nil, fmt.Errorf("bdd: import: node %d violates variable order", i)
		}
		mapped[i] = m.mk(int32(level), lo, hi)
	}
	out := make([]Node, len(rootRefs))
	for i, r := range rootRefs {
		n, err := resolve(r, count)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}
