package bdd

// Space is a shared canonical constant/leaf space: the seed prefix
// (terminals plus every single-variable diagram) and the unique table that
// indexes it, built once and stamped into any number of Managers. Workers
// that each need a private manager over the same variable universe get a
// lightweight view — NewManager copies three flat arrays instead of
// re-hashing 2+2n seed nodes — while the seed handles stay globally
// canonical: Var(i) and NVar(i) are the same Node value in every manager of
// the space (and indeed in every manager with the same variable count).
//
// A Space is immutable after construction and safe for concurrent use; the
// Managers it produces follow the usual single-goroutine ownership contract.
type Space struct {
	nvars     int32
	seedLevel []int32
	seedLohi  []uint64
	seedTable []int32
	seedMask  uint32
}

// NewSpace builds the canonical seed space for numVars variables.
func NewSpace(numVars int) *Space {
	m := newShell(numVars, MinCacheBits)
	m.seed()
	return &Space{
		nvars:     m.nvars,
		seedLevel: m.level,
		seedLohi:  m.lohi,
		seedTable: m.table,
		seedMask:  m.mask,
	}
}

// NumVars reports the variable count of the space.
func (s *Space) NumVars() int { return int(s.nvars) }

// SeedLen reports the length of the canonical seed prefix.
func (s *Space) SeedLen() int { return len(s.seedLevel) }

// NewManager stamps out a manager over the space with the default
// operation-cache geometry.
func (s *Space) NewManager() *Manager { return s.NewManagerSized(DefaultCacheBits) }

// NewManagerSized stamps out a manager over the space whose operation
// caches hold 2^cacheBits slots (see NewSized for the clamping rules). The
// new manager starts with the space's seed prefix and a private copy of the
// seeded unique table.
func (s *Space) NewManagerSized(cacheBits int) *Manager {
	m := newShell(int(s.nvars), cacheBits)
	m.space = s
	m.seedLen = int32(len(s.seedLevel))
	m.level = append(make([]int32, 0, len(s.seedLevel)+1024), s.seedLevel...)
	m.lohi = append(make([]uint64, 0, len(s.seedLohi)+1024), s.seedLohi...)
	m.table = append([]int32(nil), s.seedTable...)
	m.mask = s.seedMask
	return m
}

// Space returns the shared space this manager was stamped from, or nil for
// a standalone manager. Seed handles agree either way when variable counts
// match; the pointer is only useful as a cheap identity check.
func (m *Manager) Space() *Space { return m.space }
