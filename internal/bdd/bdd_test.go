package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New(4)
	if m.Const(true) != True || m.Const(false) != False {
		t.Fatal("constants wrong")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("not of terminals wrong")
	}
	// A fresh manager holds the two terminals plus the seeded
	// single-variable diagrams (Var/NVar per variable).
	if want := 2 + 2*4; m.Size() != want {
		t.Fatalf("fresh manager size = %d, want %d", m.Size(), want)
	}
	if m.SeedLen() != m.Size() {
		t.Fatalf("seed prefix %d != fresh size %d", m.SeedLen(), m.Size())
	}
	if m.Var(2) != Node(2+2*2) || m.NVar(2) != Node(3+2*2) {
		t.Fatal("seeded variable handles not at canonical indices")
	}
}

func TestVarBasics(t *testing.T) {
	m := New(3)
	x, y := m.Var(0), m.Var(1)
	if x == y {
		t.Fatal("distinct variables shared a node")
	}
	if m.Var(0) != x {
		t.Fatal("Var not canonical")
	}
	if m.And(x, x) != x || m.Or(x, x) != x {
		t.Fatal("idempotence failed")
	}
	if m.And(x, m.Not(x)) != False {
		t.Fatal("x AND NOT x != false")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Fatal("x OR NOT x != true")
	}
	if m.Xor(x, x) != False {
		t.Fatal("x XOR x != false")
	}
}

func TestCanonicalEquality(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// De Morgan: !(a & b) == !a | !b
	lhs := m.Not(m.And(a, b))
	rhs := m.Or(m.Not(a), m.Not(b))
	if lhs != rhs {
		t.Fatal("De Morgan canonical equality failed")
	}
	// Distribution: a & (b | c) == (a&b) | (a&c)
	if m.And(a, m.Or(b, c)) != m.Or(m.And(a, b), m.And(a, c)) {
		t.Fatal("distribution canonical equality failed")
	}
	// Commutativity and associativity.
	if m.And(m.And(a, b), c) != m.And(a, m.And(c, b)) {
		t.Fatal("associativity/commutativity failed")
	}
}

func TestITE(t *testing.T) {
	m := New(3)
	f, g, h := m.Var(0), m.Var(1), m.Var(2)
	ite := m.ITE(f, g, h)
	want := m.Or(m.And(f, g), m.And(m.Not(f), h))
	if ite != want {
		t.Fatal("ITE != f g + !f h")
	}
	if m.ITE(f, True, False) != f {
		t.Fatal("ITE(f,1,0) != f")
	}
	if m.ITE(f, False, True) != m.Not(f) {
		t.Fatal("ITE(f,0,1) != !f")
	}
}

func TestRestrict(t *testing.T) {
	m := New(3)
	x, y := m.Var(0), m.Var(1)
	f := m.Or(m.And(x, y), m.And(m.Not(x), m.Not(y)))
	if m.Restrict(f, 0, true) != y {
		t.Fatal("restrict x=1 should give y")
	}
	if m.Restrict(f, 0, false) != m.Not(y) {
		t.Fatal("restrict x=0 should give !y")
	}
	if m.Restrict(f, 2, true) != f {
		t.Fatal("restrict on absent variable should be identity")
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	x, y := m.Var(0), m.Var(1)
	f := m.And(x, y)
	if m.Exists(f, 0) != y {
		t.Fatal("exists x. x&y should be y")
	}
	g := m.Xor(x, y)
	if m.Exists(g, 1) != True {
		t.Fatal("exists y. x^y should be true")
	}
	if m.ExistsMany(f, []int{0, 1}) != True {
		t.Fatal("exists x,y. x&y should be true")
	}
}

func TestEvalAgainstTruthTable(t *testing.T) {
	m := New(4)
	a, b, c, d := m.Var(0), m.Var(1), m.Var(2), m.Var(3)
	f := m.Or(m.And(a, m.Not(b)), m.Xor(c, d))
	for bits := 0; bits < 16; bits++ {
		asg := []bool{bits&1 != 0, bits&2 != 0, bits&4 != 0, bits&8 != 0}
		want := (asg[0] && !asg[1]) || (asg[2] != asg[3])
		if got := m.Eval(f, asg); got != want {
			t.Fatalf("Eval(%v) = %v, want %v", asg, got, want)
		}
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	x := m.Var(0)
	if got := m.SatCount(x); got != 8 {
		t.Fatalf("SatCount(x) over 4 vars = %v, want 8", got)
	}
	if got := m.SatCount(True); got != 16 {
		t.Fatalf("SatCount(true) = %v, want 16", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(false) = %v, want 0", got)
	}
	f := m.And(m.Var(0), m.And(m.Var(1), m.Var(2)))
	if got := m.SatCount(f); got != 2 {
		t.Fatalf("SatCount(x0&x1&x2) = %v, want 2", got)
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.Not(m.Var(2)))
	asg, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, asg) {
		t.Fatalf("AnySat returned non-satisfying assignment %v", asg)
	}
	if _, ok := m.AnySat(False); ok {
		t.Fatal("false reported satisfiable")
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.Var(4)))
	sup := m.Support(f)
	want := []int{1, 3, 4}
	if len(sup) != len(want) {
		t.Fatalf("Support = %v, want %v", sup, want)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("Support = %v, want %v", sup, want)
		}
	}
}

func TestEqConstAndVec(t *testing.T) {
	m := New(8)
	vars := []int{0, 1, 2, 3}
	f := m.EqConst(vars, 10) // 1010 -> bit0=0 bit1=1 bit2=0 bit3=1
	asg := make([]bool, 8)
	asg[1], asg[3] = true, true
	if !m.Eval(f, asg) {
		t.Fatal("EqConst rejected its own value")
	}
	asg[0] = true
	if m.Eval(f, asg) {
		t.Fatal("EqConst accepted wrong value")
	}
	if got := m.SatCount(f); got != 16 { // 4 free vars
		t.Fatalf("EqConst satcount = %v, want 16", got)
	}
	cv := m.ConstVec(10, 4)
	if v, ok := VecValue(cv); !ok || v != 10 {
		t.Fatalf("ConstVec/VecValue roundtrip got %v,%v", v, ok)
	}
}

func TestVecOps(t *testing.T) {
	m := New(6)
	a := m.VarVec([]int{0, 1, 2})
	b := m.ConstVec(5, 3)
	eq := m.EqVec(a, b)
	if eq != m.EqConst([]int{0, 1, 2}, 5) {
		t.Fatal("EqVec disagrees with EqConst")
	}
	g := m.Var(5)
	sel := m.ITEVec(g, a, b)
	// Under g=true the selected vector equals a.
	for i := range sel {
		if m.Restrict(sel[i], 5, true) != a[i] {
			t.Fatal("ITEVec true branch wrong")
		}
		if m.Restrict(sel[i], 5, false) != b[i] {
			t.Fatal("ITEVec false branch wrong")
		}
	}
}

// randomExpr builds a random boolean expression both as a BDD and as a
// closure, to cross-check semantics.
func randomExpr(m *Manager, rng *rand.Rand, depth int) (Node, func([]bool) bool) {
	if depth == 0 || rng.Intn(4) == 0 {
		v := rng.Intn(m.NumVars())
		return m.Var(v), func(a []bool) bool { return a[v] }
	}
	l, lf := randomExpr(m, rng, depth-1)
	r, rf := randomExpr(m, rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return m.And(l, r), func(a []bool) bool { return lf(a) && rf(a) }
	case 1:
		return m.Or(l, r), func(a []bool) bool { return lf(a) || rf(a) }
	case 2:
		return m.Xor(l, r), func(a []bool) bool { return lf(a) != rf(a) }
	default:
		return m.Not(l), func(a []bool) bool { return !lf(a) }
	}
}

func TestRandomExprSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New(6)
	for trial := 0; trial < 200; trial++ {
		n, f := randomExpr(m, rng, 5)
		for bits := 0; bits < 64; bits++ {
			asg := make([]bool, 6)
			for i := range asg {
				asg[i] = bits&(1<<i) != 0
			}
			if m.Eval(n, asg) != f(asg) {
				t.Fatalf("trial %d: BDD disagrees with closure on %v", trial, asg)
			}
		}
	}
}

func TestQuickCanonical(t *testing.T) {
	// Property: for random 8-bit truth tables built two different ways,
	// handles must be equal iff semantics are equal.
	m := New(3)
	build := func(tt uint8) Node {
		r := False
		for bits := 0; bits < 8; bits++ {
			if tt&(1<<bits) == 0 {
				continue
			}
			term := True
			for v := 0; v < 3; v++ {
				if bits&(1<<v) != 0 {
					term = m.And(term, m.Var(v))
				} else {
					term = m.And(term, m.NVar(v))
				}
			}
			r = m.Or(r, term)
		}
		return r
	}
	prop := func(a, b uint8) bool {
		na, nb := build(a), build(b)
		return (na == nb) == (a == b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRehashGrowth(t *testing.T) {
	m := New(20)
	// Force many nodes to exercise table growth.
	f := False
	for i := 0; i < 20; i++ {
		term := True
		for j := 0; j <= i; j++ {
			if (i+j)%2 == 0 {
				term = m.And(term, m.Var(j))
			} else {
				term = m.And(term, m.NVar(j))
			}
		}
		f = m.Or(f, term)
	}
	if m.NodeCount(f) == 0 {
		t.Fatal("expected nontrivial BDD")
	}
	// Canonicality must survive rehashing: rebuild and compare.
	g := False
	for i := 19; i >= 0; i-- {
		term := True
		for j := i; j >= 0; j-- {
			if (i+j)%2 == 0 {
				term = m.And(term, m.Var(j))
			} else {
				term = m.And(term, m.NVar(j))
			}
		}
		g = m.Or(g, term)
	}
	if f != g {
		t.Fatal("canonical equality lost after table growth")
	}
}
