// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with hash-consing, so that two boolean functions are semantically equal if
// and only if their node handles are equal. Bonsai relies on this canonical
// property to compare router transfer functions in O(1) after construction
// (paper §5.1, "Encoding transfer function using BDDs").
//
// The implementation is a classic unique-table + memoised-ITE design
// (Bryant 1986, Brace-Rudell-Bryant 1990) built only on the standard library.
// A Manager owns all nodes; Node values are indices into the manager and are
// only meaningful together with the manager that produced them.
//
// Operation results are memoised in fixed-size, power-of-two, open-addressed
// caches in the style of Brace-Rudell-Bryant: each slot holds one entry and a
// colliding insert simply overwrites it. Lossy caching never affects
// correctness (the structural recursion terminates and recomputes on a miss)
// but removes the map overhead — hashing, bucket chasing and incremental
// growth — from the hot path, and keeps probes to a single cache line.
package bdd

import "fmt"

// Node is a handle to a BDD node within a Manager. The two terminals are
// False (0) and True (1). Node handles are canonical: within one Manager,
// equal handles represent equal boolean functions and vice versa.
type Node int32

// Terminal nodes, valid for every Manager.
const (
	False Node = 0
	True  Node = 1
)

// node is the internal representation: a decision on variable level with a
// low branch (variable false) and high branch (variable true).
type node struct {
	level    int32
	lo, hi   Node
	nextHash int32 // next node index in the unique-table bucket chain, -1 none
}

// Manager owns a universe of BDD nodes over a fixed number of variables.
// Variable indices run from 0 (top of every diagram) to NumVars-1.
// The zero value is not usable; call New.
type Manager struct {
	nvars   int32
	nodes   []node
	buckets []int32 // unique table: hash -> first node index in chain
	mask    uint32

	ite    []iteEntry
	apply2 []applyEntry
	unary  []unaryEntry
	sat    []satEntry
}

// Default cache geometry. Sizes are fixed per Manager (lossy caches never
// grow); powers of two keep the index computation a mask. The binary/ITE
// caches dominate and get the largest tables; entries are 16 bytes, so the
// default total is ~2.3 MiB per Manager. NewSized scales every table
// relative to these defaults.
const (
	// DefaultCacheBits is the default size exponent of the ITE/apply
	// operation caches (2^bits slots each); the unary and sat-count caches
	// stay 4x and 8x smaller respectively.
	DefaultCacheBits = 16

	// MinCacheBits and MaxCacheBits bound NewSized's exponent: below 8 the
	// unary/sat tables degenerate, above 24 one manager costs gigabytes.
	MinCacheBits = 8
	MaxCacheBits = 24
)

// iteEntry caches ITE(f, g, h) = r. f < 0 marks an empty slot.
type iteEntry struct{ f, g, h, r Node }

// applyEntry caches op(a, b) = r. a < 0 marks an empty slot.
type applyEntry struct {
	a, b, r Node
	op      uint8
}

// unaryEntry caches op(a, arg) = r. a < 0 marks an empty slot.
type unaryEntry struct {
	a, r Node
	arg  int32
	op   uint8
}

// satEntry caches satCountRec(n) = c. n < 0 marks an empty slot.
type satEntry struct {
	n Node
	c float64
}

const (
	opNot uint8 = iota
	opAnd
	opOr
	opXor
	opRestrictF
	opRestrictT
	opExists
	opSupport
)

// New creates a manager for numVars boolean variables with the default
// operation-cache geometry.
func New(numVars int) *Manager { return NewSized(numVars, DefaultCacheBits) }

// NewSized creates a manager whose operation caches hold 2^cacheBits slots
// (ITE and binary apply; the unary and sat-count caches scale down with
// them). Larger caches trade memory for fewer lossy evictions on
// policy-heavy networks; cacheBits is clamped to [MinCacheBits,
// MaxCacheBits], and 0 (or any out-of-range value on the low side) selects
// the defaults.
func NewSized(numVars, cacheBits int) *Manager {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	if cacheBits <= 0 {
		cacheBits = DefaultCacheBits
	}
	if cacheBits < MinCacheBits {
		cacheBits = MinCacheBits
	}
	if cacheBits > MaxCacheBits {
		cacheBits = MaxCacheBits
	}
	m := &Manager{
		nvars:  int32(numVars),
		ite:    make([]iteEntry, 1<<cacheBits),
		apply2: make([]applyEntry, 1<<cacheBits),
		unary:  make([]unaryEntry, 1<<(cacheBits-2)),
		sat:    make([]satEntry, 1<<(cacheBits-3)),
	}
	for i := range m.ite {
		m.ite[i].f = -1
	}
	for i := range m.apply2 {
		m.apply2[i].a = -1
	}
	for i := range m.unary {
		m.unary[i].a = -1
	}
	for i := range m.sat {
		m.sat[i].n = -1
	}
	const initialBuckets = 1 << 12
	m.buckets = make([]int32, initialBuckets)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	m.mask = initialBuckets - 1
	// Terminals occupy slots 0 and 1. Their level is nvars, one past the
	// last real variable, which makes level comparisons uniform.
	m.nodes = append(m.nodes,
		node{level: m.nvars, lo: False, hi: False, nextHash: -1},
		node{level: m.nvars, lo: True, hi: True, nextHash: -1},
	)
	return m
}

// NumVars reports the number of variables the manager was created with.
func (m *Manager) NumVars() int { return int(m.nvars) }

// Size reports the total number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

func (m *Manager) hash(level int32, lo, hi Node) uint32 {
	h := uint32(level)*0x9e3779b1 ^ uint32(lo)*0x85ebca6b ^ uint32(hi)*0xc2b2ae35
	h ^= h >> 16
	return h & m.mask
}

// mix3 scrambles an operand triple into a cache index seed.
func mix3(a, b, c Node) uint32 {
	h := uint32(a)*0x9e3779b1 ^ uint32(b)*0x85ebca6b ^ uint32(c)*0xc2b2ae35
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 12
	return h
}

func (m *Manager) rehash() {
	newSize := (m.mask + 1) * 2
	m.buckets = make([]int32, newSize)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	m.mask = newSize - 1
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		h := m.hash(n.level, n.lo, n.hi)
		n.nextHash = m.buckets[h]
		m.buckets[h] = int32(i)
	}
}

// mk returns the canonical node (level, lo, hi), applying the ROBDD
// reduction rules.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	h := m.hash(level, lo, hi)
	for i := m.buckets[h]; i >= 0; i = m.nodes[i].nextHash {
		n := &m.nodes[i]
		if n.level == level && n.lo == lo && n.hi == hi {
			return Node(i)
		}
	}
	if len(m.nodes) >= int(m.mask+1)*4 {
		m.rehash()
		h = m.hash(level, lo, hi)
	}
	idx := int32(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi, nextHash: m.buckets[h]})
	m.buckets[h] = idx
	return Node(idx)
}

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) Node {
	if i < 0 || int32(i) >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nvars))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the BDD for the negation of variable i.
func (m *Manager) NVar(i int) Node {
	if i < 0 || int32(i) >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nvars))
	}
	return m.mk(int32(i), True, False)
}

// Const returns True or False.
func (m *Manager) Const(b bool) Node {
	if b {
		return True
	}
	return False
}

// Level reports the decision variable of n, or NumVars for terminals.
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// Low returns the low (variable=false) child of n.
func (m *Manager) Low(n Node) Node { return m.nodes[n].lo }

// High returns the high (variable=true) child of n.
func (m *Manager) High(n Node) Node { return m.nodes[n].hi }

// Not returns the complement of a.
func (m *Manager) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	e := &m.unary[mix3(a, Node(opNot), 0)&uint32(len(m.unary)-1)]
	if e.a == a && e.op == opNot && e.arg == 0 {
		return e.r
	}
	n := m.nodes[a]
	r := m.mk(n.level, m.Not(n.lo), m.Not(n.hi))
	*e = unaryEntry{a: a, r: r, arg: 0, op: opNot}
	return r
}

// And returns the conjunction of a and b.
func (m *Manager) And(a, b Node) Node {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	return m.applyCached(opAnd, a, b)
}

// Or returns the disjunction of a and b.
func (m *Manager) Or(a, b Node) Node {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	return m.applyCached(opOr, a, b)
}

// Xor returns the exclusive-or of a and b.
func (m *Manager) Xor(a, b Node) Node {
	switch {
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return m.Not(b)
	case b == True:
		return m.Not(a)
	case a == b:
		return False
	}
	if a > b {
		a, b = b, a
	}
	return m.applyCached(opXor, a, b)
}

// applyCached consults the lossy binary-operation cache before recursing.
func (m *Manager) applyCached(op uint8, a, b Node) Node {
	e := &m.apply2[mix3(a, b, Node(op))&uint32(len(m.apply2)-1)]
	if e.a == a && e.b == b && e.op == op {
		return e.r
	}
	r := m.applyRec(op, a, b)
	*e = applyEntry{a: a, b: b, r: r, op: op}
	return r
}

func (m *Manager) applyRec(op uint8, a, b Node) Node {
	na, nb := m.nodes[a], m.nodes[b]
	level := na.level
	if nb.level < level {
		level = nb.level
	}
	alo, ahi := a, a
	if na.level == level {
		alo, ahi = na.lo, na.hi
	}
	blo, bhi := b, b
	if nb.level == level {
		blo, bhi = nb.lo, nb.hi
	}
	var lo, hi Node
	switch op {
	case opAnd:
		lo, hi = m.And(alo, blo), m.And(ahi, bhi)
	case opOr:
		lo, hi = m.Or(alo, blo), m.Or(ahi, bhi)
	case opXor:
		lo, hi = m.Xor(alo, blo), m.Xor(ahi, bhi)
	default:
		panic("bdd: unknown binary op")
	}
	return m.mk(level, lo, hi)
}

// Implies returns the BDD of a => b.
func (m *Manager) Implies(a, b Node) Node { return m.Or(m.Not(a), b) }

// Equiv returns the BDD of a <=> b.
func (m *Manager) Equiv(a, b Node) Node { return m.Not(m.Xor(a, b)) }

// ITE returns if-then-else(f, g, h) = f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	e := &m.ite[mix3(f, g, h)&uint32(len(m.ite)-1)]
	if e.f == f && e.g == g && e.h == h {
		return e.r
	}
	nf, ng, nh := m.nodes[f], m.nodes[g], m.nodes[h]
	level := nf.level
	if ng.level < level {
		level = ng.level
	}
	if nh.level < level {
		level = nh.level
	}
	flo, fhi := f, f
	if nf.level == level {
		flo, fhi = nf.lo, nf.hi
	}
	glo, ghi := g, g
	if ng.level == level {
		glo, ghi = ng.lo, ng.hi
	}
	hlo, hhi := h, h
	if nh.level == level {
		hlo, hhi = nh.lo, nh.hi
	}
	r := m.mk(level, m.ITE(flo, glo, hlo), m.ITE(fhi, ghi, hhi))
	*e = iteEntry{f: f, g: g, h: h, r: r}
	return r
}

// Restrict returns n with variable v fixed to val.
func (m *Manager) Restrict(n Node, v int, val bool) Node {
	if n <= True {
		return n
	}
	nn := m.nodes[n]
	if nn.level > int32(v) {
		return n
	}
	op := opRestrictF
	if val {
		op = opRestrictT
	}
	e := &m.unary[mix3(n, Node(op), Node(v))&uint32(len(m.unary)-1)]
	if e.a == n && e.op == op && e.arg == int32(v) {
		return e.r
	}
	var r Node
	if nn.level == int32(v) {
		if val {
			r = nn.hi
		} else {
			r = nn.lo
		}
	} else {
		r = m.mk(nn.level, m.Restrict(nn.lo, v, val), m.Restrict(nn.hi, v, val))
	}
	*e = unaryEntry{a: n, r: r, arg: int32(v), op: op}
	return r
}

// Exists existentially quantifies variable v out of n.
func (m *Manager) Exists(n Node, v int) Node {
	if n <= True {
		return n
	}
	nn := m.nodes[n]
	if nn.level > int32(v) {
		return n
	}
	e := &m.unary[mix3(n, Node(opExists), Node(v))&uint32(len(m.unary)-1)]
	if e.a == n && e.op == opExists && e.arg == int32(v) {
		return e.r
	}
	var r Node
	if nn.level == int32(v) {
		r = m.Or(nn.lo, nn.hi)
	} else {
		r = m.mk(nn.level, m.Exists(nn.lo, v), m.Exists(nn.hi, v))
	}
	*e = unaryEntry{a: n, r: r, arg: int32(v), op: opExists}
	return r
}

// ExistsMany existentially quantifies each listed variable out of n.
func (m *Manager) ExistsMany(n Node, vars []int) Node {
	for _, v := range vars {
		n = m.Exists(n, v)
	}
	return n
}

// Eval evaluates n under a complete assignment (indexed by variable).
func (m *Manager) Eval(n Node, assign []bool) bool {
	for n > True {
		nn := m.nodes[n]
		if assign[nn.level] {
			n = nn.hi
		} else {
			n = nn.lo
		}
	}
	return n == True
}

// SatCount returns the number of satisfying assignments of n over all
// NumVars variables, as a float64 (exact for counts below 2^53).
func (m *Manager) SatCount(n Node) float64 {
	return m.satCountRec(n) * pow2(int(m.nodes[n].level))
}

func (m *Manager) satCountRec(n Node) float64 {
	if n == False {
		return 0
	}
	if n == True {
		return 1
	}
	e := &m.sat[mix3(n, 0, 0)&uint32(len(m.sat)-1)]
	if e.n == n {
		return e.c
	}
	nn := m.nodes[n]
	lo := m.satCountRec(nn.lo) * pow2(int(m.nodes[nn.lo].level-nn.level-1))
	hi := m.satCountRec(nn.hi) * pow2(int(m.nodes[nn.hi].level-nn.level-1))
	c := lo + hi
	*e = satEntry{n: n, c: c}
	return c
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// AnySat returns one satisfying assignment of n (indexed by variable), or
// false if n is unsatisfiable. Variables not on the chosen path are false.
func (m *Manager) AnySat(n Node) ([]bool, bool) {
	if n == False {
		return nil, false
	}
	assign := make([]bool, m.nvars)
	for n > True {
		nn := m.nodes[n]
		if nn.hi != False {
			assign[nn.level] = true
			n = nn.hi
		} else {
			n = nn.lo
		}
	}
	return assign, true
}

// Support returns the sorted set of variables n depends on.
func (m *Manager) Support(n Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int]bool)
	var walk func(Node)
	walk = func(x Node) {
		if x <= True || seen[x] {
			return
		}
		seen[x] = true
		vars[int(m.nodes[x].level)] = true
		walk(m.nodes[x].lo)
		walk(m.nodes[x].hi)
	}
	walk(n)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// NodeCount returns the number of distinct internal nodes reachable from n.
func (m *Manager) NodeCount(n Node) int {
	if n <= True {
		return 0
	}
	seen := make(map[Node]bool)
	var walk func(Node)
	walk = func(x Node) {
		if x <= True || seen[x] {
			return
		}
		seen[x] = true
		walk(m.nodes[x].lo)
		walk(m.nodes[x].hi)
	}
	walk(n)
	return len(seen)
}

// Close releases the manager's unique table and operation caches so a
// long-lived process can reclaim per-manager memory deterministically
// (node tables only grow; the GC cannot shrink a live manager). The
// manager must not be used afterwards: any operation will panic on the
// nil tables, which turns use-after-close into a loud bug instead of a
// silent corruption. Close is idempotent.
func (m *Manager) Close() {
	m.nodes, m.buckets = nil, nil
	m.ite, m.apply2, m.unary, m.sat = nil, nil, nil, nil
}
