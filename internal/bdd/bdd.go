// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with hash-consing, so that two boolean functions are semantically equal if
// and only if their node handles are equal. Bonsai relies on this canonical
// property to compare router transfer functions in O(1) after construction
// (paper §5.1, "Encoding transfer function using BDDs").
//
// The implementation is a classic unique-table + memoised-ITE design
// (Bryant 1986, Brace-Rudell-Bryant 1990) built only on the standard library.
// A Manager owns all nodes; Node values are indices into the manager and are
// only meaningful together with the manager that produced them.
//
// Storage is structure-of-arrays: a node is a row across two parallel arrays
// — level[i] and a packed lohi[i] word holding both children — instead of a
// 16-byte struct. Traversals touch 12 bytes per node across two dense
// arrays, and a single 64-bit load yields both children. The unique table is
// open-addressed (linear probing over 32-bit refs, slot 0 = empty) rather
// than chained, so a probe walks a short run of one cache line instead of
// chasing per-node chain links through the node array.
//
// Every manager seeds the same canonical prefix: terminals at handles 0/1
// and the single-variable diagrams at Var(i) = 2+2i, NVar(i) = 3+2i. Two
// managers over the same variable count therefore agree on these handles,
// which makes Var a bounds check plus arithmetic (no table probe) and gives
// serialized BDDs a stable vocabulary of seed references (see Space,
// Export, Import).
//
// Operation results are memoised in fixed-size, power-of-two, open-addressed
// caches in the style of Brace-Rudell-Bryant: each slot holds one entry and a
// colliding insert simply overwrites it. Lossy caching never affects
// correctness (the structural recursion terminates and recomputes on a miss)
// but removes the map overhead — hashing, bucket chasing and incremental
// growth — from the hot path, and keeps probes to a single cache line.
// Because no cached operation takes the False terminal as its first operand
// (terminal rules short-circuit first), a zeroed slot reads as empty and the
// caches need no initialisation pass.
package bdd

import "fmt"

// Node is a handle to a BDD node within a Manager. The two terminals are
// False (0) and True (1). Node handles are canonical: within one Manager,
// equal handles represent equal boolean functions and vice versa.
type Node int32

// Terminal nodes, valid for every Manager.
const (
	False Node = 0
	True  Node = 1
)

// Manager owns a universe of BDD nodes over a fixed number of variables.
// Variable indices run from 0 (top of every diagram) to NumVars-1.
// The zero value is not usable; call New or Space.NewManager.
type Manager struct {
	nvars   int32
	seedLen int32 // terminals + per-variable seeds; identical across managers with equal nvars

	// Structure-of-arrays node storage. lohi packs lo in the low 32 bits
	// and hi in the high 32.
	level []int32
	lohi  []uint64

	// Open-addressed unique table of node refs. 0 marks an empty slot
	// (False is a terminal and never inserted).
	table []int32
	mask  uint32

	space *Space // non-nil when created from a shared Space

	ite    []iteEntry
	apply2 []applyEntry
	unary  []unaryEntry
	sat    []satEntry

	// Op-cache counters, folded into engine aggregates by the owner.
	hits       uint64
	misses     uint64
	overwrites uint64
}

// Default cache geometry. Sizes are fixed per Manager (lossy caches never
// grow); powers of two keep the index computation a mask. The binary/ITE
// caches dominate and get the largest tables; entries are 16 bytes, so the
// default total is ~2.3 MiB per Manager. NewSized scales every table
// relative to these defaults.
const (
	// DefaultCacheBits is the default size exponent of the ITE/apply
	// operation caches (2^bits slots each); the unary and sat-count caches
	// stay 4x and 8x smaller respectively.
	DefaultCacheBits = 16

	// MinCacheBits and MaxCacheBits bound NewSized's exponent: below 8 the
	// unary/sat tables degenerate, above 24 one manager costs gigabytes.
	MinCacheBits = 8
	MaxCacheBits = 24
)

// iteEntry caches ITE(f, g, h) = r. f == 0 marks an empty slot (a terminal
// f never reaches the cache).
type iteEntry struct{ f, g, h, r Node }

// applyEntry caches op(a, b) = r. a == 0 marks an empty slot.
type applyEntry struct {
	a, b, r Node
	op      uint8
}

// unaryEntry caches op(a, arg) = r. a == 0 marks an empty slot.
type unaryEntry struct {
	a, r Node
	arg  int32
	op   uint8
}

// satEntry caches satCountRec(n) = c. n == 0 marks an empty slot.
type satEntry struct {
	n Node
	c float64
}

const (
	opNot uint8 = iota
	opAnd
	opOr
	opXor
	opRestrictF
	opRestrictT
	opExists
)

// New creates a manager for numVars boolean variables with the default
// operation-cache geometry.
func New(numVars int) *Manager { return NewSized(numVars, DefaultCacheBits) }

// NewSized creates a manager whose operation caches hold 2^cacheBits slots
// (ITE and binary apply; the unary and sat-count caches scale down with
// them). Larger caches trade memory for fewer lossy evictions on
// policy-heavy networks; cacheBits is clamped to [MinCacheBits,
// MaxCacheBits], and 0 (or any out-of-range value on the low side) selects
// the defaults.
func NewSized(numVars, cacheBits int) *Manager {
	m := newShell(numVars, cacheBits)
	m.seed()
	return m
}

// newShell allocates a manager with caches but no nodes.
func newShell(numVars, cacheBits int) *Manager {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	if cacheBits <= 0 {
		cacheBits = DefaultCacheBits
	}
	if cacheBits < MinCacheBits {
		cacheBits = MinCacheBits
	}
	if cacheBits > MaxCacheBits {
		cacheBits = MaxCacheBits
	}
	return &Manager{
		nvars:  int32(numVars),
		ite:    make([]iteEntry, 1<<cacheBits),
		apply2: make([]applyEntry, 1<<cacheBits),
		unary:  make([]unaryEntry, 1<<(cacheBits-2)),
		sat:    make([]satEntry, 1<<(cacheBits-3)),
	}
}

// initialTableSize returns the deterministic unique-table size for a fresh
// manager over numVars variables: large enough to hold the seed prefix well
// under the growth threshold, and identical for every manager with the same
// variable count so seeded tables can be shared byte-for-byte.
func initialTableSize(numVars int) uint32 {
	size := uint32(1) << 12
	need := uint32(2+2*numVars) * 2
	for size < need {
		size *= 2
	}
	return size
}

// seed populates the canonical prefix: terminals at 0/1 (level nvars, one
// past the last real variable, making level comparisons uniform) and the
// positive/negative single-variable diagrams at 2+2i / 3+2i.
func (m *Manager) seed() {
	size := initialTableSize(int(m.nvars))
	m.table = make([]int32, size)
	m.mask = size - 1
	m.level = append(m.level, m.nvars, m.nvars)
	m.lohi = append(m.lohi, pack(False, False), pack(True, True))
	for i := int32(0); i < m.nvars; i++ {
		m.insert(i, pack(False, True))
		m.insert(i, pack(True, False))
	}
	m.seedLen = int32(len(m.level))
}

// insert appends a node row and links it into the unique table without
// probing for an existing entry (callers guarantee novelty).
func (m *Manager) insert(level int32, key uint64) Node {
	h := hashNode(level, key) & m.mask
	for m.table[h] != 0 {
		h = (h + 1) & m.mask
	}
	idx := int32(len(m.level))
	m.level = append(m.level, level)
	m.lohi = append(m.lohi, key)
	m.table[h] = idx
	return Node(idx)
}

// NumVars reports the number of variables the manager was created with.
func (m *Manager) NumVars() int { return int(m.nvars) }

// Size reports the total number of live nodes (including terminals and the
// per-variable seed prefix).
func (m *Manager) Size() int { return len(m.level) }

// SeedLen reports the length of the canonical seed prefix (terminals plus
// the two single-variable diagrams per variable). Handles below SeedLen are
// identical across every manager with the same variable count.
func (m *Manager) SeedLen() int { return int(m.seedLen) }

// pack combines two children into one unique-table key / storage word.
func pack(lo, hi Node) uint64 { return uint64(uint32(lo)) | uint64(uint32(hi))<<32 }

func unpack(w uint64) (lo, hi Node) { return Node(uint32(w)), Node(w >> 32) }

// hashNode scrambles (level, children) into a table index seed
// (splitmix64-style finalizer over the packed word).
func hashNode(level int32, key uint64) uint32 {
	x := key + uint64(uint32(level))*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return uint32(x ^ x>>33)
}

// mix3 scrambles an operand triple into a cache index seed.
func mix3(a, b, c Node) uint32 {
	h := uint32(a)*0x9e3779b1 ^ uint32(b)*0x85ebca6b ^ uint32(c)*0xc2b2ae35
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 12
	return h
}

// grow doubles the unique table and reinserts every non-terminal node.
func (m *Manager) grow() {
	newSize := (m.mask + 1) * 2
	m.table = make([]int32, newSize)
	m.mask = newSize - 1
	for i := 2; i < len(m.level); i++ {
		h := hashNode(m.level[i], m.lohi[i]) & m.mask
		for m.table[h] != 0 {
			h = (h + 1) & m.mask
		}
		m.table[h] = int32(i)
	}
}

// mk returns the canonical node (level, lo, hi), applying the ROBDD
// reduction rules.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := pack(lo, hi)
	h := hashNode(level, key) & m.mask
	for {
		idx := m.table[h]
		if idx == 0 {
			break
		}
		if m.lohi[idx] == key && m.level[idx] == level {
			return Node(idx)
		}
		h = (h + 1) & m.mask
	}
	// Keep the load factor at or below 3/4 so probe runs stay short.
	if uint32(len(m.level))*4 >= (m.mask+1)*3 {
		m.grow()
		h = hashNode(level, key) & m.mask
		for m.table[h] != 0 {
			h = (h + 1) & m.mask
		}
	}
	idx := int32(len(m.level))
	m.level = append(m.level, level)
	m.lohi = append(m.lohi, key)
	m.table[h] = idx
	return Node(idx)
}

// Var returns the BDD for variable i. Thanks to the seeded prefix this is
// pure arithmetic — no unique-table probe — and small enough to inline.
func (m *Manager) Var(i int) Node {
	if uint32(i) >= uint32(m.nvars) {
		badVar(i, m.nvars)
	}
	return Node(2 + 2*int32(i))
}

// NVar returns the BDD for the negation of variable i.
func (m *Manager) NVar(i int) Node {
	if uint32(i) >= uint32(m.nvars) {
		badVar(i, m.nvars)
	}
	return Node(3 + 2*int32(i))
}

func badVar(i int, nvars int32) {
	panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, nvars))
}

// Const returns True or False.
func (m *Manager) Const(b bool) Node {
	if b {
		return True
	}
	return False
}

// Level reports the decision variable of n, or NumVars for terminals.
func (m *Manager) Level(n Node) int { return int(m.level[n]) }

// Low returns the low (variable=false) child of n.
func (m *Manager) Low(n Node) Node { lo, _ := unpack(m.lohi[n]); return lo }

// High returns the high (variable=true) child of n.
func (m *Manager) High(n Node) Node { _, hi := unpack(m.lohi[n]); return hi }

// Not returns the complement of a.
func (m *Manager) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	e := &m.unary[mix3(a, Node(opNot), 0)&uint32(len(m.unary)-1)]
	if e.a == a && e.op == opNot && e.arg == 0 {
		m.hits++
		return e.r
	}
	m.misses++
	lo, hi := unpack(m.lohi[a])
	r := m.mk(m.level[a], m.Not(lo), m.Not(hi))
	if e.a != 0 {
		m.overwrites++
	}
	*e = unaryEntry{a: a, r: r, arg: 0, op: opNot}
	return r
}

// And returns the conjunction of a and b.
func (m *Manager) And(a, b Node) Node {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	e := &m.apply2[mix3(a, b, Node(opAnd))&uint32(len(m.apply2)-1)]
	if e.a == a && e.b == b && e.op == opAnd {
		m.hits++
		return e.r
	}
	return m.applyMiss(opAnd, a, b, e)
}

// Or returns the disjunction of a and b.
func (m *Manager) Or(a, b Node) Node {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	e := &m.apply2[mix3(a, b, Node(opOr))&uint32(len(m.apply2)-1)]
	if e.a == a && e.b == b && e.op == opOr {
		m.hits++
		return e.r
	}
	return m.applyMiss(opOr, a, b, e)
}

// Xor returns the exclusive-or of a and b.
func (m *Manager) Xor(a, b Node) Node {
	switch {
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return m.Not(b)
	case b == True:
		return m.Not(a)
	case a == b:
		return False
	}
	if a > b {
		a, b = b, a
	}
	e := &m.apply2[mix3(a, b, Node(opXor))&uint32(len(m.apply2)-1)]
	if e.a == a && e.b == b && e.op == opXor {
		m.hits++
		return e.r
	}
	return m.applyMiss(opXor, a, b, e)
}

// applyMiss is the out-of-line slow path of the binary ops: recurse, then
// fill the probed slot. Keeping it out of And/Or/Xor keeps their cache-hit
// path one probe with no extra call frame.
func (m *Manager) applyMiss(op uint8, a, b Node, e *applyEntry) Node {
	m.misses++
	r := m.applyRec(op, a, b)
	if e.a != 0 {
		m.overwrites++
	}
	*e = applyEntry{a: a, b: b, r: r, op: op}
	return r
}

func (m *Manager) applyRec(op uint8, a, b Node) Node {
	la, lb := m.level[a], m.level[b]
	level := la
	if lb < level {
		level = lb
	}
	alo, ahi := a, a
	if la == level {
		alo, ahi = unpack(m.lohi[a])
	}
	blo, bhi := b, b
	if lb == level {
		blo, bhi = unpack(m.lohi[b])
	}
	var lo, hi Node
	switch op {
	case opAnd:
		lo, hi = m.And(alo, blo), m.And(ahi, bhi)
	case opOr:
		lo, hi = m.Or(alo, blo), m.Or(ahi, bhi)
	case opXor:
		lo, hi = m.Xor(alo, blo), m.Xor(ahi, bhi)
	default:
		panic("bdd: unknown binary op")
	}
	return m.mk(level, lo, hi)
}

// Implies returns the BDD of a => b.
func (m *Manager) Implies(a, b Node) Node { return m.Or(m.Not(a), b) }

// Equiv returns the BDD of a <=> b.
func (m *Manager) Equiv(a, b Node) Node { return m.Not(m.Xor(a, b)) }

// ITE returns if-then-else(f, g, h) = f·g + ¬f·h.
func (m *Manager) ITE(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	e := &m.ite[mix3(f, g, h)&uint32(len(m.ite)-1)]
	if e.f == f && e.g == g && e.h == h {
		m.hits++
		return e.r
	}
	m.misses++
	lf, lg, lh := m.level[f], m.level[g], m.level[h]
	level := lf
	if lg < level {
		level = lg
	}
	if lh < level {
		level = lh
	}
	flo, fhi := f, f
	if lf == level {
		flo, fhi = unpack(m.lohi[f])
	}
	glo, ghi := g, g
	if lg == level {
		glo, ghi = unpack(m.lohi[g])
	}
	hlo, hhi := h, h
	if lh == level {
		hlo, hhi = unpack(m.lohi[h])
	}
	r := m.mk(level, m.ITE(flo, glo, hlo), m.ITE(fhi, ghi, hhi))
	if e.f != 0 {
		m.overwrites++
	}
	*e = iteEntry{f: f, g: g, h: h, r: r}
	return r
}

// Restrict returns n with variable v fixed to val.
func (m *Manager) Restrict(n Node, v int, val bool) Node {
	if n <= True {
		return n
	}
	ln := m.level[n]
	if ln > int32(v) {
		return n
	}
	op := opRestrictF
	if val {
		op = opRestrictT
	}
	e := &m.unary[mix3(n, Node(op), Node(v))&uint32(len(m.unary)-1)]
	if e.a == n && e.op == op && e.arg == int32(v) {
		m.hits++
		return e.r
	}
	m.misses++
	lo, hi := unpack(m.lohi[n])
	var r Node
	if ln == int32(v) {
		if val {
			r = hi
		} else {
			r = lo
		}
	} else {
		r = m.mk(ln, m.Restrict(lo, v, val), m.Restrict(hi, v, val))
	}
	if e.a != 0 {
		m.overwrites++
	}
	*e = unaryEntry{a: n, r: r, arg: int32(v), op: op}
	return r
}

// Exists existentially quantifies variable v out of n.
func (m *Manager) Exists(n Node, v int) Node {
	if n <= True {
		return n
	}
	ln := m.level[n]
	if ln > int32(v) {
		return n
	}
	e := &m.unary[mix3(n, Node(opExists), Node(v))&uint32(len(m.unary)-1)]
	if e.a == n && e.op == opExists && e.arg == int32(v) {
		m.hits++
		return e.r
	}
	m.misses++
	lo, hi := unpack(m.lohi[n])
	var r Node
	if ln == int32(v) {
		r = m.Or(lo, hi)
	} else {
		r = m.mk(ln, m.Exists(lo, v), m.Exists(hi, v))
	}
	if e.a != 0 {
		m.overwrites++
	}
	*e = unaryEntry{a: n, r: r, arg: int32(v), op: opExists}
	return r
}

// ExistsMany existentially quantifies each listed variable out of n.
func (m *Manager) ExistsMany(n Node, vars []int) Node {
	for _, v := range vars {
		n = m.Exists(n, v)
	}
	return n
}

// Eval evaluates n under a complete assignment (indexed by variable).
func (m *Manager) Eval(n Node, assign []bool) bool {
	for n > True {
		lo, hi := unpack(m.lohi[n])
		if assign[m.level[n]] {
			n = hi
		} else {
			n = lo
		}
	}
	return n == True
}

// SatCount returns the number of satisfying assignments of n over all
// NumVars variables, as a float64 (exact for counts below 2^53).
func (m *Manager) SatCount(n Node) float64 {
	return m.satCountRec(n) * pow2(int(m.level[n]))
}

func (m *Manager) satCountRec(n Node) float64 {
	if n == False {
		return 0
	}
	if n == True {
		return 1
	}
	e := &m.sat[mix3(n, 0, 0)&uint32(len(m.sat)-1)]
	if e.n == n {
		m.hits++
		return e.c
	}
	m.misses++
	ln := m.level[n]
	nlo, nhi := unpack(m.lohi[n])
	lo := m.satCountRec(nlo) * pow2(int(m.level[nlo]-ln-1))
	hi := m.satCountRec(nhi) * pow2(int(m.level[nhi]-ln-1))
	c := lo + hi
	if e.n != 0 {
		m.overwrites++
	}
	*e = satEntry{n: n, c: c}
	return c
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// AnySat returns one satisfying assignment of n (indexed by variable), or
// false if n is unsatisfiable. Variables not on the chosen path are false.
func (m *Manager) AnySat(n Node) ([]bool, bool) {
	if n == False {
		return nil, false
	}
	assign := make([]bool, m.nvars)
	for n > True {
		lo, hi := unpack(m.lohi[n])
		if hi != False {
			assign[m.level[n]] = true
			n = hi
		} else {
			n = lo
		}
	}
	return assign, true
}

// Support returns the sorted set of variables n depends on.
func (m *Manager) Support(n Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int]bool)
	var walk func(Node)
	walk = func(x Node) {
		if x <= True || seen[x] {
			return
		}
		seen[x] = true
		vars[int(m.level[x])] = true
		lo, hi := unpack(m.lohi[x])
		walk(lo)
		walk(hi)
	}
	walk(n)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// NodeCount returns the number of distinct internal nodes reachable from n.
func (m *Manager) NodeCount(n Node) int {
	if n <= True {
		return 0
	}
	seen := make(map[Node]bool)
	var walk func(Node)
	walk = func(x Node) {
		if x <= True || seen[x] {
			return
		}
		seen[x] = true
		lo, hi := unpack(m.lohi[x])
		walk(lo)
		walk(hi)
	}
	walk(n)
	return len(seen)
}

// Stats is a point-in-time snapshot of a manager's storage and op-cache
// behaviour. Counters are cumulative over the manager's lifetime.
type Stats struct {
	Nodes       int // live nodes, including terminals and the seed prefix
	SeedNodes   int
	UniqueSlots int     // unique-table capacity
	LoadFactor  float64 // Nodes / UniqueSlots

	CacheHits       uint64 // op-cache probes answered without recursion
	CacheMisses     uint64 // probes that fell through to the recursion
	CacheOverwrites uint64 // stores that evicted a colliding entry
}

// Stats reports the manager's current storage and cache counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		Nodes:           len(m.level),
		SeedNodes:       int(m.seedLen),
		UniqueSlots:     len(m.table),
		CacheHits:       m.hits,
		CacheMisses:     m.misses,
		CacheOverwrites: m.overwrites,
	}
	if s.UniqueSlots > 0 {
		s.LoadFactor = float64(s.Nodes) / float64(s.UniqueSlots)
	}
	return s
}

// Close releases the manager's unique table and operation caches so a
// long-lived process can reclaim per-manager memory deterministically
// (node tables only grow; the GC cannot shrink a live manager). The
// manager must not be used afterwards: any operation will panic on the
// nil tables, which turns use-after-close into a loud bug instead of a
// silent corruption. Close is idempotent.
func (m *Manager) Close() {
	m.level, m.lohi, m.table = nil, nil, nil
	m.ite, m.apply2, m.unary, m.sat = nil, nil, nil, nil
}
