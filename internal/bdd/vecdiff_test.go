package bdd

import (
	"math/rand"
	"testing"
)

// randVec builds a width-long vector of random expressions and returns the
// matching evaluator slice.
func randVec(m *Manager, rng *rand.Rand, width, depth int) (Vec, []func([]bool) bool) {
	v := make(Vec, width)
	fs := make([]func([]bool) bool, width)
	for i := range v {
		// Mix in terminals and duplicates so the batched fast paths
		// (gi==hi, constant elements, intra-batch dedup) all fire.
		switch rng.Intn(8) {
		case 0:
			v[i], fs[i] = False, func([]bool) bool { return false }
		case 1:
			v[i], fs[i] = True, func([]bool) bool { return true }
		case 2:
			if i > 0 {
				v[i], fs[i] = v[i-1], fs[i-1]
				continue
			}
			fallthrough
		default:
			v[i], fs[i] = randomExpr(m, rng, depth)
		}
	}
	return v, fs
}

// TestVecBatchedMatchesScalar is the differential gauntlet for the batched
// vector operators: because the unique table is canonical, ITEVec, AndVec,
// and EqVec must return handles *identical* (not merely equivalent) to the
// element-wise scalar loops, across randomized vectors that exercise
// terminals, shared elements, and deep recursion.
func TestVecBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		m := New(12)
		width := 1 + rng.Intn(33)
		f, _ := randomExpr(m, rng, 4)
		g, _ := randVec(m, rng, width, 4)
		h, _ := randVec(m, rng, width, 4)

		batched := m.ITEVec(f, g, h)
		for i := range g {
			if want := m.ITE(f, g[i], h[i]); batched[i] != want {
				t.Fatalf("round %d: ITEVec[%d] = %d, scalar ITE = %d", round, i, batched[i], want)
			}
		}

		av := m.AndVec(f, g)
		for i := range g {
			if want := m.And(f, g[i]); av[i] != want {
				t.Fatalf("round %d: AndVec[%d] = %d, scalar And = %d", round, i, av[i], want)
			}
		}

		eq := m.EqVec(g, h)
		want := True
		for i := range g {
			want = m.And(want, m.Equiv(g[i], h[i]))
		}
		if eq != want {
			t.Fatalf("round %d: EqVec = %d, scalar fold = %d", round, eq, want)
		}
		m.Close()
	}
}

// TestVecBatchedColdVsWarm runs the batched operator on a cold manager and
// the scalar loop on a separate warm one, checking semantic equality via
// exhaustive evaluation — this rules out results that are only identical
// because both paths consulted the same (possibly stale) op-cache entry.
func TestVecBatchedColdVsWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nv = 6
	assign := make([]bool, nv)
	for round := 0; round < 50; round++ {
		seed := rng.Int63()
		m1 := New(nv)
		r1 := rand.New(rand.NewSource(seed))
		f1, _ := randomExpr(m1, r1, 4)
		g1, _ := randVec(m1, r1, 8, 4)
		h1, _ := randVec(m1, r1, 8, 4)
		batched := m1.ITEVec(f1, g1, h1)

		m2 := New(nv)
		r2 := rand.New(rand.NewSource(seed))
		f2, _ := randomExpr(m2, r2, 4)
		g2, _ := randVec(m2, r2, 8, 4)
		h2, _ := randVec(m2, r2, 8, 4)
		scalar := make(Vec, len(g2))
		for i := range g2 {
			scalar[i] = m2.ITE(f2, g2[i], h2[i])
		}

		for bits := 0; bits < 1<<nv; bits++ {
			for v := 0; v < nv; v++ {
				assign[v] = bits&(1<<v) != 0
			}
			for i := range batched {
				if m1.Eval(batched[i], assign) != m2.Eval(scalar[i], assign) {
					t.Fatalf("round %d: bit %d differs under assignment %06b", round, i, bits)
				}
			}
		}
		m1.Close()
		m2.Close()
	}
}

// TestExportImportRoundTrip checks that the serialized node form survives a
// trip into a fresh manager: imported roots are semantically identical and
// the re-exported byte stream is reproduced exactly.
func TestExportImportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nv = 10
	m := New(nv)
	roots := make([]Node, 0, 16)
	evals := make([]func([]bool) bool, 0, 16)
	for i := 0; i < 16; i++ {
		n, f := randomExpr(m, rng, 6)
		roots = append(roots, n)
		evals = append(evals, f)
	}
	nodes, refs := m.Export(roots)

	m2 := New(nv)
	got, err := m2.Import(nodes, refs)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(got) != len(roots) {
		t.Fatalf("imported %d roots, want %d", len(got), len(roots))
	}
	assign := make([]bool, nv)
	for trial := 0; trial < 500; trial++ {
		for v := range assign {
			assign[v] = rng.Intn(2) == 1
		}
		for i, n := range got {
			if m2.Eval(n, assign) != evals[i](assign) {
				t.Fatalf("trial %d: imported root %d disagrees with source", trial, i)
			}
		}
	}
	// Canonicality: exporting the imported roots reproduces the stream.
	nodes2, refs2 := m2.Export(got)
	if len(nodes2) != len(nodes) {
		t.Fatalf("re-export has %d words, want %d", len(nodes2), len(nodes))
	}
	for i := range nodes {
		if nodes[i] != nodes2[i] {
			t.Fatalf("re-export diverges at word %d", i)
		}
	}
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("re-export root ref %d diverges", i)
		}
	}
}

// TestImportRejectsMalformed feeds the importer damaged streams; each must
// be rejected with an error rather than a panic or a silently wrong node.
func TestImportRejectsMalformed(t *testing.T) {
	m := New(4)
	a := m.And(m.Var(0), m.Or(m.Var(1), m.NVar(2)))
	b := m.Xor(m.Var(2), m.Var(3))
	nodes, refs := m.Export([]Node{a, b})

	mangle := func(fn func(n []uint32, r []uint32) ([]uint32, []uint32)) error {
		n := append([]uint32(nil), nodes...)
		r := append([]uint32(nil), refs...)
		n, r = fn(n, r)
		m2 := New(4)
		defer m2.Close()
		_, err := m2.Import(n, r)
		return err
	}

	cases := []struct {
		name string
		fn   func(n, r []uint32) ([]uint32, []uint32)
	}{
		{"truncated nodes", func(n, r []uint32) ([]uint32, []uint32) { return n[:len(n)-3], r }},
		{"ragged length", func(n, r []uint32) ([]uint32, []uint32) { return n[:len(n)-1], r }},
		{"forward ref", func(n, r []uint32) ([]uint32, []uint32) {
			n[1] = uint32(m.SeedLen()) + uint32(len(n)/3)
			return n, r
		}},
		{"root out of range", func(n, r []uint32) ([]uint32, []uint32) {
			r[0] = uint32(m.SeedLen()) + uint32(len(n)/3) + 7
			return n, r
		}},
		{"bad level", func(n, r []uint32) ([]uint32, []uint32) {
			n[0] = 1 << 30
			return n, r
		}},
	}
	for _, tc := range cases {
		if err := mangle(tc.fn); err == nil {
			t.Fatalf("%s: malformed stream imported without error", tc.name)
		}
	}
}
