// Package trie implements a binary prefix trie over IPv4 prefixes. Bonsai
// uses it to partition the address space into destination equivalence
// classes: leaves record which routers originate each prefix, and every
// address range whose longest-match prefix is the same belongs to one class
// (paper §5.1, "Destination Equivalence Classes").
package trie

import (
	"fmt"
	"iter"
	"net/netip"
	"sort"
)

// Trie maps IPv4 prefixes to sets of origin names.
type Trie struct {
	root *node
	n    int
}

type node struct {
	lo, hi  *node // bit 0 / bit 1 children
	origins map[string]bool
	term    bool // a prefix ends exactly here
	prefix  netip.Prefix
}

// New returns an empty trie.
func New() *Trie { return &Trie{root: &node{}} }

// Len returns the number of distinct prefixes inserted.
func (t *Trie) Len() int { return t.n }

// Insert records that origin originates prefix p. Only IPv4 prefixes are
// supported.
func (t *Trie) Insert(p netip.Prefix, origin string) {
	if !p.Addr().Is4() {
		panic(fmt.Sprintf("trie: non-IPv4 prefix %v", p))
	}
	p = p.Masked()
	bits := addrBits(p.Addr())
	cur := t.root
	for i := 0; i < p.Bits(); i++ {
		if bits&(1<<(31-uint(i))) == 0 {
			if cur.lo == nil {
				cur.lo = &node{}
			}
			cur = cur.lo
		} else {
			if cur.hi == nil {
				cur.hi = &node{}
			}
			cur = cur.hi
		}
	}
	if !cur.term {
		cur.term = true
		cur.prefix = p
		cur.origins = make(map[string]bool)
		t.n++
	}
	if origin != "" {
		cur.origins[origin] = true
	}
}

// Lookup returns the origins of the longest inserted prefix containing addr,
// together with that prefix. ok is false when no prefix matches.
func (t *Trie) Lookup(addr netip.Addr) (netip.Prefix, []string, bool) {
	if !addr.Is4() {
		return netip.Prefix{}, nil, false
	}
	bits := addrBits(addr)
	cur := t.root
	var best *node
	for i := 0; i <= 32; i++ {
		if cur.term {
			best = cur
		}
		if i == 32 {
			break
		}
		if bits&(1<<(31-uint(i))) == 0 {
			cur = cur.lo
		} else {
			cur = cur.hi
		}
		if cur == nil {
			break
		}
	}
	if best == nil {
		return netip.Prefix{}, nil, false
	}
	return best.prefix, sortedKeys(best.origins), true
}

// Class is a destination equivalence class: a representative prefix and the
// set of routers originating it. All addresses whose longest match is Prefix
// behave identically in the control plane, so one SRP per class suffices.
type Class struct {
	Prefix  netip.Prefix
	Origins []string
}

// Classes returns one equivalence class per inserted prefix that is the
// longest match for at least one address (i.e. is not fully shadowed by
// longer inserted prefixes). Classes are sorted by prefix. It is a plain
// collector over All; streaming consumers should range over All directly.
func (t *Trie) Classes() []Class {
	out := make([]Class, 0, t.n)
	for c := range t.All() {
		out = append(out, c)
	}
	return out
}

// All yields the equivalence classes of Classes lazily, in the same sorted
// (address, then prefix length) order, without materializing the class
// slice. A pre-order walk (node, then low child, then high child) emits
// prefixes in exactly that order: a parent's base address is the smallest
// address of its subtree and shorter prefixes sort first on ties. Whether a
// term node is shadowed by its descendants is only known bottom-up, so a
// cheap coverage pass over the trie nodes runs first; per-class work
// (sorting origin sets) stays inside the yield loop and stops as soon as
// the consumer does.
func (t *Trie) All() iter.Seq[Class] {
	return func(yield func(Class) bool) {
		// Coverage pass: covered[n] reports whether n's strict descendants
		// fully cover n's address range. Kept in a side map so concurrent
		// iterations never write trie nodes.
		covered := make(map[*node]bool)
		var cover func(n *node) bool // whether subtree fully covers its range
		cover = func(n *node) bool {
			if n == nil {
				return false
			}
			lo, hi := cover(n.lo), cover(n.hi)
			c := lo && hi
			covered[n] = c
			return n.term || c
		}
		cover(t.root)
		var walk func(n *node) bool
		walk = func(n *node) bool {
			if n == nil {
				return true
			}
			if n.term && !covered[n] {
				if !yield(Class{Prefix: n.prefix, Origins: sortedKeys(n.origins)}) {
					return false
				}
			}
			return walk(n.lo) && walk(n.hi)
		}
		walk(t.root)
	}
}

func addrBits(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
