package trie

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestInsertLookup(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), "r1")
	tr.Insert(pfx("10.1.0.0/16"), "r2")
	tr.Insert(pfx("10.1.0.0/16"), "r3")

	p, origins, ok := tr.Lookup(netip.MustParseAddr("10.1.2.3"))
	if !ok || p != pfx("10.1.0.0/16") {
		t.Fatalf("longest match = %v ok=%v", p, ok)
	}
	if len(origins) != 2 || origins[0] != "r2" || origins[1] != "r3" {
		t.Fatalf("origins = %v", origins)
	}

	p, origins, ok = tr.Lookup(netip.MustParseAddr("10.2.0.1"))
	if !ok || p != pfx("10.0.0.0/8") || len(origins) != 1 || origins[0] != "r1" {
		t.Fatalf("fallback match wrong: %v %v %v", p, origins, ok)
	}

	if _, _, ok := tr.Lookup(netip.MustParseAddr("192.168.0.1")); ok {
		t.Fatal("matched address outside any prefix")
	}
}

func TestClassesDisjoint(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/24"), "a")
	tr.Insert(pfx("10.0.1.0/24"), "b")
	tr.Insert(pfx("10.0.2.0/24"), "c")
	cls := tr.Classes()
	if len(cls) != 3 {
		t.Fatalf("classes = %d, want 3", len(cls))
	}
	if cls[0].Prefix != pfx("10.0.0.0/24") || cls[0].Origins[0] != "a" {
		t.Fatalf("first class = %+v", cls[0])
	}
}

func TestClassesShadowing(t *testing.T) {
	tr := New()
	// /24 split fully into two /25s: the /24 is shadowed everywhere.
	tr.Insert(pfx("10.0.0.0/24"), "cover")
	tr.Insert(pfx("10.0.0.0/25"), "lo")
	tr.Insert(pfx("10.0.0.128/25"), "hi")
	cls := tr.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %d, want 2 (shadowed /24 must vanish): %+v", len(cls), cls)
	}
	for _, c := range cls {
		if c.Origins[0] == "cover" {
			t.Fatal("shadowed prefix appeared as a class")
		}
	}
}

func TestClassesPartialShadow(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/24"), "cover")
	tr.Insert(pfx("10.0.0.0/25"), "lo") // only half shadowed
	cls := tr.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %d, want 2: %+v", len(cls), cls)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New()
	tr.Insert(pfx("0.0.0.0/0"), "gw")
	p, origins, ok := tr.Lookup(netip.MustParseAddr("203.0.113.9"))
	if !ok || p.Bits() != 0 || origins[0] != "gw" {
		t.Fatal("default route lookup failed")
	}
	if len(tr.Classes()) != 1 {
		t.Fatal("default route should be one class")
	}
}

func TestLenCountsDistinct(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/24"), "a")
	tr.Insert(pfx("10.0.0.0/24"), "b")
	tr.Insert(pfx("10.0.1.0/24"), "c")
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestRejectIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IPv6 insert did not panic")
		}
	}()
	New().Insert(netip.MustParsePrefix("2001:db8::/32"), "x")
}

// TestAllMatchesSortedClasses proves the streaming walk's emission order:
// pre-order (node, low, high) over the trie must equal the explicit
// (address, prefix length) sort the eager collector used to perform,
// including nested and partially shadowed prefixes.
func TestAllMatchesSortedClasses(t *testing.T) {
	tr := New()
	inserts := []struct {
		p string
		o string
	}{
		{"10.0.0.0/8", "root"},
		{"10.0.0.0/24", "a"},
		{"10.0.0.0/25", "lo"},
		{"10.0.0.128/25", "hi"},
		{"10.0.1.0/24", "b"},
		{"10.128.0.0/9", "upper"},
		{"10.64.3.0/24", "mid"},
		{"0.0.0.0/0", "gw"},
		{"192.168.5.0/24", "edge"},
	}
	for _, in := range inserts {
		tr.Insert(pfx(in.p), in.o)
	}
	// Reference: collect, then sort the way the eager collector did.
	var want []Class
	for c := range tr.All() {
		want = append(want, c)
	}
	sorted := append([]Class(nil), want...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Prefix.Addr() != sorted[j].Prefix.Addr() {
			return sorted[i].Prefix.Addr().Less(sorted[j].Prefix.Addr())
		}
		return sorted[i].Prefix.Bits() < sorted[j].Prefix.Bits()
	})
	if !reflect.DeepEqual(want, sorted) {
		t.Fatalf("All emitted out of sorted order:\n got %v\nwant %v", want, sorted)
	}
	if !reflect.DeepEqual(tr.Classes(), want) {
		t.Fatal("Classes disagrees with All")
	}
	// The fully shadowed /24 must not appear; the partially shadowed /8 must.
	seen := map[string]bool{}
	for _, c := range want {
		seen[c.Origins[0]] = true
	}
	if seen["a"] || !seen["root"] || !seen["gw"] {
		t.Fatalf("shadowing wrong: %v", want)
	}
}

// TestAllEarlyStop verifies the iterator honors a consumer break without
// walking the rest of the trie.
func TestAllEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 64; i++ {
		tr.Insert(pfx(fmt.Sprintf("10.0.%d.0/24", i)), "r")
	}
	n := 0
	for range tr.All() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early stop consumed %d classes", n)
	}
}
