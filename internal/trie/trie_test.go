package trie

import (
	"net/netip"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestInsertLookup(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/8"), "r1")
	tr.Insert(pfx("10.1.0.0/16"), "r2")
	tr.Insert(pfx("10.1.0.0/16"), "r3")

	p, origins, ok := tr.Lookup(netip.MustParseAddr("10.1.2.3"))
	if !ok || p != pfx("10.1.0.0/16") {
		t.Fatalf("longest match = %v ok=%v", p, ok)
	}
	if len(origins) != 2 || origins[0] != "r2" || origins[1] != "r3" {
		t.Fatalf("origins = %v", origins)
	}

	p, origins, ok = tr.Lookup(netip.MustParseAddr("10.2.0.1"))
	if !ok || p != pfx("10.0.0.0/8") || len(origins) != 1 || origins[0] != "r1" {
		t.Fatalf("fallback match wrong: %v %v %v", p, origins, ok)
	}

	if _, _, ok := tr.Lookup(netip.MustParseAddr("192.168.0.1")); ok {
		t.Fatal("matched address outside any prefix")
	}
}

func TestClassesDisjoint(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/24"), "a")
	tr.Insert(pfx("10.0.1.0/24"), "b")
	tr.Insert(pfx("10.0.2.0/24"), "c")
	cls := tr.Classes()
	if len(cls) != 3 {
		t.Fatalf("classes = %d, want 3", len(cls))
	}
	if cls[0].Prefix != pfx("10.0.0.0/24") || cls[0].Origins[0] != "a" {
		t.Fatalf("first class = %+v", cls[0])
	}
}

func TestClassesShadowing(t *testing.T) {
	tr := New()
	// /24 split fully into two /25s: the /24 is shadowed everywhere.
	tr.Insert(pfx("10.0.0.0/24"), "cover")
	tr.Insert(pfx("10.0.0.0/25"), "lo")
	tr.Insert(pfx("10.0.0.128/25"), "hi")
	cls := tr.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %d, want 2 (shadowed /24 must vanish): %+v", len(cls), cls)
	}
	for _, c := range cls {
		if c.Origins[0] == "cover" {
			t.Fatal("shadowed prefix appeared as a class")
		}
	}
}

func TestClassesPartialShadow(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/24"), "cover")
	tr.Insert(pfx("10.0.0.0/25"), "lo") // only half shadowed
	cls := tr.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %d, want 2: %+v", len(cls), cls)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New()
	tr.Insert(pfx("0.0.0.0/0"), "gw")
	p, origins, ok := tr.Lookup(netip.MustParseAddr("203.0.113.9"))
	if !ok || p.Bits() != 0 || origins[0] != "gw" {
		t.Fatal("default route lookup failed")
	}
	if len(tr.Classes()) != 1 {
		t.Fatal("default route should be one class")
	}
}

func TestLenCountsDistinct(t *testing.T) {
	tr := New()
	tr.Insert(pfx("10.0.0.0/24"), "a")
	tr.Insert(pfx("10.0.0.0/24"), "b")
	tr.Insert(pfx("10.0.1.0/24"), "c")
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestRejectIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IPv6 insert did not panic")
		}
	}()
	New().Insert(netip.MustParsePrefix("2001:db8::/32"), "x")
}
