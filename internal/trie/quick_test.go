package trie

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

// refLongestMatch is a linear reference implementation of longest-prefix
// matching for cross-checking the trie.
func refLongestMatch(prefixes []netip.Prefix, addr netip.Addr) (netip.Prefix, bool) {
	best, bits := netip.Prefix{}, -1
	for _, p := range prefixes {
		if p.Contains(addr) && p.Bits() > bits {
			best, bits = p, p.Bits()
		}
	}
	return best, bits >= 0
}

// refFullyShadowed reports whether every address of c has a strictly longer
// inserted match, via exact interval arithmetic on uint32 ranges.
func refFullyShadowed(prefixes []netip.Prefix, c netip.Prefix) bool {
	toRange := func(p netip.Prefix) (uint32, uint64) {
		b := p.Addr().As4()
		lo := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		size := uint64(1) << (32 - p.Bits())
		return lo, uint64(lo) + size
	}
	clo, chi := toRange(c)
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for _, p := range prefixes {
		if p.Bits() <= c.Bits() {
			continue
		}
		plo, phi := toRange(p)
		if uint64(plo) >= uint64(clo) && phi <= chi {
			ivs = append(ivs, iv{uint64(plo), phi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	cursor := uint64(clo)
	for _, v := range ivs {
		if v.lo > cursor {
			return false
		}
		if v.hi > cursor {
			cursor = v.hi
		}
	}
	return cursor >= chi
}

func randPrefix(rng *rand.Rand) netip.Prefix {
	bits := rng.Intn(25) + 8
	addr := netip.AddrFrom4([4]byte{
		byte(rng.Intn(4) * 64), byte(rng.Intn(8) * 32), byte(rng.Intn(256)), 0,
	})
	return netip.PrefixFrom(addr, bits).Masked()
}

func TestQuickLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := New()
		var prefixes []netip.Prefix
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			p := randPrefix(rng)
			prefixes = append(prefixes, p)
			tr.Insert(p, "x")
		}
		for probe := 0; probe < 50; probe++ {
			addr := netip.AddrFrom4([4]byte{
				byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)),
			})
			wantP, wantOK := refLongestMatch(prefixes, addr)
			gotP, _, gotOK := tr.Lookup(addr)
			if gotOK != wantOK || (gotOK && gotP != wantP) {
				t.Fatalf("trial %d addr %v: trie (%v,%v) vs ref (%v,%v)",
					trial, addr, gotP, gotOK, wantP, wantOK)
			}
		}
	}
}

func TestQuickClassesCoverEveryMatch(t *testing.T) {
	// Property: for every address matched by some prefix, the longest match
	// must appear among Classes() (no class is lost), and every class's own
	// network address must have that class as its longest match (classes
	// are never shadowed).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		tr := New()
		var prefixes []netip.Prefix
		for i := 0; i < 1+rng.Intn(12); i++ {
			p := randPrefix(rng)
			prefixes = append(prefixes, p)
			tr.Insert(p, "o")
		}
		classes := tr.Classes()
		inClasses := make(map[netip.Prefix]bool, len(classes))
		for _, c := range classes {
			inClasses[c.Prefix] = true
		}
		for _, c := range classes {
			if refFullyShadowed(prefixes, c.Prefix) {
				t.Fatalf("trial %d: class %v is fully shadowed by longer prefixes", trial, c.Prefix)
			}
		}
		// And the converse: inserted prefixes that are NOT fully shadowed
		// must appear as classes.
		for _, p := range prefixes {
			if !refFullyShadowed(prefixes, p) && !inClasses[p] {
				t.Fatalf("trial %d: live prefix %v missing from classes", trial, p)
			}
		}
		for probe := 0; probe < 40; probe++ {
			addr := netip.AddrFrom4([4]byte{
				byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0,
			})
			if p, ok := refLongestMatch(prefixes, addr); ok && !inClasses[p] {
				t.Fatalf("trial %d: longest match %v of %v missing from classes", trial, p, addr)
			}
		}
	}
}
