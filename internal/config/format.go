package config

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"bonsai/internal/policy"
	"bonsai/internal/protocols"
)

// This file implements the plain-text serialisation of a Network. The format
// is line-oriented:
//
//	network NAME
//	router NAME
//	  bgp as ASN [redistribute ospf] [redistribute static]
//	  neighbor PEER [import MAP] [export MAP]
//	  ospf iface PEER cost N area N
//	  static PREFIX via PEER
//	  originate PREFIX
//	  prefix-list NAME permit|deny PREFIX [ge N] [le N]
//	  community-list NAME ASN:TAG ...
//	  route-map NAME SEQ permit|deny
//	    match community LIST
//	    match prefix LIST
//	    set local-preference N
//	    set community add|delete ASN:TAG
//	  acl NAME permit|deny PREFIX [ge N] [le N]
//	  iface-acl PEER ACL
//	link A B [xN] [down]
//
// Indentation is ignored; "router" opens a device context and match/set
// lines attach to the most recent route-map clause.

// Parse reads a Network from its text form.
func Parse(r io.Reader) (*Network, error) {
	net := New("")
	var cur *Router
	var curClause *policy.Clause
	var curMap string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("config: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "network":
			if len(f) != 2 {
				return nil, fail("network NAME")
			}
			net.Name = f[1]
		case "router":
			if len(f) != 2 {
				return nil, fail("router NAME")
			}
			cur = net.AddRouter(f[1])
			curClause, curMap = nil, ""
		case "link":
			if len(f) < 3 {
				return nil, fail("link A B [xN] [down]")
			}
			count, down := 1, false
			for _, tok := range f[3:] {
				if tok == "down" {
					down = true
					continue
				}
				c, err := strconv.Atoi(strings.TrimPrefix(tok, "x"))
				if err != nil || c < 1 {
					return nil, fail("bad link multiplicity %q", tok)
				}
				count = c
			}
			net.AddLinkN(f[1], f[2], count)
			if down {
				net.Links[net.FindLink(f[1], f[2])].Down = true
			}
		case "bgp":
			if cur == nil {
				return nil, fail("bgp outside router")
			}
			if len(f) < 3 || f[1] != "as" {
				return nil, fail("bgp as ASN")
			}
			asn, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fail("bad ASN %q", f[2])
			}
			bgp := cur.EnsureBGP(asn)
			for i := 3; i+1 < len(f); i += 2 {
				if f[i] != "redistribute" {
					return nil, fail("unexpected token %q", f[i])
				}
				switch f[i+1] {
				case "ospf":
					bgp.RedistributeOSPF = true
				case "static":
					bgp.RedistributeStatic = true
				default:
					return nil, fail("cannot redistribute %q", f[i+1])
				}
			}
		case "neighbor":
			if cur == nil || cur.BGP == nil {
				return nil, fail("neighbor outside bgp router")
			}
			if len(f) < 2 {
				return nil, fail("neighbor PEER ...")
			}
			nb := &Neighbor{}
			for i := 2; i+1 < len(f); i += 2 {
				switch f[i] {
				case "import":
					nb.ImportMap = f[i+1]
				case "export":
					nb.ExportMap = f[i+1]
				default:
					return nil, fail("unexpected token %q", f[i])
				}
			}
			cur.BGP.Neighbors[f[1]] = nb
		case "ospf":
			if cur == nil {
				return nil, fail("ospf outside router")
			}
			if len(f) != 7 || f[1] != "iface" || f[3] != "cost" || f[5] != "area" {
				return nil, fail("ospf iface PEER cost N area N")
			}
			cost, err1 := strconv.Atoi(f[4])
			area, err2 := strconv.Atoi(f[6])
			if err1 != nil || err2 != nil {
				return nil, fail("bad ospf numbers")
			}
			cur.EnsureOSPF().Ifaces[f[2]] = OSPFIface{Cost: cost, Area: area}
		case "static":
			if cur == nil {
				return nil, fail("static outside router")
			}
			if len(f) != 4 || f[2] != "via" {
				return nil, fail("static PREFIX via PEER")
			}
			p, err := netip.ParsePrefix(f[1])
			if err != nil {
				return nil, fail("bad prefix %q", f[1])
			}
			cur.Statics = append(cur.Statics, StaticRoute{Prefix: p, NextHop: f[3]})
		case "originate":
			if cur == nil {
				return nil, fail("originate outside router")
			}
			if len(f) != 2 {
				return nil, fail("originate PREFIX")
			}
			p, err := netip.ParsePrefix(f[1])
			if err != nil {
				return nil, fail("bad prefix %q", f[1])
			}
			cur.Originate = append(cur.Originate, p)
		case "prefix-list", "acl":
			if cur == nil {
				return nil, fail("%s outside router", f[0])
			}
			entry, name, err := parsePrefixEntry(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			if f[0] == "prefix-list" {
				pl := cur.Env.PrefixLists[name]
				if pl == nil {
					pl = &policy.PrefixList{Name: name}
					cur.Env.PrefixLists[name] = pl
				}
				pl.Entries = append(pl.Entries, entry)
			} else {
				acl := cur.Env.ACLs[name]
				if acl == nil {
					acl = &policy.ACL{Name: name}
					cur.Env.ACLs[name] = acl
				}
				acl.Entries = append(acl.Entries, entry)
			}
		case "community-list":
			if cur == nil {
				return nil, fail("community-list outside router")
			}
			if len(f) < 3 {
				return nil, fail("community-list NAME C...")
			}
			cl := &policy.CommunityList{Name: f[1]}
			for _, s := range f[2:] {
				c, err := parseCommunity(s)
				if err != nil {
					return nil, fail("%v", err)
				}
				cl.Communities = append(cl.Communities, c)
			}
			cur.Env.CommunityLists[f[1]] = cl
		case "route-map":
			if cur == nil {
				return nil, fail("route-map outside router")
			}
			if len(f) != 4 {
				return nil, fail("route-map NAME SEQ permit|deny")
			}
			seq, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fail("bad sequence %q", f[2])
			}
			action, err := parseAction(f[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			rm := cur.Env.RouteMaps[f[1]]
			if rm == nil {
				rm = &policy.RouteMap{Name: f[1]}
				cur.Env.RouteMaps[f[1]] = rm
			}
			rm.Clauses = append(rm.Clauses, policy.Clause{Seq: seq, Action: action})
			curMap = f[1]
			curClause = &rm.Clauses[len(rm.Clauses)-1]
		case "match":
			if curClause == nil {
				return nil, fail("match outside route-map clause")
			}
			if len(f) != 3 {
				return nil, fail("match community|prefix LIST")
			}
			switch f[1] {
			case "community":
				curClause.Matches = append(curClause.Matches, policy.Match{Kind: policy.MatchCommunity, Arg: f[2]})
			case "prefix":
				curClause.Matches = append(curClause.Matches, policy.Match{Kind: policy.MatchPrefix, Arg: f[2]})
			default:
				return nil, fail("unknown match kind %q", f[1])
			}
		case "set":
			if curClause == nil {
				return nil, fail("set outside route-map clause")
			}
			switch {
			case len(f) == 3 && f[1] == "local-preference":
				v, err := strconv.Atoi(f[2])
				if err != nil || v < 0 {
					return nil, fail("bad local-preference %q", f[2])
				}
				curClause.Sets = append(curClause.Sets, policy.Set{Kind: policy.SetLocalPref, Value: uint32(v)})
			case len(f) == 4 && f[1] == "community":
				c, err := parseCommunity(f[3])
				if err != nil {
					return nil, fail("%v", err)
				}
				switch f[2] {
				case "add":
					curClause.Sets = append(curClause.Sets, policy.Set{Kind: policy.AddCommunity, Comm: c})
				case "delete":
					curClause.Sets = append(curClause.Sets, policy.Set{Kind: policy.DeleteCommunity, Comm: c})
				default:
					return nil, fail("set community add|delete C")
				}
			default:
				return nil, fail("unknown set %q", line)
			}
			_ = curMap
		case "iface-acl":
			if cur == nil {
				return nil, fail("iface-acl outside router")
			}
			if len(f) != 3 {
				return nil, fail("iface-acl PEER ACL")
			}
			cur.IfaceACL[f[1]] = f[2]
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return net, nil
}

// ParseString parses a Network from a string.
func ParseString(s string) (*Network, error) { return Parse(strings.NewReader(s)) }

func parsePrefixEntry(f []string) (policy.PrefixEntry, string, error) {
	// F: kw NAME permit|deny PREFIX [ge N] [le N]
	if len(f) < 4 {
		return policy.PrefixEntry{}, "", fmt.Errorf("%s NAME permit|deny PREFIX [ge N] [le N]", f[0])
	}
	action, err := parseAction(f[2])
	if err != nil {
		return policy.PrefixEntry{}, "", err
	}
	p, err := netip.ParsePrefix(f[3])
	if err != nil {
		return policy.PrefixEntry{}, "", fmt.Errorf("bad prefix %q", f[3])
	}
	e := policy.PrefixEntry{Action: action, Prefix: p}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.Atoi(f[i+1])
		if err != nil {
			return policy.PrefixEntry{}, "", fmt.Errorf("bad bound %q", f[i+1])
		}
		switch f[i] {
		case "ge":
			e.Ge = v
		case "le":
			e.Le = v
		default:
			return policy.PrefixEntry{}, "", fmt.Errorf("unexpected token %q", f[i])
		}
	}
	return e, f[1], nil
}

func parseAction(s string) (policy.Action, error) {
	switch s {
	case "permit":
		return policy.Permit, nil
	case "deny":
		return policy.Deny, nil
	default:
		return 0, fmt.Errorf("bad action %q", s)
	}
}

func parseCommunity(s string) (protocols.Community, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad community %q", s)
	}
	asn, err1 := strconv.Atoi(parts[0])
	tag, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || asn < 0 || asn > 0xffff || tag < 0 || tag > 0xffff {
		return 0, fmt.Errorf("bad community %q", s)
	}
	return protocols.MakeCommunity(uint16(asn), uint16(tag)), nil
}

// Print writes the network in its text form, deterministically ordered.
func Print(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	if n.Name != "" {
		fmt.Fprintf(bw, "network %s\n\n", n.Name)
	}
	for _, name := range n.RouterNames() {
		r := n.Routers[name]
		fmt.Fprintf(bw, "router %s\n", name)
		if r.BGP != nil {
			fmt.Fprintf(bw, "  bgp as %d", r.BGP.ASN)
			if r.BGP.RedistributeOSPF {
				fmt.Fprint(bw, " redistribute ospf")
			}
			if r.BGP.RedistributeStatic {
				fmt.Fprint(bw, " redistribute static")
			}
			fmt.Fprintln(bw)
			for _, peer := range sortedKeys(r.BGP.Neighbors) {
				nb := r.BGP.Neighbors[peer]
				fmt.Fprintf(bw, "  neighbor %s", peer)
				if nb.ImportMap != "" {
					fmt.Fprintf(bw, " import %s", nb.ImportMap)
				}
				if nb.ExportMap != "" {
					fmt.Fprintf(bw, " export %s", nb.ExportMap)
				}
				fmt.Fprintln(bw)
			}
		}
		if r.OSPF != nil {
			for _, peer := range sortedKeys(r.OSPF.Ifaces) {
				i := r.OSPF.Ifaces[peer]
				fmt.Fprintf(bw, "  ospf iface %s cost %d area %d\n", peer, i.Cost, i.Area)
			}
		}
		for _, s := range r.Statics {
			fmt.Fprintf(bw, "  static %s via %s\n", s.Prefix, s.NextHop)
		}
		for _, p := range r.Originate {
			fmt.Fprintf(bw, "  originate %s\n", p)
		}
		for _, pl := range sortedKeys(r.Env.PrefixLists) {
			for _, e := range r.Env.PrefixLists[pl].Entries {
				printEntry(bw, "prefix-list", pl, e)
			}
		}
		for _, cl := range sortedKeys(r.Env.CommunityLists) {
			fmt.Fprintf(bw, "  community-list %s", cl)
			for _, c := range r.Env.CommunityLists[cl].Communities {
				fmt.Fprintf(bw, " %s", c)
			}
			fmt.Fprintln(bw)
		}
		for _, rmName := range sortedKeys(r.Env.RouteMaps) {
			rm := r.Env.RouteMaps[rmName]
			for _, cl := range rm.Clauses {
				fmt.Fprintf(bw, "  route-map %s %d %s\n", rmName, cl.Seq, cl.Action)
				for _, m := range cl.Matches {
					kind := "community"
					if m.Kind == policy.MatchPrefix {
						kind = "prefix"
					}
					fmt.Fprintf(bw, "    match %s %s\n", kind, m.Arg)
				}
				for _, s := range cl.Sets {
					switch s.Kind {
					case policy.SetLocalPref:
						fmt.Fprintf(bw, "    set local-preference %d\n", s.Value)
					case policy.AddCommunity:
						fmt.Fprintf(bw, "    set community add %s\n", s.Comm)
					case policy.DeleteCommunity:
						fmt.Fprintf(bw, "    set community delete %s\n", s.Comm)
					}
				}
			}
		}
		for _, acl := range sortedKeys(r.Env.ACLs) {
			for _, e := range r.Env.ACLs[acl].Entries {
				printEntry(bw, "acl", acl, e)
			}
		}
		for _, peer := range sortedKeys(r.IfaceACL) {
			fmt.Fprintf(bw, "  iface-acl %s %s\n", peer, r.IfaceACL[peer])
		}
		fmt.Fprintln(bw)
	}
	links := append([]Link(nil), n.Links...)
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	for _, l := range links {
		if l.count() > 1 {
			fmt.Fprintf(bw, "link %s %s x%d", l.A, l.B, l.count())
		} else {
			fmt.Fprintf(bw, "link %s %s", l.A, l.B)
		}
		if l.Down {
			fmt.Fprint(bw, " down")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// PrintString renders the network to a string.
func PrintString(n *Network) string {
	var b strings.Builder
	if err := Print(&b, n); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

func printEntry(w io.Writer, kw, name string, e policy.PrefixEntry) {
	fmt.Fprintf(w, "  %s %s %s %s", kw, name, e.Action, e.Prefix)
	if e.Ge != 0 {
		fmt.Fprintf(w, " ge %d", e.Ge)
	}
	if e.Le != 0 {
		fmt.Fprintf(w, " le %d", e.Le)
	}
	fmt.Fprintln(w)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
