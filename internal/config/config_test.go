package config

import (
	"net/netip"
	"strings"
	"testing"

	"bonsai/internal/policy"
	"bonsai/internal/protocols"
)

const sampleText = `
network demo

router r1
  bgp as 65001 redistribute static
  neighbor r2 import IMP export EXP
  static 10.9.0.0/24 via r2
  originate 10.1.0.0/24
  prefix-list PL permit 10.0.0.0/8 ge 8 le 32
  community-list CL 65001:1 65001:2
  route-map IMP 10 permit
    match community CL
    set local-preference 350
    set community add 65001:3
  route-map IMP 20 permit
  route-map EXP 10 permit
  acl A deny 10.9.0.0/24
  acl A permit 0.0.0.0/0 le 32
  iface-acl r2 A

router r2
  bgp as 65002
  neighbor r1 export EXP2
  ospf iface r3 cost 5 area 1
  route-map EXP2 10 permit
    match prefix NET
  prefix-list NET permit 10.1.0.0/16 ge 16 le 24

router r3
  originate 10.2.0.0/24

link r1 r2
link r2 r3 x4
`

func parseSample(t *testing.T) *Network {
	t.Helper()
	n, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseBasics(t *testing.T) {
	n := parseSample(t)
	if n.Name != "demo" || len(n.Routers) != 3 || len(n.Links) != 2 {
		t.Fatalf("parsed shape wrong: %s %d %d", n.Name, len(n.Routers), len(n.Links))
	}
	r1 := n.Routers["r1"]
	if r1.BGP == nil || r1.BGP.ASN != 65001 || !r1.BGP.RedistributeStatic || r1.BGP.RedistributeOSPF {
		t.Fatalf("r1 bgp wrong: %+v", r1.BGP)
	}
	nb := r1.BGP.Neighbors["r2"]
	if nb == nil || nb.ImportMap != "IMP" || nb.ExportMap != "EXP" {
		t.Fatalf("neighbor wrong: %+v", nb)
	}
	if len(r1.Statics) != 1 || r1.Statics[0].NextHop != "r2" {
		t.Fatalf("statics wrong: %+v", r1.Statics)
	}
	rm := r1.Env.RouteMaps["IMP"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("route map wrong: %+v", rm)
	}
	cl := rm.Clauses[0]
	if len(cl.Matches) != 1 || cl.Matches[0].Kind != policy.MatchCommunity {
		t.Fatalf("clause matches wrong: %+v", cl)
	}
	if len(cl.Sets) != 2 || cl.Sets[0].Value != 350 {
		t.Fatalf("clause sets wrong: %+v", cl)
	}
	r2 := n.Routers["r2"]
	if r2.OSPF == nil || r2.OSPF.Ifaces["r3"] != (OSPFIface{Cost: 5, Area: 1}) {
		t.Fatalf("ospf wrong: %+v", r2.OSPF)
	}
	if n.Links[1].count() != 4 {
		t.Fatalf("link multiplicity wrong: %+v", n.Links[1])
	}
	if n.NumInterfaces() != 2+8 {
		t.Fatalf("NumInterfaces = %d", n.NumInterfaces())
	}
}

func TestValidateOK(t *testing.T) {
	n := parseSample(t)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
	}{
		{"bgp neighbor without link", func(n *Network) {
			n.Routers["r1"].BGP.Neighbors["r3"] = &Neighbor{}
		}},
		{"unknown route map", func(n *Network) {
			n.Routers["r1"].BGP.Neighbors["r2"].ImportMap = "NOPE"
		}},
		{"static via non-neighbor", func(n *Network) {
			r := n.Routers["r1"]
			r.Statics = append(r.Statics, StaticRoute{Prefix: netip.MustParsePrefix("1.0.0.0/8"), NextHop: "r3"})
		}},
		{"unknown ACL", func(n *Network) {
			n.Routers["r1"].IfaceACL["r2"] = "MISSING"
		}},
		{"unknown community list", func(n *Network) {
			rm := n.Routers["r1"].Env.RouteMaps["IMP"]
			rm.Clauses[0].Matches[0].Arg = "GONE"
		}},
	}
	for _, tc := range cases {
		n := parseSample(t)
		tc.mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	n := parseSample(t)
	text := PrintString(n)
	n2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	text2 := PrintString(n2)
	if text != text2 {
		t.Fatalf("round-trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	if err := n2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bgp as 65001",                                     // outside router
		"router r1\n  neighbor r2",                         // neighbor without bgp
		"router r1\n  static 10.0.0.0/24",                  // missing via
		"router r1\n  route-map M permit",                  // missing seq
		"router r1\n  community-list L 65001",              // bad community
		"router r1\n  route-map M 10 permit\n  set oops 1", // unknown set
		"frobnicate", // unknown directive
		"link a",     // short link
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("parse accepted %q", s)
		}
	}
}

func TestCommunityUniverses(t *testing.T) {
	n := parseSample(t)
	matched := n.MatchedCommunities()
	// Only CL's communities are matched: 65001:1, 65001:2.
	if len(matched) != 2 {
		t.Fatalf("matched = %v", matched)
	}
	all := n.AllCommunities()
	// Adds the set-only 65001:3.
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
	want := protocols.MakeCommunity(65001, 3)
	found := false
	for _, c := range all {
		if c == want {
			found = true
		}
	}
	if !found {
		t.Fatal("set-only community missing from AllCommunities")
	}
}

func TestOriginatedPrefixes(t *testing.T) {
	n := parseSample(t)
	op := n.OriginatedPrefixes()
	if len(op) != 2 {
		t.Fatalf("originated = %v", op)
	}
	if got := op[netip.MustParsePrefix("10.1.0.0/24")]; len(got) != 1 || got[0] != "r1" {
		t.Fatalf("10.1.0.0/24 origins = %v", got)
	}
}

func TestAddLinkIdempotent(t *testing.T) {
	n := New("t")
	n.AddRouter("a")
	n.AddRouter("b")
	n.AddLink("a", "b")
	n.AddLink("b", "a")
	if len(n.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(n.Links))
	}
}

func TestPrintOmitsEmptyNetworkName(t *testing.T) {
	n := New("")
	n.AddRouter("a")
	if strings.Contains(PrintString(n), "network") {
		t.Fatal("empty name should not print a network line")
	}
}
