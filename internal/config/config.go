// Package config defines the vendor-independent configuration representation
// Bonsai operates over (paper §7: Batfish's intermediate representation).
// A Network bundles routers and links; each router carries its BGP and OSPF
// process configuration, static routes, originated prefixes and a namespace
// of policy objects (route maps, prefix lists, community lists, ACLs).
// A plain-text serialisation lives in format.go so compressed networks can
// be written back out as smaller configurations, as Bonsai does.
package config

import (
	"fmt"
	"net/netip"
	"sort"

	"bonsai/internal/policy"
	"bonsai/internal/protocols"
)

// Network is a set of routers joined by links.
type Network struct {
	Name    string
	Routers map[string]*Router
	Links   []Link
}

// Link is an undirected connection between two routers. Count models
// parallel virtual interfaces (VLAN subinterfaces) sharing the link and the
// same policies; it defaults to 1 and only affects interface accounting,
// not routing. Down marks the link administratively down: the routers'
// session and interface configurations referencing it remain valid, but the
// link carries no adjacency in the SRP topology — incremental updates flap
// links by toggling this flag rather than rewriting neighbor state.
type Link struct {
	A, B  string
	Count int
	Down  bool
}

func (l Link) count() int {
	if l.Count <= 0 {
		return 1
	}
	return l.Count
}

// Router is one device configuration.
type Router struct {
	Name      string
	Env       *policy.Env
	BGP       *BGPConfig
	OSPF      *OSPFConfig
	Statics   []StaticRoute
	Originate []netip.Prefix
	// IfaceACL maps a neighbor name to the ACL filtering traffic forwarded
	// out the interface toward that neighbor.
	IfaceACL map[string]string
}

// BGPConfig is a router's BGP process.
type BGPConfig struct {
	ASN       int
	Neighbors map[string]*Neighbor
	// RedistributeOSPF and RedistributeStatic inject RIB routes learned
	// from those protocols into BGP (paper §6, route redistribution).
	RedistributeOSPF   bool
	RedistributeStatic bool
}

// Neighbor is a BGP session toward the named peer router.
type Neighbor struct {
	ImportMap string // route map applied to routes received from the peer
	ExportMap string // route map applied to routes sent to the peer
}

// OSPFConfig is a router's OSPF process.
type OSPFConfig struct {
	Ifaces map[string]OSPFIface // keyed by neighbor name
}

// OSPFIface is the OSPF configuration of one interface.
type OSPFIface struct {
	Cost int
	Area int
}

// StaticRoute sends traffic for Prefix to the named next-hop neighbor.
type StaticRoute struct {
	Prefix  netip.Prefix
	NextHop string
}

// New returns an empty network.
func New(name string) *Network {
	return &Network{Name: name, Routers: make(map[string]*Router)}
}

// AddRouter creates (or returns) the named router.
func (n *Network) AddRouter(name string) *Router {
	if r, ok := n.Routers[name]; ok {
		return r
	}
	r := &Router{Name: name, Env: policy.NewEnv(), IfaceACL: make(map[string]string)}
	n.Routers[name] = r
	return r
}

// AddLink connects two routers (idempotent on the unordered pair).
func (n *Network) AddLink(a, b string) {
	n.AddLinkN(a, b, 1)
}

// AddLinkN connects two routers with count parallel virtual interfaces.
func (n *Network) AddLinkN(a, b string, count int) {
	for _, l := range n.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return
		}
	}
	n.Links = append(n.Links, Link{A: a, B: b, Count: count})
}

// RouterNames returns all router names sorted.
func (n *Network) RouterNames() []string {
	out := make([]string, 0, len(n.Routers))
	for name := range n.Routers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumInterfaces counts directed interfaces including virtual multiplicity,
// matching how the paper reports edge counts for the operational networks.
// Administratively-down links do not count.
func (n *Network) NumInterfaces() int {
	total := 0
	for _, l := range n.Links {
		if l.Down {
			continue
		}
		total += 2 * l.count()
	}
	return total
}

// FindLink returns the index in Links of the link joining a and b (in either
// order), or -1 when none exists.
func (n *Network) FindLink(a, b string) int {
	for i, l := range n.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return i
		}
	}
	return -1
}

// Clone returns a structurally independent copy of the network: routers,
// link records and all per-router slices and maps are fresh, so mutating the
// clone never changes the original. Policy namespaces (Env) are shared
// pointers — they are immutable by convention once a network is built; a
// caller editing policies must first replace the router's Env via
// CloneEnv.
func (n *Network) Clone() *Network {
	out := &Network{
		Name:    n.Name,
		Routers: make(map[string]*Router, len(n.Routers)),
		Links:   append([]Link(nil), n.Links...),
	}
	for name, r := range n.Routers {
		cr := &Router{
			Name:      r.Name,
			Env:       r.Env,
			Statics:   append([]StaticRoute(nil), r.Statics...),
			Originate: append([]netip.Prefix(nil), r.Originate...),
			IfaceACL:  make(map[string]string, len(r.IfaceACL)),
		}
		for k, v := range r.IfaceACL {
			cr.IfaceACL[k] = v
		}
		if r.BGP != nil {
			cb := &BGPConfig{
				ASN:                r.BGP.ASN,
				Neighbors:          make(map[string]*Neighbor, len(r.BGP.Neighbors)),
				RedistributeOSPF:   r.BGP.RedistributeOSPF,
				RedistributeStatic: r.BGP.RedistributeStatic,
			}
			for peer, nb := range r.BGP.Neighbors {
				c := *nb
				cb.Neighbors[peer] = &c
			}
			cr.BGP = cb
		}
		if r.OSPF != nil {
			co := &OSPFConfig{Ifaces: make(map[string]OSPFIface, len(r.OSPF.Ifaces))}
			for peer, ifc := range r.OSPF.Ifaces {
				co.Ifaces[peer] = ifc
			}
			cr.OSPF = co
		}
		out.Routers[name] = cr
	}
	return out
}

// CloneEnv replaces the router's policy namespace with a copy whose maps are
// fresh (the named objects themselves stay shared — replace an entry to edit
// it). Incremental updates call this before editing a router's policies so
// that other clones sharing the original Env are unaffected.
func (r *Router) CloneEnv() {
	e := policy.NewEnv()
	for k, v := range r.Env.PrefixLists {
		e.PrefixLists[k] = v
	}
	for k, v := range r.Env.CommunityLists {
		e.CommunityLists[k] = v
	}
	for k, v := range r.Env.RouteMaps {
		e.RouteMaps[k] = v
	}
	for k, v := range r.Env.ACLs {
		e.ACLs[k] = v
	}
	r.Env = e
}

// EnsureBGP returns the router's BGP config, creating it with the ASN.
func (r *Router) EnsureBGP(asn int) *BGPConfig {
	if r.BGP == nil {
		r.BGP = &BGPConfig{ASN: asn, Neighbors: make(map[string]*Neighbor)}
	}
	return r.BGP
}

// EnsureOSPF returns the router's OSPF config, creating it if needed.
func (r *Router) EnsureOSPF() *OSPFConfig {
	if r.OSPF == nil {
		r.OSPF = &OSPFConfig{Ifaces: make(map[string]OSPFIface)}
	}
	return r.OSPF
}

// Validate checks referential integrity: links point at existing routers,
// BGP neighbors and static next-hops are linked peers, and policy names
// resolve.
func (n *Network) Validate() error {
	adj := make(map[string]map[string]bool)
	for name := range n.Routers {
		adj[name] = make(map[string]bool)
	}
	for _, l := range n.Links {
		if _, ok := n.Routers[l.A]; !ok {
			return fmt.Errorf("config: link references unknown router %q", l.A)
		}
		if _, ok := n.Routers[l.B]; !ok {
			return fmt.Errorf("config: link references unknown router %q", l.B)
		}
		adj[l.A][l.B] = true
		adj[l.B][l.A] = true
	}
	for _, name := range n.RouterNames() {
		r := n.Routers[name]
		if r.BGP != nil {
			for peer, nb := range r.BGP.Neighbors {
				if !adj[name][peer] {
					return fmt.Errorf("config: %s has BGP neighbor %s without a link", name, peer)
				}
				for _, rm := range []string{nb.ImportMap, nb.ExportMap} {
					if rm != "" {
						if _, ok := r.Env.RouteMaps[rm]; !ok {
							return fmt.Errorf("config: %s references unknown route map %q", name, rm)
						}
					}
				}
			}
		}
		if r.OSPF != nil {
			for peer := range r.OSPF.Ifaces {
				if !adj[name][peer] {
					return fmt.Errorf("config: %s has OSPF iface toward %s without a link", name, peer)
				}
			}
		}
		for _, s := range r.Statics {
			if !adj[name][s.NextHop] {
				return fmt.Errorf("config: %s static route via non-neighbor %s", name, s.NextHop)
			}
		}
		for peer, acl := range r.IfaceACL {
			if !adj[name][peer] {
				return fmt.Errorf("config: %s has ACL on non-neighbor iface %s", name, peer)
			}
			if _, ok := r.Env.ACLs[acl]; !ok {
				return fmt.Errorf("config: %s references unknown ACL %q", name, acl)
			}
		}
		for rmName, rm := range r.Env.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, m := range cl.Matches {
					switch m.Kind {
					case policy.MatchCommunity:
						if _, ok := r.Env.CommunityLists[m.Arg]; !ok {
							return fmt.Errorf("config: %s route map %s uses unknown community list %q", name, rmName, m.Arg)
						}
					case policy.MatchPrefix:
						if _, ok := r.Env.PrefixLists[m.Arg]; !ok {
							return fmt.Errorf("config: %s route map %s uses unknown prefix list %q", name, rmName, m.Arg)
						}
					}
				}
			}
		}
	}
	return nil
}

// MatchedCommunities returns every community that some router's route map
// can actually match on (via a referenced community list). Using this as the
// BDD universe implements the unused-tag-erasing attribute abstraction of
// §8; AllCommunities is the non-erasing alternative.
func (n *Network) MatchedCommunities() []protocols.Community {
	set := make(map[protocols.Community]bool)
	for _, r := range n.Routers {
		for _, rm := range r.Env.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, m := range cl.Matches {
					if m.Kind != policy.MatchCommunity {
						continue
					}
					if l, ok := r.Env.CommunityLists[m.Arg]; ok {
						for _, c := range l.Communities {
							set[c] = true
						}
					}
				}
			}
		}
	}
	return sortedComms(set)
}

// AllCommunities returns every community mentioned anywhere: matched in
// lists or set/deleted by route maps.
func (n *Network) AllCommunities() []protocols.Community {
	set := make(map[protocols.Community]bool)
	for _, r := range n.Routers {
		for _, l := range r.Env.CommunityLists {
			for _, c := range l.Communities {
				set[c] = true
			}
		}
		for _, rm := range r.Env.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, s := range cl.Sets {
					if s.Kind == policy.AddCommunity || s.Kind == policy.DeleteCommunity {
						set[s.Comm] = true
					}
				}
			}
		}
	}
	return sortedComms(set)
}

func sortedComms(set map[protocols.Community]bool) []protocols.Community {
	out := make([]protocols.Community, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OriginatedPrefixes returns every originated prefix with its origin
// routers, sorted by prefix then router.
func (n *Network) OriginatedPrefixes() map[netip.Prefix][]string {
	out := make(map[netip.Prefix][]string)
	for _, name := range n.RouterNames() {
		for _, p := range n.Routers[name].Originate {
			out[p.Masked()] = append(out[p.Masked()], name)
		}
	}
	return out
}
