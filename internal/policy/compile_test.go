package policy

import (
	"math/rand"
	"testing"

	"bonsai/internal/protocols"
)

func figure10Env() (*Env, []protocols.Community) {
	c1 := protocols.MakeCommunity(65001, 1)
	c2 := protocols.MakeCommunity(65001, 2)
	c3 := protocols.MakeCommunity(65001, 3)
	env := NewEnv()
	env.CommunityLists["dept"] = &CommunityList{Name: "dept", Communities: []protocols.Community{c1, c2}}
	env.RouteMaps["M"] = &RouteMap{Name: "M", Clauses: []Clause{
		{Seq: 10, Action: Permit,
			Matches: []Match{{Kind: MatchCommunity, Arg: "dept"}},
			Sets: []Set{
				{Kind: AddCommunity, Comm: c3},
				{Kind: SetLocalPref, Value: 350},
			}},
		{Seq: 20, Action: Permit},
	}}
	return env, []protocols.Community{c1, c2, c3}
}

func TestCompileMatchesConcreteEval(t *testing.T) {
	env, comms := figure10Env()
	c := NewCompiler(comms)
	rel := c.CompileRouteMap(env, "M", pfx("10.0.0.0/24"))

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var in protocols.CommSet
		for _, cm := range comms {
			if rng.Intn(2) == 0 {
				in = in.With(cm)
			}
		}
		lp := uint32(rng.Intn(1 << 10))
		attr := &protocols.BGPAttr{LP: lp, Comms: in}
		want := env.EvalRouteMap("M", pfx("10.0.0.0/24"), attr)
		gotComms, gotLP, ok := c.Apply(rel, in, lp)
		if (want != nil) != ok {
			t.Fatalf("drop mismatch for %v", in)
		}
		if want == nil {
			continue
		}
		if gotLP != want.LP || !gotComms.Equal(want.Comms) {
			t.Fatalf("in=%v lp=%d: symbolic (%v,%d) vs concrete (%v,%d)",
				in, lp, gotComms, gotLP, want.Comms, want.LP)
		}
	}
}

func TestCompileCanonicalEquivalence(t *testing.T) {
	// Two syntactically different but semantically equal route maps must
	// compile to the same node.
	c1 := protocols.MakeCommunity(1, 1)
	env := NewEnv()
	env.CommunityLists["l"] = &CommunityList{Communities: []protocols.Community{c1}}
	env.RouteMaps["A"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Matches: []Match{{Kind: MatchCommunity, Arg: "l"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 200}}},
		{Action: Permit},
	}}
	// B writes the same function with a redundant extra clause.
	env.RouteMaps["B"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Matches: []Match{{Kind: MatchCommunity, Arg: "l"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 200}}},
		{Action: Permit, Matches: []Match{{Kind: MatchCommunity, Arg: "l"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 999}}}, // unreachable
		{Action: Permit},
	}}
	// C is genuinely different.
	env.RouteMaps["C"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Matches: []Match{{Kind: MatchCommunity, Arg: "l"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 300}}},
		{Action: Permit},
	}}
	c := NewCompiler([]protocols.Community{c1})
	p := pfx("10.0.0.0/24")
	a, b, cc := c.CompileRouteMap(env, "A", p), c.CompileRouteMap(env, "B", p), c.CompileRouteMap(env, "C", p)
	if a != b {
		t.Fatal("equivalent policies compiled to different nodes")
	}
	if a == cc {
		t.Fatal("different policies compiled to the same node")
	}
}

func TestCompilePrefixSpecialisation(t *testing.T) {
	env := NewEnv()
	env.PrefixLists["only10"] = &PrefixList{Entries: []PrefixEntry{
		{Action: Permit, Prefix: pfx("10.0.0.0/8"), Ge: 8, Le: 32},
	}}
	env.RouteMaps["F"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Matches: []Match{{Kind: MatchPrefix, Arg: "only10"}}},
	}}
	c := NewCompiler(nil)
	relIn := c.CompileRouteMap(env, "F", pfx("10.1.0.0/16"))
	relOut := c.CompileRouteMap(env, "F", pfx("192.168.0.0/16"))
	if c.AlwaysDrops(relIn) {
		t.Fatal("permitted destination compiled to constant drop")
	}
	if !c.AlwaysDrops(relOut) {
		t.Fatal("filtered destination should compile to constant drop")
	}
	if relIn != c.IdentityRelation() {
		t.Fatal("pass-through policy should equal the identity relation")
	}
}

func TestCompileEdgeComposition(t *testing.T) {
	// Export adds a tag; import raises LP when the tag is present. The
	// composition must equal a single map that raises LP unconditionally
	// and adds the tag.
	tag := protocols.MakeCommunity(65001, 1)
	envV := NewEnv()
	envV.RouteMaps["exp"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Sets: []Set{{Kind: AddCommunity, Comm: tag}}},
	}}
	envU := NewEnv()
	envU.CommunityLists["t"] = &CommunityList{Communities: []protocols.Community{tag}}
	envU.RouteMaps["imp"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Matches: []Match{{Kind: MatchCommunity, Arg: "t"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 200}}},
		{Action: Permit},
	}}
	envOne := NewEnv()
	envOne.RouteMaps["both"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Sets: []Set{
			{Kind: AddCommunity, Comm: tag},
			{Kind: SetLocalPref, Value: 200},
		}},
	}}
	c := NewCompiler([]protocols.Community{tag})
	p := pfx("10.0.0.0/24")
	composed := c.CompileEdge(envV, "exp", envU, "imp", p)
	direct := c.CompileRouteMap(envOne, "both", p)
	if composed != direct {
		t.Fatal("export∘import composition not canonical")
	}
}

func TestUnusedCommunityErasure(t *testing.T) {
	// Routers A and B differ only in a community they set that nobody ever
	// matches. With the tag in the universe they compile differently; with
	// the erasing universe (matched communities only) they compile equal.
	// This reproduces the §8 role-collapse mechanism (112 -> 26 roles).
	unused1 := protocols.MakeCommunity(65000, 1)
	unused2 := protocols.MakeCommunity(65000, 2)
	env := NewEnv()
	env.RouteMaps["A"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Sets: []Set{{Kind: AddCommunity, Comm: unused1}}},
	}}
	env.RouteMaps["B"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Sets: []Set{{Kind: AddCommunity, Comm: unused2}}},
	}}
	p := pfx("10.0.0.0/24")

	full := NewCompiler([]protocols.Community{unused1, unused2})
	if full.CompileRouteMap(env, "A", p) == full.CompileRouteMap(env, "B", p) {
		t.Fatal("distinct tags should differ under the full universe")
	}
	erased := NewCompiler(nil) // neither tag is ever matched
	if erased.CompileRouteMap(env, "A", p) != erased.CompileRouteMap(env, "B", p) {
		t.Fatal("unused-tag differences should vanish under erasure")
	}
}

func TestSequentialDenyPropagates(t *testing.T) {
	// If export denies, import never resurrects the route.
	env := NewEnv()
	env.RouteMaps["deny"] = &RouteMap{Clauses: []Clause{{Action: Deny}}}
	env.RouteMaps["permit"] = &RouteMap{Clauses: []Clause{{Action: Permit}}}
	c := NewCompiler(nil)
	p := pfx("10.0.0.0/24")
	rel := c.CompileEdge(env, "deny", env, "permit", p)
	if !c.AlwaysDrops(rel) {
		t.Fatal("deny-then-permit should always drop")
	}
}
