package policy

import (
	"fmt"
	"net/netip"
	"sort"

	"bonsai/internal/bdd"
	"bonsai/internal/protocols"
)

// LPBits is the width of the symbolic local-preference encoding. The paper
// uses the full 32-bit value (Figure 10); 16 bits cover every value used in
// practice (default 100, policy values in the hundreds) and keep diagrams
// small. Compilation panics on larger configured values.
const LPBits = 16

// Compiler translates route maps into canonical BDD relations over a fixed
// community universe, specialised to one destination prefix. Because the
// underlying bdd.Manager hash-conses, two route maps (or route-map
// compositions) are semantically equivalent for that destination iff their
// compiled roots are the same Node — the O(1) equivalence check Bonsai's
// refinement loop depends on.
//
// Variable layout (interleaved input/output for compact diagrams):
//
//	community i: input var 2i, output var 2i+1
//	local-pref bit j: input var 2C+2j, output var 2C+2j+1
//	drop flag: output var 2C+2·LPBits
//
// where C is the size of the community universe.
type Compiler struct {
	M       *bdd.Manager
	comms   []protocols.Community
	commIdx map[protocols.Community]int
	space   *Space

	// Cache is a consumer-owned slot for per-compiler memo state
	// (internal/build hangs its edge-relation cache here). It follows the
	// compiler's single-goroutine ownership contract and dies with the
	// compiler, so no shared registry pins it.
	Cache any
}

// Space is a shared compilation universe: the sorted community vocabulary,
// its index, and the canonical BDD constant space over the derived variable
// layout. Building it once and stamping per-worker compilers from it keeps
// every worker's terminals, variable diagrams and variable layout globally
// canonical while each worker owns a private manager (no locking).
type Space struct {
	comms   []protocols.Community
	commIdx map[protocols.Community]int
	bs      *bdd.Space
}

// NewSpace builds the shared compilation universe for the given community
// set (deduplicated and sorted, like NewCompiler).
func NewSpace(universe []protocols.Community) *Space {
	comms := append([]protocols.Community(nil), universe...)
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	dedup := comms[:0]
	for i, c := range comms {
		if i == 0 || c != comms[i-1] {
			dedup = append(dedup, c)
		}
	}
	comms = dedup
	s := &Space{
		comms:   comms,
		commIdx: make(map[protocols.Community]int, len(comms)),
	}
	for i, cm := range comms {
		s.commIdx[cm] = i
	}
	s.bs = bdd.NewSpace(2*len(comms) + 2*LPBits + 1)
	return s
}

// Universe returns the space's community universe (sorted, deduplicated).
func (s *Space) Universe() []protocols.Community { return s.comms }

// NewCompiler stamps out a compiler over the shared space. The community
// slice and index are shared read-only; the BDD manager is a private view
// seeded from the space's canonical constant prefix (see bdd.Space).
func (s *Space) NewCompiler(cacheBits int) *Compiler {
	return &Compiler{
		M:       s.bs.NewManagerSized(cacheBits),
		comms:   s.comms,
		commIdx: s.commIdx,
		space:   s,
	}
}

// NewCompiler creates a compiler over the given community universe. Passing
// only the communities that are ever matched (rather than ever set)
// implements the unused-tag-erasing attribute abstraction
// h(lp, tags, path) = (lp, tags − unused, f(path)) from §8.
func NewCompiler(universe []protocols.Community) *Compiler {
	return NewCompilerSized(universe, 0)
}

// NewCompilerSized is NewCompiler with an explicit BDD operation-cache size
// exponent (see bdd.NewSized); 0 selects the default geometry. The result
// is a standalone compiler (no shared Space); handles still agree with
// space-stamped compilers over the same universe because the seed prefix is
// canonical either way.
func NewCompilerSized(universe []protocols.Community, cacheBits int) *Compiler {
	comms := append([]protocols.Community(nil), universe...)
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	dedup := comms[:0]
	for i, c := range comms {
		if i == 0 || c != comms[i-1] {
			dedup = append(dedup, c)
		}
	}
	comms = dedup
	c := &Compiler{
		comms:   comms,
		commIdx: make(map[protocols.Community]int, len(comms)),
	}
	for i, cm := range comms {
		c.commIdx[cm] = i
	}
	c.M = bdd.NewSized(2*len(comms)+2*LPBits+1, cacheBits)
	return c
}

// Space returns the shared space this compiler was stamped from, or nil
// for a standalone compiler.
func (c *Compiler) Space() *Space { return c.space }

// Universe returns the community universe (sorted).
func (c *Compiler) Universe() []protocols.Community { return c.comms }

func (c *Compiler) commIn(i int) int  { return 2 * i }
func (c *Compiler) commOut(i int) int { return 2*i + 1 }
func (c *Compiler) lpIn(j int) int    { return 2*len(c.comms) + 2*j }
func (c *Compiler) lpOut(j int) int   { return 2*len(c.comms) + 2*j + 1 }
func (c *Compiler) dropOut() int      { return 2*len(c.comms) + 2*LPBits }

// state is the symbolic evaluator state: each field is a function of the
// input variables describing the attribute after the policy steps applied
// so far.
type state struct {
	comm []bdd.Node // community membership functions
	lp   bdd.Vec    // local preference bits
	drop bdd.Node   // inputs on which the route has been denied
}

// initialState returns the identity state: outputs mirror inputs.
func (c *Compiler) initialState() state {
	st := state{
		comm: make([]bdd.Node, len(c.comms)),
		lp:   make(bdd.Vec, LPBits),
		drop: bdd.False,
	}
	for i := range c.comms {
		st.comm[i] = c.M.Var(c.commIn(i))
	}
	for j := 0; j < LPBits; j++ {
		st.lp[j] = c.M.Var(c.lpIn(j))
	}
	return st
}

// evalRouteMap symbolically executes the named route map from state st,
// specialised to destination prefix pfx. An empty name is the identity.
func (c *Compiler) evalRouteMap(env *Env, name string, pfx netip.Prefix, st state) state {
	if name == "" {
		return st
	}
	rm, ok := env.RouteMaps[name]
	if !ok {
		panic(fmt.Sprintf("policy: unknown route map %q", name))
	}
	m := c.M
	// remaining = inputs that reached this clause (not yet matched, not
	// already dropped upstream).
	remaining := m.Not(st.drop)
	next := st
	next.comm = append([]bdd.Node(nil), st.comm...)
	next.lp = append(bdd.Vec(nil), st.lp...)
	for i := range rm.Clauses {
		cl := &rm.Clauses[i]
		cond := c.matchCond(env, cl, pfx, st)
		guard := m.And(remaining, cond)
		remaining = m.And(remaining, m.Not(cond))
		if guard == bdd.False {
			continue
		}
		if cl.Action == Deny {
			next.drop = m.Or(next.drop, guard)
			continue
		}
		for _, s := range cl.Sets {
			switch s.Kind {
			case SetLocalPref:
				if s.Value >= 1<<LPBits {
					panic(fmt.Sprintf("policy: local-preference %d exceeds %d bits", s.Value, LPBits))
				}
				next.lp = m.ITEVec(guard, c.M.ConstVec(uint64(s.Value), LPBits), next.lp)
			case AddCommunity:
				if idx, ok := c.commIdx[s.Comm]; ok {
					next.comm[idx] = m.Or(next.comm[idx], guard)
				}
			case DeleteCommunity:
				if idx, ok := c.commIdx[s.Comm]; ok {
					next.comm[idx] = m.And(next.comm[idx], m.Not(guard))
				}
			}
		}
	}
	// Implicit deny for whatever matched no clause.
	next.drop = m.Or(next.drop, remaining)
	return next
}

// matchCond builds the BDD (over input variables, via the current state) of
// a clause's match conditions. Prefix matches specialise to constants.
func (c *Compiler) matchCond(env *Env, cl *Clause, pfx netip.Prefix, st state) bdd.Node {
	m := c.M
	cond := bdd.True
	for _, mt := range cl.Matches {
		switch mt.Kind {
		case MatchCommunity:
			l, ok := env.CommunityLists[mt.Arg]
			if !ok {
				panic(fmt.Sprintf("policy: unknown community list %q", mt.Arg))
			}
			any := bdd.False
			for _, cm := range l.Communities {
				if idx, ok := c.commIdx[cm]; ok {
					any = m.Or(any, st.comm[idx])
				}
			}
			cond = m.And(cond, any)
		case MatchPrefix:
			l, ok := env.PrefixLists[mt.Arg]
			if !ok {
				panic(fmt.Sprintf("policy: unknown prefix list %q", mt.Arg))
			}
			cond = m.And(cond, m.Const(l.Matches(pfx)))
		}
	}
	return cond
}

// relation converts a final symbolic state into the canonical input/output
// relation BDD (Figure 10): output variables are constrained to equal the
// computed functions of the inputs; dropped inputs force the drop flag and
// leave the other outputs unconstrained... they are instead forced to zero
// so that the relation stays a total function and remains canonical.
func (c *Compiler) relation(st state) bdd.Node {
	m := c.M
	keep := m.Not(st.drop)
	rel := m.Equiv(m.Var(c.dropOut()), st.drop)
	// Mask every output function by keep and equate it with its output
	// variable in two batched vector passes (AndVec shares the keep guard's
	// expansion across the whole vector; EqVec batches the per-bit XNORs).
	// Canonicity makes this node-identical to the element-wise fold.
	vals := make(bdd.Vec, 0, len(c.comms)+LPBits)
	vals = append(vals, st.comm...)
	vals = append(vals, st.lp...)
	outs := make([]int, 0, len(c.comms)+LPBits)
	for i := range c.comms {
		outs = append(outs, c.commOut(i))
	}
	for j := 0; j < LPBits; j++ {
		outs = append(outs, c.lpOut(j))
	}
	masked := m.AndVec(keep, vals)
	return m.And(rel, m.EqVec(m.VarVec(outs), masked))
}

// CompileRouteMap compiles one route map for destination pfx into its
// canonical relation BDD.
func (c *Compiler) CompileRouteMap(env *Env, name string, pfx netip.Prefix) bdd.Node {
	return c.relation(c.evalRouteMap(env, name, pfx, c.initialState()))
}

// CompileEdge compiles the full BGP transfer policy of an SRP edge
// (u learns from v): v's export route map followed by u's import route map,
// as one composed relation. Two edges are policy-equivalent for this
// destination iff their CompileEdge results are equal. This form matches
// iBGP sessions, where local preference crosses the session untouched.
func (c *Compiler) CompileEdge(exportEnv *Env, exportMap string, importEnv *Env, importMap string, pfx netip.Prefix) bdd.Node {
	st := c.initialState()
	st = c.evalRouteMap(exportEnv, exportMap, pfx, st)
	st = c.evalRouteMap(importEnv, importMap, pfx, st)
	return c.relation(st)
}

// CompileEdgeEBGP compiles the transfer policy of an eBGP edge: like
// CompileEdge, but with the local preference reset to the default between
// the export and import stages, mirroring that LOCAL_PREF is not transitive
// across eBGP sessions. Keys built from the plain composition would be
// unsound here: two edges whose compositions agree under preference
// passthrough can differ once the export stage's preference is discarded.
func (c *Compiler) CompileEdgeEBGP(exportEnv *Env, exportMap string, importEnv *Env, importMap string, pfx netip.Prefix) bdd.Node {
	st := c.initialState()
	st = c.evalRouteMap(exportEnv, exportMap, pfx, st)
	st.lp = c.M.ConstVec(uint64(protocols.DefaultLocalPref), LPBits)
	st = c.evalRouteMap(importEnv, importMap, pfx, st)
	return c.relation(st)
}

// IdentityRelation is the relation of the empty policy (permit unchanged).
func (c *Compiler) IdentityRelation() bdd.Node {
	return c.relation(c.initialState())
}

// AlwaysDrops reports whether a compiled relation denies every input.
func (c *Compiler) AlwaysDrops(rel bdd.Node) bool {
	// The relation forces dropOut <-> dropFn(inputs); restricting the drop
	// output to false leaves inputs that survive. If none do, the policy
	// always drops.
	return c.M.Restrict(rel, c.dropOut(), false) == bdd.False
}

// Apply runs a compiled relation on a concrete attribute, for cross-checking
// the symbolic and concrete semantics in tests. It returns the transformed
// communities and local preference, or ok=false if the route is dropped.
func (c *Compiler) Apply(rel bdd.Node, comms protocols.CommSet, lp uint32) (protocols.CommSet, uint32, bool) {
	m := c.M
	// Restrict inputs.
	n := rel
	for i, cm := range c.comms {
		n = m.Restrict(n, c.commIn(i), comms.Has(cm))
	}
	for j := 0; j < LPBits; j++ {
		n = m.Restrict(n, c.lpIn(j), lp&(1<<uint(j)) != 0)
	}
	// n is now a function of output variables with exactly one satisfying
	// assignment (the relation is a total function of the inputs).
	asg, ok := m.AnySat(n)
	if !ok {
		return nil, 0, false
	}
	if asg[c.dropOut()] {
		return nil, 0, false
	}
	var out protocols.CommSet
	for i, cm := range c.comms {
		if asg[c.commOut(i)] {
			out = out.With(cm)
		}
	}
	var lpOut uint32
	for j := 0; j < LPBits; j++ {
		if asg[c.lpOut(j)] {
			lpOut |= 1 << uint(j)
		}
	}
	return out, lpOut, true
}

// Close releases the compiler's BDD manager (unique table and operation
// caches). The compiler must not be used afterwards; Close is idempotent.
func (c *Compiler) Close() { c.M.Close() }
