package policy

import (
	"net/netip"
	"testing"

	"bonsai/internal/protocols"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestPrefixEntryMatching(t *testing.T) {
	exact := PrefixEntry{Action: Permit, Prefix: pfx("10.0.0.0/24")}
	if !exact.matches(pfx("10.0.0.0/24")) {
		t.Fatal("exact match failed")
	}
	if exact.matches(pfx("10.0.0.0/25")) {
		t.Fatal("longer prefix matched exact entry")
	}
	ranged := PrefixEntry{Action: Permit, Prefix: pfx("10.0.0.0/8"), Ge: 24, Le: 28}
	if !ranged.matches(pfx("10.1.2.0/24")) || !ranged.matches(pfx("10.1.2.0/28")) {
		t.Fatal("ge/le range match failed")
	}
	if ranged.matches(pfx("10.0.0.0/16")) || ranged.matches(pfx("10.0.0.0/30")) {
		t.Fatal("out-of-range length matched")
	}
	geOnly := PrefixEntry{Action: Permit, Prefix: pfx("10.0.0.0/8"), Ge: 9}
	if !geOnly.matches(pfx("10.0.0.0/32")) {
		t.Fatal("ge-only should extend to /32")
	}
}

func TestPrefixListFirstMatchWins(t *testing.T) {
	l := &PrefixList{Name: "pl", Entries: []PrefixEntry{
		{Action: Deny, Prefix: pfx("10.0.0.0/24")},
		{Action: Permit, Prefix: pfx("10.0.0.0/8"), Ge: 8, Le: 32},
	}}
	if l.Matches(pfx("10.0.0.0/24")) {
		t.Fatal("deny entry should win")
	}
	if !l.Matches(pfx("10.0.1.0/24")) {
		t.Fatal("fallback permit should match")
	}
	if l.Matches(pfx("192.168.0.0/24")) {
		t.Fatal("implicit deny broken")
	}
}

func TestRouteMapEval(t *testing.T) {
	c1 := protocols.MakeCommunity(65001, 1)
	c2 := protocols.MakeCommunity(65001, 2)
	c3 := protocols.MakeCommunity(65001, 3)
	env := NewEnv()
	env.CommunityLists["dept"] = &CommunityList{Name: "dept", Communities: []protocols.Community{c1, c2}}
	env.RouteMaps["M"] = &RouteMap{Name: "M", Clauses: []Clause{
		{Seq: 10, Action: Permit,
			Matches: []Match{{Kind: MatchCommunity, Arg: "dept"}},
			Sets: []Set{
				{Kind: AddCommunity, Comm: c3},
				{Kind: SetLocalPref, Value: 350},
			}},
		{Seq: 20, Action: Permit},
	}}

	// Figure 10 policy: tagged route gets 65001:3 and LP 350.
	in := &protocols.BGPAttr{LP: 100, Comms: protocols.NewCommSet(c1)}
	out := env.EvalRouteMap("M", pfx("10.0.0.0/24"), in)
	if out == nil || out.LP != 350 || !out.Comms.Has(c3) || !out.Comms.Has(c1) {
		t.Fatalf("tagged route: %v", out)
	}
	// Untagged route falls through to clause 20 unchanged.
	in2 := &protocols.BGPAttr{LP: 100}
	out2 := env.EvalRouteMap("M", pfx("10.0.0.0/24"), in2)
	if out2 == nil || out2.LP != 100 || len(out2.Comms) != 0 {
		t.Fatalf("untagged route: %v", out2)
	}
	// Input must not be mutated.
	if in.LP != 100 || in.Comms.Has(c3) {
		t.Fatal("EvalRouteMap mutated its input")
	}
}

func TestRouteMapImplicitDeny(t *testing.T) {
	env := NewEnv()
	env.PrefixLists["only10"] = &PrefixList{Entries: []PrefixEntry{
		{Action: Permit, Prefix: pfx("10.0.0.0/8"), Ge: 8, Le: 32},
	}}
	env.RouteMaps["F"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Matches: []Match{{Kind: MatchPrefix, Arg: "only10"}}},
	}}
	a := &protocols.BGPAttr{LP: 100}
	if env.EvalRouteMap("F", pfx("10.1.0.0/16"), a) == nil {
		t.Fatal("permitted prefix denied")
	}
	if env.EvalRouteMap("F", pfx("192.168.0.0/16"), a) != nil {
		t.Fatal("implicit deny failed")
	}
	// Empty route-map name permits unchanged.
	if env.EvalRouteMap("", pfx("192.168.0.0/16"), a) != a {
		t.Fatal("empty name should be identity")
	}
}

func TestRouteMapDenyClause(t *testing.T) {
	bad := protocols.MakeCommunity(666, 1)
	env := NewEnv()
	env.CommunityLists["bad"] = &CommunityList{Communities: []protocols.Community{bad}}
	env.RouteMaps["D"] = &RouteMap{Clauses: []Clause{
		{Action: Deny, Matches: []Match{{Kind: MatchCommunity, Arg: "bad"}}},
		{Action: Permit},
	}}
	if env.EvalRouteMap("D", pfx("10.0.0.0/24"), &protocols.BGPAttr{Comms: protocols.NewCommSet(bad)}) != nil {
		t.Fatal("deny clause did not drop")
	}
	if env.EvalRouteMap("D", pfx("10.0.0.0/24"), &protocols.BGPAttr{}) == nil {
		t.Fatal("clean route dropped")
	}
}

func TestLocalPrefValues(t *testing.T) {
	env := NewEnv()
	env.PrefixLists["never"] = &PrefixList{} // matches nothing
	env.RouteMaps["P"] = &RouteMap{Clauses: []Clause{
		{Action: Permit, Sets: []Set{{Kind: SetLocalPref, Value: 200}}},
		{Action: Permit, Matches: []Match{{Kind: MatchPrefix, Arg: "never"}},
			Sets: []Set{{Kind: SetLocalPref, Value: 300}}},
		{Action: Deny, Sets: []Set{{Kind: SetLocalPref, Value: 400}}},
	}}
	got := map[uint32]bool{}
	env.LocalPrefValues("P", pfx("10.0.0.0/24"), got)
	if !got[200] {
		t.Fatal("reachable set lost")
	}
	if got[300] {
		t.Fatal("prefix-unreachable clause counted")
	}
	if got[400] {
		t.Fatal("deny clause counted")
	}
}

func TestACL(t *testing.T) {
	env := NewEnv()
	env.ACLs["blockA"] = &ACL{Entries: []PrefixEntry{
		{Action: Deny, Prefix: pfx("10.0.0.0/24")},
		{Action: Permit, Prefix: pfx("0.0.0.0/0"), Ge: 0, Le: 32},
	}}
	if env.ACLPermits("blockA", pfx("10.0.0.0/24")) {
		t.Fatal("blocked prefix permitted")
	}
	if !env.ACLPermits("blockA", pfx("10.0.1.0/24")) {
		t.Fatal("allowed prefix blocked")
	}
	if !env.ACLPermits("", pfx("10.0.0.0/24")) {
		t.Fatal("empty ACL name must permit")
	}
}
